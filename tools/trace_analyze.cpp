// trace_analyze: offline critical-path reports from a Chrome trace
// JSON file written by obs::writeChromeTrace.
//
// Usage: trace_analyze [--top N] [--span NAME] trace.json
//
// Prints three sections:
//   1. top span families by total host time,
//   2. per-track latency distribution of the drain span (--span),
//   3. per-epoch critical-path profiles (phase breakdown, straggler
//      shard, skew ratio, fabric utilization, planner decisions).
// Exit codes: 0 ok, 1 bad usage, 2 unreadable/malformed input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/json.hpp"
#include "obs/analyze.hpp"
#include "obs/profiler.hpp"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top N] [--span NAME] trace.json\n"
                 "  --top N     span families to list (default 12)\n"
                 "  --span NAME latency-report span (default "
                 "shard.drain)\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    size_t topN = 12;
    std::string spanName = "shard.drain";
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
            topN = static_cast<size_t>(std::atol(argv[++i]));
        } else if (std::strcmp(argv[i], "--span") == 0 &&
                   i + 1 < argc) {
            spanName = argv[++i];
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
            return 1;
        } else {
            path = argv[i];
        }
    }
    if (path.empty()) {
        usage(argv[0]);
        return 1;
    }

    c2m::json::Value doc;
    std::string err;
    if (!c2m::json::parseFile(path, doc, &err)) {
        std::fprintf(stderr, "trace_analyze: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }
    c2m::obs::ProfileInput in;
    if (!c2m::obs::profileFromChromeJson(doc, in)) {
        std::fprintf(stderr,
                     "trace_analyze: %s: no traceEvents array\n",
                     path.c_str());
        return 2;
    }

    std::printf("# %s: %zu spans, %zu instants", path.c_str(),
                in.spans.size(), in.instants.size());
    if (in.eventCount > 0)
        std::printf(" (%llu events recorded, %llu dropped)",
                    static_cast<unsigned long long>(in.eventCount),
                    static_cast<unsigned long long>(
                        in.droppedEvents));
    std::printf("\n\n## top span families (by total host time)\n%s",
                c2m::obs::renderSpanFamilies(
                    c2m::obs::topSpanFamilies(in, topN))
                    .c_str());
    std::printf("\n## %s latency by track\n%s", spanName.c_str(),
                c2m::obs::renderTrackLatency(in, spanName).c_str());
    std::printf("\n## epoch critical-path profiles\n%s",
                c2m::obs::renderEpochProfiles(
                    c2m::obs::buildEpochProfiles(in))
                    .c_str());
    if (in.droppedEvents > 0)
        std::fprintf(stderr,
                     "trace_analyze: warning: %llu events were "
                     "dropped at record time; totals undercount\n",
                     static_cast<unsigned long long>(
                         in.droppedEvents));
    return 0;
}
