// bench_diff: regression gate between two BENCH_*.json files.
//
// Usage: bench_diff [--default-rel R] [--metric NAME=R]... \
//                   baseline.json current.json
//
// Cells in the bench's "results"/"cells" array are matched by an
// identity tuple (string members, config booleans, and well-known
// integer config keys such as shards/producers), then every modeled
// numeric metric is compared with a relative threshold:
//     rel = |cur - base| / max(|base|, |cur|, 1)
// Host-dependent metrics (wall time, ops/s, speedup, RSS, trace event
// counts) are skipped: they measure the machine, not the model.
// Boolean correctness flags (match*, all_match*) must never regress
// from true to false. Exit codes: 0 pass, 1 regressions, 2 bad input.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/table.hpp"

namespace {

using c2m::json::Value;

// Integer members that name the cell rather than measure it.
const char *const kIdentityKeys[] = {"shards",        "producers",
                                     "threads",       "radix",
                                     "min_drain_ops", "capacity_bits"};

// Metrics of the host, not the model: never gated. This includes
// pure scheduling counts (epochs drained, steals, queue stalls, and
// the per-epoch watchdog evaluation count) that vary run to run even
// on one machine.
const char *const kHostMetrics[] = {
    "time_s", "ops_per_s", "speedup",  "rss_kb",
    "trace_events", "epochs", "steals", "stalls",
    "watchdog_evaluations", "planner_speedup_8"};

bool
inList(const std::string &key, const char *const *list, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        if (key == list[i])
            return true;
    return false;
}

bool
isCorrectnessFlag(const std::string &key)
{
    return key.compare(0, 5, "match") == 0 ||
           key.compare(0, 9, "all_match") == 0 ||
           key.compare(0, 6, "ledger") == 0;
}

std::string
cellIdentity(const Value &cell)
{
    std::string id;
    for (const auto &[k, v] : cell.members) {
        if (v.isString())
            id += k + "=" + v.string + " ";
        else if (v.isBool() && !isCorrectnessFlag(k))
            id += k + "=" + (v.boolean ? "on" : "off") + " ";
        else if (v.isNumber() &&
                 inList(k, kIdentityKeys,
                        sizeof(kIdentityKeys) /
                            sizeof(kIdentityKeys[0])))
            id += k + "=" +
                  std::to_string(
                      static_cast<long long>(v.number)) +
                  " ";
    }
    if (!id.empty())
        id.pop_back();
    return id;
}

const Value *
findCellArray(const Value &doc)
{
    if (const Value *r = doc.find("results"); r && r->isArray())
        return r;
    if (const Value *c = doc.find("cells"); c && c->isArray())
        return c;
    for (const auto &[k, v] : doc.members)
        if (v.isArray())
            return &v;
    return nullptr;
}

struct DiffState
{
    double defaultRel = 0.02;
    std::map<std::string, double> perMetric;
    c2m::TextTable report{{"where", "metric", "baseline", "current",
                           "rel%", "limit%", "status"}};
    uint32_t checked = 0;
    uint32_t failed = 0;

    double limitFor(const std::string &metric) const
    {
        const auto it = perMetric.find(metric);
        return it == perMetric.end() ? defaultRel : it->second;
    }

    void compareNumber(const std::string &where,
                       const std::string &metric, double base,
                       double cur)
    {
        ++checked;
        const double rel =
            std::fabs(cur - base) /
            std::max({std::fabs(base), std::fabs(cur), 1.0});
        const double limit = limitFor(metric);
        const bool ok = rel <= limit;
        if (!ok)
            ++failed;
        // Passing rows with zero drift stay out of the report; the
        // table shows only drift and failures.
        if (ok && rel == 0.0)
            return;
        report.addRow({where, metric, c2m::TextTable::fmt(base, 4),
                       c2m::TextTable::fmt(cur, 4),
                       c2m::TextTable::fmt(100.0 * rel, 2),
                       c2m::TextTable::fmt(100.0 * limit, 2),
                       ok ? "ok" : "FAIL"});
    }

    void compareBool(const std::string &where,
                     const std::string &metric, bool base, bool cur)
    {
        ++checked;
        if (base && !cur) {
            ++failed;
            report.addRow({where, metric, "true", "false", "-", "-",
                           "FAIL"});
        } else if (base != cur) {
            report.addRow({where, metric, base ? "true" : "false",
                           cur ? "true" : "false", "-", "-", "ok"});
        }
    }

    void missing(const std::string &where, const std::string &what)
    {
        ++checked;
        ++failed;
        report.addRow({where, what, "present", "missing", "-", "-",
                       "FAIL"});
    }

    // Compare the non-identity members of two objects; recurses one
    // level into nested objects (gpu_model, showcase, fabric_attr).
    void compareObject(const std::string &where, const Value &base,
                       const Value &cur, const std::string &prefix)
    {
        for (const auto &[k, bv] : base.members) {
            const std::string metric = prefix.empty()
                                           ? k
                                           : prefix + "." + k;
            if (bv.isNumber()) {
                if (inList(k, kIdentityKeys,
                           sizeof(kIdentityKeys) /
                               sizeof(kIdentityKeys[0])) ||
                    inList(k, kHostMetrics,
                           sizeof(kHostMetrics) /
                               sizeof(kHostMetrics[0])))
                    continue;
                const Value *cv = cur.find(k);
                if (!cv || !cv->isNumber())
                    missing(where, metric);
                else
                    compareNumber(where, metric, bv.number,
                                  cv->number);
            } else if (bv.isBool() && isCorrectnessFlag(k)) {
                const Value *cv = cur.find(k);
                if (!cv || !cv->isBool())
                    missing(where, metric);
                else
                    compareBool(where, metric, bv.boolean,
                                cv->boolean);
            } else if (bv.isObject() && prefix.empty()) {
                const Value *cv = cur.find(k);
                if (cv && cv->isObject())
                    compareObject(where, bv, *cv, k);
            }
        }
    }
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--default-rel R] [--metric NAME=R]... "
                 "baseline.json current.json\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    DiffState st;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--default-rel") == 0 &&
            i + 1 < argc) {
            st.defaultRel = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--metric") == 0 &&
                   i + 1 < argc) {
            const std::string spec = argv[++i];
            const size_t eq = spec.find('=');
            if (eq == std::string::npos) {
                usage(argv[0]);
                return 2;
            }
            st.perMetric[spec.substr(0, eq)] =
                std::atof(spec.c_str() + eq + 1);
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        usage(argv[0]);
        return 2;
    }

    Value base, cur;
    std::string err;
    if (!c2m::json::parseFile(paths[0], base, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n",
                     paths[0].c_str(), err.c_str());
        return 2;
    }
    if (!c2m::json::parseFile(paths[1], cur, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n",
                     paths[1].c_str(), err.c_str());
        return 2;
    }

    // Top-level scalars (plus one level of nested objects).
    st.compareObject("top-level", base, cur, "");

    const Value *baseCells = findCellArray(base);
    const Value *curCells = findCellArray(cur);
    if (baseCells) {
        std::map<std::string, const Value *> curById;
        if (curCells)
            for (const Value &c : curCells->items)
                if (c.isObject())
                    curById[cellIdentity(c)] = &c;
        for (const Value &bc : baseCells->items) {
            if (!bc.isObject())
                continue;
            const std::string id = cellIdentity(bc);
            const auto it = curById.find(id);
            if (it == curById.end()) {
                st.missing(id, "(cell)");
                continue;
            }
            st.compareObject(id, bc, *it->second, "");
        }
    }

    std::printf("bench_diff: %s vs %s\n", paths[0].c_str(),
                paths[1].c_str());
    if (st.report.numRows() > 0)
        std::printf("%s", st.report.render().c_str());
    std::printf("%u comparisons, %u failed (default rel %.1f%%)\n",
                st.checked, st.failed, 100.0 * st.defaultRel);
    return st.failed == 0 ? 0 : 1;
}
