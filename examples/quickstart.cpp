/**
 * @file
 * Quickstart: multiply an integer vector by a binary matrix with
 * in-memory high-radix counting.
 *
 * The matrix Z is stored in DRAM rows as counting masks; each input
 * element becomes a handful of broadcast k-ary increment commands
 * that update one Johnson-counter digit in every selected column at
 * once. The result is read back and checked against plain
 * arithmetic.
 */

#include <cstdio>

#include "core/engine.hpp"
#include "core/kernels.hpp"

using namespace c2m;

int
main()
{
    // y = x . Z with a 4 x 8 binary matrix.
    const std::vector<uint64_t> x = {3, 7, 21, 100};
    const std::vector<std::vector<uint8_t>> Z = {
        {1, 0, 1, 0, 1, 0, 1, 0},
        {1, 1, 0, 0, 1, 1, 0, 0},
        {0, 0, 1, 1, 1, 1, 0, 0},
        {1, 1, 1, 1, 0, 0, 0, 0},
    };

    core::EngineConfig cfg;
    cfg.radix = 10;          // 5-bit Johnson-counter digits
    cfg.capacityBits = 16;   // accumulate up to 2^16
    cfg.numCounters = 8;     // one counter column per output
    cfg.maxMaskRows = 4;     // the rows of Z

    core::C2MEngine engine(cfg);
    const auto y = core::gemvIntBinary(engine, x, Z);
    const auto ref = core::refGemvBinary(x, Z);

    std::printf("x . Z = [");
    for (size_t j = 0; j < y.size(); ++j)
        std::printf("%s%ld", j ? ", " : "", long(y[j]));
    std::printf("]\n");

    const auto &stats = engine.subarray().stats();
    std::printf("executed %lu AAP/AP commands (%lu MAJ3 "
                "activations), %lu increments, %lu ripples\n",
                (unsigned long)stats.commands(),
                (unsigned long)stats.tra,
                (unsigned long)engine.stats().increments,
                (unsigned long)engine.stats().ripples);

    if (y != ref) {
        std::printf("MISMATCH against reference!\n");
        return 1;
    }
    std::printf("matches plain arithmetic.\n");
    return 0;
}
