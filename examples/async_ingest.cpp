/**
 * @file
 * Async ingest: four producer threads stream word-frequency updates
 * into a sharded counting fabric through service::IngestService.
 *
 * Producers never touch the fabric: they submit point updates into
 * per-shard bounded queues and move on. The service's drainer cuts
 * deterministic epochs, coalesces duplicate counters (hot words cost
 * one fabric update per epoch, not one per occurrence), and executes
 * per-shard buckets with whole-bucket work stealing. A snapshot read
 * at the end is epoch-consistent and bit-identical to feeding the
 * same stream through one blocking engine.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "service/ingest.hpp"

using namespace c2m;

int
main()
{
    // A "vocabulary" of 1024 word ids, Zipf-skewed like real text.
    constexpr size_t kVocab = 1024;
    constexpr size_t kOpsPerProducer = 512;
    constexpr unsigned kProducers = 4;

    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = kVocab;
    cfg.maxMaskRows = 1;
    core::ShardedEngine engine(cfg, /*num_shards=*/4);

    service::IngestConfig icfg;
    icfg.minDrainOps = 256; // coalescing window
    service::IngestService service(engine, icfg);

    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p)
        producers.emplace_back([&service, p] {
            ZipfRng words(kVocab, 1.0, 1000 + p);
            for (size_t i = 0; i < kOpsPerProducer; ++i)
                service.submit(core::BatchOp{words.next(), 1, 0});
        });
    for (auto &t : producers)
        t.join();

    // Epoch-consistent snapshot: drains everything submitted above.
    const auto snap = service.snapshot();
    int64_t total = 0;
    uint64_t top_word = 0;
    for (size_t w = 0; w < kVocab; ++w) {
        total += snap.counters[w];
        if (snap.counters[w] > snap.counters[top_word])
            top_word = w;
    }
    std::printf("counted %ld occurrences across %zu words "
                "(epoch %lu); hottest word %lu seen %ld times\n",
                long(total), kVocab, (unsigned long)snap.epoch,
                (unsigned long)top_word, long(snap.counters[top_word]));

    // The merged service + engine report: how many ops the queues
    // absorbed vs. how few accumulates reached the fabric.
    std::printf("%s", renderCounters(service.report()).c_str());
    return total == kProducers * kOpsPerProducer ? 0 : 1;
}
