/**
 * @file
 * Ternary-LLM layer slice: runs an integer x ternary GEMV (the
 * 1.58-bit LLM setting the paper targets) functionally on a small
 * slice, then projects full LLaMA-shape performance with the
 * DDR5/Ambit timing-energy model against the SIMDRAM baseline and
 * the GPU roofline.
 */

#include <cstdio>

#include "core/gpu_model.hpp"
#include "core/kernels.hpp"
#include "core/perf.hpp"
#include "workloads/llama.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using namespace c2m::core;

int
main()
{
    // --- Functional slice: 32 inputs x 64 outputs, int8 x ternary.
    const size_t K = 32, N = 64;
    const auto W = workloads::randomTernaryMatrix(K, N, 0.5, 42);
    const auto x = workloads::sparseSignedVector(K, 8, 0.25, 43);

    EngineConfig cfg;
    cfg.radix = 4; // the paper's choice for LLM kernels
    cfg.capacityBits = 32;
    cfg.numCounters = N;
    cfg.numGroups = 2; // dual rail for +/- weights
    cfg.maxMaskRows = static_cast<unsigned>(2 * K);
    C2MEngine engine(cfg);

    const auto y = gemvIntTernary(engine, x, W);
    const auto ref = refGemvTernary(x, W);
    std::printf("functional slice: %zu x %zu ternary GEMV %s "
                "(%lu commands)\n",
                K, N, y == ref ? "matches reference" : "MISMATCH",
                (unsigned long)engine.subarray().stats().commands());
    if (y != ref)
        return 1;

    // --- Projected full-shape performance (Tab. 3 GEMV shapes).
    DramPerfModel model;
    const auto gpu = GpuModel::rtx3090ti();
    std::printf("\nprojected LLaMA GEMV layers (16 banks, radix 4, "
                "25%% input sparsity):\n");
    std::printf("%-4s %12s %12s %12s %14s\n", "ID", "C2M ms",
                "SIMDRAM ms", "GPU ms(tot)", "C2M GOPS/W");
    for (const auto &s : workloads::llamaGemvShapes()) {
        TensorWorkload w;
        w.M = s.M;
        w.N = s.N;
        w.K = s.K;
        w.sparsity = 0.25;
        C2mDesign cd;
        cd.banks = 16;
        SimdramDesign sd;
        sd.banks = 16;
        const auto c = c2mWorkloadPerf(w, cd, model);
        const auto r = simdramWorkloadPerf(w, sd, model);
        const auto g = gpu.run(s.M, s.N, s.K);
        std::printf("%-4s %12.3f %12.3f %12.3f %14.2f\n",
                    s.id.c_str(), c.timeMs, r.timeMs, g.totalMs,
                    c.gopsPerWatt);
    }
    return 0;
}
