/**
 * @file
 * Reliable in-memory counting: accumulates a stream on a faulty CIM
 * substrate three ways -- unprotected, TMR, and the paper's
 * XOR-embedded ECC scheme with detect-and-retry -- and shows the
 * row-level Hamming machinery (syndrome checks, XOR homomorphism)
 * the scheme builds on.
 */

#include <cstdio>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "ecc/rowcodec.hpp"

using namespace c2m;
using core::C2MEngine;
using core::EngineConfig;
using core::Protection;

namespace {

double
runScheme(Protection prot, double fault_rate, const char *name)
{
    EngineConfig cfg;
    cfg.radix = 10;
    cfg.capacityBits = 16;
    cfg.numCounters = 128;
    cfg.maxMaskRows = 2;
    cfg.protection = prot;
    cfg.frChecks = 2;
    cfg.maxRetries = 6;
    cfg.faultRate = fault_rate;
    cfg.seed = 2024;
    C2MEngine eng(cfg);

    const unsigned h = eng.addMask(std::vector<uint8_t>(128, 1));
    Rng rng(99);
    int64_t expected = 0;
    for (int i = 0; i < 60; ++i) {
        const uint64_t v = 1 + rng.nextBounded(99);
        eng.accumulate(v, h);
        expected += static_cast<int64_t>(v);
    }

    size_t wrong = 0;
    double err = 0;
    for (auto v : eng.readCounters()) {
        if (v != expected)
            ++wrong;
        err += std::abs(static_cast<double>(v - expected));
    }
    std::printf("  %-12s wrong counters %3zu/128, total |error| "
                "%8.0f, detected %lu, retries %lu\n",
                name, wrong, err,
                (unsigned long)eng.stats().faultsDetected,
                (unsigned long)eng.stats().retries);
    return err;
}

} // namespace

int
main()
{
    const double p = 5e-4;
    std::printf("accumulating 60 values into 128 radix-10 counters "
                "at CIM fault rate %.0e:\n", p);
    const double e_raw = runScheme(Protection::None, p, "raw");
    const double e_tmr = runScheme(Protection::Tmr, p, "TMR");
    const double e_ecc = runScheme(Protection::Ecc, p, "ECC+retry");
    std::printf("  => ECC %s TMR %s raw (lower is better)\n\n",
                e_ecc <= e_tmr ? "<=" : ">",
                e_tmr <= e_raw ? "<=" : ">");

    // Row-level ECC machinery: XOR homomorphism + correction.
    std::printf("row-level Hamming(72,64) lanes:\n");
    ecc::RowCodec codec(256);
    Rng rng(7);
    BitVector a(codec.totalBits()), b(codec.totalBits());
    for (size_t i = 0; i < 256; ++i) {
        a.set(i, rng.nextBool(0.5));
        b.set(i, rng.nextBool(0.5));
    }
    codec.encodeRow(a);
    codec.encodeRow(b);
    BitVector x(codec.totalBits());
    x.assignXor(a, b);
    std::printf("  parity lanes of a XOR b valid without re-encoding:"
                " %s (the Sec. 6 homomorphism)\n",
                codec.checkRow(x) ? "yes" : "NO");

    x.set(100, !x.get(100)); // a stray CIM fault
    std::printf("  after injecting one flip: syndrome clean? %s\n",
                codec.checkRow(x) ? "yes (BAD)" : "no -> detected");
    const auto fixed = codec.correctRow(x);
    std::printf("  corrected %zu bit(s); row clean again: %s\n",
                fixed.corrected,
                codec.checkRow(x) ? "yes" : "NO");
    return 0;
}
