/**
 * @file
 * DNA pre-alignment filtering (GRIM-Filter style) on Count2Multiply.
 *
 * The reference genome's per-bin k-mer presence bitvectors are the
 * counting masks; each read's token repetition counts are broadcast
 * as increments, so every genome bin scores the read simultaneously.
 * Bins above the threshold proceed to (expensive) alignment.
 */

#include <cstdio>

#include "core/engine.hpp"
#include "workloads/dna.hpp"

using namespace c2m;

int
main()
{
    workloads::DnaConfig cfg;
    cfg.genomeLen = 32768;
    cfg.binSize = 512; // 64 bins
    cfg.numReads = 16;
    workloads::DnaWorkload dna(cfg);

    core::EngineConfig ecfg;
    ecfg.radix = 10;
    ecfg.capacityBits = 8; // counts <= 95 (Fig. 19: capacity 100)
    ecfg.numCounters = dna.numBins();
    ecfg.maxMaskRows = static_cast<unsigned>(dna.numTokens());
    core::C2MEngine engine(ecfg);

    std::printf("loading %zu token-presence masks over %zu bins...\n",
                dna.numTokens(), dna.numBins());
    std::vector<unsigned> handles;
    for (unsigned t = 0; t < dna.numTokens(); ++t)
        handles.push_back(engine.addMask(dna.tokenMask(t)));

    std::vector<std::vector<int64_t>> scores;
    for (const auto &read : dna.reads()) {
        engine.clear();
        for (const auto &[token, count] : dna.readTokens(read))
            engine.accumulate(count, handles[token]);
        scores.push_back(engine.readCounters());
    }

    const auto bs = dna.evaluate(scores);
    std::printf("reads: %zu, bins: %zu\n", dna.reads().size(),
                dna.numBins());
    std::printf("filter precision %.3f, recall %.3f, F1 %.3f\n",
                bs.precision(), bs.recall(), bs.f1());
    std::printf("candidate pairs kept: %lu of %lu (%.1f%% filtered "
                "away before alignment)\n",
                (unsigned long)(bs.tp + bs.fp),
                (unsigned long)(bs.tp + bs.fp + bs.tn + bs.fn),
                100.0 * double(bs.tn + bs.fn) /
                    double(bs.tp + bs.fp + bs.tn + bs.fn));

    // Show one read's best bins.
    const auto &r0 = dna.reads()[0];
    std::printf("read 0 (origin %zu, bin %zu): threshold %ld, "
                "top scores:",
                r0.origin, r0.origin / cfg.binSize,
                long(dna.threshold(r0)));
    for (size_t b = 0; b < dna.numBins(); ++b)
        if (scores[0][b] >= dna.threshold(r0))
            std::printf(" bin%zu=%ld", b, long(scores[0][b]));
    std::printf("\n");
    return bs.f1() > 0.8 ? 0 : 1;
}
