/**
 * @file
 * Counter virtualization: a million-key word-count over a fabric
 * that only has 1024 physical counters.
 *
 * A virt::VirtualCounterSpace fronts the sharded engine with three
 * tiers. Every key is admitted instantly into a count-min sketch
 * (approximate, bounded error); keys whose estimate crosses the
 * promotion threshold get an exact in-fabric counter seeded with
 * that estimate; and when the fabric runs out of frames, cold
 * counter groups spill into ECC-encoded row images and restore on
 * demand — bit-exact round trips. The result: heavy hitters are
 * exact, the tail is approximate with an analytic bound, and the
 * key space is limited by host memory rather than fabric columns.
 */

#include <cstdio>

#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "virt/virtspace.hpp"

using namespace c2m;

int
main()
{
    constexpr size_t kKeys = 200000; // ~200x the fabric
    constexpr size_t kOps = 300000;

    core::EngineConfig cfg;
    cfg.numCounters = 1024;
    cfg.capacityBits = 20;
    core::ShardedEngine engine(cfg, /*num_shards=*/4);

    virt::VirtConfig vcfg;
    vcfg.groupSize = 64;        // 16 physical frames
    vcfg.promoteThreshold = 16; // sketch estimate -> exact counter
    // Wide sketch: keeps the collision noise floor (e/w)*N under
    // the promotion threshold so only true heavy hitters promote.
    vcfg.sketch.width = 1 << 17;
    virt::VirtualCounterSpace space(engine, vcfg);

    // Zipf-skewed stream over a key space the fabric could never
    // hold natively: every key lands somewhere immediately.
    ZipfRng ranks(kKeys, 1.1, 7);
    for (size_t i = 0; i < kOps; ++i) {
        uint64_t rank = ranks.next();
        space.add(splitMix64(rank), 1);
    }
    space.flush();

    const auto st = space.stats();
    std::printf("served ~%llu distinct keys on %zu counters\n",
                static_cast<unsigned long long>(st.sketchKeys),
                cfg.numCounters);
    std::printf("exact tier: %llu keys (%llu promotions), "
                "%llu spills / %llu restores\n",
                static_cast<unsigned long long>(st.keysExact),
                static_cast<unsigned long long>(st.promotions),
                static_cast<unsigned long long>(st.spills),
                static_cast<unsigned long long>(st.restores));
    std::printf("tail estimate error bound: %.0f counts\n",
                st.estErrorBound);

    // Heavy hitters read back exactly; rank 0 dominates the stream.
    const auto top = space.topK(3);
    for (const auto &e : top)
        std::printf("top key %016llx = %lld (seeded %llu at "
                    "promotion, +/- %.0f)\n",
                    static_cast<unsigned long long>(e.key),
                    static_cast<long long>(e.value),
                    static_cast<unsigned long long>(e.seed),
                    e.seedBound);

    // A mid-tail key the sketch never promoted still answers,
    // approximately.
    uint64_t cold_rank = 2000;
    const uint64_t cold = splitMix64(cold_rank);
    std::printf("cold key estimate %llu (exact tier: %s)\n",
                static_cast<unsigned long long>(
                    space.approxEstimate(cold)),
                space.isExact(cold) ? "yes" : "no");
    return 0;
}
