#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

namespace c2m::obs {

void
LogHistogram::record(uint64_t value)
{
    buckets_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    uint64_t lo = min_.load(std::memory_order_relaxed);
    while (value < lo &&
           !min_.compare_exchange_weak(lo, value,
                                       std::memory_order_relaxed)) {
    }
}

double
LogHistogram::meanValue() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
}

uint32_t
LogHistogram::bucketIndex(uint64_t value)
{
    if (value < 4)
        return static_cast<uint32_t>(value);
    const uint32_t e = 63 - static_cast<uint32_t>(std::countl_zero(value));
    const uint32_t sub =
        static_cast<uint32_t>((value >> (e - 2)) - kSubBuckets);
    return 4 + (e - 2) * kSubBuckets + sub;
}

uint64_t
LogHistogram::bucketLo(uint32_t index)
{
    if (index < 4)
        return index;
    const uint32_t o = (index - 4) / kSubBuckets;   // octave - 2
    const uint32_t sub = (index - 4) % kSubBuckets;
    return static_cast<uint64_t>(kSubBuckets + sub) << o;
}

uint64_t
LogHistogram::bucketHi(uint32_t index)
{
    if (index < 4)
        return index + 1;
    const uint32_t o = (index - 4) / kSubBuckets;
    const uint64_t lo = bucketLo(index);
    const uint64_t hi = lo + (static_cast<uint64_t>(1) << o);
    return hi > lo ? hi : UINT64_MAX;  // top bucket saturates
}

uint64_t
LogHistogram::percentile(double q) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    // Same rank convention as the exact-sort percentile this replaced.
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(n - 1) + 0.5);
    if (rank >= n)
        rank = n - 1;
    // The top order statistic is tracked exactly.
    if (rank == n - 1)
        return max();
    uint64_t cum = 0;
    for (uint32_t i = 0; i < kBucketCount; ++i) {
        const uint64_t c = bucketCount(i);
        cum += c;
        if (cum > rank) {
            // Interpolate the rank's position within its bucket: the
            // p-th of c samples sits at the (p+0.5)/c point of the
            // bucket span under a uniform spread. Clamping to the
            // tracked [min, max] keeps single-bucket distributions
            // exact and the estimate inside the observed range (the
            // old upper-edge return biased a whole octave high at
            // sub-bucket boundaries).
            const uint64_t lo = bucketLo(i);
            const uint64_t hi = bucketHi(i);
            if (hi == UINT64_MAX)  // saturated top bucket: no width
                return max();
            const uint64_t width = hi - lo;
            const uint64_t p = rank - (cum - c);
            const uint64_t est =
                lo + static_cast<uint64_t>(
                         static_cast<double>(width) *
                         ((static_cast<double>(p) + 0.5) /
                          static_cast<double>(c)));
            return std::min(max(), std::max(min(), est));
        }
    }
    return max();
}

void
LogHistogram::clear()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
}

LogHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(m_);
    auto &slot = hists_[name];
    if (!slot)
        slot = std::make_unique<LogHistogram>();
    return *slot;
}

void
MetricsRegistry::addCounterSource(std::string name,
                                  std::function<CounterMap()> source)
{
    std::lock_guard<std::mutex> lock(m_);
    sources_.emplace_back(std::move(name), std::move(source));
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot()
{
    // Pull sources outside the registry lock: a source may itself take
    // subsystem locks (e.g. IngestService::report), and holding m_
    // across them invites lock-order cycles.
    std::vector<std::pair<std::string, std::function<CounterMap()>>> srcs;
    {
        std::lock_guard<std::mutex> lock(m_);
        srcs = sources_;
    }
    CounterMap total;
    for (const auto &[name, fn] : srcs) {
        CounterMap part = fn();
        if (name.empty()) {
            mergeCounters(total, part);
        } else {
            for (const auto &[k, v] : part)
                total[name + "." + k] += v;
        }
    }

    std::lock_guard<std::mutex> lock(m_);
    Snapshot snap;
    snap.seq = seq_++;
    snap.total = total;
    for (const auto &[k, v] : total) {
        const auto it = prevTotal_.find(k);
        const uint64_t prev = it == prevTotal_.end() ? 0 : it->second;
        snap.delta[k] = v >= prev ? v - prev : v;
    }
    prevTotal_ = std::move(total);
    return snap;
}

uint64_t
MetricsRegistry::snapshotCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return seq_;
}

namespace {

void
appendJsonKey(std::string &out, const std::string &key)
{
    out += '"';
    for (char c : key) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
appendCounterObject(std::string &out, const CounterMap &m)
{
    out += '{';
    bool first = true;
    for (const auto &[k, v] : m) {
        if (!first)
            out += ',';
        first = false;
        appendJsonKey(out, k);
        out += ':';
        out += std::to_string(v);
    }
    out += '}';
}

std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

}  // namespace

std::string
MetricsRegistry::renderJsonLine(const Snapshot &snap) const
{
    std::string out = "{\"seq\":" + std::to_string(snap.seq);
    out += ",\"counters\":";
    appendCounterObject(out, snap.total);
    out += ",\"deltas\":";
    appendCounterObject(out, snap.delta);
    out += ",\"histograms\":{";
    {
        std::lock_guard<std::mutex> lock(m_);
        bool first = true;
        for (const auto &[name, h] : hists_) {
            if (!first)
                out += ',';
            first = false;
            appendJsonKey(out, name);
            char buf[192];
            std::snprintf(
                buf, sizeof(buf),
                ":{\"count\":%llu,\"mean\":%.3f,\"p50\":%llu,"
                "\"p95\":%llu,\"p99\":%llu,\"max\":%llu}",
                static_cast<unsigned long long>(h->count()),
                h->meanValue(),
                static_cast<unsigned long long>(h->percentile(0.50)),
                static_cast<unsigned long long>(h->percentile(0.95)),
                static_cast<unsigned long long>(h->percentile(0.99)),
                static_cast<unsigned long long>(h->max()));
            out += buf;
        }
    }
    out += "}}\n";
    return out;
}

std::string
MetricsRegistry::renderPrometheus(const Snapshot &snap) const
{
    std::string out;
    // Aggregate by sanitized name first: distinct dotted names may
    // collapse to one metric name, and promtool rejects a family that
    // appears under two # TYPE headers.  Counters follow the
    // OpenMetrics convention of a _total suffix.
    std::map<std::string, uint64_t> agg;
    for (const auto &[k, v] : snap.total)
        agg[sanitizeMetricName(k)] += v;
    for (const auto &[k, v] : agg) {
        const bool suffixed =
            k.size() >= 6 && k.compare(k.size() - 6, 6, "_total") == 0;
        const std::string name = suffixed ? k : k + "_total";
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(v) + "\n";
    }
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &[rawName, h] : hists_) {
        const std::string name = sanitizeMetricName(rawName);
        out += "# TYPE " + name + " histogram\n";
        uint64_t cum = 0;
        for (uint32_t i = 0; i < LogHistogram::kBucketCount; ++i) {
            const uint64_t c = h->bucketCount(i);
            if (c == 0)
                continue;
            cum += c;
            out += name + "_bucket{le=\"" +
                   std::to_string(LogHistogram::bucketHi(i)) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(h->count()) + "\n";
        out += name + "_sum " + std::to_string(h->sum()) + "\n";
        out += name + "_count " + std::to_string(h->count()) + "\n";
        // Precomputed quantile estimates as a labeled gauge family —
        // scrapers get p50/p95/p99 without replaying bucket math.
        out += "# TYPE " + name + "_quantile gauge\n";
        static constexpr struct { const char *label; double q; }
        kQuantiles[] = {{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto &[label, q] : kQuantiles)
            out += name + "_quantile{quantile=\"" + label + "\"} " +
                   std::to_string(h->percentile(q)) + "\n";
    }
    return out;
}

uint64_t
hostRssKb()
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "VmRSS:", 6) == 0) {
            unsigned long long v = 0;
            if (std::sscanf(line + 6, "%llu", &v) == 1)
                kb = v;
            break;
        }
    }
    std::fclose(f);
    return kb;
#else
    return 0;
#endif
}

}  // namespace c2m::obs
