#ifndef C2M_OBS_ANALYZE_HPP
#define C2M_OBS_ANALYZE_HPP

/**
 * @file
 * Trace reports and the anomaly watchdog.
 *
 * The report helpers aggregate a normalized ProfileInput (see
 * obs/profiler.hpp) into the views `tools/trace_analyze` prints:
 * top-N span families by total host time, and per-track latency
 * distributions of the drain spans.
 *
 * The Watchdog is a rule engine over MetricsRegistry snapshot deltas:
 * each evaluate() checks a fixed set of health rules (queue stall and
 * drop ratios, program-cache hit-rate collapse, uncorrected scrub
 * blocks, trace ring drops) against the *interval* counters, fires a
 * C2M_WARN per violated rule, and counts firings in its own
 * watchdog.* counters so alert rates are themselves observable.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace c2m::obs {

/** Aggregate of every span sharing one name (a span family). */
struct SpanFamily
{
    std::string name;
    uint64_t count = 0;
    int64_t totalHostNs = 0;
    int64_t maxHostNs = 0;
    double totalFabricNs = 0.0; ///< summed stamped deltas only

    double meanHostNs() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(totalHostNs) /
                                static_cast<double>(count);
    }
};

/** Span families sorted by total host time, truncated to @p topN. */
std::vector<SpanFamily> topSpanFamilies(const ProfileInput &in,
                                        size_t topN);

/** Render span families as an aligned table. */
std::string renderSpanFamilies(const std::vector<SpanFamily> &fams);

/**
 * Per-track latency report: feeds every span named @p spanName into a
 * LogHistogram per track and renders count/p50/p95/p99/max columns.
 */
std::string renderTrackLatency(const ProfileInput &in,
                               const std::string &spanName);

/** Thresholds for the anomaly rules; defaults match docs. */
struct WatchdogConfig
{
    /** service.stalls / service.submitted above this trips. */
    double stallRatioMax = 0.5;
    /** service.dropped / service.submitted above this trips. */
    double dropRatioMax = 0.01;
    /** Cache hit rate below this trips (given enough lookups). */
    double cacheHitRateMin = 0.5;
    /** Minimum interval lookups before the hit-rate rule applies. */
    uint64_t cacheMinLookups = 256;
    /** Any interval engine.uncorrected_blocks trips. */
    bool warnOnUncorrected = true;
    /** Any growth of the tracer's droppedEvents trips. */
    bool warnOnTraceDrops = true;
};

/**
 * Rule-based anomaly detector over snapshot deltas.
 *
 * Intended use: call registry.snapshot() periodically, hand each
 * snapshot to evaluate(). Each violated rule logs one C2M_WARN (the
 * logging layer rate-limits repeats) and bumps a per-rule counter.
 * Register counters() as a registry source (named "watchdog") to fold
 * alert totals back into the same snapshot stream being watched.
 */
class Watchdog
{
  public:
    explicit Watchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

    /** Check all rules against one snapshot. Returns alerts fired. */
    uint32_t evaluate(const MetricsRegistry::Snapshot &snap);

    /** watchdog.evaluations / .alerts / .alert.<rule> totals. */
    CounterMap counters() const;

    const WatchdogConfig &config() const { return cfg_; }

  private:
    WatchdogConfig cfg_;
    uint64_t evaluations_ = 0;
    uint64_t alerts_ = 0;
    uint64_t queueStall_ = 0;
    uint64_t queueDrop_ = 0;
    uint64_t cacheCollapse_ = 0;
    uint64_t uncorrected_ = 0;
    uint64_t traceDrops_ = 0;
    uint64_t prevTraceDropped_ = 0; ///< tracer() drop watermark
};

} // namespace c2m::obs

#endif // C2M_OBS_ANALYZE_HPP
