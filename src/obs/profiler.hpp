#ifndef C2M_OBS_PROFILER_HPP
#define C2M_OBS_PROFILER_HPP

/**
 * @file
 * Trace analytics: turns raw TraceRecorder events (live lanes or a
 * re-parsed Chrome export) into per-epoch critical-path profiles, and
 * turns EngineStats into a fabric-time ledger whose category rows sum
 * bit-exactly to the fabric_ns total every BENCH cell already
 * reports (the OpStats charge/merge discipline guarantees it; the
 * ledger verifies and renders it).
 *
 * The profiler follows the top-down attribution style of TMA-like
 * methodologies: first split the host epoch into phases
 * (cut/coalesce/execute/observer), then split execution across shards
 * to find the critical path and quantify skew, then attribute every
 * modeled fabric nanosecond to the activity that charged it.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "cim/fault.hpp"
#include "common/json.hpp"
#include "core/config.hpp"
#include "obs/trace.hpp"

namespace c2m::obs {

/** One closed span, normalized from either input source. */
struct ProfSpan
{
    std::string name;
    uint32_t track = 0; ///< shard index or kServiceTrack
    int64_t beginNs = 0;
    int64_t endNs = 0;
    double fabricDeltaNs = -1.0; ///< modeled ns consumed; <0 = none

    int64_t hostNs() const { return endNs - beginNs; }
};

/** One instant, normalized from either input source. */
struct ProfInstant
{
    std::string name;
    uint32_t track = 0;
    int64_t hostNs = 0;
    uint64_t arg = 0;
    uint64_t arg2 = 0;
};

/** Normalized trace: what both analysis paths consume. */
struct ProfileInput
{
    std::vector<ProfSpan> spans;
    std::vector<ProfInstant> instants;
    uint64_t eventCount = 0;
    uint64_t droppedEvents = 0;
};

/**
 * Normalize a quiesced recorder's lanes: pair begin/end events per
 * (lane, track) exactly like the Chrome exporter (orphan ends
 * dropped, unclosed begins closed at the lane's last stamp).
 */
ProfileInput profileFromRecorder(const TraceRecorder &rec);

/**
 * Normalize a parsed Chrome trace export (the output of
 * exportChromeTrace round-trips; fabric-clock mirror tracks are
 * skipped so spans are not double counted). Returns false when the
 * document lacks a traceEvents array.
 */
bool profileFromChromeJson(const json::Value &doc, ProfileInput &out);

/** Host time and modeled fabric time one shard consumed in an epoch. */
struct ShardDrainStat
{
    uint32_t shard = 0;
    uint64_t drains = 0;        ///< shard.drain spans aggregated
    int64_t hostNs = 0;         ///< summed host-clock drain time
    double fabricNs = 0.0;      ///< summed modeled fabric time
};

/** Critical-path profile of one service epoch (or synthetic window). */
struct EpochProfile
{
    int64_t beginNs = 0;
    int64_t endNs = 0;
    bool synthetic = false; ///< no epoch span: whole-trace window

    // Phase breakdown (host ns of the epoch.* sub-spans).
    int64_t cutNs = 0;
    int64_t coalesceNs = 0;
    int64_t executeNs = 0;
    int64_t observerNs = 0;

    std::vector<ShardDrainStat> shards;
    int32_t criticalShard = -1; ///< largest host drain time
    double skew = 0.0;          ///< straggler hostNs / mean hostNs
    double fabricCriticalNs = 0.0; ///< max per-shard fabric ns
    double utilization = 0.0; ///< fabricCriticalNs / host epoch ns

    // Planner activity inside the window (priced from instants).
    uint64_t planCommits = 0;
    uint64_t planFallbacks = 0;
    double planPricedNs = 0.0;     ///< summed committed plan prices
    double fallbackPricedNs = 0.0; ///< summed fallback prices

    int64_t hostNs() const { return endNs - beginNs; }
};

/**
 * Group the input into per-epoch profiles using the `epoch` spans on
 * the service track as windows. Traces without epoch spans (e.g. the
 * sharded_scaling bench driving the engine directly) yield one
 * synthetic profile covering the whole trace.
 */
std::vector<EpochProfile> buildEpochProfiles(const ProfileInput &in);

/** Render profiles as an aligned text report (common/table). */
std::string renderEpochProfiles(const std::vector<EpochProfile> &eps);

/**
 * The fabric-time ledger: EngineStats attribution rows plus the
 * invariant check that they sum — in the canonical left-to-right
 * order, hence bit-exactly — to the fabric_ns total.
 */
struct FabricLedger
{
    double rows[cim::kFabricCatCount] = {};
    double totalNs = 0.0;

    static FabricLedger fromStats(const core::EngineStats &st);

    /** Canonical-order sum of the rows. */
    double ledgerSum() const;

    /** Bit-exact: ledgerSum() == totalNs, no tolerance. */
    bool exact() const { return ledgerSum() == totalNs; }

    std::string render() const;
};

} // namespace c2m::obs

#endif // C2M_OBS_PROFILER_HPP
