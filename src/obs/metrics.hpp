#ifndef C2M_OBS_METRICS_HPP
#define C2M_OBS_METRICS_HPP

// Metrics registry: log-bucketed concurrent histograms plus periodic
// CounterMap snapshot diffing, exported as JSON lines or
// Prometheus-text.  LogHistogram replaces the bespoke DrainLatency
// ring in service::IngestService with a general-purpose distribution
// that any subsystem can feed.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace c2m::obs {

/**
 * Fixed-footprint log-bucketed histogram of uint64 samples with
 * lock-free concurrent recording.
 *
 * Buckets: values 0..3 are exact; above that each octave [2^e, 2^(e+1))
 * splits into 4 sub-buckets, so any bucket's width is at most 1/4 of
 * its lower bound (quantiles are accurate to ~25% relative error, and
 * exact below 4).  All 2^64 values map to one of kBucketCount buckets;
 * recording is two relaxed fetch_adds plus a CAS max.
 */
class LogHistogram {
public:
    // 4 exact buckets + 4 sub-buckets per octave for octaves 2..63.
    static constexpr uint32_t kSubBuckets = 4;
    static constexpr uint32_t kBucketCount = 4 + 62 * kSubBuckets;

    LogHistogram() = default;

    // Thread-safe, allocation-free.
    void record(uint64_t value);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    /** Smallest recorded sample (0 when empty). */
    uint64_t min() const {
        const uint64_t v = min_.load(std::memory_order_relaxed);
        return v == UINT64_MAX ? 0 : v;
    }
    double meanValue() const;

    /**
     * Quantile estimate, q in [0, 1].  Uses the same rank convention as
     * the exact-sort percentile it replaced (rank = floor(q*(n-1)+0.5))
     * and interpolates the rank's position within its bucket (assuming
     * samples spread uniformly across the bucket) instead of returning
     * the bucket's upper edge, then clamps to the tracked [min, max].
     * Monotone in q; the exact order statistic lies in the same bucket,
     * so the estimate is always within one bucket width of it.
     */
    uint64_t percentile(double q) const;

    // Reset every cell to zero (not atomic with concurrent writers).
    void clear();

    static uint32_t bucketIndex(uint64_t value);
    // Inclusive lower / exclusive upper value edges of bucket i.
    static uint64_t bucketLo(uint32_t index);
    static uint64_t bucketHi(uint32_t index);

    uint64_t bucketCount(uint32_t index) const {
        return buckets_[index].load(std::memory_order_relaxed);
    }

private:
    std::atomic<uint64_t> buckets_[kBucketCount] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
};

/**
 * Names histograms and counter sources, snapshots them on demand, and
 * renders the snapshots as JSON lines (one object per snapshot, for
 * metrics.jsonl files) or Prometheus text exposition.
 *
 * Counter sources are pull-based: register a callable returning the
 * subsystem's current CounterMap (e.g. [&]{ return svc.report(); });
 * snapshot() diffs against the previous snapshot so every emitted object
 * carries both running totals and per-interval deltas.
 */
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create a named histogram; the registry owns it. */
    LogHistogram &histogram(const std::string &name);

    /** Register a pull source merged into every snapshot. */
    void addCounterSource(std::string name,
                          std::function<CounterMap()> source);

    struct Snapshot {
        uint64_t seq = 0;
        CounterMap total;   // merged counters from all sources
        CounterMap delta;   // total minus previous snapshot's total
    };

    /** Pull all sources, diff against the previous snapshot. */
    Snapshot snapshot();

    /** Snapshots taken so far. */
    uint64_t snapshotCount() const;

    /**
     * One JSON object (single line, newline-terminated) for a snapshot:
     * {"seq":N,"counters":{...},"deltas":{...},"histograms":{name:
     * {"count":..,"mean":..,"p50":..,"p95":..,"p99":..,"max":..}}}.
     * Key order is deterministic (CounterMap is sorted; histogram names
     * are emitted sorted).
     */
    std::string renderJsonLine(const Snapshot &snap) const;

    /**
     * Prometheus text exposition of a snapshot: counters as counters,
     * histograms as <name>_bucket{le="..."} / _sum / _count series.
     * Metric names are sanitized to [a-zA-Z0-9_:].
     */
    std::string renderPrometheus(const Snapshot &snap) const;

private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<LogHistogram>> hists_;
    std::vector<std::pair<std::string, std::function<CounterMap()>>>
        sources_;
    CounterMap prevTotal_;
    uint64_t seq_ = 0;
};

/** Resident-set size of this process in KiB (0 if unavailable). */
uint64_t hostRssKb();

}  // namespace c2m::obs

#endif  // C2M_OBS_METRICS_HPP
