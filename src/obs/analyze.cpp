#include "obs/analyze.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"

namespace c2m::obs {

std::vector<SpanFamily>
topSpanFamilies(const ProfileInput &in, size_t topN)
{
    std::map<std::string, SpanFamily> byName;
    for (const ProfSpan &s : in.spans) {
        SpanFamily &f = byName[s.name];
        f.name = s.name;
        ++f.count;
        f.totalHostNs += s.hostNs();
        f.maxHostNs = std::max(f.maxHostNs, s.hostNs());
        if (s.fabricDeltaNs >= 0.0)
            f.totalFabricNs += s.fabricDeltaNs;
    }
    std::vector<SpanFamily> fams;
    fams.reserve(byName.size());
    for (auto &[name, f] : byName)
        fams.push_back(std::move(f));
    std::sort(fams.begin(), fams.end(),
              [](const SpanFamily &a, const SpanFamily &b) {
                  return a.totalHostNs != b.totalHostNs
                             ? a.totalHostNs > b.totalHostNs
                             : a.name < b.name;
              });
    if (fams.size() > topN)
        fams.resize(topN);
    return fams;
}

std::string
renderSpanFamilies(const std::vector<SpanFamily> &fams)
{
    TextTable t({"span", "count", "total_us", "mean_us", "max_us",
                 "fabric_us"});
    for (const SpanFamily &f : fams)
        t.addRow({f.name, TextTable::fmt(f.count),
                  TextTable::fmt(
                      static_cast<double>(f.totalHostNs) / 1e3, 1),
                  TextTable::fmt(f.meanHostNs() / 1e3, 2),
                  TextTable::fmt(
                      static_cast<double>(f.maxHostNs) / 1e3, 1),
                  TextTable::fmt(f.totalFabricNs / 1e3, 1)});
    return t.render();
}

std::string
renderTrackLatency(const ProfileInput &in,
                   const std::string &spanName)
{
    std::map<uint32_t, std::unique_ptr<LogHistogram>> hists;
    for (const ProfSpan &s : in.spans) {
        if (s.name != spanName)
            continue;
        auto &h = hists[s.track];
        if (!h)
            h = std::make_unique<LogHistogram>();
        h->record(static_cast<uint64_t>(std::max<int64_t>(
            0, s.hostNs())));
    }
    TextTable t({"track", "count", "p50_ns", "p95_ns", "p99_ns",
                 "max_ns"});
    for (const auto &[track, h] : hists)
        t.addRow({track == kServiceTrack
                      ? std::string("service")
                      : "shard" + std::to_string(track),
                  TextTable::fmt(h->count()),
                  TextTable::fmt(h->percentile(0.50)),
                  TextTable::fmt(h->percentile(0.95)),
                  TextTable::fmt(h->percentile(0.99)),
                  TextTable::fmt(h->max())});
    return t.render();
}

namespace {

/**
 * Sum every delta whose key equals @p suffix or ends in ".<suffix>".
 * Sources may be registered under a prefix name, so the watchdog
 * matches by suffix rather than assuming a fixed registration layout.
 */
uint64_t
sumBySuffix(const CounterMap &m, const std::string &suffix)
{
    const std::string dotted = "." + suffix;
    uint64_t total = 0;
    for (const auto &[k, v] : m) {
        if (k == suffix ||
            (k.size() > dotted.size() &&
             k.compare(k.size() - dotted.size(), dotted.size(),
                       dotted) == 0))
            total += v;
    }
    return total;
}

} // namespace

uint32_t
Watchdog::evaluate(const MetricsRegistry::Snapshot &snap)
{
    ++evaluations_;
    uint32_t fired = 0;
    const CounterMap &d = snap.delta;

    const uint64_t submitted = sumBySuffix(d, "service.submitted");
    if (submitted > 0) {
        const uint64_t stalls = sumBySuffix(d, "service.stalls");
        const double stallRatio =
            static_cast<double>(stalls) /
            static_cast<double>(submitted);
        if (stallRatio > cfg_.stallRatioMax) {
            ++queueStall_;
            ++fired;
            C2M_WARN("watchdog: ingest stall ratio ", stallRatio,
                     " exceeds ", cfg_.stallRatioMax, " (", stalls,
                     " stalls / ", submitted,
                     " submitted this interval)");
        }
        const uint64_t dropped = sumBySuffix(d, "service.dropped");
        const double dropRatio =
            static_cast<double>(dropped) /
            static_cast<double>(submitted);
        if (dropRatio > cfg_.dropRatioMax) {
            ++queueDrop_;
            ++fired;
            C2M_WARN("watchdog: ingest drop ratio ", dropRatio,
                     " exceeds ", cfg_.dropRatioMax, " (", dropped,
                     " dropped / ", submitted,
                     " submitted this interval)");
        }
    }

    const uint64_t hits = sumBySuffix(d, "engine.program_cache_hits");
    const uint64_t misses =
        sumBySuffix(d, "engine.program_cache_misses");
    const uint64_t lookups = hits + misses;
    if (lookups >= cfg_.cacheMinLookups) {
        const double hitRate = static_cast<double>(hits) /
                               static_cast<double>(lookups);
        if (hitRate < cfg_.cacheHitRateMin) {
            ++cacheCollapse_;
            ++fired;
            C2M_WARN("watchdog: program cache hit rate ", hitRate,
                     " below ", cfg_.cacheHitRateMin, " (", hits,
                     " hits / ", lookups,
                     " lookups this interval)");
        }
    }

    if (cfg_.warnOnUncorrected) {
        const uint64_t bad =
            sumBySuffix(d, "engine.uncorrected_blocks");
        if (bad > 0) {
            ++uncorrected_;
            ++fired;
            C2M_WARN("watchdog: ", bad,
                     " uncorrected block(s) this interval -- "
                     "counters may be silently corrupt; raise scrub "
                     "rate or strengthen ECC");
        }
    }

    if (cfg_.warnOnTraceDrops) {
        if (const TraceRecorder *tr = tracer()) {
            const uint64_t dropped = tr->droppedEvents();
            if (dropped > prevTraceDropped_) {
                ++traceDrops_;
                ++fired;
                C2M_WARN("watchdog: trace ring dropped ",
                         dropped - prevTraceDropped_,
                         " event(s) this interval (", dropped,
                         " total); exports are truncated");
            }
            prevTraceDropped_ = dropped;
        }
    }

    alerts_ += fired;
    return fired;
}

CounterMap
Watchdog::counters() const
{
    return {
        {"evaluations", evaluations_},
        {"alerts", alerts_},
        {"alert.queue_stall", queueStall_},
        {"alert.queue_drop", queueDrop_},
        {"alert.cache_collapse", cacheCollapse_},
        {"alert.uncorrected", uncorrected_},
        {"alert.trace_drops", traceDrops_},
    };
}

} // namespace c2m::obs
