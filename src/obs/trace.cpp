#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "common/logging.hpp"

namespace c2m::obs {

namespace detail {
std::atomic<TraceRecorder *> g_tracer{nullptr};
}  // namespace detail

namespace {

std::atomic<uint64_t> g_generation{0};

// Logging hook: warnings / informs that pass rate limiting show up as
// instant events on the service track.  The message text itself stays
// with the sink; the timeline records that (and when) it fired.
void
logHook(void *ctx, LogLevel lvl, const char *)
{
    auto *tr = static_cast<TraceRecorder *>(ctx);
    tr->instant(lvl == LogLevel::Warn ? "log.warn" : "log.inform",
                kServiceTrack);
}

}  // namespace

// One writer lane: a preallocated ring plus a monotonically increasing
// cursor.  Padded so lanes on adjacent indices do not false-share.
struct alignas(64) TraceRecorder::Lane {
    std::unique_ptr<TraceEvent[]> ring;
    std::atomic<uint64_t> cursor{0};
};

TraceRecorder::TraceRecorder(TraceConfig cfg)
    : cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1)
{
    if (cfg_.lanes == 0)
        cfg_.lanes = 1;
    if (cfg_.capacityPerLane == 0)
        cfg_.capacityPerLane = 1;
    lanes_ = std::vector<Lane>(cfg_.lanes);
    for (auto &ln : lanes_)
        ln.ring = std::make_unique<TraceEvent[]>(cfg_.capacityPerLane);
}

TraceRecorder::~TraceRecorder()
{
    uninstall();
}

void
TraceRecorder::install()
{
    detail::g_tracer.store(this, std::memory_order_release);
    setLogTraceHook(&logHook, this);
}

void
TraceRecorder::uninstall()
{
    TraceRecorder *expected = this;
    detail::g_tracer.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
    if (logTraceHookCtx() == this)
        setLogTraceHook(nullptr, nullptr);
}

uint32_t
TraceRecorder::laneForThisThread()
{
    // Lane choice is sticky per (thread, recorder): the generation tag
    // invalidates the cached lane when a new recorder is constructed.
    thread_local uint64_t cachedGen = 0;
    thread_local uint32_t cachedLane = 0;
    if (cachedGen != generation_) {
        cachedGen = generation_;
        cachedLane = nextLane_.fetch_add(1, std::memory_order_relaxed) %
                     cfg_.lanes;
    }
    return cachedLane;
}

void
TraceRecorder::record(const TraceEvent &ev)
{
    Lane &ln = lanes_[laneForThisThread()];
    const uint64_t slot = ln.cursor.fetch_add(1, std::memory_order_relaxed);
    ln.ring[slot % cfg_.capacityPerLane] = ev;
    // First wrap anywhere: warn once so a truncated trace is never
    // silently analyzed as complete.  The flag is set before warning —
    // the log hook re-enters record() to stamp the warning itself, and
    // must not recurse into a second warn.
    if (slot >= cfg_.capacityPerLane &&
        !wrapWarned_.exchange(true, std::memory_order_relaxed)) {
        C2M_WARN("trace ring wrapped: oldest events are being "
                 "overwritten (capacity ",
                 cfg_.capacityPerLane,
                 " per lane); trace export will be truncated");
    }
}

uint64_t
TraceRecorder::eventCount() const
{
    uint64_t n = 0;
    for (const auto &ln : lanes_)
        n += ln.cursor.load(std::memory_order_relaxed);
    return n;
}

uint64_t
TraceRecorder::droppedEvents() const
{
    uint64_t n = 0;
    for (const auto &ln : lanes_) {
        const uint64_t c = ln.cursor.load(std::memory_order_relaxed);
        if (c > cfg_.capacityPerLane)
            n += c - cfg_.capacityPerLane;
    }
    return n;
}

std::vector<TraceEvent>
TraceRecorder::laneSnapshot(uint32_t lane) const
{
    std::vector<TraceEvent> out;
    if (lane >= cfg_.lanes)
        return out;
    const Lane &ln = lanes_[lane];
    const uint64_t cur = ln.cursor.load(std::memory_order_acquire);
    const uint64_t cap = cfg_.capacityPerLane;
    const uint64_t n = std::min(cur, cap);
    out.reserve(n);
    // Oldest retained slot first.
    const uint64_t start = cur - n;
    for (uint64_t i = 0; i < n; ++i)
        out.push_back(ln.ring[(start + i) % cap]);
    return out;
}

namespace {

// One serialized Chrome event, pre-JSON: sortable by (ts, seq) so
// begins stay ahead of the ends/children they enclose.
struct ChromeEvent {
    double tsUs;
    uint64_t seq;
    std::string json;
};

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

uint32_t
hostPid(uint32_t track)
{
    return track == kServiceTrack ? 0 : track + 1;
}

constexpr uint32_t kFabricPidOffset = 1000;

void
pushEvent(std::vector<ChromeEvent> &out, uint64_t &seq, const char *ph,
          const char *name, uint32_t pid, uint32_t tid, double tsUs,
          uint64_t arg, uint64_t arg2, EventKind kind,
          double fabricDeltaNs = -1.0)
{
    std::string j = "{\"ph\":\"";
    j += ph;
    j += "\",\"name\":\"";
    appendEscaped(j, name);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f", pid, tid, tsUs);
    j += buf;
    if (fabricDeltaNs >= 0.0) {
        // Modeled fabric time consumed by the closing span, so JSON
        // consumers (tools/trace_analyze) recover per-span fabric
        // deltas without the fabric-clock mirror track.
        std::snprintf(buf, sizeof(buf),
                      ",\"args\":{\"fabric_ns\":%.3f}", fabricDeltaNs);
        j += buf;
    } else if (kind == EventKind::Counter) {
        std::snprintf(buf, sizeof(buf),
                      ",\"args\":{\"value\":%llu}",
                      static_cast<unsigned long long>(arg));
        j += buf;
    } else if (kind == EventKind::Instant) {
        j += ",\"s\":\"t\"";
        if (arg != 0 || arg2 != 0) {
            std::snprintf(buf, sizeof(buf),
                          ",\"args\":{\"arg\":%llu,\"arg2\":%llu}",
                          static_cast<unsigned long long>(arg),
                          static_cast<unsigned long long>(arg2));
            j += buf;
        }
    }
    j += "}";
    out.push_back({tsUs, seq++, std::move(j)});
}

void
pushMeta(std::vector<ChromeEvent> &out, uint64_t &seq, uint32_t pid,
         const std::string &processName)
{
    std::string j =
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
        std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"";
    appendEscaped(j, processName.c_str());
    j += "\"}}";
    out.push_back({-1.0, seq++, std::move(j)});
}

std::string
trackLabel(uint32_t pid)
{
    const bool fabric = pid >= kFabricPidOffset;
    const uint32_t host = fabric ? pid - kFabricPidOffset : pid;
    std::string base =
        host == 0 ? std::string("service")
                  : "shard " + std::to_string(host - 1);
    return base + (fabric ? " (fabric clock)" : " (host clock)");
}

}  // namespace

std::string
exportChromeTrace(const TraceRecorder &rec)
{
    std::vector<ChromeEvent> events;
    uint64_t seq = 0;
    std::vector<uint32_t> pidsSeen;
    auto notePid = [&](uint32_t pid) {
        if (std::find(pidsSeen.begin(), pidsSeen.end(), pid) ==
            pidsSeen.end())
            pidsSeen.push_back(pid);
    };

    for (uint32_t lane = 0; lane < rec.config().lanes; ++lane) {
        const auto evs = rec.laneSnapshot(lane);
        const uint32_t tid = lane + 1;

        // Per-track span stacks for this lane: pairs each SpanEnd with
        // its matching SpanBegin, drops orphan ends from ring wrap, and
        // closes trailing begins at the lane's last timestamp.
        struct Open { TraceEvent ev; };
        std::map<uint32_t, std::vector<Open>> open;
        int64_t lastHostNs = 0;

        for (const TraceEvent &ev : evs) {
            lastHostNs = std::max(lastHostNs, ev.hostNs);
            const uint32_t pid = hostPid(ev.track);
            const double tsUs = static_cast<double>(ev.hostNs) / 1000.0;
            switch (ev.kind) {
            case EventKind::SpanBegin:
                open[ev.track].push_back({ev});
                break;
            case EventKind::SpanEnd: {
                auto &stack = open[ev.track];
                if (stack.empty())
                    break;  // orphan end: begin lost to ring wrap
                const TraceEvent &b = stack.back().ev;
                const bool stamped =
                    b.fabricNs > 0 && ev.fabricNs >= b.fabricNs;
                notePid(pid);
                pushEvent(events, seq, "B", b.name, pid, tid,
                          static_cast<double>(b.hostNs) / 1000.0, 0, 0,
                          EventKind::SpanBegin);
                pushEvent(events, seq, "E", b.name, pid, tid, tsUs, 0, 0,
                          EventKind::SpanEnd,
                          stamped ? ev.fabricNs - b.fabricNs : -1.0);
                if (stamped) {
                    const uint32_t fpid = pid + kFabricPidOffset;
                    notePid(fpid);
                    pushEvent(events, seq, "B", b.name, fpid, tid,
                              b.fabricNs / 1000.0, 0, 0,
                              EventKind::SpanBegin);
                    pushEvent(events, seq, "E", b.name, fpid, tid,
                              ev.fabricNs / 1000.0, 0, 0,
                              EventKind::SpanEnd);
                }
                stack.pop_back();
                break;
            }
            case EventKind::Instant:
            case EventKind::Counter: {
                const char *ph =
                    ev.kind == EventKind::Counter ? "C" : "i";
                notePid(pid);
                pushEvent(events, seq, ph, ev.name, pid, tid, tsUs,
                          ev.arg, ev.arg2, ev.kind);
                if (ev.fabricNs > 0) {
                    const uint32_t fpid = pid + kFabricPidOffset;
                    notePid(fpid);
                    pushEvent(events, seq, ph, ev.name, fpid, tid,
                              ev.fabricNs / 1000.0, ev.arg, ev.arg2,
                              ev.kind);
                }
                break;
            }
            }
        }
        // Unclosed begins (recorder stopped mid-span): synthesize an
        // end at the lane's final host timestamp so the span renders.
        for (auto &[track, stack] : open) {
            const uint32_t pid = hostPid(track);
            for (const Open &o : stack) {
                notePid(pid);
                pushEvent(events, seq, "B", o.ev.name, pid, tid,
                          static_cast<double>(o.ev.hostNs) / 1000.0, 0,
                          0, EventKind::SpanBegin);
                pushEvent(events, seq, "E", o.ev.name, pid, tid,
                          static_cast<double>(lastHostNs) / 1000.0, 0,
                          0, EventKind::SpanEnd);
            }
        }
    }

    std::sort(pidsSeen.begin(), pidsSeen.end());
    for (uint32_t pid : pidsSeen)
        pushMeta(events, seq, pid, trackLabel(pid));

    // Stable order: metadata first (ts -1), then by timestamp with the
    // record sequence breaking ties so begins precede their children.
    std::stable_sort(events.begin(), events.end(),
                     [](const ChromeEvent &a, const ChromeEvent &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.seq < b.seq;
                     });

    std::string out = "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events.size(); ++i) {
        out += events[i].json;
        if (i + 1 < events.size())
            out += ",";
        out += "\n";
    }
    out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{";
    out += "\"event_count\":" + std::to_string(rec.eventCount());
    out += ",\"dropped_events\":" + std::to_string(rec.droppedEvents());
    out += "}}\n";
    return out;
}

bool
writeChromeTrace(const TraceRecorder &rec, const std::string &path)
{
    const std::string json = exportChromeTrace(rec);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const size_t n = std::fwrite(json.data(), 1, json.size(), f);
    const int rc = std::fclose(f);
    return n == json.size() && rc == 0;
}

}  // namespace c2m::obs
