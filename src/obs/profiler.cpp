#include "obs/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "common/table.hpp"

namespace c2m::obs {

ProfileInput
profileFromRecorder(const TraceRecorder &rec)
{
    ProfileInput out;
    out.eventCount = rec.eventCount();
    out.droppedEvents = rec.droppedEvents();
    for (uint32_t lane = 0; lane < rec.config().lanes; ++lane) {
        const auto evs = rec.laneSnapshot(lane);
        // Same pairing discipline as the Chrome exporter: per-track
        // stacks, orphan ends dropped, unclosed begins closed at the
        // lane's final stamp.
        std::map<uint32_t, std::vector<TraceEvent>> open;
        int64_t lastHostNs = 0;
        for (const TraceEvent &ev : evs) {
            lastHostNs = std::max(lastHostNs, ev.hostNs);
            switch (ev.kind) {
            case EventKind::SpanBegin:
                open[ev.track].push_back(ev);
                break;
            case EventKind::SpanEnd: {
                auto &stack = open[ev.track];
                if (stack.empty())
                    break;
                const TraceEvent &b = stack.back();
                const bool stamped =
                    b.fabricNs > 0 && ev.fabricNs >= b.fabricNs;
                out.spans.push_back(
                    {b.name, b.track, b.hostNs, ev.hostNs,
                     stamped ? ev.fabricNs - b.fabricNs : -1.0});
                stack.pop_back();
                break;
            }
            case EventKind::Instant:
                out.instants.push_back({ev.name, ev.track, ev.hostNs,
                                        ev.arg, ev.arg2});
                break;
            case EventKind::Counter:
                break; // sampled gauges are not span analytics
            }
        }
        for (auto &[track, stack] : open)
            for (const TraceEvent &b : stack)
                out.spans.push_back(
                    {b.name, b.track, b.hostNs, lastHostNs, -1.0});
    }
    return out;
}

namespace {

uint32_t
trackFromPid(double pid)
{
    // Chrome export: pid 0 = service, pid 1+s = shard s.
    return pid < 0.5 ? kServiceTrack
                     : static_cast<uint32_t>(pid + 0.5) - 1;
}

int64_t
nsFromUs(double tsUs)
{
    return static_cast<int64_t>(std::llround(tsUs * 1000.0));
}

} // namespace

bool
profileFromChromeJson(const json::Value &doc, ProfileInput &out)
{
    out = ProfileInput{};
    const json::Value *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return false;
    if (const json::Value *other = doc.find("otherData")) {
        out.eventCount = static_cast<uint64_t>(
            other->numberOr("event_count", 0.0));
        out.droppedEvents = static_cast<uint64_t>(
            other->numberOr("dropped_events", 0.0));
    }
    // Per (pid, tid) begin stacks; tid separates writer lanes so the
    // pairing mirrors export-time structure.
    struct Key
    {
        uint32_t pid, tid;
        bool operator<(const Key &o) const
        {
            return pid != o.pid ? pid < o.pid : tid < o.tid;
        }
    };
    struct Begin
    {
        std::string name;
        int64_t ns;
    };
    std::map<Key, std::vector<Begin>> open;
    for (const json::Value &ev : events->items) {
        if (!ev.isObject())
            continue;
        const std::string ph = ev.stringOr("ph", "");
        const double pid = ev.numberOr("pid", 0.0);
        if (pid >= 1000.0)
            continue; // fabric-clock mirror: host spans carry deltas
        const uint32_t tid =
            static_cast<uint32_t>(ev.numberOr("tid", 0.0));
        const Key key{static_cast<uint32_t>(pid), tid};
        const int64_t ns = nsFromUs(ev.numberOr("ts", 0.0));
        if (ph == "B") {
            open[key].push_back({ev.stringOr("name", "?"), ns});
        } else if (ph == "E") {
            auto &stack = open[key];
            if (stack.empty())
                continue;
            double fabricDelta = -1.0;
            if (const json::Value *args = ev.find("args"))
                fabricDelta = args->numberOr("fabric_ns", -1.0);
            out.spans.push_back({stack.back().name,
                                 trackFromPid(pid), stack.back().ns,
                                 ns, fabricDelta});
            stack.pop_back();
        } else if (ph == "i") {
            uint64_t arg = 0, arg2 = 0;
            if (const json::Value *args = ev.find("args")) {
                arg = static_cast<uint64_t>(
                    args->numberOr("arg", 0.0));
                arg2 = static_cast<uint64_t>(
                    args->numberOr("arg2", 0.0));
            }
            out.instants.push_back({ev.stringOr("name", "?"),
                                    trackFromPid(pid), ns, arg,
                                    arg2});
        }
    }
    return true;
}

namespace {

void
fillWindow(EpochProfile &ep, const ProfileInput &in)
{
    std::map<uint32_t, ShardDrainStat> perShard;
    for (const ProfSpan &s : in.spans) {
        if (s.beginNs < ep.beginNs || s.beginNs >= ep.endNs)
            continue;
        if (s.track == kServiceTrack) {
            if (s.name == "epoch.cut")
                ep.cutNs += s.hostNs();
            else if (s.name == "epoch.coalesce")
                ep.coalesceNs += s.hostNs();
            else if (s.name == "epoch.execute")
                ep.executeNs += s.hostNs();
            else if (s.name == "epoch.observer")
                ep.observerNs += s.hostNs();
            continue;
        }
        if (s.name != "shard.drain")
            continue;
        auto &sd = perShard[s.track];
        sd.shard = s.track;
        ++sd.drains;
        sd.hostNs += s.hostNs();
        if (s.fabricDeltaNs >= 0.0)
            sd.fabricNs += s.fabricDeltaNs;
    }
    int64_t maxHost = 0, sumHost = 0;
    for (const auto &[shard, sd] : perShard) {
        ep.shards.push_back(sd);
        sumHost += sd.hostNs;
        if (sd.hostNs > maxHost) {
            maxHost = sd.hostNs;
            ep.criticalShard = static_cast<int32_t>(shard);
        }
        ep.fabricCriticalNs = std::max(ep.fabricCriticalNs,
                                       sd.fabricNs);
    }
    if (!ep.shards.empty() && sumHost > 0) {
        const double mean = static_cast<double>(sumHost) /
                            static_cast<double>(ep.shards.size());
        ep.skew = static_cast<double>(maxHost) / mean;
    }
    if (ep.hostNs() > 0)
        ep.utilization = ep.fabricCriticalNs /
                         static_cast<double>(ep.hostNs());

    for (const ProfInstant &i : in.instants) {
        if (i.hostNs < ep.beginNs || i.hostNs >= ep.endNs)
            continue;
        // arg = priced plan ns, arg2 = priced per-op replay ns
        // (core/sharded.cpp emits both on each decision instant).
        if (i.name == "plan.commit") {
            ++ep.planCommits;
            ep.planPricedNs += static_cast<double>(i.arg);
        } else if (i.name == "plan.fallback") {
            ++ep.planFallbacks;
            ep.fallbackPricedNs += static_cast<double>(i.arg2);
        }
    }
}

} // namespace

std::vector<EpochProfile>
buildEpochProfiles(const ProfileInput &in)
{
    std::vector<EpochProfile> eps;
    for (const ProfSpan &s : in.spans) {
        if (s.track != kServiceTrack || s.name != "epoch")
            continue;
        EpochProfile ep;
        ep.beginNs = s.beginNs;
        ep.endNs = s.endNs;
        eps.push_back(ep);
    }
    if (eps.empty()) {
        // No service epochs (bench driving the engine directly):
        // analyze the whole trace as one synthetic window.
        if (in.spans.empty() && in.instants.empty())
            return eps;
        int64_t lo = std::numeric_limits<int64_t>::max();
        int64_t hi = std::numeric_limits<int64_t>::min();
        for (const ProfSpan &s : in.spans) {
            lo = std::min(lo, s.beginNs);
            hi = std::max(hi, s.endNs);
        }
        for (const ProfInstant &i : in.instants) {
            lo = std::min(lo, i.hostNs);
            hi = std::max(hi, i.hostNs);
        }
        EpochProfile ep;
        ep.synthetic = true;
        ep.beginNs = lo;
        ep.endNs = hi + 1; // half-open window includes the last stamp
        eps.push_back(ep);
    } else {
        std::sort(eps.begin(), eps.end(),
                  [](const EpochProfile &a, const EpochProfile &b) {
                      return a.beginNs < b.beginNs;
                  });
    }
    for (EpochProfile &ep : eps)
        fillWindow(ep, in);
    return eps;
}

std::string
renderEpochProfiles(const std::vector<EpochProfile> &eps)
{
    TextTable t({"epoch", "host_us", "cut_us", "coalesce_us",
                 "execute_us", "observer_us", "shards", "crit_shard",
                 "skew", "fabric_crit_us", "util", "commits",
                 "fallbacks"});
    for (size_t i = 0; i < eps.size(); ++i) {
        const EpochProfile &ep = eps[i];
        t.addRow({ep.synthetic ? "all" : std::to_string(i),
                  TextTable::fmt(
                      static_cast<double>(ep.hostNs()) / 1e3, 1),
                  TextTable::fmt(
                      static_cast<double>(ep.cutNs) / 1e3, 1),
                  TextTable::fmt(
                      static_cast<double>(ep.coalesceNs) / 1e3, 1),
                  TextTable::fmt(
                      static_cast<double>(ep.executeNs) / 1e3, 1),
                  TextTable::fmt(
                      static_cast<double>(ep.observerNs) / 1e3, 1),
                  std::to_string(ep.shards.size()),
                  ep.criticalShard < 0
                      ? std::string("-")
                      : std::to_string(ep.criticalShard),
                  TextTable::fmt(ep.skew, 3),
                  TextTable::fmt(ep.fabricCriticalNs / 1e3, 1),
                  TextTable::fmt(ep.utilization, 4),
                  std::to_string(ep.planCommits),
                  std::to_string(ep.planFallbacks)});
    }
    return t.render();
}

FabricLedger
FabricLedger::fromStats(const core::EngineStats &st)
{
    FabricLedger led;
    for (unsigned i = 0; i < cim::kFabricCatCount; ++i)
        led.rows[i] = st.fabric.attrNs[i];
    led.totalNs = st.fabric.fabricNs;
    return led;
}

double
FabricLedger::ledgerSum() const
{
    double total = 0.0;
    for (double row : rows)
        total += row;
    return total;
}

std::string
FabricLedger::render() const
{
    TextTable t({"category", "fabric_us", "share%"});
    for (unsigned i = 0; i < cim::kFabricCatCount; ++i) {
        const double share =
            totalNs > 0.0 ? 100.0 * rows[i] / totalNs : 0.0;
        t.addRow({cim::fabricCatName(static_cast<cim::FabricCat>(i)),
                  TextTable::fmt(rows[i] / 1e3, 2),
                  TextTable::fmt(share, 1)});
    }
    t.addRow({"total", TextTable::fmt(totalNs / 1e3, 2),
              totalNs > 0.0 ? "100.0" : "0.0"});
    std::string out = t.render();
    out += exact() ? "ledger == fabric_ns total: bit-exact\n"
                   : "LEDGER MISMATCH: rows do not sum to total\n";
    return out;
}

} // namespace c2m::obs
