#ifndef C2M_OBS_TRACE_HPP
#define C2M_OBS_TRACE_HPP

// Dual-clock event tracing: fixed-capacity per-lane ring buffers of POD
// trace events, each stamped with both host steady_clock nanoseconds and
// modeled fabric nanoseconds from the cost spine.  The recorder is
// installed into a global atomic pointer; when no recorder is installed
// the per-event cost is one relaxed atomic load and a predictable
// branch, and no allocation ever happens on the record path.
//
// Design constraints (see docs/observability.md):
//  - TraceEvent is trivially copyable; names are static string literals
//    owned by the call site, never copied or freed.
//  - Each writer thread is assigned a lane on first use (round-robin);
//    lanes are independent rings with a single atomic cursor, so
//    concurrent writers never contend on a shared ring.
//  - Rings overwrite oldest events on wrap; droppedEvents() reports how
//    many were overwritten so exports can annotate truncation.
//  - Export (snapshot / exportChromeTrace) is intended for quiesced
//    recorders: stop producers first, or accept torn tail events.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace c2m::obs {

enum class EventKind : uint8_t {
    SpanBegin = 0,   // opens a nested duration on (track, lane)
    SpanEnd = 1,     // closes the innermost open duration
    Instant = 2,     // point event (plan fallback, heal, warning, ...)
    Counter = 3,     // sampled value; arg carries the sample
};

// One trace record.  POD: memcpy-able into the ring with no ownership.
// `name` must be a string with static storage duration (a literal).
struct TraceEvent {
    const char *name = nullptr;
    int64_t hostNs = 0;    // host steady_clock, ns since recorder install
    double fabricNs = 0;   // modeled fabric time; 0 = no fabric stamp
    uint64_t arg = 0;      // kind-specific (counter value, priced ns, ...)
    uint64_t arg2 = 0;     // secondary payload (e.g. fallback price)
    uint32_t track = 0;    // shard index, or kServiceTrack
    EventKind kind = EventKind::Instant;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);

// Track id for events that belong to the service / drainer rather than
// a particular shard.
inline constexpr uint32_t kServiceTrack = 0xFFFFFFFFu;

struct TraceConfig {
    uint32_t lanes = 16;              // concurrent writer lanes
    uint32_t capacityPerLane = 1u << 14;  // events retained per lane
};

class TraceRecorder {
public:
    explicit TraceRecorder(TraceConfig cfg = {});
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    // Publish this recorder as the process-wide tracer / retract it.
    // Only one recorder may be installed at a time; install() replaces
    // any previous one.  Also hooks the logging layer so C2M_WARN /
    // C2M_INFORM appear as instant events.
    void install();
    void uninstall();

    // Record one event.  Thread-safe, lock-free, allocation-free.
    void record(const TraceEvent &ev);

    // Convenience stamps ------------------------------------------------
    int64_t nowHostNs() const {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }
    void spanBegin(const char *name, uint32_t track, double fabricNs = 0) {
        record({name, nowHostNs(), fabricNs, 0, 0, track,
                EventKind::SpanBegin});
    }
    void spanEnd(const char *name, uint32_t track, double fabricNs = 0) {
        record({name, nowHostNs(), fabricNs, 0, 0, track,
                EventKind::SpanEnd});
    }
    void instant(const char *name, uint32_t track, uint64_t arg = 0,
                 uint64_t arg2 = 0, double fabricNs = 0) {
        record({name, nowHostNs(), fabricNs, arg, arg2, track,
                EventKind::Instant});
    }
    void counter(const char *name, uint32_t track, uint64_t value,
                 double fabricNs = 0) {
        record({name, nowHostNs(), fabricNs, value, 0, track,
                EventKind::Counter});
    }

    // Introspection / export --------------------------------------------
    const TraceConfig &config() const { return cfg_; }
    // Total events accepted (including ones since overwritten).
    uint64_t eventCount() const;
    // Events lost to ring wrap-around across all lanes.
    uint64_t droppedEvents() const;

    // Copy out the retained events of one lane, oldest first.  Intended
    // for quiesced recorders (no concurrent writers).
    std::vector<TraceEvent> laneSnapshot(uint32_t lane) const;

private:
    friend struct TraceLaneHandle;
    struct Lane;

    uint32_t laneForThisThread();

    TraceConfig cfg_;
    std::vector<Lane> lanes_;
    std::atomic<uint32_t> nextLane_{0};
    std::chrono::steady_clock::time_point epoch_;
    uint64_t generation_;  // distinguishes recorders for thread-local lanes
    std::atomic<bool> wrapWarned_{false};  // one-shot ring-wrap warning
};

namespace detail {
extern std::atomic<TraceRecorder *> g_tracer;
}  // namespace detail

// The installed recorder, or nullptr when tracing is disabled.  This is
// the single relaxed-atomic branch on every instrumentation site:
//   if (auto *tr = obs::tracer()) tr->instant(...);
inline TraceRecorder *tracer() {
    return detail::g_tracer.load(std::memory_order_relaxed);
}

// RAII span: begins on construction, ends on destruction, no-ops when
// tracing is disabled at construction time.  fabric stamps are supplied
// separately at each edge because the modeled clock advances during the
// span body.
class ScopedSpan {
public:
    ScopedSpan(const char *name, uint32_t track, double fabricBeginNs = 0)
        : tr_(tracer()), name_(name), track_(track) {
        if (tr_) tr_->spanBegin(name_, track_, fabricBeginNs);
    }
    ~ScopedSpan() {
        if (tr_) tr_->spanEnd(name_, track_, fabricEndNs_);
    }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    // Set the fabric stamp the closing edge should carry.
    void setFabricEnd(double ns) { fabricEndNs_ = ns; }
    bool active() const { return tr_ != nullptr; }

private:
    TraceRecorder *tr_;
    const char *name_;
    uint32_t track_;
    double fabricEndNs_ = 0;
};

// Serialize the retained events of a quiesced recorder as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load).
//  - host-clock tracks:   pid 0 = service, pid 1+s = shard s
//  - fabric-clock tracks: pid 1000 + the host pid (only events carrying
//    a nonzero fabric stamp appear there)
//  - tid = writer lane + 1
// Unbalanced spans from ring wrap are sanitized: orphan ends are
// dropped, unclosed begins get a synthetic end at the last timestamp.
std::string exportChromeTrace(const TraceRecorder &rec);

// exportChromeTrace + write to a file.  Returns false on I/O failure.
bool writeChromeTrace(const TraceRecorder &rec, const std::string &path);

}  // namespace c2m::obs

#endif  // C2M_OBS_TRACE_HPP
