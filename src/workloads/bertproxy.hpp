#ifndef C2M_WORKLOADS_BERTPROXY_HPP
#define C2M_WORKLOADS_BERTPROXY_HPP

/**
 * @file
 * BERT proxy workload (Sec. 7.1, Fig. 3b, Fig. 17b, Fig. 18/19).
 *
 * Substitution (DESIGN.md): a multi-layer ternary-weight classifier
 * on synthetic int8 embeddings stands in for BERT/MNLI. It preserves
 * what Fig. 17b actually measures -- depth-amplified degradation of
 * classification accuracy when the MAC substrate is faulty -- with a
 * clean accuracy calibrated to ~84% on a 3-class (MNLI-like) task.
 * Fig. 3b's embedding distribution and Fig. 18's attention GEMM
 * shapes are also provided here.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "core/perf.hpp"

namespace c2m {
namespace workloads {

struct BertProxyConfig
{
    unsigned features = 48;
    unsigned layers = 4;     ///< stacked ternary GEMV layers
    unsigned classes = 3;    ///< MNLI-like
    size_t samples = 96;
    double cleanAccuracy = 0.84;
    double weightDensity = 0.5; ///< fraction of nonzero ternary weights
    uint64_t seed = 77;
};

class BertProxy
{
  public:
    explicit BertProxy(const BertProxyConfig &cfg);

    const BertProxyConfig &config() const { return cfg_; }

    /** Ternary weights of layer l (rows = inputs, cols = outputs). */
    const std::vector<std::vector<int8_t>> &weights(unsigned l) const
    {
        return weights_[l];
    }
    unsigned numLayers() const
    {
        return static_cast<unsigned>(weights_.size());
    }

    const std::vector<std::vector<int64_t>> &embeddings() const
    {
        return inputs_;
    }

    /** Fig. 3b: distribution of the 8-bit input embeddings. */
    Histogram embeddingHistogram() const;

    /**
     * A GEMV executor: given the layer input x and ternary weights W
     * (K rows of N), return y = x.W -- possibly computed by a faulty
     * CIM engine.
     */
    using GemvFn = std::function<std::vector<int64_t>(
        const std::vector<int64_t> &,
        const std::vector<std::vector<int8_t>> &)>;

    /**
     * Classification accuracy when every layer's GEMV runs through
     * @p gemv. Layers apply ReLU and an int8 requantization between
     * GEMVs; the last layer's argmax is the prediction.
     */
    double accuracy(const GemvFn &gemv) const;

    /** Accuracy with exact arithmetic (the SW line of Fig. 17b). */
    double cleanAccuracy() const;

    /** Forward one sample exactly (testing helper). */
    std::vector<int64_t> forwardClean(size_t sample) const;

    /** Fig. 18: the GEMM shapes of one BERT-base attention layer. */
    static std::vector<core::TensorWorkload> attentionWorkloads();

    /** Fig. 19: accumulation capacity needed by BERT layers. */
    static uint64_t projectionCapacity() { return 64; }
    static uint64_t attentionCapacity() { return 792; }

  private:
    std::vector<int64_t> forward(size_t sample,
                                 const GemvFn &gemv) const;

    BertProxyConfig cfg_;
    std::vector<std::vector<std::vector<int8_t>>> weights_;
    std::vector<std::vector<int64_t>> inputs_;
    std::vector<unsigned> labels_;
};

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_BERTPROXY_HPP
