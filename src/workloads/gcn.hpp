#ifndef C2M_WORKLOADS_GCN_HPP
#define C2M_WORKLOADS_GCN_HPP

/**
 * @file
 * Graph convolutional network workload (Sec. 7.1): node
 * classification on a PubMed-statistics graph (19717 nodes, average
 * degree ~4.5, 500 features, 16 hidden units, 3 classes). The layer
 * H' = A (H W) decomposes into a feature GEMM and a highly sparse
 * aggregation SpMM whose adjacency rows are exactly Count2Multiply's
 * binary masks.
 */

#include <cstdint>
#include <vector>

#include "core/perf.hpp"

namespace c2m {
namespace workloads {

struct GcnConfig
{
    size_t nodes = 19717;
    double avgDegree = 4.5;
    size_t features = 500;
    size_t hidden = 16;
    size_t classes = 3;
};

/**
 * The four GEMM/SpMM stages of a 2-layer GCN as tensor workloads.
 * Aggregation stages carry the graph's sparsity (1 - degree/nodes).
 */
std::vector<core::TensorWorkload> gcnWorkloads(
    const GcnConfig &cfg = GcnConfig{});

/** Total nominal ops of the network (for GOPS normalization). */
double gcnOps(const GcnConfig &cfg = GcnConfig{});

/**
 * A small synthetic graph (for functional tests): adjacency lists of
 * @p nodes nodes with roughly @p avg_degree random neighbours.
 */
std::vector<std::vector<uint32_t>> makeSyntheticGraph(
    size_t nodes, double avg_degree, uint64_t seed);

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_GCN_HPP
