#ifndef C2M_WORKLOADS_SPARSITY_HPP
#define C2M_WORKLOADS_SPARSITY_HPP

/**
 * @file
 * Controlled-sparsity operand generators (Sec. 7.2.3, Fig. 16).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace c2m {
namespace workloads {

/** Signed values in [-2^(bits-1), 2^(bits-1)) with given sparsity. */
std::vector<int64_t> sparseSignedVector(size_t n, unsigned bits,
                                        double sparsity,
                                        uint64_t seed);

/** Unsigned values in [1, 2^bits) with given sparsity (zeros). */
std::vector<uint64_t> sparseUnsignedVector(size_t n, unsigned bits,
                                           double sparsity,
                                           uint64_t seed);

/** Random ternary matrix (K x N) with given nonzero density. */
std::vector<std::vector<int8_t>> randomTernaryMatrix(size_t rows,
                                                     size_t cols,
                                                     double density,
                                                     uint64_t seed);

/** Random binary matrix (K x N) with given one-density. */
std::vector<std::vector<uint8_t>> randomBinaryMatrix(size_t rows,
                                                     size_t cols,
                                                     double density,
                                                     uint64_t seed);

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_SPARSITY_HPP
