#ifndef C2M_WORKLOADS_SPARSITY_HPP
#define C2M_WORKLOADS_SPARSITY_HPP

/**
 * @file
 * Controlled-sparsity operand generators (Sec. 7.2.3, Fig. 16).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/config.hpp"

namespace c2m {
namespace core {
class ShardedEngine;
} // namespace core
namespace service {
class IngestService;
} // namespace service

namespace workloads {

/** Signed values in [-2^(bits-1), 2^(bits-1)) with given sparsity. */
std::vector<int64_t> sparseSignedVector(size_t n, unsigned bits,
                                        double sparsity,
                                        uint64_t seed);

/** Unsigned values in [1, 2^bits) with given sparsity (zeros). */
std::vector<uint64_t> sparseUnsignedVector(size_t n, unsigned bits,
                                           double sparsity,
                                           uint64_t seed);

/** Random ternary matrix (K x N) with given nonzero density. */
std::vector<std::vector<int8_t>> randomTernaryMatrix(size_t rows,
                                                     size_t cols,
                                                     double density,
                                                     uint64_t seed);

/** Random binary matrix (K x N) with given one-density. */
std::vector<std::vector<uint8_t>> randomBinaryMatrix(size_t rows,
                                                     size_t cols,
                                                     double density,
                                                     uint64_t seed);

/**
 * Occurrence histogram of @p values (the Fig. 16 operand
 * distributions), counted in-memory through the sharded batch
 * engine: counter v accumulates the number of occurrences of value
 * v, one routed point update per element. Every value must be below
 * engine.numCounters(); the engine is used as-is (not cleared).
 */
Histogram valueHistogram(const std::vector<uint64_t> &values,
                         core::ShardedEngine &engine);

/** Same, over |v| of a signed operand vector. */
Histogram magnitudeHistogram(const std::vector<int64_t> &values,
                             core::ShardedEngine &engine);

/**
 * valueHistogram on a freshly built sharded engine over the selected
 * counting substrate, sized to the operand range; every
 * CountingBackend produces the same counts.
 */
Histogram valueHistogram(const std::vector<uint64_t> &values,
                         core::BackendKind backend,
                         unsigned num_shards = 1);

/** Same, over |v| of a signed operand vector. */
Histogram magnitudeHistogram(const std::vector<int64_t> &values,
                             core::BackendKind backend,
                             unsigned num_shards = 1);

/**
 * valueHistogram ingested asynchronously: one point update per
 * element, split across @p num_producers concurrent producers
 * submitting into @p service, read back with an epoch-consistent
 * snapshot. Counts match the blocking overloads.
 */
Histogram valueHistogram(const std::vector<uint64_t> &values,
                         service::IngestService &service,
                         unsigned num_producers = 1);

/** Same, over |v| of a signed operand vector. */
Histogram magnitudeHistogram(const std::vector<int64_t> &values,
                             service::IngestService &service,
                             unsigned num_producers = 1);

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_SPARSITY_HPP
