#include "workloads/dna.hpp"

#include <map>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "service/ingest.hpp"

namespace c2m {
namespace workloads {

namespace {

const char kBases[4] = {'A', 'C', 'G', 'T'};

unsigned
baseIndex(char c)
{
    switch (c) {
      case 'A':
        return 0;
      case 'C':
        return 1;
      case 'G':
        return 2;
      default:
        return 3;
    }
}

} // namespace

DnaWorkload::DnaWorkload(const DnaConfig &cfg) : cfg_(cfg)
{
    C2M_ASSERT(cfg.kmer >= 2 && cfg.kmer <= 8, "k-mer length 2..8");
    C2M_ASSERT(cfg.genomeLen % cfg.binSize == 0,
               "genome length must be a multiple of the bin size");
    Rng rng(cfg.seed);

    genome_.resize(cfg.genomeLen);
    for (auto &c : genome_)
        c = kBases[rng.nextBounded(4)];

    const size_t bins = cfg.genomeLen / cfg.binSize;
    const unsigned tokens = 1u << (2 * cfg.kmer);
    masks_.assign(tokens, std::vector<uint8_t>(bins, 0));
    for (size_t b = 0; b < bins; ++b) {
        const size_t start = b * cfg.binSize;
        for (size_t p = start;
             p + cfg.kmer <= start + cfg.binSize && p + cfg.kmer <=
                 genome_.size();
             ++p)
            masks_[tokenAt(genome_, p)][b] = 1;
    }

    reads_.reserve(cfg.numReads);
    for (size_t r = 0; r < cfg.numReads; ++r) {
        const size_t origin =
            rng.nextBounded(cfg.genomeLen - cfg.readLen);
        std::string seq = genome_.substr(origin, cfg.readLen);
        for (auto &c : seq)
            if (rng.nextBool(cfg.mutationRate))
                c = kBases[rng.nextBounded(4)];
        reads_.push_back(Read{std::move(seq), origin});
    }
}

unsigned
DnaWorkload::tokenAt(const std::string &s, size_t pos) const
{
    unsigned t = 0;
    for (unsigned i = 0; i < cfg_.kmer; ++i)
        t = (t << 2) | baseIndex(s[pos + i]);
    return t;
}

std::vector<std::pair<unsigned, unsigned>>
DnaWorkload::readTokens(const Read &read) const
{
    std::map<unsigned, unsigned> counts;
    for (size_t p = 0; p + cfg_.kmer <= read.seq.size(); ++p)
        ++counts[tokenAt(read.seq, p)];
    return {counts.begin(), counts.end()};
}

Histogram
DnaWorkload::repetitionHistogram() const
{
    Histogram h(0, 18);
    for (const auto &read : reads_)
        for (const auto &[token, count] : readTokens(read))
            h.add(count);
    return h;
}

Histogram
DnaWorkload::repetitionHistogram(core::ShardedEngine &engine) const
{
    const size_t n = engine.numCounters();
    std::vector<core::BatchOp> ops;
    for (const auto &read : reads_) {
        for (const auto &[token, count] : readTokens(read)) {
            (void)token;
            C2M_ASSERT(count < n, "repetition count ", count,
                       " needs more engine counters than ", n);
            ops.push_back({count, 1, 0});
        }
    }
    engine.accumulateBatch(ops);
    return core::countersToHistogram(engine, 0, 18);
}

Histogram
DnaWorkload::repetitionHistogram(service::IngestService &service,
                                 unsigned num_producers) const
{
    const size_t n = service.engine().numCounters();
    std::vector<core::BatchOp> ops;
    for (const auto &read : reads_) {
        for (const auto &[token, count] : readTokens(read)) {
            (void)token;
            C2M_ASSERT(count < n, "repetition count ", count,
                       " needs more engine counters than ", n);
            ops.push_back({count, 1, 0});
        }
    }
    service::submitConcurrent(service, ops, num_producers);
    const auto counters = service.readCounters();
    return core::countersToHistogram(counters, 0, 18);
}

Histogram
DnaWorkload::repetitionHistogram(core::BackendKind backend,
                                 unsigned num_shards) const
{
    core::EngineConfig cfg;
    cfg.backend = backend;
    cfg.radix = 4;
    cfg.capacityBits = 24;
    // Counters index repetition counts, bounded by the read length.
    cfg.numCounters = cfg_.readLen + 1;
    // One row covers the point mask; the drain planner's persistent
    // plane rows are reserved ADDITIVELY on top of this (ShardedEngine
    // asserts planePool_ > 0), so 1 never starves planned drains.
    cfg.maxMaskRows = 1;
    core::ShardedEngine engine(cfg, num_shards);
    return repetitionHistogram(engine);
}

std::vector<int64_t>
DnaWorkload::refScores(const Read &read) const
{
    std::vector<int64_t> scores(numBins(), 0);
    for (const auto &[token, count] : readTokens(read))
        for (size_t b = 0; b < scores.size(); ++b)
            if (masks_[token][b])
                scores[b] += count;
    return scores;
}

bool
DnaWorkload::truth(const Read &read, size_t bin) const
{
    // The bin holding the majority of the read (its midpoint); a
    // boundary-straddling read maps to the bin with most of its
    // k-mers, mirroring GRIM-Filter's per-bin ground truth.
    return (read.origin + cfg_.readLen / 2) / cfg_.binSize == bin;
}

int64_t
DnaWorkload::threshold(const Read &read) const
{
    const double tokens =
        static_cast<double>(read.seq.size() - cfg_.kmer + 1);
    return static_cast<int64_t>(cfg_.thresholdFrac * tokens);
}

BinaryScore
DnaWorkload::evaluate(
    const std::vector<std::vector<int64_t>> &scores) const
{
    C2M_ASSERT(scores.size() == reads_.size(),
               "need one score vector per read");
    BinaryScore bs;
    for (size_t r = 0; r < reads_.size(); ++r) {
        const int64_t thr = threshold(reads_[r]);
        C2M_ASSERT(scores[r].size() == numBins(),
                   "score vector width mismatch");
        for (size_t b = 0; b < scores[r].size(); ++b)
            bs.add(scores[r][b] >= thr, truth(reads_[r], b));
    }
    return bs;
}

} // namespace workloads
} // namespace c2m
