#include "workloads/llama.hpp"

namespace c2m {
namespace workloads {

std::vector<LlamaShape>
llamaGemvShapes()
{
    return {
        {"V0", "LLaMA", 1, 22016, 8192},
        {"V1", "LLaMA", 1, 8192, 22016},
        {"V2", "LLaMA-2", 1, 8192, 8192},
        {"V3", "LLaMA-2", 1, 28672, 8192},
        {"V4", "LLaMA-2", 1, 8192, 28672},
    };
}

std::vector<LlamaShape>
llamaGemmShapes()
{
    return {
        {"M0", "LLaMA", 8192, 22016, 8192},
        {"M1", "LLaMA", 8192, 8192, 22016},
        {"M2", "LLaMA-2", 8192, 8192, 8192},
        {"M3", "LLaMA-2", 8192, 28672, 8192},
        {"M4", "LLaMA-2", 8192, 8192, 28672},
    };
}

std::vector<LlamaShape>
llamaAllShapes()
{
    auto all = llamaGemvShapes();
    for (auto &s : llamaGemmShapes())
        all.push_back(s);
    return all;
}

} // namespace workloads
} // namespace c2m
