#ifndef C2M_WORKLOADS_LLAMA_HPP
#define C2M_WORKLOADS_LLAMA_HPP

/**
 * @file
 * GEMV/GEMM shapes from LLaMA and LLaMA-2 (Tab. 3): the key
 * computational loads of the models, used as proxies across the
 * evaluation (Figs. 14-16).
 */

#include <cstddef>
#include <string>
#include <vector>

namespace c2m {
namespace workloads {

struct LlamaShape
{
    std::string id;    ///< V0..V4 (GEMV), M0..M4 (GEMM)
    std::string model; ///< LLaMA / LLaMA-2
    size_t M;
    size_t N;
    size_t K;
};

/** The five GEMV shapes V0..V4 of Tab. 3. */
std::vector<LlamaShape> llamaGemvShapes();

/** The five GEMM shapes M0..M4 of Tab. 3. */
std::vector<LlamaShape> llamaGemmShapes();

/** All ten shapes in paper order (V0..V4, M0..M4). */
std::vector<LlamaShape> llamaAllShapes();

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_LLAMA_HPP
