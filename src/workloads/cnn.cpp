#include "workloads/cnn.hpp"

namespace c2m {
namespace workloads {

namespace {

CnnLayer
conv(const std::string &name, size_t spatial, size_t cin, size_t cout,
     size_t kernel)
{
    return {name, spatial * spatial, cout, cin * kernel * kernel};
}

CnnLayer
fc(const std::string &name, size_t in, size_t out)
{
    return {name, 1, out, in};
}

} // namespace

std::vector<CnnLayer>
lenetLayers()
{
    return {
        conv("C1", 28, 1, 6, 5),
        conv("C3", 10, 6, 16, 5),
        conv("C5", 1, 16, 120, 5),
        fc("F6", 120, 84),
        fc("OUT", 84, 10),
    };
}

std::vector<CnnLayer>
vgg13Layers()
{
    return {
        conv("conv1_1", 224, 3, 64, 3),
        conv("conv1_2", 224, 64, 64, 3),
        conv("conv2_1", 112, 64, 128, 3),
        conv("conv2_2", 112, 128, 128, 3),
        conv("conv3_1", 56, 128, 256, 3),
        conv("conv3_2", 56, 256, 256, 3),
        conv("conv4_1", 28, 256, 512, 3),
        conv("conv4_2", 28, 512, 512, 3),
        conv("conv5_1", 14, 512, 512, 3),
        conv("conv5_2", 14, 512, 512, 3),
        fc("fc6", 25088, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    };
}

std::vector<CnnLayer>
vgg16Layers()
{
    return {
        conv("conv1_1", 224, 3, 64, 3),
        conv("conv1_2", 224, 64, 64, 3),
        conv("conv2_1", 112, 64, 128, 3),
        conv("conv2_2", 112, 128, 128, 3),
        conv("conv3_1", 56, 128, 256, 3),
        conv("conv3_2", 56, 256, 256, 3),
        conv("conv3_3", 56, 256, 256, 3),
        conv("conv4_1", 28, 256, 512, 3),
        conv("conv4_2", 28, 512, 512, 3),
        conv("conv4_3", 28, 512, 512, 3),
        conv("conv5_1", 14, 512, 512, 3),
        conv("conv5_2", 14, 512, 512, 3),
        conv("conv5_3", 14, 512, 512, 3),
        fc("fc6", 25088, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    };
}

core::TensorWorkload
layerWorkload(const CnnLayer &layer, double sparsity)
{
    core::TensorWorkload w;
    w.M = layer.M;
    w.N = layer.N;
    w.K = layer.K;
    w.xBits = 8;
    w.sparsity = sparsity;
    w.ternary = true;
    return w;
}

double
networkOps(const std::vector<CnnLayer> &layers)
{
    double ops = 0.0;
    for (const auto &l : layers)
        ops += 2.0 * static_cast<double>(l.M) *
               static_cast<double>(l.N) * static_cast<double>(l.K);
    return ops;
}

} // namespace workloads
} // namespace c2m
