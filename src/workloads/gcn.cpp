#include "workloads/gcn.hpp"

#include "common/rng.hpp"

namespace c2m {
namespace workloads {

std::vector<core::TensorWorkload>
gcnWorkloads(const GcnConfig &cfg)
{
    const double agg_sparsity =
        1.0 - cfg.avgDegree / static_cast<double>(cfg.nodes);

    auto mk = [](size_t M, size_t N, size_t K, double sparsity) {
        core::TensorWorkload w;
        w.M = M;
        w.N = N;
        w.K = K;
        w.xBits = 8;
        w.sparsity = sparsity;
        w.ternary = true;
        return w;
    };

    return {
        // Layer 1: feature transform H W1, then aggregation A (HW1).
        mk(cfg.nodes, cfg.hidden, cfg.features, 0.0),
        mk(cfg.nodes, cfg.hidden, cfg.nodes, agg_sparsity),
        // Layer 2: H W2, then aggregation.
        mk(cfg.nodes, cfg.classes, cfg.hidden, 0.0),
        mk(cfg.nodes, cfg.classes, cfg.nodes, agg_sparsity),
    };
}

double
gcnOps(const GcnConfig &cfg)
{
    double ops = 0.0;
    for (const auto &w : gcnWorkloads(cfg))
        ops += 2.0 * static_cast<double>(w.M) *
               static_cast<double>(w.N) * static_cast<double>(w.K) *
               (1.0 - w.sparsity);
    return ops;
}

std::vector<std::vector<uint32_t>>
makeSyntheticGraph(size_t nodes, double avg_degree, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint32_t>> adj(nodes);
    const uint64_t edges = static_cast<uint64_t>(
        avg_degree * static_cast<double>(nodes) / 2.0);
    for (uint64_t e = 0; e < edges; ++e) {
        const uint32_t a =
            static_cast<uint32_t>(rng.nextBounded(nodes));
        const uint32_t b =
            static_cast<uint32_t>(rng.nextBounded(nodes));
        if (a == b)
            continue;
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    return adj;
}

} // namespace workloads
} // namespace c2m
