#include "workloads/bertproxy.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace workloads {

BertProxy::BertProxy(const BertProxyConfig &cfg) : cfg_(cfg)
{
    C2M_ASSERT(cfg.layers >= 1 && cfg.classes >= 2, "bad config");
    Rng rng(cfg.seed);

    auto make_layer = [&](unsigned rows, unsigned cols) {
        std::vector<std::vector<int8_t>> w(
            rows, std::vector<int8_t>(cols, 0));
        for (auto &row : w)
            for (auto &v : row)
                if (rng.nextBool(cfg.weightDensity))
                    v = rng.nextBool(0.5) ? 1 : -1;
        return w;
    };

    for (unsigned l = 0; l + 1 < cfg.layers; ++l)
        weights_.push_back(make_layer(cfg.features, cfg.features));
    weights_.push_back(make_layer(cfg.features, cfg.classes));

    inputs_.resize(cfg.samples);
    for (auto &x : inputs_) {
        x.resize(cfg.features);
        for (auto &v : x) {
            const double g = rng.nextGaussian() * 32.0;
            v = static_cast<int64_t>(
                std::clamp(g, -127.0, 127.0));
        }
    }

    // Labels: the clean prediction with probability cleanAccuracy,
    // otherwise a different class (models the network's own error).
    labels_.resize(cfg.samples);
    for (size_t s = 0; s < cfg.samples; ++s) {
        const auto logits = forwardClean(s);
        const unsigned pred = static_cast<unsigned>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        if (rng.nextBool(cfg.cleanAccuracy)) {
            labels_[s] = pred;
        } else {
            labels_[s] =
                (pred + 1 +
                 static_cast<unsigned>(
                     rng.nextBounded(cfg.classes - 1))) %
                cfg.classes;
        }
    }
}

Histogram
BertProxy::embeddingHistogram() const
{
    Histogram h(-128, 127);
    for (const auto &x : inputs_)
        for (int64_t v : x)
            h.add(v);
    return h;
}

std::vector<int64_t>
BertProxy::forward(size_t sample, const GemvFn &gemv) const
{
    std::vector<int64_t> x = inputs_[sample];
    for (unsigned l = 0; l < weights_.size(); ++l) {
        std::vector<int64_t> y = gemv(x, weights_[l]);
        if (l + 1 == weights_.size())
            return y;
        // ReLU + int8 requantization between layers.
        for (auto &v : y) {
            v = std::max<int64_t>(v, 0);
            v = std::min<int64_t>(v >> 5, 127);
        }
        x = std::move(y);
    }
    return x;
}

std::vector<int64_t>
BertProxy::forwardClean(size_t sample) const
{
    return forward(sample, [](const std::vector<int64_t> &x,
                              const std::vector<std::vector<int8_t>>
                                  &W) {
        std::vector<int64_t> y(W[0].size(), 0);
        for (size_t i = 0; i < x.size(); ++i)
            for (size_t j = 0; j < y.size(); ++j)
                y[j] += x[i] * W[i][j];
        return y;
    });
}

double
BertProxy::accuracy(const GemvFn &gemv) const
{
    size_t correct = 0;
    for (size_t s = 0; s < inputs_.size(); ++s) {
        const auto logits = forward(s, gemv);
        const unsigned pred = static_cast<unsigned>(
            std::max_element(logits.begin(), logits.end()) -
            logits.begin());
        if (pred == labels_[s])
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(inputs_.size());
}

double
BertProxy::cleanAccuracy() const
{
    return accuracy([](const std::vector<int64_t> &x,
                       const std::vector<std::vector<int8_t>> &W) {
        std::vector<int64_t> y(W[0].size(), 0);
        for (size_t i = 0; i < x.size(); ++i)
            for (size_t j = 0; j < y.size(); ++j)
                y[j] += x[i] * W[i][j];
        return y;
    });
}

std::vector<core::TensorWorkload>
BertProxy::attentionWorkloads()
{
    // BERT-base attention block, sequence length 128, hidden 768,
    // 12 heads of 64; head-level GEMMs folded into M.
    auto mk = [](size_t M, size_t N, size_t K) {
        core::TensorWorkload w;
        w.M = M;
        w.N = N;
        w.K = K;
        w.xBits = 8;
        w.ternary = true;
        return w;
    };
    return {
        mk(128, 2304, 768),  // fused QKV projection
        mk(1536, 128, 64),   // attention scores (12 heads x 128)
        mk(1536, 64, 128),   // context (12 heads)
        mk(128, 768, 768),   // output projection
        mk(128, 3072, 768),  // FFN up
        mk(128, 768, 3072),  // FFN down
    };
}

} // namespace workloads
} // namespace c2m
