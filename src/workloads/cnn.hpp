#ifndef C2M_WORKLOADS_CNN_HPP
#define C2M_WORKLOADS_CNN_HPP

/**
 * @file
 * Ternary-weight CNN layer shapes (Sec. 7.1): LeNet-5, VGG-13 and
 * VGG-16 convolutions lowered to GEMM via im2col (M = output
 * positions, K = Cin * kh * kw, N = Cout) plus the fully connected
 * layers. These drive the Fig. 18 op-count model.
 */

#include <string>
#include <vector>

#include "core/perf.hpp"

namespace c2m {
namespace workloads {

struct CnnLayer
{
    std::string name;
    size_t M; ///< output spatial positions (1 for FC)
    size_t N; ///< output channels / units
    size_t K; ///< input channels * kernel area
};

std::vector<CnnLayer> lenetLayers();
std::vector<CnnLayer> vgg13Layers();
std::vector<CnnLayer> vgg16Layers();

/** Convert a layer into a ternary tensor workload (8-bit inputs). */
core::TensorWorkload layerWorkload(const CnnLayer &layer,
                                   double sparsity = 0.0);

/** Total MAC op count (2*M*N*K summed) of a network. */
double networkOps(const std::vector<CnnLayer> &layers);

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_CNN_HPP
