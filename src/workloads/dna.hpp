#ifndef C2M_WORKLOADS_DNA_HPP
#define C2M_WORKLOADS_DNA_HPP

/**
 * @file
 * DNA pre-alignment filtering workload (Sec. 7.1, GRIM-Filter
 * style).
 *
 * A reference genome is split into bins; each bin stores a bitvector
 * of the k-mers it contains. Filtering a read counts, per bin, the
 * read's k-mer tokens present in the bin (token repetitions counted
 * as integers -- the Fig. 3a distribution); bins whose count clears a
 * threshold are candidate mapping locations. Ground truth is the
 * read's true origin, giving the F1 scores of Fig. 4b / Fig. 17a.
 *
 * Substitution (DESIGN.md): synthetic uniform ACGT genome and reads
 * with substitution errors in place of a human genome; preserves the
 * token-repetition statistics and fault sensitivity being studied.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/config.hpp"

namespace c2m {
namespace core {
class ShardedEngine;
} // namespace core
namespace service {
class IngestService;
} // namespace service

namespace workloads {

struct DnaConfig
{
    size_t genomeLen = 65536;
    size_t binSize = 512;     ///< genome bins (counter columns)
    unsigned kmer = 6;        ///< token length (4^k tokens)
    size_t readLen = 100;
    size_t numReads = 64;
    double mutationRate = 0.03;
    double thresholdFrac = 0.40; ///< accept if count >= frac * tokens
    uint64_t seed = 1234;
};

class DnaWorkload
{
  public:
    explicit DnaWorkload(const DnaConfig &cfg);

    const DnaConfig &config() const { return cfg_; }
    size_t numBins() const { return masks_.size() ? masks_[0].size() : 0; }
    size_t numTokens() const { return masks_.size(); }

    struct Read
    {
        std::string seq;
        size_t origin; ///< true genome offset
    };

    const std::vector<Read> &reads() const { return reads_; }

    /** Presence mask of token @p t across bins (the Z rows). */
    const std::vector<uint8_t> &tokenMask(unsigned t) const
    {
        return masks_[t];
    }

    /** (token, repetition count) pairs of a read (the inputs X). */
    std::vector<std::pair<unsigned, unsigned>> readTokens(
        const Read &read) const;

    /** Fig. 3a: token repetition histogram over all reads. */
    Histogram repetitionHistogram() const;

    /**
     * Same histogram counted in-memory through the sharded batch
     * engine: counter i accumulates the number of (token,
     * repetition = i) pairs, one routed point update per pair. The
     * engine is not cleared first; pass it freshly constructed (or
     * cleared) and sized so numCounters() exceeds the longest read's
     * token count.
     */
    Histogram repetitionHistogram(core::ShardedEngine &engine) const;

    /**
     * Same histogram counted on a freshly built sharded engine over
     * the selected counting substrate — any CountingBackend produces
     * the same counts, so this is the one-call way to run the DNA
     * distribution on Ambit, NVM or RCA shards.
     */
    Histogram repetitionHistogram(core::BackendKind backend,
                                  unsigned num_shards = 1) const;

    /**
     * Same histogram ingested asynchronously: the (token, repetition)
     * point updates are split across @p num_producers concurrent
     * producer threads submitting into @p service, then read back
     * with an epoch-consistent snapshot. Counts match the blocking
     * overloads; the service's engine must be freshly constructed
     * (or cleared) and sized like the direct-engine overload.
     */
    Histogram repetitionHistogram(service::IngestService &service,
                                  unsigned num_producers = 1) const;

    /** Exact (fault-free) per-bin scores of a read. */
    std::vector<int64_t> refScores(const Read &read) const;

    /** True iff the read's origin lies in bin @p bin. */
    bool truth(const Read &read, size_t bin) const;

    /** Accept threshold in absolute count for a read. */
    int64_t threshold(const Read &read) const;

    /**
     * Score the filter: per read, bins with score >= threshold are
     * predicted positives; ground truth marks the origin bin.
     */
    BinaryScore evaluate(
        const std::vector<std::vector<int64_t>> &scores) const;

  private:
    unsigned tokenAt(const std::string &s, size_t pos) const;

    DnaConfig cfg_;
    std::string genome_;
    std::vector<Read> reads_;
    std::vector<std::vector<uint8_t>> masks_; ///< [token][bin]
};

} // namespace workloads
} // namespace c2m

#endif // C2M_WORKLOADS_DNA_HPP
