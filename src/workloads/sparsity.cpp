#include "workloads/sparsity.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "service/ingest.hpp"

namespace c2m {
namespace workloads {

namespace {

/** Feed one point update per value and read the counts back. */
Histogram
countOccurrences(const std::vector<uint64_t> &values,
                 core::ShardedEngine &engine)
{
    const size_t n = engine.numCounters();
    std::vector<core::BatchOp> ops;
    ops.reserve(values.size());
    for (uint64_t v : values) {
        C2M_ASSERT(v < n, "value ", v,
                   " needs more engine counters than ", n);
        ops.push_back({v, 1, 0});
    }
    engine.accumulateBatch(ops);
    return core::countersToHistogram(engine, 0,
                                     static_cast<int64_t>(n) - 1);
}

/** One point update per value, pushed through the ingest service. */
Histogram
countOccurrencesAsync(const std::vector<uint64_t> &values,
                      service::IngestService &service,
                      unsigned num_producers)
{
    const size_t n = service.engine().numCounters();
    std::vector<core::BatchOp> ops;
    ops.reserve(values.size());
    for (uint64_t v : values) {
        C2M_ASSERT(v < n, "value ", v,
                   " needs more engine counters than ", n);
        ops.push_back({v, 1, 0});
    }
    service::submitConcurrent(service, ops, num_producers);
    const auto counters = service.readCounters();
    return core::countersToHistogram(counters, 0,
                                     static_cast<int64_t>(n) - 1);
}

/** Engine over [0, max(values)] sized for the chosen backend. */
core::ShardedEngine
engineForValues(const std::vector<uint64_t> &values,
                core::BackendKind backend, unsigned num_shards)
{
    uint64_t max_v = 0;
    for (uint64_t v : values)
        max_v = v > max_v ? v : max_v;
    core::EngineConfig cfg;
    cfg.backend = backend;
    cfg.capacityBits = 24;
    cfg.numCounters = std::max<size_t>(max_v + 1, num_shards);
    // One row covers the point mask; the drain planner's persistent
    // plane rows are reserved ADDITIVELY on top of this (ShardedEngine
    // asserts planePool_ > 0), so 1 never starves planned drains.
    cfg.maxMaskRows = 1;
    return core::ShardedEngine(cfg, num_shards);
}

} // namespace

std::vector<int64_t>
sparseSignedVector(size_t n, unsigned bits, double sparsity,
                   uint64_t seed)
{
    Rng rng(seed);
    std::vector<int64_t> v(n, 0);
    const int64_t half = int64_t{1} << (bits - 1);
    for (auto &x : v) {
        if (rng.nextBool(sparsity))
            continue;
        do {
            x = rng.nextRange(-half, half - 1);
        } while (x == 0);
    }
    return v;
}

std::vector<uint64_t>
sparseUnsignedVector(size_t n, unsigned bits, double sparsity,
                     uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> v(n, 0);
    for (auto &x : v) {
        if (rng.nextBool(sparsity))
            continue;
        x = 1 + rng.nextBounded((1ULL << bits) - 1);
    }
    return v;
}

std::vector<std::vector<int8_t>>
randomTernaryMatrix(size_t rows, size_t cols, double density,
                    uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<int8_t>> m(rows,
                                       std::vector<int8_t>(cols, 0));
    for (auto &row : m)
        for (auto &v : row)
            if (rng.nextBool(density))
                v = rng.nextBool(0.5) ? 1 : -1;
    return m;
}

std::vector<std::vector<uint8_t>>
randomBinaryMatrix(size_t rows, size_t cols, double density,
                   uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint8_t>> m(rows,
                                        std::vector<uint8_t>(cols, 0));
    for (auto &row : m)
        for (auto &v : row)
            v = rng.nextBool(density) ? 1 : 0;
    return m;
}

Histogram
valueHistogram(const std::vector<uint64_t> &values,
               core::ShardedEngine &engine)
{
    return countOccurrences(values, engine);
}

Histogram
magnitudeHistogram(const std::vector<int64_t> &values,
                   core::ShardedEngine &engine)
{
    std::vector<uint64_t> mags;
    mags.reserve(values.size());
    for (int64_t v : values)
        // Negate in unsigned arithmetic so INT64_MIN stays defined.
        mags.push_back(v < 0 ? 0 - static_cast<uint64_t>(v)
                             : static_cast<uint64_t>(v));
    return countOccurrences(mags, engine);
}

Histogram
valueHistogram(const std::vector<uint64_t> &values,
               core::BackendKind backend, unsigned num_shards)
{
    auto engine = engineForValues(values, backend, num_shards);
    return valueHistogram(values, engine);
}

Histogram
magnitudeHistogram(const std::vector<int64_t> &values,
                   core::BackendKind backend, unsigned num_shards)
{
    std::vector<uint64_t> mags;
    mags.reserve(values.size());
    for (int64_t v : values)
        mags.push_back(v < 0 ? 0 - static_cast<uint64_t>(v)
                             : static_cast<uint64_t>(v));
    auto engine = engineForValues(mags, backend, num_shards);
    return valueHistogram(mags, engine);
}

Histogram
valueHistogram(const std::vector<uint64_t> &values,
               service::IngestService &service,
               unsigned num_producers)
{
    return countOccurrencesAsync(values, service, num_producers);
}

Histogram
magnitudeHistogram(const std::vector<int64_t> &values,
                   service::IngestService &service,
                   unsigned num_producers)
{
    std::vector<uint64_t> mags;
    mags.reserve(values.size());
    for (int64_t v : values)
        mags.push_back(v < 0 ? 0 - static_cast<uint64_t>(v)
                             : static_cast<uint64_t>(v));
    return countOccurrencesAsync(mags, service, num_producers);
}

} // namespace workloads
} // namespace c2m
