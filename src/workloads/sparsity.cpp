#include "workloads/sparsity.hpp"

#include "common/rng.hpp"

namespace c2m {
namespace workloads {

std::vector<int64_t>
sparseSignedVector(size_t n, unsigned bits, double sparsity,
                   uint64_t seed)
{
    Rng rng(seed);
    std::vector<int64_t> v(n, 0);
    const int64_t half = int64_t{1} << (bits - 1);
    for (auto &x : v) {
        if (rng.nextBool(sparsity))
            continue;
        do {
            x = rng.nextRange(-half, half - 1);
        } while (x == 0);
    }
    return v;
}

std::vector<uint64_t>
sparseUnsignedVector(size_t n, unsigned bits, double sparsity,
                     uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint64_t> v(n, 0);
    for (auto &x : v) {
        if (rng.nextBool(sparsity))
            continue;
        x = 1 + rng.nextBounded((1ULL << bits) - 1);
    }
    return v;
}

std::vector<std::vector<int8_t>>
randomTernaryMatrix(size_t rows, size_t cols, double density,
                    uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<int8_t>> m(rows,
                                       std::vector<int8_t>(cols, 0));
    for (auto &row : m)
        for (auto &v : row)
            if (rng.nextBool(density))
                v = rng.nextBool(0.5) ? 1 : -1;
    return m;
}

std::vector<std::vector<uint8_t>>
randomBinaryMatrix(size_t rows, size_t cols, double density,
                   uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<uint8_t>> m(rows,
                                        std::vector<uint8_t>(cols, 0));
    for (auto &row : m)
        for (auto &v : row)
            v = rng.nextBool(density) ? 1 : 0;
    return m;
}

} // namespace workloads
} // namespace c2m
