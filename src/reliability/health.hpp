#ifndef C2M_RELIABILITY_HEALTH_HPP
#define C2M_RELIABILITY_HEALTH_HPP

/**
 * @file
 * Live fault-rate estimation and adaptive protection targets.
 *
 * The HealthMonitor turns scrub outcomes into an online estimate of
 * the per-bit multi-row-activation fault rate: every sweep reports
 * how many persisted flips it found and how many triple activations
 * (x row width = fault-injection trials) the fabric executed since
 * the previous sweep. The ratio, EWMA-smoothed, is a blind estimate
 * of the substrate's live error rate — no ground truth from the
 * simulator's FaultModel is consulted (the fault campaign compares
 * the two). Persisted flips undercount total flips by a structural
 * factor (faults landing in transient scratch rows are overwritten
 * before any sweep can see them), so the estimate is a lower bound
 * of the same order as the injected rate.
 *
 * From the estimate the monitor derives two recommendations checked
 * against ecc::ProtectionModel targets:
 *
 *  - FR checks: the smallest count in 1..3 whose projected
 *    undetected-error rate stays under the configured floor
 *    (Tab. 1's error-rate column);
 *  - scrub interval: the largest boundary count for which the
 *    expected double-flip probability per 64-column SEC-DED word —
 *    the scrubber's own uncorrectable event — stays under its
 *    target: with f persisted flips per word per boundary,
 *    P(>=2) ~ (f*interval)^2 / 2 <= target, i.e.
 *    interval <= sqrt(2*target) / f.
 */

#include <cstdint>

#include "common/stats.hpp"

namespace c2m {
namespace reliability {

struct HealthConfig
{
    /** Ceiling on the projected undetected-error rate per step. */
    double targetUndetectedRate = 1e-12;
    /** Ceiling on P(2+ flips per ECC word between sweeps). */
    double targetWordDoubleFlip = 1e-6;
    /** EWMA smoothing of per-sweep samples (1 = latest only). */
    double ewmaAlpha = 0.25;
    unsigned minInterval = 1;   ///< scrub-cadence clamp (boundaries)
    unsigned maxInterval = 256; ///< scrub-cadence clamp (boundaries)
};

/** One scrub sweep's evidence, reported by the Scrubber. */
struct ScrubObservation
{
    uint64_t faultyBits = 0;  ///< persisted flips found (all causes)
    uint64_t traDelta = 0;    ///< triple activations since last sweep
    uint64_t rowBits = 0;     ///< fabric row width (fault trials/TRA)
    uint64_t wordsSwept = 0;  ///< 64-column ECC words examined
    uint64_t boundaries = 1;  ///< epoch boundaries covered
};

class HealthMonitor
{
  public:
    explicit HealthMonitor(const HealthConfig &cfg = {});

    const HealthConfig &config() const { return cfg_; }

    void observe(const ScrubObservation &o);

    uint64_t samples() const { return samples_; }

    /** EWMA per-bit per-TRA fault-rate estimate (0 until evidence). */
    double estimatedFaultRate() const { return pEwma_; }

    /** EWMA persisted flips per ECC word per boundary. */
    double flipsPerWordPerBoundary() const { return fEwma_; }

    /** Projected undetected-error rate at @p fr_checks (Tab. 1). */
    double projectedUndetectedRate(unsigned fr_checks) const;

    /** Smallest FR-check count in 1..3 meeting the target floor. */
    unsigned recommendedFrChecks() const;

    /** Scrub interval (boundaries) meeting the double-flip target. */
    unsigned recommendedInterval() const;

    /** Named "health.*" gauges (rates scaled to parts-per-1e12). */
    CounterMap toCounters() const;

  private:
    HealthConfig cfg_;
    uint64_t samples_ = 0;
    double pEwma_ = 0.0;
    double fEwma_ = 0.0;
};

} // namespace reliability
} // namespace c2m

#endif // C2M_RELIABILITY_HEALTH_HPP
