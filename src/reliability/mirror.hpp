#ifndef C2M_RELIABILITY_MIRROR_HPP
#define C2M_RELIABILITY_MIRROR_HPP

/**
 * @file
 * ECC-encoded mirror of one counter group's canonical row image.
 *
 * A RowMirror is the scrubber's trusted side store: for every
 * persistent counter-state row of a group (digit bit rows, Onext
 * rows, Osign) it keeps the *canonical* image — the bit pattern a
 * fault-free engine holds right after drain(): Onext all zero, each
 * digit the Johnson encoding of the value's base-R digit, Osign set
 * exactly on negative columns. Images are widened with
 * ecc::RowCodec parity lanes, modelling spare ECC-protected rows
 * maintained through the reliable host RD/WR path; the store itself
 * is scrubbed (decode-correct-re-encode) on every sweep so it
 * tolerates its own bit decay.
 *
 * Canonical form is a pure function of the counter values, which is
 * what makes epoch-boundary scrubbing exact: expected values =
 * mirrored values + journaled deltas, and the fabric is drained
 * before comparison so any bit-level deviation from
 * encodeValues(expected) is a fault by construction (pinned by the
 * CanonicalEncode tests in test_reliability.cpp).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "ecc/rowcodec.hpp"
#include "jc/layout.hpp"

namespace c2m {
namespace reliability {

class RowMirror
{
  public:
    /**
     * @param layout JC layout of the mirrored group (any replica;
     *        only radix/digit geometry is used).
     * @param cols   counter columns of the owning shard.
     */
    RowMirror(const jc::CounterLayout &layout, size_t cols);

    size_t cols() const { return cols_; }
    /** Persistent counter-state rows: D*n bit rows + D Onext + Osign. */
    size_t numRows() const { return rows_.size(); }
    const ecc::RowCodec &codec() const { return codec_; }

    /**
     * Fabric row index of mirror row @p r under @p layout (the
     * replica being swept). Mirror rows are ordered bit rows first
     * (digit-major), then Onext rows, then Osign.
     */
    unsigned fabricRow(const jc::CounterLayout &layout, size_t r) const;

    /** Encoded (data + parity) image of mirror row @p r. */
    const BitVector &row(size_t r) const { return rows_[r]; }
    BitVector &row(size_t r) { return rows_[r]; }

    /** Replace the store with the canonical encoding of @p values. */
    void encodeValues(std::span<const int64_t> values);

    /**
     * SEC-DED pass over the store itself, then decode the mirrored
     * counter values. Words the code cannot repair are decoded
     * nearest-state (the affected counters lose exactness until the
     * next encodeValues); the aggregate correction result is returned
     * through @p store_scrub when non-null.
     */
    std::vector<int64_t>
    decodeValues(ecc::RowCodec::CorrectResult *store_scrub = nullptr);

    /** Copy the data prefix of mirror row @p r (fabric width). */
    BitVector dataBits(size_t r) const;

    /** Allocation-free variant: @p out must be cols() wide. */
    void dataBitsInto(size_t r, BitVector &out) const;

  private:
    unsigned radix_;
    unsigned bits_;    ///< bits per digit (n)
    unsigned digits_;  ///< digit count (D)
    size_t cols_;
    ecc::RowCodec codec_;
    std::vector<BitVector> rows_;
};

} // namespace reliability
} // namespace c2m

#endif // C2M_RELIABILITY_MIRROR_HPP
