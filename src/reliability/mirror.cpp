#include "reliability/mirror.hpp"

#include "common/logging.hpp"
#include "jc/johnson.hpp"

namespace c2m {
namespace reliability {

RowMirror::RowMirror(const jc::CounterLayout &layout, size_t cols)
    : radix_(layout.radix()),
      bits_(layout.bitsPerDigit()),
      digits_(layout.numDigits()),
      cols_(cols),
      codec_(cols)
{
    C2M_ASSERT(cols >= 1, "mirror needs at least one column");
    rows_.assign(digits_ * bits_ + digits_ + 1,
                 BitVector(codec_.totalBits()));
    encodeValues(std::vector<int64_t>(cols, 0));
}

unsigned
RowMirror::fabricRow(const jc::CounterLayout &layout, size_t r) const
{
    C2M_ASSERT(r < numRows(), "mirror row out of range: ", r);
    const size_t nbits = size_t{digits_} * bits_;
    if (r < nbits)
        return layout.bitRow(static_cast<unsigned>(r / bits_),
                             static_cast<unsigned>(r % bits_));
    if (r < nbits + digits_)
        return layout.onextRow(static_cast<unsigned>(r - nbits));
    return layout.osignRow();
}

void
RowMirror::encodeValues(std::span<const int64_t> values)
{
    C2M_ASSERT(values.size() == cols_, "value count != mirror width");
    for (auto &row : rows_)
        row.fill(false);

    __int128 modulus = 1;
    for (unsigned d = 0; d < digits_; ++d)
        modulus *= radix_;

    BitVector &osign = rows_[size_t{digits_} * bits_ + digits_];
    for (size_t c = 0; c < cols_; ++c) {
        __int128 m = values[c];
        const bool neg = m < 0;
        if (neg) {
            m += modulus;
            osign.set(c, true);
        }
        C2M_ASSERT(m >= 0 && m < modulus,
                   "counter value exceeds JC modulus");
        for (unsigned d = 0; d < digits_; ++d) {
            const unsigned digit = static_cast<unsigned>(m % radix_);
            m /= radix_;
            const uint64_t bits = jc::encode(bits_, digit);
            for (unsigned i = 0; i < bits_; ++i)
                if ((bits >> i) & 1)
                    rows_[size_t{d} * bits_ + i].set(c, true);
        }
    }
    codec_.encodeRows(rows_);
}

std::vector<int64_t>
RowMirror::decodeValues(ecc::RowCodec::CorrectResult *store_scrub)
{
    const auto res = codec_.correctRows(rows_);
    if (store_scrub)
        *store_scrub = res;

    __int128 modulus = 1;
    for (unsigned d = 0; d < digits_; ++d)
        modulus *= radix_;

    const BitVector &osign = rows_[size_t{digits_} * bits_ + digits_];
    std::vector<int64_t> values(cols_);
    for (size_t c = 0; c < cols_; ++c) {
        __int128 value = 0;
        __int128 weight = 1;
        for (unsigned d = 0; d < digits_; ++d) {
            uint64_t bits = 0;
            for (unsigned i = 0; i < bits_; ++i)
                if (rows_[size_t{d} * bits_ + i].get(c))
                    bits |= 1ULL << i;
            int v = jc::decode(bits_, bits);
            if (v < 0)
                v = static_cast<int>(jc::decodeNearest(bits_, bits));
            value += static_cast<__int128>(v) * weight;
            weight *= radix_;
        }
        if (osign.get(c))
            value -= modulus;
        values[c] = static_cast<int64_t>(value);
    }
    return values;
}

BitVector
RowMirror::dataBits(size_t r) const
{
    BitVector out(cols_);
    dataBitsInto(r, out);
    return out;
}

void
RowMirror::dataBitsInto(size_t r, BitVector &out) const
{
    C2M_ASSERT(r < numRows(), "mirror row out of range: ", r);
    C2M_ASSERT(out.size() == cols_, "output must be cols() wide");
    const BitVector &src = rows_[r];
    for (size_t w = 0; w < out.numWords(); ++w)
        out.word(w) = src.word(w);
    // Mask the tail: the last data word may hold parity-lane bits.
    if (cols_ % 64) {
        const uint64_t mask = (uint64_t{1} << (cols_ % 64)) - 1;
        out.word(out.numWords() - 1) &= mask;
    }
}

} // namespace reliability
} // namespace c2m
