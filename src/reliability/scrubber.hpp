#ifndef C2M_RELIABILITY_SCRUBBER_HPP
#define C2M_RELIABILITY_SCRUBBER_HPP

/**
 * @file
 * Online counter-state scrubbing over the sharded engine.
 *
 * The Scrubber keeps, per shard and logical counter group, an
 * ECC-encoded RowMirror (the trusted side store) plus a journal of
 * the point-update deltas applied since the group's last sweep. At
 * an epoch boundary — hooked through service::EpochObserver, or
 * driven explicitly in standalone mode — due shards are swept:
 *
 *   1. the mirror itself is SEC-DED decode-corrected (it models
 *      spare DRAM rows and may decay) and its counter values are
 *      recovered;
 *   2. journaled deltas are applied, giving the expected values;
 *   3. the shard is drained, putting fault-free counter state into
 *      canonical form (a pure function of the values);
 *   4. the expected canonical image is re-encoded, and every
 *      persistent counter row (digit bits, Onext, Osign, every TMR
 *      replica) is read back through the reliable host path and
 *      ECC-decoded against the expected parity lanes: single-flip
 *      words are corrected by the code, denser corruption is
 *      recovered from the image, and every event is accounted;
 *   5. the mirror adopts the expected image and the journal resets.
 *
 * Because step 4 forces the fabric onto the canonical encoding of
 * the true sums, a swept run ends bit-identical to a fault-free
 * serial replay whatever the injected CIM fault rate — the property
 * pinned by test_reliability.cpp. Sweep outcomes feed the
 * HealthMonitor, which (with ScrubConfig::adaptive) retunes the
 * sweep cadence and the live FR-check count of ECC-protected
 * backends against ecc::ProtectionModel targets.
 *
 * Coverage contract: the scrubber sees point updates only (epoch
 * buckets or noteBatch). Broadcast accumulates and tensor ops bypass
 * the journal; call rebase() after driving such ops, or the next
 * sweep would "correct" legitimate state away.
 *
 * Drain-planner interplay: when the engine executes a bucket as
 * column-parallel digit planes (EngineConfig::drainPlanner), the
 * journal still records exactly the planned deltas — onShardOps
 * receives the same coalesced ops the planner folds, and the journal
 * keys per-counter *sums*, which plans preserve by construction
 * (digit decomposition of the summed delta). Plans also ripple
 * through the same IARM scheduler the sweep's drain() uses, so the
 * canonical expected image is unchanged and a scrubbed planner run
 * stays bit-identical to fault-free serial replay (pinned by
 * test_reliability.cpp).
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/sharded.hpp"
#include "reliability/health.hpp"
#include "reliability/mirror.hpp"
#include "service/ingest.hpp"

namespace c2m {
namespace reliability {

struct ScrubConfig
{
    /** Epoch boundaries between sweeps of one shard. */
    unsigned interval = 1;
    /** Budget: at most this many shard sweeps per boundary
     *  (0 = unlimited). Overdue shards rotate fairly. */
    unsigned maxShardsPerBoundary = 0;
    /**
     * Fabric-time budget: skip further due sweeps once the predicted
     * cost of this boundary's sweeps (each shard's last measured
     * fabric ns, see docs/perf.md) exceeds this (0 = unlimited). At
     * least one due shard always sweeps, so overdue shards cannot
     * starve; composes with maxShardsPerBoundary (tighter wins).
     */
    double maxSweepNsPerBoundary = 0.0;
    /** Run due sweeps in parallel on the engine's lane pool. */
    bool parallel = true;
    /** Let the HealthMonitor retune interval and FR checks. */
    bool adaptive = false;
    /** Per-bit decay injected into the mirror store per boundary
     *  (campaigns; exercises the side store's own SEC-DED). */
    double storeFaultRate = 0.0;
    HealthConfig health;
};

struct ScrubStats
{
    uint64_t boundaries = 0;      ///< epoch boundaries observed
    uint64_t sweeps = 0;          ///< shard sweeps executed
    uint64_t rowsScrubbed = 0;    ///< fabric rows read and checked
    uint64_t rowsRepaired = 0;    ///< rows with any deviation
    uint64_t faultyBits = 0;      ///< deviating bits found (detected)
    uint64_t bitsCorrected = 0;   ///< flips fixed by SEC-DED alone
    uint64_t wordsRecovered = 0;  ///< words recovered from the mirror
    uint64_t mirrorBitsCorrected = 0; ///< side-store flips corrected
    uint64_t mirrorWordsLost = 0; ///< side-store words past SEC-DED
    uint64_t opsJournaled = 0;    ///< deltas recorded since attach
    uint64_t frRetunes = 0;       ///< live FR-check changes applied
    /** Modeled fabric ns spent inside sweeps (drain + row scrub). */
    double sweepFabricNs = 0.0;

    ScrubStats &operator+=(const ScrubStats &o)
    {
        boundaries += o.boundaries;
        sweeps += o.sweeps;
        rowsScrubbed += o.rowsScrubbed;
        rowsRepaired += o.rowsRepaired;
        faultyBits += o.faultyBits;
        bitsCorrected += o.bitsCorrected;
        wordsRecovered += o.wordsRecovered;
        mirrorBitsCorrected += o.mirrorBitsCorrected;
        mirrorWordsLost += o.mirrorWordsLost;
        opsJournaled += o.opsJournaled;
        frRetunes += o.frRetunes;
        sweepFabricNs += o.sweepFabricNs;
        return *this;
    }

    /** Named "reliability.*" counters for merged reports. */
    CounterMap toCounters() const;
};

class Scrubber final : public service::EpochObserver
{
  public:
    /**
     * Attach to @p engine (which must outlive the scrubber). The
     * engine's counters must be in their cleared state — the initial
     * mirrors assume zero. Requires a backend with caps().rowScrub.
     */
    explicit Scrubber(core::ShardedEngine &engine,
                      const ScrubConfig &cfg = {});

    /** True iff @p engine's substrate supports row scrubbing. */
    static bool supports(core::ShardedEngine &engine);

    const ScrubConfig &config() const { return cfg_; }
    /** Live sweep cadence (cfg.interval unless adaptive retuned). */
    unsigned interval() const;

    // ---- service::EpochObserver (drainer thread) ----
    void onShardOps(unsigned shard,
                    std::span<const core::BatchOp> ops) override;
    void onEpochApplied(uint64_t epoch) override;
    /** Full sweep: deferred (budgeted/interval) work must finish. */
    void onStop(uint64_t epoch) override;
    CounterMap counters() const override;

    // ---- Standalone mode (bare ShardedEngine, single driver) ----

    /** Journal a batch applied via accumulateBatch/runShardOps. */
    void noteBatch(std::span<const core::BatchOp> ops);

    /** Advance one boundary: sweep due shards per cadence/budget. */
    void boundary();

    /** Sweep every shard now, regardless of cadence. */
    void scrubAll();

    /**
     * Sweep shard @p s now, regardless of cadence or budget. This is
     * the virtualization layer's pre-write hook: before rewriting a
     * shard's counter rows (spill/restore) it heals the shard and
     * applies the pending journal, so the subsequent rebaseShard()
     * cannot adopt faulty or stale state.
     */
    void sweepNow(unsigned s);

    /**
     * Per-shard rebase(): re-mirror shard @p s from the engine's
     * current counter values, trusting the fabric, and discard the
     * shard's pending journal entries. Required after row-level
     * writes the journal cannot see (counter-group spill/restore).
     */
    void rebaseShard(unsigned s);

    /**
     * Re-mirror from the engine's current counter values, trusting
     * the fabric. Required after ops the journal cannot see
     * (broadcast accumulates, tensor ops); discards pending journal
     * entries.
     */
    void rebase();

    ScrubStats stats() const;
    ScrubStats shardStats(unsigned s) const;
    HealthMonitor health() const;

  private:
    struct ShardState
    {
        std::vector<RowMirror> mirrors; ///< per logical group
        /** (group << 40 | local column) -> pending delta sum. */
        std::unordered_map<uint64_t, int64_t> journal;
        uint64_t lastSweepBoundary = 0;
        uint64_t lastTra = 0; ///< fabric TRA count at last sweep
        /** Measured fabric ns of this shard's last sweep — the
         *  predictor for the maxSweepNsPerBoundary budget. */
        double lastSweepCostNs = 0.0;
        ScrubStats stats;
        Rng decayRng{1};
    };

    /** Shared boundary prologue: advance cadence, decay the store. */
    void beginBoundary();
    void sweepDue();
    /** Sweep @p due shards, on the lane pool when cfg().parallel. */
    void runSweeps(const std::vector<unsigned> &due);
    /** Sweep one shard (single-writer guard held by runShardTask). */
    void sweepShard(core::C2MEngine &eng, ShardState &st,
                    uint64_t boundary);
    void injectStoreDecay();
    void applyAdaptive();

    core::ShardedEngine &engine_;
    ScrubConfig cfg_;
    std::vector<ShardState> shards_;
    uint64_t boundary_ = 0; ///< boundaries seen (drainer/driver only)
    unsigned rotate_ = 0;   ///< budget fairness cursor
    unsigned appliedFrChecks_ = 0; ///< last live FR-check retune

    /**
     * Guards aggregate_, health_, liveInterval_ and every
     * ShardState::stats block: sweeps (pool lanes) append their
     * deltas under it, readers (counters()/stats() from reporting
     * threads) sum under it. Mirrors and journals need no lock — they
     * are touched only with the owning shard quiescent.
     */
    mutable std::mutex m_;
    ScrubStats aggregate_; ///< boundary/journal/retune counters
    HealthMonitor health_;
    unsigned liveInterval_; ///< adaptive cadence (cfg.interval seed)
};

} // namespace reliability
} // namespace c2m

#endif // C2M_RELIABILITY_SCRUBBER_HPP
