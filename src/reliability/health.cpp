#include "reliability/health.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "ecc/analysis.hpp"

namespace c2m {
namespace reliability {

HealthMonitor::HealthMonitor(const HealthConfig &cfg) : cfg_(cfg)
{
    C2M_ASSERT(cfg.ewmaAlpha > 0.0 && cfg.ewmaAlpha <= 1.0,
               "ewmaAlpha must be in (0, 1]");
    C2M_ASSERT(cfg.minInterval >= 1 &&
                   cfg.minInterval <= cfg.maxInterval,
               "interval clamp must satisfy 1 <= min <= max");
}

void
HealthMonitor::observe(const ScrubObservation &o)
{
    const uint64_t trials = o.traDelta * o.rowBits;
    if (trials == 0 && o.faultyBits == 0)
        return; // idle sweep: no evidence either way
    const double p =
        trials ? static_cast<double>(o.faultyBits) /
                     static_cast<double>(trials)
               : 0.0;
    const double f =
        o.wordsSwept
            ? static_cast<double>(o.faultyBits) /
                  (static_cast<double>(o.wordsSwept) *
                   static_cast<double>(std::max<uint64_t>(
                       o.boundaries, 1)))
            : 0.0;
    if (samples_ == 0) {
        pEwma_ = p;
        fEwma_ = f;
    } else {
        pEwma_ += cfg_.ewmaAlpha * (p - pEwma_);
        fEwma_ += cfg_.ewmaAlpha * (f - fEwma_);
    }
    ++samples_;
}

double
HealthMonitor::projectedUndetectedRate(unsigned fr_checks) const
{
    return ecc::ProtectionModel::undetectedErrorRate(pEwma_,
                                                     2 * fr_checks);
}

unsigned
HealthMonitor::recommendedFrChecks() const
{
    for (unsigned c = 1; c <= 3; ++c)
        if (projectedUndetectedRate(c) <= cfg_.targetUndetectedRate)
            return c;
    return 3;
}

unsigned
HealthMonitor::recommendedInterval() const
{
    if (fEwma_ <= 0.0)
        return cfg_.maxInterval;
    const double bound =
        std::sqrt(2.0 * cfg_.targetWordDoubleFlip) / fEwma_;
    const double clamped = std::clamp(
        bound, static_cast<double>(cfg_.minInterval),
        static_cast<double>(cfg_.maxInterval));
    return static_cast<unsigned>(clamped);
}

CounterMap
HealthMonitor::toCounters() const
{
    const auto ppt = [](double rate) {
        return static_cast<uint64_t>(
            std::min(rate, 1.0) * 1e12);
    };
    return {
        {"health.samples", samples_},
        {"health.fault_rate_ppt", ppt(pEwma_)},
        {"health.flips_per_word_ppt", ppt(fEwma_)},
        {"health.recommended_fr_checks", recommendedFrChecks()},
        {"health.recommended_interval", recommendedInterval()},
    };
}

} // namespace reliability
} // namespace c2m
