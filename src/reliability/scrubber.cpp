#include "reliability/scrubber.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace c2m {
namespace reliability {

namespace {

/** Journal key packing: logical group in the high bits. */
constexpr uint64_t
journalKey(uint32_t group, uint64_t local_col)
{
    return (static_cast<uint64_t>(group) << 40) | local_col;
}

constexpr uint64_t kColMask = (uint64_t{1} << 40) - 1;

} // namespace

CounterMap
ScrubStats::toCounters() const
{
    return {
        {"reliability.boundaries", boundaries},
        {"reliability.sweeps", sweeps},
        {"reliability.rows_scrubbed", rowsScrubbed},
        {"reliability.rows_repaired", rowsRepaired},
        {"reliability.faulty_bits", faultyBits},
        {"reliability.bits_corrected", bitsCorrected},
        {"reliability.words_recovered", wordsRecovered},
        {"reliability.mirror_bits_corrected", mirrorBitsCorrected},
        {"reliability.mirror_words_lost", mirrorWordsLost},
        {"reliability.ops_journaled", opsJournaled},
        {"reliability.fr_retunes", frRetunes},
        {"reliability.sweep_fabric_ns",
         static_cast<uint64_t>(std::llround(sweepFabricNs))},
    };
}

bool
Scrubber::supports(core::ShardedEngine &engine)
{
    return engine.shard(0).backend().caps().rowScrub;
}

Scrubber::Scrubber(core::ShardedEngine &engine,
                   const ScrubConfig &cfg)
    : engine_(engine),
      cfg_(cfg),
      appliedFrChecks_(engine.config().frChecks),
      health_(cfg.health),
      liveInterval_(cfg.interval)
{
    C2M_ASSERT(cfg.interval >= 1, "scrub interval must be >= 1");
    C2M_ASSERT(supports(engine),
               "engine backend does not support row scrubbing");

    const unsigned groups = engine.config().numGroups;
    shards_.resize(engine.numShards());
    for (unsigned s = 0; s < engine.numShards(); ++s) {
        auto &eng = engine.shard(s);
        auto &st = shards_[s];
        st.mirrors.reserve(groups);
        for (unsigned g = 0; g < groups; ++g)
            st.mirrors.emplace_back(
                eng.backend().layout(eng.physicalGroup(g, 0)),
                engine.shardWidth(s));
        st.lastTra = eng.backend().opStats().tra;
        st.decayRng = Rng(engine.config().seed ^
                          (0x9e3779b97f4a7c15ULL * (s + 1)));
    }
}

unsigned
Scrubber::interval() const
{
    std::lock_guard<std::mutex> lk(m_);
    return liveInterval_;
}

void
Scrubber::onShardOps(unsigned shard,
                     std::span<const core::BatchOp> ops)
{
    // These are the planned deltas: the drainer reports the exact
    // coalesced bucket the drain planner folds into digit planes, so
    // the journal's per-counter sums equal what the fabric received
    // whether the bucket executed column-parallel or per-op.
    auto &st = shards_[shard];
    const size_t start = engine_.shardStart(shard);
    for (const auto &op : ops)
        st.journal[journalKey(op.group, op.counter - start)] +=
            op.value;
    std::lock_guard<std::mutex> lk(m_);
    aggregate_.opsJournaled += ops.size();
}

void
Scrubber::noteBatch(std::span<const core::BatchOp> ops)
{
    for (const auto &op : ops) {
        const unsigned s = engine_.shardOf(op.counter);
        shards_[s].journal[journalKey(
            op.group, op.counter - engine_.shardStart(s))] +=
            op.value;
    }
    std::lock_guard<std::mutex> lk(m_);
    aggregate_.opsJournaled += ops.size();
}

void
Scrubber::onEpochApplied(uint64_t)
{
    boundary();
}

void
Scrubber::onStop(uint64_t)
{
    // Cadence and budget no longer apply: whatever journal entries
    // the interval spacing deferred must reconcile now, so reads
    // after the service stops see exact counters.
    beginBoundary();
    scrubAll();
}

void
Scrubber::boundary()
{
    beginBoundary();
    sweepDue();
    applyAdaptive();
}

void
Scrubber::beginBoundary()
{
    ++boundary_;
    {
        std::lock_guard<std::mutex> lk(m_);
        ++aggregate_.boundaries;
    }
    if (cfg_.storeFaultRate > 0.0)
        injectStoreDecay();
}

void
Scrubber::injectStoreDecay()
{
    for (auto &st : shards_)
        for (auto &mirror : st.mirrors)
            for (size_t r = 0; r < mirror.numRows(); ++r)
                mirror.row(r).injectFaults(st.decayRng,
                                           cfg_.storeFaultRate);
}

void
Scrubber::sweepDue()
{
    const unsigned n = engine_.numShards();
    unsigned interval;
    {
        std::lock_guard<std::mutex> lk(m_);
        interval = liveInterval_;
    }

    std::vector<unsigned> due;
    for (unsigned i = 0; i < n; ++i) {
        const unsigned s = (rotate_ + i) % n;
        if (boundary_ - shards_[s].lastSweepBoundary >= interval)
            due.push_back(s);
    }
    if (cfg_.maxShardsPerBoundary &&
        due.size() > cfg_.maxShardsPerBoundary)
        due.resize(cfg_.maxShardsPerBoundary);
    if (cfg_.maxSweepNsPerBoundary > 0.0 && due.size() > 1) {
        // Fabric-time budget: admit shards while the predicted cost
        // (each shard's last measured sweep ns; 0 before the first
        // sweep) fits. The first due shard always sweeps.
        double predicted = 0.0;
        size_t keep = 0;
        for (const unsigned s : due) {
            predicted += shards_[s].lastSweepCostNs;
            if (keep > 0 && predicted > cfg_.maxSweepNsPerBoundary)
                break;
            ++keep;
        }
        due.resize(keep);
    }
    if (due.empty())
        return;
    rotate_ = (due.back() + 1) % n;
    runSweeps(due);
}

void
Scrubber::runSweeps(const std::vector<unsigned> &due)
{
    const auto sweep = [this](unsigned s) {
        engine_.runShardTask(
            s, [this, s](core::C2MEngine &eng, size_t) {
                sweepShard(eng, shards_[s], boundary_);
            });
    };
    core::ThreadPool &pool = engine_.pool();
    if (!cfg_.parallel || pool.size() == 0 || due.size() == 1) {
        for (unsigned s : due)
            sweep(s);
        return;
    }
    for (unsigned s : due)
        pool.post(s, [&sweep, s] { sweep(s); });
    pool.drain();
}

void
Scrubber::sweepShard(core::C2MEngine &eng, ShardState &st,
                     uint64_t boundary)
{
    const unsigned groups = engine_.config().numGroups;
    ScrubStats d;
    d.sweeps = 1;
    cim::AttrScope attr(eng.backend().opStatsRef(),
                        cim::FabricCat::Scrub);
    const double ns0 = eng.backend().opStats().fabricNs;
    const uint32_t track =
        static_cast<uint32_t>(&st - shards_.data());
    obs::TraceRecorder *tr = obs::tracer();
    if (tr)
        tr->spanBegin("scrub.sweep", track, ns0);

    // Recover expected values: scrubbed mirror + journaled deltas;
    // then drain so fault-free state would be canonical.
    std::vector<std::vector<int64_t>> values(groups);
    for (unsigned g = 0; g < groups; ++g) {
        ecc::RowCodec::CorrectResult mres;
        values[g] = st.mirrors[g].decodeValues(&mres);
        d.mirrorBitsCorrected += mres.corrected;
        d.mirrorWordsLost += mres.uncorrectable;
        eng.drain(g);
    }
    for (const auto &[key, delta] : st.journal) {
        C2M_ASSERT((key >> 40) < groups,
                   "journaled op targets unknown group ", key >> 40);
        values[key >> 40][key & kColMask] += delta;
    }
    st.journal.clear();

    const uint64_t tra_now = eng.backend().opStats().tra;
    const uint64_t tra_delta = tra_now - st.lastTra;
    st.lastTra = tra_now;

    // Verify-and-correct every persistent counter row of every
    // replica against the canonical expected image.
    uint64_t words_swept = 0;
    for (unsigned g = 0; g < groups; ++g) {
        RowMirror &mirror = st.mirrors[g];
        mirror.encodeValues(values[g]);
        const size_t cols = mirror.cols();
        BitVector got(cols);
        BitVector diff(cols);
        BitVector expected(cols);
        for (unsigned rep = 0; rep < eng.numReplicas(); ++rep) {
            const auto &lay =
                eng.backend().layout(eng.physicalGroup(g, rep));
            for (size_t r = 0; r < mirror.numRows(); ++r) {
                const unsigned row = mirror.fabricRow(lay, r);
                got.copyFrom(eng.backend().scrubReadRow(row));
                mirror.dataBitsInto(r, expected);
                diff.assignXor(got, expected);
                ++d.rowsScrubbed;
                words_swept += mirror.codec().numWords();
                const size_t flips = diff.popcount();
                if (flips == 0)
                    continue;
                ++d.rowsRepaired;
                d.faultyBits += flips;
                const auto res =
                    mirror.codec().scrubRow(got, mirror.row(r));
                d.bitsCorrected += res.corrected;
                d.wordsRecovered += res.uncorrectable;
                eng.backend().scrubWriteRow(row, got);
                // arg = flipped bits found, arg2 = fabric row healed.
                if (tr)
                    tr->instant("scrub.heal", track, flips, row);
            }
        }
    }

    ScrubObservation obs;
    obs.faultyBits = d.faultyBits;
    obs.traDelta = tra_delta;
    obs.rowBits = st.mirrors.empty() ? 0 : st.mirrors[0].cols();
    obs.wordsSwept = words_swept;
    obs.boundaries =
        std::max<uint64_t>(1, boundary - st.lastSweepBoundary);
    st.lastSweepBoundary = boundary;
    d.sweepFabricNs = eng.backend().opStats().fabricNs - ns0;
    st.lastSweepCostNs = d.sweepFabricNs;
    if (tr)
        tr->spanEnd("scrub.sweep", track,
                    eng.backend().opStats().fabricNs);

    std::lock_guard<std::mutex> lk(m_);
    st.stats += d;
    health_.observe(obs);
}

void
Scrubber::applyAdaptive()
{
    if (!cfg_.adaptive)
        return;
    unsigned fr;
    {
        std::lock_guard<std::mutex> lk(m_);
        if (health_.samples() == 0)
            return;
        liveInterval_ = health_.recommendedInterval();
        fr = health_.recommendedFrChecks();
    }
    if (engine_.config().protection != core::Protection::Ecc ||
        fr == appliedFrChecks_)
        return;
    bool any = false;
    for (unsigned s = 0; s < engine_.numShards(); ++s)
        engine_.runShardTask(
            s, [&any, fr](core::C2MEngine &eng, size_t) {
                any |= eng.backend().setFrChecks(fr);
            });
    appliedFrChecks_ = fr;
    if (any) {
        std::lock_guard<std::mutex> lk(m_);
        ++aggregate_.frRetunes;
    }
}

void
Scrubber::scrubAll()
{
    std::vector<unsigned> all(engine_.numShards());
    for (unsigned s = 0; s < all.size(); ++s)
        all[s] = s;
    runSweeps(all);
}

void
Scrubber::sweepNow(unsigned s)
{
    C2M_ASSERT(s < shards_.size(), "shard index out of range: ", s);
    engine_.runShardTask(s, [this, s](core::C2MEngine &eng, size_t) {
        sweepShard(eng, shards_[s], boundary_);
    });
}

void
Scrubber::rebase()
{
    for (unsigned s = 0; s < engine_.numShards(); ++s)
        rebaseShard(s);
}

void
Scrubber::rebaseShard(unsigned s)
{
    C2M_ASSERT(s < shards_.size(), "shard index out of range: ", s);
    const unsigned groups = engine_.config().numGroups;
    engine_.runShardTask(
        s, [this, s, groups](core::C2MEngine &eng, size_t) {
            auto &st = shards_[s];
            cim::AttrScope attr(eng.backend().opStatsRef(),
                                cim::FabricCat::Scrub);
            st.journal.clear();
            for (unsigned g = 0; g < groups; ++g) {
                eng.drain(g);
                st.mirrors[g].encodeValues(eng.readCounters(g));
            }
            st.lastTra = eng.backend().opStats().tra;
        });
}

ScrubStats
Scrubber::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    ScrubStats total = aggregate_;
    for (const auto &st : shards_)
        total += st.stats;
    return total;
}

ScrubStats
Scrubber::shardStats(unsigned s) const
{
    C2M_ASSERT(s < shards_.size(), "shard index out of range: ", s);
    std::lock_guard<std::mutex> lk(m_);
    return shards_[s].stats;
}

HealthMonitor
Scrubber::health() const
{
    std::lock_guard<std::mutex> lk(m_);
    return health_;
}

CounterMap
Scrubber::counters() const
{
    CounterMap merged = stats().toCounters();
    HealthMonitor h = health();
    if (h.samples() > 0)
        mergeCounters(merged, h.toCounters());
    return merged;
}

} // namespace reliability
} // namespace c2m
