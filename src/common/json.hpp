#ifndef C2M_COMMON_JSON_HPP
#define C2M_COMMON_JSON_HPP

/**
 * @file
 * Minimal recursive-descent JSON reader for the analysis tools.
 *
 * The repo's emitters (BENCH_*.json, Chrome traces, metrics.jsonl)
 * write plain ASCII JSON; this reader covers that dialect — objects,
 * arrays, strings with the standard escapes, doubles, bools, null —
 * with positions preserved (object members keep file order) and no
 * external dependency. It is a *reader*, deliberately not a writer:
 * emission stays with the subsystem owning the format.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace c2m {
namespace json {

class Value
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> items;                          // Array
    std::vector<std::pair<std::string, Value>> members; // Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup (first match), nullptr when absent. */
    const Value *find(std::string_view key) const;

    /** Member as number/bool/string with a fallback when absent. */
    double numberOr(std::string_view key, double fallback) const;
    bool boolOr(std::string_view key, bool fallback) const;
    std::string stringOr(std::string_view key,
                         std::string fallback) const;
};

/**
 * Parse @p text into @p out. Returns false on malformed input and, if
 * @p error is non-null, stores a one-line message with the byte
 * offset. Trailing whitespace is allowed; trailing garbage is not.
 */
bool parse(std::string_view text, Value &out,
           std::string *error = nullptr);

/** Read a whole file and parse it. */
bool parseFile(const std::string &path, Value &out,
               std::string *error = nullptr);

} // namespace json
} // namespace c2m

#endif // C2M_COMMON_JSON_HPP
