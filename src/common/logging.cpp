#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace c2m {

namespace {

void
stderrSink(void *, LogLevel lvl, const char *msg)
{
    std::fprintf(stderr, "%s: %s\n",
                 lvl == LogLevel::Warn ? "warn" : "info", msg);
}

/**
 * Process-wide logging state.  Leaked on purpose: log macros may fire
 * from static destructors, so the state must outlive every other
 * object in the program.
 */
struct LogState
{
    std::mutex m;
    LogSinkFn sink = &stderrSink;
    void *sinkCtx = nullptr;
    LogTraceHookFn hook = nullptr;
    void *hookCtx = nullptr;
    std::unordered_map<std::string, uint64_t> repeats;
};

LogState &
state()
{
    static LogState *s = new LogState();
    return *s;
}

void
emit(LogLevel lvl, const std::string &msg)
{
    LogState &s = state();
    std::lock_guard<std::mutex> lock(s.m);

    std::string text = msg;
    if (lvl == LogLevel::Warn) {
        const uint64_t n = ++s.repeats[msg];
        if (n > kLogRepeatHead && n % kLogRepeatStride != 0)
            return;
        if (n > kLogRepeatHead)
            text += " (repeated " + std::to_string(n) + " times)";
    }
    s.sink(s.sinkCtx, lvl, text.c_str());
    if (s.hook)
        s.hook(s.hookCtx, lvl, text.c_str());
}

} // namespace

void
setLogSink(LogSinkFn fn, void *ctx)
{
    LogState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    s.sink = fn ? fn : &stderrSink;
    s.sinkCtx = fn ? ctx : nullptr;
}

void
setLogTraceHook(LogTraceHookFn fn, void *ctx)
{
    LogState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    s.hook = fn;
    s.hookCtx = fn ? ctx : nullptr;
}

void *
logTraceHookCtx()
{
    LogState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    return s.hookCtx;
}

void
resetLogRateLimiter()
{
    LogState &s = state();
    std::lock_guard<std::mutex> lock(s.m);
    s.repeats.clear();
}

namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emit(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    emit(LogLevel::Inform, msg);
}

} // namespace detail
} // namespace c2m
