#ifndef C2M_COMMON_RNG_HPP
#define C2M_COMMON_RNG_HPP

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (fault injection, workload
 * synthesis) flows through Rng so experiments are reproducible from a
 * single seed. The core generator is xoshiro256**, seeded via SplitMix64.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace c2m {

/** SplitMix64 step, used for seeding and cheap hashing. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with convenience distributions.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire-style rejection-free-enough multiply-shift; bias is
        // negligible for the bounds used in this project (< 2^32).
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    nextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            nextBounded(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    nextGaussian()
    {
        double u1 = nextDouble();
        double u2 = nextDouble();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /**
     * Number of Bernoulli(p) failures before the next success
     * (geometric skip). Used to make per-bit fault injection O(#faults)
     * instead of O(#bits) when p is small.
     *
     * @return the gap g >= 0; the event occurs at offset g.
     */
    uint64_t
    nextGeometric(double p)
    {
        if (p >= 1.0)
            return 0;
        if (p <= 0.0)
            return UINT64_MAX;
        double u = nextDouble();
        if (u < 1e-300)
            u = 1e-300;
        double g = std::floor(std::log(u) / std::log1p(-p));
        if (g >= 9e18)
            return UINT64_MAX;
        return static_cast<uint64_t>(g);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

/**
 * Zipf(s)-distributed integers over [0, n): P(i) proportional to
 * 1/(i+1)^s, drawn by inverse-CDF lookup on a precomputed table
 * (O(n) memory, O(log n) per draw). s = 0 degenerates to uniform;
 * s = 1 is the classic "hot keys" skew used by the ingest bench.
 */
class ZipfRng
{
  public:
    ZipfRng(uint64_t n, double s, uint64_t seed)
        : rng_(seed), cdf_(n)
    {
        double acc = 0.0;
        for (uint64_t i = 0; i < n; ++i) {
            acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
            cdf_[i] = acc;
        }
        for (auto &c : cdf_)
            c /= acc;
    }

    uint64_t
    next()
    {
        const double u = rng_.nextDouble();
        const auto it =
            std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<uint64_t>(it - cdf_.begin());
    }

  private:
    Rng rng_;
    std::vector<double> cdf_;
};

} // namespace c2m

#endif // C2M_COMMON_RNG_HPP
