#include "common/bitvec.hpp"

#include <bit>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace c2m {

BitVector::BitVector(size_t num_bits)
    : numBits_(num_bits), words_((num_bits + 63) / 64, 0)
{
}

BitVector
BitVector::fromString(const std::string &s)
{
    BitVector v(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        C2M_ASSERT(s[i] == '0' || s[i] == '1',
                   "BitVector string must be 0/1");
        v.set(i, s[i] == '1');
    }
    return v;
}

bool
BitVector::get(size_t i) const
{
    C2M_ASSERT(i < numBits_, "bit index ", i, " out of range ", numBits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
}

void
BitVector::set(size_t i, bool v)
{
    C2M_ASSERT(i < numBits_, "bit index ", i, " out of range ", numBits_);
    const uint64_t mask = 1ULL << (i & 63);
    if (v)
        words_[i >> 6] |= mask;
    else
        words_[i >> 6] &= ~mask;
}

void
BitVector::fill(bool v)
{
    const uint64_t pattern = v ? ~0ULL : 0ULL;
    for (auto &w : words_)
        w = pattern;
    maskTail();
}

size_t
BitVector::popcount() const
{
    size_t n = 0;
    for (auto w : words_)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

void
BitVector::invert()
{
    for (auto &w : words_)
        w = ~w;
    maskTail();
}

void
BitVector::copyFrom(const BitVector &src)
{
    C2M_ASSERT(src.numBits_ == numBits_, "size mismatch in copyFrom");
    words_ = src.words_;
}

void
BitVector::assignAnd(const BitVector &a, const BitVector &b)
{
    C2M_ASSERT(a.numBits_ == numBits_ && b.numBits_ == numBits_,
               "size mismatch in assignAnd");
    for (size_t w = 0; w < words_.size(); ++w)
        words_[w] = a.words_[w] & b.words_[w];
}

void
BitVector::assignOr(const BitVector &a, const BitVector &b)
{
    C2M_ASSERT(a.numBits_ == numBits_ && b.numBits_ == numBits_,
               "size mismatch in assignOr");
    for (size_t w = 0; w < words_.size(); ++w)
        words_[w] = a.words_[w] | b.words_[w];
}

void
BitVector::assignXor(const BitVector &a, const BitVector &b)
{
    C2M_ASSERT(a.numBits_ == numBits_ && b.numBits_ == numBits_,
               "size mismatch in assignXor");
    for (size_t w = 0; w < words_.size(); ++w)
        words_[w] = a.words_[w] ^ b.words_[w];
}

void
BitVector::assignNor(const BitVector &a, const BitVector &b)
{
    C2M_ASSERT(a.numBits_ == numBits_ && b.numBits_ == numBits_,
               "size mismatch in assignNor");
    for (size_t w = 0; w < words_.size(); ++w)
        words_[w] = ~(a.words_[w] | b.words_[w]);
    maskTail();
}

void
BitVector::assignNot(const BitVector &a)
{
    C2M_ASSERT(a.numBits_ == numBits_, "size mismatch in assignNot");
    for (size_t w = 0; w < words_.size(); ++w)
        words_[w] = ~a.words_[w];
    maskTail();
}

void
BitVector::assignMaj3(const BitVector &a, const BitVector &b,
                      const BitVector &c)
{
    C2M_ASSERT(a.numBits_ == numBits_ && b.numBits_ == numBits_ &&
               c.numBits_ == numBits_, "size mismatch in assignMaj3");
    for (size_t w = 0; w < words_.size(); ++w) {
        const uint64_t x = a.words_[w];
        const uint64_t y = b.words_[w];
        const uint64_t z = c.words_[w];
        words_[w] = (x & y) | (y & z) | (x & z);
    }
}

size_t
BitVector::injectFaults(Rng &rng, double p)
{
    if (p <= 0.0 || numBits_ == 0)
        return 0;
    size_t flipped = 0;
    uint64_t pos = rng.nextGeometric(p);
    while (pos < numBits_) {
        words_[pos >> 6] ^= 1ULL << (pos & 63);
        ++flipped;
        const uint64_t gap = rng.nextGeometric(p);
        if (gap == UINT64_MAX || pos + 1 + gap < pos)
            break;
        pos += 1 + gap;
    }
    return flipped;
}

void
BitVector::randomize(Rng &rng, double density)
{
    if (density == 0.5) {
        for (auto &w : words_)
            w = rng.next();
    } else {
        for (auto &w : words_) {
            uint64_t bits = 0;
            for (int i = 0; i < 64; ++i)
                bits |= static_cast<uint64_t>(rng.nextBool(density)) << i;
            w = bits;
        }
    }
    maskTail();
}

bool
BitVector::operator==(const BitVector &o) const
{
    return numBits_ == o.numBits_ && words_ == o.words_;
}

std::string
BitVector::toString() const
{
    std::string s(numBits_, '0');
    for (size_t i = 0; i < numBits_; ++i)
        if (get(i))
            s[i] = '1';
    return s;
}

void
BitVector::maskTail()
{
    const size_t rem = numBits_ & 63;
    if (rem != 0 && !words_.empty())
        words_.back() &= (1ULL << rem) - 1;
}

} // namespace c2m
