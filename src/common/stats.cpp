#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace c2m {

CounterMap &
mergeCounters(CounterMap &into, const CounterMap &from)
{
    for (const auto &[name, value] : from)
        into[name] += value;
    return into;
}

std::string
renderCounters(const CounterMap &counters, size_t indent)
{
    size_t width = 0;
    for (const auto &[name, value] : counters)
        width = std::max(width, name.size());
    std::ostringstream os;
    for (const auto &[name, value] : counters) {
        os << std::string(indent, ' ') << name
           << std::string(width - name.size() + 2, ' ') << value
           << '\n';
    }
    return os.str();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        C2M_ASSERT(x > 0.0, "geomean requires positive values");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
rmse(const std::vector<double> &measured,
     const std::vector<double> &reference)
{
    C2M_ASSERT(measured.size() == reference.size(),
               "rmse size mismatch");
    if (measured.empty())
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < measured.size(); ++i) {
        const double d = measured[i] - reference[i];
        s += d * d;
    }
    return std::sqrt(s / static_cast<double>(measured.size()));
}

double
rmse(const std::vector<int64_t> &measured,
     const std::vector<int64_t> &reference)
{
    C2M_ASSERT(measured.size() == reference.size(),
               "rmse size mismatch");
    if (measured.empty())
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < measured.size(); ++i) {
        const double d = static_cast<double>(measured[i]) -
                         static_cast<double>(reference[i]);
        s += d * d;
    }
    return std::sqrt(s / static_cast<double>(measured.size()));
}

void
BinaryScore::add(bool predicted, bool actual)
{
    if (predicted && actual)
        ++tp;
    else if (predicted && !actual)
        ++fp;
    else if (!predicted && !actual)
        ++tn;
    else
        ++fn;
}

double
BinaryScore::precision() const
{
    const uint64_t denom = tp + fp;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double
BinaryScore::recall() const
{
    const uint64_t denom = tp + fn;
    return denom == 0 ? 0.0 : static_cast<double>(tp) / denom;
}

double
BinaryScore::f1() const
{
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
BinaryScore::accuracy() const
{
    const uint64_t denom = tp + fp + tn + fn;
    return denom == 0 ? 0.0
                      : static_cast<double>(tp + tn) / denom;
}

Histogram::Histogram(int64_t lo, int64_t hi)
    : lo_(lo), hi_(hi), bins_(static_cast<size_t>(hi - lo + 1), 0)
{
    C2M_ASSERT(hi >= lo, "histogram range inverted");
}

void
Histogram::add(int64_t value, uint64_t count)
{
    total_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
    if (value < lo_)
        underflow_ += count;
    else if (value > hi_)
        overflow_ += count;
    else
        bins_[static_cast<size_t>(value - lo_)] += count;
}

uint64_t
Histogram::binCount(int64_t value) const
{
    if (value < lo_ || value > hi_)
        return 0;
    return bins_[static_cast<size_t>(value - lo_)];
}

double
Histogram::valueMean() const
{
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::string
Histogram::render(bool log_scale, size_t bar_width) const
{
    uint64_t max_count = 1;
    for (auto c : bins_)
        max_count = std::max(max_count, c);
    const double max_scale =
        log_scale ? std::log10(static_cast<double>(max_count) + 1.0)
                  : static_cast<double>(max_count);

    std::ostringstream os;
    for (size_t b = 0; b < bins_.size(); ++b) {
        const uint64_t c = bins_[b];
        const double scale =
            log_scale ? std::log10(static_cast<double>(c) + 1.0)
                      : static_cast<double>(c);
        const size_t len = max_scale <= 0.0 ? 0
            : static_cast<size_t>(scale / max_scale *
                                  static_cast<double>(bar_width));
        os << (lo_ + static_cast<int64_t>(b)) << "\t" << c << "\t"
           << std::string(len, '#') << "\n";
    }
    return os.str();
}

} // namespace c2m
