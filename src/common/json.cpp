#include "common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace c2m {
namespace json {

const Value *
Value::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

double
Value::numberOr(std::string_view key, double fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->number : fallback;
}

bool
Value::boolOr(std::string_view key, bool fallback) const
{
    const Value *v = find(key);
    return v && v->isBool() ? v->boolean : fallback;
}

std::string
Value::stringOr(std::string_view key, std::string fallback) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->string : fallback;
}

namespace {

struct Parser
{
    std::string_view text;
    size_t pos = 0;
    std::string err;

    bool fail(const char *what)
    {
        if (err.empty())
            err = std::string(what) + " at byte " +
                  std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word)
    {
        if (text.compare(pos, word.size(), word) != 0)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u digit");
                }
                // The repo's emitters only escape control bytes;
                // encode the code point as UTF-8 for completeness.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.kind = Value::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(v))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = Value::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                Value v;
                if (!parseValue(v))
                    return false;
                out.items.push_back(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.string);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null");
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            // Copy the token out first: the view need not be
            // NUL-terminated, so strtod cannot run on it directly.
            char nbuf[64];
            size_t len = 0;
            while (pos + len < text.size() &&
                   len + 1 < sizeof(nbuf)) {
                const char d = text[pos + len];
                const bool numeric =
                    (d >= '0' && d <= '9') || d == '-' || d == '+' ||
                    d == '.' || d == 'e' || d == 'E';
                if (!numeric)
                    break;
                nbuf[len++] = d;
            }
            nbuf[len] = '\0';
            char *end = nullptr;
            out.kind = Value::Kind::Number;
            out.number = std::strtod(nbuf, &end);
            if (end == nbuf)
                return fail("bad number");
            pos += static_cast<size_t>(end - nbuf);
            return true;
        }
        return fail("unexpected character");
    }
};

} // namespace

bool
parse(std::string_view text, Value &out, std::string *error)
{
    Parser p{text, 0, {}};
    out = Value{};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.err;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at byte " +
                     std::to_string(p.pos);
        return false;
    }
    return true;
}

bool
parseFile(const std::string &path, Value &out, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return parse(text, out, error);
}

} // namespace json
} // namespace c2m
