#ifndef C2M_COMMON_TABLE_HPP
#define C2M_COMMON_TABLE_HPP

/**
 * @file
 * Aligned-text table emitter for the benchmark harnesses.
 *
 * Every bench binary prints the rows/series of one paper table or
 * figure; TextTable renders them both as aligned columns (human view)
 * and as CSV lines (machine view) so EXPERIMENTS.md can quote either.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c2m {

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; cells are pre-formatted strings. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with fixed precision. */
    static std::string fmt(double v, int precision = 3);
    /** Scientific notation (for fault/error rates). */
    static std::string sci(double v, int precision = 2);
    static std::string fmt(uint64_t v);
    static std::string fmt(int64_t v);

    /** Render as aligned text with a header underline. */
    std::string render() const;

    /** Render as CSV (headers + rows). */
    std::string csv() const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace c2m

#endif // C2M_COMMON_TABLE_HPP
