#ifndef C2M_COMMON_LOGGING_HPP
#define C2M_COMMON_LOGGING_HPP

/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic(): an internal invariant was violated (a bug in this library);
 *          aborts so a debugger/core dump sees the failure point.
 * fatal(): the simulation cannot continue because of a user error
 *          (bad configuration, invalid arguments); exits with code 1.
 * warn()/inform(): non-fatal status messages on stderr.
 */

#include <cstdint>
#include <sstream>
#include <string>

namespace c2m {

/** Severity of a routed log message. */
enum class LogLevel { Warn, Inform };

/**
 * Destination for C2M_WARN / C2M_INFORM messages.  The sink is invoked
 * under the logging mutex (calls are serialized); it must not call back
 * into the logging macros.  @p ctx is the pointer registered alongside
 * the function.
 */
using LogSinkFn = void (*)(void *ctx, LogLevel lvl, const char *msg);

/**
 * Replace the process-wide log sink (nullptr restores the stderr
 * default).  Thread-safe; intended for tests capturing output and for
 * embedders redirecting into their own logging.
 */
void setLogSink(LogSinkFn fn, void *ctx);

/**
 * Secondary observer invoked (under the logging mutex) for every
 * message that passes rate limiting, after the sink.  The trace
 * recorder registers here so warnings appear as instant events on the
 * timeline.  nullptr clears the hook.
 */
using LogTraceHookFn = void (*)(void *ctx, LogLevel lvl, const char *msg);
void setLogTraceHook(LogTraceHookFn fn, void *ctx);

/** Context pointer currently registered with setLogTraceHook. */
void *logTraceHookCtx();

/**
 * Warnings with identical text are rate-limited: the first
 * kLogRepeatHead occurrences pass, after that only every
 * kLogRepeatStride-th passes (annotated with the repeat count).
 * Informational messages are never rate-limited.
 */
inline constexpr uint64_t kLogRepeatHead = 8;
inline constexpr uint64_t kLogRepeatStride = 128;

/** Drop the per-message repeat counts (tests; long-lived services). */
void resetLogRateLimiter();

namespace detail {

/** Fold any streamable argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace c2m

/** Abort with a message: internal invariant violated (library bug). */
#define C2M_PANIC(...) \
    ::c2m::detail::panicImpl(__FILE__, __LINE__, \
                             ::c2m::detail::concat(__VA_ARGS__))

/** Exit(1) with a message: unusable user configuration or input. */
#define C2M_FATAL(...) \
    ::c2m::detail::fatalImpl(__FILE__, __LINE__, \
                             ::c2m::detail::concat(__VA_ARGS__))

/** Non-fatal warning on stderr. */
#define C2M_WARN(...) \
    ::c2m::detail::warnImpl(::c2m::detail::concat(__VA_ARGS__))

/** Informational message on stderr. */
#define C2M_INFORM(...) \
    ::c2m::detail::informImpl(::c2m::detail::concat(__VA_ARGS__))

/** Checked assertion that survives NDEBUG; panics with context. */
#define C2M_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            C2M_PANIC("assertion failed: ", #cond, " ", \
                      ::c2m::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // C2M_COMMON_LOGGING_HPP
