#ifndef C2M_COMMON_LOGGING_HPP
#define C2M_COMMON_LOGGING_HPP

/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic(): an internal invariant was violated (a bug in this library);
 *          aborts so a debugger/core dump sees the failure point.
 * fatal(): the simulation cannot continue because of a user error
 *          (bad configuration, invalid arguments); exits with code 1.
 * warn()/inform(): non-fatal status messages on stderr.
 */

#include <sstream>
#include <string>

namespace c2m {

namespace detail {

/** Fold any streamable argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace c2m

/** Abort with a message: internal invariant violated (library bug). */
#define C2M_PANIC(...) \
    ::c2m::detail::panicImpl(__FILE__, __LINE__, \
                             ::c2m::detail::concat(__VA_ARGS__))

/** Exit(1) with a message: unusable user configuration or input. */
#define C2M_FATAL(...) \
    ::c2m::detail::fatalImpl(__FILE__, __LINE__, \
                             ::c2m::detail::concat(__VA_ARGS__))

/** Non-fatal warning on stderr. */
#define C2M_WARN(...) \
    ::c2m::detail::warnImpl(::c2m::detail::concat(__VA_ARGS__))

/** Informational message on stderr. */
#define C2M_INFORM(...) \
    ::c2m::detail::informImpl(::c2m::detail::concat(__VA_ARGS__))

/** Checked assertion that survives NDEBUG; panics with context. */
#define C2M_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            C2M_PANIC("assertion failed: ", #cond, " ", \
                      ::c2m::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // C2M_COMMON_LOGGING_HPP
