#ifndef C2M_COMMON_STATS_HPP
#define C2M_COMMON_STATS_HPP

/**
 * @file
 * Small statistics helpers used by the experiment harnesses: summary
 * moments, RMSE against a reference, binary-classification scores,
 * integer histograms (Fig. 3 style), and named counter maps for
 * merging engine/service statistics into one report.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace c2m {

/**
 * Named monotonic counters, the common exchange format for the
 * statistics blocks of different subsystems (EngineStats,
 * service::ServiceStats): each exposes toCounters(), the maps are
 * merged field-wise and rendered as one report.
 *
 * Determinism contract: CounterMap is an ordered map, so iteration —
 * and therefore renderCounters(), metric snapshot export, and bench
 * JSON built from it — visits keys in lexicographic order. Two runs
 * that produce the same counter values render byte-identical reports;
 * diffs of metrics.jsonl / BENCH_*.json stay clean. Keep it this way:
 * do not swap in an unordered container.
 */
using CounterMap = std::map<std::string, uint64_t>;

/** Field-wise sum of @p from into @p into (missing keys created). */
CounterMap &mergeCounters(CounterMap &into, const CounterMap &from);

/**
 * Render as aligned "name  value" lines, one per counter, in the
 * map's (lexicographic) key order — stable across runs for identical
 * inputs.
 */
std::string renderCounters(const CounterMap &counters,
                           size_t indent = 2);

double mean(const std::vector<double> &xs);
double geomean(const std::vector<double> &xs);
double stddev(const std::vector<double> &xs);

/** Root-mean-squared error between measured and reference sequences. */
double rmse(const std::vector<double> &measured,
            const std::vector<double> &reference);
double rmse(const std::vector<int64_t> &measured,
            const std::vector<int64_t> &reference);

/** Confusion-matrix derived scores for binary classification. */
struct BinaryScore
{
    uint64_t tp = 0;
    uint64_t fp = 0;
    uint64_t tn = 0;
    uint64_t fn = 0;

    void add(bool predicted, bool actual);

    double precision() const;
    double recall() const;
    double f1() const;
    double accuracy() const;
};

/**
 * Fixed-bin integer histogram with text rendering for the bench
 * binaries (log-frequency bars, Fig. 3 style).
 */
class Histogram
{
  public:
    Histogram(int64_t lo, int64_t hi);

    void add(int64_t value, uint64_t count = 1);

    int64_t lo() const { return lo_; }
    int64_t hi() const { return hi_; }
    uint64_t total() const { return total_; }
    uint64_t binCount(int64_t value) const;
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }

    /** Mean of recorded values (clamped samples excluded). */
    double valueMean() const;

    /** Render as "value count bar" lines; log-scaled bars if requested. */
    std::string render(bool log_scale, size_t bar_width = 40) const;

  private:
    int64_t lo_;
    int64_t hi_;
    std::vector<uint64_t> bins_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace c2m

#endif // C2M_COMMON_STATS_HPP
