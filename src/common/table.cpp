#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hpp"

namespace c2m {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    C2M_ASSERT(cells.size() == headers_.size(),
               "row width ", cells.size(), " != header width ",
               headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

std::string
TextTable::fmt(uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::fmt(int64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    std::ostringstream os;
    emit_row(os, headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace c2m
