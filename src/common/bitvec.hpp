#ifndef C2M_COMMON_BITVEC_HPP
#define C2M_COMMON_BITVEC_HPP

/**
 * @file
 * Packed bit vector used for bit-parallel simulation of DRAM rows.
 *
 * A BitVector models the contents of one (sub)array row across its
 * columns. All CIM bulk-bitwise operations (MAJ3, AND, OR, NOT, NOR,
 * XOR, copy) are implemented 64 columns at a time, mirroring the
 * column-parallel nature of multi-row activation.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c2m {

class Rng;

class BitVector
{
  public:
    BitVector() = default;

    /** Construct an all-zero vector of @p num_bits columns. */
    explicit BitVector(size_t num_bits);

    /** Construct from a 0/1 string, bit i = s[i] (LSB-first). */
    static BitVector fromString(const std::string &s);

    size_t size() const { return numBits_; }
    size_t numWords() const { return words_.size(); }

    bool get(size_t i) const;
    void set(size_t i, bool v);

    /** Set all bits to @p v. */
    void fill(bool v);

    /** Number of set bits. */
    size_t popcount() const;

    /** Bitwise complement, in place. */
    void invert();

    /** dst = src (sizes must match). */
    void copyFrom(const BitVector &src);

    void assignAnd(const BitVector &a, const BitVector &b);
    void assignOr(const BitVector &a, const BitVector &b);
    void assignXor(const BitVector &a, const BitVector &b);
    void assignNor(const BitVector &a, const BitVector &b);
    void assignNot(const BitVector &a);

    /** dst = MAJ3(a, b, c) -- the triple-row-activation primitive. */
    void assignMaj3(const BitVector &a, const BitVector &b,
                    const BitVector &c);

    /**
     * Flip each bit independently with probability @p p.
     *
     * Uses geometric skips so the cost is proportional to the number of
     * faults, not the number of bits.
     *
     * @return the number of bits flipped.
     */
    size_t injectFaults(Rng &rng, double p);

    /** Fill bits i.i.d. Bernoulli(@p density). */
    void randomize(Rng &rng, double density = 0.5);

    bool operator==(const BitVector &o) const;
    bool operator!=(const BitVector &o) const { return !(*this == o); }

    /** LSB-first 0/1 string (for diagnostics). */
    std::string toString() const;

    uint64_t word(size_t w) const { return words_[w]; }
    uint64_t &word(size_t w) { return words_[w]; }

  private:
    /** Zero any bits beyond numBits_ in the last word. */
    void maskTail();

    size_t numBits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace c2m

#endif // C2M_COMMON_BITVEC_HPP
