#ifndef C2M_CIM_NVM_HPP
#define C2M_CIM_NVM_HPP

/**
 * @file
 * Bulk-bitwise CIM backends for non-volatile memories (Sec. 4.6).
 *
 * Count2Multiply is technology-agnostic: any functionally complete
 * bulk-bitwise substrate can host the counters. We model two:
 *
 *  - Pinatubo-style non-stateful logic: (N)AND/(N)OR/NOT of one or two
 *    rows sensed in peripheral circuitry and written back; operands
 *    may be sensed negated. Counting costs 3n+4 ops, overflow +3
 *    (Fig. 10a).
 *  - MAGIC: stateful, NOR-only memristor logic. Counting costs 6n+4
 *    ops with the optimized program (Fig. 10b).
 *
 * The machine is a flat row space (data rows followed by named temp
 * rows allocated by the code generators), with per-op fault injection
 * like the Ambit model.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "cim/cost.hpp"
#include "cim/fault.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace cim {

enum class NvmTech : uint8_t
{
    Pinatubo, ///< AND/OR/NOT with optional negated operands
    Magic,    ///< NOR only, plain operands
};

/** Row operand with optional sensing negation (Pinatubo only). */
struct NvmRef
{
    uint32_t row = 0;
    bool neg = false;

    static NvmRef of(uint32_t r) { return {r, false}; }
    static NvmRef inv(uint32_t r) { return {r, true}; }
};

struct NvmOp
{
    enum class Kind : uint8_t { And, Or, Not, Nor, Copy };

    Kind kind = Kind::Copy;
    uint32_t dst = 0;
    NvmRef a;
    NvmRef b; ///< unused for Not/Copy

    std::string toString() const;
};

struct NvmProgram
{
    std::vector<NvmOp> ops;

    void and_(uint32_t dst, NvmRef a, NvmRef b)
    {
        ops.push_back({NvmOp::Kind::And, dst, a, b});
    }
    void or_(uint32_t dst, NvmRef a, NvmRef b)
    {
        ops.push_back({NvmOp::Kind::Or, dst, a, b});
    }
    void not_(uint32_t dst, NvmRef a)
    {
        ops.push_back({NvmOp::Kind::Not, dst, a, {}});
    }
    void nor(uint32_t dst, NvmRef a, NvmRef b)
    {
        ops.push_back({NvmOp::Kind::Nor, dst, a, b});
    }
    void copy(uint32_t dst, NvmRef a)
    {
        ops.push_back({NvmOp::Kind::Copy, dst, a, {}});
    }

    void append(const NvmProgram &other)
    {
        ops.insert(ops.end(), other.ops.begin(), other.ops.end());
    }

    size_t size() const { return ops.size(); }

    /** Ops excluding plain copies (the latency-dominant logic ops). */
    size_t logicOps() const;
};

class NvmMachine
{
  public:
    NvmMachine(size_t num_rows, size_t num_cols, NvmTech tech,
               FaultModel fault = FaultModel::reliable(),
               uint64_t seed = 1);

    size_t numRows() const { return rows_.size(); }
    size_t numCols() const { return numCols_; }
    NvmTech tech() const { return tech_; }

    const BitVector &row(size_t r) const;
    void writeRow(size_t r, const BitVector &v);

    /** Read a row through the charged host path (counts a rowRead). */
    const BitVector &hostReadRow(size_t r);

    void execute(const NvmOp &op);
    void run(const NvmProgram &prog);

    OpStats &stats() { return stats_; }
    const OpStats &stats() const { return stats_; }

    /**
     * Install per-command fabric costs; every array op and host row
     * access from here on charges OpStats::fabricNs/fabricNj.
     * Defaults to all-zero (pure command counting).
     */
    void setCosts(const CommandCosts &c) { costs_ = c; }
    const CommandCosts &costs() const { return costs_; }

  private:
    BitVector readRef(const NvmRef &ref) const;

    size_t numCols_;
    NvmTech tech_;
    std::vector<BitVector> rows_;
    FaultModel fault_;
    OpStats stats_;
    CommandCosts costs_;
    Rng rng_;
};

} // namespace cim
} // namespace c2m

#endif // C2M_CIM_NVM_HPP
