#ifndef C2M_CIM_AMBIT_HPP
#define C2M_CIM_AMBIT_HPP

/**
 * @file
 * Functional, bit-accurate interpreter for the Ambit command set.
 *
 * An AmbitSubarray holds the D-group rows (data), the B-group compute
 * rows (T0..T3, DCC0/1) and executes AAP/AP command sequences exactly
 * as multi-row activation would: a triple activation senses MAJ3 on
 * every bitline and destructively overwrites all three activated rows
 * with the (possibly faulted) sensed value; an AAP then overdrives the
 * destination rows with that value, complementing through negative
 * DCC ports.
 *
 * Fault injection: each triple activation flips each result bit
 * independently with FaultModel::pMaj; copies use pCopy. Host-level
 * row reads/writes (memory-controller RD/WR) are reliable and tracked
 * separately in OpStats.
 *
 * Hot-path contract: executing a micro-op performs zero heap
 * allocations in steady state. All intermediate row values (the
 * sensed bitline image, DCC negations, the MAJ3 fault-disagreement
 * masks) live in member scratch BitVectors sized once at
 * construction; bench/micro_kernels carries an allocation-counting
 * probe that gates on this staying true.
 */

#include <cstdint>
#include <vector>

#include "cim/cost.hpp"
#include "cim/fault.hpp"
#include "cim/rowaddr.hpp"
#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace cim {

class AmbitSubarray
{
  public:
    AmbitSubarray(size_t num_rows, size_t num_cols,
                  FaultModel fault = FaultModel::reliable(),
                  uint64_t seed = 1);

    size_t numRows() const { return dataRows_.size(); }
    size_t numCols() const { return numCols_; }

    // ---- Host (memory controller) access: reliable RD/WR ----

    /** Read a D-group row (counts as a row read). */
    const BitVector &hostReadRow(size_t r);

    /** Overwrite a D-group row (counts as a row write). */
    void hostWriteRow(size_t r, const BitVector &v);

    /** Direct peek without touching access stats (tests/debug). */
    const BitVector &peekRow(size_t r) const;
    BitVector &rawRow(size_t r);

    /** Compute-row peeks for white-box tests. */
    const BitVector &peekT(unsigned i) const;
    const BitVector &peekDcc(unsigned i) const;
    void pokeT(unsigned i, const BitVector &v);
    void pokeDcc(unsigned i, const BitVector &v);

    // ---- Command execution ----

    void execute(const AmbitOp &op);
    void run(const AmbitProgram &prog);

    OpStats &stats() { return stats_; }
    const OpStats &stats() const { return stats_; }
    FaultModel &fault() { return fault_; }
    Rng &rng() { return rng_; }

    /**
     * Install per-command fabric costs; every AAP/AP/row access from
     * here on charges OpStats::fabricNs/fabricNj at its issue point.
     * Defaults to all-zero (pure command counting).
     */
    void setCosts(const CommandCosts &c) { costs_ = c; }
    const CommandCosts &costs() const { return costs_; }

  private:
    /** Storage cell behind a row reference (not C0/C1). */
    BitVector &cell(const RowRef &ref);

    /**
     * Sense the activation set onto the bitlines: single rows read
     * (negated through DCC negative ports), triples compute MAJ3 with
     * fault injection and destructive writeback. The returned
     * reference points at the senseV_ scratch row and stays valid
     * until the next resolveRead.
     */
    const BitVector &resolveRead(const RowSet &set,
                                 bool is_copy_source);

    /** Drive @p v into every row of @p set (write phase of AAP). */
    void writeSet(const RowSet &set, const BitVector &v);

    size_t numCols_;
    std::vector<BitVector> dataRows_;
    BitVector tRegs_[4];
    BitVector dccRegs_[2];
    BitVector zeros_;
    BitVector ones_;
    /** Sensed bitline image of the current activation (scratch). */
    BitVector senseV_;
    /** Per-activation-slot DCC negation scratch (up to 3 sources). */
    BitVector negBuf_[3];
    /** MAJ3 fault-injection scratch: flips and disagreement mask. */
    BitVector flipsBuf_;
    BitVector andBuf_;
    BitVector orBuf_;
    FaultModel fault_;
    OpStats stats_;
    CommandCosts costs_;
    Rng rng_;
};

} // namespace cim
} // namespace c2m

#endif // C2M_CIM_AMBIT_HPP
