#ifndef C2M_CIM_COST_HPP
#define C2M_CIM_COST_HPP

/**
 * @file
 * Per-command fabric cost parameters for the CIM substrates.
 *
 * The substrates (AmbitSubarray, NvmMachine) count commands; these
 * structs tell them what each command costs in modeled nanoseconds
 * and nanojoules so the charge happens at the exact issue point and
 * the tally can never drift from the command counts. The cim layer
 * stays free of dram/ dependencies: the values are plain doubles,
 * derived from dram::DramTimings / dram::EnergyModel by
 * core::dramCommandCosts() (core/fabriccost.hpp) for the DRAM
 * substrates and from NvmCostParams for the NVM machines.
 *
 * Defaults are zero so directly constructed substrates (unit tests,
 * codegen fixtures) keep pure command counting; the core backends
 * always install real costs from EngineConfig.
 */

namespace c2m {
namespace cim {

/** What one fabric command costs on this substrate. */
struct CommandCosts
{
    double aapNs = 0.0;      ///< one AAP occupying its bank
    double apNs = 0.0;       ///< one AP occupying its bank
    double rowReadNs = 0.0;  ///< host-level full-row read
    double rowWriteNs = 0.0; ///< host-level full-row write
    double aapNj = 0.0;
    double apNj = 0.0;
    double rowReadNj = 0.0;
    double rowWriteNj = 0.0;
};

/**
 * Representative NVM (Pinatubo/MAGIC-class) per-op costs. Crossbar
 * logic ops are slower and costlier than a DRAM AAP; full-row host
 * accesses go through the (slow) cell write path. Absolute values
 * are not the reproduction target — cross-backend *ratios* on the
 * shared fabric_ns/fabric_nj axis are.
 */
struct NvmCostParams
{
    double opNs = 60.0;        ///< one crossbar logic/copy op
    double opNj = 0.45;
    double rowAccessNs = 120.0; ///< host-level full-row read/write
    double rowAccessNj = 2.0;

    CommandCosts commandCosts() const
    {
        CommandCosts c;
        c.aapNs = opNs;
        c.apNs = opNs;
        c.rowReadNs = rowAccessNs;
        c.rowWriteNs = rowAccessNs;
        c.aapNj = opNj;
        c.apNj = opNj;
        c.rowReadNj = rowAccessNj;
        c.rowWriteNj = rowAccessNj;
        return c;
    }
};

} // namespace cim
} // namespace c2m

#endif // C2M_CIM_COST_HPP
