#ifndef C2M_CIM_ROWADDR_HPP
#define C2M_CIM_ROWADDR_HPP

/**
 * @file
 * Row operand model and command ISA for Ambit-style CIM (Sec. 2.2).
 *
 * A subarray's row-address space is split into three groups (Fig. 1b):
 *
 *  - B-group: four temporary rows T0..T3 and two dual-contact cells
 *    DCC0/DCC1. A DCC exposes a positive port (reads/writes the cell)
 *    and a negative port (reads/writes the complement), which is how
 *    Ambit realizes NOT for free during row copies.
 *  - C-group: constant rows C0 (all zeros) and C1 (all ones).
 *  - D-group: the data rows (counters, masks, operands).
 *
 * The B-group's 16 addresses map to sets of 1, 2 or 3 simultaneously
 * activated rows; a 3-row activation (TRA) computes MAJ3 destructively
 * (all three rows end up holding the result). We model activation sets
 * directly as RowSet so muPrograms stay readable; the canonical
 * B-address encodings used by the generated sequences (B8, B9, B11,
 * B12, B14, B15 of Fig. 6b) are provided as named constructors.
 *
 * Commands:
 *  - AAP src, dst ("activate-activate-precharge"): resolve src on the
 *    bitlines (computing MAJ3 if src is a triple), then activate dst to
 *    overwrite its rows with that value (complemented through negative
 *    DCC ports), then precharge.
 *  - AP addr ("activate-precharge"): a bare multi-row activation; for
 *    a triple this leaves MAJ3 in all three activated rows.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c2m {
namespace cim {

/** One row operand. */
struct RowRef
{
    enum class Kind : uint8_t
    {
        Data,    ///< D-group row (index = row number)
        T,       ///< B-group temporary (index in 0..3)
        DccPos,  ///< DCC cell through the positive port (index 0..1)
        DccNeg,  ///< DCC cell through the negative port (index 0..1)
        C0,      ///< constant zero row
        C1,      ///< constant one row
    };

    Kind kind = Kind::Data;
    uint32_t index = 0;

    static RowRef data(uint32_t row) { return {Kind::Data, row}; }
    static RowRef t(uint32_t i) { return {Kind::T, i}; }
    static RowRef dcc(uint32_t i) { return {Kind::DccPos, i}; }
    static RowRef dccNeg(uint32_t i) { return {Kind::DccNeg, i}; }
    static RowRef c0() { return {Kind::C0, 0}; }
    static RowRef c1() { return {Kind::C1, 0}; }

    bool operator==(const RowRef &o) const
    {
        return kind == o.kind && index == o.index;
    }

    std::string toString() const;
};

/** Set of rows activated together (1, 2 or 3 rows). */
struct RowSet
{
    RowRef rows[3];
    uint8_t count = 0;

    RowSet() = default;
    RowSet(RowRef a);                          // NOLINT(implicit)
    RowSet(RowRef a, RowRef b);
    RowSet(RowRef a, RowRef b, RowRef c);

    bool isTriple() const { return count == 3; }

    std::string toString() const;

    // -- Canonical Ambit B-group addresses used by Fig. 6b sequences --

    /** B8: write v into T0 and v-bar into DCC0. */
    static RowSet b8() { return {RowRef::t(0), RowRef::dccNeg(0)}; }
    /** B9: write v into T1 and v-bar into DCC1. */
    static RowSet b9() { return {RowRef::t(1), RowRef::dccNeg(1)}; }
    /** B11: TRA over T0, T1, DCC0 (footnote 2 of the paper). */
    static RowSet b11()
    {
        return {RowRef::t(0), RowRef::t(1), RowRef::dcc(0)};
    }
    /** B12: TRA over T0, T1, T2. */
    static RowSet b12()
    {
        return {RowRef::t(0), RowRef::t(1), RowRef::t(2)};
    }
    /** B14: TRA over T2, DCC0, DCC1-bar (AND with inverted operand). */
    static RowSet b14()
    {
        return {RowRef::t(2), RowRef::dcc(0), RowRef::dccNeg(1)};
    }
    /** B15: TRA over T0, T3, DCC1 (OR when DCC1 holds one). */
    static RowSet b15()
    {
        return {RowRef::t(0), RowRef::t(3), RowRef::dcc(1)};
    }
};

/** One Ambit command. */
struct AmbitOp
{
    enum class Kind : uint8_t { AAP, AP };

    Kind kind = Kind::AAP;
    RowSet src;
    RowSet dst;   ///< unused for AP

    static AmbitOp aap(RowSet src, RowSet dst)
    {
        return {Kind::AAP, src, dst};
    }

    static AmbitOp ap(RowSet set) { return {Kind::AP, set, {}}; }

    /** Number of row activations this command issues (2 for AAP). */
    unsigned activations() const
    {
        return kind == Kind::AAP ? 2 : 1;
    }

    std::string toString() const;
};

/** A straight-line sequence of Ambit commands. */
struct AmbitProgram
{
    std::vector<AmbitOp> ops;

    void aap(RowSet src, RowSet dst)
    {
        ops.push_back(AmbitOp::aap(src, dst));
    }

    void ap(RowSet set) { ops.push_back(AmbitOp::ap(set)); }

    void append(const AmbitProgram &other)
    {
        ops.insert(ops.end(), other.ops.begin(), other.ops.end());
    }

    size_t size() const { return ops.size(); }
    bool empty() const { return ops.empty(); }

    /** Commands whose source is a triple (MAJ3 computations). */
    size_t traCount() const;

    std::string toString() const;
};

} // namespace cim
} // namespace c2m

#endif // C2M_CIM_ROWADDR_HPP
