#ifndef C2M_CIM_FAULT_HPP
#define C2M_CIM_FAULT_HPP

/**
 * @file
 * Fault model for CIM operations (Sec. 2.3).
 *
 * Multi-row activation has a much higher bit-error rate than normal
 * access (experimentally 1e-1 .. 1e-6). We model a per-bit, per-
 * operation independent flip probability applied to the sensed result
 * of each triple-row activation. Row copies through (negated) single-
 * row activation behave like ordinary accesses and default to
 * fault-free (the paper conservatively bounds reads at 1e-20).
 */

#include <cstdint>

namespace c2m {
namespace cim {

struct FaultModel
{
    /** Per-bit flip probability of a MAJ3 (triple activation) result. */
    double pMaj = 0.0;

    /** Per-bit flip probability of a row copy / NOT (like a read). */
    double pCopy = 0.0;

    static FaultModel reliable() { return {0.0, 0.0}; }

    static FaultModel cimRate(double p_maj)
    {
        return {p_maj, 0.0};
    }
};

/**
 * Running tally of executed operations and injected faults, plus the
 * modeled fabric cost charged at each command issue point. fabricNs
 * is single-device serial time (the bank executing every command
 * back to back); bank-level parallelism across shards is applied by
 * the engines when they report a critical path. TRAs charge no extra
 * time or energy — the triple activation is part of the AAP/AP that
 * issued it.
 */
struct OpStats
{
    uint64_t aap = 0;            ///< AAP commands executed
    uint64_t ap = 0;             ///< AP commands executed
    uint64_t tra = 0;            ///< triple activations (MAJ3)
    uint64_t faultsInjected = 0; ///< total bits flipped by the model
    uint64_t rowReads = 0;       ///< host-level row reads
    uint64_t rowWrites = 0;      ///< host-level row writes
    double fabricNs = 0.0;       ///< modeled serial fabric time
    double fabricNj = 0.0;       ///< modeled fabric energy

    uint64_t commands() const { return aap + ap; }

    void
    reset()
    {
        *this = OpStats{};
    }

    OpStats &
    operator+=(const OpStats &o)
    {
        aap += o.aap;
        ap += o.ap;
        tra += o.tra;
        faultsInjected += o.faultsInjected;
        rowReads += o.rowReads;
        rowWrites += o.rowWrites;
        fabricNs += o.fabricNs;
        fabricNj += o.fabricNj;
        return *this;
    }
};

} // namespace cim
} // namespace c2m

#endif // C2M_CIM_FAULT_HPP
