#ifndef C2M_CIM_FAULT_HPP
#define C2M_CIM_FAULT_HPP

/**
 * @file
 * Fault model for CIM operations (Sec. 2.3).
 *
 * Multi-row activation has a much higher bit-error rate than normal
 * access (experimentally 1e-1 .. 1e-6). We model a per-bit, per-
 * operation independent flip probability applied to the sensed result
 * of each triple-row activation. Row copies through (negated) single-
 * row activation behave like ordinary accesses and default to
 * fault-free (the paper conservatively bounds reads at 1e-20).
 */

#include <cstdint>

namespace c2m {
namespace cim {

struct FaultModel
{
    /** Per-bit flip probability of a MAJ3 (triple activation) result. */
    double pMaj = 0.0;

    /** Per-bit flip probability of a row copy / NOT (like a read). */
    double pCopy = 0.0;

    static FaultModel reliable() { return {0.0, 0.0}; }

    static FaultModel cimRate(double p_maj)
    {
        return {p_maj, 0.0};
    }
};

/**
 * Attribution category for modeled fabric time: every charged
 * nanosecond lands in exactly one ledger row, set by the AttrScope in
 * effect when the substrate issues the command. The enumeration is
 * exhaustive — anything not inside a more specific scope falls into
 * Other (broadcast accumulate, counter reads, digit drains, ...).
 */
enum class FabricCat : uint8_t
{
    Plan = 0,        ///< planner digit-plane program execution
    Fallback,        ///< per-op serial replay (planner bail-out)
    MaskWrite,       ///< host mask-row programming
    Scrub,           ///< reliability scrub sweeps & rebases
    VirtSpill,       ///< virt frame spill to backing store
    VirtRestore,     ///< virt frame restore from backing store
    VirtMaterialize, ///< virt region first-touch materialization
    PlanFanout,      ///< follower-shard lockstep plan execution
    Other,           ///< everything else (default scope)
};

inline constexpr unsigned kFabricCatCount = 9;

inline const char *
fabricCatName(FabricCat c)
{
    switch (c) {
    case FabricCat::Plan: return "plan";
    case FabricCat::Fallback: return "fallback";
    case FabricCat::MaskWrite: return "mask_write";
    case FabricCat::Scrub: return "scrub";
    case FabricCat::VirtSpill: return "virt_spill";
    case FabricCat::VirtRestore: return "virt_restore";
    case FabricCat::VirtMaterialize: return "virt_materialize";
    case FabricCat::PlanFanout: return "plan_fanout";
    case FabricCat::Other: return "other";
    }
    return "?";
}

/**
 * Running tally of executed operations and injected faults, plus the
 * modeled fabric cost charged at each command issue point. fabricNs
 * is single-device serial time (the bank executing every command
 * back to back); bank-level parallelism across shards is applied by
 * the engines when they report a critical path. TRAs charge no extra
 * time or energy — the triple activation is part of the AAP/AP that
 * issued it.
 *
 * Ledger invariant: fabricNs is never accumulated directly; charge()
 * adds to the active attrNs row and recomputes fabricNs as the fixed
 * left-to-right sum of all rows (as does operator+= after an
 * element-wise row merge). Because every path to fabricNs goes
 * through that one summation order, sum(attrNs) == fabricNs holds
 * bit-exactly — not merely within floating-point tolerance — at any
 * aggregation depth.
 */
struct OpStats
{
    uint64_t aap = 0;            ///< AAP commands executed
    uint64_t ap = 0;             ///< AP commands executed
    uint64_t tra = 0;            ///< triple activations (MAJ3)
    uint64_t faultsInjected = 0; ///< total bits flipped by the model
    uint64_t rowReads = 0;       ///< host-level row reads
    uint64_t rowWrites = 0;      ///< host-level row writes
    /**
     * AAP/AP commands executed as lockstep followers of a merged
     * drain plan (FabricCat::PlanFanout): the leader shard issues
     * the plane program once and follower banks execute the same
     * command stream in its issue slots, so these commands do not
     * consume rank-window (tRRD/tFAW) issue bandwidth of their own.
     * Always <= commands(); ShardedEngine subtracts them from the
     * rank-floor term of the critical path.
     */
    uint64_t gangedCommands = 0;
    double fabricNs = 0.0;       ///< modeled serial fabric time
    double fabricNj = 0.0;       ///< modeled fabric energy

    /** Per-category attribution rows; sum equals fabricNs bit-exactly. */
    double attrNs[kFabricCatCount] = {};

    /** Category charges land in; scoped by cim::AttrScope, not merged. */
    FabricCat attrCat = FabricCat::Other;

    uint64_t commands() const { return aap + ap; }

    double
    attr(FabricCat c) const
    {
        return attrNs[static_cast<unsigned>(c)];
    }

    /** Charge modeled cost to the active attribution category. */
    void
    charge(double ns, double nj)
    {
        attrNs[static_cast<unsigned>(attrCat)] += ns;
        fabricNj += nj;
        syncFabricTotal();
    }

    /** Recompute fabricNs from the ledger rows in canonical order. */
    void
    syncFabricTotal()
    {
        double total = 0.0;
        for (double row : attrNs)
            total += row;
        fabricNs = total;
    }

    void
    reset()
    {
        const FabricCat cat = attrCat;
        *this = OpStats{};
        attrCat = cat;
    }

    OpStats &
    operator+=(const OpStats &o)
    {
        aap += o.aap;
        ap += o.ap;
        tra += o.tra;
        faultsInjected += o.faultsInjected;
        rowReads += o.rowReads;
        rowWrites += o.rowWrites;
        gangedCommands += o.gangedCommands;
        fabricNj += o.fabricNj;
        for (unsigned i = 0; i < kFabricCatCount; ++i)
            attrNs[i] += o.attrNs[i];
        syncFabricTotal();
        return *this;
    }
};

/**
 * True for categories naming a maintenance subsystem (scrub, virt)
 * rather than a phase of normal batch execution. A subsystem scope
 * owns all fabric work nested under it: engine-level scopes
 * (Plan/Fallback/MaskWrite) opened inside it do not re-attribute.
 */
inline bool
fabricCatIsSubsystem(FabricCat c)
{
    return c == FabricCat::Scrub || c == FabricCat::VirtSpill ||
           c == FabricCat::VirtRestore ||
           c == FabricCat::VirtMaterialize;
}

/**
 * RAII attribution context: routes every fabric charge issued through
 * the given OpStats into `cat` for the scope's lifetime, restoring
 * the previous category on exit. Engine-level scopes nest (MaskWrite
 * inside Plan: innermost wins), but never override an active
 * subsystem scope — virt materialization driving the normal batch
 * path stays VirtMaterialize all the way down. Safe under the
 * per-shard single-writer discipline — each shard's backend stats are
 * only ever charged from the thread running that shard's task.
 */
class AttrScope
{
  public:
    AttrScope(OpStats &stats, FabricCat cat)
        : stats_(stats), prev_(stats.attrCat)
    {
        if (fabricCatIsSubsystem(cat) || !fabricCatIsSubsystem(prev_))
            stats_.attrCat = cat;
    }

    ~AttrScope() { stats_.attrCat = prev_; }

    AttrScope(const AttrScope &) = delete;
    AttrScope &operator=(const AttrScope &) = delete;

  private:
    OpStats &stats_;
    FabricCat prev_;
};

} // namespace cim
} // namespace c2m

#endif // C2M_CIM_FAULT_HPP
