#include "cim/ambit.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace cim {

AmbitSubarray::AmbitSubarray(size_t num_rows, size_t num_cols,
                             FaultModel fault, uint64_t seed)
    : numCols_(num_cols),
      dataRows_(num_rows, BitVector(num_cols)),
      zeros_(num_cols),
      ones_(num_cols),
      senseV_(num_cols),
      flipsBuf_(num_cols),
      andBuf_(num_cols),
      orBuf_(num_cols),
      fault_(fault),
      rng_(seed)
{
    for (auto &t : tRegs_)
        t = BitVector(num_cols);
    for (auto &d : dccRegs_)
        d = BitVector(num_cols);
    for (auto &n : negBuf_)
        n = BitVector(num_cols);
    ones_.fill(true);
}

const BitVector &
AmbitSubarray::hostReadRow(size_t r)
{
    C2M_ASSERT(r < dataRows_.size(), "row ", r, " out of range");
    ++stats_.rowReads;
    stats_.charge(costs_.rowReadNs, costs_.rowReadNj);
    return dataRows_[r];
}

void
AmbitSubarray::hostWriteRow(size_t r, const BitVector &v)
{
    C2M_ASSERT(r < dataRows_.size(), "row ", r, " out of range");
    C2M_ASSERT(v.size() == numCols_, "row width mismatch");
    ++stats_.rowWrites;
    stats_.charge(costs_.rowWriteNs, costs_.rowWriteNj);
    dataRows_[r] = v;
}

const BitVector &
AmbitSubarray::peekRow(size_t r) const
{
    C2M_ASSERT(r < dataRows_.size(), "row ", r, " out of range");
    return dataRows_[r];
}

BitVector &
AmbitSubarray::rawRow(size_t r)
{
    C2M_ASSERT(r < dataRows_.size(), "row ", r, " out of range");
    return dataRows_[r];
}

const BitVector &
AmbitSubarray::peekT(unsigned i) const
{
    C2M_ASSERT(i < 4, "T register index out of range");
    return tRegs_[i];
}

const BitVector &
AmbitSubarray::peekDcc(unsigned i) const
{
    C2M_ASSERT(i < 2, "DCC register index out of range");
    return dccRegs_[i];
}

void
AmbitSubarray::pokeT(unsigned i, const BitVector &v)
{
    C2M_ASSERT(i < 4, "T register index out of range");
    tRegs_[i] = v;
}

void
AmbitSubarray::pokeDcc(unsigned i, const BitVector &v)
{
    C2M_ASSERT(i < 2, "DCC register index out of range");
    dccRegs_[i] = v;
}

BitVector &
AmbitSubarray::cell(const RowRef &ref)
{
    switch (ref.kind) {
      case RowRef::Kind::Data:
        C2M_ASSERT(ref.index < dataRows_.size(), "data row ",
                   ref.index, " out of range");
        return dataRows_[ref.index];
      case RowRef::Kind::T:
        C2M_ASSERT(ref.index < 4, "T index out of range");
        return tRegs_[ref.index];
      case RowRef::Kind::DccPos:
      case RowRef::Kind::DccNeg:
        C2M_ASSERT(ref.index < 2, "DCC index out of range");
        return dccRegs_[ref.index];
      default:
        C2M_PANIC("constant rows have no writable cell");
    }
}

const BitVector &
AmbitSubarray::resolveRead(const RowSet &set, bool is_copy_source)
{
    C2M_ASSERT(set.count == 1 || set.count == 3,
               "activation source must be 1 or 3 rows, got ",
               int(set.count));

    // Allocation-free: every intermediate lives in a member scratch
    // row, so replaying a cached program touches the heap not at all.
    auto read_one = [&](uint8_t slot) -> const BitVector & {
        const RowRef &ref = set.rows[slot];
        switch (ref.kind) {
          case RowRef::Kind::C0:
            return zeros_;
          case RowRef::Kind::C1:
            return ones_;
          case RowRef::Kind::DccNeg:
            negBuf_[slot].assignNot(cell(ref));
            return negBuf_[slot];
          default:
            return cell(ref);
        }
    };

    if (set.count == 1) {
        // senseV_ decouples the sensed image from the source cell, so
        // writeSet can overwrite a destination aliasing the source
        // (and a DCC-negated destination cannot corrupt later ones).
        senseV_.copyFrom(read_one(0));
        if (is_copy_source && fault_.pCopy > 0.0)
            stats_.faultsInjected +=
                senseV_.injectFaults(rng_, fault_.pCopy);
        return senseV_;
    }

    // Triple-row activation: MAJ3 with destructive writeback.
    ++stats_.tra;
    const BitVector &a = read_one(0);
    const BitVector &b = read_one(1);
    const BitVector &c = read_one(2);
    senseV_.assignMaj3(a, b, c);
    if (fault_.pMaj > 0.0) {
        // Charge-sharing faults occur where the activated cells
        // disagree; a unanimous bitline senses with a full margin
        // (Sec. 2.3/6.1), so those columns fault only at the
        // (negligible) read-error rate.
        flipsBuf_.fill(false);
        flipsBuf_.injectFaults(rng_, fault_.pMaj);
        andBuf_.assignAnd(a, b);
        andBuf_.assignAnd(andBuf_, c);
        orBuf_.assignOr(a, b);
        orBuf_.assignOr(orBuf_, c);
        // Disagreeing columns: some cell is 1 but not all of them.
        orBuf_.assignXor(andBuf_, orBuf_);
        flipsBuf_.assignAnd(flipsBuf_, orBuf_);
        stats_.faultsInjected += flipsBuf_.popcount();
        senseV_.assignXor(senseV_, flipsBuf_);
    }
    // All activated rows end up holding the sensed value.
    writeSet(set, senseV_);
    return senseV_;
}

void
AmbitSubarray::writeSet(const RowSet &set, const BitVector &v)
{
    C2M_ASSERT(set.count >= 1, "empty write set");
    for (uint8_t i = 0; i < set.count; ++i) {
        const RowRef &ref = set.rows[i];
        switch (ref.kind) {
          case RowRef::Kind::C0:
          case RowRef::Kind::C1:
            C2M_PANIC("writing a constant control row");
          case RowRef::Kind::DccNeg:
            cell(ref).assignNot(v);
            break;
          default:
            cell(ref).copyFrom(v);
            break;
        }
    }
}

void
AmbitSubarray::execute(const AmbitOp &op)
{
    if (op.kind == AmbitOp::Kind::AP) {
        ++stats_.ap;
        stats_.charge(costs_.apNs, costs_.apNj);
        C2M_ASSERT(op.src.isTriple(),
                   "AP is only meaningful on a triple activation");
        resolveRead(op.src, false);
        return;
    }

    ++stats_.aap;
    stats_.charge(costs_.aapNs, costs_.aapNj);
    const bool is_copy = !op.src.isTriple();
    const BitVector &v = resolveRead(op.src, is_copy);
    writeSet(op.dst, v);
}

void
AmbitSubarray::run(const AmbitProgram &prog)
{
    for (const auto &op : prog.ops)
        execute(op);
}

} // namespace cim
} // namespace c2m
