#include "cim/nvm.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace cim {

std::string
NvmOp::toString() const
{
    auto ref = [](const NvmRef &r) {
        return (r.neg ? std::string("!R") : std::string("R")) +
               std::to_string(r.row);
    };
    switch (kind) {
      case Kind::And:
        return "AND R" + std::to_string(dst) + ", " + ref(a) + ", " +
               ref(b);
      case Kind::Or:
        return "OR  R" + std::to_string(dst) + ", " + ref(a) + ", " +
               ref(b);
      case Kind::Not:
        return "NOT R" + std::to_string(dst) + ", " + ref(a);
      case Kind::Nor:
        return "NOR R" + std::to_string(dst) + ", " + ref(a) + ", " +
               ref(b);
      case Kind::Copy:
        return "CP  R" + std::to_string(dst) + ", " + ref(a);
    }
    return "?";
}

size_t
NvmProgram::logicOps() const
{
    size_t n = 0;
    for (const auto &op : ops)
        if (op.kind != NvmOp::Kind::Copy)
            ++n;
    return n;
}

NvmMachine::NvmMachine(size_t num_rows, size_t num_cols, NvmTech tech,
                       FaultModel fault, uint64_t seed)
    : numCols_(num_cols),
      tech_(tech),
      rows_(num_rows, BitVector(num_cols)),
      fault_(fault),
      rng_(seed)
{
}

const BitVector &
NvmMachine::row(size_t r) const
{
    C2M_ASSERT(r < rows_.size(), "row ", r, " out of range");
    return rows_[r];
}

void
NvmMachine::writeRow(size_t r, const BitVector &v)
{
    C2M_ASSERT(r < rows_.size(), "row ", r, " out of range");
    C2M_ASSERT(v.size() == numCols_, "row width mismatch");
    ++stats_.rowWrites;
    stats_.charge(costs_.rowWriteNs, costs_.rowWriteNj);
    rows_[r] = v;
}

const BitVector &
NvmMachine::hostReadRow(size_t r)
{
    C2M_ASSERT(r < rows_.size(), "row ", r, " out of range");
    ++stats_.rowReads;
    stats_.charge(costs_.rowReadNs, costs_.rowReadNj);
    return rows_[r];
}

BitVector
NvmMachine::readRef(const NvmRef &ref) const
{
    C2M_ASSERT(ref.row < rows_.size(), "row ", ref.row,
               " out of range");
    if (!ref.neg)
        return rows_[ref.row];
    C2M_ASSERT(tech_ == NvmTech::Pinatubo,
               "negated operands require Pinatubo-style sensing");
    BitVector v(numCols_);
    v.assignNot(rows_[ref.row]);
    return v;
}

void
NvmMachine::execute(const NvmOp &op)
{
    C2M_ASSERT(op.dst < rows_.size(), "dst row out of range");
    if (tech_ == NvmTech::Magic) {
        C2M_ASSERT(op.kind == NvmOp::Kind::Nor ||
                   op.kind == NvmOp::Kind::Copy,
                   "MAGIC supports only NOR (and init copies)");
    }

    BitVector result(numCols_);
    bool is_logic = true;
    switch (op.kind) {
      case NvmOp::Kind::And:
        result.assignAnd(readRef(op.a), readRef(op.b));
        break;
      case NvmOp::Kind::Or:
        result.assignOr(readRef(op.a), readRef(op.b));
        break;
      case NvmOp::Kind::Not:
        result.assignNot(readRef(op.a));
        break;
      case NvmOp::Kind::Nor:
        result.assignNor(readRef(op.a), readRef(op.b));
        break;
      case NvmOp::Kind::Copy:
        result = readRef(op.a);
        is_logic = false;
        break;
    }

    ++stats_.aap; // count every op as one array command
    stats_.charge(costs_.aapNs, costs_.aapNj);
    if (is_logic) {
        ++stats_.tra;
        if (fault_.pMaj > 0.0)
            stats_.faultsInjected +=
                result.injectFaults(rng_, fault_.pMaj);
    } else if (fault_.pCopy > 0.0) {
        stats_.faultsInjected +=
            result.injectFaults(rng_, fault_.pCopy);
    }

    rows_[op.dst] = result;
}

void
NvmMachine::run(const NvmProgram &prog)
{
    for (const auto &op : prog.ops)
        execute(op);
}

} // namespace cim
} // namespace c2m
