#include "cim/rowaddr.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace c2m {
namespace cim {

std::string
RowRef::toString() const
{
    // Build via append rather than `"lit" + std::to_string(...)`:
    // gcc 12's -Wrestrict misfires on the rvalue operator+ chain
    // (GCC PR105329) and the library builds with -Werror.
    std::string s;
    switch (kind) {
      case Kind::Data:
        s = "D";
        break;
      case Kind::T:
        s = "T";
        break;
      case Kind::DccPos:
        s = "DCC";
        break;
      case Kind::DccNeg:
        s = "~DCC";
        break;
      case Kind::C0:
        return "C0";
      case Kind::C1:
        return "C1";
    }
    if (s.empty())
        return "?";
    s += std::to_string(index);
    return s;
}

RowSet::RowSet(RowRef a)
{
    rows[0] = a;
    count = 1;
}

RowSet::RowSet(RowRef a, RowRef b)
{
    rows[0] = a;
    rows[1] = b;
    count = 2;
}

RowSet::RowSet(RowRef a, RowRef b, RowRef c)
{
    rows[0] = a;
    rows[1] = b;
    rows[2] = c;
    count = 3;
}

std::string
RowSet::toString() const
{
    std::string s = "{";
    for (uint8_t i = 0; i < count; ++i) {
        if (i)
            s += ",";
        s += rows[i].toString();
    }
    return s + "}";
}

std::string
AmbitOp::toString() const
{
    if (kind == Kind::AP)
        return "AP  " + src.toString();
    return "AAP " + src.toString() + " -> " + dst.toString();
}

size_t
AmbitProgram::traCount() const
{
    size_t n = 0;
    for (const auto &op : ops)
        if (op.src.isTriple())
            ++n;
    return n;
}

std::string
AmbitProgram::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < ops.size(); ++i)
        os << i << ": " << ops[i].toString() << "\n";
    return os.str();
}

} // namespace cim
} // namespace c2m
