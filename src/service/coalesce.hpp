#ifndef C2M_SERVICE_COALESCE_HPP
#define C2M_SERVICE_COALESCE_HPP

/**
 * @file
 * Epoch-side op coalescing: sum duplicate deltas per (counter,
 * group) so N hits on a hot counter cost one fabric update.
 *
 * The fabric charges a fixed row-op sequence per accumulate call, so
 * merging M same-counter ops into one divides that fixed cost by M —
 * the write-combining lever the batch-oriented substrate rewards.
 * Counter values are unchanged: integer addition commutes, and the
 * engine reads back the per-counter sum either way. Groups whose
 * deltas cancel to zero are elided entirely (the engine skips
 * zero-value accumulates, but eliding also saves the point-mask
 * switch).
 *
 * What is NOT preserved: the op count seen by the fabric
 * (inputsAccumulated, increments, ripples shrink — that is the
 * point) and the exact increment/decrement interleaving (a +5,-3
 * pair becomes +2, which never takes the signed path). Deltas are
 * summed in int64 without overflow checks; callers feed counter
 * deltas, which are far below the 2^63 boundary.
 *
 * Coalescing is the planner's feeder: the coalesced bucket is what
 * ShardedEngine's drain pipeline decomposes into shared (digit, k)
 * plane masks, turning the per-epoch op list into at most D*(R-1)
 * column-parallel fabric programs per group.
 *
 * Two entry points: the scratch-based overload is the epoch hot path
 * — a software write-combining buffer (dense open-addressing table
 * with epoch stamps) that allocates nothing in steady state; the
 * convenience overload owns a throwaway scratch for one-shot callers
 * (stop()-time stragglers, tests).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "core/sharded.hpp"

namespace c2m {
namespace service {

struct CoalesceResult
{
    /** One op per surviving (counter, group), first-occurrence order. */
    std::vector<core::BatchOp> ops;
    /** Input ops eliminated by merging or zero-sum elision. */
    uint64_t merged = 0;
};

/**
 * Reusable write-combining table: open addressing over (counter,
 * group) keys with per-slot epoch stamps, so clearing between epochs
 * is a single counter bump instead of a table wipe. Sized to the
 * next power of two >= 2x the bucket, grown only when a bigger
 * bucket arrives; one scratch per drain lane (IngestService keeps
 * one per shard) keeps the epoch hot path allocation-free.
 */
struct CoalesceScratch
{
    std::vector<uint64_t> counters; ///< key: logical counter index
    std::vector<uint32_t> groups;   ///< key: counter group
    std::vector<uint32_t> slots;    ///< value: index into result ops
    std::vector<uint32_t> stamps;   ///< slot live iff == epoch
    uint32_t epoch = 0;
    size_t mask = 0; ///< table size - 1 (power of two)
};

/**
 * Write-combining coalesce of @p ops into @p out (cleared first),
 * reusing @p scratch across calls. Identical contract to the
 * convenience overload: surviving ops keep first-occurrence order,
 * zero-sum counters are elided, out.merged counts eliminated input
 * ops.
 */
void coalesceOps(std::span<const core::BatchOp> ops,
                 CoalesceScratch &scratch, CoalesceResult &out);

CoalesceResult coalesceOps(std::span<const core::BatchOp> ops);

} // namespace service
} // namespace c2m

#endif // C2M_SERVICE_COALESCE_HPP
