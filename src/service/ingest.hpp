#ifndef C2M_SERVICE_INGEST_HPP
#define C2M_SERVICE_INGEST_HPP

/**
 * @file
 * Asynchronous ingest service over the sharded engine.
 *
 * IngestService fronts a ShardedEngine with one bounded MPSC queue
 * per shard. Any number of producer threads submit() BatchOps; a
 * background drainer runs deterministic epochs:
 *
 *   1. cut: every shard queue's pending ops are swapped out (each
 *      cut is a FIFO prefix of that shard's submissions);
 *   2. coalesce: per shard, duplicate (counter, group) deltas are
 *      summed through a per-shard write-combining scratch table so a
 *      hot counter costs one fabric update per epoch;
 *   3. execute: the epoch's buckets run through the engine's
 *      hierarchical drain pipeline (ShardedEngine::runEpoch) on the
 *      lane pool — stage tasks either pinned to their home lane, or
 *      (workStealing) claimed by whichever lane is free, so one
 *      skewed shard cannot serialize the epoch behind busy lanes.
 *      With the engine's drain planner on
 *      (EngineConfig::drainPlanner, default), the epoch executes as
 *      ONE merged set of column-parallel digit planes, gang-issued
 *      across shards — at most D*(R-1) leader fabric programs per
 *      group per epoch instead of one replicated plan per shard;
 *      ServiceStats::plans* sample the per-epoch planner activity.
 *
 * Ordering and consistency:
 *  - Per (producer, shard), ops apply in submission order; a
 *    same-shard span submitted in one call lands in one epoch
 *    (capacity permitting). Cross-shard spans may straddle an epoch
 *    boundary — only per-shard atomicity is promised.
 *  - Epochs are barriers: epoch E finishes on every shard before
 *    E+1 cuts, so per-shard buckets never reorder and work stealing
 *    cannot change results — final counters are bit-identical to a
 *    single blocking engine replaying the same ops.
 *  - flush() returns an epoch token covering everything submitted
 *    before the call; wait(token) blocks until it is applied.
 *    snapshot()/readCounters() drain up to such a token and read
 *    the engine between epochs, so readers never observe a torn
 *    (partially applied) epoch; the snapshot may be newer than the
 *    token, never older.
 *
 * Backpressure is per shard queue: Block stalls producers until the
 * drainer catches up, Drop rejects the overflow and counts it.
 * While a service is attached, drive the engine only through it
 * (direct accumulateBatch/readAllCounters calls would race the
 * drainer).
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/sharded.hpp"
#include "obs/metrics.hpp"
#include "service/coalesce.hpp"
#include "service/queue.hpp"

namespace c2m {
namespace service {

struct IngestConfig
{
    size_t queueCapacity = 4096; ///< per-shard pending-op bound
    /**
     * Coalescing window: the drainer sleeps until this many ops are
     * queued (across all shards) before cutting an epoch. flush(),
     * stop() and full queues override it. Larger windows merge more
     * duplicates per epoch at the cost of ingest latency.
     */
    size_t minDrainOps = 1;
    bool coalesce = true;
    bool workStealing = true;
    Backpressure backpressure = Backpressure::Block;
    /**
     * Fabric-time epoch sizing: when > 0, the drainer adapts its
     * coalescing window so one epoch executes about this much modeled
     * fabric time (EngineStats fabric ns, see docs/perf.md). An EWMA
     * of the observed per-op fabric cost converts the target into an
     * op-count window after each epoch; minDrainOps seeds the window
     * until the first sample lands. flush(), stop() and full queues
     * still cut immediately.
     */
    double targetEpochFabricNs = 0.0;
};

struct ServiceStats
{
    uint64_t submitted = 0;  ///< ops accepted into shard queues
    uint64_t queued = 0;     ///< ops currently pending (gauge)
    uint64_t dropped = 0;    ///< ops rejected by Drop backpressure
    uint64_t stalls = 0;     ///< producer blocks on a full queue
    uint64_t coalesced = 0;  ///< ops merged away before the fabric
    uint64_t flushedOps = 0; ///< ops actually executed on the fabric
    uint64_t epochs = 0;     ///< drain epochs applied
    uint64_t steals = 0;     ///< buckets executed off their home lane
    // Drain-planner activity, sampled per epoch from the engine
    // stats delta while the drainer holds the engine, so the numbers
    // attribute column-parallel execution to ingest epochs even when
    // other drivers (scrubber, tensor ops) share the engine.
    uint64_t plans = 0;        ///< column-parallel plans executed
    uint64_t planPrograms = 0; ///< masked plane increments issued
    uint64_t plannedOps = 0;   ///< ops folded into plans
    uint64_t planFallbackOps = 0; ///< ops replayed per-op instead
    // Modeled fabric cost attributed to ingest epochs, sampled from
    // the same per-epoch engine-stats delta as the plan counters —
    // engine.fabric.* remains the engine-lifetime total, service
    // fabric is the slice this service's epochs executed.
    double fabricNs = 0.0; ///< simulated fabric time drained
    double fabricNj = 0.0; ///< simulated fabric energy drained

    ServiceStats &operator+=(const ServiceStats &o)
    {
        submitted += o.submitted;
        queued += o.queued;
        dropped += o.dropped;
        stalls += o.stalls;
        coalesced += o.coalesced;
        flushedOps += o.flushedOps;
        epochs += o.epochs;
        steals += o.steals;
        plans += o.plans;
        planPrograms += o.planPrograms;
        plannedOps += o.plannedOps;
        planFallbackOps += o.planFallbackOps;
        fabricNs += o.fabricNs;
        fabricNj += o.fabricNj;
        return *this;
    }

    /** Named "service.*" counters for the merged report. */
    CounterMap toCounters() const;
};

/**
 * Hook into the drainer's epoch boundary. The service invokes the
 * observer from the drainer thread while it holds the engine: after
 * an epoch's buckets have executed, onShardOps() reports each
 * shard's applied (coalesced) ops, then onEpochApplied() marks the
 * boundary — the engine is quiescent for its whole duration, so the
 * observer may drive it (this is where the reliability scrubber
 * sweeps counter rows). Both run *before* the epoch is marked
 * applied: snapshot readers waiting on the epoch see the
 * post-observer state. counters() is merged into report().
 */
class EpochObserver
{
  public:
    virtual ~EpochObserver() = default;

    /** Ops of @p shard just applied to the engine (epoch executing). */
    virtual void onShardOps(unsigned shard,
                            std::span<const core::BatchOp> ops) = 0;

    /** Epoch @p epoch fully executed; engine quiescent. */
    virtual void onEpochApplied(uint64_t epoch) = 0;

    /**
     * Service shutting down after the last ops were applied; the
     * engine stays quiescent from here on. Observers that defer work
     * across boundaries (budgeted/interval scrubbing) must finish it
     * now so post-stop engine reads see fully reconciled state.
     */
    virtual void onStop(uint64_t epoch) { onEpochApplied(epoch); }

    /** Named counters merged into IngestService::report(). */
    virtual CounterMap counters() const { return {}; }
};

/** Drain-latency distribution over recent epochs (microseconds). */
struct DrainLatency
{
    uint64_t samples = 0; ///< epochs timed (window-limited)
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
    uint64_t max = 0;
};

class IngestService
{
  public:
    /**
     * Attach to @p engine and start the drainer. The engine must
     * outlive the service and not be driven directly while attached.
     */
    explicit IngestService(core::ShardedEngine &engine,
                           const IngestConfig &cfg = {});
    ~IngestService();

    IngestService(const IngestService &) = delete;
    IngestService &operator=(const IngestService &) = delete;

    const IngestConfig &config() const { return cfg_; }
    core::ShardedEngine &engine() { return engine_; }

    /**
     * Attach an epoch-boundary observer (e.g. a
     * reliability::Scrubber). Must be called before any traffic is
     * submitted; the observer must outlive the service. Pass nullptr
     * to detach (only while idle).
     */
    void attachObserver(EpochObserver *observer);

    /**
     * Submit ops from any thread; returns how many were accepted
     * (all, under Block backpressure). Ops are routed to their
     * owning shard's queue; each shard's portion of the span is
     * enqueued contiguously.
     */
    size_t submit(std::span<const core::BatchOp> ops);
    bool submit(const core::BatchOp &op);

    /**
     * Epoch token covering every op submitted before this call;
     * wakes the drainer regardless of minDrainOps.
     */
    uint64_t flush();
    /** Block until epoch @p token has been applied. */
    void wait(uint64_t token);
    uint64_t flushAndWait();

    /**
     * Cut and apply one epoch even when no ops are queued, unlike
     * flush(), which short-circuits on an idle service. Epoch
     * observers that defer maintenance to boundaries (e.g. a
     * virtualized space whose deltas are all journaled host-side)
     * need a boundary to make progress on an otherwise idle
     * service. Returns the token to wait() on.
     */
    uint64_t forceEpoch();

    struct Snapshot
    {
        uint64_t epoch; ///< the applied epoch the counters reflect
        std::vector<int64_t> counters;
    };

    /**
     * Epoch-consistent read: drains everything submitted before the
     * call, then reads the full counter space between epochs. The
     * returned epoch is >= the flush token — never a torn batch.
     */
    Snapshot snapshot(unsigned group = 0);
    std::vector<int64_t> readCounters(unsigned group = 0);

    /**
     * Drain every queued op and join the drainer (idempotent; the
     * destructor calls it). Stop producers first: ops submitted
     * after stop() returns are rejected.
     */
    void stop();

    ServiceStats serviceStats() const;
    /**
     * Current coalescing window in ops: minDrainOps, or the adapted
     * window when targetEpochFabricNs is set.
     */
    size_t effectiveMinDrainOps() const
    {
        return dynamicMinDrainOps_.load(std::memory_order_relaxed);
    }
    /** Engine stats, read race-free against the drainer. */
    core::EngineStats engineStats() const;
    /**
     * Merged service.* + engine.* (+ observer) counters plus the
     * drain-latency percentiles, renderCounters-ready.
     */
    CounterMap report() const;

    /**
     * p50/p95/p99/max of the per-epoch drain latency (cut through
     * observer hooks) over the service lifetime. Quantiles come from
     * a log-bucketed histogram: exact below 4 us, within one bucket
     * width (<= 25% relative) above.
     */
    DrainLatency drainLatency() const;

    /** The underlying drain-latency histogram (for MetricsRegistry). */
    const obs::LogHistogram &drainHistogram() const { return drainHist_; }

  private:
    struct Bucket
    {
        unsigned shard;
        std::vector<core::BatchOp> ops;
    };

    void drainerLoop();
    /** Cut + coalesce + execute one epoch; returns ops cut. */
    size_t runEpoch(uint64_t epoch);
    void executeEpoch(uint64_t epoch, std::vector<Bucket> &buckets,
                      ServiceStats &epoch_stats);
    /** Producer-side: force a drain now (full queue, flush). */
    void kick();

    /** Record one epoch's drain time (thread-safe). */
    void recordDrainLatency(uint64_t us);

    core::ShardedEngine &engine_;
    const IngestConfig cfg_;
    EpochObserver *observer_ = nullptr;
    std::vector<std::unique_ptr<BoundedOpQueue>> queues_;
    /** Total pending ops; adjusted under the owning queue's mutex. */
    std::atomic<size_t> queuedOps_{0};

    mutable std::mutex m_;
    std::condition_variable drainCv_; ///< wakes the drainer
    std::condition_variable epochCv_; ///< wakes wait()ers
    uint64_t cutEpoch_ = 0;     ///< epochs started  (guarded by m_)
    uint64_t appliedEpoch_ = 0; ///< epochs finished (guarded by m_)
    uint64_t flushTarget_ = 0;  ///< newest token    (guarded by m_)
    bool forceDrain_ = false;   ///< guarded by m_
    bool stop_ = false;         ///< guarded by m_
    bool stopFinalized_ = false; ///< stop() ran once (guarded by m_)
    ServiceStats stats_;        ///< epoch-side sums (guarded by m_)
    /** Coalescing window in ops; adapted by fabric-time sizing. */
    std::atomic<size_t> dynamicMinDrainOps_{1};
    /** EWMA of modeled fabric ns per flushed op (guarded by m_). */
    double ewmaOpNs_ = 0.0;

    /**
     * Per-epoch drain latency distribution in us: a log-bucketed
     * concurrent histogram (obs::) instead of the old exact-sample
     * ring — unbounded history, fixed footprint, lock-free record.
     */
    obs::LogHistogram drainHist_;

    /** Serializes epoch execution against snapshot reads. */
    mutable std::mutex engineMutex_;
    /** Drainer-only: last epoch executed per shard (FIFO assert). */
    std::vector<uint64_t> lastShardEpoch_;
    /** Drainer-only: per-shard write-combining coalesce tables. */
    std::vector<CoalesceScratch> coalesceScratch_;

    std::thread drainer_;
};

/**
 * Split @p ops into @p num_producers contiguous slices and submit
 * each from its own producer thread (num_producers == 0 behaves as
 * 1). Returns the total ops accepted. Final counter values equal a
 * serial submission of @p ops: per-counter sums commute, whatever
 * epoch each slice lands in.
 */
size_t submitConcurrent(IngestService &service,
                        std::span<const core::BatchOp> ops,
                        unsigned num_producers);

} // namespace service
} // namespace c2m

#endif // C2M_SERVICE_INGEST_HPP
