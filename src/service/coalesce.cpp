#include "service/coalesce.hpp"

#include <algorithm>
#include <cstring>

namespace c2m {
namespace service {

namespace {

/** splitmix64 finalizer: full-avalanche mix of the (counter, group)
    key so linear probing sees a uniform distribution even for the
    sequential-counter streams benches produce. */
inline uint64_t
mixKey(uint64_t counter, uint32_t group)
{
    uint64_t z = counter ^ (static_cast<uint64_t>(group) << 32);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
coalesceOps(std::span<const core::BatchOp> ops,
            CoalesceScratch &sc, CoalesceResult &out)
{
    out.ops.clear();
    out.merged = 0;
    if (ops.empty())
        return;
    // Keep load factor <= 0.5 so probe chains stay short; the table
    // only ever grows, so a steady stream of same-sized epochs never
    // reallocates.
    size_t want = 16;
    while (want < ops.size() * 2)
        want <<= 1;
    if (sc.counters.size() < want) {
        sc.counters.resize(want);
        sc.groups.resize(want);
        sc.slots.resize(want);
        sc.stamps.assign(want, 0);
        sc.epoch = 0;
        sc.mask = want - 1;
    }
    // Epoch-stamp clear: one increment invalidates every slot. On
    // the (2^32 calls) wrap the stamps are wiped for real so stale
    // slots from a previous cycle cannot alias as live.
    if (++sc.epoch == 0) {
        std::fill(sc.stamps.begin(), sc.stamps.end(), 0u);
        sc.epoch = 1;
    }
    out.ops.reserve(ops.size());
    for (const auto &op : ops) {
        size_t i = mixKey(op.counter, op.group) & sc.mask;
        for (;;) {
            if (sc.stamps[i] != sc.epoch) {
                sc.stamps[i] = sc.epoch;
                sc.counters[i] = op.counter;
                sc.groups[i] = op.group;
                sc.slots[i] =
                    static_cast<uint32_t>(out.ops.size());
                out.ops.push_back(op);
                break;
            }
            if (sc.counters[i] == op.counter &&
                sc.groups[i] == op.group) {
                out.ops[sc.slots[i]].value += op.value;
                ++out.merged;
                break;
            }
            i = (i + 1) & sc.mask;
        }
    }
    // Elide counters whose deltas cancelled, keeping order stable.
    size_t kept = 0;
    for (size_t i = 0; i < out.ops.size(); ++i) {
        if (out.ops[i].value == 0) {
            ++out.merged;
            continue;
        }
        out.ops[kept++] = out.ops[i];
    }
    out.ops.resize(kept);
}

CoalesceResult
coalesceOps(std::span<const core::BatchOp> ops)
{
    CoalesceScratch sc;
    CoalesceResult r;
    coalesceOps(ops, sc, r);
    return r;
}

} // namespace service
} // namespace c2m
