#include "service/coalesce.hpp"

#include <map>
#include <utility>

namespace c2m {
namespace service {

CoalesceResult
coalesceOps(std::span<const core::BatchOp> ops)
{
    CoalesceResult r;
    r.ops.reserve(ops.size());
    std::map<std::pair<uint64_t, uint32_t>, size_t> index;
    for (const auto &op : ops) {
        const auto key = std::make_pair(op.counter, op.group);
        const auto [it, inserted] =
            index.try_emplace(key, r.ops.size());
        if (inserted) {
            r.ops.push_back(op);
        } else {
            r.ops[it->second].value += op.value;
            ++r.merged;
        }
    }
    // Elide counters whose deltas cancelled, keeping order stable.
    size_t out = 0;
    for (size_t i = 0; i < r.ops.size(); ++i) {
        if (r.ops[i].value == 0) {
            ++r.merged;
            continue;
        }
        r.ops[out++] = r.ops[i];
    }
    r.ops.resize(out);
    return r;
}

} // namespace service
} // namespace c2m
