#ifndef C2M_SERVICE_QUEUE_HPP
#define C2M_SERVICE_QUEUE_HPP

/**
 * @file
 * Bounded multi-producer op queue, one per shard of the ingest
 * service.
 *
 * Producers append BatchOp groups under the queue mutex; the drainer
 * cuts the entire pending vector in O(1) (swap) at each epoch
 * boundary. A group pushed in one call lands contiguously in a
 * single cut — same-shard spans are therefore epoch-atomic as long
 * as they fit the capacity (larger groups are split into
 * capacity-sized chunks).
 *
 * Backpressure when a group does not fit:
 *  - Block: the producer kicks the drainer and sleeps until a cut
 *    frees space (counted in stalls);
 *  - Drop: the remainder of the group is rejected immediately
 *    (counted in dropped), the drainer is kicked so the backlog
 *    clears.
 */

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/sharded.hpp"
#include "obs/trace.hpp"

namespace c2m {
namespace service {

/** What a producer experiences when a shard queue is full. */
enum class Backpressure : uint8_t
{
    Block, ///< wait for the drainer to cut the queue
    Drop,  ///< reject the ops and count them
};

class BoundedOpQueue
{
  public:
    struct Stats
    {
        uint64_t submitted = 0; ///< ops accepted into the queue
        uint64_t dropped = 0;   ///< ops rejected (Drop policy/close)
        uint64_t stalls = 0;    ///< producer blocks on a full queue
    };

    /**
     * @param capacity max pending ops (>= 1).
     * @param policy what to do with producers when full.
     * @param kick called (with the queue mutex held) right before a
     *        producer blocks or drops, so the owner can wake its
     *        drainer; must not call back into this queue.
     * @param shard trace track for stall/drop events (the owning
     *        shard index; defaults to the service track).
     */
    BoundedOpQueue(size_t capacity, Backpressure policy,
                   std::function<void()> kick,
                   uint32_t shard = obs::kServiceTrack);

    /**
     * Append @p ops FIFO; returns how many were accepted. Blocks or
     * drops per the policy when full; a closed queue accepts
     * nothing.
     */
    size_t push(std::span<const core::BatchOp> ops);

    /** Swap out every pending op and wake blocked producers. */
    std::vector<core::BatchOp> cut();

    /** Reject current and future blocked producers (for shutdown). */
    void close();

    /** Counter snapshot (consistent under the queue mutex). */
    Stats stats() const;

    /** Pending op count; racy, for heuristics only. */
    size_t sizeApprox() const;

  private:
    const size_t capacity_;
    const Backpressure policy_;
    const std::function<void()> kick_;
    const uint32_t shard_;

    mutable std::mutex m_;
    std::condition_variable notFull_;
    std::vector<core::BatchOp> pending_;
    Stats stats_;
    bool closed_ = false;
};

} // namespace service
} // namespace c2m

#endif // C2M_SERVICE_QUEUE_HPP
