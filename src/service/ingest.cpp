#include "service/ingest.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hpp"
#include "obs/trace.hpp"
#include "service/coalesce.hpp"

namespace c2m {
namespace service {

CounterMap
ServiceStats::toCounters() const
{
    return {
        {"service.submitted", submitted},
        {"service.queued", queued},
        {"service.dropped", dropped},
        {"service.stalls", stalls},
        {"service.coalesced", coalesced},
        {"service.flushed_ops", flushedOps},
        {"service.epochs", epochs},
        {"service.steals", steals},
        {"service.plans", plans},
        {"service.plan_programs", planPrograms},
        {"service.planned_ops", plannedOps},
        {"service.plan_fallback_ops", planFallbackOps},
        {"service.fabric_ns",
         static_cast<uint64_t>(std::llround(fabricNs))},
        {"service.fabric_nj",
         static_cast<uint64_t>(std::llround(fabricNj))},
    };
}

namespace {

/** Attribute a drain's planner and fabric activity to this epoch. */
void
addPlanDelta(ServiceStats &es, const core::EngineStats &before,
             const core::EngineStats &after)
{
    es.plans += after.plansExecuted - before.plansExecuted;
    es.planPrograms += after.planPrograms - before.planPrograms;
    es.plannedOps += after.plannedOps - before.plannedOps;
    es.planFallbackOps +=
        after.planFallbackOps - before.planFallbackOps;
    es.fabricNs += after.fabric.fabricNs - before.fabric.fabricNs;
    es.fabricNj += after.fabric.fabricNj - before.fabric.fabricNj;
}

} // namespace

IngestService::IngestService(core::ShardedEngine &engine,
                             const IngestConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    C2M_ASSERT(cfg_.queueCapacity >= 1,
               "queueCapacity must be >= 1");
    dynamicMinDrainOps_.store(std::max<size_t>(1, cfg_.minDrainOps),
                              std::memory_order_relaxed);
    lastShardEpoch_.assign(engine_.numShards(), 0);
    coalesceScratch_.resize(engine_.numShards());
    for (unsigned s = 0; s < engine_.numShards(); ++s)
        queues_.push_back(std::make_unique<BoundedOpQueue>(
            cfg_.queueCapacity, cfg_.backpressure,
            [this] { kick(); }, s));
    drainer_ = std::thread([this] { drainerLoop(); });
}

IngestService::~IngestService() { stop(); }

void
IngestService::attachObserver(EpochObserver *observer)
{
    std::lock_guard<std::mutex> lk(m_);
    if (observer) {
        C2M_ASSERT(cutEpoch_ == 0 &&
                       queuedOps_.load(std::memory_order_relaxed) ==
                           0,
                   "attach the epoch observer before submitting "
                   "traffic");
    } else {
        // Detach requires a quiescent service (no epoch in flight,
        // nothing queued, no concurrent producers).
        C2M_ASSERT(cutEpoch_ == appliedEpoch_ &&
                       queuedOps_.load(std::memory_order_relaxed) ==
                           0,
                   "detach the epoch observer only while idle");
    }
    observer_ = observer;
}

size_t
IngestService::submit(std::span<const core::BatchOp> ops)
{
    if (ops.empty())
        return 0;
    // Pre-charge the gauge so an op sitting in a queue is always
    // counted; rejected ops are refunded below. Overcounting between
    // the two points only wakes the drainer early.
    queuedOps_.fetch_add(ops.size(), std::memory_order_relaxed);
    size_t accepted = 0;
    const unsigned nshards = engine_.numShards();
    if (nshards == 1) {
        accepted = queues_[0]->push(ops);
    } else if (ops.size() == 1) {
        // Single-op hot path: route directly, no group buffers.
        accepted =
            queues_[engine_.shardOf(ops[0].counter)]->push(ops);
    } else {
        // Bucket by owning shard, preserving order, so each shard's
        // portion is pushed contiguously under one queue lock (one
        // epoch, capacity permitting).
        std::vector<std::vector<core::BatchOp>> groups(nshards);
        for (const auto &op : ops)
            groups[engine_.shardOf(op.counter)].push_back(op);
        for (unsigned s = 0; s < nshards; ++s)
            if (!groups[s].empty())
                accepted += queues_[s]->push(groups[s]);
    }
    if (accepted < ops.size())
        queuedOps_.fetch_sub(ops.size() - accepted,
                             std::memory_order_relaxed);
    if (accepted > 0 && queuedOps_.load(std::memory_order_relaxed) >=
                            effectiveMinDrainOps()) {
        std::lock_guard<std::mutex> lk(m_);
        drainCv_.notify_one();
    }
    return accepted;
}

bool
IngestService::submit(const core::BatchOp &op)
{
    return submit(std::span<const core::BatchOp>(&op, 1)) == 1;
}

uint64_t
IngestService::flush()
{
    std::lock_guard<std::mutex> lk(m_);
    // Nothing queued and no epoch in flight: already satisfied.
    if (stop_ || (cutEpoch_ == appliedEpoch_ &&
                  queuedOps_.load(std::memory_order_relaxed) == 0))
        return appliedEpoch_;
    const uint64_t token = cutEpoch_ + 1;
    flushTarget_ = std::max(flushTarget_, token);
    drainCv_.notify_one();
    return token;
}

void
IngestService::wait(uint64_t token)
{
    std::unique_lock<std::mutex> lk(m_);
    C2M_ASSERT(token <= std::max(flushTarget_, appliedEpoch_),
               "epoch token ", token, " was never issued");
    epochCv_.wait(lk, [&] { return appliedEpoch_ >= token; });
}

uint64_t
IngestService::flushAndWait()
{
    const uint64_t token = flush();
    wait(token);
    return token;
}

uint64_t
IngestService::forceEpoch()
{
    std::lock_guard<std::mutex> lk(m_);
    if (stop_)
        return appliedEpoch_;
    const uint64_t token = cutEpoch_ + 1;
    flushTarget_ = std::max(flushTarget_, token);
    drainCv_.notify_one();
    return token;
}

IngestService::Snapshot
IngestService::snapshot(unsigned group)
{
    wait(flush());
    // Holding engineMutex_ keeps the drainer out of its execute
    // phase, so the read happens exactly at an epoch boundary (>= the
    // flush token; cuts may still proceed concurrently).
    std::lock_guard<std::mutex> ek(engineMutex_);
    uint64_t epoch;
    {
        std::lock_guard<std::mutex> lk(m_);
        epoch = appliedEpoch_;
    }
    return {epoch, engine_.readAllCounters(group)};
}

std::vector<int64_t>
IngestService::readCounters(unsigned group)
{
    return snapshot(group).counters;
}

void
IngestService::stop()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
        drainCv_.notify_one();
    }
    if (drainer_.joinable())
        drainer_.join();
    EpochObserver *observer;
    {
        // The straggler + observer shutdown turn runs exactly once;
        // a second stop() (typically the destructor's) must not call
        // back into an observer the caller may have destroyed. The
        // observer pointer is snapshotted under m_ like report()'s.
        std::lock_guard<std::mutex> lk(m_);
        if (stopFinalized_)
            return;
        stopFinalized_ = true;
        observer = observer_;
    }
    for (auto &q : queues_)
        q->close();
    // Ops that slipped in between the drainer's last epoch and
    // close() are applied inline so accepted work is never lost.
    for (unsigned s = 0; s < engine_.numShards(); ++s) {
        auto ops = queues_[s]->cut();
        if (ops.empty())
            continue;
        queuedOps_.fetch_sub(ops.size(), std::memory_order_relaxed);
        ServiceStats es;
        if (cfg_.coalesce) {
            auto r = coalesceOps(ops);
            es.coalesced = r.merged;
            ops = std::move(r.ops);
        }
        es.flushedOps = ops.size();
        std::lock_guard<std::mutex> ek(engineMutex_);
        const auto before = engine_.stats();
        engine_.runShardOps(s, ops);
        addPlanDelta(es, before, engine_.stats());
        if (observer)
            observer->onShardOps(s, ops);
        std::lock_guard<std::mutex> lk(m_);
        stats_ += es;
    }
    // Final observer turn: an attached scrubber must reconcile
    // everything it deferred (budgeted or interval-spaced sweeps),
    // stragglers included, before the engine is read post-stop.
    // Epoch labels are not advanced here — straggler application is
    // outside the epoch protocol whether or not an observer is
    // attached, and every pre-stop flush token was already satisfied
    // by the drainer before it exited.
    if (observer) {
        std::lock_guard<std::mutex> ek(engineMutex_);
        uint64_t final_epoch;
        {
            std::lock_guard<std::mutex> lk(m_);
            final_epoch = appliedEpoch_;
        }
        observer->onStop(final_epoch);
    }
}

ServiceStats
IngestService::serviceStats() const
{
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lk(m_);
        s = stats_;
    }
    for (const auto &q : queues_) {
        const auto qs = q->stats();
        s.submitted += qs.submitted;
        s.dropped += qs.dropped;
        s.stalls += qs.stalls;
    }
    s.queued = queuedOps_.load(std::memory_order_relaxed);
    return s;
}

core::EngineStats
IngestService::engineStats() const
{
    std::lock_guard<std::mutex> ek(engineMutex_);
    return engine_.stats();
}

CounterMap
IngestService::report() const
{
    CounterMap merged = serviceStats().toCounters();
    mergeCounters(merged, engineStats().toCounters());
    const auto lat = drainLatency();
    merged["service.drain_p50_us"] = lat.p50;
    merged["service.drain_p95_us"] = lat.p95;
    merged["service.drain_p99_us"] = lat.p99;
    merged["service.drain_max_us"] = lat.max;
    EpochObserver *observer;
    {
        // Snapshot under m_: attachObserver() writes under the same
        // lock, so a detach racing this report is ordered.
        std::lock_guard<std::mutex> lk(m_);
        observer = observer_;
    }
    if (observer)
        mergeCounters(merged, observer->counters());
    return merged;
}

void
IngestService::kick()
{
    std::lock_guard<std::mutex> lk(m_);
    forceDrain_ = true;
    drainCv_.notify_one();
}

void
IngestService::drainerLoop()
{
    for (;;) {
        uint64_t epoch;
        {
            std::unique_lock<std::mutex> lk(m_);
            drainCv_.wait(lk, [&] {
                return stop_ || forceDrain_ ||
                       flushTarget_ > cutEpoch_ ||
                       queuedOps_.load(std::memory_order_relaxed) >=
                           effectiveMinDrainOps();
            });
            const bool work_left =
                flushTarget_ > cutEpoch_ ||
                queuedOps_.load(std::memory_order_relaxed) > 0;
            if (stop_ && !work_left)
                break;
            forceDrain_ = false;
            epoch = ++cutEpoch_;
        }
        runEpoch(epoch);
    }
}

size_t
IngestService::runEpoch(uint64_t epoch)
{
    obs::ScopedSpan epoch_span("epoch", obs::kServiceTrack);
    std::vector<Bucket> buckets;
    size_t cut_total = 0;
    {
        obs::ScopedSpan cut_span("epoch.cut", obs::kServiceTrack);
        for (unsigned s = 0; s < engine_.numShards(); ++s) {
            auto ops = queues_[s]->cut();
            if (ops.empty())
                continue;
            cut_total += ops.size();
            buckets.push_back({s, std::move(ops)});
        }
        queuedOps_.fetch_sub(cut_total, std::memory_order_relaxed);
    }
    if (auto *tr = obs::tracer())
        tr->counter("service.queued", obs::kServiceTrack,
                    queuedOps_.load(std::memory_order_relaxed));

    ServiceStats es;
    es.epochs = 1;
    if (cfg_.coalesce) {
        obs::ScopedSpan co_span("epoch.coalesce", obs::kServiceTrack);
        // Per-shard write-combining tables persist across epochs, so
        // the steady-state coalesce pass allocates only the output
        // vector it hands to the bucket.
        CoalesceResult r;
        for (auto &b : buckets) {
            coalesceOps(b.ops, coalesceScratch_[b.shard], r);
            es.coalesced += r.merged;
            b.ops = std::move(r.ops);
        }
    }
    for (const auto &b : buckets)
        es.flushedOps += b.ops.size();

    const auto t0 = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> ek(engineMutex_);
        const auto before = engine_.stats();
        {
            obs::ScopedSpan x_span("epoch.execute", obs::kServiceTrack,
                                   before.fabric.fabricNs);
            executeEpoch(epoch, buckets, es);
            if (x_span.active())
                x_span.setFabricEnd(engine_.stats().fabric.fabricNs);
        }
        const auto after = engine_.stats();
        addPlanDelta(es, before, after);
        if (auto *tr = obs::tracer()) {
            // Program-cache hit/miss bursts, sampled per epoch: the
            // counter track's slope shows cache-busting epochs.
            tr->counter("progcache.hits", obs::kServiceTrack,
                        after.programCacheHits);
            tr->counter("progcache.misses", obs::kServiceTrack,
                        after.programCacheMisses);
        }
        if (observer_) {
            // Observer hooks run before the epoch is marked applied,
            // so a scrub at the boundary is visible to every snapshot
            // waiting on this epoch.
            obs::ScopedSpan ob_span("epoch.observer",
                                    obs::kServiceTrack);
            for (const auto &b : buckets)
                observer_->onShardOps(b.shard, b.ops);
            observer_->onEpochApplied(epoch);
        }
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        // Applied-marking happens inside engineMutex_ so a snapshot
        // taken between epochs sees an epoch label matching the
        // counters it reads.
        std::lock_guard<std::mutex> lk(m_);
        appliedEpoch_ = epoch;
        stats_ += es;
        if (cfg_.targetEpochFabricNs > 0.0 && es.flushedOps > 0 &&
            es.fabricNs > 0.0) {
            // Fabric-time epoch sizing: fold this epoch's modeled
            // per-op cost into the EWMA and retarget the coalescing
            // window so the next epoch drains ~targetEpochFabricNs
            // of fabric time. Capped at one queue's capacity so the
            // window can always fill without producer stalls forcing
            // the cut.
            const double op_ns =
                es.fabricNs / static_cast<double>(es.flushedOps);
            ewmaOpNs_ = ewmaOpNs_ > 0.0
                            ? 0.75 * ewmaOpNs_ + 0.25 * op_ns
                            : op_ns;
            double window = cfg_.targetEpochFabricNs / ewmaOpNs_;
            if (window < 1.0)
                window = 1.0;
            const double cap =
                static_cast<double>(cfg_.queueCapacity);
            if (window > cap)
                window = cap;
            dynamicMinDrainOps_.store(
                static_cast<size_t>(window),
                std::memory_order_relaxed);
        }
        recordDrainLatency(static_cast<uint64_t>(us));
        epochCv_.notify_all();
    }
    return cut_total;
}

void
IngestService::recordDrainLatency(uint64_t us)
{
    drainHist_.record(us);
}

DrainLatency
IngestService::drainLatency() const
{
    DrainLatency out;
    out.samples = drainHist_.count();
    if (out.samples == 0)
        return out;
    out.p50 = drainHist_.percentile(0.50);
    out.p95 = drainHist_.percentile(0.95);
    out.p99 = drainHist_.percentile(0.99);
    out.max = drainHist_.max();
    return out;
}

void
IngestService::executeEpoch(uint64_t epoch,
                            std::vector<Bucket> &buckets,
                            ServiceStats &epoch_stats)
{
    for (const auto &b : buckets) {
        // The stealing contract: whole ready buckets only, applied in
        // strictly increasing epoch order per shard.
        C2M_ASSERT(lastShardEpoch_[b.shard] < epoch,
                   "bucket reorder on shard ", b.shard);
        lastShardEpoch_[b.shard] = epoch;
    }
    // One call per epoch into the engine's hierarchical drain
    // pipeline: per-shard combine/count stages run on the lane pool
    // (pinned or stolen per cfg_.workStealing), the merged
    // scan/offset plan is priced globally, and cross-shard plane
    // programs gang-issue instead of replicating per shard.
    std::vector<core::ShardedEngine::EpochBucket> eb;
    eb.reserve(buckets.size());
    for (const auto &b : buckets)
        eb.push_back({b.shard, b.ops});
    uint64_t steals = 0;
    engine_.runEpoch(eb, cfg_.workStealing, &steals);
    epoch_stats.steals += steals;
}

size_t
submitConcurrent(IngestService &service,
                 std::span<const core::BatchOp> ops,
                 unsigned num_producers)
{
    const unsigned n = std::max(1u, num_producers);
    if (n == 1 || ops.size() < n)
        return service.submit(ops);
    std::atomic<size_t> accepted{0};
    std::vector<std::thread> producers;
    producers.reserve(n);
    const size_t per = (ops.size() + n - 1) / n;
    for (unsigned p = 0; p < n; ++p) {
        const size_t lo = p * per;
        const size_t hi = std::min(ops.size(), lo + per);
        if (lo >= hi)
            break;
        producers.emplace_back([&, lo, hi] {
            accepted.fetch_add(
                service.submit(ops.subspan(lo, hi - lo)),
                std::memory_order_relaxed);
        });
    }
    for (auto &t : producers)
        t.join();
    return accepted.load(std::memory_order_relaxed);
}

} // namespace service
} // namespace c2m
