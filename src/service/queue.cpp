#include "service/queue.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace c2m {
namespace service {

BoundedOpQueue::BoundedOpQueue(size_t capacity, Backpressure policy,
                               std::function<void()> kick,
                               uint32_t shard)
    : capacity_(capacity), policy_(policy), kick_(std::move(kick)),
      shard_(shard)
{
    C2M_ASSERT(capacity_ >= 1, "queue capacity must be >= 1");
}

size_t
BoundedOpQueue::push(std::span<const core::BatchOp> ops)
{
    size_t accepted = 0;
    std::unique_lock<std::mutex> lk(m_);
    while (accepted < ops.size()) {
        if (closed_) {
            stats_.dropped += ops.size() - accepted;
            break;
        }
        // Chunks never exceed the capacity, so a blocked producer is
        // always satisfiable by one cut.
        const size_t chunk =
            std::min(ops.size() - accepted, capacity_);
        if (pending_.size() + chunk > capacity_) {
            kick_();
            if (policy_ == Backpressure::Drop) {
                if (auto *tr = obs::tracer())
                    tr->instant("queue.drop", shard_,
                                ops.size() - accepted);
                stats_.dropped += ops.size() - accepted;
                break;
            }
            ++stats_.stalls;
            {
                // The stall span shows exactly how long this producer
                // sat behind the drainer on this shard's queue.
                obs::ScopedSpan stall("queue.stall", shard_);
                notFull_.wait(lk, [&] {
                    return closed_ ||
                           pending_.size() + chunk <= capacity_;
                });
            }
            continue;
        }
        pending_.insert(pending_.end(), ops.begin() + accepted,
                        ops.begin() + (accepted + chunk));
        accepted += chunk;
        stats_.submitted += chunk;
    }
    return accepted;
}

std::vector<core::BatchOp>
BoundedOpQueue::cut()
{
    std::vector<core::BatchOp> out;
    std::lock_guard<std::mutex> lk(m_);
    out.swap(pending_);
    notFull_.notify_all();
    return out;
}

void
BoundedOpQueue::close()
{
    std::lock_guard<std::mutex> lk(m_);
    closed_ = true;
    notFull_.notify_all();
}

BoundedOpQueue::Stats
BoundedOpQueue::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

size_t
BoundedOpQueue::sizeApprox() const
{
    std::lock_guard<std::mutex> lk(m_);
    return pending_.size();
}

} // namespace service
} // namespace c2m
