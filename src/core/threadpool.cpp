#include "core/threadpool.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace core {

namespace {

/** Pool/lane identity of the calling thread (workers only). */
thread_local const ThreadPool *tlPool = nullptr;
thread_local unsigned tlLane = ThreadPool::kNoLane;

} // namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    lanes_.reserve(num_threads);
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        lanes_.push_back(std::make_unique<Lane>());
    for (unsigned i = 0; i < num_threads; ++i)
        workers_.emplace_back(
            [this, i] { workerLoop(i, *lanes_[i]); });
}

ThreadPool::~ThreadPool()
{
    stop_ = true;
    for (auto &lane : lanes_) {
        std::lock_guard<std::mutex> lk(lane->m);
        lane->cv.notify_all();
    }
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::post(unsigned lane, std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lk(doneMutex_);
        ++pending_;
    }
    if (workers_.empty()) {
        runTask(fn);
        finishTask();
        return;
    }
    Lane &l = *lanes_[lane % lanes_.size()];
    std::lock_guard<std::mutex> lk(l.m);
    l.q.push_back(std::move(fn));
    l.cv.notify_one();
}

unsigned
ThreadPool::currentLane() const
{
    return tlPool == this ? tlLane : kNoLane;
}

void
ThreadPool::drain()
{
    C2M_ASSERT(tlPool != this,
               "drain() from worker lane ", tlLane,
               " would wait for itself");
    std::unique_lock<std::mutex> lk(doneMutex_);
    doneCv_.wait(lk, [this] { return pending_ == 0; });
    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop(unsigned index, Lane &lane)
{
    tlPool = this;
    tlLane = index;
    for (;;) {
        std::function<void()> fn;
        {
            std::unique_lock<std::mutex> lk(lane.m);
            lane.cv.wait(
                lk, [&] { return stop_ || !lane.q.empty(); });
            if (lane.q.empty())
                return; // stopped and no work left
            fn = std::move(lane.q.front());
            lane.q.pop_front();
        }
        runTask(fn);
        finishTask();
    }
}

void
ThreadPool::runTask(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (...) {
        std::lock_guard<std::mutex> lk(doneMutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
ThreadPool::finishTask()
{
    std::lock_guard<std::mutex> lk(doneMutex_);
    C2M_ASSERT(pending_ > 0, "task finished with none pending");
    if (--pending_ == 0)
        doneCv_.notify_all();
}

} // namespace core
} // namespace c2m
