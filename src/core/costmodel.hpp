#ifndef C2M_CORE_COSTMODEL_HPP
#define C2M_CORE_COSTMODEL_HPP

/**
 * @file
 * Analytic command-count models (Fig. 8, Fig. 14-16, Fig. 18).
 *
 * The functional engines are bit-accurate but too slow for
 * LLaMA-scale shapes; these models count the AAP/AP commands the
 * code generators would emit for an input stream -- exactly (the
 * per-increment costs are measured by generating the muPrograms, and
 * the IARM ripple schedule is simulated host-side), without touching
 * the bit-level state.
 */

#include <cstdint>
#include <vector>

#include "core/engine.hpp"

namespace c2m {
namespace core {

class C2mCostModel
{
  public:
    C2mCostModel(unsigned radix, unsigned capacity_bits,
                 bool protect = false, unsigned fr_checks = 1,
                 CountMode counting = CountMode::Kary,
                 RippleMode ripple = RippleMode::Iarm);

    unsigned radix() const { return radix_; }
    unsigned numDigits() const { return numDigits_; }

    /** AAP/AP commands of one masked k-ary increment (measured). */
    uint64_t incrementOps(unsigned k) const;

    /** AAP/AP commands of one carry ripple (measured). */
    uint64_t rippleOps() const { return rippleOps_; }

    struct StreamCost
    {
        uint64_t aaps = 0;
        uint64_t increments = 0;
        uint64_t ripples = 0;
    };

    /**
     * Commands to accumulate @p values into one counter group
     * (broadcast; masks are stationary). Simulates the IARM/full
     * rippling schedule host-side.
     */
    StreamCost accumulateStream(
        const std::vector<uint64_t> &values) const;

    /** Average commands per input for uniform @p bits-bit inputs. */
    double avgOpsPerInput(unsigned bits, size_t samples = 4096,
                          uint64_t seed = 9) const;

    /** Commands of one counter-vector addition (Alg. 2). */
    uint64_t counterAddOps() const;

  private:
    unsigned radix_;
    unsigned bits_;
    unsigned numDigits_;
    CountMode counting_;
    RippleMode ripple_;
    std::vector<uint64_t> opsByK_; ///< measured per k in [1, radix)
    uint64_t rippleOps_ = 0;
};

/** RCA (SIMDRAM) accumulate cost: full W-bit ripple per input. */
class RcaCostModel
{
  public:
    explicit RcaCostModel(unsigned width, bool protect = false);

    unsigned width() const { return width_; }

    /** Commands per masked accumulation (measured). */
    uint64_t accumulateOps() const { return accumulateOps_; }

  private:
    unsigned width_;
    uint64_t accumulateOps_;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_COSTMODEL_HPP
