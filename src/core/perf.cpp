#include "core/perf.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "ecc/analysis.hpp"
#include "jc/johnson.hpp"

namespace c2m {
namespace core {

DramPerfModel::DramPerfModel(dram::DramTimings t, dram::EnergyModel e,
                             dram::DramGeometry g)
    : timings_(t), energy_(e), geometry_(g)
{
}

PerfResult
DramPerfModel::evaluate(uint64_t aaps, uint64_t row_accesses,
                        unsigned banks, double useful_ops) const
{
    PerfResult r;
    r.aaps = aaps;
    r.rowAccesses = row_accesses;

    const double stream_ns =
        dram::AapScheduler::streamTimeNs(timings_, aaps, banks);
    const double row_ns =
        static_cast<double>(row_accesses) *
        timings_.rowAccessNs(geometry_.rankRowBytes());
    const double time_ns = stream_ns + row_ns;
    if (time_ns <= 0.0)
        return r;

    const double energy_nj =
        static_cast<double>(aaps) * energy_.aapEnergyNj() +
        static_cast<double>(row_accesses) *
            energy_.rowAccessEnergyNj(geometry_.rankRowBytes()) +
        energy_.staticPowerW() * time_ns;

    r.timeMs = time_ns * 1e-6;
    r.energyMj = energy_nj * 1e-6;
    r.avgPowerW = energy_nj / time_ns;
    r.gops = useful_ops / time_ns; // ops per ns == GOPS
    r.gopsPerWatt = r.gops / r.avgPowerW;
    r.gopsPerMm2 = r.gops / energy_.rankAreaMm2();
    return r;
}

namespace {

std::vector<uint64_t>
sampleInputs(const TensorWorkload &w)
{
    Rng rng(w.seed);
    std::vector<uint64_t> values(w.K);
    const uint64_t bound = 1ULL << w.xBits;
    for (auto &v : values) {
        if (w.sparsity > 0.0 && rng.nextBool(w.sparsity))
            v = 0;
        else
            v = 1 + rng.nextBounded(bound - 1);
    }
    return values;
}

} // namespace

PerfResult
c2mWorkloadPerf(const TensorWorkload &w, const C2mDesign &design,
                const DramPerfModel &model)
{
    const C2mCostModel cm(design.radix, design.capacityBits,
                          design.protect, design.frChecks,
                          design.counting, design.ripple);

    const auto values = sampleInputs(w);
    const auto stream = cm.accumulateStream(values);
    const double plane_factor = w.ternary ? 2.0 : 1.0;

    const auto &geom = model.geometry();
    const uint64_t groups =
        (w.N + geom.colsPerRankRow() - 1) / geom.colsPerRankRow();

    double aaps = static_cast<double>(stream.aaps) * plane_factor *
                  static_cast<double>(groups) *
                  static_cast<double>(w.M);

    // Counter readout + re-initialization per output row per group.
    const unsigned n = jc::bitsForRadix(design.radix);
    const uint64_t counter_rows = cm.numDigits() * (n + 1) + 1;
    uint64_t row_accesses = 2ULL * counter_rows * groups * w.M;

    // GEMV splits K across banks and reduces with JC vector adds.
    if (w.M == 1 && design.banks > 1) {
        aaps += static_cast<double>(design.banks - 1) *
                static_cast<double>(cm.counterAddOps()) *
                static_cast<double>(groups) * plane_factor;
        row_accesses +=
            2ULL * (design.banks - 1) * counter_rows * groups;
    }

    // Detected-fault re-execution overhead of the protected scheme
    // (Sec. 7.3.2: row-granular retries).
    if (design.protect) {
        aaps *= ecc::ProtectionModel::expectedRetriesPerRow(
            design.faultRate, 2 * design.frChecks, 512);
    }

    const double useful = 2.0 * static_cast<double>(w.M) *
                          static_cast<double>(w.N) *
                          static_cast<double>(w.K);
    return model.evaluate(static_cast<uint64_t>(aaps), row_accesses,
                          design.banks, useful);
}

PerfResult
simdramWorkloadPerf(const TensorWorkload &w,
                    const SimdramDesign &design,
                    const DramPerfModel &model)
{
    const RcaCostModel rm(design.accBits);
    const double plane_factor = w.ternary ? 2.0 : 1.0;

    const auto &geom = model.geometry();
    const uint64_t groups =
        (w.N + geom.colsPerRankRow() - 1) / geom.colsPerRankRow();

    // RCA cannot skip zero inputs: all K elements ripple fully.
    double aaps = static_cast<double>(w.K) *
                  static_cast<double>(rm.accumulateOps()) *
                  plane_factor * static_cast<double>(groups) *
                  static_cast<double>(w.M);

    const uint64_t acc_rows = design.accBits + 2;
    uint64_t row_accesses = 2ULL * acc_rows * groups * w.M;

    if (w.M == 1 && design.banks > 1) {
        aaps += static_cast<double>(design.banks - 1) *
                static_cast<double>(rm.accumulateOps()) *
                static_cast<double>(groups) * plane_factor;
        row_accesses += 2ULL * (design.banks - 1) * acc_rows * groups;
    }

    const double useful = 2.0 * static_cast<double>(w.M) *
                          static_cast<double>(w.N) *
                          static_cast<double>(w.K);
    return model.evaluate(static_cast<uint64_t>(aaps), row_accesses,
                          design.banks, useful);
}

} // namespace core
} // namespace c2m
