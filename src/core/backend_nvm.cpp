#include "core/backend_nvm.hpp"

#include "common/logging.hpp"
#include "core/backend_jc.hpp"

namespace c2m {
namespace core {

using uprog::ProgramKey;

namespace {

cim::NvmTech
techOf(BackendKind kind)
{
    C2M_ASSERT(kind == BackendKind::NvmPinatubo ||
                   kind == BackendKind::NvmMagic,
               "not an NVM backend kind");
    return kind == BackendKind::NvmPinatubo ? cim::NvmTech::Pinatubo
                                            : cim::NvmTech::Magic;
}

} // namespace

NvmBackend::NvmBackend(const EngineConfig &cfg,
                       unsigned physical_groups, EngineStats &stats)
    : CountingBackend(stats),
      numCounters_(cfg.numCounters),
      tech_(techOf(cfg.backend)),
      layouts_(buildJcLayouts(cfg.radix, cfg.capacityBits,
                              physical_groups)),
      maskBase_(layouts_.back().endRow()),
      mach_(maskBase_ + cfg.maxMaskRows, cfg.numCounters, tech_,
            cim::FaultModel::cimRate(cfg.faultRate), cfg.seed),
      cache_(cfg.programCache, stats.programCacheHits,
             stats.programCacheMisses)
{
    caps_.signedCounting = true;
    caps_.pendingFlags = true;
    caps_.rowScrub = true;

    mach_.setCosts(cfg.nvmCost.commandCosts());

    for (const auto &l : layouts_)
        codegen_.emplace_back(l, tech_);
}

const BitVector &
NvmBackend::scrubReadRow(unsigned row)
{
    return mach_.hostReadRow(row);
}

void
NvmBackend::scrubWriteRow(unsigned row, const BitVector &v)
{
    mach_.writeRow(row, v);
}

unsigned
NvmBackend::maskRow(unsigned handle) const
{
    return maskBase_ + handle;
}

void
NvmBackend::writeMask(unsigned handle, const BitVector &row)
{
    mach_.writeRow(maskRow(handle), row);
}

void
NvmBackend::karyIncrement(unsigned phys, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    const ProgramKey key{ProgramKey::Op::Increment, phys,
                         static_cast<uint16_t>(digit),
                         static_cast<uint16_t>(k), mask_row};
    mach_.run(cache_.get(key, [&] {
        return codegen_[phys].karyIncrement(digit, k, mask_row);
    }));
}

void
NvmBackend::karyDecrement(unsigned phys, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    const ProgramKey key{ProgramKey::Op::Decrement, phys,
                         static_cast<uint16_t>(digit),
                         static_cast<uint16_t>(k), mask_row};
    mach_.run(cache_.get(key, [&] {
        return codegen_[phys].karyDecrement(digit, k, mask_row);
    }));
}

void
NvmBackend::carryRipple(unsigned phys, unsigned digit)
{
    const ProgramKey key{ProgramKey::Op::CarryRipple, phys,
                         static_cast<uint16_t>(digit), 0, 0};
    mach_.run(cache_.get(
        key, [&] { return codegen_[phys].carryRipple(digit); }));
}

void
NvmBackend::borrowRipple(unsigned phys, unsigned digit)
{
    const ProgramKey key{ProgramKey::Op::BorrowRipple, phys,
                         static_cast<uint16_t>(digit), 0, 0};
    mach_.run(cache_.get(
        key, [&] { return codegen_[phys].borrowRipple(digit); }));
}

bool
NvmBackend::anyPending(unsigned phys, unsigned digit)
{
    return mach_.row(layouts_[phys].onextRow(digit)).popcount() != 0;
}

void
NvmBackend::foldTopBorrowIntoSign(unsigned phys)
{
    mach_.run(codegen_[phys].foldTopBorrowIntoSign());
}

std::vector<int64_t>
NvmBackend::readCounters(unsigned phys)
{
    return decodeJcCounters(layouts_[phys], numCounters_, stats_,
                            [&](unsigned row) -> const BitVector & {
                                return mach_.row(row);
                            });
}

std::vector<unsigned>
NvmBackend::readDigit(unsigned phys, unsigned digit)
{
    return decodeJcDigit(layouts_[phys], digit, numCounters_, stats_,
                         [&](unsigned row) -> const BitVector & {
                             return mach_.row(row);
                         });
}

void
NvmBackend::clearCounters()
{
    for (unsigned p = 0; p < layouts_.size(); ++p)
        mach_.run(codegen_[p].clearCounters());
}

const jc::CounterLayout &
NvmBackend::layout(unsigned phys) const
{
    return layouts_[phys];
}

} // namespace core
} // namespace c2m
