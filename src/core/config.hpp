#ifndef C2M_CORE_CONFIG_HPP
#define C2M_CORE_CONFIG_HPP

/**
 * @file
 * Engine-level configuration and statistics shared by C2MEngine, the
 * counting backends and the sharded engine.
 *
 * The counting substrate is selected by EngineConfig::backend: the
 * same host-side engine (digit unpacking, IARM scheduling, dual-rail
 * groups) drives an Ambit DRAM subarray, a Pinatubo/MAGIC NVM
 * machine, or the SIMDRAM-style ripple-carry baseline through one
 * core::CountingBackend interface (Sec. 4.6, Sec. 7).
 */

#include <cstddef>
#include <cstdint>

#include "cim/cost.hpp"
#include "cim/fault.hpp"
#include "common/stats.hpp"
#include "dram/energy.hpp"
#include "dram/timing.hpp"

namespace c2m {
namespace core {

enum class Protection : uint8_t
{
    None, ///< raw CIM
    Ecc,  ///< XOR-embedded FR checks with retry (Sec. 6)
    Tmr,  ///< triple modular redundancy with majority vote
};

enum class RippleMode : uint8_t
{
    Iarm,       ///< input-aware rippling minimization (Sec. 4.5.2)
    FullRipple, ///< full carry propagation after every input
};

enum class CountMode : uint8_t
{
    Kary, ///< one increment per non-zero digit (Sec. 4.5.1)
    Unit, ///< d unit increments per digit value d (Sec. 4.4)
};

/** Counting substrate driven through core::CountingBackend. */
enum class BackendKind : uint8_t
{
    Ambit,       ///< DRAM triple-row-activation fabric (Sec. 4)
    NvmPinatubo, ///< non-stateful NVM bulk-bitwise logic (Fig. 10a)
    NvmMagic,    ///< stateful NOR-only memristor logic (Fig. 10b)
    Rca,         ///< SIMDRAM-style W-bit ripple-carry adder (Sec. 3)
};

/** Human-readable backend name ("ambit", "nvm-pinatubo", ...). */
const char *backendName(BackendKind kind);

struct EngineConfig
{
    unsigned radix = 4;
    unsigned capacityBits = 32;
    size_t numCounters = 256;
    unsigned numGroups = 1;
    unsigned maxMaskRows = 64;
    Protection protection = Protection::None;
    unsigned frChecks = 1;   ///< FR computations per masking step
    unsigned maxRetries = 4; ///< re-executions before giving up
    RippleMode ripple = RippleMode::Iarm;
    CountMode counting = CountMode::Kary;
    double faultRate = 0.0;  ///< per-bit MAJ3 fault probability
    uint64_t seed = 1;
    BackendKind backend = BackendKind::Ambit;
    /**
     * Cache generated muPrograms per (op, digit, k, mask row) and
     * replay them, removing the fixed codegen cost from the batch hot
     * path. Replayed programs are bit-identical to regeneration.
     */
    bool programCache = true;
    /**
     * Column-parallel drain planning for batched point updates
     * (ShardedEngine/IngestService): decompose each counter's epoch
     * delta into radix digits and issue ONE masked k-ary increment
     * per populated (digit, k) plane, bounding fabric programs per
     * bucket at O(D*(R-1)) per group instead of O(ops). Final counter
     * values are bit-identical to per-op replay; signed-mode groups,
     * Unit counting and buckets the plan cannot beat fall back to the
     * per-op path automatically.
     */
    bool drainPlanner = true;
    /**
     * Fabric cost parameter sets (timing + energy). The DRAM-fabric
     * backends (Ambit, Rca) charge per-command costs derived from
     * dramTimings/dramEnergy (core/fabriccost.hpp); the NVM backends
     * charge nvmCost. Every backend reports the result through
     * opStats().fabricNs/fabricNj and EngineStats::fabric.
     */
    dram::DramTimings dramTimings = dram::DramTimings{};
    dram::EnergyModel dramEnergy = dram::EnergyModel{};
    cim::NvmCostParams nvmCost = cim::NvmCostParams{};
};

struct EngineStats
{
    uint64_t inputsAccumulated = 0;
    uint64_t increments = 0;
    uint64_t ripples = 0;
    uint64_t checksRun = 0;
    uint64_t faultsDetected = 0;
    uint64_t retries = 0;
    uint64_t uncorrectedBlocks = 0;
    uint64_t invalidStates = 0; ///< unreadable JC patterns at readout
    uint64_t voteOps = 0;
    uint64_t programCacheHits = 0;   ///< programs replayed from cache
    uint64_t programCacheMisses = 0; ///< programs generated fresh
    uint64_t plansExecuted = 0;   ///< column-parallel plans applied
    uint64_t planPrograms = 0;    ///< masked plane increments issued
    /**
     * Plane increments this engine issued as a gang leader (or
     * stand-alone). planPrograms - planLeadPrograms is the follower
     * count: planes executed in lockstep under another shard's issue
     * slot in a merged cross-shard plan.
     */
    uint64_t planLeadPrograms = 0;
    uint64_t plannedOps = 0;      ///< point updates folded into plans
    uint64_t planFallbackOps = 0; ///< ops that took the per-op path

    /**
     * Fabric-level command and fault tallies (AAP/AP commands, triple
     * activations, injected fault bits, host row accesses), copied
     * from the backend's simulator by C2MEngine::stats() so merged
     * service reports expose fault activity next to the engine-level
     * protection counters.
     */
    cim::OpStats fabric;

    /**
     * Bank-parallel critical-path fabric time: the modeled ns until
     * the last shard finishes when shards execute as banks of one
     * rank (bounded below by the tFAW/tRRD rank window,
     * DramTimings::issueIntervalNs). For a single engine this equals
     * fabric.fabricNs; ShardedEngine::stats() computes the real
     * bound. Merged by max, not sum — parallel contributors overlap.
     */
    double fabricCriticalNs = 0.0;

    /**
     * Field-wise sum, used to merge per-shard stats into one view.
     * When adding a field above, extend this too — the
     * EngineStatsMerge test pins sizeof(EngineStats) so a new field
     * cannot be silently dropped from the merge.
     */
    EngineStats &operator+=(const EngineStats &o)
    {
        inputsAccumulated += o.inputsAccumulated;
        increments += o.increments;
        ripples += o.ripples;
        checksRun += o.checksRun;
        faultsDetected += o.faultsDetected;
        retries += o.retries;
        uncorrectedBlocks += o.uncorrectedBlocks;
        invalidStates += o.invalidStates;
        voteOps += o.voteOps;
        programCacheHits += o.programCacheHits;
        programCacheMisses += o.programCacheMisses;
        plansExecuted += o.plansExecuted;
        planPrograms += o.planPrograms;
        planLeadPrograms += o.planLeadPrograms;
        plannedOps += o.plannedOps;
        planFallbackOps += o.planFallbackOps;
        fabric += o.fabric;
        if (o.fabricCriticalNs > fabricCriticalNs)
            fabricCriticalNs = o.fabricCriticalNs;
        return *this;
    }

    /**
     * Named "engine.*" counters, for merging with other subsystems'
     * statistics (mergeCounters / renderCounters). One entry per
     * field; the ToCountersCoversEveryField test pins the entry count
     * against sizeof(EngineStats).
     */
    CounterMap toCounters() const;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_CONFIG_HPP
