#include "core/config.hpp"

namespace c2m {
namespace core {

CounterMap
EngineStats::toCounters() const
{
    return {
        {"engine.inputs_accumulated", inputsAccumulated},
        {"engine.increments", increments},
        {"engine.ripples", ripples},
        {"engine.checks_run", checksRun},
        {"engine.faults_detected", faultsDetected},
        {"engine.retries", retries},
        {"engine.uncorrected_blocks", uncorrectedBlocks},
        {"engine.invalid_states", invalidStates},
        {"engine.vote_ops", voteOps},
        {"engine.program_cache_hits", programCacheHits},
        {"engine.program_cache_misses", programCacheMisses},
    };
}

} // namespace core
} // namespace c2m
