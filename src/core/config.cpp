#include "core/config.hpp"

#include <cmath>

namespace c2m {
namespace core {

CounterMap
EngineStats::toCounters() const
{
    // Cost tallies are doubles internally; the counter exchange
    // format is integral, so they round to whole ns/nJ here.
    const auto ns = [](double v) {
        return static_cast<uint64_t>(std::llround(v));
    };
    return {
        {"engine.inputs_accumulated", inputsAccumulated},
        {"engine.increments", increments},
        {"engine.ripples", ripples},
        {"engine.checks_run", checksRun},
        {"engine.faults_detected", faultsDetected},
        {"engine.retries", retries},
        {"engine.uncorrected_blocks", uncorrectedBlocks},
        {"engine.invalid_states", invalidStates},
        {"engine.vote_ops", voteOps},
        {"engine.program_cache_hits", programCacheHits},
        {"engine.program_cache_misses", programCacheMisses},
        {"engine.plans_executed", plansExecuted},
        {"engine.plan_programs", planPrograms},
        {"engine.plan_lead_programs", planLeadPrograms},
        {"engine.planned_ops", plannedOps},
        {"engine.plan_fallback_ops", planFallbackOps},
        {"engine.fabric.aap", fabric.aap},
        {"engine.fabric.ap", fabric.ap},
        {"engine.fabric.tra", fabric.tra},
        {"engine.fabric.faults_injected", fabric.faultsInjected},
        {"engine.fabric.row_reads", fabric.rowReads},
        {"engine.fabric.row_writes", fabric.rowWrites},
        {"engine.fabric.ganged", fabric.gangedCommands},
        {"engine.fabric.ns", ns(fabric.fabricNs)},
        {"engine.fabric.nj", ns(fabric.fabricNj)},
        {"engine.fabric.critical_ns", ns(fabricCriticalNs)},
        {"engine.fabric.attr.plan",
         ns(fabric.attr(cim::FabricCat::Plan))},
        {"engine.fabric.attr.fallback",
         ns(fabric.attr(cim::FabricCat::Fallback))},
        {"engine.fabric.attr.mask_write",
         ns(fabric.attr(cim::FabricCat::MaskWrite))},
        {"engine.fabric.attr.scrub",
         ns(fabric.attr(cim::FabricCat::Scrub))},
        {"engine.fabric.attr.virt_spill",
         ns(fabric.attr(cim::FabricCat::VirtSpill))},
        {"engine.fabric.attr.virt_restore",
         ns(fabric.attr(cim::FabricCat::VirtRestore))},
        {"engine.fabric.attr.virt_materialize",
         ns(fabric.attr(cim::FabricCat::VirtMaterialize))},
        {"engine.fabric.attr.plan_fanout",
         ns(fabric.attr(cim::FabricCat::PlanFanout))},
        {"engine.fabric.attr.other",
         ns(fabric.attr(cim::FabricCat::Other))},
    };
}

} // namespace core
} // namespace c2m
