#ifndef C2M_CORE_BACKEND_JC_HPP
#define C2M_CORE_BACKEND_JC_HPP

/**
 * @file
 * Shared Johnson-counter readout for row-organized backends.
 *
 * Ambit and NVM fabrics store the same JC row layout, so both decode
 * counters identically: per digit, gather the n bit rows plus Onext,
 * decode each column's JC pattern (nearest-state on faulted
 * patterns), weight by radix^digit, and subtract the modulus where
 * Osign is set. Parameterized over a row-read callable so each
 * backend plugs in its own simulator access.
 */

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "core/config.hpp"
#include "jc/johnson.hpp"
#include "jc/layout.hpp"

namespace c2m {
namespace core {

/** Chain one CounterLayout per physical group from row 0. */
inline std::vector<jc::CounterLayout>
buildJcLayouts(unsigned radix, unsigned capacity_bits,
               unsigned physical_groups)
{
    std::vector<jc::CounterLayout> layouts;
    unsigned base = 0;
    for (unsigned g = 0; g < physical_groups; ++g) {
        layouts.emplace_back(radix, capacity_bits, base);
        base = layouts.back().endRow();
    }
    return layouts;
}

/** @p read: callable unsigned row -> const BitVector &. */
template <typename ReadRow>
std::vector<int64_t>
decodeJcCounters(const jc::CounterLayout &l, size_t num_cols,
                 EngineStats &stats, ReadRow &&read)
{
    const unsigned n = l.bitsPerDigit();
    const unsigned D = l.numDigits();
    const unsigned R = l.radix();

    // Snapshot all rows once.
    std::vector<const BitVector *> bit_rows(D * n);
    std::vector<const BitVector *> onext_rows(D);
    for (unsigned dd = 0; dd < D; ++dd) {
        for (unsigned i = 0; i < n; ++i)
            bit_rows[dd * n + i] = &read(l.bitRow(dd, i));
        onext_rows[dd] = &read(l.onextRow(dd));
    }
    const BitVector &osign = read(l.osignRow());

    __int128 modulus = 1;
    for (unsigned dd = 0; dd < D; ++dd)
        modulus *= R;

    std::vector<int64_t> out(num_cols);
    for (size_t col = 0; col < num_cols; ++col) {
        __int128 value = 0;
        __int128 weight = 1;
        for (unsigned dd = 0; dd < D; ++dd) {
            uint64_t bits = 0;
            for (unsigned i = 0; i < n; ++i)
                if (bit_rows[dd * n + i]->get(col))
                    bits |= 1ULL << i;
            int v = jc::decode(n, bits);
            if (v < 0) {
                ++stats.invalidStates;
                v = static_cast<int>(jc::decodeNearest(n, bits));
            }
            __int128 digit_val = v;
            if (onext_rows[dd]->get(col))
                digit_val += R;
            value += digit_val * weight;
            weight *= R;
        }
        if (osign.get(col))
            value -= modulus;
        out[col] = static_cast<int64_t>(value);
    }
    return out;
}

/** Decode one digit per column, pending flags excluded. */
template <typename ReadRow>
std::vector<unsigned>
decodeJcDigit(const jc::CounterLayout &l, unsigned digit,
              size_t num_cols, EngineStats &stats, ReadRow &&read)
{
    const unsigned n = l.bitsPerDigit();
    std::vector<const BitVector *> rows(n);
    for (unsigned i = 0; i < n; ++i)
        rows[i] = &read(l.bitRow(digit, i));

    std::vector<unsigned> out(num_cols);
    for (size_t col = 0; col < num_cols; ++col) {
        uint64_t bits = 0;
        for (unsigned i = 0; i < n; ++i)
            if (rows[i]->get(col))
                bits |= 1ULL << i;
        int v = jc::decode(n, bits);
        if (v < 0) {
            ++stats.invalidStates;
            v = static_cast<int>(jc::decodeNearest(n, bits));
        }
        out[col] = static_cast<unsigned>(v);
    }
    return out;
}

} // namespace core
} // namespace c2m

#endif // C2M_CORE_BACKEND_JC_HPP
