#include "core/sharded.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace core {

namespace {

/** Contiguous range boundaries: remainder spread over the first shards. */
std::vector<size_t>
splitRanges(size_t total, unsigned shards)
{
    std::vector<size_t> starts(shards + 1, 0);
    const size_t base = total / shards;
    const size_t extra = total % shards;
    for (unsigned s = 0; s < shards; ++s)
        starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
    return starts;
}

} // namespace

ShardedEngine::ShardedEngine(const EngineConfig &cfg,
                             unsigned num_shards,
                             unsigned num_threads)
    : cfg_(cfg),
      starts_(splitRanges(cfg.numCounters,
                          num_shards ? num_shards : 1)),
      pool_(num_threads ? num_threads : num_shards)
{
    C2M_ASSERT(num_shards >= 1, "need at least one shard");
    C2M_ASSERT(cfg.numCounters >= num_shards,
               "fewer counters than shards");

    // Independent per-shard seeds split from the root seed.
    uint64_t seed_state = cfg.seed;
    scratch_.resize(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
        EngineConfig scfg = cfg;
        scfg.numCounters = shardWidth(s);
        scfg.seed = splitMix64(seed_state);
        // Handles kPointMask and kPlaneMask are reserved for routed
        // point updates and the drain planner's digit-plane masks.
        scfg.maxMaskRows = cfg.maxMaskRows + kReservedMasks;
        shards_.push_back(std::make_unique<C2MEngine>(scfg));
        for (unsigned h = 0; h < kReservedMasks; ++h)
            shards_.back()->addMask(
                std::vector<uint8_t>(shardWidth(s), 0));
        scratch_[s].pointMask = BitVector(shardWidth(s));
        scratch_[s].pointCol = std::numeric_limits<size_t>::max();
    }
    shardBusy_ = std::make_unique<std::atomic<bool>[]>(num_shards);
}

unsigned
ShardedEngine::shardOf(uint64_t counter) const
{
    C2M_ASSERT(counter < cfg_.numCounters,
               "counter index out of range: ", counter);
    // Ranges differ by at most one column; start from the uniform
    // guess and walk at most one step each way.
    const size_t n = numShards();
    size_t s = static_cast<size_t>(counter) * n / cfg_.numCounters;
    while (counter < starts_[s])
        --s;
    while (counter >= starts_[s + 1])
        ++s;
    return static_cast<unsigned>(s);
}

unsigned
ShardedEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows,
               "mask rows exhausted; raise maxMaskRows");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
ShardedEngine::setMask(unsigned handle,
                       const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        std::vector<uint8_t> slice(shardWidth(s), 0);
        const size_t lo = starts_[s];
        for (size_t c = 0; c < slice.size() && lo + c < mask.size();
             ++c)
            slice[c] = mask[lo + c];
        // Shard handles 0..kReservedMasks-1 are internal (point and
        // plane masks), so logical handle h lives at shard handle
        // h + kReservedMasks.
        if (handle + kReservedMasks < eng.numMasks())
            eng.setMask(handle + kReservedMasks, slice);
        else
            eng.addMask(slice);
    });
}

void
ShardedEngine::runShardOps(unsigned s, std::span<const BatchOp> ops)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    for (const auto &op : ops)
        C2M_ASSERT(op.counter >= starts_[s] &&
                       op.counter < starts_[s + 1],
                   "counter ", op.counter, " not owned by shard ", s);
    // Whole-bucket stealing keeps shards single-writer; two threads
    // inside one shard means a scheduler bug above this layer.
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    runShardBatch(s, ops);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardTask(
    unsigned s, const std::function<void(C2MEngine &, size_t)> &fn)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    fn(*shards_[s], starts_[s]);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardBatch(unsigned s, std::span<const BatchOp> ops)
{
    if (ops.empty())
        return;
    if (!cfg_.drainPlanner) {
        runShardSerial(s, ops);
        return;
    }
    if (cfg_.counting != CountMode::Kary) {
        // Unit counting has no k-ary planes; with the planner on
        // these ops still count as fallback so the accounting
        // invariant plannedOps + planFallbackOps == batched ops
        // holds for metric consumers.
        shards_[s]->notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }
    // Common case first: the whole bucket targets one group.
    bool single_group = true;
    for (const auto &op : ops)
        if (op.group != ops.front().group) {
            single_group = false;
            break;
        }
    if (single_group) {
        runGroupPlanned(s, ops.front().group, ops);
        return;
    }
    // Partition by group (first-appearance order, per-group op order
    // preserved); groups hold independent counter state, so planning
    // them one after another cannot change any value.
    auto &sc = scratch_[s];
    for (auto &part : sc.parts)
        part.second.clear();
    size_t used = 0;
    for (const auto &op : ops) {
        size_t p = 0;
        while (p < used && sc.parts[p].first != op.group)
            ++p;
        if (p == used) {
            if (p == sc.parts.size())
                sc.parts.emplace_back();
            sc.parts[p].first = op.group;
            ++used;
        }
        sc.parts[p].second.push_back(op);
    }
    for (size_t p = 0; p < used; ++p)
        runGroupPlanned(s, sc.parts[p].first, sc.parts[p].second);
}

void
ShardedEngine::runShardSerial(unsigned s,
                              std::span<const BatchOp> ops)
{
    C2MEngine &eng = *shards_[s];
    auto &sc = scratch_[s];
    const size_t lo = starts_[s];
    for (const auto &op : ops) {
        const size_t col = static_cast<size_t>(op.counter) - lo;
        if (sc.pointCol != col) {
            // Two-bit in-place update of the reusable point mask: no
            // byte-vector rebuild, no allocation on a column change.
            if (sc.pointCol != std::numeric_limits<size_t>::max())
                sc.pointMask.set(sc.pointCol, false);
            sc.pointMask.set(col, true);
            eng.setMask(kPointMask, sc.pointMask);
            sc.pointCol = col;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value),
                           kPointMask, op.group);
        else
            eng.accumulateSigned(op.value, kPointMask, op.group);
    }
}

void
ShardedEngine::runGroupPlanned(unsigned s, uint32_t group,
                               std::span<const BatchOp> ops)
{
    C2MEngine &eng = *shards_[s];
    auto &sc = scratch_[s];
    // Signed-mode groups keep pending flags fully resolved per op;
    // a plan would defer them, so those buckets replay per-op.
    if (eng.signedMode(group)) {
        eng.notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }

    // Sum each counter's delta (first-occurrence order). A negative
    // op means serial replay could enter signed mode mid-bucket —
    // fall back so the op-for-op state machine stays bit-identical.
    sc.index.clear();
    sc.sums.clear();
    const size_t lo = starts_[s];
    bool negative = false;
    for (const auto &op : ops) {
        if (op.value < 0) {
            negative = true;
            break;
        }
        const uint64_t col = op.counter - lo;
        const auto [it, inserted] =
            sc.index.try_emplace(col, sc.sums.size());
        if (inserted)
            sc.sums.emplace_back(static_cast<size_t>(col), op.value);
        else
            sc.sums[it->second].second += op.value;
    }
    if (negative) {
        eng.notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }

    // Build the digit planes: counter col joins plane (d, k) iff its
    // summed delta has digit k at position d. The top digit is the
    // guard per-value increments never touch (only ripples carry
    // into it), so a summed delta reaching it cannot be planned —
    // replay the raw ops instead, which stay per-value in range.
    const unsigned R = cfg_.radix;
    const unsigned D = eng.backend().numDigits();
    if (sc.planes.empty()) {
        sc.planes.assign(static_cast<size_t>(D) * (R - 1),
                         BitVector(shardWidth(s)));
        sc.planeUsed.assign(sc.planes.size(), 0);
    }
    sc.touched.clear();
    bool over_capacity = false;
    for (const auto &[col, delta] : sc.sums) {
        uint64_t v = static_cast<uint64_t>(delta);
        unsigned pos = 0;
        while (v != 0) {
            const unsigned k = static_cast<unsigned>(v % R);
            v /= R;
            if (k != 0) {
                if (pos + 1 >= D) {
                    over_capacity = true;
                    break;
                }
                const size_t idx =
                    static_cast<size_t>(pos) * (R - 1) + (k - 1);
                if (!sc.planeUsed[idx]) {
                    sc.planeUsed[idx] = 1;
                    sc.planes[idx].fill(false);
                    sc.touched.push_back(static_cast<uint32_t>(idx));
                }
                sc.planes[idx].set(col, true);
            }
            ++pos;
        }
        if (over_capacity)
            break;
    }
    for (const uint32_t idx : sc.touched)
        sc.planeUsed[idx] = 0;

    // The fallback replays the RAW ops, so the plan competes against
    // their per-op digit cost (one program per nonzero digit of each
    // original value), not against the cost of the sums: a hot key
    // hit N times costs ~N programs per-op but shares one plane set
    // once summed. Plan unless the planes cannot beat that (single
    // ops, all-distinct tiny deltas).
    uint64_t raw_programs = 0;
    for (const auto &op : ops)
        for (uint64_t v = static_cast<uint64_t>(op.value); v != 0;
             v /= R)
            raw_programs += (v % R) != 0;
    if (over_capacity || sc.touched.size() >= raw_programs) {
        eng.notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }

    // Deterministic plane order: ascending (digit, k).
    std::sort(sc.touched.begin(), sc.touched.end());
    sc.steps.clear();
    for (const uint32_t idx : sc.touched)
        sc.steps.push_back({static_cast<unsigned>(idx / (R - 1)),
                            static_cast<unsigned>(idx % (R - 1)) + 1,
                            &sc.planes[idx]});
    eng.accumulatePlan(sc.steps, kPlaneMask, group, ops.size());
}

void
ShardedEngine::accumulateBatch(std::span<const BatchOp> ops)
{
    std::vector<std::vector<BatchOp>> buckets(numShards());
    for (const auto &op : ops)
        buckets[shardOf(op.counter)].push_back(op);
    for (unsigned s = 0; s < numShards(); ++s) {
        if (buckets[s].empty())
            continue;
        pool_.post(s, [this, s, bucket = std::move(buckets[s])] {
            runShardOps(s, bucket);
        });
    }
    pool_.drain();
}

void
ShardedEngine::accumulate(uint64_t value, unsigned mask_handle,
                          unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulate(value, mask_handle + kReservedMasks, group);
    });
}

void
ShardedEngine::accumulateSigned(int64_t value, unsigned mask_handle,
                                unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulateSigned(value, mask_handle + kReservedMasks,
                             group);
    });
}

std::vector<int64_t>
ShardedEngine::readAllCounters(unsigned group)
{
    std::vector<int64_t> out(cfg_.numCounters);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        const auto part = eng.readCounters(group);
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<ptrdiff_t>(starts_[s]));
    });
    return out;
}

void
ShardedEngine::addCounters(unsigned dst_group, unsigned src_group)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.addCounters(dst_group, src_group);
    });
}

void
ShardedEngine::relu(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.relu(group); });
}

void
ShardedEngine::shiftLeft(unsigned group, unsigned spare_group,
                         unsigned amount)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.shiftLeft(group, spare_group, amount);
    });
}

void
ShardedEngine::drain(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.drain(group); });
}

void
ShardedEngine::clear()
{
    forEachShard([&](C2MEngine &eng, unsigned) { eng.clear(); });
}

EngineStats
ShardedEngine::stats() const
{
    EngineStats merged;
    for (const auto &s : shards_)
        merged += s->stats();
    return merged;
}

Histogram
countersToHistogram(ShardedEngine &engine, int64_t lo, int64_t hi,
                    unsigned group)
{
    const auto counts = engine.readAllCounters(group);
    return countersToHistogram(counts, lo, hi);
}

std::vector<int64_t>
replaySerial(const EngineConfig &cfg, std::span<const BatchOp> ops,
             unsigned group)
{
    C2MEngine eng(cfg);
    const unsigned h =
        eng.addMask(std::vector<uint8_t>(cfg.numCounters, 0));
    size_t current = std::numeric_limits<size_t>::max();
    for (const auto &op : ops) {
        if (op.counter != current) {
            std::vector<uint8_t> mask(cfg.numCounters, 0);
            mask[op.counter] = 1;
            eng.setMask(h, mask);
            current = op.counter;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value), h,
                           op.group);
        else
            eng.accumulateSigned(op.value, h, op.group);
    }
    return eng.readCounters(group);
}

Histogram
countersToHistogram(std::span<const int64_t> counters, int64_t lo,
                    int64_t hi)
{
    Histogram h(lo, hi);
    for (size_t i = 0; i < counters.size(); ++i)
        if (counters[i] > 0)
            h.add(static_cast<int64_t>(i),
                  static_cast<uint64_t>(counters[i]));
    return h;
}

} // namespace core
} // namespace c2m
