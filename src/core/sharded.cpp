#include "core/sharded.hpp"

#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace core {

namespace {

/** Contiguous range boundaries: remainder spread over the first shards. */
std::vector<size_t>
splitRanges(size_t total, unsigned shards)
{
    std::vector<size_t> starts(shards + 1, 0);
    const size_t base = total / shards;
    const size_t extra = total % shards;
    for (unsigned s = 0; s < shards; ++s)
        starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
    return starts;
}

} // namespace

ShardedEngine::ShardedEngine(const EngineConfig &cfg,
                             unsigned num_shards,
                             unsigned num_threads)
    : cfg_(cfg),
      starts_(splitRanges(cfg.numCounters,
                          num_shards ? num_shards : 1)),
      pool_(num_threads ? num_threads : num_shards)
{
    C2M_ASSERT(num_shards >= 1, "need at least one shard");
    C2M_ASSERT(cfg.numCounters >= num_shards,
               "fewer counters than shards");

    // Independent per-shard seeds split from the root seed.
    uint64_t seed_state = cfg.seed;
    for (unsigned s = 0; s < num_shards; ++s) {
        EngineConfig scfg = cfg;
        scfg.numCounters = shardWidth(s);
        scfg.seed = splitMix64(seed_state);
        // Handle kPointMask is reserved for routed point updates.
        scfg.maxMaskRows = cfg.maxMaskRows + 1;
        shards_.push_back(std::make_unique<C2MEngine>(scfg));
        shards_.back()->addMask(
            std::vector<uint8_t>(shardWidth(s), 0));
    }
    pointCol_.assign(num_shards, std::numeric_limits<size_t>::max());
    shardBusy_ = std::make_unique<std::atomic<bool>[]>(num_shards);
}

unsigned
ShardedEngine::shardOf(uint64_t counter) const
{
    C2M_ASSERT(counter < cfg_.numCounters,
               "counter index out of range: ", counter);
    // Ranges differ by at most one column; start from the uniform
    // guess and walk at most one step each way.
    const size_t n = numShards();
    size_t s = static_cast<size_t>(counter) * n / cfg_.numCounters;
    while (counter < starts_[s])
        --s;
    while (counter >= starts_[s + 1])
        ++s;
    return static_cast<unsigned>(s);
}

unsigned
ShardedEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows,
               "mask rows exhausted; raise maxMaskRows");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
ShardedEngine::setMask(unsigned handle,
                       const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        std::vector<uint8_t> slice(shardWidth(s), 0);
        const size_t lo = starts_[s];
        for (size_t c = 0; c < slice.size() && lo + c < mask.size();
             ++c)
            slice[c] = mask[lo + c];
        // Shard handle 0 is the reserved point mask, so logical
        // handle h lives at shard handle h + 1.
        if (handle + 1 < eng.numMasks())
            eng.setMask(handle + 1, slice);
        else
            eng.addMask(slice);
    });
}

void
ShardedEngine::runShardOps(unsigned s, std::span<const BatchOp> ops)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    for (const auto &op : ops)
        C2M_ASSERT(op.counter >= starts_[s] &&
                       op.counter < starts_[s + 1],
                   "counter ", op.counter, " not owned by shard ", s);
    // Whole-bucket stealing keeps shards single-writer; two threads
    // inside one shard means a scheduler bug above this layer.
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    runShardBatch(s, ops);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardTask(
    unsigned s, const std::function<void(C2MEngine &, size_t)> &fn)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    fn(*shards_[s], starts_[s]);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardBatch(unsigned s, std::span<const BatchOp> ops)
{
    C2MEngine &eng = *shards_[s];
    const size_t lo = starts_[s];
    for (const auto &op : ops) {
        const size_t col = static_cast<size_t>(op.counter) - lo;
        if (pointCol_[s] != col) {
            std::vector<uint8_t> m(shardWidth(s), 0);
            m[col] = 1;
            eng.setMask(kPointMask, m);
            pointCol_[s] = col;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value),
                           kPointMask, op.group);
        else
            eng.accumulateSigned(op.value, kPointMask, op.group);
    }
}

void
ShardedEngine::accumulateBatch(std::span<const BatchOp> ops)
{
    std::vector<std::vector<BatchOp>> buckets(numShards());
    for (const auto &op : ops)
        buckets[shardOf(op.counter)].push_back(op);
    for (unsigned s = 0; s < numShards(); ++s) {
        if (buckets[s].empty())
            continue;
        pool_.post(s, [this, s, bucket = std::move(buckets[s])] {
            runShardOps(s, bucket);
        });
    }
    pool_.drain();
}

void
ShardedEngine::accumulate(uint64_t value, unsigned mask_handle,
                          unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulate(value, mask_handle + 1, group);
    });
}

void
ShardedEngine::accumulateSigned(int64_t value, unsigned mask_handle,
                                unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulateSigned(value, mask_handle + 1, group);
    });
}

std::vector<int64_t>
ShardedEngine::readAllCounters(unsigned group)
{
    std::vector<int64_t> out(cfg_.numCounters);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        const auto part = eng.readCounters(group);
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<ptrdiff_t>(starts_[s]));
    });
    return out;
}

void
ShardedEngine::addCounters(unsigned dst_group, unsigned src_group)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.addCounters(dst_group, src_group);
    });
}

void
ShardedEngine::relu(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.relu(group); });
}

void
ShardedEngine::shiftLeft(unsigned group, unsigned spare_group,
                         unsigned amount)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.shiftLeft(group, spare_group, amount);
    });
}

void
ShardedEngine::drain(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.drain(group); });
}

void
ShardedEngine::clear()
{
    forEachShard([&](C2MEngine &eng, unsigned) { eng.clear(); });
}

EngineStats
ShardedEngine::stats() const
{
    EngineStats merged;
    for (const auto &s : shards_)
        merged += s->stats();
    return merged;
}

Histogram
countersToHistogram(ShardedEngine &engine, int64_t lo, int64_t hi,
                    unsigned group)
{
    const auto counts = engine.readAllCounters(group);
    return countersToHistogram(counts, lo, hi);
}

std::vector<int64_t>
replaySerial(const EngineConfig &cfg, std::span<const BatchOp> ops,
             unsigned group)
{
    C2MEngine eng(cfg);
    const unsigned h =
        eng.addMask(std::vector<uint8_t>(cfg.numCounters, 0));
    size_t current = std::numeric_limits<size_t>::max();
    for (const auto &op : ops) {
        if (op.counter != current) {
            std::vector<uint8_t> mask(cfg.numCounters, 0);
            mask[op.counter] = 1;
            eng.setMask(h, mask);
            current = op.counter;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value), h,
                           op.group);
        else
            eng.accumulateSigned(op.value, h, op.group);
    }
    return eng.readCounters(group);
}

Histogram
countersToHistogram(std::span<const int64_t> counters, int64_t lo,
                    int64_t hi)
{
    Histogram h(lo, hi);
    for (size_t i = 0; i < counters.size(); ++i)
        if (counters[i] > 0)
            h.add(static_cast<int64_t>(i),
                  static_cast<uint64_t>(counters[i]));
    return h;
}

} // namespace core
} // namespace c2m
