#include "core/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/costmodel.hpp"
#include "jc/digits.hpp"
#include "obs/trace.hpp"

namespace c2m {
namespace core {

namespace {

/** Contiguous range boundaries: remainder spread over the first shards. */
std::vector<size_t>
splitRanges(size_t total, unsigned shards)
{
    std::vector<size_t> starts(shards + 1, 0);
    const size_t base = total / shards;
    const size_t extra = total % shards;
    for (unsigned s = 0; s < shards; ++s)
        starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
    return starts;
}

/** RCA accumulator width (mirrors backend_rca's sizing rule). */
unsigned
rcaModelWidth(unsigned radix, unsigned num_digits)
{
    unsigned __int128 modulus = 1;
    for (unsigned d = 0; d < num_digits; ++d)
        modulus *= radix;
    unsigned width = 1;
    while (width < 64 &&
           (static_cast<unsigned __int128>(1) << (width - 1)) <
               modulus)
        ++width;
    return width;
}

/**
 * Modeled ns of one masked k-ary increment per k, on this config's
 * substrate: analytic command counts (C2mCostModel for the JC
 * backends, RcaCostModel for the ripple-carry baseline — whose cost
 * is k-independent) priced at the per-command latency of the fabric
 * (DRAM bank period, or the NVM op latency).
 */
std::vector<double>
planIncrementNs(const EngineConfig &cfg)
{
    const unsigned digits =
        jc::digitsForCapacityBits(cfg.radix, cfg.capacityBits) + 1;
    const bool nvm = cfg.backend == BackendKind::NvmPinatubo ||
                     cfg.backend == BackendKind::NvmMagic;
    const double cmd_ns =
        nvm ? cfg.nvmCost.opNs : cfg.dramTimings.bankPeriodNs();
    std::vector<double> inc(cfg.radix, 0.0);
    if (cfg.backend == BackendKind::Rca) {
        const RcaCostModel model(
            rcaModelWidth(cfg.radix, digits),
            cfg.protection == Protection::Ecc);
        for (unsigned k = 1; k < cfg.radix; ++k)
            inc[k] =
                static_cast<double>(model.accumulateOps()) * cmd_ns;
        return inc;
    }
    const C2mCostModel model(cfg.radix, cfg.capacityBits,
                             cfg.protection == Protection::Ecc,
                             cfg.frChecks, cfg.counting, cfg.ripple);
    for (unsigned k = 1; k < cfg.radix; ++k)
        inc[k] = static_cast<double>(model.incrementOps(k)) * cmd_ns;
    return inc;
}

} // namespace

ShardedEngine::ShardedEngine(const EngineConfig &cfg,
                             unsigned num_shards,
                             unsigned num_threads)
    : cfg_(cfg),
      starts_(splitRanges(cfg.numCounters,
                          num_shards ? num_shards : 1)),
      pool_(num_threads ? num_threads : num_shards)
{
    C2M_ASSERT(num_shards >= 1, "need at least one shard");
    C2M_ASSERT(cfg.numCounters >= num_shards,
               "fewer counters than shards");

    // Persistent plane-row pool: one spare mask row per (digit, k)
    // plane so plan programs keep stable (op, digit, k, mask row)
    // cache keys across epochs; deep-capacity overflow planes share
    // kPlaneShared.
    const bool planned =
        cfg.drainPlanner && cfg.counting == CountMode::Kary;
    if (planned) {
        const unsigned digits =
            jc::digitsForCapacityBits(cfg.radix, cfg.capacityBits) +
            1;
        planePool_ = std::min<unsigned>(digits * (cfg.radix - 1),
                                        kMaxPlaneRows);
        planIncNs_ = planIncrementNs(cfg);
    }
    reservedMasks_ = kPlaneBase + planePool_;
    // The reserved handles are ADDITIVE on top of the public budget
    // (each shard is configured with cfg.maxMaskRows + reservedMasks_
    // rows below): a workload config with maxMaskRows as low as 1
    // (dna, sparsity) still gets its full public row count, and the
    // planner keeps its point/plane rows regardless of how small the
    // public budget is. Guard the plane pool so a refactor of the
    // reservation scheme cannot silently starve the plan path.
    C2M_ASSERT(!planned || planePool_ > 0,
               "drain planner reserved no plane rows");

    const bool nvm = cfg.backend == BackendKind::NvmPinatubo ||
                     cfg.backend == BackendKind::NvmMagic;

    // Independent per-shard seeds split from the root seed.
    uint64_t seed_state = cfg.seed;
    scratch_.resize(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
        EngineConfig scfg = cfg;
        scfg.numCounters = shardWidth(s);
        scfg.seed = splitMix64(seed_state);
        // Handles [0, reservedMasks_) are internal: the routed point
        // mask, the shared overflow plane row, and the persistent
        // per-plane pool.
        scfg.maxMaskRows = cfg.maxMaskRows + reservedMasks_;
        shards_.push_back(std::make_unique<C2MEngine>(scfg));
        for (unsigned h = 0; h < reservedMasks_; ++h)
            shards_.back()->addMask(
                std::vector<uint8_t>(shardWidth(s), 0));
        scratch_[s].pointMask = BitVector(shardWidth(s));
        scratch_[s].pointCol = std::numeric_limits<size_t>::max();
        scratch_[s].maskWriteNs =
            nvm ? cfg.nvmCost.rowAccessNs
                : cfg.dramTimings.rowAccessNs(static_cast<unsigned>(
                      (shardWidth(s) + 7) / 8));
    }
    shardBusy_ = std::make_unique<std::atomic<bool>[]>(num_shards);
}

unsigned
ShardedEngine::shardOf(uint64_t counter) const
{
    C2M_ASSERT(counter < cfg_.numCounters,
               "counter index out of range: ", counter);
    // Ranges differ by at most one column; start from the uniform
    // guess and walk at most one step each way.
    const size_t n = numShards();
    size_t s = static_cast<size_t>(counter) * n / cfg_.numCounters;
    while (counter < starts_[s])
        --s;
    while (counter >= starts_[s + 1])
        ++s;
    return static_cast<unsigned>(s);
}

unsigned
ShardedEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows,
               "mask rows exhausted; raise maxMaskRows");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
ShardedEngine::setMask(unsigned handle,
                       const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        std::vector<uint8_t> slice(shardWidth(s), 0);
        const size_t lo = starts_[s];
        for (size_t c = 0; c < slice.size() && lo + c < mask.size();
             ++c)
            slice[c] = mask[lo + c];
        // Shard handles 0..reservedMasks_-1 are internal (point and
        // plane masks), so logical handle h lives at shard handle
        // h + reservedMasks_.
        if (handle + reservedMasks_ < eng.numMasks())
            eng.setMask(handle + reservedMasks_, slice);
        else
            eng.addMask(slice);
    });
}

void
ShardedEngine::runShardOps(unsigned s, std::span<const BatchOp> ops)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    // Whole-bucket stealing keeps shards single-writer; two threads
    // inside one shard means a scheduler bug above this layer.
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    // One-bucket degenerate case of the epoch pipeline: the merged
    // stage-3 decision over a single shard reduces exactly to the
    // classic per-shard plan-vs-fallback comparison, so this path is
    // bit- and stats-identical to planning the bucket in isolation.
    prepareShardParts(s, ops);
    const unsigned self[1] = {s};
    planParts(self);
    execShardParts(s);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardTask(
    unsigned s, const std::function<void(C2MEngine &, size_t)> &fn)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    fn(*shards_[s], starts_[s]);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::prepareShardParts(unsigned s,
                                 std::span<const BatchOp> ops)
{
    auto &sc = scratch_[s];
    sc.partsUsed = 0;
    if (ops.empty())
        return;
    for (const auto &op : ops)
        C2M_ASSERT(op.counter >= starts_[s] &&
                       op.counter < starts_[s + 1],
                   "counter ", op.counter, " not owned by shard ", s);
    const auto newPart = [&sc]() -> PlanPart & {
        if (sc.partsUsed == sc.parts.size())
            sc.parts.emplace_back();
        PlanPart &p = sc.parts[sc.partsUsed++];
        p.own.clear();
        p.touched.clear();
        p.steps.clear();
        p.pre.clear();
        p.post.clear();
        p.fallbackNs = 0.0;
        p.planned = false;
        return p;
    };
    // Planner off, or Unit counting (no k-ary planes): the bucket
    // stays one serial part in its original op order. With the
    // planner on these ops still count as fallback at execution so
    // the invariant plannedOps + planFallbackOps == batched ops
    // holds for metric consumers.
    if (!cfg_.drainPlanner || cfg_.counting != CountMode::Kary) {
        PlanPart &p = newPart();
        p.group = ops.front().group;
        p.ops = ops;
        return;
    }
    // Common case first: the whole bucket targets one group.
    bool single_group = true;
    for (const auto &op : ops)
        if (op.group != ops.front().group) {
            single_group = false;
            break;
        }
    if (single_group) {
        PlanPart &p = newPart();
        p.group = ops.front().group;
        p.ops = ops;
    } else {
        // Partition by group (first-appearance order, per-group op
        // order preserved); groups hold independent counter state,
        // so draining them one after another cannot change any
        // value.
        for (const auto &op : ops) {
            size_t i = 0;
            while (i < sc.partsUsed && sc.parts[i].group != op.group)
                ++i;
            if (i == sc.partsUsed) {
                PlanPart &p = newPart();
                p.group = op.group;
            }
            sc.parts[i].own.push_back(op);
        }
        for (size_t i = 0; i < sc.partsUsed; ++i)
            sc.parts[i].ops = sc.parts[i].own;
    }
    for (size_t i = 0; i < sc.partsUsed; ++i)
        analyzePart(s, sc.parts[i]);
}

void
ShardedEngine::analyzePart(unsigned s, PlanPart &part)
{
    C2MEngine &eng = *shards_[s];
    auto &sc = scratch_[s];
    // Signed-mode groups keep pending flags fully resolved per op;
    // a plan would defer them, so those parts replay per-op.
    if (eng.signedMode(part.group))
        return;

    // Sum each counter's delta (first-occurrence order). A negative
    // op means serial replay could enter signed mode mid-bucket —
    // fall back so the op-for-op state machine stays bit-identical.
    sc.index.clear();
    sc.sums.clear();
    const size_t lo = starts_[s];
    for (const auto &op : part.ops) {
        if (op.value < 0)
            return;
        const uint64_t col = op.counter - lo;
        const auto [it, inserted] =
            sc.index.try_emplace(col, sc.sums.size());
        if (inserted)
            sc.sums.emplace_back(static_cast<size_t>(col), op.value);
        else
            sc.sums[it->second].second += op.value;
    }

    // Build the digit planes: counter col joins plane (d, k) iff its
    // summed delta has digit k at position d. The top digit is the
    // guard per-value increments never touch (only ripples carry
    // into it), so a summed delta reaching it cannot be planned —
    // replay the raw ops instead, which stay per-value in range.
    const unsigned R = cfg_.radix;
    const unsigned D = eng.backend().numDigits();
    if (part.planes.empty()) {
        part.planes.assign(static_cast<size_t>(D) * (R - 1),
                           BitVector(shardWidth(s)));
        part.planeUsed.assign(part.planes.size(), 0);
    }
    bool over_capacity = false;
    for (const auto &[col, delta] : sc.sums) {
        uint64_t v = static_cast<uint64_t>(delta);
        unsigned pos = 0;
        while (v != 0) {
            const unsigned k = static_cast<unsigned>(v % R);
            v /= R;
            if (k != 0) {
                if (pos + 1 >= D) {
                    over_capacity = true;
                    break;
                }
                const size_t idx =
                    static_cast<size_t>(pos) * (R - 1) + (k - 1);
                if (!part.planeUsed[idx]) {
                    part.planeUsed[idx] = 1;
                    part.planes[idx].fill(false);
                    part.touched.push_back(
                        static_cast<uint32_t>(idx));
                }
                part.planes[idx].set(col, true);
            }
            ++pos;
        }
        if (over_capacity)
            break;
    }
    for (const uint32_t idx : part.touched)
        part.planeUsed[idx] = 0;
    if (over_capacity) {
        part.touched.clear();
        return;
    }

    // Price the per-op replay alternative over the RAW ops — one
    // increment program per nonzero digit of each original value
    // plus a point-mask rewrite per counter switch — so a hot key
    // hit N times costs ~N program chains per-op but shares one
    // plane set once summed. The merged stage-3 decision compares
    // the sum of these against ONE global plan.
    size_t prev_col = std::numeric_limits<size_t>::max();
    for (const auto &op : part.ops) {
        const size_t col = static_cast<size_t>(op.counter) - lo;
        if (col != prev_col) {
            part.fallbackNs += sc.maskWriteNs;
            prev_col = col;
        }
        for (uint64_t v = static_cast<uint64_t>(op.value); v != 0;
             v /= R)
            if (const unsigned k = static_cast<unsigned>(v % R))
                part.fallbackNs += planIncNs_[k];
    }
    part.planned = true;
}

void
ShardedEngine::runShardSerial(unsigned s,
                              std::span<const BatchOp> ops)
{
    C2MEngine &eng = *shards_[s];
    auto &sc = scratch_[s];
    const size_t lo = starts_[s];
    // The whole per-op replay path attributes to Fallback — both the
    // planner's bail-outs and the entire batch when the planner is
    // off. Point-mask rewrites inside it still land in MaskWrite via
    // the nested scope in C2MEngine::setMask (innermost wins).
    cim::AttrScope attr(eng.backend().opStatsRef(),
                        cim::FabricCat::Fallback);
    for (const auto &op : ops) {
        const size_t col = static_cast<size_t>(op.counter) - lo;
        if (sc.pointCol != col) {
            // Two-bit in-place update of the reusable point mask: no
            // byte-vector rebuild, no allocation on a column change.
            if (sc.pointCol != std::numeric_limits<size_t>::max())
                sc.pointMask.set(sc.pointCol, false);
            sc.pointMask.set(col, true);
            eng.setMask(kPointMask, sc.pointMask);
            sc.pointCol = col;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value),
                           kPointMask, op.group);
        else
            eng.accumulateSigned(op.value, kPointMask, op.group);
    }
}

void
ShardedEngine::planParts(std::span<const unsigned> shard_ids)
{
    const unsigned R = cfg_.radix;
    // Distinct groups, shard-major first-appearance order.
    std::vector<uint32_t> groups;
    for (const unsigned s : shard_ids) {
        const auto &sc = scratch_[s];
        for (size_t i = 0; i < sc.partsUsed; ++i) {
            const uint32_t g = sc.parts[i].group;
            if (std::find(groups.begin(), groups.end(), g) ==
                groups.end())
                groups.push_back(g);
        }
    }
    std::vector<std::pair<unsigned, PlanPart *>> cand;
    std::vector<uint32_t> union_planes;
    std::unordered_map<uint32_t, unsigned> plane_lead;
    std::unordered_map<unsigned, unsigned> issued, occ;
    for (const uint32_t g : groups) {
        // Gather this group's plan candidates across all shards.
        // Every plane in the union is issued ONCE, by the lowest
        // shard holding it (the gang leader); each candidate shard
        // still pays its own mask-row slice writes.
        cand.clear();
        union_planes.clear();
        plane_lead.clear();
        double fallback_ns = 0.0;
        double plan_ns = 0.0;
        for (const unsigned s : shard_ids) {
            auto &sc = scratch_[s];
            for (size_t i = 0; i < sc.partsUsed; ++i) {
                PlanPart &p = sc.parts[i];
                if (p.group != g || !p.planned)
                    continue;
                cand.emplace_back(s, &p);
                fallback_ns += p.fallbackNs;
                plan_ns += static_cast<double>(p.touched.size()) *
                           sc.maskWriteNs;
                for (const uint32_t idx : p.touched) {
                    plane_lead.try_emplace(idx, s);
                    union_planes.push_back(idx);
                }
            }
        }
        if (cand.empty())
            continue;
        std::sort(union_planes.begin(), union_planes.end());
        union_planes.erase(std::unique(union_planes.begin(),
                                       union_planes.end()),
                           union_planes.end());
        for (const uint32_t idx : union_planes)
            plan_ns += planIncNs_[idx % (R - 1) + 1];
        // All-or-nothing commit on the merged prices. At one shard
        // this is exactly the classic per-shard comparison. The
        // priced ns that justified the decision ride along on the
        // lead shard's track: arg = plan price, arg2 = replay price.
        const unsigned lead_shard = cand.front().first;
        if (plan_ns >= fallback_ns) {
            if (auto *t = obs::tracer())
                t->instant(
                    "plan.fallback", lead_shard,
                    static_cast<uint64_t>(std::llround(plan_ns)),
                    static_cast<uint64_t>(std::llround(fallback_ns)));
            for (auto &[s, p] : cand)
                p->planned = false;
            continue;
        }
        if (auto *t = obs::tracer())
            t->instant(
                "plan.commit", lead_shard,
                static_cast<uint64_t>(std::llround(plan_ns)),
                static_cast<uint64_t>(std::llround(fallback_ns)));
        // Slice the merged plan back: deterministic plane order
        // (ascending digit, k) per shard; each plane lands in its
        // persistent mask row so its cached program key is stable
        // across epochs. IARM preparation uses each shard's OWN
        // worst profile, so scheduler state — and therefore every
        // ripple — is bit-identical to independent per-shard plans.
        for (auto &[s, p] : cand) {
            std::sort(p->touched.begin(), p->touched.end());
            for (const uint32_t idx : p->touched)
                p->steps.push_back(
                    {static_cast<unsigned>(idx / (R - 1)),
                     static_cast<unsigned>(idx % (R - 1)) + 1,
                     planeHandle(idx), &p->planes[idx],
                     plane_lead[idx] == s});
            shards_[s]->planPrepare(p->steps, g, p->pre, p->post);
        }
        // Gang the scheduled ripples per (digit, occurrence): the
        // first shard needing the j-th ripple of digit d leads it,
        // later shards' j-th occurrences ride its issue slot. Ripple
        // programs depend only on (group, digit), so the command
        // streams are identical across shards.
        const auto gangRipples = [&](const bool post_pass) {
            issued.clear();
            for (auto &[s, p] : cand) {
                (void)s;
                occ.clear();
                for (PlanRipple &r : post_pass ? p->post : p->pre) {
                    const unsigned j = occ[r.digit]++;
                    unsigned &lead = issued[r.digit];
                    if (j < lead) {
                        r.lead = false;
                    } else {
                        r.lead = true;
                        lead = j + 1;
                    }
                }
            }
        };
        gangRipples(false);
        gangRipples(true);
    }
}

void
ShardedEngine::execShardParts(unsigned s)
{
    auto &sc = scratch_[s];
    C2MEngine &eng = *shards_[s];
    // The drain span carries the shard's cumulative modeled fabric
    // clock on both edges, so the fabric-clock track shows how much
    // fabric time this bucket consumed.
    obs::TraceRecorder *tr = obs::tracer();
    if (tr)
        tr->spanBegin("shard.drain", s, eng.stats().fabric.fabricNs);
    for (size_t i = 0; i < sc.partsUsed; ++i) {
        PlanPart &p = sc.parts[i];
        if (p.planned) {
            eng.executePlan(p.steps, p.pre, p.post, p.group,
                            p.ops.size());
        } else {
            // Demoted or ineligible parts replay per-op; with the
            // planner on they count as fallback so plannedOps +
            // planFallbackOps == batched ops holds.
            if (cfg_.drainPlanner)
                eng.notePlanFallback(p.ops.size());
            runShardSerial(s, p.ops);
        }
    }
    if (tr)
        tr->spanEnd("shard.drain", s, eng.stats().fabric.fabricNs);
}

void
ShardedEngine::forEachBucket(
    std::span<const EpochBucket> buckets, bool stealing,
    uint64_t *steals_out,
    const std::function<void(const EpochBucket &)> &fn)
{
    if (pool_.size() == 0) {
        for (const EpochBucket &b : buckets)
            fn(b);
        return;
    }
    if (!stealing) {
        for (const EpochBucket &b : buckets)
            pool_.post(b.shard, [&fn, &b] { fn(b); });
        pool_.drain();
        return;
    }
    // Work stealing: a claim loop on every lane pops whole buckets
    // off a shared index, so an idle lane picks up a busy lane's
    // next shard instead of waiting behind it. Per-shard order stays
    // fixed (one bucket per shard per call), only placement moves.
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> steals{0};
    const unsigned lanes = static_cast<unsigned>(
        std::min<size_t>(pool_.size(), buckets.size()));
    for (unsigned l = 0; l < lanes; ++l)
        pool_.post(l, [&] {
            const unsigned lane = pool_.currentLane();
            for (;;) {
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= buckets.size())
                    return;
                const EpochBucket &b = buckets[i];
                if (b.shard % pool_.size() != lane)
                    steals.fetch_add(1, std::memory_order_relaxed);
                fn(b);
            }
        });
    pool_.drain();
    if (steals_out)
        *steals_out += steals.load(std::memory_order_relaxed);
}

void
ShardedEngine::runEpoch(std::span<const EpochBucket> buckets,
                        bool stealing, uint64_t *steals_out)
{
    if (buckets.empty())
        return;
    // Stage 1+2 — combine + count (host-only, parallel): partition
    // each bucket by group, sum deltas, build plane histograms.
    forEachBucket(buckets, stealing, nullptr,
                  [this](const EpochBucket &b) {
                      C2M_ASSERT(
                          !shardBusy_[b.shard].exchange(
                              true, std::memory_order_acquire),
                          "concurrent writers on shard ", b.shard);
                      prepareShardParts(b.shard, b.ops);
                      shardBusy_[b.shard].store(
                          false, std::memory_order_release);
                  });
    // Stage 3 — merged scan/offset + gang leadership (host-serial;
    // no stage-1/4 task in flight, so scratch access is exclusive).
    std::vector<unsigned> ids;
    ids.reserve(buckets.size());
    for (const EpochBucket &b : buckets)
        ids.push_back(b.shard);
    planParts(ids);
    // Stage 4 — execute the plane slices (parallel). Only this stage
    // counts steals: it is the one doing fabric work.
    forEachBucket(buckets, stealing, steals_out,
                  [this](const EpochBucket &b) {
                      C2M_ASSERT(
                          !shardBusy_[b.shard].exchange(
                              true, std::memory_order_acquire),
                          "concurrent writers on shard ", b.shard);
                      execShardParts(b.shard);
                      shardBusy_[b.shard].store(
                          false, std::memory_order_release);
                  });
}

void
ShardedEngine::accumulateBatch(std::span<const BatchOp> ops)
{
    std::vector<std::vector<BatchOp>> buckets(numShards());
    for (const auto &op : ops)
        buckets[shardOf(op.counter)].push_back(op);
    // One epoch through the hierarchical pipeline: cross-shard plane
    // programs gang-issue instead of replicating per shard.
    std::vector<EpochBucket> eb;
    eb.reserve(buckets.size());
    for (unsigned s = 0; s < numShards(); ++s)
        if (!buckets[s].empty())
            eb.push_back({s, buckets[s]});
    runEpoch(eb, /*stealing=*/true);
}

void
ShardedEngine::accumulate(uint64_t value, unsigned mask_handle,
                          unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulate(value, mask_handle + reservedMasks_, group);
    });
}

void
ShardedEngine::accumulateSigned(int64_t value, unsigned mask_handle,
                                unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulateSigned(value, mask_handle + reservedMasks_,
                             group);
    });
}

std::vector<int64_t>
ShardedEngine::readAllCounters(unsigned group)
{
    std::vector<int64_t> out(cfg_.numCounters);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        const auto part = eng.readCounters(group);
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<ptrdiff_t>(starts_[s]));
    });
    return out;
}

void
ShardedEngine::addCounters(unsigned dst_group, unsigned src_group)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.addCounters(dst_group, src_group);
    });
}

void
ShardedEngine::relu(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.relu(group); });
}

void
ShardedEngine::shiftLeft(unsigned group, unsigned spare_group,
                         unsigned amount)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.shiftLeft(group, spare_group, amount);
    });
}

void
ShardedEngine::drain(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.drain(group); });
}

void
ShardedEngine::clear()
{
    forEachShard([&](C2MEngine &eng, unsigned) { eng.clear(); });
}

EngineStats
ShardedEngine::stats() const
{
    EngineStats merged;
    for (const auto &s : shards_)
        merged += s->stats();
    // fabric.fabricNs summed across shards is total fabric work;
    // the critical path is when the last shard finishes. operator+=
    // max-merged the per-shard serial times; DRAM shards additionally
    // share one rank, where tRRD/tFAW bound the aggregate command
    // issue rate no matter how many banks run (Sec. 7.2.1) — take
    // the tighter of the two bounds. NVM crossbars are independent
    // arrays with no rank window, so the per-shard max stands.
    // Ganged follower commands execute inside their leader's issue
    // slots (one ACTIVATE broadcast drives every participating
    // bank), so they do not occupy rank-window slots of their own
    // and leave the floor.
    if (cfg_.backend == BackendKind::Ambit ||
        cfg_.backend == BackendKind::Rca) {
        const double rank_floor =
            static_cast<double>(merged.fabric.commands() -
                                merged.fabric.gangedCommands) *
            cfg_.dramTimings.issueIntervalNs(numShards());
        if (rank_floor > merged.fabricCriticalNs)
            merged.fabricCriticalNs = rank_floor;
    }
    return merged;
}

Histogram
countersToHistogram(ShardedEngine &engine, int64_t lo, int64_t hi,
                    unsigned group)
{
    const auto counts = engine.readAllCounters(group);
    return countersToHistogram(counts, lo, hi);
}

std::vector<int64_t>
replaySerial(const EngineConfig &cfg, std::span<const BatchOp> ops,
             unsigned group)
{
    C2MEngine eng(cfg);
    const unsigned h =
        eng.addMask(std::vector<uint8_t>(cfg.numCounters, 0));
    size_t current = std::numeric_limits<size_t>::max();
    for (const auto &op : ops) {
        if (op.counter != current) {
            std::vector<uint8_t> mask(cfg.numCounters, 0);
            mask[op.counter] = 1;
            eng.setMask(h, mask);
            current = op.counter;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value), h,
                           op.group);
        else
            eng.accumulateSigned(op.value, h, op.group);
    }
    return eng.readCounters(group);
}

Histogram
countersToHistogram(std::span<const int64_t> counters, int64_t lo,
                    int64_t hi)
{
    Histogram h(lo, hi);
    for (size_t i = 0; i < counters.size(); ++i)
        if (counters[i] > 0)
            h.add(static_cast<int64_t>(i),
                  static_cast<uint64_t>(counters[i]));
    return h;
}

} // namespace core
} // namespace c2m
