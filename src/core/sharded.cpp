#include "core/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/costmodel.hpp"
#include "jc/digits.hpp"
#include "obs/trace.hpp"

namespace c2m {
namespace core {

namespace {

/** Contiguous range boundaries: remainder spread over the first shards. */
std::vector<size_t>
splitRanges(size_t total, unsigned shards)
{
    std::vector<size_t> starts(shards + 1, 0);
    const size_t base = total / shards;
    const size_t extra = total % shards;
    for (unsigned s = 0; s < shards; ++s)
        starts[s + 1] = starts[s] + base + (s < extra ? 1 : 0);
    return starts;
}

/** RCA accumulator width (mirrors backend_rca's sizing rule). */
unsigned
rcaModelWidth(unsigned radix, unsigned num_digits)
{
    unsigned __int128 modulus = 1;
    for (unsigned d = 0; d < num_digits; ++d)
        modulus *= radix;
    unsigned width = 1;
    while (width < 64 &&
           (static_cast<unsigned __int128>(1) << (width - 1)) <
               modulus)
        ++width;
    return width;
}

/**
 * Modeled ns of one masked k-ary increment per k, on this config's
 * substrate: analytic command counts (C2mCostModel for the JC
 * backends, RcaCostModel for the ripple-carry baseline — whose cost
 * is k-independent) priced at the per-command latency of the fabric
 * (DRAM bank period, or the NVM op latency).
 */
std::vector<double>
planIncrementNs(const EngineConfig &cfg)
{
    const unsigned digits =
        jc::digitsForCapacityBits(cfg.radix, cfg.capacityBits) + 1;
    const bool nvm = cfg.backend == BackendKind::NvmPinatubo ||
                     cfg.backend == BackendKind::NvmMagic;
    const double cmd_ns =
        nvm ? cfg.nvmCost.opNs : cfg.dramTimings.bankPeriodNs();
    std::vector<double> inc(cfg.radix, 0.0);
    if (cfg.backend == BackendKind::Rca) {
        const RcaCostModel model(
            rcaModelWidth(cfg.radix, digits),
            cfg.protection == Protection::Ecc);
        for (unsigned k = 1; k < cfg.radix; ++k)
            inc[k] =
                static_cast<double>(model.accumulateOps()) * cmd_ns;
        return inc;
    }
    const C2mCostModel model(cfg.radix, cfg.capacityBits,
                             cfg.protection == Protection::Ecc,
                             cfg.frChecks, cfg.counting, cfg.ripple);
    for (unsigned k = 1; k < cfg.radix; ++k)
        inc[k] = static_cast<double>(model.incrementOps(k)) * cmd_ns;
    return inc;
}

} // namespace

ShardedEngine::ShardedEngine(const EngineConfig &cfg,
                             unsigned num_shards,
                             unsigned num_threads)
    : cfg_(cfg),
      starts_(splitRanges(cfg.numCounters,
                          num_shards ? num_shards : 1)),
      pool_(num_threads ? num_threads : num_shards)
{
    C2M_ASSERT(num_shards >= 1, "need at least one shard");
    C2M_ASSERT(cfg.numCounters >= num_shards,
               "fewer counters than shards");

    // Persistent plane-row pool: one spare mask row per (digit, k)
    // plane so plan programs keep stable (op, digit, k, mask row)
    // cache keys across epochs; deep-capacity overflow planes share
    // kPlaneShared.
    const bool planned =
        cfg.drainPlanner && cfg.counting == CountMode::Kary;
    if (planned) {
        const unsigned digits =
            jc::digitsForCapacityBits(cfg.radix, cfg.capacityBits) +
            1;
        planePool_ = std::min<unsigned>(digits * (cfg.radix - 1),
                                        kMaxPlaneRows);
        planIncNs_ = planIncrementNs(cfg);
    }
    reservedMasks_ = kPlaneBase + planePool_;

    const bool nvm = cfg.backend == BackendKind::NvmPinatubo ||
                     cfg.backend == BackendKind::NvmMagic;

    // Independent per-shard seeds split from the root seed.
    uint64_t seed_state = cfg.seed;
    scratch_.resize(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
        EngineConfig scfg = cfg;
        scfg.numCounters = shardWidth(s);
        scfg.seed = splitMix64(seed_state);
        // Handles [0, reservedMasks_) are internal: the routed point
        // mask, the shared overflow plane row, and the persistent
        // per-plane pool.
        scfg.maxMaskRows = cfg.maxMaskRows + reservedMasks_;
        shards_.push_back(std::make_unique<C2MEngine>(scfg));
        for (unsigned h = 0; h < reservedMasks_; ++h)
            shards_.back()->addMask(
                std::vector<uint8_t>(shardWidth(s), 0));
        scratch_[s].pointMask = BitVector(shardWidth(s));
        scratch_[s].pointCol = std::numeric_limits<size_t>::max();
        scratch_[s].maskWriteNs =
            nvm ? cfg.nvmCost.rowAccessNs
                : cfg.dramTimings.rowAccessNs(static_cast<unsigned>(
                      (shardWidth(s) + 7) / 8));
    }
    shardBusy_ = std::make_unique<std::atomic<bool>[]>(num_shards);
}

unsigned
ShardedEngine::shardOf(uint64_t counter) const
{
    C2M_ASSERT(counter < cfg_.numCounters,
               "counter index out of range: ", counter);
    // Ranges differ by at most one column; start from the uniform
    // guess and walk at most one step each way.
    const size_t n = numShards();
    size_t s = static_cast<size_t>(counter) * n / cfg_.numCounters;
    while (counter < starts_[s])
        --s;
    while (counter >= starts_[s + 1])
        ++s;
    return static_cast<unsigned>(s);
}

unsigned
ShardedEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows,
               "mask rows exhausted; raise maxMaskRows");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
ShardedEngine::setMask(unsigned handle,
                       const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        std::vector<uint8_t> slice(shardWidth(s), 0);
        const size_t lo = starts_[s];
        for (size_t c = 0; c < slice.size() && lo + c < mask.size();
             ++c)
            slice[c] = mask[lo + c];
        // Shard handles 0..reservedMasks_-1 are internal (point and
        // plane masks), so logical handle h lives at shard handle
        // h + reservedMasks_.
        if (handle + reservedMasks_ < eng.numMasks())
            eng.setMask(handle + reservedMasks_, slice);
        else
            eng.addMask(slice);
    });
}

void
ShardedEngine::runShardOps(unsigned s, std::span<const BatchOp> ops)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    for (const auto &op : ops)
        C2M_ASSERT(op.counter >= starts_[s] &&
                       op.counter < starts_[s + 1],
                   "counter ", op.counter, " not owned by shard ", s);
    // Whole-bucket stealing keeps shards single-writer; two threads
    // inside one shard means a scheduler bug above this layer.
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    // The drain span carries the shard's cumulative modeled fabric
    // clock on both edges, so the fabric-clock track shows how much
    // fabric time this bucket consumed.
    obs::TraceRecorder *tr = obs::tracer();
    if (tr)
        tr->spanBegin("shard.drain", s,
                      shards_[s]->stats().fabric.fabricNs);
    runShardBatch(s, ops);
    if (tr)
        tr->spanEnd("shard.drain", s,
                    shards_[s]->stats().fabric.fabricNs);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardTask(
    unsigned s, const std::function<void(C2MEngine &, size_t)> &fn)
{
    C2M_ASSERT(s < numShards(), "shard index out of range: ", s);
    C2M_ASSERT(!shardBusy_[s].exchange(true,
                                       std::memory_order_acquire),
               "concurrent writers on shard ", s);
    fn(*shards_[s], starts_[s]);
    shardBusy_[s].store(false, std::memory_order_release);
}

void
ShardedEngine::runShardBatch(unsigned s, std::span<const BatchOp> ops)
{
    if (ops.empty())
        return;
    if (!cfg_.drainPlanner) {
        runShardSerial(s, ops);
        return;
    }
    if (cfg_.counting != CountMode::Kary) {
        // Unit counting has no k-ary planes; with the planner on
        // these ops still count as fallback so the accounting
        // invariant plannedOps + planFallbackOps == batched ops
        // holds for metric consumers.
        shards_[s]->notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }
    // Common case first: the whole bucket targets one group.
    bool single_group = true;
    for (const auto &op : ops)
        if (op.group != ops.front().group) {
            single_group = false;
            break;
        }
    if (single_group) {
        runGroupPlanned(s, ops.front().group, ops);
        return;
    }
    // Partition by group (first-appearance order, per-group op order
    // preserved); groups hold independent counter state, so planning
    // them one after another cannot change any value.
    auto &sc = scratch_[s];
    for (auto &part : sc.parts)
        part.second.clear();
    size_t used = 0;
    for (const auto &op : ops) {
        size_t p = 0;
        while (p < used && sc.parts[p].first != op.group)
            ++p;
        if (p == used) {
            if (p == sc.parts.size())
                sc.parts.emplace_back();
            sc.parts[p].first = op.group;
            ++used;
        }
        sc.parts[p].second.push_back(op);
    }
    for (size_t p = 0; p < used; ++p)
        runGroupPlanned(s, sc.parts[p].first, sc.parts[p].second);
}

void
ShardedEngine::runShardSerial(unsigned s,
                              std::span<const BatchOp> ops)
{
    C2MEngine &eng = *shards_[s];
    auto &sc = scratch_[s];
    const size_t lo = starts_[s];
    // The whole per-op replay path attributes to Fallback — both the
    // planner's bail-outs and the entire batch when the planner is
    // off. Point-mask rewrites inside it still land in MaskWrite via
    // the nested scope in C2MEngine::setMask (innermost wins).
    cim::AttrScope attr(eng.backend().opStatsRef(),
                        cim::FabricCat::Fallback);
    for (const auto &op : ops) {
        const size_t col = static_cast<size_t>(op.counter) - lo;
        if (sc.pointCol != col) {
            // Two-bit in-place update of the reusable point mask: no
            // byte-vector rebuild, no allocation on a column change.
            if (sc.pointCol != std::numeric_limits<size_t>::max())
                sc.pointMask.set(sc.pointCol, false);
            sc.pointMask.set(col, true);
            eng.setMask(kPointMask, sc.pointMask);
            sc.pointCol = col;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value),
                           kPointMask, op.group);
        else
            eng.accumulateSigned(op.value, kPointMask, op.group);
    }
}

void
ShardedEngine::runGroupPlanned(unsigned s, uint32_t group,
                               std::span<const BatchOp> ops)
{
    C2MEngine &eng = *shards_[s];
    auto &sc = scratch_[s];
    // Signed-mode groups keep pending flags fully resolved per op;
    // a plan would defer them, so those buckets replay per-op.
    if (eng.signedMode(group)) {
        eng.notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }

    // Sum each counter's delta (first-occurrence order). A negative
    // op means serial replay could enter signed mode mid-bucket —
    // fall back so the op-for-op state machine stays bit-identical.
    sc.index.clear();
    sc.sums.clear();
    const size_t lo = starts_[s];
    bool negative = false;
    for (const auto &op : ops) {
        if (op.value < 0) {
            negative = true;
            break;
        }
        const uint64_t col = op.counter - lo;
        const auto [it, inserted] =
            sc.index.try_emplace(col, sc.sums.size());
        if (inserted)
            sc.sums.emplace_back(static_cast<size_t>(col), op.value);
        else
            sc.sums[it->second].second += op.value;
    }
    if (negative) {
        eng.notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }

    // Build the digit planes: counter col joins plane (d, k) iff its
    // summed delta has digit k at position d. The top digit is the
    // guard per-value increments never touch (only ripples carry
    // into it), so a summed delta reaching it cannot be planned —
    // replay the raw ops instead, which stay per-value in range.
    const unsigned R = cfg_.radix;
    const unsigned D = eng.backend().numDigits();
    if (sc.planes.empty()) {
        sc.planes.assign(static_cast<size_t>(D) * (R - 1),
                         BitVector(shardWidth(s)));
        sc.planeUsed.assign(sc.planes.size(), 0);
    }
    sc.touched.clear();
    bool over_capacity = false;
    for (const auto &[col, delta] : sc.sums) {
        uint64_t v = static_cast<uint64_t>(delta);
        unsigned pos = 0;
        while (v != 0) {
            const unsigned k = static_cast<unsigned>(v % R);
            v /= R;
            if (k != 0) {
                if (pos + 1 >= D) {
                    over_capacity = true;
                    break;
                }
                const size_t idx =
                    static_cast<size_t>(pos) * (R - 1) + (k - 1);
                if (!sc.planeUsed[idx]) {
                    sc.planeUsed[idx] = 1;
                    sc.planes[idx].fill(false);
                    sc.touched.push_back(static_cast<uint32_t>(idx));
                }
                sc.planes[idx].set(col, true);
            }
            ++pos;
        }
        if (over_capacity)
            break;
    }
    for (const uint32_t idx : sc.touched)
        sc.planeUsed[idx] = 0;

    // Cost both alternatives on the modeled fabric-time axis and
    // keep the cheaper one (the write-combining trade is a cost
    // comparison, not a program count). The fallback replays the RAW
    // ops — one increment program per nonzero digit of each original
    // value plus a point-mask rewrite per counter switch — so a hot
    // key hit N times costs ~N program chains per-op but shares one
    // plane set once summed. The plan pays one mask-row write plus
    // one increment per touched plane.
    double fallback_ns = 0.0;
    {
        size_t prev_col = std::numeric_limits<size_t>::max();
        for (const auto &op : ops) {
            const size_t col =
                static_cast<size_t>(op.counter) - lo;
            if (col != prev_col) {
                fallback_ns += sc.maskWriteNs;
                prev_col = col;
            }
            for (uint64_t v = static_cast<uint64_t>(op.value);
                 v != 0; v /= R)
                if (const unsigned k =
                        static_cast<unsigned>(v % R))
                    fallback_ns += planIncNs_[k];
        }
    }
    double plan_ns = 0.0;
    for (const uint32_t idx : sc.touched)
        plan_ns += sc.maskWriteNs + planIncNs_[idx % (R - 1) + 1];
    if (over_capacity || plan_ns >= fallback_ns) {
        // The priced ns that justified the decision ride along:
        // arg = plan price, arg2 = per-op replay price.
        if (auto *t = obs::tracer())
            t->instant("plan.fallback", s,
                       static_cast<uint64_t>(std::llround(plan_ns)),
                       static_cast<uint64_t>(
                           std::llround(fallback_ns)));
        eng.notePlanFallback(ops.size());
        runShardSerial(s, ops);
        return;
    }
    if (auto *t = obs::tracer())
        t->instant("plan.commit", s,
                   static_cast<uint64_t>(std::llround(plan_ns)),
                   static_cast<uint64_t>(std::llround(fallback_ns)));

    // Deterministic plane order: ascending (digit, k). Each plane
    // lands in its persistent mask row so its cached program key is
    // stable across epochs.
    std::sort(sc.touched.begin(), sc.touched.end());
    sc.steps.clear();
    for (const uint32_t idx : sc.touched)
        sc.steps.push_back({static_cast<unsigned>(idx / (R - 1)),
                            static_cast<unsigned>(idx % (R - 1)) + 1,
                            planeHandle(idx), &sc.planes[idx]});
    eng.accumulatePlan(sc.steps, group, ops.size());
}

void
ShardedEngine::accumulateBatch(std::span<const BatchOp> ops)
{
    std::vector<std::vector<BatchOp>> buckets(numShards());
    for (const auto &op : ops)
        buckets[shardOf(op.counter)].push_back(op);
    for (unsigned s = 0; s < numShards(); ++s) {
        if (buckets[s].empty())
            continue;
        pool_.post(s, [this, s, bucket = std::move(buckets[s])] {
            runShardOps(s, bucket);
        });
    }
    pool_.drain();
}

void
ShardedEngine::accumulate(uint64_t value, unsigned mask_handle,
                          unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulate(value, mask_handle + reservedMasks_, group);
    });
}

void
ShardedEngine::accumulateSigned(int64_t value, unsigned mask_handle,
                                unsigned group)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle ",
               mask_handle);
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.accumulateSigned(value, mask_handle + reservedMasks_,
                             group);
    });
}

std::vector<int64_t>
ShardedEngine::readAllCounters(unsigned group)
{
    std::vector<int64_t> out(cfg_.numCounters);
    forEachShard([&](C2MEngine &eng, unsigned s) {
        const auto part = eng.readCounters(group);
        std::copy(part.begin(), part.end(),
                  out.begin() + static_cast<ptrdiff_t>(starts_[s]));
    });
    return out;
}

void
ShardedEngine::addCounters(unsigned dst_group, unsigned src_group)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.addCounters(dst_group, src_group);
    });
}

void
ShardedEngine::relu(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.relu(group); });
}

void
ShardedEngine::shiftLeft(unsigned group, unsigned spare_group,
                         unsigned amount)
{
    forEachShard([&](C2MEngine &eng, unsigned) {
        eng.shiftLeft(group, spare_group, amount);
    });
}

void
ShardedEngine::drain(unsigned group)
{
    forEachShard(
        [&](C2MEngine &eng, unsigned) { eng.drain(group); });
}

void
ShardedEngine::clear()
{
    forEachShard([&](C2MEngine &eng, unsigned) { eng.clear(); });
}

EngineStats
ShardedEngine::stats() const
{
    EngineStats merged;
    for (const auto &s : shards_)
        merged += s->stats();
    // fabric.fabricNs summed across shards is total fabric work;
    // the critical path is when the last shard finishes. operator+=
    // max-merged the per-shard serial times; DRAM shards additionally
    // share one rank, where tRRD/tFAW bound the aggregate command
    // issue rate no matter how many banks run (Sec. 7.2.1) — take
    // the tighter of the two bounds. NVM crossbars are independent
    // arrays with no rank window, so the per-shard max stands.
    if (cfg_.backend == BackendKind::Ambit ||
        cfg_.backend == BackendKind::Rca) {
        const double rank_floor =
            static_cast<double>(merged.fabric.commands()) *
            cfg_.dramTimings.issueIntervalNs(numShards());
        if (rank_floor > merged.fabricCriticalNs)
            merged.fabricCriticalNs = rank_floor;
    }
    return merged;
}

Histogram
countersToHistogram(ShardedEngine &engine, int64_t lo, int64_t hi,
                    unsigned group)
{
    const auto counts = engine.readAllCounters(group);
    return countersToHistogram(counts, lo, hi);
}

std::vector<int64_t>
replaySerial(const EngineConfig &cfg, std::span<const BatchOp> ops,
             unsigned group)
{
    C2MEngine eng(cfg);
    const unsigned h =
        eng.addMask(std::vector<uint8_t>(cfg.numCounters, 0));
    size_t current = std::numeric_limits<size_t>::max();
    for (const auto &op : ops) {
        if (op.counter != current) {
            std::vector<uint8_t> mask(cfg.numCounters, 0);
            mask[op.counter] = 1;
            eng.setMask(h, mask);
            current = op.counter;
        }
        if (op.value >= 0)
            eng.accumulate(static_cast<uint64_t>(op.value), h,
                           op.group);
        else
            eng.accumulateSigned(op.value, h, op.group);
    }
    return eng.readCounters(group);
}

Histogram
countersToHistogram(std::span<const int64_t> counters, int64_t lo,
                    int64_t hi)
{
    Histogram h(lo, hi);
    for (size_t i = 0; i < counters.size(); ++i)
        if (counters[i] > 0)
            h.add(static_cast<int64_t>(i),
                  static_cast<uint64_t>(counters[i]));
    return h;
}

} // namespace core
} // namespace c2m
