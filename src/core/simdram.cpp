#include "core/simdram.hpp"

#include "common/logging.hpp"
#include "dram/subarray.hpp"

namespace c2m {
namespace core {

using cim::RowRef;
using cim::RowSet;

SimdramEngine::SimdramEngine(const SimdramConfig &cfg)
    : cfg_(cfg),
      maskBase_(0),
      sub_(1, 1) // placeholder, rebuilt below
{
    C2M_ASSERT(cfg.accBits >= 1 && cfg.accBits <= 64,
               "accumulator width out of range");
    unsigned base = 0;
    for (unsigned r = 0; r < replicas(); ++r) {
        uprog::RcaLayout l;
        l.width = cfg.accBits;
        l.baseRow = base;
        layouts_.push_back(l);
        base = l.endRow();
    }
    maskBase_ = base;

    uprog::RcaCodegen::Options opts;
    opts.protect = cfg.protection == RcaProtection::Ecc;
    for (const auto &l : layouts_)
        codegen_.emplace_back(l, opts);

    sub_ = cim::AmbitSubarray(maskBase_ + cfg.maxMaskRows,
                              cfg.numElements,
                              cim::FaultModel::cimRate(cfg.faultRate),
                              cfg.seed);
    clear();
}

unsigned
SimdramEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows, "mask rows exhausted");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
SimdramEngine::setMask(unsigned handle,
                       const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle");
    sub_.hostWriteRow(maskBase_ + handle,
                      dram::maskRow(mask, cfg_.numElements));
}

void
SimdramEngine::clear()
{
    for (unsigned r = 0; r < replicas(); ++r)
        sub_.run(codegen_[r].clearAccumulators());
}

void
SimdramEngine::runChecked(const uprog::CheckedProgram &prog)
{
    for (const auto &block : prog.blocks) {
        unsigned attempt = 0;
        for (;;) {
            sub_.run(block.prog);
            if (block.checks.empty())
                break;
            bool mismatch = false;
            for (const auto &chk : block.checks) {
                ++stats_.checksRun;
                C2M_ASSERT(chk.mode == uprog::FrCheck::Mode::EqualRows,
                           "RCA protection uses duplicate compare");
                if (sub_.hostReadRow(chk.frRow) !=
                    sub_.hostReadRow(chk.rowA))
                    mismatch = true;
            }
            if (!mismatch)
                break;
            ++stats_.faultsDetected;
            if (attempt++ >= cfg_.maxRetries) {
                ++stats_.uncorrectedBlocks;
                break;
            }
            ++stats_.retries;
        }
    }
}

void
SimdramEngine::voteAll()
{
    for (unsigned b = 0; b < cfg_.accBits; ++b) {
        cim::AmbitProgram p;
        p.aap(RowRef::data(layouts_[0].bitRow(b)), RowRef::t(0));
        p.aap(RowRef::data(layouts_[1].bitRow(b)), RowRef::t(1));
        p.aap(RowRef::data(layouts_[2].bitRow(b)), RowRef::t(2));
        p.aap(RowSet::b12(),
              RowSet{RowRef::data(layouts_[0].bitRow(b)),
                     RowRef::data(layouts_[1].bitRow(b)),
                     RowRef::data(layouts_[2].bitRow(b))});
        sub_.run(p);
        stats_.voteOps += p.size();
    }
}

void
SimdramEngine::accumulate(uint64_t value, unsigned mask_handle)
{
    C2M_ASSERT(mask_handle < numMasks_, "unknown mask handle");
    const unsigned mask_row = maskBase_ + mask_handle;
    if (cfg_.accBits < 64)
        value &= (1ULL << cfg_.accBits) - 1;
    // Note: unlike Count2Multiply, the RCA baseline cannot skip zero
    // inputs -- the carry chain must still be resolved; we keep the
    // full-width ripple even for value 0, matching SIMDRAM.
    for (unsigned r = 0; r < replicas(); ++r)
        runChecked(codegen_[r].maskedAccumulate(value, mask_row));
    if (cfg_.protection == RcaProtection::Tmr)
        voteAll();
    ++stats_.accumulates;
}

void
SimdramEngine::accumulateSigned(int64_t value, unsigned mask_handle)
{
    uint64_t v = static_cast<uint64_t>(value);
    if (cfg_.accBits < 64)
        v &= (1ULL << cfg_.accBits) - 1;
    accumulate(v, mask_handle);
}

std::vector<uint64_t>
SimdramEngine::read()
{
    std::vector<BitVector> rows;
    rows.reserve(cfg_.accBits);
    for (unsigned b = 0; b < cfg_.accBits; ++b)
        rows.push_back(sub_.hostReadRow(layouts_[0].bitRow(b)));
    return dram::transposeFromRows(rows, cfg_.numElements);
}

std::vector<int64_t>
SimdramEngine::readSigned()
{
    const auto raw = read();
    std::vector<int64_t> out(raw.size());
    const unsigned W = cfg_.accBits;
    for (size_t i = 0; i < raw.size(); ++i) {
        uint64_t v = raw[i];
        if (W < 64 && (v >> (W - 1)) & 1)
            v |= ~((1ULL << W) - 1); // sign-extend
        out[i] = static_cast<int64_t>(v);
    }
    return out;
}

} // namespace core
} // namespace c2m
