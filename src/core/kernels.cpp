#include "core/kernels.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace core {

std::vector<int64_t>
refGemvBinary(const std::vector<uint64_t> &x,
              const std::vector<std::vector<uint8_t>> &Z)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    C2M_ASSERT(!Z.empty(), "empty matrix");
    std::vector<int64_t> y(Z[0].size(), 0);
    for (size_t i = 0; i < x.size(); ++i)
        for (size_t j = 0; j < y.size(); ++j)
            if (Z[i][j])
                y[j] += static_cast<int64_t>(x[i]);
    return y;
}

std::vector<int64_t>
refGemvTernary(const std::vector<int64_t> &x,
               const std::vector<std::vector<int8_t>> &Z)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    C2M_ASSERT(!Z.empty(), "empty matrix");
    std::vector<int64_t> y(Z[0].size(), 0);
    for (size_t i = 0; i < x.size(); ++i)
        for (size_t j = 0; j < y.size(); ++j)
            y[j] += x[i] * Z[i][j];
    return y;
}

std::vector<int64_t>
refGemvInt(const std::vector<int64_t> &x,
           const std::vector<std::vector<int64_t>> &Z)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    C2M_ASSERT(!Z.empty(), "empty matrix");
    std::vector<int64_t> y(Z[0].size(), 0);
    for (size_t i = 0; i < x.size(); ++i)
        for (size_t j = 0; j < y.size(); ++j)
            y[j] += x[i] * Z[i][j];
    return y;
}

std::vector<std::vector<int64_t>>
refGemmTernary(const std::vector<std::vector<int64_t>> &X,
               const std::vector<std::vector<int8_t>> &Z)
{
    std::vector<std::vector<int64_t>> Y;
    Y.reserve(X.size());
    for (const auto &row : X)
        Y.push_back(refGemvTernary(row, Z));
    return Y;
}

std::vector<int64_t>
gemvIntBinary(C2MEngine &engine, const std::vector<uint64_t> &x,
              const std::vector<std::vector<uint8_t>> &Z)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    std::vector<unsigned> handles;
    handles.reserve(Z.size());
    for (const auto &row : Z)
        handles.push_back(engine.addMask(row));
    for (size_t i = 0; i < x.size(); ++i)
        engine.accumulate(x[i], handles[i]);
    return engine.readCounters(0);
}

namespace {

/** Register the +1 and -1 mask planes of a ternary matrix. */
void
addTernaryMasks(C2MEngine &engine,
                const std::vector<std::vector<int8_t>> &Z,
                std::vector<unsigned> &plus,
                std::vector<unsigned> &minus)
{
    for (const auto &row : Z) {
        std::vector<uint8_t> p(row.size()), m(row.size());
        for (size_t j = 0; j < row.size(); ++j) {
            p[j] = row[j] > 0;
            m[j] = row[j] < 0;
        }
        plus.push_back(engine.addMask(p));
        minus.push_back(engine.addMask(m));
    }
}

} // namespace

std::vector<int64_t>
gemvIntTernary(C2MEngine &engine, const std::vector<int64_t> &x,
               const std::vector<std::vector<int8_t>> &Z)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    C2M_ASSERT(engine.config().numGroups >= 2,
               "ternary kernel needs two counter groups (dual rail)");

    std::vector<unsigned> plus, minus;
    addTernaryMasks(engine, Z, plus, minus);

    for (size_t i = 0; i < x.size(); ++i) {
        if (x[i] == 0)
            continue;
        const uint64_t mag =
            static_cast<uint64_t>(x[i] < 0 ? -x[i] : x[i]);
        // x * (+1) goes to the positive rail unless x is negative.
        const unsigned pos_rail = x[i] > 0 ? 0 : 1;
        engine.accumulate(mag, plus[i], pos_rail);
        engine.accumulate(mag, minus[i], 1 - pos_rail);
    }

    const auto p = engine.readCounters(0);
    const auto m = engine.readCounters(1);
    std::vector<int64_t> y(p.size());
    for (size_t j = 0; j < y.size(); ++j)
        y[j] = p[j] - m[j];
    return y;
}

std::vector<std::vector<int64_t>>
gemmIntTernary(C2MEngine &engine,
               const std::vector<std::vector<int64_t>> &X,
               const std::vector<std::vector<int8_t>> &Z)
{
    C2M_ASSERT(!X.empty(), "empty input matrix");
    C2M_ASSERT(engine.config().numGroups >= 2,
               "ternary kernel needs two counter groups");

    std::vector<unsigned> plus, minus;
    addTernaryMasks(engine, Z, plus, minus);

    std::vector<std::vector<int64_t>> Y;
    Y.reserve(X.size());
    for (const auto &xrow : X) {
        C2M_ASSERT(xrow.size() == Z.size(),
                   "X columns must match rows of Z");
        for (size_t i = 0; i < xrow.size(); ++i) {
            if (xrow[i] == 0)
                continue;
            const uint64_t mag = static_cast<uint64_t>(
                xrow[i] < 0 ? -xrow[i] : xrow[i]);
            const unsigned pos_rail = xrow[i] > 0 ? 0 : 1;
            engine.accumulate(mag, plus[i], pos_rail);
            engine.accumulate(mag, minus[i], 1 - pos_rail);
        }
        const auto p = engine.readCounters(0);
        const auto m = engine.readCounters(1);
        std::vector<int64_t> y(p.size());
        for (size_t j = 0; j < y.size(); ++j)
            y[j] = p[j] - m[j];
        Y.push_back(std::move(y));
        engine.clear(); // counters reused for the next output row
    }
    return Y;
}

std::vector<int64_t>
simdramGemvTernary(SimdramEngine &engine,
                   const std::vector<int64_t> &x,
                   const std::vector<std::vector<int8_t>> &Z)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    std::vector<unsigned> plus, minus;
    for (const auto &row : Z) {
        std::vector<uint8_t> p(row.size()), m(row.size());
        for (size_t j = 0; j < row.size(); ++j) {
            p[j] = row[j] > 0;
            m[j] = row[j] < 0;
        }
        plus.push_back(engine.addMask(p));
        minus.push_back(engine.addMask(m));
    }
    for (size_t i = 0; i < x.size(); ++i) {
        // The RCA baseline cannot skip zeros: both planes are added
        // for every input element.
        engine.accumulateSigned(x[i], plus[i]);
        engine.accumulateSigned(-x[i], minus[i]);
    }
    return engine.readSigned();
}

} // namespace core
} // namespace c2m
