#ifndef C2M_CORE_BITSLICE_HPP
#define C2M_CORE_BITSLICE_HPP

/**
 * @file
 * Integer-integer matrix operations via CSD bit-slicing (Sec. 5.2.3).
 *
 * A p-bit integer matrix Z is decomposed into canonical-signed-digit
 * slices: for every power of two s, a (+) mask and a (-) mask hold
 * the elements whose CSD digit at weight 2^s is +1 / -1. The host
 * scales the streamed input by 2^s (a shift -- no multiplier needed)
 * and accumulates onto the same counters, dual-rail for sign.
 */

#include <cstdint>
#include <vector>

#include "core/engine.hpp"

namespace c2m {
namespace core {

/**
 * y = x . Z with integer Z, via CSD slicing. The engine needs
 * numGroups >= 2 and maxMaskRows >= 2 * slices(zBits); mask rows are
 * rewritten per input row of Z, so K can exceed maxMaskRows.
 *
 * @param z_bits Magnitude bits of Z's elements (|z| < 2^z_bits).
 */
std::vector<int64_t> gemvIntIntCsd(
    C2MEngine &engine, const std::vector<int64_t> &x,
    const std::vector<std::vector<int64_t>> &Z, unsigned z_bits);

/** Number of CSD slices needed for magnitudes below 2^z_bits. */
unsigned csdSlices(unsigned z_bits);

} // namespace core
} // namespace c2m

#endif // C2M_CORE_BITSLICE_HPP
