#ifndef C2M_CORE_BACKEND_AMBIT_HPP
#define C2M_CORE_BACKEND_AMBIT_HPP

/**
 * @file
 * Ambit DRAM implementation of the counting backend (Sec. 4-6).
 *
 * The reference substrate: Johnson counters over triple-row
 * activation, the full protection stack (XOR-embedded FR checks with
 * retry, TMR with in-fabric MAJ3 voting) and the row-level logic the
 * tensor ops build on. Wraps the existing AmbitCodegen generators and
 * the bit-accurate AmbitSubarray interpreter behind the interface;
 * generated CheckedPrograms are replayed from the program cache.
 */

#include "cim/ambit.hpp"
#include "core/backend.hpp"
#include "uprog/codegen_ambit.hpp"
#include "uprog/microop.hpp"
#include "uprog/progcache.hpp"

namespace c2m {
namespace core {

class AmbitBackend final : public CountingBackend
{
  public:
    AmbitBackend(const EngineConfig &cfg, unsigned physical_groups,
                 EngineStats &stats);

    BackendKind kind() const override { return BackendKind::Ambit; }
    unsigned numDigits() const override
    {
        return layouts_[0].numDigits();
    }

    unsigned maskRow(unsigned handle) const override;
    void writeMask(unsigned handle, const BitVector &row) override;

    void karyIncrement(unsigned phys, unsigned digit, unsigned k,
                       unsigned mask_row) override;
    void karyDecrement(unsigned phys, unsigned digit, unsigned k,
                       unsigned mask_row) override;
    void carryRipple(unsigned phys, unsigned digit) override;
    void borrowRipple(unsigned phys, unsigned digit) override;
    bool anyPending(unsigned phys, unsigned digit) override;
    void foldTopBorrowIntoSign(unsigned phys) override;
    void voteDigit(const std::array<unsigned, 3> &phys,
                   unsigned digit) override;

    std::vector<int64_t> readCounters(unsigned phys) override;
    std::vector<unsigned> readDigit(unsigned phys,
                                    unsigned digit) override;
    void clearCounters() override;

    cim::OpStats opStats() const override { return sub_.stats(); }
    cim::OpStats &opStatsRef() override { return sub_.stats(); }
    const BitVector &scrubReadRow(unsigned row) override;
    void scrubWriteRow(unsigned row, const BitVector &v) override;
    bool setFrChecks(unsigned fr_checks) override;

    const jc::CounterLayout &layout(unsigned phys) const override;
    void rowCopy(unsigned src, unsigned dst) override;
    void rowOr(unsigned a, unsigned b, unsigned dst) override;
    void rowAndNot(unsigned a, unsigned b, unsigned dst) override;
    void rowClear(unsigned row) override;
    void relu(unsigned phys) override;
    void copyCounters(unsigned from_phys, unsigned to_phys) override;

    /** The underlying fabric simulator (white-box tests, op stats). */
    cim::AmbitSubarray &subarray() { return sub_; }

  private:
    void runChecked(const uprog::CheckedProgram &prog);
    void voteRows(const std::vector<unsigned> &rows);

    size_t numCounters_;
    unsigned maxRetries_;
    std::vector<jc::CounterLayout> layouts_;
    uprog::CodegenOptions copts_;
    std::vector<uprog::AmbitCodegen> codegen_;
    unsigned maskBase_;
    cim::AmbitSubarray sub_;
    uprog::ProgramCache<uprog::CheckedProgram> cache_;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_BACKEND_AMBIT_HPP
