#ifndef C2M_CORE_BACKEND_RCA_HPP
#define C2M_CORE_BACKEND_RCA_HPP

/**
 * @file
 * SIMDRAM-style ripple-carry implementation of the counting backend
 * (Sec. 3, Sec. 7.1).
 *
 * Counters are vertical W-bit two's-complement binary accumulators; a
 * masked k-ary update of digit d becomes a full-width masked add of
 * k * radix^d (its two's complement for decrements), rippling a
 * MAJ3 full adder through all W bit positions regardless of the
 * addend's magnitude — the cost the paper's high-radix counting
 * removes. Because every update resolves its carries in place there
 * are no pending flags: ripple requests are no-ops and the engine
 * skips IARM scheduling (caps().pendingFlags == false). W is sized so
 * the signed range covers the Johnson-counter modulus radix^D of an
 * equally-configured JC backend, making cross-backend readouts
 * bit-identical in range. Protection: duplicate-compute-and-compare
 * ECC per MAJ3 step (caps().eccChecks).
 */

#include "cim/ambit.hpp"
#include "core/backend.hpp"
#include "uprog/codegen_rca.hpp"
#include "uprog/progcache.hpp"

namespace c2m {
namespace core {

class RcaBackend final : public CountingBackend
{
  public:
    RcaBackend(const EngineConfig &cfg, unsigned physical_groups,
               EngineStats &stats);

    BackendKind kind() const override { return BackendKind::Rca; }
    unsigned numDigits() const override { return numDigits_; }
    /** Accumulator width W in bits. */
    unsigned width() const { return width_; }

    unsigned maskRow(unsigned handle) const override;
    void writeMask(unsigned handle, const BitVector &row) override;

    void karyIncrement(unsigned phys, unsigned digit, unsigned k,
                       unsigned mask_row) override;
    void karyDecrement(unsigned phys, unsigned digit, unsigned k,
                       unsigned mask_row) override;
    void carryRipple(unsigned phys, unsigned digit) override;
    void borrowRipple(unsigned phys, unsigned digit) override;
    bool anyPending(unsigned phys, unsigned digit) override;
    void foldTopBorrowIntoSign(unsigned phys) override;

    std::vector<int64_t> readCounters(unsigned phys) override;
    std::vector<unsigned> readDigit(unsigned phys,
                                    unsigned digit) override;
    void clearCounters() override;

    cim::OpStats opStats() const override { return sub_.stats(); }
    cim::OpStats &opStatsRef() override { return sub_.stats(); }

    /** The underlying fabric simulator (white-box tests, op stats). */
    cim::AmbitSubarray &subarray() { return sub_; }

  private:
    void runChecked(const uprog::CheckedProgram &prog);
    void maskedAdd(unsigned phys, uint64_t addend, unsigned mask_row,
                   uprog::ProgramKey key);
    std::vector<uint64_t> readRaw(unsigned phys);

    size_t numCounters_;
    unsigned maxRetries_;
    unsigned radix_;
    unsigned numDigits_;
    unsigned width_;
    uint64_t widthMask_;
    std::vector<uint64_t> digitWeight_; ///< radix^d mod 2^W
    std::vector<uprog::RcaLayout> layouts_;
    std::vector<uprog::RcaCodegen> codegen_;
    unsigned maskBase_;
    cim::AmbitSubarray sub_;
    uprog::ProgramCache<uprog::CheckedProgram> cache_;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_BACKEND_RCA_HPP
