#ifndef C2M_CORE_KERNELS_HPP
#define C2M_CORE_KERNELS_HPP

/**
 * @file
 * Kernels accelerated by Count2Multiply (Sec. 5.2) plus plain host
 * reference implementations the functional engines are verified
 * against.
 *
 * Vector-matrix multiplication is reinterpreted as masked matrix
 * accumulation: y = sum_i x_i * Z_i with the rows Z_i of the
 * stationary matrix stored as counting masks (Fig. 1a). Ternary
 * matrices use two mask planes (+1/-1) with dual-rail counters.
 */

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/simdram.hpp"

namespace c2m {
namespace core {

// ---- Host references ----

/** y_j = sum_i x_i * Z[i][j], Z binary (K rows of N). */
std::vector<int64_t> refGemvBinary(
    const std::vector<uint64_t> &x,
    const std::vector<std::vector<uint8_t>> &Z);

/** Ternary Z in {-1, 0, +1}. */
std::vector<int64_t> refGemvTernary(
    const std::vector<int64_t> &x,
    const std::vector<std::vector<int8_t>> &Z);

/** Integer Z. */
std::vector<int64_t> refGemvInt(
    const std::vector<int64_t> &x,
    const std::vector<std::vector<int64_t>> &Z);

/** Y = X.Z with ternary Z; X is M x K, result M x N. */
std::vector<std::vector<int64_t>> refGemmTernary(
    const std::vector<std::vector<int64_t>> &X,
    const std::vector<std::vector<int8_t>> &Z);

// ---- Count2Multiply engine kernels ----

/**
 * Integer-vector x binary-matrix product on a fresh engine (masks are
 * added by the call; engine needs maxMaskRows >= K and numCounters
 * >= N).
 */
std::vector<int64_t> gemvIntBinary(
    C2MEngine &engine, const std::vector<uint64_t> &x,
    const std::vector<std::vector<uint8_t>> &Z);

/**
 * Integer-vector x ternary-matrix product, dual rail: group 0
 * accumulates +1 contributions, group 1 accumulates -1 contributions
 * (engine needs numGroups >= 2, maxMaskRows >= 2K).
 */
std::vector<int64_t> gemvIntTernary(
    C2MEngine &engine, const std::vector<int64_t> &x,
    const std::vector<std::vector<int8_t>> &Z);

/**
 * Integer-matrix x ternary-matrix product: rows of Y computed
 * sequentially, reusing the stationary masks (Sec. 5.2.2).
 */
std::vector<std::vector<int64_t>> gemmIntTernary(
    C2MEngine &engine, const std::vector<std::vector<int64_t>> &X,
    const std::vector<std::vector<int8_t>> &Z);

// ---- SIMDRAM baseline kernels ----

/** Ternary GEMV on the RCA engine (two's-complement masked adds). */
std::vector<int64_t> simdramGemvTernary(
    SimdramEngine &engine, const std::vector<int64_t> &x,
    const std::vector<std::vector<int8_t>> &Z);

} // namespace core
} // namespace c2m

#endif // C2M_CORE_KERNELS_HPP
