#include "core/bitslice.hpp"

#include "common/logging.hpp"
#include "jc/digits.hpp"

namespace c2m {
namespace core {

unsigned
csdSlices(unsigned z_bits)
{
    // CSD of a value below 2^b has at most b+1 digits.
    return z_bits + 1;
}

std::vector<int64_t>
gemvIntIntCsd(C2MEngine &engine, const std::vector<int64_t> &x,
              const std::vector<std::vector<int64_t>> &Z,
              unsigned z_bits)
{
    C2M_ASSERT(x.size() == Z.size(), "x length must match rows of Z");
    C2M_ASSERT(!Z.empty(), "empty matrix");
    C2M_ASSERT(engine.config().numGroups >= 2,
               "CSD kernel needs two counter groups");

    const unsigned slices = csdSlices(z_bits);
    const size_t N = Z[0].size();

    // Allocate 2*slices reusable mask rows (plus/minus per power).
    std::vector<unsigned> plus(slices), minus(slices);
    {
        std::vector<uint8_t> zero(N, 0);
        for (unsigned s = 0; s < slices; ++s) {
            plus[s] = engine.addMask(zero);
            minus[s] = engine.addMask(zero);
        }
    }

    for (size_t i = 0; i < x.size(); ++i) {
        if (x[i] == 0)
            continue;

        // Build this row's CSD slice masks.
        std::vector<std::vector<uint8_t>> pm(slices,
                                             std::vector<uint8_t>(N)),
            mm(slices, std::vector<uint8_t>(N));
        bool any = false;
        for (size_t j = 0; j < N; ++j) {
            const auto csd = jc::toCsd(Z[i][j]);
            C2M_ASSERT(csd.size() <= slices, "z element exceeds ",
                       z_bits, " magnitude bits");
            for (size_t s = 0; s < csd.size(); ++s) {
                if (csd[s] > 0) {
                    pm[s][j] = 1;
                    any = true;
                } else if (csd[s] < 0) {
                    mm[s][j] = 1;
                    any = true;
                }
            }
        }
        if (!any)
            continue;

        const uint64_t mag =
            static_cast<uint64_t>(x[i] < 0 ? -x[i] : x[i]);
        const unsigned pos_rail = x[i] > 0 ? 0 : 1;

        for (unsigned s = 0; s < slices; ++s) {
            engine.setMask(plus[s], pm[s]);
            engine.setMask(minus[s], mm[s]);
            // Scale by 2^s on the host: shifts only, no multiplier.
            engine.accumulate(mag << s, plus[s], pos_rail);
            engine.accumulate(mag << s, minus[s], 1 - pos_rail);
        }
    }

    const auto p = engine.readCounters(0);
    const auto m = engine.readCounters(1);
    std::vector<int64_t> y(N);
    for (size_t j = 0; j < N; ++j)
        y[j] = p[j] - m[j];
    return y;
}

} // namespace core
} // namespace c2m
