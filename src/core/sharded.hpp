#ifndef C2M_CORE_SHARDED_HPP
#define C2M_CORE_SHARDED_HPP

/**
 * @file
 * Sharded batch counting engine.
 *
 * A ShardedEngine owns N independent C2MEngine shards. The logical
 * counter space [0, numCounters) is split into N contiguous column
 * ranges; each shard simulates only its own (narrower) Ambit
 * subarray, with its own RNG stream derived from EngineConfig::seed
 * and its own EngineStats. Shards share no mutable state, so a batch
 * executes with no locks on the hot path: ops are bucketed per shard
 * on the host, and each shard's bucket runs FIFO on a fixed
 * ThreadPool lane.
 *
 * Two ingest paths:
 *  - accumulateBatch(): histogram-style point updates, each routed to
 *    the single shard owning the target counter. Because that shard's
 *    subarray holds only 1/N of the columns, every row operation the
 *    update expands into touches 1/N of the bits — the batch gets
 *    faster per op as shards are added even on one core, and shards
 *    run concurrently on top of that.
 *  - accumulate()/accumulateSigned() with a mask handle: the classic
 *    broadcast path. Masks registered through addMask() are sliced
 *    column-wise across shards, and the increment fans out to all
 *    shards in parallel.
 *
 * Digit-plane drain planner (EngineConfig::drainPlanner, default on):
 * a shard bucket of point updates is not replayed one op at a time —
 * the planner sums each counter's delta, decomposes the sums into
 * radix-R digits, and for every populated (digit position d, digit
 * value k) builds ONE shared plane mask covering all counters whose
 * delta has digit k at position d. Each plane costs a single masked
 * karyIncrement, so a bucket of N ops executes in at most D*(R-1)
 * column-parallel fabric programs per group (Fig. 15) instead of N
 * whole-row program sequences. Each plane lives in a persistent
 * reserved mask row of its own, so cached increment programs keep
 * stable keys and replay across epochs. Signed-mode groups, buckets
 * containing negative deltas, Unit counting, and buckets whose
 * modeled fabric cost (C2mCostModel command counts priced by
 * DramTimings) does not beat per-op replay fall back to the serial
 * path; either path yields bit-identical counter values.
 *
 * Hierarchical (global-then-sliced) planning — runEpoch(): draining
 * one bucket per shard through runShardOps replicates every plane
 * program N times, which makes plan fabric time exactly linear in
 * shard count. runEpoch instead runs the classic radix-count stage
 * split over ALL buckets of an epoch:
 *
 *   1. combine — per shard (parallel, host-only): partition the
 *      bucket by group and sum each counter's delta;
 *   2. count — per shard (same pass): decompose the sums into one
 *      per-(digit, k) plane histogram;
 *   3. scan/offset — host-serial: merge the per-shard histograms
 *      into ONE global plan per group, price plan-vs-fallback on the
 *      merged plan, and slice it back: for every (digit, k) plane
 *      the lowest shard holding it becomes the gang LEADER that
 *      issues the plane program (FabricCat::Plan); the other shards
 *      execute the identical command stream in the leader's issue
 *      slots as FOLLOWERS (FabricCat::PlanFanout, commands counted
 *      as ganged). Per-shard IARM preparation runs here, host-side,
 *      with the same per-shard worst profiles independent plans
 *      would use, so scheduler state is bit-identical either way;
 *   4. execute — per shard (parallel): each shard writes its own
 *      plane-mask slices (never ganged) and executes its slice of
 *      the merged plan.
 *
 * Ganged follower commands ride the leader's rank-window slots, so
 * stats() excludes them from the tFAW/tRRD rank floor: plan fabric
 * attribution becomes sublinear in shard count while the ledger
 * stays bit-exact (the fan-out cost is visible in its own row).
 *
 * Results are bit-identical to a single C2MEngine over the full
 * counter space on the same op stream (columns are independent in the
 * Ambit simulation), and independent of the thread count: per-shard
 * op order is fixed by the batch order, not by scheduling.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hpp"
#include "common/stats.hpp"
#include "core/engine.hpp"
#include "core/threadpool.hpp"

namespace c2m {
namespace core {

/** One histogram-style update, routed to the shard owning @p counter. */
struct BatchOp
{
    uint64_t counter;   ///< logical counter index in [0, numCounters)
    int64_t value;      ///< negative values take the signed path
    uint32_t group = 0; ///< counter group, as in C2MEngine
};

class ShardedEngine
{
  public:
    /**
     * @param cfg logical configuration; cfg.numCounters is the total
     *        counter count across all shards, cfg.seed the root seed
     *        from which per-shard streams are split.
     * @param num_shards shard count (>= 1, <= cfg.numCounters).
     * @param num_threads pool size; 0 means one thread per shard.
     */
    ShardedEngine(const EngineConfig &cfg, unsigned num_shards,
                  unsigned num_threads = 0);

    const EngineConfig &config() const { return cfg_; }
    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    size_t numCounters() const { return cfg_.numCounters; }

    C2MEngine &shard(unsigned s) { return *shards_[s]; }
    /** Shard owning logical counter @p counter. */
    unsigned shardOf(uint64_t counter) const;
    /** First logical counter of shard @p s. */
    size_t shardStart(unsigned s) const { return starts_[s]; }
    /** Column count of shard @p s. */
    size_t shardWidth(unsigned s) const
    {
        return starts_[s + 1] - starts_[s];
    }

    /**
     * Register a mask over the full logical counter space; each shard
     * receives its column slice. Returns a handle valid for the
     * broadcast accumulate()/accumulateSigned() calls.
     */
    unsigned addMask(const std::vector<uint8_t> &mask);
    unsigned numMasks() const { return numMasks_; }
    void setMask(unsigned handle, const std::vector<uint8_t> &mask);

    /** Execute a batch of point updates; returns when all are done. */
    void accumulateBatch(std::span<const BatchOp> ops);

    /**
     * One shard's coalesced ops for an epoch drain: at most one
     * bucket per shard, ops all owned by that shard. The spans must
     * stay valid for the duration of the runEpoch call.
     */
    struct EpochBucket
    {
        unsigned shard;
        std::span<const BatchOp> ops;
    };

    /**
     * Drain one epoch's buckets through the hierarchical radix-count
     * pipeline (see the file comment): parallel combine/count per
     * bucket, one merged scan/offset plan per group priced globally
     * and sliced back with gang-issue roles, then parallel sliced
     * execution. @p stealing selects the claim loop (any lane may
     * run any bucket's stage task) over pinned lanes; stolen
     * execute-stage tasks are added to @p steals_out when non-null.
     * Counter results are bit-identical to draining each bucket
     * through runShardOps, and to replaySerial on the concatenated
     * op stream.
     */
    void runEpoch(std::span<const EpochBucket> buckets, bool stealing,
                  uint64_t *steals_out = nullptr);

    /**
     * Execute a ready bucket of point updates, all owned by shard
     * @p s, on the calling thread in bucket order. This is the seam
     * the async ingest drainer schedules through: any thread may run
     * any shard's bucket (work stealing), but shards are strictly
     * single-writer — concurrent callers on one shard panic, and
     * per-shard op order is whatever order the buckets are run in.
     */
    void runShardOps(unsigned s, std::span<const BatchOp> ops);

    /**
     * Run an arbitrary task against shard @p s on the calling thread
     * under the same single-writer guard as runShardOps. This is the
     * scrub entry point: a reliability sweep may run on any lane (or
     * the drainer thread) while other shards keep executing, but two
     * writers inside one shard panic. @p fn receives the shard engine
     * and the shard's first logical counter index.
     */
    void runShardTask(
        unsigned s,
        const std::function<void(C2MEngine &, size_t)> &fn);

    /** The lane pool shard work is scheduled on (lane s = shard s). */
    ThreadPool &pool() { return pool_; }

    /** Broadcast @p value to masked counters on every shard. */
    void accumulate(uint64_t value, unsigned mask_handle,
                    unsigned group = 0);
    void accumulateSigned(int64_t value, unsigned mask_handle,
                          unsigned group = 0);

    /** Counter values over the full logical space, in logical order. */
    std::vector<int64_t> readAllCounters(unsigned group = 0);

    // ---- Tensor-style fan-out (each runs on all shards) ----
    void addCounters(unsigned dst_group, unsigned src_group);
    void relu(unsigned group);
    /**
     * counters <<= amount on every shard; @p spare_group is clobbered
     * as scratch (matches C2MEngine::shiftLeft).
     */
    void shiftLeft(unsigned group, unsigned spare_group,
                   unsigned amount);
    void drain(unsigned group);
    void clear();

    /** Per-shard stats merged with EngineStats::operator+=. */
    EngineStats stats() const;

  private:
    /** Internal mask handle reserved per shard for point updates. */
    static constexpr unsigned kPointMask = 0;
    /**
     * Shared overflow row for digit planes beyond the persistent
     * pool (deep-capacity configs only).
     */
    static constexpr unsigned kPlaneShared = 1;
    /** First handle of the persistent per-plane mask rows. */
    static constexpr unsigned kPlaneBase = 2;
    /** Upper bound on the persistent plane-row pool per shard. */
    static constexpr unsigned kMaxPlaneRows = 64;

    /**
     * One group's slice of a shard bucket, carried through the epoch
     * pipeline: stage 1/2 fill ops/sums-derived planes, stage 3
     * decides `planned` and fills steps/pre/post with gang roles,
     * stage 4 executes. Reused across epochs so the steady-state
     * drain path performs no per-op allocation (plane masks are
     * lazily sized once per part, D x (R-1) shard-width rows).
     */
    struct PlanPart
    {
        uint32_t group = 0;
        /**
         * Ops of this part: a view into the caller's bucket on the
         * single-group fast path, into `own` when a bucket had to be
         * partitioned by group.
         */
        std::span<const BatchOp> ops;
        std::vector<BatchOp> own; ///< backing store (multi-group)
        /** Plane masks, indexed digit * (R-1) + (k-1). */
        std::vector<BitVector> planes;
        std::vector<uint8_t> planeUsed; ///< build-pass dirty flags
        std::vector<uint32_t> touched;  ///< plane indices this plan
        std::vector<MaskedStep> steps;  ///< stage-3 sliced program
        std::vector<PlanRipple> pre;    ///< scheduled IARM ripples
        std::vector<PlanRipple> post;   ///< FullRipple post-pass
        /** Modeled ns of replaying this part's RAW ops per-op. */
        double fallbackNs = 0.0;
        /** Plan candidate after stage 2; final verdict after 3. */
        bool planned = false;
    };

    /**
     * Per-shard planner workspace. Reused across buckets so the
     * steady-state drain path performs no per-op allocation: the
     * point mask is updated two bits at a time, the delta accumulator
     * map and the part list keep their capacity between epochs.
     * Guarded by the shard's single-writer discipline like the
     * engine itself — except stage 3, which runs host-serial across
     * all shards of an epoch with no stage-1/4 task in flight.
     */
    struct PlannerScratch
    {
        BitVector pointMask; ///< reusable single-bit point mask
        size_t pointCol;     ///< column currently set in pointMask
        /** Coalesced per-counter delta sums of the current part. */
        std::unordered_map<uint64_t, size_t> index;
        std::vector<std::pair<size_t, int64_t>> sums;
        /** Group partition of this shard's bucket, parts[0..used). */
        std::vector<PlanPart> parts;
        size_t partsUsed = 0;
        /** Modeled ns to rewrite one of this shard's mask rows. */
        double maskWriteNs = 0.0;
    };

    /**
     * Pipeline stages 1+2 for one shard (host-only, no fabric work):
     * partition @p ops by group, then per part sum each counter's
     * delta, build the per-(digit, k) plane histogram and price the
     * per-op replay alternative. Caller holds the shard's
     * single-writer guard.
     */
    void prepareShardParts(unsigned s, std::span<const BatchOp> ops);
    /** Stage 2 for one part: delta sums, planes, fallback price. */
    void analyzePart(unsigned s, PlanPart &part);
    /**
     * Stage 3 (host-serial): for every distinct group across
     * @p shard_ids, price ONE merged plan (union of planes, leader
     * issue slots) against the summed per-part replay price, commit
     * or demote all candidate parts together, slice the plan back
     * per shard with gang-issue roles, and run each committed
     * shard's IARM preparation.
     */
    void planParts(std::span<const unsigned> shard_ids);
    /**
     * Stage 4 for one shard: execute each part's plan slice, or
     * replay it per-op, inside the shard.drain trace span. Caller
     * holds the shard's single-writer guard.
     */
    void execShardParts(unsigned s);
    /** Per-op replay of @p ops through the shard's point mask. */
    void runShardSerial(unsigned s, std::span<const BatchOp> ops);
    /**
     * Run @p fn once per bucket on the pool and drain: pinned to each
     * bucket's home lane, or through a work-stealing claim loop.
     */
    void forEachBucket(
        std::span<const EpochBucket> buckets, bool stealing,
        uint64_t *steals_out,
        const std::function<void(const EpochBucket &)> &fn);
    /** Run @p fn(shard) on every shard in parallel, then drain. */
    template <typename Fn> void forEachShard(Fn &&fn);

    /** Persistent mask-row handle of plane index @p idx. */
    unsigned planeHandle(size_t idx) const
    {
        return idx < planePool_
                   ? kPlaneBase + static_cast<unsigned>(idx)
                   : kPlaneShared;
    }

    EngineConfig cfg_;
    std::vector<size_t> starts_; ///< numShards+1 range boundaries
    std::vector<std::unique_ptr<C2MEngine>> shards_;
    std::vector<PlannerScratch> scratch_; ///< one per shard
    /** Single-writer guard per shard for the stealing path. */
    std::unique_ptr<std::atomic<bool>[]> shardBusy_;
    unsigned numMasks_ = 0;
    /** Shard-internal handles reserved below the public ones. */
    unsigned reservedMasks_ = 0;
    /** Persistent plane rows per shard (D*(R-1), capped). */
    unsigned planePool_ = 0;
    /**
     * Modeled ns of one masked k-ary increment program, indexed by
     * k (entry 0 unused): C2mCostModel command counts (RcaCostModel
     * for the RCA backend) priced at the substrate's per-command ns.
     * Drives the merged plan-vs-fallback decision in planParts.
     */
    std::vector<double> planIncNs_;
    ThreadPool pool_;
};

/**
 * Read group @p group of @p engine into a Histogram over [lo, hi]:
 * counter i contributes its value as the count of sample i. Counters
 * outside [lo, hi] land in the under/overflow buckets; zero counters
 * are skipped.
 */
Histogram countersToHistogram(ShardedEngine &engine, int64_t lo,
                              int64_t hi, unsigned group = 0);

/** Same conversion from an already-read counter vector. */
Histogram countersToHistogram(std::span<const int64_t> counters,
                              int64_t lo, int64_t hi);

/**
 * Canonical blocking baseline: replay @p ops in order on one
 * C2MEngine over the full counter space, switching a single point
 * mask per target change. Sharded batches and the async ingest
 * service must produce counters bit-identical to this. Requires
 * cfg.maxMaskRows >= 1 (one mask row is used).
 */
std::vector<int64_t> replaySerial(const EngineConfig &cfg,
                                  std::span<const BatchOp> ops,
                                  unsigned group = 0);

template <typename Fn>
void
ShardedEngine::forEachShard(Fn &&fn)
{
    for (unsigned s = 0; s < numShards(); ++s)
        pool_.post(s, [this, s, &fn] { fn(*shards_[s], s); });
    pool_.drain();
}

} // namespace core
} // namespace c2m

#endif // C2M_CORE_SHARDED_HPP
