#ifndef C2M_CORE_GPU_MODEL_HPP
#define C2M_CORE_GPU_MODEL_HPP

/**
 * @file
 * Analytical RTX 3090 Ti baseline (Sec. 7.1).
 *
 * Substitution for the paper's measured GPU numbers (documented in
 * DESIGN.md): a two-regime roofline. GEMV is memory-bandwidth bound
 * (the K x N weight matrix is streamed once), GEMM is tensor-core
 * bound; host-device transfer over PCIe 4.0 is modeled separately
 * and included where the paper includes it (Fig. 16). Dense GPU
 * kernels gain nothing from input sparsity, which is the behaviour
 * the sparsity sweep compares against.
 */

#include <cstddef>

namespace c2m {
namespace core {

struct GpuModel
{
    double memBwGBs = 1008.0;     ///< GDDR6X bandwidth
    double pcieGBs = 25.0;        ///< PCIe 4.0 x16 effective
    double tensorTops = 330.0;    ///< effective INT8 tensor throughput
    double tensorEfficiency = 0.72; ///< achieved fraction on GEMM
    double gemvPowerW = 280.0;
    double gemmPowerW = 420.0;
    double areaMm2 = 628.0;       ///< GA102 die

    struct Result
    {
        double kernelMs = 0.0;
        double transferMs = 0.0;
        double totalMs = 0.0;
        double gops = 0.0;          ///< kernel-only throughput
        double gopsWithTransfer = 0.0;
        double gopsPerWatt = 0.0;
        double gopsPerMm2 = 0.0;
    };

    /**
     * y = x . Z with an M x K input and K x N weights (1 B/element).
     * Dense execution: sparsity does not help the GPU.
     */
    Result run(size_t M, size_t N, size_t K) const;

    /** A counting run on the GPU, on the fabric-cost axis. */
    struct CountingCost
    {
        double ns = 0.0; ///< modeled kernel time
        double nj = 0.0; ///< modeled kernel energy
    };

    /**
     * Histogram-style counting of @p num_ops point updates into
     * @p num_counters bins (Fig. 14 comparison axis). Atomic
     * scatter-adds are memory-bandwidth bound: each op streams its
     * (index, value) pair and read-modify-writes one counter word,
     * so the model charges 16 B of DRAM traffic per op at GEMV
     * power (1 W = 1 nJ/ns). Comparable with EngineStats
     * fabric_ns/fabric_nj, see docs/perf.md.
     */
    CountingCost countingRun(size_t num_ops,
                             size_t num_counters) const;

    static GpuModel rtx3090ti() { return GpuModel{}; }
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_GPU_MODEL_HPP
