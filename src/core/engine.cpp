#include "core/engine.hpp"

#include "common/logging.hpp"
#include "dram/subarray.hpp"
#include "jc/digits.hpp"
#include "jc/johnson.hpp"

namespace c2m {
namespace core {

using cim::RowRef;
using cim::RowSet;

namespace {

std::vector<jc::CounterLayout>
buildLayouts(const EngineConfig &cfg, unsigned physical_groups)
{
    std::vector<jc::CounterLayout> layouts;
    unsigned base = 0;
    for (unsigned g = 0; g < physical_groups; ++g) {
        layouts.emplace_back(cfg.radix, cfg.capacityBits, base);
        base = layouts.back().endRow();
    }
    return layouts;
}

} // namespace

C2MEngine::C2MEngine(const EngineConfig &cfg)
    : cfg_(cfg),
      bitsPerDigit_(jc::bitsForRadix(cfg.radix)),
      layouts_(buildLayouts(cfg, cfg.numGroups *
                                     (cfg.protection == Protection::Tmr
                                          ? 3u
                                          : 1u))),
      maskBase_(layouts_.back().endRow()),
      sub_(maskBase_ + cfg.maxMaskRows, cfg.numCounters,
           cim::FaultModel::cimRate(cfg.faultRate), cfg.seed)
{
    C2M_ASSERT(cfg.numGroups >= 1, "need at least one counter group");
    C2M_ASSERT(!(cfg.protection == Protection::Ecc) ||
                   (cfg.frChecks >= 1 && cfg.frChecks <= 3),
               "frChecks must be in 1..3");

    uprog::CodegenOptions copts;
    copts.protect = cfg.protection == Protection::Ecc;
    copts.frChecks = cfg.frChecks;
    for (const auto &l : layouts_)
        codegen_.emplace_back(l, copts);

    for (unsigned g = 0; g < cfg.numGroups; ++g)
        schedulers_.emplace_back(cfg.radix, layouts_[0].numDigits());
    groupHasDecrements_.assign(cfg.numGroups, false);

    clear();
}

const jc::CounterLayout &
C2MEngine::layout(unsigned group) const
{
    return layouts_[physIndex(group, 0)];
}

unsigned
C2MEngine::physIndex(unsigned group, unsigned replica) const
{
    C2M_ASSERT(group < cfg_.numGroups && replica < replicas(),
               "group/replica out of range");
    return group * replicas() + replica;
}

unsigned
C2MEngine::maskRowIndex(unsigned handle) const
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    return maskBase_ + handle;
}

unsigned
C2MEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows,
               "mask rows exhausted; raise maxMaskRows");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
C2MEngine::setMask(unsigned handle, const std::vector<uint8_t> &mask)
{
    sub_.hostWriteRow(maskRowIndex(handle),
                      dram::maskRow(mask, cfg_.numCounters));
}

void
C2MEngine::clear()
{
    for (unsigned p = 0; p < layouts_.size(); ++p)
        sub_.run(codegen_[p].clearCounters());
    for (auto &s : schedulers_)
        s = jc::IarmScheduler(cfg_.radix, layouts_[0].numDigits());
    groupHasDecrements_.assign(cfg_.numGroups, false);
}

void
C2MEngine::runChecked(const uprog::CheckedProgram &prog)
{
    for (const auto &block : prog.blocks) {
        unsigned attempt = 0;
        for (;;) {
            sub_.run(block.prog);
            if (block.checks.empty())
                break;

            bool mismatch = false;
            for (const auto &chk : block.checks) {
                ++stats_.checksRun;
                const BitVector &fr = sub_.hostReadRow(chk.frRow);
                if (chk.mode == uprog::FrCheck::Mode::EqualRows) {
                    if (fr != sub_.hostReadRow(chk.rowA))
                        mismatch = true;
                    continue;
                }
                BitVector a(cfg_.numCounters);
                a.copyFrom(sub_.hostReadRow(chk.rowA));
                if (chk.aNeg)
                    a.invert();
                BitVector b(cfg_.numCounters);
                b.copyFrom(sub_.hostReadRow(chk.rowB));
                if (chk.bNeg)
                    b.invert();
                BitVector expect(cfg_.numCounters);
                expect.assignXor(a, b);
                if (fr != expect)
                    mismatch = true;
            }
            if (!mismatch)
                break;

            ++stats_.faultsDetected;
            if (attempt++ >= cfg_.maxRetries) {
                ++stats_.uncorrectedBlocks;
                break;
            }
            ++stats_.retries;
        }
    }
}

void
C2MEngine::voteRows(const std::vector<unsigned> &rows)
{
    C2M_ASSERT(rows.size() == 3, "vote needs three replica rows");
    cim::AmbitProgram p;
    p.aap(RowRef::data(rows[0]), RowRef::t(0));
    p.aap(RowRef::data(rows[1]), RowRef::t(1));
    p.aap(RowRef::data(rows[2]), RowRef::t(2));
    p.aap(RowSet::b12(), RowSet{RowRef::data(rows[0]),
                                RowRef::data(rows[1]),
                                RowRef::data(rows[2])});
    sub_.run(p);
    stats_.voteOps += p.size();
}

void
C2MEngine::voteDigit(unsigned group, unsigned digit)
{
    const unsigned n = bitsPerDigit_;
    for (unsigned i = 0; i <= n; ++i) {
        std::vector<unsigned> rows;
        for (unsigned r = 0; r < 3; ++r) {
            const auto &l = layouts_[physIndex(group, r)];
            rows.push_back(i < n ? l.bitRow(digit, i)
                                 : l.onextRow(digit));
        }
        voteRows(rows);
    }
}

void
C2MEngine::incrementDigit(unsigned group, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    for (unsigned r = 0; r < replicas(); ++r)
        runChecked(codegen_[physIndex(group, r)].karyIncrement(
            digit, k, mask_row));
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit);
    ++stats_.increments;
}

void
C2MEngine::decrementDigit(unsigned group, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    for (unsigned r = 0; r < replicas(); ++r)
        runChecked(codegen_[physIndex(group, r)].karyDecrement(
            digit, k, mask_row));
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit);
    ++stats_.increments;
}

void
C2MEngine::ripple(unsigned group, unsigned digit)
{
    for (unsigned r = 0; r < replicas(); ++r)
        runChecked(codegen_[physIndex(group, r)].carryRipple(digit));
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit + 1);
    ++stats_.ripples;
}

void
C2MEngine::accumulate(uint64_t value, unsigned mask_handle,
                      unsigned group)
{
    C2M_ASSERT(group < cfg_.numGroups, "group out of range");
    if (value == 0) {
        ++stats_.inputsAccumulated; // zero inputs are skipped entirely
        return;
    }
    const unsigned mask_row = maskRowIndex(mask_handle);
    const auto digits = jc::toDigits(value, cfg_.radix);
    C2M_ASSERT(digits.size() < layouts_[0].numDigits(),
               "value exceeds counter capacity");

    auto &sched = schedulers_[group];
    const bool signed_mode = groupHasDecrements_[group];

    if (!signed_mode) {
        for (unsigned d : sched.prepareAdd(digits))
            ripple(group, d);
        sched.applyAdd(digits);
    }

    for (unsigned pos = 0; pos < digits.size(); ++pos) {
        const unsigned k = digits[pos];
        if (k == 0)
            continue;
        if (cfg_.counting == CountMode::Kary) {
            incrementDigit(group, pos, k, mask_row);
        } else {
            for (unsigned u = 0; u < k; ++u)
                incrementDigit(group, pos, 1, mask_row);
        }
    }

    if (signed_mode) {
        // Signed groups keep Onext fully resolved so the flag's
        // meaning (overflow vs borrow) can switch per input.
        resolveAllPendings(group, /*borrows=*/false);
    } else if (cfg_.ripple == RippleMode::FullRipple) {
        // One unconditional ripple per digit boundary, highest first
        // so carries always land in a just-resolved digit.
        for (unsigned d : sched.fullPassDescending())
            ripple(group, d);
    }
    ++stats_.inputsAccumulated;
}

void
C2MEngine::accumulateSigned(int64_t value, unsigned mask_handle,
                            unsigned group)
{
    if (value >= 0) {
        accumulate(static_cast<uint64_t>(value), mask_handle, group);
        return;
    }

    // First decrement on this group: resolve outstanding overflows
    // (Sec. 4.4) and enter full-resolution signed mode.
    if (!groupHasDecrements_[group]) {
        drain(group);
        groupHasDecrements_[group] = true;
    }

    const unsigned mask_row = maskRowIndex(mask_handle);
    const auto digits =
        jc::toDigits(static_cast<uint64_t>(-value), cfg_.radix);
    C2M_ASSERT(digits.size() < layouts_[0].numDigits(),
               "value exceeds counter capacity");

    for (unsigned pos = 0; pos < digits.size(); ++pos) {
        if (digits[pos] == 0)
            continue;
        decrementDigit(group, pos, digits[pos], mask_row);
    }
    resolveAllPendings(group, /*borrows=*/true);
    ++stats_.inputsAccumulated;
}

void
C2MEngine::borrowRipple(unsigned group, unsigned digit)
{
    for (unsigned r = 0; r < replicas(); ++r)
        runChecked(codegen_[physIndex(group, r)].borrowRipple(digit));
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit + 1);
    ++stats_.ripples;
}

void
C2MEngine::resolveAllPendings(unsigned group, bool borrows)
{
    // Highest boundary first within a pass, so every carry/borrow
    // lands in a just-cleared digit (no flag is ever double-set);
    // each pass moves fresh pendings one digit up, so at most D
    // passes fully drain them into Osign.
    const unsigned D = layouts_[0].numDigits();
    const auto &l0 = layouts_[physIndex(group, 0)];
    for (unsigned pass = 0; pass < D; ++pass) {
        bool any = false;
        for (unsigned d = D - 1; d-- > 0;) {
            if (sub_.peekRow(l0.onextRow(d)).popcount() == 0)
                continue;
            any = true;
            if (borrows)
                borrowRipple(group, d);
            else
                ripple(group, d);
        }
        foldTopBorrowIntoSign(group);
        if (!any)
            break;
    }
}

void
C2MEngine::foldTopBorrowIntoSign(unsigned group)
{
    // Osign ^= Onext(top); Onext(top) <- 0. An overflow back across
    // zero cancels a pending sign, so XOR is the correct fold.
    for (unsigned r = 0; r < replicas(); ++r) {
        const auto &l = layouts_[physIndex(group, r)];
        const unsigned top = l.numDigits() - 1;
        cim::AmbitProgram p;
        const unsigned s0 = l.scratchRow(2);
        const unsigned s1 = l.scratchRow(3);
        uprog::AmbitCodegen::emitAndNot(p, l.osignRow(),
                                        l.onextRow(top), s0);
        uprog::AmbitCodegen::emitAndNot(p, l.onextRow(top),
                                        l.osignRow(), s1);
        uprog::AmbitCodegen::emitOr(p, s0, s1, l.osignRow());
        p.aap(RowRef::c0(), RowRef::data(l.onextRow(top)));
        sub_.run(p);
    }
}

void
C2MEngine::drain(unsigned group)
{
    for (unsigned d : schedulers_[group].drain())
        ripple(group, d);
}

std::vector<int64_t>
C2MEngine::readCounters(unsigned group)
{
    const auto &l = layouts_[physIndex(group, 0)];
    const unsigned n = bitsPerDigit_;
    const unsigned D = l.numDigits();
    const unsigned R = cfg_.radix;

    // Snapshot all rows once.
    std::vector<const BitVector *> bit_rows(D * n);
    std::vector<const BitVector *> onext_rows(D);
    for (unsigned dd = 0; dd < D; ++dd) {
        for (unsigned i = 0; i < n; ++i)
            bit_rows[dd * n + i] = &sub_.hostReadRow(l.bitRow(dd, i));
        onext_rows[dd] = &sub_.hostReadRow(l.onextRow(dd));
    }
    const BitVector &osign = sub_.hostReadRow(l.osignRow());

    __int128 modulus = 1;
    for (unsigned dd = 0; dd < D; ++dd)
        modulus *= R;

    std::vector<int64_t> out(cfg_.numCounters);
    for (size_t col = 0; col < cfg_.numCounters; ++col) {
        __int128 value = 0;
        __int128 weight = 1;
        for (unsigned dd = 0; dd < D; ++dd) {
            uint64_t bits = 0;
            for (unsigned i = 0; i < n; ++i)
                if (bit_rows[dd * n + i]->get(col))
                    bits |= 1ULL << i;
            int v = jc::decode(n, bits);
            if (v < 0) {
                ++stats_.invalidStates;
                v = static_cast<int>(jc::decodeNearest(n, bits));
            }
            __int128 digit_val = v;
            if (onext_rows[dd]->get(col))
                digit_val += R;
            value += digit_val * weight;
            weight *= R;
        }
        if (osign.get(col))
            value -= modulus;
        out[col] = static_cast<int64_t>(value);
    }
    return out;
}

void
C2MEngine::addCounters(unsigned dst_group, unsigned src_group)
{
    C2M_ASSERT(dst_group != src_group,
               "in-place doubling needs shiftLeft with a spare group");
    C2M_ASSERT(!groupHasDecrements_[src_group] &&
                   !groupHasDecrements_[dst_group],
               "vector addition requires unsigned-mode groups");
    drain(src_group);
    drain(dst_group);

    const auto &src = layouts_[physIndex(src_group, 0)];
    const auto &dst0 = layouts_[physIndex(dst_group, 0)];
    const unsigned n = bitsPerDigit_;
    const unsigned theta = dst0.scratchRow(2);
    const unsigned mrow = dst0.scratchRow(3);

    // The guard (top) digit of any in-capacity counter is zero, so
    // only the digits below it participate.
    for (unsigned dd = 0; dd + 1 < dst0.numDigits(); ++dd) {
        if (dd >= src.numDigits())
            break;
        // The digit receives at most R-1; create headroom through the
        // scheduler exactly like a broadcast add of R-1 would.
        std::vector<unsigned> worst(dd + 1, 0);
        worst[dd] = cfg_.radix - 1;
        for (unsigned d : schedulers_[dst_group].prepareAdd(worst))
            ripple(dst_group, d);
        schedulers_[dst_group].applyAdd(worst);
        // Theta <- src MSB; first pass uses mask = bit OR Theta from
        // the MSB down, second pass mask = Theta AND NOT bit from the
        // LSB up (Alg. 2 with Theta updated in both passes).
        cim::AmbitProgram init;
        uprog::AmbitCodegen::emitCopy(init, src.bitRow(dd, n - 1),
                                      theta);
        sub_.run(init);

        for (unsigned b = n; b-- > 0;) {
            cim::AmbitProgram mk;
            uprog::AmbitCodegen::emitOr(mk, src.bitRow(dd, b), theta,
                                        mrow);
            uprog::AmbitCodegen::emitCopy(mk, mrow, theta);
            sub_.run(mk);
            // Use the raw mask row (it is not a registered handle).
            for (unsigned r = 0; r < replicas(); ++r)
                runChecked(codegen_[physIndex(dst_group, r)]
                               .karyIncrement(dd, 1, mrow));
            if (cfg_.protection == Protection::Tmr)
                voteDigit(dst_group, dd);
            ++stats_.increments;
        }
        for (unsigned b = 0; b < n; ++b) {
            cim::AmbitProgram mk;
            uprog::AmbitCodegen::emitAndNot(mk, theta,
                                            src.bitRow(dd, b), mrow);
            uprog::AmbitCodegen::emitCopy(mk, mrow, theta);
            sub_.run(mk);
            for (unsigned r = 0; r < replicas(); ++r)
                runChecked(codegen_[physIndex(dst_group, r)]
                               .karyIncrement(dd, 1, mrow));
            if (cfg_.protection == Protection::Tmr)
                voteDigit(dst_group, dd);
            ++stats_.increments;
        }
        // The source digit's pending-overflow flags were drained
        // above, so none remain by construction.
    }
}

void
C2MEngine::relu(unsigned group)
{
    for (unsigned r = 0; r < replicas(); ++r) {
        const auto &l = layouts_[physIndex(group, r)];
        cim::AmbitProgram p;
        for (unsigned dd = 0; dd < l.numDigits(); ++dd) {
            for (unsigned i = 0; i < bitsPerDigit_; ++i)
                uprog::AmbitCodegen::emitAndNot(
                    p, l.bitRow(dd, i), l.osignRow(), l.bitRow(dd, i));
            uprog::AmbitCodegen::emitAndNot(
                p, l.onextRow(dd), l.osignRow(), l.onextRow(dd));
        }
        p.aap(RowRef::c0(), RowRef::data(l.osignRow()));
        sub_.run(p);
    }
}

void
C2MEngine::shiftLeft(unsigned group, unsigned spare_group,
                     unsigned amount)
{
    C2M_ASSERT(spare_group != group, "spare must differ from group");
    for (unsigned step = 0; step < amount; ++step) {
        drain(group);
        // spare <- group (row copies), then group += spare.
        for (unsigned r = 0; r < replicas(); ++r) {
            const auto &from = layouts_[physIndex(group, r)];
            const auto &to = layouts_[physIndex(spare_group, r)];
            cim::AmbitProgram p;
            for (unsigned dd = 0; dd < from.numDigits(); ++dd) {
                for (unsigned i = 0; i < bitsPerDigit_; ++i)
                    uprog::AmbitCodegen::emitCopy(
                        p, from.bitRow(dd, i), to.bitRow(dd, i));
                uprog::AmbitCodegen::emitCopy(p, from.onextRow(dd),
                                              to.onextRow(dd));
            }
            uprog::AmbitCodegen::emitCopy(p, from.osignRow(),
                                          to.osignRow());
            sub_.run(p);
        }
        schedulers_[spare_group] = schedulers_[group];
        addCounters(group, spare_group);
    }
}

} // namespace core
} // namespace c2m
