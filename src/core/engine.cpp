#include "core/engine.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/backend_ambit.hpp"
#include "core/backend_rca.hpp"
#include "dram/subarray.hpp"
#include "jc/digits.hpp"
#include "jc/johnson.hpp"

namespace c2m {
namespace core {

C2MEngine::C2MEngine(const EngineConfig &cfg)
    : cfg_(cfg),
      bitsPerDigit_(jc::bitsForRadix(cfg.radix)),
      backend_(makeBackend(
          cfg,
          cfg.numGroups *
              (cfg.protection == Protection::Tmr ? 3u : 1u),
          stats_))
{
    C2M_ASSERT(cfg.numGroups >= 1, "need at least one counter group");
    C2M_ASSERT(!(cfg.protection == Protection::Ecc) ||
                   (cfg.frChecks >= 1 && cfg.frChecks <= 3),
               "frChecks must be in 1..3");
    C2M_ASSERT(cfg.protection != Protection::Ecc ||
                   backend_->caps().eccChecks,
               backendName(cfg.backend),
               " backend does not support ECC protection");
    C2M_ASSERT(cfg.protection != Protection::Tmr ||
                   backend_->caps().tmrVoting,
               backendName(cfg.backend),
               " backend does not support TMR protection");

    for (unsigned g = 0; g < cfg.numGroups; ++g)
        schedulers_.emplace_back(cfg.radix, backend_->numDigits());
    groupHasDecrements_.assign(cfg.numGroups, false);

    clear();
}

C2MEngine::~C2MEngine() = default;

cim::AmbitSubarray &
C2MEngine::subarray()
{
    if (auto *ambit = dynamic_cast<AmbitBackend *>(backend_.get()))
        return ambit->subarray();
    if (auto *rca = dynamic_cast<RcaBackend *>(backend_.get()))
        return rca->subarray();
    C2M_PANIC(backendName(cfg_.backend),
              " backend is not a DRAM fabric; no subarray");
}

const jc::CounterLayout &
C2MEngine::layout(unsigned group) const
{
    return backend_->layout(physIndex(group, 0));
}

unsigned
C2MEngine::physIndex(unsigned group, unsigned replica) const
{
    C2M_ASSERT(group < cfg_.numGroups && replica < replicas(),
               "group/replica out of range");
    return group * replicas() + replica;
}

unsigned
C2MEngine::maskRowIndex(unsigned handle) const
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    return backend_->maskRow(handle);
}

unsigned
C2MEngine::addMask(const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(numMasks_ < cfg_.maxMaskRows,
               "mask rows exhausted; raise maxMaskRows");
    const unsigned handle = numMasks_++;
    setMask(handle, mask);
    return handle;
}

void
C2MEngine::setMask(unsigned handle, const std::vector<uint8_t> &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    cim::AttrScope attr(backend_->opStatsRef(),
                        cim::FabricCat::MaskWrite);
    backend_->writeMask(handle,
                        dram::maskRow(mask, cfg_.numCounters));
}

void
C2MEngine::setMask(unsigned handle, const BitVector &mask)
{
    C2M_ASSERT(handle < numMasks_, "unknown mask handle ", handle);
    C2M_ASSERT(mask.size() == cfg_.numCounters,
               "mask width mismatch");
    cim::AttrScope attr(backend_->opStatsRef(),
                        cim::FabricCat::MaskWrite);
    backend_->writeMask(handle, mask);
}

void
C2MEngine::clear()
{
    backend_->clearCounters();
    for (auto &s : schedulers_)
        s = jc::IarmScheduler(cfg_.radix, backend_->numDigits());
    groupHasDecrements_.assign(cfg_.numGroups, false);
}

void
C2MEngine::voteDigit(unsigned group, unsigned digit)
{
    backend_->voteDigit({physIndex(group, 0), physIndex(group, 1),
                         physIndex(group, 2)},
                        digit);
}

void
C2MEngine::incrementDigit(unsigned group, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    for (unsigned r = 0; r < replicas(); ++r)
        backend_->karyIncrement(physIndex(group, r), digit, k,
                                mask_row);
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit);
    ++stats_.increments;
}

void
C2MEngine::decrementDigit(unsigned group, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    for (unsigned r = 0; r < replicas(); ++r)
        backend_->karyDecrement(physIndex(group, r), digit, k,
                                mask_row);
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit);
    ++stats_.increments;
}

void
C2MEngine::ripple(unsigned group, unsigned digit)
{
    for (unsigned r = 0; r < replicas(); ++r)
        backend_->carryRipple(physIndex(group, r), digit);
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit + 1);
    ++stats_.ripples;
}

void
C2MEngine::borrowRipple(unsigned group, unsigned digit)
{
    for (unsigned r = 0; r < replicas(); ++r)
        backend_->borrowRipple(physIndex(group, r), digit);
    if (cfg_.protection == Protection::Tmr)
        voteDigit(group, digit + 1);
    ++stats_.ripples;
}

void
C2MEngine::accumulate(uint64_t value, unsigned mask_handle,
                      unsigned group)
{
    C2M_ASSERT(group < cfg_.numGroups, "group out of range");
    if (value == 0) {
        ++stats_.inputsAccumulated; // zero inputs are skipped entirely
        return;
    }
    const unsigned mask_row = maskRowIndex(mask_handle);
    const auto digits = jc::toDigits(value, cfg_.radix);
    C2M_ASSERT(digits.size() < backend_->numDigits(),
               "value exceeds counter capacity");

    const bool pending = backend_->caps().pendingFlags;
    auto &sched = schedulers_[group];
    const bool signed_mode = groupHasDecrements_[group];

    if (pending && !signed_mode) {
        for (unsigned d : sched.prepareAdd(digits))
            ripple(group, d);
        sched.applyAdd(digits);
    }

    for (unsigned pos = 0; pos < digits.size(); ++pos) {
        const unsigned k = digits[pos];
        if (k == 0)
            continue;
        if (cfg_.counting == CountMode::Kary) {
            incrementDigit(group, pos, k, mask_row);
        } else {
            for (unsigned u = 0; u < k; ++u)
                incrementDigit(group, pos, 1, mask_row);
        }
    }

    if (!pending) {
        // In-place carry substrates (RCA) resolve everything per add.
    } else if (signed_mode) {
        // Signed groups keep Onext fully resolved so the flag's
        // meaning (overflow vs borrow) can switch per input.
        resolveAllPendings(group, /*borrows=*/false);
    } else if (cfg_.ripple == RippleMode::FullRipple) {
        // One unconditional ripple per digit boundary, highest first
        // so carries always land in a just-resolved digit.
        for (unsigned d : sched.fullPassDescending())
            ripple(group, d);
    }
    ++stats_.inputsAccumulated;
}

void
C2MEngine::accumulatePlan(std::span<const MaskedStep> steps,
                          unsigned group, uint64_t folded_ops)
{
    std::vector<PlanRipple> pre, post;
    planPrepare(steps, group, pre, post);
    executePlan(steps, pre, post, group, folded_ops);
}

void
C2MEngine::planPrepare(std::span<const MaskedStep> steps,
                       unsigned group, std::vector<PlanRipple> &pre,
                       std::vector<PlanRipple> &post)
{
    C2M_ASSERT(group < cfg_.numGroups, "group out of range");
    C2M_ASSERT(cfg_.counting == CountMode::Kary,
               "drain plans require k-ary counting");
    C2M_ASSERT(!groupHasDecrements_[group],
               "drain plans require an unsigned-mode group");
    if (steps.empty())
        return; // every folded delta was zero

    // Worst-case digit profile: each counter receives at most one
    // step per digit position (its own delta digit), so max k per
    // position upper-bounds every real counter's addition and the
    // scheduler headroom it prepares is sound for the whole plan.
    // The profile is over THIS shard's planes only, so the scheduler
    // advances exactly as it would under an independent per-shard
    // plan — merged plans change who issues a ripple, never whether
    // it happens.
    std::vector<unsigned> worst;
    for (const auto &s : steps) {
        C2M_ASSERT(s.k >= 1 && s.k < cfg_.radix,
                   "plane step k out of range: ", s.k);
        C2M_ASSERT(s.mask != nullptr, "plane step without a mask");
        if (s.digit >= worst.size())
            worst.resize(s.digit + 1, 0);
        worst[s.digit] = std::max(worst[s.digit], s.k);
    }
    C2M_ASSERT(worst.size() < backend_->numDigits(),
               "planned delta exceeds counter capacity");

    if (!backend_->caps().pendingFlags)
        return;
    auto &sched = schedulers_[group];
    for (unsigned d : sched.prepareAdd(worst))
        pre.push_back({d, true});
    sched.applyAdd(worst);
    if (cfg_.ripple == RippleMode::FullRipple)
        for (unsigned d : sched.fullPassDescending())
            post.push_back({d, true});
}

void
C2MEngine::executePlan(std::span<const MaskedStep> steps,
                       std::span<const PlanRipple> pre,
                       std::span<const PlanRipple> post,
                       unsigned group, uint64_t folded_ops)
{
    ++stats_.plansExecuted;
    stats_.plannedOps += folded_ops;
    stats_.inputsAccumulated += folded_ops;
    if (steps.empty())
        return;

    cim::OpStats &fab = backend_->opStatsRef();
    cim::AttrScope attr(fab, cim::FabricCat::Plan);
    const auto gangRipple = [&](const PlanRipple &r) {
        if (r.lead) {
            ripple(group, r.digit);
            return;
        }
        cim::AttrScope fan(fab, cim::FabricCat::PlanFanout);
        const uint64_t c0 = fab.commands();
        ripple(group, r.digit);
        fab.gangedCommands += fab.commands() - c0;
    };

    for (const auto &r : pre)
        gangRipple(r);

    for (const auto &s : steps) {
        {
            // Mask rows hold per-shard plane slices, so the write is
            // never ganged: MaskWrite stays honestly per shard.
            cim::AttrScope mrow(fab, cim::FabricCat::MaskWrite);
            backend_->writeMask(s.maskHandle, *s.mask);
        }
        if (s.lead) {
            incrementDigit(group, s.digit, s.k,
                           maskRowIndex(s.maskHandle));
            ++stats_.planLeadPrograms;
        } else {
            // Follower slice: the identical command stream executes
            // in the lead shard's issue slots. ECC retries inside the
            // checked execution stay under this scope — a follower
            // retry is modeled as re-running in later gang slots.
            cim::AttrScope fan(fab, cim::FabricCat::PlanFanout);
            const uint64_t c0 = fab.commands();
            incrementDigit(group, s.digit, s.k,
                           maskRowIndex(s.maskHandle));
            fab.gangedCommands += fab.commands() - c0;
        }
        ++stats_.planPrograms;
    }

    for (const auto &r : post)
        gangRipple(r);
}

void
C2MEngine::accumulateSigned(int64_t value, unsigned mask_handle,
                            unsigned group)
{
    if (value >= 0) {
        accumulate(static_cast<uint64_t>(value), mask_handle, group);
        return;
    }
    C2M_ASSERT(backend_->caps().signedCounting,
               backendName(cfg_.backend),
               " backend does not support signed counting");

    // First decrement on this group: resolve outstanding overflows
    // (Sec. 4.4) and enter full-resolution signed mode.
    if (!groupHasDecrements_[group]) {
        drain(group);
        groupHasDecrements_[group] = true;
    }

    const unsigned mask_row = maskRowIndex(mask_handle);
    const auto digits =
        jc::toDigits(static_cast<uint64_t>(-value), cfg_.radix);
    C2M_ASSERT(digits.size() < backend_->numDigits(),
               "value exceeds counter capacity");

    for (unsigned pos = 0; pos < digits.size(); ++pos) {
        if (digits[pos] == 0)
            continue;
        decrementDigit(group, pos, digits[pos], mask_row);
    }
    if (backend_->caps().pendingFlags)
        resolveAllPendings(group, /*borrows=*/true);
    ++stats_.inputsAccumulated;
}

void
C2MEngine::resolveAllPendings(unsigned group, bool borrows)
{
    // Highest boundary first within a pass, so every carry/borrow
    // lands in a just-cleared digit (no flag is ever double-set);
    // each pass moves fresh pendings one digit up, so at most D
    // passes fully drain them into Osign.
    const unsigned D = backend_->numDigits();
    const unsigned phys0 = physIndex(group, 0);
    for (unsigned pass = 0; pass < D; ++pass) {
        bool any = false;
        for (unsigned d = D - 1; d-- > 0;) {
            if (!backend_->anyPending(phys0, d))
                continue;
            any = true;
            if (borrows)
                borrowRipple(group, d);
            else
                ripple(group, d);
        }
        for (unsigned r = 0; r < replicas(); ++r)
            backend_->foldTopBorrowIntoSign(physIndex(group, r));
        if (!any)
            break;
    }
}

void
C2MEngine::drain(unsigned group)
{
    if (!backend_->caps().pendingFlags)
        return;
    for (unsigned d : schedulers_[group].drain())
        ripple(group, d);
}

std::vector<int64_t>
C2MEngine::readCounters(unsigned group)
{
    return backend_->readCounters(physIndex(group, 0));
}

void
C2MEngine::addCounters(unsigned dst_group, unsigned src_group)
{
    C2M_ASSERT(backend_->caps().tensorOps,
               backendName(cfg_.backend),
               " backend does not support tensor ops");
    C2M_ASSERT(dst_group != src_group,
               "in-place doubling needs shiftLeft with a spare group");
    C2M_ASSERT(!groupHasDecrements_[src_group] &&
                   !groupHasDecrements_[dst_group],
               "vector addition requires unsigned-mode groups");
    drain(src_group);
    drain(dst_group);

    const auto &src = backend_->layout(physIndex(src_group, 0));
    const auto &dst0 = backend_->layout(physIndex(dst_group, 0));
    const unsigned n = bitsPerDigit_;
    const unsigned theta = dst0.scratchRow(2);
    const unsigned mrow = dst0.scratchRow(3);

    // The guard (top) digit of any in-capacity counter is zero, so
    // only the digits below it participate.
    for (unsigned dd = 0; dd + 1 < dst0.numDigits(); ++dd) {
        if (dd >= src.numDigits())
            break;
        // The digit receives at most R-1; create headroom through the
        // scheduler exactly like a broadcast add of R-1 would.
        std::vector<unsigned> worst(dd + 1, 0);
        worst[dd] = cfg_.radix - 1;
        for (unsigned d : schedulers_[dst_group].prepareAdd(worst))
            ripple(dst_group, d);
        schedulers_[dst_group].applyAdd(worst);
        // Theta <- src MSB; first pass uses mask = bit OR Theta from
        // the MSB down, second pass mask = Theta AND NOT bit from the
        // LSB up (Alg. 2 with Theta updated in both passes).
        backend_->rowCopy(src.bitRow(dd, n - 1), theta);

        for (unsigned b = n; b-- > 0;) {
            backend_->rowOr(src.bitRow(dd, b), theta, mrow);
            backend_->rowCopy(mrow, theta);
            // Use the raw mask row (it is not a registered handle).
            for (unsigned r = 0; r < replicas(); ++r)
                backend_->karyIncrement(physIndex(dst_group, r), dd,
                                        1, mrow);
            if (cfg_.protection == Protection::Tmr)
                voteDigit(dst_group, dd);
            ++stats_.increments;
        }
        for (unsigned b = 0; b < n; ++b) {
            backend_->rowAndNot(theta, src.bitRow(dd, b), mrow);
            backend_->rowCopy(mrow, theta);
            for (unsigned r = 0; r < replicas(); ++r)
                backend_->karyIncrement(physIndex(dst_group, r), dd,
                                        1, mrow);
            if (cfg_.protection == Protection::Tmr)
                voteDigit(dst_group, dd);
            ++stats_.increments;
        }
        // The source digit's pending-overflow flags were drained
        // above, so none remain by construction.
    }
}

void
C2MEngine::relu(unsigned group)
{
    C2M_ASSERT(backend_->caps().tensorOps,
               backendName(cfg_.backend),
               " backend does not support tensor ops");
    for (unsigned r = 0; r < replicas(); ++r)
        backend_->relu(physIndex(group, r));
}

void
C2MEngine::shiftLeft(unsigned group, unsigned spare_group,
                     unsigned amount)
{
    C2M_ASSERT(backend_->caps().tensorOps,
               backendName(cfg_.backend),
               " backend does not support tensor ops");
    C2M_ASSERT(spare_group != group, "spare must differ from group");
    for (unsigned step = 0; step < amount; ++step) {
        drain(group);
        // spare <- group (row copies), then group += spare.
        for (unsigned r = 0; r < replicas(); ++r)
            backend_->copyCounters(physIndex(group, r),
                                   physIndex(spare_group, r));
        schedulers_[spare_group] = schedulers_[group];
        addCounters(group, spare_group);
    }
}

} // namespace core
} // namespace c2m
