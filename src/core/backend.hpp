#ifndef C2M_CORE_BACKEND_HPP
#define C2M_CORE_BACKEND_HPP

/**
 * @file
 * Backend-agnostic counting fabric interface (Sec. 4.6, Sec. 7).
 *
 * Count2Multiply is technology-agnostic: any bulk-bitwise substrate
 * can host the column-parallel counters. A CountingBackend owns the
 * fabric simulator, the per-physical-group code generators and a
 * program cache, and exposes the masked counting primitives the
 * engine schedules:
 *
 *  - AmbitBackend: DRAM triple-row-activation fabric; Johnson
 *    counters, ECC (FR check-and-retry) and TMR voting, plus the
 *    row-level logic the tensor ops (vector add, ReLU, shift)
 *    build on.
 *  - NvmBackend: Pinatubo (non-stateful AND/OR/NOT) or MAGIC
 *    (stateful NOR-only) machines; Johnson counters, unprotected.
 *  - RcaBackend: the SIMDRAM-style bit-serial ripple-carry baseline;
 *    vertical W-bit binary accumulators where a k-ary digit update
 *    becomes a full-width masked add of k*radix^digit (two's
 *    complement for decrements), with duplicate-compute ECC.
 *
 * Capability flags tell the engine which features a substrate
 * supports; the engine asserts them before use, so unsupported
 * configurations fail loudly at construction rather than silently
 * miscounting. Executed programs are replayed from a per-backend
 * ProgramCache keyed by (op, physical group, digit, k, mask row);
 * hit/miss counts surface in EngineStats.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.hpp"
#include "core/config.hpp"
#include "jc/layout.hpp"

namespace c2m {

namespace cim {
class AmbitSubarray;
} // namespace cim
namespace uprog {
struct CheckedProgram;
} // namespace uprog

namespace core {

/**
 * Execute a CheckedProgram on a DRAM fabric: run each block, evaluate
 * its FR checks (XorOfRows or EqualRows), and re-execute on mismatch
 * up to @p max_retries times. Check/fault/retry counts accumulate
 * into @p stats — the one retry policy shared by every DRAM-fabric
 * backend so EngineStats means the same thing across them.
 */
void runCheckedOnSubarray(cim::AmbitSubarray &sub,
                          const uprog::CheckedProgram &prog,
                          size_t num_cols, unsigned max_retries,
                          EngineStats &stats);

/** What a counting substrate can do; asserted by the engine. */
struct BackendCaps
{
    bool eccChecks = false;      ///< FR-checked programs with retry
    bool tmrVoting = false;      ///< in-fabric replica majority vote
    bool signedCounting = false; ///< karyDecrement / borrowRipple
    bool tensorOps = false;      ///< row logic + layouts for vector ops
    /**
     * Deferred carries via per-digit pending (Onext) flags. False for
     * binary accumulators (RCA), where every update resolves its
     * carries in-place and ripple calls are no-ops.
     */
    bool pendingFlags = false;
    /**
     * Reliable host-level access to individual fabric rows
     * (scrubReadRow / scrubWriteRow), the seam the online scrubber
     * sweeps counter state through. True for the JC row-layout
     * fabrics (Ambit, NVM).
     */
    bool rowScrub = false;
};

class CountingBackend
{
  public:
    explicit CountingBackend(EngineStats &stats) : stats_(stats) {}
    virtual ~CountingBackend() = default;

    CountingBackend(const CountingBackend &) = delete;
    CountingBackend &operator=(const CountingBackend &) = delete;

    virtual BackendKind kind() const = 0;
    const BackendCaps &caps() const { return caps_; }

    /** Digits available to the host-side value decomposition. */
    virtual unsigned numDigits() const = 0;

    // ---- Mask rows ----

    /** Raw backend row index of mask @p handle (usable as mask_row). */
    virtual unsigned maskRow(unsigned handle) const = 0;
    virtual void writeMask(unsigned handle, const BitVector &row) = 0;

    // ---- Counting primitives (runChecked-style execution) ----

    /**
     * Masked k-ary increment of @p digit on physical group @p phys;
     * counters whose bit in @p mask_row is 0 are unchanged. Protected
     * backends run the checked program with retry internally.
     */
    virtual void karyIncrement(unsigned phys, unsigned digit,
                               unsigned k, unsigned mask_row) = 0;

    /** Masked k-ary decrement (caps().signedCounting). */
    virtual void karyDecrement(unsigned phys, unsigned digit,
                               unsigned k, unsigned mask_row);

    /** Deferred carry ripple at digit boundary @p digit. */
    virtual void carryRipple(unsigned phys, unsigned digit) = 0;

    /** Borrow ripple (caps().signedCounting). */
    virtual void borrowRipple(unsigned phys, unsigned digit);

    /** True iff any counter has a pending carry/borrow at @p digit. */
    virtual bool anyPending(unsigned phys, unsigned digit) = 0;

    /** Osign ^= Onext(top); Onext(top) <- 0 (signed-mode fold). */
    virtual void foldTopBorrowIntoSign(unsigned phys);

    /**
     * Majority-vote digit @p digit across three physical replicas
     * (caps().tmrVoting); adds to EngineStats::voteOps.
     */
    virtual void voteDigit(const std::array<unsigned, 3> &phys,
                           unsigned digit);

    // ---- Readout ----

    /**
     * Per-column counter values of one physical group, pending
     * carries (Onext) and sign included. Unreadable JC patterns count
     * into EngineStats::invalidStates and decode to the nearest valid
     * state.
     */
    virtual std::vector<int64_t> readCounters(unsigned phys) = 0;

    /**
     * Per-column value of one digit (0..radix-1), excluding pending
     * flags; resolve pendings first for cross-backend comparisons.
     */
    virtual std::vector<unsigned> readDigit(unsigned phys,
                                            unsigned digit) = 0;

    /** Zero every counter of every physical group. */
    virtual void clearCounters() = 0;

    // ---- Fabric introspection and online-reliability hooks ----

    /**
     * Command/fault/cost tallies of the underlying fabric simulator
     * (AAP/AP, triple activations, injected fault bits, host row
     * accesses, and the modeled fabricNs/fabricNj charged at each
     * command issue point). Mandatory: every substrate must account
     * for its work honestly — a backend that executed a nonzero op
     * stream must report nonzero cost.
     */
    virtual cim::OpStats opStats() const = 0;

    /**
     * Mutable reference to the live substrate tally, for scoping
     * fabric-time attribution (cim::AttrScope) at engine-layer
     * boundaries. Same single-writer discipline as every other
     * mutating entry point: only the thread running the owning
     * shard's task may hold a scope on it.
     */
    virtual cim::OpStats &opStatsRef() = 0;

    /**
     * Reliable (memory-controller) read of raw fabric row @p row,
     * counted as a host row read (caps().rowScrub).
     */
    virtual const BitVector &scrubReadRow(unsigned row);

    /** Reliable overwrite of raw fabric row @p row (caps().rowScrub). */
    virtual void scrubWriteRow(unsigned row, const BitVector &v);

    /**
     * Retune the FR-check count of protected programs at run time
     * (adaptive protection). Regenerates programs lazily: the program
     * cache is dropped so later updates pick up the new check count.
     * Returns false on substrates whose protection is not FR-based.
     * Callers must hold the single-writer discipline of the owning
     * shard — typically only at an epoch boundary.
     */
    virtual bool setFrChecks(unsigned fr_checks);

    // ---- Row-level logic for tensor ops (caps().tensorOps) ----

    /** JC row layout of a physical group (JC backends only). */
    virtual const jc::CounterLayout &layout(unsigned phys) const;

    virtual void rowCopy(unsigned src, unsigned dst);
    virtual void rowOr(unsigned a, unsigned b, unsigned dst);
    /** dst = a AND NOT b. */
    virtual void rowAndNot(unsigned a, unsigned b, unsigned dst);
    virtual void rowClear(unsigned row);

    /** Zero all counters of @p phys that are negative (Osign). */
    virtual void relu(unsigned phys);

    /** Copy all counter state of group @p from onto group @p to. */
    virtual void copyCounters(unsigned from_phys, unsigned to_phys);

  protected:
    EngineStats &stats_;
    BackendCaps caps_;
};

/**
 * Build the backend selected by @p cfg.backend with
 * @p physical_groups counter groups (numGroups x replicas). @p stats
 * must outlive the backend: check, retry, vote and cache counters are
 * written into it as programs execute.
 */
std::unique_ptr<CountingBackend>
makeBackend(const EngineConfig &cfg, unsigned physical_groups,
            EngineStats &stats);

} // namespace core
} // namespace c2m

#endif // C2M_CORE_BACKEND_HPP
