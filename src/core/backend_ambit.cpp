#include "core/backend_ambit.hpp"

#include "common/logging.hpp"
#include "core/backend_jc.hpp"
#include "core/fabriccost.hpp"
#include "obs/trace.hpp"

namespace c2m {
namespace core {

using cim::RowRef;
using cim::RowSet;
using uprog::ProgramKey;

AmbitBackend::AmbitBackend(const EngineConfig &cfg,
                           unsigned physical_groups,
                           EngineStats &stats)
    : CountingBackend(stats),
      numCounters_(cfg.numCounters),
      maxRetries_(cfg.maxRetries),
      layouts_(buildJcLayouts(cfg.radix, cfg.capacityBits,
                              physical_groups)),
      maskBase_(layouts_.back().endRow()),
      sub_(maskBase_ + cfg.maxMaskRows, cfg.numCounters,
           cim::FaultModel::cimRate(cfg.faultRate), cfg.seed),
      cache_(cfg.programCache, stats.programCacheHits,
             stats.programCacheMisses)
{
    caps_.eccChecks = true;
    caps_.tmrVoting = true;
    caps_.signedCounting = true;
    caps_.tensorOps = true;
    caps_.pendingFlags = true;
    caps_.rowScrub = true;

    sub_.setCosts(dramCommandCosts(cfg.dramTimings, cfg.dramEnergy,
                                   cfg.numCounters));

    copts_.protect = cfg.protection == Protection::Ecc;
    copts_.frChecks = cfg.frChecks;
    for (const auto &l : layouts_)
        codegen_.emplace_back(l, copts_);
}

const BitVector &
AmbitBackend::scrubReadRow(unsigned row)
{
    return sub_.hostReadRow(row);
}

void
AmbitBackend::scrubWriteRow(unsigned row, const BitVector &v)
{
    sub_.hostWriteRow(row, v);
}

bool
AmbitBackend::setFrChecks(unsigned fr_checks)
{
    C2M_ASSERT(fr_checks >= 1 && fr_checks <= 3,
               "frChecks must be in 1..3");
    if (!copts_.protect)
        return false;
    if (copts_.frChecks == fr_checks)
        return true;
    copts_.frChecks = fr_checks;
    codegen_.clear();
    for (const auto &l : layouts_)
        codegen_.emplace_back(l, copts_);
    cache_.clear();
    // An FR retune invalidates every memoized program: the next
    // epoch's miss burst on the progcache.* counter track is this.
    if (auto *tr = obs::tracer())
        tr->instant("progcache.clear", obs::kServiceTrack, fr_checks);
    return true;
}

unsigned
AmbitBackend::maskRow(unsigned handle) const
{
    return maskBase_ + handle;
}

void
AmbitBackend::writeMask(unsigned handle, const BitVector &row)
{
    sub_.hostWriteRow(maskRow(handle), row);
}

void
AmbitBackend::runChecked(const uprog::CheckedProgram &prog)
{
    runCheckedOnSubarray(sub_, prog, numCounters_, maxRetries_,
                         stats_);
}

void
AmbitBackend::karyIncrement(unsigned phys, unsigned digit, unsigned k,
                            unsigned mask_row)
{
    const ProgramKey key{ProgramKey::Op::Increment, phys,
                         static_cast<uint16_t>(digit),
                         static_cast<uint16_t>(k), mask_row};
    runChecked(cache_.get(key, [&] {
        return codegen_[phys].karyIncrement(digit, k, mask_row);
    }));
}

void
AmbitBackend::karyDecrement(unsigned phys, unsigned digit, unsigned k,
                            unsigned mask_row)
{
    const ProgramKey key{ProgramKey::Op::Decrement, phys,
                         static_cast<uint16_t>(digit),
                         static_cast<uint16_t>(k), mask_row};
    runChecked(cache_.get(key, [&] {
        return codegen_[phys].karyDecrement(digit, k, mask_row);
    }));
}

void
AmbitBackend::carryRipple(unsigned phys, unsigned digit)
{
    const ProgramKey key{ProgramKey::Op::CarryRipple, phys,
                         static_cast<uint16_t>(digit), 0, 0};
    runChecked(cache_.get(
        key, [&] { return codegen_[phys].carryRipple(digit); }));
}

void
AmbitBackend::borrowRipple(unsigned phys, unsigned digit)
{
    const ProgramKey key{ProgramKey::Op::BorrowRipple, phys,
                         static_cast<uint16_t>(digit), 0, 0};
    runChecked(cache_.get(
        key, [&] { return codegen_[phys].borrowRipple(digit); }));
}

bool
AmbitBackend::anyPending(unsigned phys, unsigned digit)
{
    return sub_.peekRow(layouts_[phys].onextRow(digit)).popcount() !=
           0;
}

void
AmbitBackend::foldTopBorrowIntoSign(unsigned phys)
{
    // Osign ^= Onext(top); Onext(top) <- 0. An overflow back across
    // zero cancels a pending sign, so XOR is the correct fold.
    const auto &l = layouts_[phys];
    const unsigned top = l.numDigits() - 1;
    cim::AmbitProgram p;
    const unsigned s0 = l.scratchRow(2);
    const unsigned s1 = l.scratchRow(3);
    uprog::AmbitCodegen::emitAndNot(p, l.osignRow(), l.onextRow(top),
                                    s0);
    uprog::AmbitCodegen::emitAndNot(p, l.onextRow(top), l.osignRow(),
                                    s1);
    uprog::AmbitCodegen::emitOr(p, s0, s1, l.osignRow());
    p.aap(RowRef::c0(), RowRef::data(l.onextRow(top)));
    sub_.run(p);
}

void
AmbitBackend::voteRows(const std::vector<unsigned> &rows)
{
    C2M_ASSERT(rows.size() == 3, "vote needs three replica rows");
    cim::AmbitProgram p;
    p.aap(RowRef::data(rows[0]), RowRef::t(0));
    p.aap(RowRef::data(rows[1]), RowRef::t(1));
    p.aap(RowRef::data(rows[2]), RowRef::t(2));
    p.aap(RowSet::b12(), RowSet{RowRef::data(rows[0]),
                                RowRef::data(rows[1]),
                                RowRef::data(rows[2])});
    sub_.run(p);
    stats_.voteOps += p.size();
}

void
AmbitBackend::voteDigit(const std::array<unsigned, 3> &phys,
                        unsigned digit)
{
    const unsigned n = layouts_[0].bitsPerDigit();
    for (unsigned i = 0; i <= n; ++i) {
        std::vector<unsigned> rows;
        for (unsigned r = 0; r < 3; ++r) {
            const auto &l = layouts_[phys[r]];
            rows.push_back(i < n ? l.bitRow(digit, i)
                                 : l.onextRow(digit));
        }
        voteRows(rows);
    }
}

std::vector<int64_t>
AmbitBackend::readCounters(unsigned phys)
{
    return decodeJcCounters(
        layouts_[phys], numCounters_, stats_,
        [&](unsigned row) -> const BitVector & {
            return sub_.hostReadRow(row);
        });
}

std::vector<unsigned>
AmbitBackend::readDigit(unsigned phys, unsigned digit)
{
    return decodeJcDigit(layouts_[phys], digit, numCounters_, stats_,
                         [&](unsigned row) -> const BitVector & {
                             return sub_.hostReadRow(row);
                         });
}

void
AmbitBackend::clearCounters()
{
    for (unsigned p = 0; p < layouts_.size(); ++p)
        sub_.run(codegen_[p].clearCounters());
}

const jc::CounterLayout &
AmbitBackend::layout(unsigned phys) const
{
    return layouts_[phys];
}

void
AmbitBackend::rowCopy(unsigned src, unsigned dst)
{
    cim::AmbitProgram p;
    uprog::AmbitCodegen::emitCopy(p, src, dst);
    sub_.run(p);
}

void
AmbitBackend::rowOr(unsigned a, unsigned b, unsigned dst)
{
    cim::AmbitProgram p;
    uprog::AmbitCodegen::emitOr(p, a, b, dst);
    sub_.run(p);
}

void
AmbitBackend::rowAndNot(unsigned a, unsigned b, unsigned dst)
{
    cim::AmbitProgram p;
    uprog::AmbitCodegen::emitAndNot(p, a, b, dst);
    sub_.run(p);
}

void
AmbitBackend::rowClear(unsigned row)
{
    cim::AmbitProgram p;
    p.aap(RowRef::c0(), RowRef::data(row));
    sub_.run(p);
}

void
AmbitBackend::relu(unsigned phys)
{
    const auto &l = layouts_[phys];
    cim::AmbitProgram p;
    for (unsigned dd = 0; dd < l.numDigits(); ++dd) {
        for (unsigned i = 0; i < l.bitsPerDigit(); ++i)
            uprog::AmbitCodegen::emitAndNot(p, l.bitRow(dd, i),
                                            l.osignRow(),
                                            l.bitRow(dd, i));
        uprog::AmbitCodegen::emitAndNot(p, l.onextRow(dd),
                                        l.osignRow(), l.onextRow(dd));
    }
    p.aap(RowRef::c0(), RowRef::data(l.osignRow()));
    sub_.run(p);
}

void
AmbitBackend::copyCounters(unsigned from_phys, unsigned to_phys)
{
    const auto &from = layouts_[from_phys];
    const auto &to = layouts_[to_phys];
    cim::AmbitProgram p;
    for (unsigned dd = 0; dd < from.numDigits(); ++dd) {
        for (unsigned i = 0; i < from.bitsPerDigit(); ++i)
            uprog::AmbitCodegen::emitCopy(p, from.bitRow(dd, i),
                                          to.bitRow(dd, i));
        uprog::AmbitCodegen::emitCopy(p, from.onextRow(dd),
                                      to.onextRow(dd));
    }
    uprog::AmbitCodegen::emitCopy(p, from.osignRow(), to.osignRow());
    sub_.run(p);
}

} // namespace core
} // namespace c2m
