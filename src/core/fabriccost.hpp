#ifndef C2M_CORE_FABRICCOST_HPP
#define C2M_CORE_FABRICCOST_HPP

/**
 * @file
 * Fabric accounting spine: one value type for "what did this cost in
 * DRAM terms" that every layer produces, merges, and consumes.
 *
 * The substrates charge cim::OpStats at each command issue point
 * (cim/cost.hpp); FabricCost is the roll-up the engines and the
 * service report: simulated nanoseconds (serial and bank-parallel
 * critical path), nanojoules, and the command counts the paper
 * states its headline results in (Fig. 8). `ns` sums across shards
 * (total fabric work); `criticalNs` is the wall-clock-equivalent
 * lower bound when shards are banks of one rank, honoring the
 * tFAW/tRRD model in dram/timing.hpp.
 */

#include <cstdint>

#include "cim/cost.hpp"
#include "cim/fault.hpp"
#include "dram/energy.hpp"
#include "dram/timing.hpp"

namespace c2m {
namespace core {

struct FabricCost
{
    double ns = 0.0;         ///< serial fabric time, summed
    double criticalNs = 0.0; ///< bank-parallel critical path
    double nj = 0.0;
    uint64_t aap = 0;
    uint64_t ap = 0;
    uint64_t tra = 0;
    uint64_t rowAccesses = 0;

    uint64_t commands() const { return aap + ap; }

    static FabricCost fromOpStats(const cim::OpStats &s)
    {
        FabricCost c;
        c.ns = s.fabricNs;
        c.criticalNs = s.fabricNs;
        c.nj = s.fabricNj;
        c.aap = s.aap;
        c.ap = s.ap;
        c.tra = s.tra;
        c.rowAccesses = s.rowReads + s.rowWrites;
        return c;
    }

    /** Merge a parallel contributor: sums, except the critical path
     *  which is the max over contributors. */
    FabricCost &operator+=(const FabricCost &o)
    {
        ns += o.ns;
        nj += o.nj;
        aap += o.aap;
        ap += o.ap;
        tra += o.tra;
        rowAccesses += o.rowAccesses;
        if (o.criticalNs > criticalNs)
            criticalNs = o.criticalNs;
        return *this;
    }
};

/**
 * Per-command costs of a DRAM CIM substrate under the given timing
 * and energy parameter sets. AAP and AP both occupy their bank for
 * one bankPeriodNs (activation-dominated; the extra activate of the
 * AAP hides under tRAS); host row accesses stream @p num_cols bits
 * through the channel.
 */
inline cim::CommandCosts
dramCommandCosts(const dram::DramTimings &t,
                 const dram::EnergyModel &e, size_t num_cols)
{
    const unsigned row_bytes =
        static_cast<unsigned>((num_cols + 7) / 8);
    cim::CommandCosts c;
    c.aapNs = t.bankPeriodNs();
    c.apNs = t.bankPeriodNs();
    c.rowReadNs = t.rowAccessNs(row_bytes);
    c.rowWriteNs = t.rowAccessNs(row_bytes);
    c.aapNj = e.aapEnergyNj();
    c.apNj = e.apEnergyNj();
    c.rowReadNj = e.rowAccessEnergyNj(row_bytes);
    c.rowWriteNj = e.rowAccessEnergyNj(row_bytes);
    return c;
}

} // namespace core
} // namespace c2m

#endif // C2M_CORE_FABRICCOST_HPP
