#ifndef C2M_CORE_ENGINE_HPP
#define C2M_CORE_ENGINE_HPP

/**
 * @file
 * The Count2Multiply execution engine (Sec. 5).
 *
 * One engine instance owns a functional Ambit subarray holding one or
 * more groups of column-parallel multi-digit Johnson counters plus
 * the mask rows of the stationary operand Z. The host-side routine
 * converts each streamed input value into k-ary increment muPrograms
 * (digit unpacking, Sec. 5.1), schedules deferred carry rippling with
 * IARM (Sec. 4.5.2), and executes the ECC-protected variants with
 * check-and-retry when protection is enabled (Sec. 6).
 *
 * Counter groups:
 *  - kernels needing signed results use two groups dual-rail
 *    (accumulate positive contributions in group 0, negative in
 *    group 1, subtract at readout);
 *  - TMR replicates every group three times and votes after each
 *    digit update;
 *  - tensor ops (vector add, shift-left) operate across groups.
 */

#include <cstdint>
#include <vector>

#include "cim/ambit.hpp"
#include "cim/fault.hpp"
#include "jc/iarm.hpp"
#include "jc/layout.hpp"
#include "uprog/codegen_ambit.hpp"
#include "uprog/microop.hpp"

namespace c2m {
namespace core {

enum class Protection : uint8_t
{
    None, ///< raw CIM
    Ecc,  ///< XOR-embedded FR checks with retry (Sec. 6)
    Tmr,  ///< triple modular redundancy with majority vote
};

enum class RippleMode : uint8_t
{
    Iarm,       ///< input-aware rippling minimization (Sec. 4.5.2)
    FullRipple, ///< full carry propagation after every input
};

enum class CountMode : uint8_t
{
    Kary, ///< one increment per non-zero digit (Sec. 4.5.1)
    Unit, ///< d unit increments per digit value d (Sec. 4.4)
};

struct EngineConfig
{
    unsigned radix = 4;
    unsigned capacityBits = 32;
    size_t numCounters = 256;
    unsigned numGroups = 1;
    unsigned maxMaskRows = 64;
    Protection protection = Protection::None;
    unsigned frChecks = 1;   ///< FR computations per masking step
    unsigned maxRetries = 4; ///< re-executions before giving up
    RippleMode ripple = RippleMode::Iarm;
    CountMode counting = CountMode::Kary;
    double faultRate = 0.0;  ///< per-bit MAJ3 fault probability
    uint64_t seed = 1;
};

struct EngineStats
{
    uint64_t inputsAccumulated = 0;
    uint64_t increments = 0;
    uint64_t ripples = 0;
    uint64_t checksRun = 0;
    uint64_t faultsDetected = 0;
    uint64_t retries = 0;
    uint64_t uncorrectedBlocks = 0;
    uint64_t invalidStates = 0; ///< unreadable JC patterns at readout
    uint64_t voteOps = 0;

    /**
     * Field-wise sum, used to merge per-shard stats into one view.
     * When adding a field above, extend this too — the
     * EngineStatsMerge test pins sizeof(EngineStats) so a new field
     * cannot be silently dropped from the merge.
     */
    EngineStats &operator+=(const EngineStats &o)
    {
        inputsAccumulated += o.inputsAccumulated;
        increments += o.increments;
        ripples += o.ripples;
        checksRun += o.checksRun;
        faultsDetected += o.faultsDetected;
        retries += o.retries;
        uncorrectedBlocks += o.uncorrectedBlocks;
        invalidStates += o.invalidStates;
        voteOps += o.voteOps;
        return *this;
    }
};

class C2MEngine
{
  public:
    explicit C2MEngine(const EngineConfig &cfg);

    const EngineConfig &config() const { return cfg_; }
    const EngineStats &stats() const { return stats_; }
    cim::AmbitSubarray &subarray() { return sub_; }
    const jc::CounterLayout &layout(unsigned group = 0) const;

    /** Store a binary mask (the next row of Z); returns its handle. */
    unsigned addMask(const std::vector<uint8_t> &mask);
    unsigned numMasks() const { return numMasks_; }
    /** Overwrite an existing mask row. */
    void setMask(unsigned handle, const std::vector<uint8_t> &mask);

    /**
     * Accumulate @p value into every counter of @p group whose bit in
     * mask @p mask_handle is set (value >= 0).
     */
    void accumulate(uint64_t value, unsigned mask_handle,
                    unsigned group = 0);

    /** Signed accumulation: negative values decrement (Sec. 4.4). */
    void accumulateSigned(int64_t value, unsigned mask_handle,
                          unsigned group = 0);

    /** Current counter values (Onext/Osign accounted, no draining). */
    std::vector<int64_t> readCounters(unsigned group = 0);

    /** Reset counters of all groups to zero. */
    void clear();

    // ---- Tensor-style operations (Sec. 5.2.4) ----

    /** dst += src element-wise (JC vector addition, Alg. 2). */
    void addCounters(unsigned dst_group, unsigned src_group);

    /** Zero all counters of @p group that are negative (Osign). */
    void relu(unsigned group);

    /**
     * counters <<= amount via repeated doubling; @p spare_group is
     * clobbered as scratch.
     */
    void shiftLeft(unsigned group, unsigned spare_group,
                   unsigned amount);

    /** Resolve every pending overflow of a group (Sec. 4.4). */
    void drain(unsigned group);

  private:
    /** Physical replica count per logical group (3 for TMR). */
    unsigned replicas() const
    {
        return cfg_.protection == Protection::Tmr ? 3 : 1;
    }
    unsigned physIndex(unsigned group, unsigned replica) const;

    /** Run a checked program on one physical layout with retries. */
    void runChecked(const uprog::CheckedProgram &prog);

    /** Majority-vote the rows of digit @p digit across replicas. */
    void voteDigit(unsigned group, unsigned digit);
    void voteRows(const std::vector<unsigned> &rows_per_replica);

    void incrementDigit(unsigned group, unsigned digit, unsigned k,
                        unsigned mask_row);
    void decrementDigit(unsigned group, unsigned digit, unsigned k,
                        unsigned mask_row);
    void ripple(unsigned group, unsigned digit);
    void borrowRipple(unsigned group, unsigned digit);

    /**
     * Clear every pending flag by repeated highest-first passes
     * (each pass moves fresh pendings one digit up; top pendings
     * fold into Osign). Used in signed mode, where Onext must be
     * unambiguous before the direction can change.
     */
    void resolveAllPendings(unsigned group, bool borrows);
    void foldTopBorrowIntoSign(unsigned group);

    unsigned maskRowIndex(unsigned handle) const;

    EngineConfig cfg_;
    unsigned bitsPerDigit_;
    std::vector<jc::CounterLayout> layouts_;  ///< per physical replica
    std::vector<uprog::AmbitCodegen> codegen_; ///< per physical replica
    std::vector<jc::IarmScheduler> schedulers_; ///< per logical group
    std::vector<bool> groupHasDecrements_;
    unsigned maskBase_;
    unsigned numMasks_ = 0;
    cim::AmbitSubarray sub_;
    EngineStats stats_;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_ENGINE_HPP
