#ifndef C2M_CORE_ENGINE_HPP
#define C2M_CORE_ENGINE_HPP

/**
 * @file
 * The Count2Multiply execution engine (Sec. 5).
 *
 * One engine instance owns a counting backend (EngineConfig::backend:
 * Ambit DRAM, Pinatubo/MAGIC NVM, or the SIMDRAM-style RCA baseline)
 * holding one or more groups of column-parallel counters plus the
 * mask rows of the stationary operand Z. The host-side routine
 * converts each streamed input value into k-ary increment muPrograms
 * (digit unpacking, Sec. 5.1), schedules deferred carry rippling with
 * IARM (Sec. 4.5.2) on substrates with pending flags, and relies on
 * the backend's checked execution (check-and-retry, in-fabric voting)
 * when protection is enabled (Sec. 6). Which protection and tensor
 * features a substrate offers is advertised through BackendCaps and
 * asserted at configuration time.
 *
 * Counter groups:
 *  - kernels needing signed results use two groups dual-rail
 *    (accumulate positive contributions in group 0, negative in
 *    group 1, subtract at readout);
 *  - TMR replicates every group three times and votes after each
 *    digit update;
 *  - tensor ops (vector add, shift-left) operate across groups.
 */

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cim/ambit.hpp"
#include "core/backend.hpp"
#include "core/config.hpp"
#include "jc/iarm.hpp"
#include "jc/layout.hpp"

namespace c2m {
namespace core {

/**
 * One column-parallel step of a drain plan: add @p k to digit
 * @p digit of every counter whose bit in mask row @p maskHandle is
 * set. The mask is borrowed, not owned — planners keep a reusable
 * pool of plane masks and hand out pointers for the duration of one
 * accumulatePlan call. Each step carries its own mask handle so
 * planes can live in persistent per-plane rows: plane (digit, k)
 * always lands in the same row index, keeping its cached increment
 * program's key stable across epochs.
 */
struct MaskedStep
{
    unsigned digit;
    unsigned k; ///< 1..radix-1
    unsigned maskHandle;
    const BitVector *mask;
    /**
     * Gang-issue role in a merged cross-shard plan: the lead shard of
     * a (digit, k) plane issues the plane program and is charged
     * FabricCat::Plan; follower shards execute the identical command
     * stream in the leader's issue slots (same row indices — shard
     * layouts only differ in column width) and are charged
     * FabricCat::PlanFanout with their commands counted as ganged.
     * Single-shard plans are all-lead.
     */
    bool lead = true;
};

/**
 * One scheduled carry ripple of a drain plan, with the same
 * gang-issue role as MaskedStep: per (digit, occurrence) across the
 * shards of a merged plan, the first shard needing the ripple leads
 * and the rest follow in lockstep.
 */
struct PlanRipple
{
    unsigned digit;
    bool lead = true;
};

class C2MEngine
{
  public:
    explicit C2MEngine(const EngineConfig &cfg);
    ~C2MEngine();

    const EngineConfig &config() const { return cfg_; }

    /**
     * Engine-level protection/cache counters with the backend's
     * fabric tallies (commands, injected faults, host row accesses)
     * merged in. Returned by value: the fabric part is sampled from
     * the simulator at call time.
     */
    EngineStats stats() const
    {
        EngineStats s = stats_;
        s.fabric = backend_->opStats();
        // One engine = one bank: its critical path is its serial
        // fabric time. ShardedEngine recomputes the bank-parallel
        // bound over all shards.
        s.fabricCriticalNs = s.fabric.fabricNs;
        return s;
    }

    /** The counting substrate this engine drives. */
    CountingBackend &backend() { return *backend_; }
    const CountingBackend &backend() const { return *backend_; }

    /**
     * The underlying Ambit subarray (DRAM-fabric backends only:
     * Ambit and RCA; panics otherwise).
     */
    cim::AmbitSubarray &subarray();

    /** JC row layout (JC backends only: Ambit and NVM). */
    const jc::CounterLayout &layout(unsigned group = 0) const;

    /** Physical replica count per logical group (3 for TMR). */
    unsigned numReplicas() const { return replicas(); }

    /** Physical group index of (logical group, replica). */
    unsigned physicalGroup(unsigned group, unsigned replica) const
    {
        return physIndex(group, replica);
    }

    /** Store a binary mask (the next row of Z); returns its handle. */
    unsigned addMask(const std::vector<uint8_t> &mask);
    unsigned numMasks() const { return numMasks_; }
    /** Overwrite an existing mask row. */
    void setMask(unsigned handle, const std::vector<uint8_t> &mask);
    /**
     * In-place overwrite from a prebuilt packed row: no byte-vector
     * conversion, no allocation. The batch hot paths (point masks,
     * plane masks) route through this overload.
     */
    void setMask(unsigned handle, const BitVector &mask);

    /**
     * Accumulate @p value into every counter of @p group whose bit in
     * mask @p mask_handle is set (value >= 0).
     */
    void accumulate(uint64_t value, unsigned mask_handle,
                    unsigned group = 0);

    /** Signed accumulation: negative values decrement (Sec. 4.4). */
    void accumulateSigned(int64_t value, unsigned mask_handle,
                          unsigned group = 0);

    /**
     * Column-parallel masked accumulate (Fig. 15): apply a batch of
     * digit-plane steps, each one masked k-ary increment covering
     * every counter whose epoch delta has digit k at that position.
     * This is the multi-counter entry point the drain planner
     * schedules through — it skips the per-value digit loop entirely:
     * IARM headroom is prepared ONCE for the whole plan using the
     * per-digit worst case (max k over the steps of each digit), then
     * each step writes its plane mask into @p mask_handle's row and
     * issues a single karyIncrement.
     *
     * Requirements (planners fall back to per-op replay otherwise):
     * Kary counting, group not in signed mode, each counter covered
     * by at most one step per digit position. Each step writes its
     * plane mask into its own MaskedStep::maskHandle row.
     * @p folded_ops is the number of point updates the plan folds
     * in; it feeds inputsAccumulated/plannedOps so batch accounting
     * matches the per-op path.
     */
    void accumulatePlan(std::span<const MaskedStep> steps,
                        unsigned group, uint64_t folded_ops);

    /**
     * Host-side bookkeeping half of accumulatePlan, split out so a
     * hierarchical planner can prepare every shard's slice of a
     * merged plan before any fabric work runs. Validates @p steps,
     * builds the per-digit worst-case profile, advances the group's
     * IARM scheduler (prepareAdd/applyAdd) and appends the ripples
     * the plan owes to @p pre — plus, in FullRipple mode, the
     * unconditional post-pass to @p post. Touches no fabric state;
     * the caller decides each ripple's gang role and then runs
     * executePlan. planPrepare + executePlan with the same arguments
     * is exactly accumulatePlan.
     */
    void planPrepare(std::span<const MaskedStep> steps,
                     unsigned group, std::vector<PlanRipple> &pre,
                     std::vector<PlanRipple> &post);

    /**
     * Fabric half of a prepared plan: broadcast the @p pre ripples,
     * write each step's plane mask into its persistent row and issue
     * the masked increments, then the @p post full-ripple pass.
     * Lead ripples/steps charge FabricCat::Plan (mask writes
     * MaskWrite as usual); follower ones charge PlanFanout and count
     * their AAP/AP commands as ganged — executed in lockstep under
     * the lead shard's issue slots. @p folded_ops feeds
     * plannedOps/inputsAccumulated exactly like accumulatePlan.
     */
    void executePlan(std::span<const MaskedStep> steps,
                     std::span<const PlanRipple> pre,
                     std::span<const PlanRipple> post, unsigned group,
                     uint64_t folded_ops);

    /**
     * True once the group has seen a decrement: pending flags are
     * kept fully resolved and the drain planner must not defer
     * carries (it falls back to per-op replay).
     */
    bool signedMode(unsigned group) const
    {
        return groupHasDecrements_[group];
    }

    /** Planner bookkeeping: @p n ops bypassed plans (per-op path). */
    void notePlanFallback(uint64_t n)
    {
        stats_.planFallbackOps += n;
    }

    /** Current counter values (Onext/Osign accounted, no draining). */
    std::vector<int64_t> readCounters(unsigned group = 0);

    /** Reset counters of all groups to zero. */
    void clear();

    // ---- Tensor-style operations (Sec. 5.2.4) ----
    // Require a backend with caps().tensorOps (Ambit).

    /** dst += src element-wise (JC vector addition, Alg. 2). */
    void addCounters(unsigned dst_group, unsigned src_group);

    /** Zero all counters of @p group that are negative (Osign). */
    void relu(unsigned group);

    /**
     * counters <<= amount via repeated doubling; @p spare_group is
     * clobbered as scratch.
     */
    void shiftLeft(unsigned group, unsigned spare_group,
                   unsigned amount);

    /** Resolve every pending overflow of a group (Sec. 4.4). */
    void drain(unsigned group);

  private:
    /** Physical replica count per logical group (3 for TMR). */
    unsigned replicas() const
    {
        return cfg_.protection == Protection::Tmr ? 3 : 1;
    }
    unsigned physIndex(unsigned group, unsigned replica) const;

    /** Majority-vote the rows of digit @p digit across replicas. */
    void voteDigit(unsigned group, unsigned digit);

    void incrementDigit(unsigned group, unsigned digit, unsigned k,
                        unsigned mask_row);
    void decrementDigit(unsigned group, unsigned digit, unsigned k,
                        unsigned mask_row);
    void ripple(unsigned group, unsigned digit);
    void borrowRipple(unsigned group, unsigned digit);

    /**
     * Clear every pending flag by repeated highest-first passes
     * (each pass moves fresh pendings one digit up; top pendings
     * fold into Osign). Used in signed mode, where Onext must be
     * unambiguous before the direction can change.
     */
    void resolveAllPendings(unsigned group, bool borrows);

    unsigned maskRowIndex(unsigned handle) const;

    EngineConfig cfg_;
    unsigned bitsPerDigit_;
    EngineStats stats_; ///< must precede backend_ (holds a reference)
    std::unique_ptr<CountingBackend> backend_;
    std::vector<jc::IarmScheduler> schedulers_; ///< per logical group
    std::vector<bool> groupHasDecrements_;
    unsigned numMasks_ = 0;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_ENGINE_HPP
