#ifndef C2M_CORE_SIMDRAM_HPP
#define C2M_CORE_SIMDRAM_HPP

/**
 * @file
 * SIMDRAM-style baseline engine (Sec. 7.1): bit-serial ripple-carry
 * accumulation into vertically laid out W-bit binary accumulators.
 * Every masked accumulation ripples through all W bit positions
 * regardless of the addend's magnitude -- the cost the paper's
 * high-radix counting removes. Supports the same protection schemes
 * as the C2M engine for the fault-accuracy comparisons (Fig. 4/17).
 */

#include <cstdint>
#include <vector>

#include "cim/ambit.hpp"
#include "uprog/codegen_rca.hpp"

namespace c2m {
namespace core {

enum class RcaProtection : uint8_t
{
    None,
    Ecc, ///< duplicate-compute-and-compare with retry
    Tmr, ///< three accumulator replicas with majority vote
};

struct SimdramConfig
{
    unsigned accBits = 32;
    size_t numElements = 256;
    unsigned maxMaskRows = 64;
    RcaProtection protection = RcaProtection::None;
    unsigned maxRetries = 4;
    double faultRate = 0.0;
    uint64_t seed = 1;
};

struct SimdramStats
{
    uint64_t accumulates = 0;
    uint64_t checksRun = 0;
    uint64_t faultsDetected = 0;
    uint64_t retries = 0;
    uint64_t uncorrectedBlocks = 0;
    uint64_t voteOps = 0;
};

class SimdramEngine
{
  public:
    explicit SimdramEngine(const SimdramConfig &cfg);

    const SimdramConfig &config() const { return cfg_; }
    const SimdramStats &stats() const { return stats_; }
    cim::AmbitSubarray &subarray() { return sub_; }

    unsigned addMask(const std::vector<uint8_t> &mask);
    void setMask(unsigned handle, const std::vector<uint8_t> &mask);

    /** acc[j] += value where mask bit j is set (mod 2^accBits). */
    void accumulate(uint64_t value, unsigned mask_handle);

    /** Two's-complement signed accumulate (adds 2^W - |v|). */
    void accumulateSigned(int64_t value, unsigned mask_handle);

    /** Read accumulators as unsigned W-bit values. */
    std::vector<uint64_t> read();

    /** Read accumulators interpreting the top bit as sign. */
    std::vector<int64_t> readSigned();

    void clear();

  private:
    unsigned replicas() const
    {
        return cfg_.protection == RcaProtection::Tmr ? 3u : 1u;
    }

    void runChecked(const uprog::CheckedProgram &prog);
    void voteAll();

    SimdramConfig cfg_;
    std::vector<uprog::RcaLayout> layouts_;
    std::vector<uprog::RcaCodegen> codegen_;
    unsigned maskBase_;
    unsigned numMasks_ = 0;
    cim::AmbitSubarray sub_;
    SimdramStats stats_;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_SIMDRAM_HPP
