#ifndef C2M_CORE_BACKEND_NVM_HPP
#define C2M_CORE_BACKEND_NVM_HPP

/**
 * @file
 * NVM bulk-bitwise implementation of the counting backend
 * (Sec. 4.6, Fig. 10).
 *
 * Hosts the same Johnson-counter row layout as the Ambit backend on a
 * Pinatubo-style (non-stateful AND/OR/NOT with free operand negation,
 * ~3n+4 ops per increment) or MAGIC (stateful NOR-only, ~6n+4 ops)
 * machine. Counting and signed counting are supported; the FR/TMR
 * protection schemes are DRAM-specific, so the capability flags leave
 * them off and the engine rejects protected configurations.
 */

#include "cim/nvm.hpp"
#include "core/backend.hpp"
#include "uprog/codegen_nvm.hpp"
#include "uprog/progcache.hpp"

namespace c2m {
namespace core {

class NvmBackend final : public CountingBackend
{
  public:
    NvmBackend(const EngineConfig &cfg, unsigned physical_groups,
               EngineStats &stats);

    BackendKind kind() const override
    {
        return tech_ == cim::NvmTech::Pinatubo
                   ? BackendKind::NvmPinatubo
                   : BackendKind::NvmMagic;
    }
    unsigned numDigits() const override
    {
        return layouts_[0].numDigits();
    }

    unsigned maskRow(unsigned handle) const override;
    void writeMask(unsigned handle, const BitVector &row) override;

    void karyIncrement(unsigned phys, unsigned digit, unsigned k,
                       unsigned mask_row) override;
    void karyDecrement(unsigned phys, unsigned digit, unsigned k,
                       unsigned mask_row) override;
    void carryRipple(unsigned phys, unsigned digit) override;
    void borrowRipple(unsigned phys, unsigned digit) override;
    bool anyPending(unsigned phys, unsigned digit) override;
    void foldTopBorrowIntoSign(unsigned phys) override;

    std::vector<int64_t> readCounters(unsigned phys) override;
    std::vector<unsigned> readDigit(unsigned phys,
                                    unsigned digit) override;
    void clearCounters() override;

    cim::OpStats opStats() const override { return mach_.stats(); }
    cim::OpStats &opStatsRef() override { return mach_.stats(); }
    const BitVector &scrubReadRow(unsigned row) override;
    void scrubWriteRow(unsigned row, const BitVector &v) override;

    const jc::CounterLayout &layout(unsigned phys) const override;

    /** The underlying machine (white-box tests, op stats). */
    cim::NvmMachine &machine() { return mach_; }

  private:
    size_t numCounters_;
    cim::NvmTech tech_;
    std::vector<jc::CounterLayout> layouts_;
    std::vector<uprog::NvmCodegen> codegen_;
    unsigned maskBase_;
    cim::NvmMachine mach_;
    uprog::ProgramCache<cim::NvmProgram> cache_;
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_BACKEND_NVM_HPP
