#include "core/backend_rca.hpp"

#include "common/logging.hpp"
#include "core/fabriccost.hpp"
#include "dram/subarray.hpp"
#include "jc/digits.hpp"

namespace c2m {
namespace core {

using uprog::ProgramKey;

namespace {

/**
 * Accumulator width: the signed range must cover the JC modulus
 * radix^D so every value a JC backend can represent reads back
 * identically.
 */
unsigned
rcaWidth(unsigned radix, unsigned num_digits)
{
    unsigned __int128 modulus = 1;
    for (unsigned d = 0; d < num_digits; ++d)
        modulus *= radix;
    unsigned width = 1;
    while (width < 64 &&
           (static_cast<unsigned __int128>(1) << (width - 1)) <
               modulus)
        ++width;
    C2M_ASSERT((static_cast<unsigned __int128>(1) << (width - 1)) >=
                   modulus,
               "counter capacity exceeds the 64-bit RCA accumulator");
    return width;
}

std::vector<uprog::RcaLayout>
buildRcaLayouts(unsigned width, unsigned physical_groups)
{
    std::vector<uprog::RcaLayout> layouts;
    unsigned base = 0;
    for (unsigned g = 0; g < physical_groups; ++g) {
        uprog::RcaLayout l;
        l.width = width;
        l.baseRow = base;
        layouts.push_back(l);
        base = l.endRow();
    }
    return layouts;
}

} // namespace

RcaBackend::RcaBackend(const EngineConfig &cfg,
                       unsigned physical_groups, EngineStats &stats)
    : CountingBackend(stats),
      numCounters_(cfg.numCounters),
      maxRetries_(cfg.maxRetries),
      radix_(cfg.radix),
      numDigits_(
          jc::digitsForCapacityBits(cfg.radix, cfg.capacityBits) + 1),
      width_(rcaWidth(radix_, numDigits_)),
      widthMask_(width_ == 64 ? ~0ULL : (1ULL << width_) - 1),
      layouts_(buildRcaLayouts(width_, physical_groups)),
      maskBase_(layouts_.back().endRow()),
      sub_(maskBase_ + cfg.maxMaskRows, cfg.numCounters,
           cim::FaultModel::cimRate(cfg.faultRate), cfg.seed),
      cache_(cfg.programCache, stats.programCacheHits,
             stats.programCacheMisses)
{
    caps_.eccChecks = true;
    caps_.signedCounting = true;

    sub_.setCosts(dramCommandCosts(cfg.dramTimings, cfg.dramEnergy,
                                   cfg.numCounters));

    digitWeight_.resize(numDigits_);
    uint64_t w = 1;
    for (unsigned d = 0; d < numDigits_; ++d) {
        digitWeight_[d] = w & widthMask_;
        w *= radix_;
    }

    uprog::RcaCodegen::Options opts;
    opts.protect = cfg.protection == Protection::Ecc;
    for (const auto &l : layouts_)
        codegen_.emplace_back(l, opts);
}

unsigned
RcaBackend::maskRow(unsigned handle) const
{
    return maskBase_ + handle;
}

void
RcaBackend::writeMask(unsigned handle, const BitVector &row)
{
    sub_.hostWriteRow(maskRow(handle), row);
}

void
RcaBackend::runChecked(const uprog::CheckedProgram &prog)
{
    runCheckedOnSubarray(sub_, prog, numCounters_, maxRetries_,
                         stats_);
}

void
RcaBackend::maskedAdd(unsigned phys, uint64_t addend,
                      unsigned mask_row, ProgramKey key)
{
    runChecked(cache_.get(key, [&] {
        return codegen_[phys].maskedAccumulate(addend & widthMask_,
                                               mask_row);
    }));
}

void
RcaBackend::karyIncrement(unsigned phys, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    C2M_ASSERT(digit < numDigits_ && k >= 1 && k < radix_,
               "digit/step out of range");
    maskedAdd(phys, k * digitWeight_[digit], mask_row,
              ProgramKey{ProgramKey::Op::Increment, phys,
                         static_cast<uint16_t>(digit),
                         static_cast<uint16_t>(k), mask_row});
}

void
RcaBackend::karyDecrement(unsigned phys, unsigned digit, unsigned k,
                          unsigned mask_row)
{
    C2M_ASSERT(digit < numDigits_ && k >= 1 && k < radix_,
               "digit/step out of range");
    maskedAdd(phys, 0 - k * digitWeight_[digit], mask_row,
              ProgramKey{ProgramKey::Op::Decrement, phys,
                         static_cast<uint16_t>(digit),
                         static_cast<uint16_t>(k), mask_row});
}

void
RcaBackend::carryRipple(unsigned, unsigned)
{
    // Binary adds resolve carries in place; nothing is pending.
}

void
RcaBackend::borrowRipple(unsigned, unsigned)
{
}

bool
RcaBackend::anyPending(unsigned, unsigned)
{
    return false;
}

void
RcaBackend::foldTopBorrowIntoSign(unsigned)
{
    // Two's complement carries the sign in the accumulator itself.
}

std::vector<uint64_t>
RcaBackend::readRaw(unsigned phys)
{
    std::vector<BitVector> rows;
    rows.reserve(width_);
    for (unsigned b = 0; b < width_; ++b)
        rows.push_back(sub_.hostReadRow(layouts_[phys].bitRow(b)));
    return dram::transposeFromRows(rows, numCounters_);
}

std::vector<int64_t>
RcaBackend::readCounters(unsigned phys)
{
    const auto raw = readRaw(phys);
    std::vector<int64_t> out(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
        uint64_t v = raw[i];
        if (width_ < 64 && (v >> (width_ - 1)) & 1)
            v |= ~widthMask_; // sign-extend
        out[i] = static_cast<int64_t>(v);
    }
    return out;
}

std::vector<unsigned>
RcaBackend::readDigit(unsigned phys, unsigned digit)
{
    C2M_ASSERT(digit < numDigits_, "digit out of range");
    unsigned __int128 modulus = 1;
    for (unsigned d = 0; d < numDigits_; ++d)
        modulus *= radix_;
    unsigned __int128 weight = 1;
    for (unsigned d = 0; d < digit; ++d)
        weight *= radix_;
    // Reduce the signed value into the JC ring [0, radix^D) so digit
    // readouts of negative counters match the JC backends even when
    // radix^D does not divide 2^W (non-power-of-two radixes).
    const auto values = readCounters(phys);
    std::vector<unsigned> out(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        __int128 m = static_cast<__int128>(values[i]) %
                     static_cast<__int128>(modulus);
        if (m < 0)
            m += static_cast<__int128>(modulus);
        out[i] = static_cast<unsigned>(
            static_cast<unsigned __int128>(m) / weight % radix_);
    }
    return out;
}

void
RcaBackend::clearCounters()
{
    for (unsigned p = 0; p < layouts_.size(); ++p)
        sub_.run(codegen_[p].clearAccumulators());
}

} // namespace core
} // namespace c2m
