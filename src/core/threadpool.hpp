#ifndef C2M_CORE_THREADPOOL_HPP
#define C2M_CORE_THREADPOOL_HPP

/**
 * @file
 * Fixed-size thread pool with per-worker (lane) FIFO queues.
 *
 * Built for the sharded engine: work for shard s is always posted to
 * lane s % size(), so tasks touching the same shard are serialized in
 * post order on a single worker while different shards run on
 * different workers. No task ever migrates between lanes, which keeps
 * execution — and therefore simulation results — independent of how
 * the OS schedules the workers.
 *
 * Lane FIFO guarantee: tasks posted to one lane run one at a time, in
 * post order, entirely on that lane's worker. The pool itself never
 * steals — a queued task is invisible to every other worker. Work
 * stealing (service::IngestService's drain path) is therefore built
 * ABOVE the pool: a claim loop posted to every lane pops whole ready
 * per-shard buckets from a shared list, so a "stolen" bucket still
 * runs start-to-finish on a single worker and per-shard order is
 * fixed by the claim order, never by lane scheduling. Stealers can
 * identify their worker via currentLane() and the sharded engine
 * asserts single-threaded shard access underneath (see
 * ShardedEngine::runShardOps).
 *
 * Locks are taken only at enqueue/dequeue; the tasks themselves (the
 * hot path, whole per-shard batches) run without any shared mutable
 * state.
 */

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace c2m {
namespace core {

class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 selects inline mode, where
     *        post() runs the task on the calling thread immediately
     *        (useful for debugging and for strictly serial baselines).
     */
    explicit ThreadPool(unsigned num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (0 in inline mode). */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** currentLane() value on threads that are not workers of this pool. */
    static constexpr unsigned kNoLane = ~0u;

    /**
     * Lane index of the calling thread if it is one of this pool's
     * workers, kNoLane otherwise. Lets a claim-loop task tell whether
     * it is executing a bucket on its home lane or stealing it.
     */
    unsigned currentLane() const;

    /**
     * Enqueue @p fn on lane @p lane % size(); tasks on one lane run
     * FIFO. In inline mode the task runs before post() returns.
     */
    void post(unsigned lane, std::function<void()> fn);

    /**
     * Block until every task posted so far has finished. Rethrows the
     * first exception any task raised since the previous drain().
     * Panics when called from one of this pool's own workers: the
     * worker would wait for itself and deadlock.
     */
    void drain();

  private:
    struct Lane
    {
        std::mutex m;
        std::condition_variable cv;
        std::deque<std::function<void()>> q;
    };

    void workerLoop(unsigned index, Lane &lane);
    void runTask(const std::function<void()> &fn);
    void finishTask();

    std::vector<std::unique_ptr<Lane>> lanes_;
    std::vector<std::thread> workers_;
    std::atomic<bool> stop_{false};

    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    size_t pending_ = 0;           ///< guarded by doneMutex_
    std::exception_ptr firstError_; ///< guarded by doneMutex_
};

} // namespace core
} // namespace c2m

#endif // C2M_CORE_THREADPOOL_HPP
