#include "core/costmodel.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "jc/digits.hpp"
#include "jc/iarm.hpp"
#include "jc/layout.hpp"
#include "uprog/codegen_ambit.hpp"
#include "uprog/codegen_rca.hpp"

namespace c2m {
namespace core {

C2mCostModel::C2mCostModel(unsigned radix, unsigned capacity_bits,
                           bool protect, unsigned fr_checks,
                           CountMode counting, RippleMode ripple)
    : radix_(radix),
      bits_(jc::bitsForRadix(radix)),
      counting_(counting),
      ripple_(ripple)
{
    jc::CounterLayout layout(radix, capacity_bits, 0);
    numDigits_ = layout.numDigits();

    uprog::CodegenOptions opts;
    opts.protect = protect;
    opts.frChecks = fr_checks;
    uprog::AmbitCodegen gen(layout, opts);

    // Measure the exact command counts the generator emits. A mask
    // row index is needed only for addressing, not for counting.
    const unsigned mask_row = layout.endRow();
    opsByK_.assign(radix, 0);
    for (unsigned k = 1; k < radix; ++k)
        opsByK_[k] = gen.karyIncrement(0, k, mask_row).totalOps();
    rippleOps_ = gen.carryRipple(0).totalOps();
}

uint64_t
C2mCostModel::incrementOps(unsigned k) const
{
    C2M_ASSERT(k >= 1 && k < radix_, "k out of range");
    return opsByK_[k];
}

C2mCostModel::StreamCost
C2mCostModel::accumulateStream(
    const std::vector<uint64_t> &values) const
{
    StreamCost cost;
    jc::IarmScheduler sched(radix_, numDigits_);

    for (uint64_t v : values) {
        if (v == 0)
            continue; // zero-skipping (Sec. 7.2.3)
        const auto digits = jc::toDigits(v, radix_);
        C2M_ASSERT(digits.size() < numDigits_,
                   "value exceeds counter capacity");

        const auto ripples = sched.prepareAdd(digits);
        cost.ripples += ripples.size();
        cost.aaps += ripples.size() * rippleOps_;
        sched.applyAdd(digits);

        for (unsigned k : digits) {
            if (k == 0)
                continue;
            if (counting_ == CountMode::Kary) {
                ++cost.increments;
                cost.aaps += opsByK_[k];
            } else {
                cost.increments += k;
                cost.aaps += static_cast<uint64_t>(k) * opsByK_[1];
            }
        }

        if (ripple_ == RippleMode::FullRipple) {
            // Full carry propagation after every input.
            const auto pass = sched.fullPassDescending();
            cost.ripples += pass.size();
            cost.aaps += pass.size() * rippleOps_;
        }
    }
    return cost;
}

double
C2mCostModel::avgOpsPerInput(unsigned bits, size_t samples,
                             uint64_t seed) const
{
    Rng rng(seed);
    std::vector<uint64_t> values(samples);
    for (auto &v : values)
        v = rng.nextBounded(1ULL << bits);
    const auto cost = accumulateStream(values);
    return static_cast<double>(cost.aaps) /
           static_cast<double>(samples);
}

uint64_t
C2mCostModel::counterAddOps() const
{
    // Per digit: 2n unit increments, each preceded by a 4-op mask
    // computation and a 1-op theta update, plus the initial theta
    // copy (Alg. 2); plus a resolving ripple pass.
    const uint64_t per_digit =
        1 + 2ULL * bits_ * (opsByK_[1] + 5);
    return per_digit * numDigits_ +
           (numDigits_ - 1) * rippleOps_;
}

RcaCostModel::RcaCostModel(unsigned width, bool protect)
    : width_(width)
{
    uprog::RcaLayout layout;
    layout.width = width;
    layout.baseRow = 0;
    uprog::RcaCodegen::Options opts;
    opts.protect = protect;
    uprog::RcaCodegen gen(layout, opts);
    accumulateOps_ =
        gen.maskedAccumulate(0, layout.endRow()).totalOps();
}

} // namespace core
} // namespace c2m
