#include "core/gpu_model.hpp"

#include <algorithm>

namespace c2m {
namespace core {

GpuModel::Result
GpuModel::run(size_t M, size_t N, size_t K) const
{
    const double ops = 2.0 * static_cast<double>(M) *
                       static_cast<double>(N) *
                       static_cast<double>(K);

    // Bytes touched once: weights K*N, inputs M*K, outputs M*N.
    const double weight_bytes =
        static_cast<double>(K) * static_cast<double>(N);
    const double io_bytes =
        static_cast<double>(M) *
        (static_cast<double>(K) + static_cast<double>(N));

    const double mem_s = (weight_bytes + io_bytes) / (memBwGBs * 1e9);
    const double compute_s =
        ops / (tensorTops * tensorEfficiency * 1e12);
    const double kernel_s = std::max(mem_s, compute_s);

    const double transfer_s =
        (weight_bytes + io_bytes) / (pcieGBs * 1e9);

    const bool memory_bound = mem_s >= compute_s;
    const double power = memory_bound ? gemvPowerW : gemmPowerW;

    Result r;
    r.kernelMs = kernel_s * 1e3;
    r.transferMs = transfer_s * 1e3;
    r.totalMs = r.kernelMs + r.transferMs;
    r.gops = ops / kernel_s / 1e9;
    r.gopsWithTransfer = ops / (kernel_s + transfer_s) / 1e9;
    r.gopsPerWatt = r.gops / power;
    r.gopsPerMm2 = r.gops / areaMm2;
    return r;
}

GpuModel::CountingCost
GpuModel::countingRun(size_t num_ops, size_t num_counters) const
{
    // 8 B (index, value) read + 8 B counter read-modify-write per
    // op; the counter table is touched through the same bandwidth
    // budget, so table size only matters through a floor of one
    // full-table write (initialization).
    const double op_bytes = 16.0 * static_cast<double>(num_ops);
    const double table_bytes = 8.0 * static_cast<double>(num_counters);
    const double bytes = std::max(op_bytes, table_bytes);
    CountingCost c;
    c.ns = bytes / memBwGBs; // GB/s == B/ns
    c.nj = gemvPowerW * c.ns; // 1 W == 1 nJ/ns
    return c;
}

} // namespace core
} // namespace c2m
