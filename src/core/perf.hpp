#ifndef C2M_CORE_PERF_HPP
#define C2M_CORE_PERF_HPP

/**
 * @file
 * End-to-end performance model (Sec. 7.2): turns command counts into
 * latency (via the tRRD/tFAW/tAAP stream scheduler), energy, and the
 * paper's three headline metrics -- GOPS, GOPS/W and GOPS/mm^2 --
 * for both Count2Multiply and the SIMDRAM baseline on tensor
 * workload shapes.
 */

#include <cstdint>

#include "core/costmodel.hpp"
#include "dram/energy.hpp"
#include "dram/geometry.hpp"
#include "dram/scheduler.hpp"
#include "dram/timing.hpp"

namespace c2m {
namespace core {

struct PerfResult
{
    double timeMs = 0.0;
    double energyMj = 0.0;  ///< millijoules
    double avgPowerW = 0.0;
    double gops = 0.0;
    double gopsPerWatt = 0.0;
    double gopsPerMm2 = 0.0;
    uint64_t aaps = 0;
    uint64_t rowAccesses = 0;
};

class DramPerfModel
{
  public:
    DramPerfModel(dram::DramTimings t = dram::DramTimings::ddr5_4400(),
                  dram::EnergyModel e = dram::EnergyModel::ddr5(),
                  dram::DramGeometry g = dram::DramGeometry::ddr5_4gb());

    const dram::DramTimings &timings() const { return timings_; }
    const dram::EnergyModel &energy() const { return energy_; }
    const dram::DramGeometry &geometry() const { return geometry_; }

    /**
     * Latency/energy/metrics of a uniform AAP stream plus row
     * accesses, with @p useful_ops nominal operations performed.
     */
    PerfResult evaluate(uint64_t aaps, uint64_t row_accesses,
                        unsigned banks, double useful_ops) const;

  private:
    dram::DramTimings timings_;
    dram::EnergyModel energy_;
    dram::DramGeometry geometry_;
};

/** A tensor workload shape: Y[M x N] = X[M x K] . Z[K x N]. */
struct TensorWorkload
{
    size_t M = 1;
    size_t N = 1;
    size_t K = 1;
    unsigned xBits = 8;       ///< input magnitude bits
    double sparsity = 0.0;    ///< fraction of zero inputs
    bool ternary = true;      ///< Z in {-1,0,1} (two mask planes)
    uint64_t seed = 11;
};

struct C2mDesign
{
    unsigned radix = 4;
    unsigned capacityBits = 64;
    unsigned banks = 16;
    bool protect = false;
    unsigned frChecks = 1;
    double faultRate = 1e-4;  ///< drives the correction overhead
    CountMode counting = CountMode::Kary;
    RippleMode ripple = RippleMode::Iarm;
};

struct SimdramDesign
{
    unsigned accBits = 64;
    unsigned banks = 16;
};

/** Count2Multiply performance on a tensor workload. */
PerfResult c2mWorkloadPerf(const TensorWorkload &w,
                           const C2mDesign &design,
                           const DramPerfModel &model);

/** SIMDRAM (RCA) baseline performance on the same workload. */
PerfResult simdramWorkloadPerf(const TensorWorkload &w,
                               const SimdramDesign &design,
                               const DramPerfModel &model);

} // namespace core
} // namespace c2m

#endif // C2M_CORE_PERF_HPP
