#include "core/backend.hpp"

#include "cim/ambit.hpp"
#include "common/logging.hpp"
#include "core/backend_ambit.hpp"
#include "core/backend_nvm.hpp"
#include "core/backend_rca.hpp"
#include "uprog/microop.hpp"

namespace c2m {
namespace core {

void
runCheckedOnSubarray(cim::AmbitSubarray &sub,
                     const uprog::CheckedProgram &prog,
                     size_t num_cols, unsigned max_retries,
                     EngineStats &stats)
{
    for (const auto &block : prog.blocks) {
        unsigned attempt = 0;
        for (;;) {
            sub.run(block.prog);
            if (block.checks.empty())
                break;

            bool mismatch = false;
            for (const auto &chk : block.checks) {
                ++stats.checksRun;
                const BitVector &fr = sub.hostReadRow(chk.frRow);
                if (chk.mode == uprog::FrCheck::Mode::EqualRows) {
                    if (fr != sub.hostReadRow(chk.rowA))
                        mismatch = true;
                    continue;
                }
                BitVector a(num_cols);
                a.copyFrom(sub.hostReadRow(chk.rowA));
                if (chk.aNeg)
                    a.invert();
                BitVector b(num_cols);
                b.copyFrom(sub.hostReadRow(chk.rowB));
                if (chk.bNeg)
                    b.invert();
                BitVector expect(num_cols);
                expect.assignXor(a, b);
                if (fr != expect)
                    mismatch = true;
            }
            if (!mismatch)
                break;

            ++stats.faultsDetected;
            if (attempt++ >= max_retries) {
                ++stats.uncorrectedBlocks;
                break;
            }
            ++stats.retries;
        }
    }
}

const char *
backendName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Ambit:
        return "ambit";
    case BackendKind::NvmPinatubo:
        return "nvm-pinatubo";
    case BackendKind::NvmMagic:
        return "nvm-magic";
    case BackendKind::Rca:
        return "rca";
    }
    return "unknown";
}

// Default implementations: capability-gated operations panic when a
// backend that does not advertise them is driven anyway. The engine
// checks caps() up front, so reaching one of these is a library bug.

void
CountingBackend::karyDecrement(unsigned, unsigned, unsigned, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support signed counting");
}

void
CountingBackend::borrowRipple(unsigned, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support signed counting");
}

void
CountingBackend::foldTopBorrowIntoSign(unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support signed counting");
}

void
CountingBackend::voteDigit(const std::array<unsigned, 3> &, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support TMR voting");
}

const BitVector &
CountingBackend::scrubReadRow(unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support row scrubbing");
}

void
CountingBackend::scrubWriteRow(unsigned, const BitVector &)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support row scrubbing");
}

bool
CountingBackend::setFrChecks(unsigned)
{
    return false;
}

const jc::CounterLayout &
CountingBackend::layout(unsigned) const
{
    C2M_PANIC(backendName(kind()),
              " backend has no Johnson-counter row layout");
}

void
CountingBackend::rowCopy(unsigned, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support row-level tensor logic");
}

void
CountingBackend::rowOr(unsigned, unsigned, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support row-level tensor logic");
}

void
CountingBackend::rowAndNot(unsigned, unsigned, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support row-level tensor logic");
}

void
CountingBackend::rowClear(unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support row-level tensor logic");
}

void
CountingBackend::relu(unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support tensor ops");
}

void
CountingBackend::copyCounters(unsigned, unsigned)
{
    C2M_PANIC(backendName(kind()),
              " backend does not support tensor ops");
}

std::unique_ptr<CountingBackend>
makeBackend(const EngineConfig &cfg, unsigned physical_groups,
            EngineStats &stats)
{
    switch (cfg.backend) {
    case BackendKind::Ambit:
        return std::make_unique<AmbitBackend>(cfg, physical_groups,
                                              stats);
    case BackendKind::NvmPinatubo:
    case BackendKind::NvmMagic:
        return std::make_unique<NvmBackend>(cfg, physical_groups,
                                            stats);
    case BackendKind::Rca:
        return std::make_unique<RcaBackend>(cfg, physical_groups,
                                            stats);
    }
    C2M_PANIC("unknown backend kind");
}

} // namespace core
} // namespace c2m
