#ifndef C2M_VIRT_SKETCH_HPP
#define C2M_VIRT_SKETCH_HPP

/**
 * @file
 * Approximate tier of the counter virtualization layer: a count-min
 * front sketch whose cells are either exact 64-bit integers or
 * Morris-style probabilistic counters, plus a linear probabilistic
 * counter for distinct-key estimation.
 *
 * Error bounds (the "paper-grade" contracts the tests pin, following
 * "Optimal Bounds for Approximate Counting" and "On the amortized
 * complexity of approximate counting", PAPERS.md):
 *
 *  - Count-min with exact cells, width w, depth d, non-negative
 *    updates totalling N: a point query never underestimates, and
 *    overestimates by more than (e/w)*N with probability at most
 *    e^-d. pointErrorBound() returns that (e/w)*N term.
 *
 *  - A Morris counter with growth base (1+a) increments its exponent
 *    c with probability (1+a)^-c and estimates
 *    n_hat = ((1+a)^c - 1)/a. The estimate is unbiased
 *    (E[n_hat] = n) with Var[n_hat] = a*n*(n-1)/2, so the 3-sigma
 *    deviation is 3*sqrt(a*n*(n-1)/2) — morrisSigma() gives the
 *    1-sigma value. Cells store one byte instead of eight.
 *
 *  - Count-min over Morris cells inherits both terms:
 *    pointErrorBound() adds the 3-sigma Morris noise of the
 *    (collision-inflated) cell value to the collision bound.
 *
 * The sketch admits every key immediately; VirtualCounterSpace
 * promotes keys whose estimate crosses the promotion threshold into
 * exact in-fabric counter groups, carrying the estimate as the seed.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace c2m {
namespace virt {

enum class SketchCells : uint8_t
{
    Exact,  ///< 64-bit cells: count-min bound only
    Morris, ///< 8-bit Morris exponents: + probabilistic noise
};

/**
 * One Morris counter: 8-bit exponent c, estimate ((1+a)^c - 1)/a.
 * The growth parameter @p a trades memory headroom for variance:
 * smaller a -> lower variance, smaller maximum representable count.
 */
class MorrisCounter
{
  public:
    explicit MorrisCounter(double a = 1.0 / 16.0);

    /** Add @p delta unit increments (each a Bernoulli trial). */
    void add(uint64_t delta, Rng &rng);

    uint64_t estimate() const;
    uint8_t exponent() const { return c_; }
    double a() const { return a_; }

    /** 1-sigma deviation of a Morris estimate of true count @p n. */
    static double sigma(double a, double n);

  private:
    double a_;
    uint8_t c_ = 0;
};

struct SketchConfig
{
    size_t width = 1 << 14; ///< cells per row (power of two advised)
    unsigned depth = 4;     ///< independent rows (failure prob e^-d)
    SketchCells cells = SketchCells::Exact;
    double morrisA = 1.0 / 16.0; ///< Morris growth parameter
    uint64_t seed = 0x5eed5eedULL;
};

class CountMinSketch
{
  public:
    explicit CountMinSketch(const SketchConfig &cfg = {});

    const SketchConfig &config() const { return cfg_; }

    /** Absorb @p delta (> 0) for @p key; returns the new estimate. */
    uint64_t update(uint64_t key, uint64_t delta);

    /** Point query: min over rows, never underestimates (Exact). */
    uint64_t estimate(uint64_t key) const;

    /** Total magnitude absorbed (the N of the (e/w)*N bound). */
    uint64_t totalAdded() const { return totalAdded_; }

    /**
     * Analytic 3-sigma point-query error bound at the current fill:
     * (e/width)*N, plus the 3-sigma Morris term at @p estimate for
     * Morris cells.
     */
    double pointErrorBound(uint64_t estimate) const;

    /** Collision term alone: (e/width)*totalAdded(). */
    double collisionBound() const;

  private:
    size_t cellIndex(unsigned row, uint64_t key) const;

    SketchConfig cfg_;
    std::vector<uint64_t> rowSeeds_;
    std::vector<uint64_t> exact_;   ///< depth*width (Exact cells)
    std::vector<uint8_t> morris_;   ///< depth*width (Morris cells)
    std::vector<uint64_t> morrisEst_; ///< estimate per exponent
    std::vector<double> morrisIncP_;  ///< (1+a)^-c per exponent
    Rng rng_;
    uint64_t totalAdded_ = 0;
};

/**
 * Linear probabilistic distinct-key counter (Whang et al.): an
 * m-bit map marks h(key) mod m; the estimate is -m*ln(V) with V the
 * empty fraction. Used for the virt.sketch_keys gauge — the sketch
 * itself keeps no per-key state, so "how many distinct keys has the
 * approximate tier absorbed" is itself an approximate counter.
 */
class LinearCounter
{
  public:
    explicit LinearCounter(size_t bits = 1 << 20,
                           uint64_t seed = 0x5eed5eedULL);

    void mark(uint64_t key);
    uint64_t estimate() const;
    size_t bits() const { return bits_; }

  private:
    uint64_t seed_;
    size_t bits_;
    size_t marked_ = 0; ///< set bits (tracked, not recounted)
    std::vector<uint64_t> words_;
};

} // namespace virt
} // namespace c2m

#endif // C2M_VIRT_SKETCH_HPP
