#include "virt/virtspace.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace c2m {
namespace virt {

CounterMap
VirtStats::toCounters() const
{
    return {
        {"virt.keys_exact", keysExact},
        {"virt.resident_groups", residentGroups},
        {"virt.spilled_groups", spilledGroups},
        {"virt.pending_restores", pendingRestores},
        {"virt.sketch_keys", sketchKeys},
        {"virt.dir_probes", dirProbes},
        {"virt.est_error_bound",
         static_cast<uint64_t>(std::llround(estErrorBound))},
        {"virt.est_error_seed_max", estErrorSeedMax},
        {"virt.spills", spills},
        {"virt.restores", restores},
        {"virt.materializations", materializations},
        {"virt.promotions", promotions},
        {"virt.sketch_updates", sketchUpdates},
        {"virt.journaled_ops", journaledOps},
        {"virt.maintenance_fabric_ns",
         static_cast<uint64_t>(std::llround(maintenanceFabricNs))},
    };
}

bool
VirtualCounterSpace::supportsSpill(core::ShardedEngine &engine)
{
    return engine.shard(0).backend().caps().rowScrub;
}

VirtualCounterSpace::VirtualCounterSpace(core::ShardedEngine &engine,
                                         const VirtConfig &cfg)
    : VirtualCounterSpace(engine, nullptr, cfg)
{
}

VirtualCounterSpace::VirtualCounterSpace(service::IngestService &svc,
                                         const VirtConfig &cfg)
    : VirtualCounterSpace(svc.engine(), &svc, cfg)
{
    svc.attachObserver(this);
}

VirtualCounterSpace::VirtualCounterSpace(core::ShardedEngine &engine,
                                         service::IngestService *svc,
                                         const VirtConfig &cfg)
    : engine_(engine),
      svc_(svc),
      cfg_(cfg),
      canSpill_(supportsSpill(engine)),
      dir_(cfg.seed),
      sketch_(cfg.sketch),
      distinct_(1 << 20, cfg.seed ^ 0xd157ULL)
{
    C2M_ASSERT(cfg.groupSize >= 1, "groupSize must be >= 1");
    C2M_ASSERT(cfg.groupSize <= (1u << 16),
               "groupSize must fit the journal's 16-bit slot ids");
    for (unsigned s = 0; s < engine.numShards(); ++s) {
        const size_t nf = engine.shardWidth(s) / cfg.groupSize;
        for (size_t i = 0; i < nf; ++i)
            frames_.push_back(
                Frame{s, i * cfg.groupSize,
                      engine.shardStart(s) + i * cfg.groupSize});
    }
    C2M_ASSERT(!frames_.empty(),
               "no shard is wide enough for one virtual group frame");
    frameOwner_.assign(frames_.size(), -1);
    freeFrames_.reserve(frames_.size());
    for (size_t f = frames_.size(); f-- > 0;)
        freeFrames_.push_back(static_cast<uint32_t>(f));
}

VirtualCounterSpace::~VirtualCounterSpace()
{
    if (svc_)
        svc_->stop();
}

void
VirtualCounterSpace::attachScrubber(reliability::Scrubber *scrub)
{
    std::lock_guard<std::mutex> lk(m_);
    scrub_ = scrub;
}

uint64_t
VirtualCounterSpace::physOf(uint32_t slot) const
{
    const Group &g = groups_[slot / cfg_.groupSize];
    const Frame &fr = frames_[static_cast<size_t>(g.frame)];
    return fr.startGlobal + slot % cfg_.groupSize;
}

AddResult
VirtualCounterSpace::add(uint64_t key, int64_t value)
{
    C2M_ASSERT(value > 0, "virtual counter deltas must be > 0");
    std::unique_lock<std::mutex> lk(m_);
    const uint32_t slot = dir_.find(key);
    if (slot != KeyDirectory::kNotFound) {
        const bool resident =
            groups_[slot / cfg_.groupSize].frame >= 0;
        routeExactDelta(lk, slot, value);
        directTick();
        return {resident ? Route::Exact : Route::Journaled, 0};
    }

    // Approximate tier: every key is admitted immediately.
    distinct_.mark(key);
    ++counts_.sketchUpdates;
    const uint64_t est =
        sketch_.update(key, static_cast<uint64_t>(value));
    if (est < cfg_.promoteThreshold) {
        directTick();
        return {Route::Sketch, 0};
    }

    // Promote: the estimate becomes the exact slot's seed value and
    // the sketch bound at promotion its permanent accuracy record.
    const uint32_t new_slot = allocSlot(key);
    const uint32_t gi = new_slot / cfg_.groupSize;
    const uint16_t local =
        static_cast<uint16_t>(new_slot % cfg_.groupSize);
    const double bound = sketch_.pointErrorBound(est);
    Group &g = groups_[gi];
    g.slotKeys[local] = key;
    g.slotSeeds[local] = est;
    g.slotSeedBounds[local] = bound;
    ++counts_.promotions;
    // arg = seeding estimate, arg2 = its analytic error bound.
    if (auto *tr = obs::tracer())
        tr->instant("virt.promote", obs::kServiceTrack, est,
                    static_cast<uint64_t>(std::llround(bound)));
    counts_.estErrorSeedMax = std::max(
        counts_.estErrorSeedMax,
        static_cast<uint64_t>(std::llround(bound)));
    routeExactDelta(lk, new_slot, static_cast<int64_t>(est));
    directTick();
    return {Route::Promoted, est};
}

void
VirtualCounterSpace::addBatch(std::span<const VirtOp> ops)
{
    for (const auto &op : ops)
        add(op.key, op.value);
}

void
VirtualCounterSpace::routeExactDelta(
    std::unique_lock<std::mutex> &lk, uint32_t slot, int64_t value)
{
    const uint32_t gi = slot / cfg_.groupSize;
    Group &g = groups_[gi];
    g.lastTouch = ++tick_;
    if (g.frame < 0) {
        g.journal[static_cast<uint16_t>(slot % cfg_.groupSize)] +=
            value;
        ++g.journaledOps;
        ++counts_.journaledOps;
        if (g.journaledOps >= cfg_.restoreOpThreshold)
            scheduleRestore(gi);
        return;
    }
    const core::BatchOp op{physOf(slot), value, virtGroup_};
    if (cfg_.recordPhysicalOps)
        physLog_.push_back(op);
    if (!svc_) {
        directBuf_.push_back(op);
        return;
    }
    // Two-phase submit: pendingSubmits pins the group's frame while
    // the op is in flight, and the boundary recorded after the
    // submit makes the two-boundary spill-eligibility rule sound
    // (see docs/virt.md). The lock is dropped around submit() so the
    // drainer (which takes m_ in onEpochApplied) can never deadlock
    // against a producer stalled on queue backpressure.
    ++g.pendingSubmits;
    lk.unlock();
    svc_->submit(op);
    lk.lock();
    Group &g2 = groups_[gi]; // groups_ may have grown meanwhile
    --g2.pendingSubmits;
    g2.lastSubmitBoundary = boundary_;
}

uint32_t
VirtualCounterSpace::allocSlot(uint64_t key)
{
    if (openGroup_ < 0 ||
        groups_[static_cast<size_t>(openGroup_)].used >=
            cfg_.groupSize) {
        Group g;
        g.slotKeys.assign(cfg_.groupSize, 0);
        g.slotSeeds.assign(cfg_.groupSize, 0);
        g.slotSeedBounds.assign(cfg_.groupSize, 0.0);
        groups_.push_back(std::move(g));
        openGroup_ = static_cast<int32_t>(groups_.size()) - 1;
    }
    Group &g = groups_[static_cast<size_t>(openGroup_)];
    const uint32_t slot =
        static_cast<uint32_t>(openGroup_) * cfg_.groupSize + g.used;
    ++g.used;
    dir_.insert(key, slot);
    if (g.used == cfg_.groupSize)
        scheduleRestore(static_cast<uint32_t>(openGroup_));
    return slot;
}

void
VirtualCounterSpace::scheduleRestore(uint32_t group)
{
    Group &g = groups_[group];
    if (g.restoreQueued || g.frame >= 0)
        return;
    g.restoreQueued = true;
    pendingRestore_.push_back(group);
}

void
VirtualCounterSpace::directTick()
{
    if (svc_)
        return;
    if (++directOps_ < cfg_.directBatchOps)
        return;
    directOps_ = 0;
    applyDirectBuf();
    maintain();
}

void
VirtualCounterSpace::applyDirectBuf()
{
    if (directBuf_.empty())
        return;
    engine_.accumulateBatch(directBuf_);
    if (scrub_)
        scrub_->noteBatch(directBuf_);
    directBuf_.clear();
}

double
VirtualCounterSpace::fabricNsNow() const
{
    return engine_.stats().fabric.fabricNs;
}

void
VirtualCounterSpace::preSweep(unsigned shard,
                              std::vector<uint8_t> &swept)
{
    if (!scrub_ || swept[shard])
        return;
    // Heal the shard and apply its pending journal before any row
    // rewrite, so the post-write rebase cannot adopt faulty state.
    scrub_->sweepNow(shard);
    swept[shard] = 1;
}

void
VirtualCounterSpace::maintain()
{
    if (pendingRestore_.empty())
        return;
    const unsigned n = engine_.numShards();
    std::vector<uint8_t> swept(n, 0);
    std::vector<uint8_t> dirty(n, 0);
    const uint64_t round_tick = tick_;
    bool moved = false;

    std::vector<uint32_t> mats;     // journal-only materializations
    std::vector<uint32_t> deferred; // no frame available this round
    std::vector<uint32_t> todo;
    todo.swap(pendingRestore_);

    // Phase 1: assign frames (spilling victims as needed) and write
    // every image restore through the reliable row path.
    for (const uint32_t gi : todo) {
        Group &g = groups_[gi];
        g.restoreQueued = false;
        if (g.frame >= 0)
            continue;
        const int32_t f = acquireFrame(swept, dirty, round_tick);
        if (f < 0) {
            g.restoreQueued = true;
            deferred.push_back(gi);
            continue;
        }
        moved = true;
        g.frame = f;
        frameOwner_[static_cast<size_t>(f)] =
            static_cast<int32_t>(gi);
        g.lastTouch = ++tick_; // > round_tick: pinned this round
        if (g.image)
            restoreImage(gi, swept, dirty);
        else
            mats.push_back(gi);
    }
    pendingRestore_ = std::move(deferred);

    // Phase 2: the journal cannot see row-level writes — re-mirror
    // every touched shard from the now-exact fabric.
    if (scrub_)
        for (unsigned s = 0; s < n; ++s)
            if (dirty[s])
                scrub_->rebaseShard(s);

    // Phase 3: first materializations go through the normal fabric
    // op path (after the rebase, so injected CIM faults stay inside
    // the scrub journal's coverage and the next sweep heals them).
    for (const uint32_t gi : mats) {
        Group &g = groups_[gi];
        const Frame &fr = frames_[static_cast<size_t>(g.frame)];
        matOps_.clear();
        for (const auto &[slot, delta] : g.journal)
            if (delta != 0)
                matOps_.push_back(core::BatchOp{
                    fr.startGlobal + slot, delta, virtGroup_});
        g.journal.clear();
        g.journaledOps = 0;
        g.everMaterialized = true;
        if (!matOps_.empty()) {
            if (cfg_.recordPhysicalOps)
                physLog_.insert(physLog_.end(), matOps_.begin(),
                                matOps_.end());
            {
                // runShardOps executes on this thread; the scope
                // pins every materialization op's fabric charge —
                // including the nested plan/fallback path — to the
                // virt ledger row.
                cim::AttrScope attr(
                    engine_.shard(fr.shard).backend().opStatsRef(),
                    cim::FabricCat::VirtMaterialize);
                engine_.runShardOps(fr.shard, matOps_);
            }
            if (scrub_)
                scrub_->noteBatch(matOps_);
        }
        ++counts_.materializations;
        // arg = directory group materialized from journal deltas.
        if (auto *tr = obs::tracer())
            tr->instant("virt.materialize", fr.shard, gi);
    }
    if (moved)
        ++maintRounds_;
}

int32_t
VirtualCounterSpace::acquireFrame(std::vector<uint8_t> &swept,
                                  std::vector<uint8_t> &dirty,
                                  uint64_t round_tick)
{
    if (!freeFrames_.empty()) {
        const int32_t f = static_cast<int32_t>(freeFrames_.back());
        freeFrames_.pop_back();
        return f;
    }
    if (!canSpill_)
        return -1;
    // Cost-normalized LRU: evict the resident group maximizing idle
    // time per modeled spill nanosecond, so cheap-to-move groups
    // absorb the churn. Unmeasured groups price at the fleet mean.
    const uint64_t moves = counts_.spills + counts_.restores;
    const double mean_ns =
        moves > 0 ? counts_.maintenanceFabricNs /
                        static_cast<double>(moves)
                  : 1.0;
    int32_t best = -1;
    double best_score = -1.0;
    for (size_t f = 0; f < frames_.size(); ++f) {
        const int32_t owner = frameOwner_[f];
        if (owner < 0)
            continue;
        const Group &g = groups_[static_cast<size_t>(owner)];
        if (g.lastTouch > round_tick)
            continue; // restored/touched this round: pinned
        if (g.pendingSubmits > 0)
            continue; // a delta is mid-submit
        if (svc_ && !stopped_ &&
            g.lastSubmitBoundary + 2 > boundary_)
            continue; // submitted deltas may not be applied yet
        const double cost =
            g.lastMaintNs > 0.0 ? g.lastMaintNs : mean_ns;
        const double idle =
            static_cast<double>(round_tick - g.lastTouch) + 1.0;
        const double score = idle / std::max(cost, 1.0);
        if (score > best_score) {
            best_score = score;
            best = static_cast<int32_t>(f);
        }
    }
    if (best < 0)
        return -1;
    spillFrame(best, swept, dirty);
    Group &victim =
        groups_[static_cast<size_t>(frameOwner_[best])];
    victim.frame = -1;
    frameOwner_[static_cast<size_t>(best)] = -1;
    ++counts_.spills;
    return best;
}

void
VirtualCounterSpace::spillFrame(int32_t f,
                                std::vector<uint8_t> &swept,
                                std::vector<uint8_t> &dirty)
{
    Group &g =
        groups_[static_cast<size_t>(frameOwner_[static_cast<size_t>(f)])];
    const Frame &fr = frames_[static_cast<size_t>(f)];
    preSweep(fr.shard, swept);
    const double ns0 = fabricNsNow();
    obs::TraceRecorder *traceRec = obs::tracer();
    if (traceRec)
        traceRec->spanBegin("virt.spill", fr.shard, ns0);
    engine_.runShardTask(
        fr.shard, [&](core::C2MEngine &eng, size_t) {
            cim::AttrScope attr(eng.backend().opStatsRef(),
                                cim::FabricCat::VirtSpill);
            if (!g.image)
                g.image = std::make_unique<reliability::RowMirror>(
                    eng.backend().layout(
                        eng.physicalGroup(virtGroup_, 0)),
                    cfg_.groupSize);
            // readCounters accounts Onext/Osign, so the captured
            // values are exact without draining; the cleared frame
            // columns are canonical zero by construction.
            const std::vector<int64_t> all =
                eng.readCounters(virtGroup_);
            const auto first =
                all.begin() + static_cast<long>(fr.startLocal);
            const std::vector<int64_t> slice(
                first, first + cfg_.groupSize);
            g.image->encodeValues(slice);
            BitVector row(engine_.shardWidth(fr.shard));
            for (unsigned rep = 0; rep < eng.numReplicas(); ++rep) {
                const auto &lay = eng.backend().layout(
                    eng.physicalGroup(virtGroup_, rep));
                for (size_t r = 0; r < g.image->numRows(); ++r) {
                    const unsigned fabric_row =
                        g.image->fabricRow(lay, r);
                    row.copyFrom(
                        eng.backend().scrubReadRow(fabric_row));
                    bool any = false;
                    for (unsigned i = 0; i < cfg_.groupSize; ++i)
                        if (row.get(fr.startLocal + i)) {
                            row.set(fr.startLocal + i, false);
                            any = true;
                        }
                    if (any)
                        eng.backend().scrubWriteRow(fabric_row, row);
                }
            }
        });
    const double cost = fabricNsNow() - ns0;
    if (traceRec)
        traceRec->spanEnd("virt.spill", fr.shard, ns0 + cost);
    g.lastMaintNs =
        g.lastMaintNs > 0.0 ? 0.5 * (g.lastMaintNs + cost) : cost;
    counts_.maintenanceFabricNs += cost;
    dirty[fr.shard] = 1;
}

void
VirtualCounterSpace::restoreImage(uint32_t gi,
                                  std::vector<uint8_t> &swept,
                                  std::vector<uint8_t> &dirty)
{
    Group &g = groups_[gi];
    const Frame &fr = frames_[static_cast<size_t>(g.frame)];
    preSweep(fr.shard, swept);
    std::vector<int64_t> values = g.image->decodeValues();
    for (const auto &[slot, delta] : g.journal)
        values[slot] += delta;
    g.journal.clear();
    g.journaledOps = 0;
    g.image->encodeValues(values);
    const double ns0 = fabricNsNow();
    obs::TraceRecorder *traceRec = obs::tracer();
    if (traceRec)
        traceRec->spanBegin("virt.restore", fr.shard, ns0);
    engine_.runShardTask(
        fr.shard, [&](core::C2MEngine &eng, size_t) {
            cim::AttrScope attr(eng.backend().opStatsRef(),
                                cim::FabricCat::VirtRestore);
            BitVector row(engine_.shardWidth(fr.shard));
            BitVector bits(cfg_.groupSize);
            for (unsigned rep = 0; rep < eng.numReplicas(); ++rep) {
                const auto &lay = eng.backend().layout(
                    eng.physicalGroup(virtGroup_, rep));
                for (size_t r = 0; r < g.image->numRows(); ++r) {
                    const unsigned fabric_row =
                        g.image->fabricRow(lay, r);
                    row.copyFrom(
                        eng.backend().scrubReadRow(fabric_row));
                    g.image->dataBitsInto(r, bits);
                    for (unsigned i = 0; i < cfg_.groupSize; ++i)
                        row.set(fr.startLocal + i, bits.get(i));
                    eng.backend().scrubWriteRow(fabric_row, row);
                }
            }
        });
    const double cost = fabricNsNow() - ns0;
    if (traceRec)
        traceRec->spanEnd("virt.restore", fr.shard, ns0 + cost);
    g.lastMaintNs =
        g.lastMaintNs > 0.0 ? 0.5 * (g.lastMaintNs + cost) : cost;
    counts_.maintenanceFabricNs += cost;
    dirty[fr.shard] = 1;
    ++counts_.restores;
}

std::vector<int64_t>
VirtualCounterSpace::readFabricConsistent(
    std::unique_lock<std::mutex> &lk)
{
    if (!svc_)
        return engine_.readAllCounters(virtGroup_);
    for (;;) {
        const uint64_t r0 = maintRounds_;
        lk.unlock();
        std::vector<int64_t> v = svc_->readCounters(virtGroup_);
        lk.lock();
        if (maintRounds_ == r0)
            return v; // no group moved while the lock was dropped
    }
}

int64_t
VirtualCounterSpace::spilledValue(Group &g, uint16_t slot)
{
    int64_t v = 0;
    if (g.image)
        v = g.image->decodeValues()[slot];
    const auto it = g.journal.find(slot);
    if (it != g.journal.end())
        v += it->second;
    return v;
}

int64_t
VirtualCounterSpace::read(uint64_t key)
{
    std::unique_lock<std::mutex> lk(m_);
    const uint32_t slot = dir_.find(key);
    if (slot == KeyDirectory::kNotFound)
        return static_cast<int64_t>(sketch_.estimate(key));
    if (!svc_)
        applyDirectBuf();
    for (;;) {
        Group &g = groups_[slot / cfg_.groupSize];
        if (g.frame < 0)
            return spilledValue(
                g, static_cast<uint16_t>(slot % cfg_.groupSize));
        const std::vector<int64_t> counters =
            readFabricConsistent(lk);
        const Group &g2 = groups_[slot / cfg_.groupSize];
        if (g2.frame < 0)
            continue; // spilled while the lock was dropped
        return counters[physOf(slot)];
    }
}

bool
VirtualCounterSpace::isExact(uint64_t key) const
{
    std::lock_guard<std::mutex> lk(m_);
    return dir_.find(key) != KeyDirectory::kNotFound;
}

uint64_t
VirtualCounterSpace::approxEstimate(uint64_t key) const
{
    std::lock_guard<std::mutex> lk(m_);
    return sketch_.estimate(key);
}

double
VirtualCounterSpace::errorBound(uint64_t key) const
{
    std::lock_guard<std::mutex> lk(m_);
    const uint32_t slot = dir_.find(key);
    if (slot == KeyDirectory::kNotFound)
        return sketch_.pointErrorBound(sketch_.estimate(key));
    return groups_[slot / cfg_.groupSize]
        .slotSeedBounds[slot % cfg_.groupSize];
}

std::vector<VirtualCounterSpace::ExactEntry>
VirtualCounterSpace::exactEntries()
{
    std::unique_lock<std::mutex> lk(m_);
    if (!svc_)
        applyDirectBuf();
    const std::vector<int64_t> counters = readFabricConsistent(lk);
    std::vector<ExactEntry> out;
    out.reserve(dir_.size());
    for (size_t gi = 0; gi < groups_.size(); ++gi) {
        Group &g = groups_[gi];
        for (uint32_t i = 0; i < g.used; ++i) {
            const uint32_t slot = static_cast<uint32_t>(
                gi * cfg_.groupSize + i);
            ExactEntry e;
            e.key = g.slotKeys[i];
            e.seed = g.slotSeeds[i];
            e.seedBound = g.slotSeedBounds[i];
            e.resident = g.frame >= 0;
            e.value = e.resident
                          ? counters[physOf(slot)]
                          : spilledValue(
                                g, static_cast<uint16_t>(i));
            out.push_back(e);
        }
    }
    return out;
}

std::vector<VirtualCounterSpace::ExactEntry>
VirtualCounterSpace::topK(size_t k)
{
    std::vector<ExactEntry> all = exactEntries();
    std::sort(all.begin(), all.end(),
              [](const ExactEntry &a, const ExactEntry &b) {
                  return a.value != b.value ? a.value > b.value
                                            : a.key < b.key;
              });
    if (all.size() > k)
        all.resize(k);
    return all;
}

void
VirtualCounterSpace::flush()
{
    if (!svc_) {
        std::unique_lock<std::mutex> lk(m_);
        applyDirectBuf();
        maintain();
        // This round's restores pin their frames; a second pass
        // lets restores deferred for lack of a victim proceed.
        if (!pendingRestore_.empty())
            maintain();
        return;
    }
    // Drain everything submitted so far, then force further epoch
    // boundaries (flush() alone short-circuits on an idle service,
    // and a space whose deltas are all journaled submits nothing)
    // until in-flight deltas age past the two-boundary rule and
    // every pending restore finds a frame.
    svc_->flushAndWait();
    for (int i = 0; i < 8; ++i) {
        {
            std::lock_guard<std::mutex> lk(m_);
            if (pendingRestore_.empty())
                return;
        }
        svc_->wait(svc_->forceEpoch());
    }
}

VirtStats
VirtualCounterSpace::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    VirtStats s = counts_;
    s.keysExact = dir_.size();
    uint64_t resident = 0;
    for (const auto &g : groups_)
        if (g.frame >= 0)
            ++resident;
    s.residentGroups = resident;
    s.spilledGroups = groups_.size() - resident;
    s.pendingRestores = pendingRestore_.size();
    s.sketchKeys = distinct_.estimate();
    s.dirProbes = dir_.probes();
    s.estErrorBound = sketch_.pointErrorBound(0);
    return s;
}

CounterMap
VirtualCounterSpace::report() const
{
    return counters();
}

void
VirtualCounterSpace::onShardOps(unsigned shard,
                                std::span<const core::BatchOp> ops)
{
    if (scrub_)
        scrub_->onShardOps(shard, ops);
}

void
VirtualCounterSpace::onEpochApplied(uint64_t epoch)
{
    if (scrub_)
        scrub_->onEpochApplied(epoch);
    std::lock_guard<std::mutex> lk(m_);
    ++boundary_;
    maintain();
}

void
VirtualCounterSpace::onStop(uint64_t epoch)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stopped_ = true; // every submitted delta is applied at stop
        ++boundary_;
        maintain();
        if (!pendingRestore_.empty())
            maintain();
    }
    // The scrubber's full stop sweep runs last so it reconciles the
    // materialization deltas noteBatch()ed above.
    if (scrub_)
        scrub_->onStop(epoch);
}

CounterMap
VirtualCounterSpace::counters() const
{
    CounterMap merged = stats().toCounters();
    if (scrub_)
        mergeCounters(merged, scrub_->counters());
    return merged;
}

} // namespace virt
} // namespace c2m
