#include "virt/sketch.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace c2m {
namespace virt {

// ---------------------------------------------------------------- Morris

MorrisCounter::MorrisCounter(double a) : a_(a)
{
    C2M_ASSERT(a > 0.0, "Morris growth parameter must be > 0");
}

void
MorrisCounter::add(uint64_t delta, Rng &rng)
{
    for (uint64_t i = 0; i < delta && c_ < UINT8_MAX; ++i)
        if (rng.nextDouble() < std::pow(1.0 + a_, -double(c_)))
            ++c_;
}

uint64_t
MorrisCounter::estimate() const
{
    return static_cast<uint64_t>(
        std::llround((std::pow(1.0 + a_, double(c_)) - 1.0) / a_));
}

double
MorrisCounter::sigma(double a, double n)
{
    if (n <= 1.0)
        return 0.0;
    return std::sqrt(a * n * (n - 1.0) / 2.0);
}

// ------------------------------------------------------------- count-min

CountMinSketch::CountMinSketch(const SketchConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    C2M_ASSERT(cfg.width >= 2, "sketch width must be >= 2");
    C2M_ASSERT(cfg.depth >= 1, "sketch depth must be >= 1");
    uint64_t sm = cfg.seed ^ 0xc0de57a7ULL;
    rowSeeds_.resize(cfg.depth);
    for (auto &s : rowSeeds_)
        s = splitMix64(sm);
    const size_t cells = cfg.width * cfg.depth;
    if (cfg.cells == SketchCells::Exact) {
        exact_.assign(cells, 0);
    } else {
        morris_.assign(cells, 0);
        // Precompute per-exponent estimate and increment probability
        // so the update loop never calls pow().
        morrisEst_.resize(size_t{UINT8_MAX} + 1);
        morrisIncP_.resize(size_t{UINT8_MAX} + 1);
        for (size_t c = 0; c <= UINT8_MAX; ++c) {
            const double p = std::pow(1.0 + cfg.morrisA, double(c));
            morrisEst_[c] = static_cast<uint64_t>(
                std::llround((p - 1.0) / cfg.morrisA));
            morrisIncP_[c] = 1.0 / p;
        }
    }
}

size_t
CountMinSketch::cellIndex(unsigned row, uint64_t key) const
{
    uint64_t h = key ^ rowSeeds_[row];
    return size_t{row} * cfg_.width +
           static_cast<size_t>(splitMix64(h) % cfg_.width);
}

uint64_t
CountMinSketch::update(uint64_t key, uint64_t delta)
{
    C2M_ASSERT(delta > 0, "sketch updates must be positive");
    totalAdded_ += delta;
    uint64_t est = UINT64_MAX;
    for (unsigned r = 0; r < cfg_.depth; ++r) {
        const size_t i = cellIndex(r, key);
        if (cfg_.cells == SketchCells::Exact) {
            exact_[i] += delta;
            est = std::min(est, exact_[i]);
        } else {
            uint8_t &c = morris_[i];
            for (uint64_t u = 0; u < delta && c < UINT8_MAX; ++u)
                if (rng_.nextDouble() < morrisIncP_[c])
                    ++c;
            est = std::min(est, morrisEst_[c]);
        }
    }
    return est;
}

uint64_t
CountMinSketch::estimate(uint64_t key) const
{
    uint64_t est = UINT64_MAX;
    for (unsigned r = 0; r < cfg_.depth; ++r) {
        const size_t i = cellIndex(r, key);
        est = std::min(est, cfg_.cells == SketchCells::Exact
                                ? exact_[i]
                                : morrisEst_[morris_[i]]);
    }
    return est;
}

double
CountMinSketch::collisionBound() const
{
    return M_E / static_cast<double>(cfg_.width) *
           static_cast<double>(totalAdded_);
}

double
CountMinSketch::pointErrorBound(uint64_t estimate) const
{
    double bound = collisionBound();
    if (cfg_.cells == SketchCells::Morris)
        bound += 3.0 * MorrisCounter::sigma(
                           cfg_.morrisA,
                           static_cast<double>(estimate) + bound);
    return bound;
}

// ---------------------------------------------------------------- linear

LinearCounter::LinearCounter(size_t bits, uint64_t seed)
    : seed_(seed), bits_(bits), words_((bits + 63) / 64, 0)
{
    C2M_ASSERT(bits >= 64, "linear counter needs >= 64 bits");
}

void
LinearCounter::mark(uint64_t key)
{
    uint64_t h = key ^ seed_;
    const size_t bit = static_cast<size_t>(splitMix64(h) % bits_);
    uint64_t &w = words_[bit / 64];
    const uint64_t m = uint64_t{1} << (bit % 64);
    if (!(w & m)) {
        w |= m;
        ++marked_;
    }
}

uint64_t
LinearCounter::estimate() const
{
    if (marked_ == bits_) // saturated: report the map's ceiling
        return static_cast<uint64_t>(
            std::llround(double(bits_) * std::log(double(bits_))));
    const double v =
        double(bits_ - marked_) / static_cast<double>(bits_);
    return static_cast<uint64_t>(
        std::llround(-double(bits_) * std::log(v)));
}

} // namespace virt
} // namespace c2m
