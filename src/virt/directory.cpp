#include "virt/directory.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace virt {

KeyDirectory::KeyDirectory(uint64_t seed, size_t initial_capacity)
    : seed_(seed)
{
    size_t cap = 16;
    while (cap < initial_capacity)
        cap <<= 1;
    entries_.assign(cap, Entry{0, kNotFound});
}

size_t
KeyDirectory::bucketOf(uint64_t key, size_t capacity) const
{
    uint64_t h = key ^ seed_;
    return static_cast<size_t>(splitMix64(h) & (capacity - 1));
}

uint32_t
KeyDirectory::find(uint64_t key) const
{
    const size_t cap = entries_.size();
    size_t i = bucketOf(key, cap);
    for (;;) {
        const Entry &e = entries_[i];
        if (e.slot == kNotFound)
            return kNotFound;
        if (e.key == key)
            return e.slot;
        ++probes_;
        i = (i + 1) & (cap - 1);
    }
}

void
KeyDirectory::insert(uint64_t key, uint32_t slot)
{
    C2M_ASSERT(slot != kNotFound, "kNotFound is not a valid slot");
    if (2 * (size_ + 1) > entries_.size())
        grow();
    const size_t cap = entries_.size();
    size_t i = bucketOf(key, cap);
    while (entries_[i].slot != kNotFound) {
        C2M_ASSERT(entries_[i].key != key,
                   "duplicate directory insert for key ", key);
        ++probes_;
        i = (i + 1) & (cap - 1);
    }
    entries_[i] = Entry{key, slot};
    ++size_;
}

void
KeyDirectory::grow()
{
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.size() * 2, Entry{0, kNotFound});
    const size_t cap = entries_.size();
    for (const Entry &e : old) {
        if (e.slot == kNotFound)
            continue;
        size_t i = bucketOf(e.key, cap);
        while (entries_[i].slot != kNotFound)
            i = (i + 1) & (cap - 1);
        entries_[i] = e;
    }
}

} // namespace virt
} // namespace c2m
