#ifndef C2M_VIRT_VIRTSPACE_HPP
#define C2M_VIRT_VIRTSPACE_HPP

/**
 * @file
 * Counter virtualization: arbitrary 64-bit key spaces over a finite
 * counter fabric.
 *
 * A VirtualCounterSpace fronts a core::ShardedEngine (optionally
 * through a service::IngestService) and serves uint64_t keys far in
 * excess of the fabric's physical counter count. Keys live in one of
 * three tiers:
 *
 *  - exact + resident: the key owns a slot in a virtual counter
 *    group that is materialized in a physical frame (a contiguous
 *    groupSize-column range of one shard). Deltas go to the fabric
 *    as ordinary BatchOps; values are bit-exact.
 *  - exact + spilled: the group's counter values were swapped out of
 *    the fabric into an ECC-encoded reliability::RowMirror image —
 *    the same canonical row serialization the scrubber trusts — and
 *    the frame was reassigned. Deltas accumulate in a host-side
 *    journal; restore decodes the image, folds the journal in, and
 *    writes the canonical rows back through the reliable host path
 *    (backend scrubWriteRow), so a spill/restore round trip is
 *    bit-exact (pinned by test_virt.cpp).
 *  - approximate: keys the directory has never promoted are absorbed
 *    by a count-min front sketch (optionally with Morris-counter
 *    cells) with the analytic error bounds documented in
 *    virt/sketch.hpp. Every key is admitted immediately; when a
 *    key's estimate crosses VirtConfig::promoteThreshold it is
 *    promoted into the exact tier, carrying the estimate as its seed
 *    value and its sketch error bound as a per-key accuracy record.
 *
 * Eviction is cost-normalized LRU: when a restore needs a frame and
 * none is free, the resident group maximizing idle-time divided by
 * its measured spill cost (modeled fabric ns, core::FabricCost
 * spine) is spilled. Backends without caps().rowScrub cannot spill;
 * groups beyond the fabric capacity then simply stay journaled
 * host-side (still exact, never resident).
 *
 * Drive modes:
 *  - direct: construct from a ShardedEngine. Single-driver like the
 *    engine itself; deltas are buffered and applied in batches
 *    (drain-planner friendly), maintenance (spill/restore) runs at
 *    batch boundaries and flush().
 *  - service: construct from an IngestService. add() is thread-safe;
 *    exact resident deltas are submitted to the service, and the
 *    space installs itself as the service's EpochObserver so
 *    maintenance runs at epoch boundaries with the engine quiescent.
 *    A group is only spilled once every delta submitted to it is
 *    known to have been applied (two-boundary rule, see docs/virt.md).
 *
 * Scrub integration: attachScrubber() chains a reliability::Scrubber
 * behind the space. Spill/restore row writes are invisible to the
 * scrubber's journal, so maintenance brackets them with a forced
 * sweep (healing the shard first) and a per-shard rebase (adopting
 * the new state); materialization deltas go through noteBatch. A
 * scrubbed virtualized run under CIM fault injection stays bit-exact
 * for exact-tier keys (pinned by test_virt.cpp).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "core/sharded.hpp"
#include "reliability/mirror.hpp"
#include "reliability/scrubber.hpp"
#include "service/ingest.hpp"
#include "virt/directory.hpp"
#include "virt/sketch.hpp"

namespace c2m {
namespace virt {

/** One keyed update. Deltas must be positive (counting workloads). */
struct VirtOp
{
    uint64_t key;
    int64_t value;
};

/** Which tier absorbed an add(). */
enum class Route : uint8_t
{
    Exact,     ///< resident exact slot; delta sent to the fabric
    Journaled, ///< exact but spilled; delta journaled host-side
    Sketch,    ///< approximate tier
    Promoted,  ///< this add pushed the key into the exact tier
};

struct AddResult
{
    Route route;
    /**
     * Sketch estimate carried into the exact tier as the seed value
     * (Promoted only). The caller's serial-replay reference for this
     * key is seed + every later delta.
     */
    uint64_t seed = 0;
};

struct VirtConfig
{
    /** Slots per virtual group = columns per physical frame. Must
     *  fit inside every shard (groupSize <= min shard width). */
    unsigned groupSize = 64;
    /** Sketch estimate at which a key is promoted to exact. */
    uint64_t promoteThreshold = 64;
    /** Journaled ops after which a spilled group is re-restored. */
    uint64_t restoreOpThreshold = 32;
    /** Direct mode: buffered ops per accumulateBatch application. */
    size_t directBatchOps = 4096;
    /** Record every BatchOp issued to the fabric (tests/benches). */
    bool recordPhysicalOps = false;
    SketchConfig sketch;
    uint64_t seed = 0x5eed5eedULL;
};

struct VirtStats
{
    // Gauges (recomputed by stats()).
    uint64_t keysExact = 0;       ///< keys in the exact directory
    uint64_t residentGroups = 0;  ///< groups holding a frame
    uint64_t spilledGroups = 0;   ///< groups swapped out / unborn
    uint64_t pendingRestores = 0; ///< groups queued for a frame
    uint64_t sketchKeys = 0;      ///< distinct-key estimate
    uint64_t dirProbes = 0;       ///< directory collision probes
    double estErrorBound = 0.0;   ///< current sketch 3-sigma bound
    // Monotonic counters.
    uint64_t spills = 0;           ///< groups swapped out to images
    uint64_t restores = 0;         ///< images swapped back in
    uint64_t materializations = 0; ///< first journal-only turn-ins
    uint64_t promotions = 0;       ///< keys promoted to exact
    uint64_t sketchUpdates = 0;    ///< deltas absorbed approximately
    uint64_t journaledOps = 0;     ///< deltas journaled host-side
    uint64_t estErrorSeedMax = 0;  ///< max bound carried by a seed
    double maintenanceFabricNs = 0.0; ///< modeled spill/restore ns

    /** Named "virt.*" counters for merged reports. */
    CounterMap toCounters() const;
};

class VirtualCounterSpace final : public service::EpochObserver
{
  public:
    /** Direct mode: single-driver over a quiescent engine. */
    explicit VirtualCounterSpace(core::ShardedEngine &engine,
                                 const VirtConfig &cfg = {});
    /**
     * Service mode: thread-safe adds through @p svc. Installs itself
     * as the service's epoch observer (call before any traffic); the
     * service must outlive the space.
     */
    explicit VirtualCounterSpace(service::IngestService &svc,
                                 const VirtConfig &cfg = {});

    /** Service mode: stops the service (idempotent) so no observer
     *  hook can fire after the space is gone. */
    ~VirtualCounterSpace() override;

    VirtualCounterSpace(const VirtualCounterSpace &) = delete;
    VirtualCounterSpace &operator=(const VirtualCounterSpace &) =
        delete;

    /** True iff @p engine's substrate can spill (caps().rowScrub). */
    static bool supportsSpill(core::ShardedEngine &engine);

    const VirtConfig &config() const { return cfg_; }
    /** Physical frames (resident-group capacity). */
    size_t numFrames() const { return frames_.size(); }

    /**
     * Chain a scrubber behind the space. In service mode the space
     * forwards the epoch-boundary hooks (attach the scrubber here,
     * not to the service); in both modes maintenance brackets its
     * row writes with sweepNow/rebaseShard. Call before traffic; the
     * scrubber must outlive the space.
     */
    void attachScrubber(reliability::Scrubber *scrub);

    /** Absorb one delta (value > 0) for @p key. */
    AddResult add(uint64_t key, int64_t value);
    void addBatch(std::span<const VirtOp> ops);

    /**
     * Point read: the exact value for exact-tier keys (resident or
     * spilled), the sketch estimate otherwise. Resident reads cost a
     * full fabric read — batch them through exactEntries()/topK().
     */
    int64_t read(uint64_t key);

    bool isExact(uint64_t key) const;
    /** Sketch point estimate (whatever the key's tier). */
    uint64_t approxEstimate(uint64_t key) const;
    /**
     * Accuracy record for @p key: the seed error bound carried at
     * promotion for exact keys, the current sketch 3-sigma bound for
     * approximate ones. Exact keys accumulate no further error.
     */
    double errorBound(uint64_t key) const;

    struct ExactEntry
    {
        uint64_t key;
        int64_t value;
        uint64_t seed;    ///< sketch estimate carried at promotion
        double seedBound; ///< error bound recorded at promotion
        bool resident;
    };

    /** Every exact key with its current value (one fabric read). */
    std::vector<ExactEntry> exactEntries();
    /** Top @p k exact keys by value, descending. */
    std::vector<ExactEntry> topK(size_t k);

    /**
     * Direct mode: apply buffered deltas and run maintenance.
     * Service mode: flush the service and drive epoch boundaries
     * until every pending restore has a frame (or nothing more can
     * move).
     */
    void flush();

    VirtStats stats() const;
    /** virt.* counters (plus the chained scrubber's, if any). */
    CounterMap report() const;
    /** Fabric ops issued, when cfg.recordPhysicalOps. */
    const std::vector<core::BatchOp> &physicalLog() const
    {
        return physLog_;
    }

    // ---- service::EpochObserver (drainer thread) ----
    void onShardOps(unsigned shard,
                    std::span<const core::BatchOp> ops) override;
    void onEpochApplied(uint64_t epoch) override;
    void onStop(uint64_t epoch) override;
    CounterMap counters() const override;

  private:
    struct Frame
    {
        unsigned shard;
        size_t startLocal;    ///< first column within the shard
        uint64_t startGlobal; ///< first logical counter index
    };

    struct Group
    {
        int32_t frame = -1; ///< physical frame; -1 = spilled/unborn
        uint32_t used = 0;  ///< allocated slots
        uint64_t lastTouch = 0;
        bool restoreQueued = false;
        bool everMaterialized = false;
        /**
         * Spilled counter values as an ECC-encoded canonical row
         * image (null = group has never been materialized: all
         * values zero apart from the journal).
         */
        std::unique_ptr<reliability::RowMirror> image;
        /** slot -> pending delta while not resident (ordered so
         *  materialization op order is deterministic). */
        std::map<uint16_t, int64_t> journal;
        uint64_t journaledOps = 0; ///< since last restore
        /** Service mode: boundary of the newest routed delta and
         *  deltas mid-submit (two-boundary spill safety rule). */
        uint64_t lastSubmitBoundary = 0;
        uint32_t pendingSubmits = 0;
        double lastMaintNs = 0.0; ///< measured spill cost (eviction)
        std::vector<uint64_t> slotKeys;
        std::vector<uint64_t> slotSeeds;
        std::vector<double> slotSeedBounds;
    };

    VirtualCounterSpace(core::ShardedEngine &engine,
                        service::IngestService *svc,
                        const VirtConfig &cfg);

    uint64_t physOf(uint32_t slot) const;
    /** Route a delta for an existing exact slot (lock held; may
     *  release it around a service submit). */
    void routeExactDelta(std::unique_lock<std::mutex> &lk,
                         uint32_t slot, int64_t value);
    uint32_t allocSlot(uint64_t key);
    void scheduleRestore(uint32_t group);
    void applyDirectBuf();
    /** Direct-mode cadence: every directBatchOps adds, apply the
     *  buffered fabric ops and run a maintenance round. */
    void directTick();

    /** Spill/restore pass; engine must be quiescent (lock held). */
    void maintain();
    int32_t acquireFrame(std::vector<uint8_t> &swept,
                         std::vector<uint8_t> &dirty,
                         uint64_t round_tick);
    void spillFrame(int32_t f, std::vector<uint8_t> &swept,
                    std::vector<uint8_t> &dirty);
    void restoreImage(uint32_t gi, std::vector<uint8_t> &swept,
                      std::vector<uint8_t> &dirty);
    void preSweep(unsigned shard, std::vector<uint8_t> &swept);
    double fabricNsNow() const;

    /** Full logical counter read, consistent with the directory
     *  (retries if maintenance moved groups mid-read). */
    std::vector<int64_t>
    readFabricConsistent(std::unique_lock<std::mutex> &lk);
    int64_t spilledValue(Group &g, uint16_t slot);

    core::ShardedEngine &engine_;
    service::IngestService *svc_;
    reliability::Scrubber *scrub_ = nullptr;
    VirtConfig cfg_;
    unsigned virtGroup_ = 0; ///< engine logical group the space owns
    bool canSpill_;
    std::vector<Frame> frames_;
    std::vector<int32_t> frameOwner_; ///< group id or -1
    std::vector<uint32_t> freeFrames_;
    std::vector<Group> groups_;
    int32_t openGroup_ = -1; ///< group receiving new promotions
    KeyDirectory dir_;
    CountMinSketch sketch_;
    LinearCounter distinct_;
    std::vector<uint32_t> pendingRestore_; ///< FIFO
    std::vector<core::BatchOp> directBuf_;
    std::vector<core::BatchOp> physLog_;
    std::vector<core::BatchOp> matOps_; ///< maintenance scratch
    uint64_t tick_ = 0;
    size_t directOps_ = 0; ///< adds since the last direct maintain
    uint64_t boundary_ = 0;    ///< service epochs observed
    uint64_t maintRounds_ = 0; ///< maintenance passes that moved state
    bool stopped_ = false;
    VirtStats counts_; ///< monotonic fields only
    mutable std::mutex m_;
};

} // namespace virt
} // namespace c2m

#endif // C2M_VIRT_VIRTSPACE_HPP
