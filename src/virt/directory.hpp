#ifndef C2M_VIRT_DIRECTORY_HPP
#define C2M_VIRT_DIRECTORY_HPP

/**
 * @file
 * Hashed key -> slot directory of the counter virtualization layer.
 *
 * Maps arbitrary 64-bit keys to virtual slot ids (group * groupSize +
 * slot, assigned by VirtualCounterSpace). Open addressing with linear
 * probing over a power-of-two table: each entry stores the full key,
 * so hash collisions are resolved by probing, never by aliasing two
 * keys onto one slot (pinned by the DirectoryCollision tests). Keys
 * are only ever inserted — the exact tier never demotes — so there
 * are no tombstones and lookups can stop at the first empty entry.
 *
 * The cumulative probe count is exported (virt.dir_probes) so skewed
 * hash behaviour is visible in reports instead of silently degrading
 * the submit path.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace c2m {
namespace virt {

class KeyDirectory
{
  public:
    static constexpr uint32_t kNotFound = UINT32_MAX;

    explicit KeyDirectory(uint64_t seed = 0x5eed5eedULL,
                          size_t initial_capacity = 1024);

    /** Slot id of @p key, or kNotFound. */
    uint32_t find(uint64_t key) const;

    /** Insert @p key -> @p slot; the key must not be present. */
    void insert(uint64_t key, uint32_t slot);

    size_t size() const { return size_; }
    size_t capacity() const { return entries_.size(); }
    /** Cumulative probe steps beyond the home bucket (collisions). */
    uint64_t probes() const { return probes_; }

    /** Initial probe bucket of @p key (exposed for collision tests). */
    size_t homeBucket(uint64_t key) const
    {
        return bucketOf(key, entries_.size());
    }

  private:
    struct Entry
    {
        uint64_t key;
        uint32_t slot; ///< kNotFound marks an empty entry
    };

    size_t bucketOf(uint64_t key, size_t capacity) const;
    void grow();

    uint64_t seed_;
    std::vector<Entry> entries_;
    size_t size_ = 0;
    mutable uint64_t probes_ = 0;
};

} // namespace virt
} // namespace c2m

#endif // C2M_VIRT_DIRECTORY_HPP
