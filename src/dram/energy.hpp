#ifndef C2M_DRAM_ENERGY_HPP
#define C2M_DRAM_ENERGY_HPP

/**
 * @file
 * Energy and area model for the DRAM rank and the CIM command stream.
 *
 * Per-command energies are representative DDR4/DDR5 datasheet-derived
 * values (row activation ~1.2 nJ and precharge ~0.3 nJ per chip for a
 * 1 KB chip row); an AAP performs two activations and one precharge in
 * every chip of the rank (data + ECC chips operate in lockstep).
 * Throughput-per-area uses a representative 45 mm^2 die for a 4 Gb
 * DDR5 chip; the GPU baseline die is 628 mm^2 (GA102).
 *
 * Absolute joules are not the reproduction target -- the paper's
 * GOPS/W and GOPS/mm^2 *ratios* between SIMDRAM, C2M and the GPU are,
 * and those depend on these constants only through common factors.
 */

#include <cstdint>

namespace c2m {
namespace dram {

struct EnergyModel
{
    double eActPerChipNj = 1.2;
    double ePrePerChipNj = 0.3;
    double eBurstPerChipNj = 0.025;   ///< per 64 B rank burst, per chip
    double staticPowerPerChipW = 0.08;
    unsigned chipsPerRank = 9;        ///< 8 data + 1 ECC
    double chipAreaMm2 = 45.0;

    /** Energy of one AAP across the rank (2 ACT + 1 PRE per chip). */
    double aapEnergyNj() const
    {
        return chipsPerRank * (2.0 * eActPerChipNj + ePrePerChipNj);
    }

    /** Energy of one AP across the rank (1 ACT + 1 PRE per chip). */
    double apEnergyNj() const
    {
        return chipsPerRank * (eActPerChipNj + ePrePerChipNj);
    }

    /** Energy to read or write one full rank row. */
    double rowAccessEnergyNj(unsigned row_bytes) const
    {
        const double bursts = static_cast<double>(row_bytes) / 64.0;
        return chipsPerRank *
               (eActPerChipNj + ePrePerChipNj +
                bursts * eBurstPerChipNj);
    }

    double staticPowerW() const
    {
        return chipsPerRank * staticPowerPerChipW;
    }

    double rankAreaMm2() const
    {
        return chipsPerRank * chipAreaMm2;
    }

    static EnergyModel ddr5() { return EnergyModel{}; }
};

} // namespace dram
} // namespace c2m

#endif // C2M_DRAM_ENERGY_HPP
