#ifndef C2M_DRAM_TIMING_HPP
#define C2M_DRAM_TIMING_HPP

/**
 * @file
 * DRAM timing parameters (Sec. 2.1, Sec. 7.2.1).
 *
 * CIM command sequences are built from AAP (activate-activate-
 * precharge) and AP commands whose latency is governed by:
 *
 *  - tAAP = tRAS + tRP: a bank is busy for this long per AAP;
 *  - tRRD: minimum spacing between row activations to different banks;
 *  - tFAW: any four consecutive activations span at least this window.
 *
 * The paper's DDR5_4400 setup uses a conservative tFAW of 14.5 ns, so
 * a 16-bank configuration sustains one AAP roughly every
 * max(tRRD, tFAW/4) while one bank sustains one every tAAP + tRRD.
 */

#include <cstdint>
#include <string>

namespace c2m {
namespace dram {

struct DramTimings
{
    double tCkNs = 0.4545;   ///< DDR5-4400 clock (2200 MHz)
    double tRasNs = 32.0;
    double tRpNs = 14.5;
    double tRcdNs = 14.5;
    double tRrdNs = 3.636;   ///< tRRD_L = 8 tCK
    double tFawNs = 14.5;    ///< paper's conservative value
    double tBurstNs = 3.636; ///< BL16 burst (64 B rank transfer)

    /** Latency of one AAP occupying its bank. */
    double tAapNs() const { return tRasNs + tRpNs; }

    /** Single-bank AAP issue period (Sec. 7.2.1). */
    double bankPeriodNs() const { return tAapNs() + tRrdNs; }

    /**
     * Steady-state AAP issue interval with @p banks banks active:
     * round-robin hides the per-bank period until tRRD/tFAW become
     * the rank-level bottleneck. Identical to the scheduler's
     * AapScheduler::steadyPeriodNs (pinned by tests) — the engines
     * use this to turn a shard's serial fabric time into the
     * bank-parallel critical path.
     */
    double issueIntervalNs(unsigned banks) const
    {
        const double rank =
            tRrdNs > tFawNs / 4.0 ? tRrdNs : tFawNs / 4.0;
        const double bank = bankPeriodNs() / (banks ? banks : 1);
        return bank > rank ? bank : rank;
    }

    /**
     * Time to stream a full rank row through the channel (RD or WR),
     * including activate and precharge.
     */
    double rowAccessNs(unsigned row_bytes) const
    {
        const double bursts = static_cast<double>(row_bytes) / 64.0;
        return tRcdNs + bursts * tBurstNs + tRpNs;
    }

    static DramTimings ddr5_4400();

    std::string describe() const;
};

} // namespace dram
} // namespace c2m

#endif // C2M_DRAM_TIMING_HPP
