#include "dram/geometry.hpp"

#include <sstream>

namespace c2m {
namespace dram {

DramGeometry
DramGeometry::ddr5_4gb()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.dataChipsPerRank = 8;
    g.eccChipsPerRank = 1;
    g.banksPerChip = 32;
    g.subarraysPerBank = 16;
    g.rowsPerSubarray = 1024;
    g.rowBytesPerChip = 1024;
    return g;
}

std::string
DramGeometry::describe() const
{
    std::ostringstream os;
    os << channels << " channel(s), " << ranksPerChannel
       << " rank(s), " << dataChipsPerRank << "+" << eccChipsPerRank
       << " chips, " << banksPerChip << " banks/chip, "
       << subarraysPerBank << " subarrays/bank, " << rowsPerSubarray
       << " rows/subarray, " << rowBytesPerChip
       << " B chip row (" << rankRowBytes() / 1024
       << " KB rank row), " << (chipBits() >> 30) << " Gb/chip";
    return os.str();
}

} // namespace dram
} // namespace c2m
