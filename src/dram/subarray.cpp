#include "dram/subarray.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace dram {

std::vector<BitVector>
transposeToRows(const std::vector<uint64_t> &values, unsigned num_bits,
                size_t cols)
{
    C2M_ASSERT(values.size() <= cols, "more values than columns");
    C2M_ASSERT(num_bits >= 1 && num_bits <= 64, "bad bit width");
    std::vector<BitVector> rows(num_bits, BitVector(cols));
    for (size_t j = 0; j < values.size(); ++j) {
        const uint64_t v = values[j];
        if (num_bits < 64)
            C2M_ASSERT(v < (1ULL << num_bits), "value ", v,
                       " does not fit in ", num_bits, " bits");
        for (unsigned b = 0; b < num_bits; ++b)
            if ((v >> b) & 1)
                rows[b].set(j, true);
    }
    return rows;
}

std::vector<uint64_t>
transposeFromRows(const std::vector<BitVector> &rows, size_t count)
{
    C2M_ASSERT(!rows.empty(), "no rows to transpose");
    C2M_ASSERT(rows.size() <= 64, "too many rows for uint64 values");
    C2M_ASSERT(count <= rows[0].size(), "more columns than the row has");
    std::vector<uint64_t> values(count, 0);
    for (unsigned b = 0; b < rows.size(); ++b) {
        C2M_ASSERT(rows[b].size() == rows[0].size(),
                   "ragged row widths");
        for (size_t j = 0; j < count; ++j)
            if (rows[b].get(j))
                values[j] |= 1ULL << b;
    }
    return values;
}

BitVector
maskRow(const std::vector<uint8_t> &mask, size_t cols)
{
    C2M_ASSERT(mask.size() <= cols, "mask longer than the row");
    BitVector row(cols);
    for (size_t j = 0; j < mask.size(); ++j)
        if (mask[j])
            row.set(j, true);
    return row;
}

} // namespace dram
} // namespace c2m
