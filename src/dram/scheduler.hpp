#ifndef C2M_DRAM_SCHEDULER_HPP
#define C2M_DRAM_SCHEDULER_HPP

/**
 * @file
 * Scheduling model for AAP/AP command streams (Sec. 7.2.1).
 *
 * The memory controller broadcasts CIM command sequences to one or
 * more banks. Three constraints govern the achievable rate:
 *
 *  1. a bank is occupied for tAAP + tRRD per AAP (one AAP per
 *     tAAP + tRRD on a single bank);
 *  2. consecutive issues are separated by at least tRRD;
 *  3. any four consecutive issues span at least tFAW.
 *
 * With 4 banks the 5th issue is still bounded by tAAP + tRRD after the
 * 1st; with 16 banks the binding constraint becomes max(tRRD, tFAW/4),
 * exactly the behaviour the paper describes. An event-accurate
 * scheduler (issueOne) and a closed-form steady-state stream model
 * (streamTimeNs) are provided; tests check they agree.
 */

#include <cstdint>
#include <vector>

#include "dram/timing.hpp"

namespace c2m {
namespace dram {

class AapScheduler
{
  public:
    AapScheduler(DramTimings timings, unsigned num_banks);

    /**
     * Issue one AAP to @p bank at the earliest legal time.
     * @return the issue time in ns.
     */
    double issueOne(unsigned bank);

    /** Issue @p count AAPs round-robin across all banks. */
    void issueRoundRobin(uint64_t count);

    /** Completion time of everything issued so far. */
    double finishNs() const;

    uint64_t issued() const { return issued_; }

    void reset();

    /** Steady-state period per AAP for @p banks banks. */
    static double steadyPeriodNs(const DramTimings &t, unsigned banks);

    /**
     * Closed-form completion time of a uniform stream of @p count
     * AAPs round-robined over @p banks banks.
     */
    static double streamTimeNs(const DramTimings &t, uint64_t count,
                               unsigned banks);

  private:
    DramTimings timings_;
    std::vector<double> bankReady_;
    double lastIssue_;
    double faw_[4];       ///< issue times of the last four activations
    unsigned fawHead_ = 0;
    uint64_t issued_ = 0;
    double lastFinish_ = 0.0;
    unsigned rrNext_ = 0;
};

} // namespace dram
} // namespace c2m

#endif // C2M_DRAM_SCHEDULER_HPP
