#include "dram/scheduler.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace c2m {
namespace dram {

AapScheduler::AapScheduler(DramTimings timings, unsigned num_banks)
    : timings_(timings)
{
    C2M_ASSERT(num_banks >= 1, "need at least one bank");
    bankReady_.assign(num_banks, 0.0);
    reset();
}

void
AapScheduler::reset()
{
    std::fill(bankReady_.begin(), bankReady_.end(), 0.0);
    lastIssue_ = -1e18;
    for (auto &t : faw_)
        t = -1e18;
    fawHead_ = 0;
    issued_ = 0;
    lastFinish_ = 0.0;
    rrNext_ = 0;
}

double
AapScheduler::issueOne(unsigned bank)
{
    C2M_ASSERT(bank < bankReady_.size(), "bank ", bank,
               " out of range");
    double t = 0.0;
    t = std::max(t, bankReady_[bank]);
    t = std::max(t, lastIssue_ + timings_.tRrdNs);
    // The oldest of the last four issues bounds the 4-activation
    // window: this issue must start at least tFAW after it.
    t = std::max(t, faw_[fawHead_] + timings_.tFawNs);

    lastIssue_ = t;
    faw_[fawHead_] = t;
    fawHead_ = (fawHead_ + 1) % 4;
    bankReady_[bank] = t + timings_.bankPeriodNs();
    lastFinish_ = std::max(lastFinish_, t + timings_.tAapNs());
    ++issued_;
    return t;
}

void
AapScheduler::issueRoundRobin(uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i) {
        issueOne(rrNext_);
        rrNext_ = (rrNext_ + 1) % bankReady_.size();
    }
}

double
AapScheduler::finishNs() const
{
    return lastFinish_;
}

double
AapScheduler::steadyPeriodNs(const DramTimings &t, unsigned banks)
{
    C2M_ASSERT(banks >= 1, "need at least one bank");
    const double per_bank = t.bankPeriodNs() / static_cast<double>(banks);
    return std::max({t.tRrdNs, t.tFawNs / 4.0, per_bank});
}

double
AapScheduler::streamTimeNs(const DramTimings &t, uint64_t count,
                           unsigned banks)
{
    if (count == 0)
        return 0.0;
    const double period = steadyPeriodNs(t, banks);
    return static_cast<double>(count - 1) * period + t.tAapNs();
}

} // namespace dram
} // namespace c2m
