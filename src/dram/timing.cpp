#include "dram/timing.hpp"

#include <sstream>

namespace c2m {
namespace dram {

DramTimings
DramTimings::ddr5_4400()
{
    return DramTimings{};
}

std::string
DramTimings::describe() const
{
    std::ostringstream os;
    os << "tCK=" << tCkNs << "ns tRAS=" << tRasNs << "ns tRP=" << tRpNs
       << "ns tRCD=" << tRcdNs << "ns tRRD=" << tRrdNs << "ns tFAW="
       << tFawNs << "ns tAAP=" << tAapNs() << "ns";
    return os.str();
}

} // namespace dram
} // namespace c2m
