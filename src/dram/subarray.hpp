#ifndef C2M_DRAM_SUBARRAY_HPP
#define C2M_DRAM_SUBARRAY_HPP

/**
 * @file
 * Vertical (bit-serial) data layout helpers.
 *
 * CIM engines store a vector of values "vertically": bit b of element
 * j lives in row b at column j, so one bulk-bitwise command touches
 * bit b of every element at once. These helpers transpose between
 * host-side value vectors and row-major BitVector images, and are used
 * by both the C2M engine (mask rows, counter initialization/readout)
 * and the SIMDRAM baseline (operand/accumulator rows).
 */

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"

namespace c2m {
namespace dram {

/**
 * Transpose values into @p num_bits rows of @p cols columns.
 * Element j contributes bit b of its value to rows[b] at column j.
 * Values must fit in num_bits; extra columns are zero.
 */
std::vector<BitVector> transposeToRows(const std::vector<uint64_t> &values,
                                       unsigned num_bits, size_t cols);

/**
 * Inverse of transposeToRows: collect column j's bits (row b = bit b)
 * into values[j]. Reads @p count columns.
 */
std::vector<uint64_t> transposeFromRows(const std::vector<BitVector> &rows,
                                        size_t count);

/** Build a mask row: bit j = mask[j] (padded with zeros to cols). */
BitVector maskRow(const std::vector<uint8_t> &mask, size_t cols);

} // namespace dram
} // namespace c2m

#endif // C2M_DRAM_SUBARRAY_HPP
