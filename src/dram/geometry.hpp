#ifndef C2M_DRAM_GEOMETRY_HPP
#define C2M_DRAM_GEOMETRY_HPP

/**
 * @file
 * DRAM organization (Sec. 2.1, Tab. 2).
 *
 * A channel connects ranks of chips operating in lockstep; each chip
 * has banks, each bank subarrays, each subarray rows of cells sensed
 * by a local row buffer. The evaluated configuration is one channel,
 * one rank, 8 data chips + 1 ECC chip, 4 Gb chips with 32 banks,
 * 1 KB chip rows (8 KB rank rows) and 1024-row subarrays.
 */

#include <cstdint>
#include <string>

namespace c2m {
namespace dram {

struct DramGeometry
{
    unsigned channels = 1;
    unsigned ranksPerChannel = 1;
    unsigned dataChipsPerRank = 8;
    unsigned eccChipsPerRank = 1;
    unsigned banksPerChip = 32;
    unsigned subarraysPerBank = 16;
    unsigned rowsPerSubarray = 1024;
    unsigned rowBytesPerChip = 1024;

    unsigned chipsPerRank() const
    {
        return dataChipsPerRank + eccChipsPerRank;
    }

    /** Columns (bitlines) of one chip's subarray row. */
    unsigned colsPerChipRow() const { return rowBytesPerChip * 8; }

    /** Data columns of one rank-level row (all data chips lockstep). */
    unsigned colsPerRankRow() const
    {
        return dataChipsPerRank * colsPerChipRow();
    }

    /** Rank-level row size in bytes (the controller's view, Tab. 2). */
    unsigned rankRowBytes() const
    {
        return dataChipsPerRank * rowBytesPerChip;
    }

    /** Chip capacity in bits. */
    uint64_t chipBits() const
    {
        return static_cast<uint64_t>(banksPerChip) * subarraysPerBank *
               rowsPerSubarray * rowBytesPerChip * 8;
    }

    /** Tab. 2 configuration: DDR5, 4 Gb chips, 32 banks, 1 KB rows. */
    static DramGeometry ddr5_4gb();

    std::string describe() const;
};

} // namespace dram
} // namespace c2m

#endif // C2M_DRAM_GEOMETRY_HPP
