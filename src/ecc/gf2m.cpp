#include "ecc/gf2m.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace ecc {

namespace {

/** Default primitive polynomials (x^m term included). */
uint32_t
defaultPoly(unsigned m)
{
    switch (m) {
      case 2:
        return 0x7;     // x^2+x+1
      case 3:
        return 0xb;     // x^3+x+1
      case 4:
        return 0x13;    // x^4+x+1
      case 5:
        return 0x25;    // x^5+x^2+1
      case 6:
        return 0x43;    // x^6+x+1
      case 7:
        return 0x89;    // x^7+x^3+1
      case 8:
        return 0x11d;   // x^8+x^4+x^3+x^2+1
      case 9:
        return 0x211;   // x^9+x^4+1
      case 10:
        return 0x409;   // x^10+x^3+1
      case 11:
        return 0x805;   // x^11+x^2+1
      case 12:
        return 0x1053;  // x^12+x^6+x^4+x+1
      default:
        C2M_FATAL("no default primitive polynomial for m=", m);
    }
}

} // namespace

GF2m::GF2m(unsigned m, uint32_t prim_poly) : m_(m)
{
    C2M_ASSERT(m >= 2 && m <= 16, "unsupported field degree m=", m);
    if (prim_poly == 0)
        prim_poly = defaultPoly(m);
    order_ = (1u << m) - 1;

    exp_.assign(2 * order_, 0);
    log_.assign(order_ + 1, 0);

    uint32_t x = 1;
    for (uint32_t i = 0; i < order_; ++i) {
        exp_[i] = x;
        log_[x] = i;
        x <<= 1;
        if (x & (1u << m))
            x ^= prim_poly;
        C2M_ASSERT(x <= order_ || i + 1 == order_,
                   "primitive polynomial is not degree-", m);
    }
    C2M_ASSERT(x == 1, "polynomial 0x", prim_poly,
               " is not primitive for m=", m);
    for (uint32_t i = 0; i < order_; ++i)
        exp_[order_ + i] = exp_[i];
}

uint32_t
GF2m::mul(uint32_t a, uint32_t b) const
{
    if (a == 0 || b == 0)
        return 0;
    return exp_[log_[a] + log_[b]];
}

uint32_t
GF2m::div(uint32_t a, uint32_t b) const
{
    C2M_ASSERT(b != 0, "division by zero in GF(2^m)");
    if (a == 0)
        return 0;
    return exp_[log_[a] + order_ - log_[b]];
}

uint32_t
GF2m::inv(uint32_t a) const
{
    C2M_ASSERT(a != 0, "inverse of zero in GF(2^m)");
    return exp_[order_ - log_[a]];
}

uint32_t
GF2m::alphaPow(int64_t e) const
{
    int64_t r = e % order_;
    if (r < 0)
        r += order_;
    return exp_[static_cast<uint32_t>(r)];
}

uint32_t
GF2m::logAlpha(uint32_t a) const
{
    C2M_ASSERT(a != 0 && a <= order_, "log of zero/out-of-field");
    return log_[a];
}

uint32_t
GF2m::pow(uint32_t a, uint64_t e) const
{
    if (a == 0)
        return e == 0 ? 1 : 0;
    const uint64_t le = (static_cast<uint64_t>(log_[a]) * e) % order_;
    return exp_[static_cast<uint32_t>(le)];
}

} // namespace ecc
} // namespace c2m
