#include "ecc/hamming.hpp"

#include <array>
#include <bit>

namespace c2m {
namespace ecc {

namespace {

/**
 * Codeword positions 1..71: powers of two hold the 7 Hamming parity
 * bits, the remaining 64 positions hold data bits in order. Build,
 * for each parity bit k, the mask of data-bit indices it covers.
 */
struct Tables
{
    std::array<uint64_t, 7> parityMask{};
    std::array<uint8_t, 64> dataPos{}; ///< codeword position of data bit i

    Tables()
    {
        unsigned data_index = 0;
        for (unsigned pos = 1; pos <= 71 && data_index < 64; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue; // power of two: parity position
            dataPos[data_index] = static_cast<uint8_t>(pos);
            for (unsigned k = 0; k < 7; ++k)
                if (pos & (1u << k))
                    parityMask[k] |= 1ULL << data_index;
            ++data_index;
        }
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

uint8_t
hammingBits(uint64_t data)
{
    const Tables &t = tables();
    uint8_t p = 0;
    for (unsigned k = 0; k < 7; ++k)
        p |= static_cast<uint8_t>(
                 std::popcount(data & t.parityMask[k]) & 1)
             << k;
    return p;
}

} // namespace

uint8_t
Hamming72::encode(uint64_t data)
{
    const uint8_t p = hammingBits(data);
    // Overall parity over data and the 7 Hamming bits; stored as
    // parity bit 7 so the full 72-bit word has even parity.
    const unsigned total =
        (std::popcount(data) + std::popcount(unsigned{p})) & 1;
    return static_cast<uint8_t>(p | (total << 7));
}

bool
Hamming72::check(uint64_t data, uint8_t parity)
{
    return encode(data) == parity;
}

Hamming72::Decoded
Hamming72::decode(uint64_t data, uint8_t parity)
{
    const Tables &t = tables();
    // Syndrome: recomputed Hamming bits vs the received ones.
    const uint8_t syndrome7 = static_cast<uint8_t>(
        (hammingBits(data) ^ parity) & 0x7f);
    // Overall parity spans the received 72-bit word (data + all
    // stored parity bits); clean words have even parity.
    const bool overall_bad =
        ((std::popcount(data) +
          std::popcount(static_cast<unsigned>(parity))) &
         1) != 0;

    if (syndrome7 == 0 && !overall_bad)
        return {Result::Clean, data, parity};

    if (!overall_bad) {
        // Nonzero syndrome with even overall parity: two errors.
        return {Result::DoubleError, data, parity};
    }

    if (syndrome7 == 0) {
        // Only the overall parity bit flipped.
        return {Result::Corrected, data, encode(data)};
    }

    // Single error at codeword position syndrome7.
    for (unsigned i = 0; i < 64; ++i) {
        if (t.dataPos[i] == syndrome7) {
            const uint64_t fixed = data ^ (1ULL << i);
            return {Result::Corrected, fixed, encode(fixed)};
        }
    }
    if ((syndrome7 & (syndrome7 - 1)) == 0) {
        // Error in a stored parity bit: data is fine.
        return {Result::Corrected, data, encode(data)};
    }
    // Syndrome points past the used positions: multi-bit error.
    return {Result::DoubleError, data, parity};
}

} // namespace ecc
} // namespace c2m
