#include "ecc/rowcodec.hpp"

#include "common/logging.hpp"
#include "ecc/hamming.hpp"

namespace c2m {
namespace ecc {

RowCodec::RowCodec(size_t data_bits)
    : dataBits_(data_bits), numWords_((data_bits + 63) / 64)
{
    C2M_ASSERT(data_bits >= 1, "row must have data columns");
}

uint64_t
RowCodec::dataWord(const BitVector &row, size_t w) const
{
    C2M_ASSERT(w < numWords_, "word index out of range");
    C2M_ASSERT(row.size() >= dataBits_, "row lacks data columns");
    // Data occupies bit positions [0, dataBits); when dataBits is a
    // multiple of 64 this is exactly the storage word.
    uint64_t v = 0;
    const size_t base = w * 64;
    for (size_t b = 0; b < 64; ++b) {
        const size_t pos = base + b;
        if (pos >= dataBits_)
            break;
        if (row.get(pos))
            v |= 1ULL << b;
    }
    return v;
}

uint8_t
RowCodec::parityOf(const BitVector &row, size_t w) const
{
    const size_t base = dataBits_ + w * 8;
    uint8_t p = 0;
    for (size_t b = 0; b < 8; ++b)
        if (row.get(base + b))
            p |= static_cast<uint8_t>(1u << b);
    return p;
}

void
RowCodec::setParity(BitVector &row, size_t w, uint8_t parity) const
{
    const size_t base = dataBits_ + w * 8;
    for (size_t b = 0; b < 8; ++b)
        row.set(base + b, (parity >> b) & 1);
}

void
RowCodec::encodeRow(BitVector &row) const
{
    C2M_ASSERT(row.size() >= totalBits(), "row lacks parity lanes");
    for (size_t w = 0; w < numWords_; ++w)
        setParity(row, w, Hamming72::encode(dataWord(row, w)));
}

bool
RowCodec::checkRow(const BitVector &row) const
{
    for (size_t w = 0; w < numWords_; ++w)
        if (!Hamming72::check(dataWord(row, w), parityOf(row, w)))
            return false;
    return true;
}

RowCodec::CorrectResult
RowCodec::correctRow(BitVector &row) const
{
    CorrectResult res;
    for (size_t w = 0; w < numWords_; ++w) {
        const uint64_t data = dataWord(row, w);
        const uint8_t parity = parityOf(row, w);
        const auto dec = Hamming72::decode(data, parity);
        switch (dec.result) {
          case Hamming72::Result::Clean:
            break;
          case Hamming72::Result::Corrected: {
            ++res.corrected;
            const size_t base = w * 64;
            for (size_t b = 0; b < 64 && base + b < dataBits_; ++b)
                row.set(base + b, (dec.data >> b) & 1);
            setParity(row, w, dec.parity);
            break;
          }
          case Hamming72::Result::DoubleError:
            ++res.uncorrectable;
            break;
        }
    }
    return res;
}

void
RowCodec::encodeRows(std::vector<BitVector> &rows) const
{
    for (auto &row : rows)
        encodeRow(row);
}

RowCodec::CorrectResult
RowCodec::correctRows(std::vector<BitVector> &rows) const
{
    CorrectResult total;
    for (auto &row : rows) {
        const auto res = correctRow(row);
        total.corrected += res.corrected;
        total.uncorrectable += res.uncorrectable;
    }
    return total;
}

RowCodec::CorrectResult
RowCodec::scrubRow(BitVector &data, const BitVector &encoded) const
{
    C2M_ASSERT(data.size() >= dataBits_, "fabric row too narrow");
    C2M_ASSERT(encoded.size() >= totalBits(),
               "trusted image lacks parity lanes");

    CorrectResult res;
    for (size_t w = 0; w < numWords_; ++w) {
        const uint64_t got = dataWord(data, w);
        const uint64_t want = dataWord(encoded, w);
        if (got == want)
            continue;
        const auto dec = Hamming72::decode(got, parityOf(encoded, w));
        uint64_t fixed;
        if (dec.result == Hamming72::Result::Corrected &&
            dec.data == want) {
            ++res.corrected;
            fixed = dec.data;
        } else {
            // Double error, or a dense flip pattern the SEC-DED code
            // would silently miscorrect: fall back on the trusted
            // image.
            ++res.uncorrectable;
            fixed = want;
        }
        const size_t base = w * 64;
        for (size_t b = 0; b < 64 && base + b < dataBits_; ++b)
            data.set(base + b, (fixed >> b) & 1);
    }
    return res;
}

} // namespace ecc
} // namespace c2m
