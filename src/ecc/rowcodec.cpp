#include "ecc/rowcodec.hpp"

#include "common/logging.hpp"
#include "ecc/hamming.hpp"

namespace c2m {
namespace ecc {

RowCodec::RowCodec(size_t data_bits)
    : dataBits_(data_bits), numWords_((data_bits + 63) / 64)
{
    C2M_ASSERT(data_bits >= 1, "row must have data columns");
}

uint64_t
RowCodec::dataWord(const BitVector &row, size_t w) const
{
    C2M_ASSERT(w < numWords_, "word index out of range");
    C2M_ASSERT(row.size() >= totalBits(), "row lacks parity lanes");
    // Data occupies bit positions [0, dataBits); when dataBits is a
    // multiple of 64 this is exactly the storage word.
    uint64_t v = 0;
    const size_t base = w * 64;
    for (size_t b = 0; b < 64; ++b) {
        const size_t pos = base + b;
        if (pos >= dataBits_)
            break;
        if (row.get(pos))
            v |= 1ULL << b;
    }
    return v;
}

uint8_t
RowCodec::parityOf(const BitVector &row, size_t w) const
{
    const size_t base = dataBits_ + w * 8;
    uint8_t p = 0;
    for (size_t b = 0; b < 8; ++b)
        if (row.get(base + b))
            p |= static_cast<uint8_t>(1u << b);
    return p;
}

void
RowCodec::setParity(BitVector &row, size_t w, uint8_t parity) const
{
    const size_t base = dataBits_ + w * 8;
    for (size_t b = 0; b < 8; ++b)
        row.set(base + b, (parity >> b) & 1);
}

void
RowCodec::encodeRow(BitVector &row) const
{
    C2M_ASSERT(row.size() >= totalBits(), "row lacks parity lanes");
    for (size_t w = 0; w < numWords_; ++w)
        setParity(row, w, Hamming72::encode(dataWord(row, w)));
}

bool
RowCodec::checkRow(const BitVector &row) const
{
    for (size_t w = 0; w < numWords_; ++w)
        if (!Hamming72::check(dataWord(row, w), parityOf(row, w)))
            return false;
    return true;
}

RowCodec::CorrectResult
RowCodec::correctRow(BitVector &row) const
{
    CorrectResult res;
    for (size_t w = 0; w < numWords_; ++w) {
        const uint64_t data = dataWord(row, w);
        const uint8_t parity = parityOf(row, w);
        const auto dec = Hamming72::decode(data, parity);
        switch (dec.result) {
          case Hamming72::Result::Clean:
            break;
          case Hamming72::Result::Corrected: {
            ++res.corrected;
            const size_t base = w * 64;
            for (size_t b = 0; b < 64 && base + b < dataBits_; ++b)
                row.set(base + b, (dec.data >> b) & 1);
            setParity(row, w, dec.parity);
            break;
          }
          case Hamming72::Result::DoubleError:
            ++res.uncorrectable;
            break;
        }
    }
    return res;
}

} // namespace ecc
} // namespace c2m
