#ifndef C2M_ECC_ANALYSIS_HPP
#define C2M_ECC_ANALYSIS_HPP

/**
 * @file
 * Analytical and Monte-Carlo models of the protection scheme's error
 * and detection rates (Tab. 1).
 *
 * A protected masking step computes IR2 (the wanted AND), IR1 (the
 * companion OR) and c independent FR = IR1 AND NOT IR2 syntheses
 * (c = "FR checks"). A likely fault slips through only when the IR
 * fault is masked by coincident faults in *all* c FR computations,
 * giving an undetected rate ~ C * p^(c+1); the residue is bounded
 * below by the data-dependent silent-fault rate, conservatively the
 * DRAM read error rate of 1e-20. Detection exposure grows with c as
 * roughly 1 - (1-p)^(1.5 + c).
 */

#include <cstdint>

namespace c2m {
namespace ecc {

struct ProtectionModel
{
    /** Conservative DRAM read-equivalent silent fault rate. */
    static constexpr double kReadErrorFloor = 1e-20;

    /**
     * Per-bit probability of an undetectable error of one protected
     * masking step (Tab. 1 "Error rate").
     * @param p CIM per-bit fault rate.
     * @param fr_checks Total FR computations (Tab. 1 columns 2/4/6).
     */
    static double undetectedErrorRate(double p, unsigned fr_checks);

    /** Per-bit probability that the step flags a fault (detect). */
    static double detectRate(double p, unsigned fr_checks);

    /**
     * Expected number of executions of a protected block until its
     * checks pass (retry inflation), 1 / (1 - detectRate) per row of
     * 512 columns aggregated bit-wise.
     */
    static double expectedRetriesPerRow(double p, unsigned fr_checks,
                                        unsigned row_bits = 512);

    struct McResult
    {
        double errorRate = 0.0;
        double detectRate = 0.0;
    };

    /**
     * Mechanistic Monte-Carlo of one protected masking step at the
     * bit level: faults are injected independently in IR1, IR2 and
     * each FR computation; a trial detects if any FR differs from the
     * true XOR and errs if the committed IR2 is wrong undetected.
     */
    static McResult monteCarlo(double p, unsigned fr_checks,
                               uint64_t trials, uint64_t seed = 7);
};

} // namespace ecc
} // namespace c2m

#endif // C2M_ECC_ANALYSIS_HPP
