#ifndef C2M_ECC_ROWCODEC_HPP
#define C2M_ECC_ROWCODEC_HPP

/**
 * @file
 * Row-level ECC lanes (Sec. 6).
 *
 * A protected subarray row is widened with parity lanes: every 64
 * data columns carry 8 Hamming(72,64) parity columns, stored in the
 * ECC chip of the rank. Because the lanes are ordinary columns,
 * bulk-bitwise CIM commands act on them exactly like on data columns;
 * for any row produced as an XOR of validly coded rows, the lanes
 * hold a valid parity (linearity), so the standard syndrome hardware
 * can check or correct the row.
 */

#include <cstddef>

#include "common/bitvec.hpp"

namespace c2m {
namespace ecc {

class RowCodec
{
  public:
    /** @param data_bits Number of data columns in a row. */
    explicit RowCodec(size_t data_bits);

    size_t dataBits() const { return dataBits_; }
    size_t numWords() const { return numWords_; }
    size_t parityBits() const { return numWords_ * 8; }
    /** Total row width: data columns followed by parity lanes. */
    size_t totalBits() const { return dataBits_ + parityBits(); }

    /** Compute and store the parity lanes of @p row's data prefix. */
    void encodeRow(BitVector &row) const;

    /** True iff every word's syndrome is clean. */
    bool checkRow(const BitVector &row) const;

    struct CorrectResult
    {
        size_t corrected = 0;    ///< words with a corrected single error
        size_t uncorrectable = 0; ///< words flagged with double errors
        bool clean() const { return corrected == 0 && uncorrectable == 0; }
    };

    /** Correct single-bit errors per word in place. */
    CorrectResult correctRow(BitVector &row) const;

    /** Extract word @p w of the data prefix. */
    uint64_t dataWord(const BitVector &row, size_t w) const;

    // ---- Batch decode-correct path (scrub sweeps) ----

    /** encodeRow over every row of @p rows. */
    void encodeRows(std::vector<BitVector> &rows) const;

    /** correctRow over every row of @p rows; aggregate result. */
    CorrectResult correctRows(std::vector<BitVector> &rows) const;

    /**
     * Scrub one fabric row against a trusted encoded image: decode
     * the codeword [@p data | parity lanes of @p encoded], correct
     * single-flip words through the code, and repair words the code
     * flags (or miscorrects) from @p encoded's data — the journal/
     * checkpoint fallback. On return @p data equals @p encoded's data
     * prefix exactly.
     *
     * @param data     fabric row, dataBits() columns (corrected in place)
     * @param encoded  trusted totalBits() image with valid parity
     * @return corrected = words fixed by the code alone,
     *         uncorrectable = words that needed the trusted image.
     */
    CorrectResult scrubRow(BitVector &data,
                           const BitVector &encoded) const;

  private:
    uint8_t parityOf(const BitVector &row, size_t w) const;
    void setParity(BitVector &row, size_t w, uint8_t parity) const;

    size_t dataBits_;
    size_t numWords_;
};

} // namespace ecc
} // namespace c2m

#endif // C2M_ECC_ROWCODEC_HPP
