#ifndef C2M_ECC_GF2M_HPP
#define C2M_ECC_GF2M_HPP

/**
 * @file
 * Arithmetic over GF(2^m) with log/antilog tables, the algebraic
 * substrate of the BCH codec (Sec. 6 lists BCH among the commercially
 * used ECCs the scheme is compatible with).
 */

#include <cstdint>
#include <vector>

namespace c2m {
namespace ecc {

class GF2m
{
  public:
    /**
     * @param m Field degree (2 <= m <= 16).
     * @param prim_poly Primitive polynomial with the x^m term
     *        included, e.g. 0x89 = x^7 + x^3 + 1 for GF(2^7). Pass 0
     *        to use a built-in default for the given m.
     */
    explicit GF2m(unsigned m, uint32_t prim_poly = 0);

    unsigned m() const { return m_; }
    /** Number of nonzero elements (2^m - 1), the order of alpha. */
    uint32_t order() const { return order_; }

    uint32_t add(uint32_t a, uint32_t b) const { return a ^ b; }
    uint32_t mul(uint32_t a, uint32_t b) const;
    uint32_t div(uint32_t a, uint32_t b) const;
    uint32_t inv(uint32_t a) const;
    /** alpha^e (exponent reduced modulo the group order). */
    uint32_t alphaPow(int64_t e) const;
    /** Discrete log base alpha (a must be nonzero). */
    uint32_t logAlpha(uint32_t a) const;
    uint32_t pow(uint32_t a, uint64_t e) const;

  private:
    unsigned m_;
    uint32_t order_;
    std::vector<uint32_t> exp_; ///< alpha^i for i in [0, 2*order)
    std::vector<uint32_t> log_; ///< log table, log_[0] unused
};

} // namespace ecc
} // namespace c2m

#endif // C2M_ECC_GF2M_HPP
