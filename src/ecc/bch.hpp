#ifndef C2M_ECC_BCH_HPP
#define C2M_ECC_BCH_HPP

/**
 * @file
 * Binary primitive BCH(n = 2^m - 1, k, t) codec.
 *
 * Systematic encoding (data followed by parity), syndrome computation
 * S_1..S_2t, Berlekamp-Massey error-locator synthesis and Chien
 * search. Like Hamming, BCH is linear and therefore XOR-homomorphic,
 * so the Count2Multiply protection scheme (Sec. 6.1) works unchanged
 * with multi-bit-correcting row ECC.
 */

#include <cstdint>
#include <vector>

#include "ecc/gf2m.hpp"

namespace c2m {
namespace ecc {

class BchCode
{
  public:
    /**
     * @param m Field degree; block length n = 2^m - 1.
     * @param t Designed error-correction capability (>= 1).
     */
    BchCode(unsigned m, unsigned t);

    unsigned n() const { return n_; }
    unsigned k() const { return k_; }
    unsigned t() const { return t_; }
    unsigned parityBits() const { return n_ - k_; }

    /** Parity bits (length n-k) for @p data (length k, LSB-first). */
    std::vector<uint8_t> encodeParity(
        const std::vector<uint8_t> &data) const;

    /** Full systematic codeword: data followed by parity. */
    std::vector<uint8_t> encode(const std::vector<uint8_t> &data) const;

    struct DecodeResult
    {
        bool ok = false;            ///< decoding succeeded
        unsigned corrected = 0;     ///< number of bits corrected
    };

    /** Correct up to t errors in place; codeword has length n. */
    DecodeResult decode(std::vector<uint8_t> &codeword) const;

    /** True iff all syndromes vanish. */
    bool check(const std::vector<uint8_t> &codeword) const;

    const std::vector<uint8_t> &generator() const { return gen_; }

  private:
    std::vector<uint32_t> syndromes(
        const std::vector<uint8_t> &codeword) const;

    GF2m field_;
    unsigned n_;
    unsigned k_;
    unsigned t_;
    std::vector<uint8_t> gen_; ///< generator polynomial coefficients
};

} // namespace ecc
} // namespace c2m

#endif // C2M_ECC_BCH_HPP
