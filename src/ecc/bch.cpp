#include "ecc/bch.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace c2m {
namespace ecc {

BchCode::BchCode(unsigned m, unsigned t)
    : field_(m), n_((1u << m) - 1), t_(t)
{
    C2M_ASSERT(t >= 1, "t must be >= 1");

    // Generator = product of the minimal polynomials of alpha^i for
    // the distinct cyclotomic cosets touching i = 1..2t.
    std::vector<bool> used(n_, false);
    std::vector<uint8_t> gen = {1}; // polynomial over GF(2)

    for (unsigned i = 1; i <= 2 * t; ++i) {
        if (used[i % n_])
            continue;
        // Cyclotomic coset of i: {i, 2i, 4i, ...} mod n.
        std::vector<uint32_t> coset;
        uint32_t c = i % n_;
        while (!used[c]) {
            used[c] = true;
            coset.push_back(c);
            c = (c * 2) % n_;
        }
        // Minimal polynomial: product over the coset of (x + alpha^c),
        // computed over GF(2^m); the result has 0/1 coefficients.
        std::vector<uint32_t> minp = {1};
        for (uint32_t e : coset) {
            const uint32_t root = field_.alphaPow(e);
            std::vector<uint32_t> next(minp.size() + 1, 0);
            for (size_t d = 0; d < minp.size(); ++d) {
                next[d + 1] ^= minp[d];                   // x * minp
                next[d] ^= field_.mul(minp[d], root);     // root*minp
            }
            minp = std::move(next);
        }
        // Multiply the binary generator by the minimal polynomial.
        std::vector<uint8_t> next(gen.size() + minp.size() - 1, 0);
        for (size_t a = 0; a < gen.size(); ++a) {
            if (!gen[a])
                continue;
            for (size_t b = 0; b < minp.size(); ++b) {
                C2M_ASSERT(minp[b] <= 1,
                           "minimal polynomial not binary");
                next[a + b] ^= gen[a] & minp[b];
            }
        }
        gen = std::move(next);
    }

    gen_ = gen;
    const unsigned deg = static_cast<unsigned>(gen_.size() - 1);
    C2M_ASSERT(deg < n_, "generator degree exceeds block length");
    k_ = n_ - deg;
}

std::vector<uint8_t>
BchCode::encodeParity(const std::vector<uint8_t> &data) const
{
    C2M_ASSERT(data.size() == k_, "data must have k=", k_, " bits");
    const unsigned deg = parityBits();
    // Remainder of data(x) * x^deg divided by g(x), LFSR style.
    std::vector<uint8_t> rem(deg, 0);
    for (unsigned j = k_; j-- > 0;) {
        const uint8_t feedback =
            static_cast<uint8_t>(data[j] ^ (deg ? rem[deg - 1] : 0));
        for (unsigned i = deg; i-- > 1;)
            rem[i] = static_cast<uint8_t>(
                rem[i - 1] ^ (feedback & gen_[i]));
        rem[0] = static_cast<uint8_t>(feedback & gen_[0]);
    }
    return rem;
}

std::vector<uint8_t>
BchCode::encode(const std::vector<uint8_t> &data) const
{
    std::vector<uint8_t> parity = encodeParity(data);
    std::vector<uint8_t> codeword(n_);
    std::copy(parity.begin(), parity.end(), codeword.begin());
    std::copy(data.begin(), data.end(),
              codeword.begin() + parityBits());
    return codeword;
}

std::vector<uint32_t>
BchCode::syndromes(const std::vector<uint8_t> &codeword) const
{
    std::vector<uint32_t> syn(2 * t_, 0);
    for (unsigned j = 1; j <= 2 * t_; ++j) {
        // S_j = r(alpha^j) via Horner from the top coefficient.
        uint32_t acc = 0;
        const uint32_t a = field_.alphaPow(j);
        for (unsigned i = n_; i-- > 0;)
            acc = field_.add(field_.mul(acc, a), codeword[i]);
        syn[j - 1] = acc;
    }
    return syn;
}

bool
BchCode::check(const std::vector<uint8_t> &codeword) const
{
    C2M_ASSERT(codeword.size() == n_, "codeword must have n bits");
    const auto syn = syndromes(codeword);
    return std::all_of(syn.begin(), syn.end(),
                       [](uint32_t s) { return s == 0; });
}

BchCode::DecodeResult
BchCode::decode(std::vector<uint8_t> &codeword) const
{
    C2M_ASSERT(codeword.size() == n_, "codeword must have n bits");
    const auto syn = syndromes(codeword);
    if (std::all_of(syn.begin(), syn.end(),
                    [](uint32_t s) { return s == 0; }))
        return {true, 0};

    // Berlekamp-Massey: synthesize the error locator sigma(x).
    std::vector<uint32_t> sigma = {1};
    std::vector<uint32_t> prev = {1};
    uint32_t b = 1;
    unsigned L = 0;
    unsigned shift = 1;

    for (unsigned step = 0; step < 2 * t_; ++step) {
        uint32_t delta = syn[step];
        for (unsigned i = 1; i <= L && i < sigma.size(); ++i)
            delta = field_.add(delta,
                               field_.mul(sigma[i], syn[step - i]));
        if (delta == 0) {
            ++shift;
            continue;
        }
        // sigma' = sigma + (delta/b) * x^shift * prev
        std::vector<uint32_t> next = sigma;
        const uint32_t coef = field_.div(delta, b);
        if (prev.size() + shift > next.size())
            next.resize(prev.size() + shift, 0);
        for (size_t i = 0; i < prev.size(); ++i)
            next[i + shift] = field_.add(
                next[i + shift], field_.mul(coef, prev[i]));
        if (2 * L <= step) {
            prev = sigma;
            b = delta;
            L = step + 1 - L;
            shift = 1;
        } else {
            ++shift;
        }
        sigma = std::move(next);
    }

    while (!sigma.empty() && sigma.back() == 0)
        sigma.pop_back();
    const unsigned deg = static_cast<unsigned>(sigma.size() - 1);
    if (deg > t_)
        return {false, 0};

    // Chien search: error at position p iff sigma(alpha^{-p}) = 0.
    std::vector<unsigned> positions;
    for (unsigned p = 0; p < n_; ++p) {
        uint32_t acc = 0;
        for (unsigned i = 0; i < sigma.size(); ++i) {
            acc = field_.add(
                acc,
                field_.mul(sigma[i],
                           field_.alphaPow(-static_cast<int64_t>(p) *
                                           static_cast<int64_t>(i))));
        }
        if (acc == 0)
            positions.push_back(p);
    }
    if (positions.size() != deg)
        return {false, 0};

    for (unsigned p : positions)
        codeword[p] ^= 1;
    if (!check(codeword))
        return {false, static_cast<unsigned>(positions.size())};
    return {true, static_cast<unsigned>(positions.size())};
}

} // namespace ecc
} // namespace c2m
