#ifndef C2M_ECC_HAMMING_HPP
#define C2M_ECC_HAMMING_HPP

/**
 * @file
 * Extended Hamming (72,64) SEC-DED code (Sec. 6).
 *
 * The standard row-level ECC of server DRAM: 8 parity bits per 64
 * data bits, correcting any single bit error and detecting any double
 * bit error. Being a linear code, the parity function is homomorphic
 * over XOR -- parity(a ^ b) = parity(a) ^ parity(b) -- which is the
 * property Count2Multiply exploits to check CIM results (Fig. 12).
 */

#include <cstdint>

namespace c2m {
namespace ecc {

class Hamming72
{
  public:
    enum class Result : uint8_t
    {
        Clean,       ///< no error
        Corrected,   ///< single error corrected
        DoubleError, ///< uncorrectable double error detected
    };

    struct Decoded
    {
        Result result;
        uint64_t data;   ///< corrected data
        uint8_t parity;  ///< corrected parity
    };

    /** 8 parity bits (7 Hamming + 1 overall) for 64 data bits. */
    static uint8_t encode(uint64_t data);

    /** Syndrome-decode and correct a (data, parity) pair. */
    static Decoded decode(uint64_t data, uint8_t parity);

    /** True iff the syndrome of (data, parity) is clean. */
    static bool check(uint64_t data, uint8_t parity);
};

} // namespace ecc
} // namespace c2m

#endif // C2M_ECC_HAMMING_HPP
