#include "ecc/analysis.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace c2m {
namespace ecc {

double
ProtectionModel::undetectedErrorRate(double p, unsigned fr_checks)
{
    C2M_ASSERT(fr_checks >= 1, "need at least one FR check");
    const double rate =
        1.45 * std::pow(p, static_cast<double>(fr_checks + 1));
    // Below (or at) the conservative DRAM read-error rate the silent
    // data-dependent faults dominate; the paper reports the bound.
    return rate <= 2.0 * kReadErrorFloor ? kReadErrorFloor : rate;
}

double
ProtectionModel::detectRate(double p, unsigned fr_checks)
{
    C2M_ASSERT(fr_checks >= 1, "need at least one FR check");
    const double exposure = 1.5 + static_cast<double>(fr_checks);
    return 1.0 - std::pow(1.0 - p, exposure);
}

double
ProtectionModel::expectedRetriesPerRow(double p, unsigned fr_checks,
                                       unsigned row_bits)
{
    const double q = detectRate(p, fr_checks);
    const double row_flag =
        1.0 - std::pow(1.0 - q, static_cast<double>(row_bits));
    if (row_flag >= 1.0)
        return 1e9; // effectively never converges
    return 1.0 / (1.0 - row_flag);
}

ProtectionModel::McResult
ProtectionModel::monteCarlo(double p, unsigned fr_checks,
                            uint64_t trials, uint64_t seed)
{
    Rng rng(seed);
    uint64_t detected = 0;
    uint64_t errors = 0;

    for (uint64_t i = 0; i < trials; ++i) {
        const bool a = rng.nextBool(0.5);
        const bool b = rng.nextBool(0.5);
        const bool true_and = a && b;
        const bool true_xor = a != b;

        // Likely MAJ faults require disagreeing activated cells
        // (Sec. 6.1): a unanimous triple senses with full margin, so
        // AND = MAJ(a,b,0) cannot flip when a=b=0, OR = MAJ(a,b,1)
        // cannot flip when a=b=1, and FR = MAJ(ir1,~ir2,0) cannot
        // flip when ir1=0 and ir2=1.
        const bool ir2 =
            true_and != ((a || b) && rng.nextBool(p));
        const bool ir1 =
            (a || b) != (!(a && b) && rng.nextBool(p));

        bool any_mismatch = false;
        for (unsigned j = 0; j < fr_checks; ++j) {
            const bool fr_unanimous = !ir1 && ir2;
            const bool fr =
                (ir1 && !ir2) != (!fr_unanimous && rng.nextBool(p));
            if (fr != true_xor)
                any_mismatch = true;
        }

        if (any_mismatch)
            ++detected;
        else if (ir2 != true_and)
            ++errors;
    }

    McResult res;
    res.detectRate =
        static_cast<double>(detected) / static_cast<double>(trials);
    res.errorRate =
        static_cast<double>(errors) / static_cast<double>(trials);
    return res;
}

} // namespace ecc
} // namespace c2m
