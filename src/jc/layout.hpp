#ifndef C2M_JC_LAYOUT_HPP
#define C2M_JC_LAYOUT_HPP

/**
 * @file
 * Row layout of a group of multi-digit Johnson counters inside one
 * subarray (Fig. 5). All bits of a counter live in the same column;
 * each digit occupies n bit-rows (LSB..MSB) plus one Onext row, and
 * the group is followed by scratch rows used by the muPrograms:
 * theta rows (k-ary feedback saves) and the protection scratch rows
 * (IR1, IR2, FR, T2cp) of Fig. 13a, plus an optional Osign row.
 */

#include <cstdint>

#include "jc/digits.hpp"
#include "jc/johnson.hpp"

namespace c2m {
namespace jc {

class CounterLayout
{
  public:
    /**
     * @param radix Even JC radix (2n).
     * @param capacity_bits Binary capacity the counters must meet or
     *        exceed (e.g. 64 for int64 accumulation); one guard digit
     *        is added so IARM never ripples out of the top digit.
     * @param base_row First data-group row of the counter block.
     */
    CounterLayout(unsigned radix, unsigned capacity_bits,
                  unsigned base_row = 0);

    unsigned radix() const { return radix_; }
    unsigned bitsPerDigit() const { return bits_; }
    unsigned numDigits() const { return digits_; }
    unsigned capacityBits() const { return capacityBits_; }
    unsigned baseRow() const { return baseRow_; }

    /** Row of bit @p i (0 = LSB) of digit @p d (0 = LSD). */
    unsigned bitRow(unsigned d, unsigned i) const;

    /** Row of the pending-overflow flag of digit @p d. */
    unsigned onextRow(unsigned d) const;

    /** Row of the sign flag (underflow beyond zero). */
    unsigned osignRow() const;

    /** Scratch row theta_j, j in [0, bitsPerDigit). */
    unsigned thetaRow(unsigned j) const;

    /** Protection scratch rows (Fig. 13a). */
    unsigned ir1Row() const;
    unsigned ir2Row() const;
    unsigned frRow() const;
    unsigned t2Row() const;

    /** One general-purpose scratch row (mask staging, vector add). */
    unsigned scratchRow(unsigned j) const;
    unsigned numScratchRows() const { return 4; }

    /** Total data-group rows consumed by the block. */
    unsigned totalRows() const;

    /** First row past the block (e.g. where mask rows can start). */
    unsigned endRow() const { return baseRow_ + totalRows(); }

  private:
    unsigned radix_;
    unsigned bits_;
    unsigned digits_;
    unsigned capacityBits_;
    unsigned baseRow_;
};

} // namespace jc
} // namespace c2m

#endif // C2M_JC_LAYOUT_HPP
