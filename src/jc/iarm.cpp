#include "jc/iarm.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace c2m {
namespace jc {

IarmScheduler::IarmScheduler(unsigned radix, unsigned num_digits)
    : radix_(radix), bounds_(num_digits, 0)
{
    C2M_ASSERT(radix >= 2, "bad radix");
    C2M_ASSERT(num_digits >= 1, "need at least one digit");
}

void
IarmScheduler::resolveChain(unsigned pos, std::vector<unsigned> &out)
{
    const unsigned R = radix_;
    C2M_ASSERT(bounds_[pos] >= R,
               "resolveChain on digit with no pending overflow");
    if (pos + 1 >= bounds_.size())
        C2M_PANIC("counter capacity exceeded at digit ", pos,
                  "; size counters with a guard digit");
    // The carry into pos+1 needs headroom there first. The top digit
    // is the guard: in-capacity values never reach it, so its bound
    // (inflated by the conservative R-1 resets) saturates instead of
    // chaining further.
    if (bounds_[pos + 1] + 1 > 2 * R - 1 &&
        pos + 2 < bounds_.size())
        resolveChain(pos + 1, out);
    out.push_back(pos);
    ++ripples_;
    // Pending counters drop by R (<= R-1 afterwards); non-pending ones
    // may already sit at R-1, so the sound new bound is R-1.
    bounds_[pos] = R - 1;
    if (pos + 2 < bounds_.size())
        bounds_[pos + 1] += 1;
    else
        bounds_[pos + 1] =
            std::min(bounds_[pos + 1] + 1, 2 * R - 1);
}

std::vector<unsigned>
IarmScheduler::prepareAdd(const std::vector<unsigned> &digits)
{
    C2M_ASSERT(digits.size() <= bounds_.size(),
               "input has more digits than the counters");
    const unsigned R = radix_;
    std::vector<unsigned> out;
    for (unsigned pos = 0; pos < digits.size(); ++pos) {
        const unsigned k = digits[pos];
        if (k == 0)
            continue;
        C2M_ASSERT(k < R, "digit ", k, " out of range for radix ", R);
        if (bounds_[pos] + k > 2 * R - 1)
            resolveChain(pos, out);
        C2M_ASSERT(bounds_[pos] + k <= 2 * R - 1,
                   "IARM failed to create headroom");
    }
    return out;
}

void
IarmScheduler::applyAdd(const std::vector<unsigned> &digits)
{
    for (unsigned pos = 0; pos < digits.size(); ++pos) {
        bounds_[pos] += digits[pos];
        C2M_ASSERT(bounds_[pos] <= 2 * radix_ - 1,
                   "prepareAdd was not called before applyAdd");
    }
}

std::vector<unsigned>
IarmScheduler::fullPassDescending()
{
    const unsigned R = radix_;
    std::vector<unsigned> out;
    for (unsigned pos = static_cast<unsigned>(bounds_.size()) - 1;
         pos-- > 0;) {
        out.push_back(pos);
        ++ripples_;
        if (bounds_[pos] >= R) {
            bounds_[pos] = R - 1;
            if (pos + 2 < bounds_.size()) {
                bounds_[pos + 1] += 1;
                // The digit above was processed first: it has room.
                C2M_ASSERT(bounds_[pos + 1] <= 2 * R - 1,
                           "carry into a digit without headroom");
            } else {
                // Guard digit: saturate (see resolveChain).
                bounds_[pos + 1] =
                    std::min(bounds_[pos + 1] + 1, 2 * R - 1);
            }
        }
    }
    return out;
}

std::vector<unsigned>
IarmScheduler::drain()
{
    std::vector<unsigned> out;
    for (unsigned pos = 0; pos + 1 < bounds_.size(); ++pos) {
        if (bounds_[pos] >= radix_)
            resolveChain(pos, out);
    }
    // The guard digit's (conservatively inflated) bound may stay at
    // or above R; real in-capacity counters never carry there.
    return out;
}

FullRippleScheduler::FullRippleScheduler(unsigned radix,
                                         unsigned num_digits)
    : numDigits_(num_digits)
{
    C2M_ASSERT(radix >= 2 && num_digits >= 1, "bad configuration");
}

std::vector<unsigned>
FullRippleScheduler::prepareAdd(const std::vector<unsigned> &digits)
{
    (void)digits;
    return {};
}

std::vector<unsigned>
FullRippleScheduler::afterAdd()
{
    std::vector<unsigned> out;
    for (unsigned pos = 0; pos + 1 < numDigits_; ++pos)
        out.push_back(pos);
    ripples_ += out.size();
    return out;
}

} // namespace jc
} // namespace c2m
