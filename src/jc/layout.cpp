#include "jc/layout.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace jc {

CounterLayout::CounterLayout(unsigned radix, unsigned capacity_bits,
                             unsigned base_row)
    : radix_(radix),
      bits_(bitsForRadix(radix)),
      digits_(digitsForCapacityBits(radix, capacity_bits) + 1),
      capacityBits_(capacity_bits),
      baseRow_(base_row)
{
}

unsigned
CounterLayout::bitRow(unsigned d, unsigned i) const
{
    C2M_ASSERT(d < digits_ && i < bits_, "bitRow(", d, ",", i,
               ") out of layout");
    return baseRow_ + d * (bits_ + 1) + i;
}

unsigned
CounterLayout::onextRow(unsigned d) const
{
    C2M_ASSERT(d < digits_, "onextRow(", d, ") out of layout");
    return baseRow_ + d * (bits_ + 1) + bits_;
}

unsigned
CounterLayout::osignRow() const
{
    return baseRow_ + digits_ * (bits_ + 1);
}

unsigned
CounterLayout::thetaRow(unsigned j) const
{
    C2M_ASSERT(j < bits_, "thetaRow(", j, ") out of layout");
    return osignRow() + 1 + j;
}

unsigned
CounterLayout::ir1Row() const
{
    return osignRow() + 1 + bits_;
}

unsigned
CounterLayout::ir2Row() const
{
    return ir1Row() + 1;
}

unsigned
CounterLayout::frRow() const
{
    return ir1Row() + 2;
}

unsigned
CounterLayout::t2Row() const
{
    return ir1Row() + 3;
}

unsigned
CounterLayout::scratchRow(unsigned j) const
{
    C2M_ASSERT(j < numScratchRows(), "scratchRow(", j, ") out of layout");
    return ir1Row() + 4 + j;
}

unsigned
CounterLayout::totalRows() const
{
    // digits * (bits + Onext) + Osign + theta + IR1/IR2/FR/T2 + scratch.
    return digits_ * (bits_ + 1) + 1 + bits_ + 4 + numScratchRows();
}

} // namespace jc
} // namespace c2m
