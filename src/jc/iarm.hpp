#ifndef C2M_JC_IARM_HPP
#define C2M_JC_IARM_HPP

/**
 * @file
 * Input-Aware Rippling Minimization (IARM, Sec. 4.5.2).
 *
 * Each counter digit is augmented with a pending-overflow flag Onext,
 * extending its effective range from [0, R-1] to [0, 2R-1]. Carry
 * propagation (a "ripple": unit-increment of digit d+1 masked by
 * Onext_d, then clearing Onext_d) can therefore be deferred.
 *
 * IARM is oblivious of the masks stored in memory: it maintains a
 * host-side *virtual bound* per digit that upper-bounds the effective
 * digit value of every real (masked) counter, and schedules a ripple
 * exactly when the next increment could push some counter past 2R-1.
 *
 * Soundness note (stated in DESIGN.md): after a broadcast ripple of
 * digit d, a real counter that was pending drops by R while one that
 * was not pending keeps any value up to R-1, so the sound bound update
 * is vbound[d] <- R-1 (not vbound[d] - R). With this update,
 * real_digit <= vbound holds inductively for every mask subset, which
 * the property tests verify.
 */

#include <cstdint>
#include <vector>

namespace c2m {
namespace jc {

/**
 * Schedules deferred carry rippling for one group of multi-digit
 * counters that all receive the same broadcast increments.
 */
class IarmScheduler
{
  public:
    /**
     * @param radix Digit radix R (= 2n for an n-bit JC digit).
     * @param num_digits Digit count D; the top digit must never need
     *        to ripple out (engines size counters accordingly).
     */
    IarmScheduler(unsigned radix, unsigned num_digits);

    /**
     * Ripples that must be broadcast before adding @p digits
     * (LSD-first, each < R). Within a carry chain, higher digits are
     * emitted first so the +1 they absorb always has headroom.
     * Updates the virtual bounds as if the ripples were issued.
     */
    std::vector<unsigned> prepareAdd(const std::vector<unsigned> &digits);

    /** Account for the broadcast k-ary increments of @p digits. */
    void applyAdd(const std::vector<unsigned> &digits);

    /**
     * Ripples needed to clear every pending overflow (before a
     * direction switch to decrements, Sec. 4.4). Readout does not
     * require draining: Onext rows are readable and contribute R*R^d.
     */
    std::vector<unsigned> drain();

    /**
     * The "full rippling" baseline pass: one unconditional ripple of
     * every digit boundary, highest first so every carry lands in a
     * just-resolved digit with guaranteed headroom. Returns all
     * boundaries D-2..0 (the memory ripples to broadcast) and updates
     * the bounds soundly.
     */
    std::vector<unsigned> fullPassDescending();

    unsigned radix() const { return radix_; }
    unsigned numDigits() const { return static_cast<unsigned>(
        bounds_.size()); }
    const std::vector<unsigned> &bounds() const { return bounds_; }
    uint64_t ripplesIssued() const { return ripples_; }

  private:
    /** Resolve digit @p pos (bound >= R), chaining upward if needed. */
    void resolveChain(unsigned pos, std::vector<unsigned> &out);

    unsigned radix_;
    std::vector<unsigned> bounds_;
    uint64_t ripples_ = 0;
};

/**
 * Baseline scheduler without IARM ("k-ary only", Fig. 8b): one full
 * ascending ripple pass after every input, making the per-input cost
 * capacity-dependent.
 */
class FullRippleScheduler
{
  public:
    FullRippleScheduler(unsigned radix, unsigned num_digits);

    /** No deferred state: nothing to do before an add. */
    std::vector<unsigned> prepareAdd(const std::vector<unsigned> &digits);

    /** Ripple pass to broadcast after the input's digit increments. */
    std::vector<unsigned> afterAdd();

    uint64_t ripplesIssued() const { return ripples_; }

  private:
    unsigned numDigits_;
    uint64_t ripples_ = 0;
};

} // namespace jc
} // namespace c2m

#endif // C2M_JC_IARM_HPP
