#include "jc/johnson.hpp"

#include <bit>

#include "common/logging.hpp"

namespace c2m {
namespace jc {

namespace {

uint64_t
stateMask(unsigned n)
{
    return n >= 64 ? ~0ULL : (1ULL << n) - 1;
}

void
checkN(unsigned n)
{
    C2M_ASSERT(n >= 1 && n <= kMaxBits, "unsupported JC width n=", n);
}

} // namespace

unsigned
bitsForRadix(unsigned radix)
{
    if (radix < 2 || radix % 2 != 0)
        C2M_FATAL("Johnson-counter radix must be even and >= 2, got ",
                  radix);
    return radix / 2;
}

uint64_t
encode(unsigned n, unsigned v)
{
    checkN(n);
    C2M_ASSERT(v < 2 * n, "JC value ", v, " out of range for n=", n);
    uint64_t bits = 0;
    for (unsigned i = 0; i < n; ++i)
        if (i < v && v <= i + n)
            bits |= 1ULL << i;
    return bits;
}

int
decode(unsigned n, uint64_t bits)
{
    checkN(n);
    if ((bits & ~stateMask(n)) != 0)
        return -1;
    const unsigned count =
        static_cast<unsigned>(std::popcount(bits));
    if (count == 0)
        return 0;
    unsigned v;
    if (bits & 1) {
        // Low run of ones: value = run length.
        v = count;
    } else {
        // High run of ones: value = 2n - run length.
        v = 2 * n - count;
    }
    return bits == encode(n, v) ? static_cast<int>(v) : -1;
}

bool
isValidState(unsigned n, uint64_t bits)
{
    return decode(n, bits) >= 0;
}

unsigned
decodeNearest(unsigned n, uint64_t bits)
{
    checkN(n);
    unsigned best_v = 0;
    int best_dist = 1 << 30;
    for (unsigned v = 0; v < 2 * n; ++v) {
        const int dist = std::popcount(bits ^ encode(n, v));
        if (dist < best_dist) {
            best_dist = dist;
            best_v = v;
        }
    }
    return best_v;
}

unsigned
add(unsigned n, unsigned v, unsigned k)
{
    return (v + k) % (2 * n);
}

bool
wraps(unsigned n, unsigned v, unsigned k)
{
    return v + k >= 2 * n;
}

bool
borrows(unsigned n, unsigned v, unsigned k)
{
    (void)n;
    return v < k;
}

uint64_t
shiftAdd(unsigned n, uint64_t bits, unsigned k)
{
    checkN(n);
    C2M_ASSERT(k < 2 * n, "shiftAdd step ", k, " out of range for n=", n);
    if (k == 0)
        return bits;

    // Adding n complements every bit; reduce to a shift by k' < n with
    // an optional global inversion.
    bool invert_all = false;
    unsigned kk = k;
    if (kk > n) {
        invert_all = true;
        kk -= n;
    } else if (kk == n) {
        return ~bits & stateMask(n);
    }

    uint64_t out = 0;
    for (unsigned i = 0; i < n; ++i) {
        bool b;
        if (i >= kk) {
            b = (bits >> (i - kk)) & 1;          // forward shift
        } else {
            b = !((bits >> (n - kk + i)) & 1);   // inverted feedback
        }
        if (invert_all)
            b = !b;
        if (b)
            out |= 1ULL << i;
    }
    return out;
}

uint64_t
shiftSub(unsigned n, uint64_t bits, unsigned k)
{
    checkN(n);
    C2M_ASSERT(k < 2 * n, "shiftSub step ", k, " out of range for n=", n);
    if (k == 0)
        return bits;
    return shiftAdd(n, bits, 2 * n - k);
}

bool
wrapFromMsb(unsigned n, unsigned k, bool msb_old, bool msb_new)
{
    C2M_ASSERT(k >= 1 && k < 2 * n, "wrapFromMsb step out of range");
    if (k <= n)
        return msb_old && !msb_new;
    return msb_old || !msb_new;
}

bool
borrowFromMsb(unsigned n, unsigned k, bool msb_old, bool msb_new)
{
    C2M_ASSERT(k >= 1 && k < 2 * n, "borrowFromMsb step out of range");
    // Decrement by k is increment by 2n - k; a borrow occurs exactly
    // when that increment does NOT wrap.
    return !wrapFromMsb(n, 2 * n - k, msb_old, msb_new);
}

} // namespace jc
} // namespace c2m
