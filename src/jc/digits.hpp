#ifndef C2M_JC_DIGITS_HPP
#define C2M_JC_DIGITS_HPP

/**
 * @file
 * Radix decomposition and capacity math for multi-digit counters.
 *
 * The host-side routine of Count2Multiply unpacks each input value
 * into digits of the counter radix (Sec. 5.1) and, for integer-integer
 * kernels, decomposes matrix elements into canonical-signed-digit
 * (CSD) bit slices (Sec. 5.2.3). Fig. 19's storage analysis is the
 * digitsForCapacity/bitsForCapacity math below.
 */

#include <cstdint>
#include <vector>

namespace c2m {
namespace jc {

/** LSD-first base-@p radix digits of @p value (at least one digit). */
std::vector<unsigned> toDigits(uint64_t value, unsigned radix);

/** Inverse of toDigits. */
uint64_t fromDigits(const std::vector<unsigned> &digits, unsigned radix);

/** Sum of digits (number of unit increments a value triggers). */
uint64_t digitSum(uint64_t value, unsigned radix);

/** Number of non-zero digits (number of k-ary increments). */
unsigned numNonzeroDigits(uint64_t value, unsigned radix);

/**
 * Smallest digit count D with radix^D >= capacity.
 * @p capacity must be >= 1.
 */
unsigned digitsForCapacity(unsigned radix, uint64_t capacity);

/** Digits needed to cover unsigned integers of @p bits width. */
unsigned digitsForCapacityBits(unsigned radix, unsigned bits);

/**
 * Storage bits of a JC counter covering @p capacity at @p radix:
 * digitsForCapacity * (radix / 2). Binary reference: ceil(log2 cap).
 * This is Fig. 19's y-axis.
 */
unsigned bitsForCapacity(unsigned radix, uint64_t capacity);

/** ceil(log2(capacity)), the binary-encoding reference curve. */
unsigned binaryBitsForCapacity(uint64_t capacity);

/**
 * Canonical signed digit (CSD) decomposition of a signed value:
 * value = sum_i csd[i] * 2^i with csd[i] in {-1, 0, +1} and no two
 * adjacent non-zeros. LSB-first; result sized to cover the value.
 */
std::vector<int8_t> toCsd(int64_t value);

/** Inverse of toCsd. */
int64_t fromCsd(const std::vector<int8_t> &csd);

} // namespace jc
} // namespace c2m

#endif // C2M_JC_DIGITS_HPP
