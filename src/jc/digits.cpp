#include "jc/digits.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace jc {

std::vector<unsigned>
toDigits(uint64_t value, unsigned radix)
{
    C2M_ASSERT(radix >= 2, "radix must be >= 2");
    std::vector<unsigned> digits;
    do {
        digits.push_back(static_cast<unsigned>(value % radix));
        value /= radix;
    } while (value != 0);
    return digits;
}

uint64_t
fromDigits(const std::vector<unsigned> &digits, unsigned radix)
{
    uint64_t value = 0;
    for (size_t i = digits.size(); i-- > 0;) {
        value = value * radix + digits[i];
    }
    return value;
}

uint64_t
digitSum(uint64_t value, unsigned radix)
{
    uint64_t s = 0;
    while (value != 0) {
        s += value % radix;
        value /= radix;
    }
    return s;
}

unsigned
numNonzeroDigits(uint64_t value, unsigned radix)
{
    unsigned nnz = 0;
    while (value != 0) {
        if (value % radix != 0)
            ++nnz;
        value /= radix;
    }
    return nnz;
}

unsigned
digitsForCapacity(unsigned radix, uint64_t capacity)
{
    C2M_ASSERT(radix >= 2 && capacity >= 1, "bad capacity request");
    unsigned digits = 1;
    // Track radix^digits without overflow: cap the accumulator once it
    // exceeds capacity.
    __uint128_t reach = radix;
    while (reach < capacity) {
        reach *= radix;
        ++digits;
    }
    return digits;
}

unsigned
digitsForCapacityBits(unsigned radix, unsigned bits)
{
    C2M_ASSERT(bits >= 1 && bits <= 64, "bad capacity bits");
    const __uint128_t capacity = static_cast<__uint128_t>(1) << bits;
    unsigned digits = 1;
    __uint128_t reach = radix;
    while (reach < capacity) {
        reach *= radix;
        ++digits;
    }
    return digits;
}

unsigned
bitsForCapacity(unsigned radix, uint64_t capacity)
{
    if (radix == 2)
        return binaryBitsForCapacity(capacity);
    C2M_ASSERT(radix % 2 == 0, "JC radix must be even");
    return digitsForCapacity(radix, capacity) * (radix / 2);
}

unsigned
binaryBitsForCapacity(uint64_t capacity)
{
    C2M_ASSERT(capacity >= 1, "bad capacity");
    unsigned bits = 1;
    __uint128_t reach = 2;
    while (reach < capacity) {
        reach *= 2;
        ++bits;
    }
    return bits;
}

std::vector<int8_t>
toCsd(int64_t value)
{
    std::vector<int8_t> csd;
    // Standard non-adjacent-form recoding; terminates because |value|
    // strictly decreases every two steps.
    int64_t x = value;
    while (x != 0) {
        int8_t digit = 0;
        if (x & 1) {
            const int64_t rem = x & 3;      // x mod 4 in [0,3]
            digit = rem == 1 ? 1 : -1;      // 2 - (x mod 4)
            x -= digit;
        }
        csd.push_back(digit);
        x >>= 1;
    }
    if (csd.empty())
        csd.push_back(0);
    return csd;
}

int64_t
fromCsd(const std::vector<int8_t> &csd)
{
    int64_t value = 0;
    for (size_t i = csd.size(); i-- > 0;)
        value = value * 2 + csd[i];
    return value;
}

} // namespace jc
} // namespace c2m
