#ifndef C2M_JC_JOHNSON_HPP
#define C2M_JC_JOHNSON_HPP

/**
 * @file
 * Golden (host-side) model of Johnson counters (twisted ring counters).
 *
 * An n-bit Johnson counter cycles through 2n states; we identify state
 * with the value v in [0, 2n). The encoding (LSB-first, paper Sec. 2.4)
 * sets bit i exactly when i < v <= i + n:
 *
 *   n=5:  0 -> 00000, 1 -> 10000, 2 -> 11000, ..., 5 -> 11111,
 *         6 -> 01111, ..., 9 -> 00001, then wraps to 0.
 *
 * Incrementing by k is a cyclic shift toward the MSB with inverted
 * feedback; adding n complements every bit. These shift rules are what
 * the in-memory muPrograms implement (Sec. 4.5.1, Alg. 1); this module
 * is the reference they are verified against.
 *
 * Bits are packed LSB-first into a uint64_t, so n <= 32 (radix <= 64),
 * far beyond the paper's radix range of 2..20.
 */

#include <cstdint>

namespace c2m {
namespace jc {

/** Maximum supported bits per digit. */
constexpr unsigned kMaxBits = 32;

/** Number of states of an n-bit Johnson counter (its radix). */
constexpr unsigned
radixOf(unsigned n)
{
    return 2 * n;
}

/** Bits per digit for an even radix R (R = 2n). */
unsigned bitsForRadix(unsigned radix);

/** Encode value v in [0, 2n) as the n-bit JC state. */
uint64_t encode(unsigned n, unsigned v);

/**
 * Decode an n-bit JC state.
 *
 * @return the value in [0, 2n), or -1 if the bit pattern is not a
 *         valid Johnson state (e.g. after an uncorrected fault).
 */
int decode(unsigned n, uint64_t bits);

/** True iff @p bits is one of the 2n valid states. */
bool isValidState(unsigned n, uint64_t bits);

/**
 * Nearest-state decode for faulted patterns: returns the valid state
 * with minimum Hamming distance to @p bits (ties broken toward the
 * smaller value). Used when reading out unprotected faulty counters.
 */
unsigned decodeNearest(unsigned n, uint64_t bits);

/** (v + k) mod 2n. */
unsigned add(unsigned n, unsigned v, unsigned k);

/** True iff incrementing v by k wraps past 2n - 1. */
bool wraps(unsigned n, unsigned v, unsigned k);

/** True iff decrementing v by k borrows below 0. */
bool borrows(unsigned n, unsigned v, unsigned k);

/**
 * Apply the k-ary shift rules of Alg. 1 directly on a state pattern.
 *
 * For k <= n:   b'[i] = b[i-k]        (i >= k, forward shift)
 *               b'[i] = ~b[n-k+i]     (i <  k, inverted feedback)
 * For k >  n:   equivalent to complementing all bits (add n) and then
 *               shifting by k - n, which swaps the roles above.
 *
 * Works on any pattern (valid state or not); on valid states it equals
 * encode(n, add(n, decode(bits), k)).
 */
uint64_t shiftAdd(unsigned n, uint64_t bits, unsigned k);

/** Decrement counterpart of shiftAdd (backward shift). */
uint64_t shiftSub(unsigned n, uint64_t bits, unsigned k);

/**
 * Overflow predicate computable from the MSB before/after a k-ary
 * increment (Alg. 1 lines 6 and 13).
 *
 *   k <= n:  wrap <=>  msb_old AND NOT msb_new
 *   k >  n:  wrap <=>  msb_old OR  NOT msb_new
 */
bool wrapFromMsb(unsigned n, unsigned k, bool msb_old, bool msb_new);

/** Underflow predicate for a k-ary decrement (mirror of wrapFromMsb). */
bool borrowFromMsb(unsigned n, unsigned k, bool msb_old, bool msb_new);

} // namespace jc
} // namespace c2m

#endif // C2M_JC_JOHNSON_HPP
