#ifndef C2M_UPROG_CODEGEN_AMBIT_HPP
#define C2M_UPROG_CODEGEN_AMBIT_HPP

/**
 * @file
 * muProgram generators for Ambit-style DRAM CIM (Sec. 4, Sec. 6).
 *
 * Produces the AAP/AP command sequences that realize masked k-ary
 * Johnson-counter increments/decrements (Alg. 1, Fig. 6b), overflow
 * detection, deferred carry rippling, and the ECC-protected variants
 * of Fig. 13a. Generated programs are verified bit-exactly against
 * the jc:: golden model by the test suite.
 *
 * Cost note (documented in DESIGN.md): under a strictly destructive
 * triple-row-activation model every masked bit-row update costs 8 AAPs
 * (plain source) or 10 AAPs (complemented source) versus the paper's
 * 7; constant re-initializations that the paper's listing elides are
 * required because TRA write-back clobbers the DCC constants. All
 * benches report the exact op counts these generators emit, alongside
 * the paper's 7n+7 / 13n+16 formulas.
 */

#include <cstdint>

#include "cim/rowaddr.hpp"
#include "jc/layout.hpp"
#include "uprog/microop.hpp"

namespace c2m {
namespace uprog {

struct CodegenOptions
{
    /** Emit the ECC-protected (XOR-embedded) masked updates. */
    bool protect = false;

    /**
     * FR computations per protected masking step (1..3). The paper's
     * Tab. 1 "FR checks" column counts both masking steps of a bit
     * update, i.e. Tab. 1's {2, 4, 6} correspond to frChecks {1, 2, 3}.
     */
    unsigned frChecks = 1;
};

class AmbitCodegen
{
  public:
    explicit AmbitCodegen(jc::CounterLayout layout,
                          CodegenOptions opts = {});

    const jc::CounterLayout &layout() const { return layout_; }
    const CodegenOptions &options() const { return opts_; }

    /**
     * Masked k-ary increment of digit @p digit by @p k (1..2n-1);
     * counters whose bit in @p mask_row is 0 are unchanged. Wraps are
     * OR-ed into the digit's Onext row (Alg. 1).
     */
    CheckedProgram karyIncrement(unsigned digit, unsigned k,
                                 unsigned mask_row) const;

    /** Masked k-ary decrement; borrows are OR-ed into Onext. */
    CheckedProgram karyDecrement(unsigned digit, unsigned k,
                                 unsigned mask_row) const;

    /**
     * Deferred carry ripple (Sec. 4.5.2): unit-increment digit+1
     * masked by Onext(digit), then clear Onext(digit).
     */
    CheckedProgram carryRipple(unsigned digit) const;

    /**
     * Borrow ripple for decrements: unit-decrement digit+1 masked by
     * Onext(digit) (pending borrow), then clear. At the top digit the
     * pending borrow is folded into Osign instead.
     */
    CheckedProgram borrowRipple(unsigned digit) const;

    /** Zero every counter row (bits, Onext, Osign). */
    cim::AmbitProgram clearCounters() const;

    // ---- Generic row-level logic (also used by tensor ops) ----

    static void emitCopy(cim::AmbitProgram &p, unsigned src,
                         unsigned dst);
    static void emitNot(cim::AmbitProgram &p, unsigned src,
                        unsigned dst);
    static void emitOr(cim::AmbitProgram &p, unsigned a, unsigned b,
                       unsigned dst);
    static void emitAnd(cim::AmbitProgram &p, unsigned a, unsigned b,
                        unsigned dst);
    /** dst = a AND NOT b. */
    static void emitAndNot(cim::AmbitProgram &p, unsigned a,
                           unsigned b, unsigned dst);

    // ---- Paper cost formulas (for comparison tables) ----

    /** Unprotected masked increment: 7n+7 (Sec. 4.5.1). */
    static uint64_t paperIncrementOps(unsigned n)
    {
        return 7ULL * n + 7;
    }

    /** Protected increments (Tab. 1): 13n+16 / 23n+26 / 33n+36. */
    static uint64_t paperProtectedOps(unsigned n,
                                      unsigned fr_checks_total)
    {
        const uint64_t extra = 5ULL * (fr_checks_total - 2);
        return (13 + extra) * n + (16 + extra);
    }

  private:
    /**
     * dst = (dst AND NOT m) OR ((src XOR src_neg) AND m), the masked
     * bit-row update of Sec. 4.2, dispatched to the plain, negated, or
     * protected emitters.
     */
    void emitMaskedUpdate(CheckedProgram &cp, unsigned dst_row,
                          unsigned src_row, bool src_neg,
                          unsigned mask_row) const;

    void emitMaskedUpdatePlain(cim::AmbitProgram &p, unsigned dst_row,
                               unsigned src_row,
                               unsigned mask_row) const;
    void emitMaskedUpdateNegated(cim::AmbitProgram &p,
                                 unsigned dst_row, unsigned src_row,
                                 unsigned mask_row) const;
    void emitProtectedMaskedUpdate(CheckedProgram &cp,
                                   unsigned dst_row, unsigned src_row,
                                   bool src_neg,
                                   unsigned mask_row) const;

    /**
     * Overflow/underflow detection into Onext (Alg. 1 lines 6/13).
     * @p auto_masked: the predicate is identically 0 for masked-out
     * counters (no explicit AND with the mask needed).
     */
    void emitWrapDetect(cim::AmbitProgram &p, unsigned old_msb_row,
                        unsigned new_msb_row, unsigned onext_row,
                        unsigned mask_row, bool or_form) const;

    /** Shared body of increment/decrement (shift by eff_k). */
    CheckedProgram shiftedUpdate(unsigned digit, unsigned eff_k,
                                 unsigned mask_row) const;

    jc::CounterLayout layout_;
    CodegenOptions opts_;
};

} // namespace uprog
} // namespace c2m

#endif // C2M_UPROG_CODEGEN_AMBIT_HPP
