#include "uprog/codegen_nvm.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace uprog {

using cim::NvmProgram;
using cim::NvmRef;
using cim::NvmTech;

NvmCodegen::NvmCodegen(jc::CounterLayout layout, cim::NvmTech tech)
    : layout_(layout), tech_(tech)
{
}

void
NvmCodegen::emitCopy(NvmProgram &p, unsigned src, unsigned dst) const
{
    if (tech_ == NvmTech::Pinatubo) {
        p.copy(dst, NvmRef::of(src));
        return;
    }
    // MAGIC: copy via double NOR through a scratch row.
    const unsigned tmp = layout_.frRow();
    p.nor(tmp, NvmRef::of(src), NvmRef::of(src));
    p.nor(dst, NvmRef::of(tmp), NvmRef::of(tmp));
}

void
NvmCodegen::emitMaskedUpdate(NvmProgram &p, unsigned dst, unsigned src,
                             bool src_neg, unsigned mask,
                             unsigned not_m_row) const
{
    const unsigned o1 = layout_.ir1Row();
    const unsigned o2 = layout_.ir2Row();

    if (tech_ == NvmTech::Pinatubo) {
        // Fig. 10a: two ANDs (negation is free in sensing) and an OR.
        p.and_(o1, NvmRef::of(mask),
               src_neg ? NvmRef::inv(src) : NvmRef::of(src));
        p.and_(o2, NvmRef::inv(mask), NvmRef::of(dst));
        p.or_(dst, NvmRef::of(o1), NvmRef::of(o2));
        return;
    }

    // Fig. 10b (MAGIC, NOR-only); ~m is cached in not_m_row.
    const unsigned tmp = layout_.t2Row();
    if (src_neg) {
        // r1 = m AND ~src = NOR(~m, src)
        p.nor(o1, NvmRef::of(not_m_row), NvmRef::of(src));
    } else {
        // r1 = m AND src = NOR(~m, ~src)
        p.nor(tmp, NvmRef::of(src), NvmRef::of(src));
        p.nor(o1, NvmRef::of(not_m_row), NvmRef::of(tmp));
    }
    // r2 = dst AND ~m = NOR(~dst, m)
    p.nor(tmp, NvmRef::of(dst), NvmRef::of(dst));
    p.nor(o2, NvmRef::of(tmp), NvmRef::of(mask));
    // dst = r1 OR r2 = NOT NOR(r1, r2)
    p.nor(tmp, NvmRef::of(o1), NvmRef::of(o2));
    p.nor(dst, NvmRef::of(tmp), NvmRef::of(tmp));
}

void
NvmCodegen::emitWrapDetect(NvmProgram &p, unsigned old_msb,
                           unsigned new_msb, unsigned onext,
                           unsigned mask, bool or_form) const
{
    const unsigned w = layout_.frRow();
    const unsigned tmp = layout_.t2Row();

    if (tech_ == NvmTech::Pinatubo) {
        if (!or_form) {
            p.and_(w, NvmRef::of(old_msb), NvmRef::inv(new_msb));
            p.or_(onext, NvmRef::of(onext), NvmRef::of(w));
        } else {
            p.or_(w, NvmRef::of(old_msb), NvmRef::inv(new_msb));
            p.and_(w, NvmRef::of(w), NvmRef::of(mask));
            p.or_(onext, NvmRef::of(onext), NvmRef::of(w));
        }
        return;
    }

    // MAGIC.
    const unsigned not_m = layout_.scratchRow(2);
    if (!or_form) {
        // w = old AND ~new = NOR(~old, new)
        p.nor(tmp, NvmRef::of(old_msb), NvmRef::of(old_msb));
        p.nor(w, NvmRef::of(tmp), NvmRef::of(new_msb));
    } else {
        // w1 = old OR ~new; w = w1 AND m = NOR(~w1, ~m);
        // ~w1 = ~old AND new = NOR(old, ~new)
        p.nor(tmp, NvmRef::of(new_msb), NvmRef::of(new_msb));
        p.nor(tmp, NvmRef::of(old_msb), NvmRef::of(tmp));
        p.nor(w, NvmRef::of(tmp), NvmRef::of(not_m));
    }
    p.nor(tmp, NvmRef::of(onext), NvmRef::of(w));
    p.nor(onext, NvmRef::of(tmp), NvmRef::of(tmp));
}

void
NvmCodegen::emitShiftedUpdate(NvmProgram &p, unsigned digit,
                              unsigned eff_k, unsigned mask_row,
                              unsigned not_m_row) const
{
    const unsigned n = layout_.bitsPerDigit();
    const bool eq_n = (eff_k == n);
    const bool over = eff_k > n;
    const unsigned kk = eq_n ? 1 : (over ? eff_k - n : eff_k);

    if (eq_n) {
        emitCopy(p, layout_.bitRow(digit, n - 1), layout_.thetaRow(0));
        for (unsigned i = 0; i < n; ++i)
            emitMaskedUpdate(p, layout_.bitRow(digit, i),
                             layout_.bitRow(digit, i), true, mask_row,
                             not_m_row);
        return;
    }
    for (unsigned j = 0; j < kk; ++j)
        emitCopy(p, layout_.bitRow(digit, n - kk + j),
                 layout_.thetaRow(j));
    for (unsigned i = n; i-- > kk;)
        emitMaskedUpdate(p, layout_.bitRow(digit, i),
                         layout_.bitRow(digit, i - kk), over, mask_row,
                         not_m_row);
    for (unsigned i = 0; i < kk; ++i)
        emitMaskedUpdate(p, layout_.bitRow(digit, i),
                         layout_.thetaRow(i), !over, mask_row,
                         not_m_row);
}

cim::NvmProgram
NvmCodegen::karyIncrement(unsigned digit, unsigned k,
                          unsigned mask_row) const
{
    const unsigned n = layout_.bitsPerDigit();
    C2M_ASSERT(k >= 1 && k < 2 * n, "increment step out of range");

    NvmProgram p;
    const unsigned not_m = layout_.scratchRow(2);
    if (tech_ == NvmTech::Magic)
        p.nor(not_m, NvmRef::of(mask_row), NvmRef::of(mask_row));

    emitShiftedUpdate(p, digit, k, mask_row, not_m);

    const unsigned kk = k == n ? 1 : (k > n ? k - n : k);
    emitWrapDetect(p, layout_.thetaRow(k == n ? 0 : kk - 1),
                   layout_.bitRow(digit, n - 1),
                   layout_.onextRow(digit), mask_row,
                   /*or_form=*/k > n);
    return p;
}

cim::NvmProgram
NvmCodegen::karyDecrement(unsigned digit, unsigned k,
                          unsigned mask_row) const
{
    const unsigned n = layout_.bitsPerDigit();
    C2M_ASSERT(k >= 1 && k < 2 * n, "decrement step out of range");

    // Decrement by k is the state shift of an increment by 2n-k.
    const unsigned eff_k = 2 * n - k;
    NvmProgram p;
    const unsigned not_m = layout_.scratchRow(2);
    if (tech_ == NvmTech::Magic)
        p.nor(not_m, NvmRef::of(mask_row), NvmRef::of(mask_row));

    emitShiftedUpdate(p, digit, eff_k, mask_row, not_m);

    // Borrow = NOT wrap(eff_k), realized by swapping old/new operands
    // (same derivation as the Ambit generator).
    const unsigned kk =
        eff_k == n ? 1 : (eff_k > n ? eff_k - n : eff_k);
    const unsigned old_msb = layout_.thetaRow(eff_k == n ? 0 : kk - 1);
    const unsigned new_msb = layout_.bitRow(digit, n - 1);
    emitWrapDetect(p, new_msb, old_msb, layout_.onextRow(digit),
                   mask_row, /*or_form=*/eff_k <= n);
    return p;
}

cim::NvmProgram
NvmCodegen::carryRipple(unsigned digit) const
{
    C2M_ASSERT(digit + 1 < layout_.numDigits(),
               "carry ripple out of the top digit");
    NvmProgram p =
        karyIncrement(digit + 1, 1, layout_.onextRow(digit));
    // Clear the consumed Onext: AND with constant zero (Pinatubo) or
    // NOR with all-ones scratch (MAGIC); both modeled as one op via
    // NOR(x, ~x) = 0 trick to stay within the available op set.
    emitClearRow(p, layout_.onextRow(digit));
    return p;
}

cim::NvmProgram
NvmCodegen::borrowRipple(unsigned digit) const
{
    C2M_ASSERT(digit + 1 < layout_.numDigits(),
               "borrow ripple out of the top digit");
    NvmProgram p =
        karyDecrement(digit + 1, 1, layout_.onextRow(digit));
    emitClearRow(p, layout_.onextRow(digit));
    return p;
}

void
NvmCodegen::emitClearRow(NvmProgram &p, unsigned row) const
{
    if (tech_ == NvmTech::Pinatubo) {
        // row = row AND ~row = 0 (negation is free in sensing).
        p.and_(row, NvmRef::of(row), NvmRef::inv(row));
        return;
    }
    // MAGIC: tmp = ~row; row = NOR(row, ~row) = 0.
    const unsigned tmp = layout_.t2Row();
    p.nor(tmp, NvmRef::of(row), NvmRef::of(row));
    p.nor(row, NvmRef::of(row), NvmRef::of(tmp));
}

cim::NvmProgram
NvmCodegen::clearCounters() const
{
    NvmProgram p;
    for (unsigned dd = 0; dd < layout_.numDigits(); ++dd) {
        for (unsigned i = 0; i < layout_.bitsPerDigit(); ++i)
            emitClearRow(p, layout_.bitRow(dd, i));
        emitClearRow(p, layout_.onextRow(dd));
    }
    emitClearRow(p, layout_.osignRow());
    return p;
}

cim::NvmProgram
NvmCodegen::foldTopBorrowIntoSign() const
{
    const unsigned top = layout_.numDigits() - 1;
    const unsigned sign = layout_.osignRow();
    const unsigned pend = layout_.onextRow(top);
    const unsigned o1 = layout_.ir1Row();
    const unsigned o2 = layout_.ir2Row();

    NvmProgram p;
    if (tech_ == NvmTech::Pinatubo) {
        // sign ^= pend via (sign AND ~pend) OR (~sign AND pend).
        p.and_(o1, NvmRef::of(sign), NvmRef::inv(pend));
        p.and_(o2, NvmRef::inv(sign), NvmRef::of(pend));
        p.or_(sign, NvmRef::of(o1), NvmRef::of(o2));
    } else {
        // Classic 5-NOR XOR through the protection scratch rows.
        const unsigned o3 = layout_.frRow();
        p.nor(o1, NvmRef::of(sign), NvmRef::of(pend));
        p.nor(o2, NvmRef::of(sign), NvmRef::of(o1));
        p.nor(o3, NvmRef::of(pend), NvmRef::of(o1));
        p.nor(o1, NvmRef::of(o2), NvmRef::of(o3)); // XNOR
        p.nor(sign, NvmRef::of(o1), NvmRef::of(o1));
    }
    emitClearRow(p, pend);
    return p;
}

} // namespace uprog
} // namespace c2m
