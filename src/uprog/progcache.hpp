#ifndef C2M_UPROG_PROGCACHE_HPP
#define C2M_UPROG_PROGCACHE_HPP

/**
 * @file
 * Per-backend muProgram cache.
 *
 * Counting programs are pure functions of (operation, physical group,
 * digit, step k, mask row index) for a fixed layout and protection
 * configuration, so each backend generates a program once and replays
 * it on every later update with the same key. Programs reference rows
 * by index only — mask row *contents* may change freely between
 * replays (the point-update path rewrites its mask row constantly).
 *
 * The cache is bounded by construction: the key space is
 * |ops| x groups x digits x radix x mask rows.
 *
 * The drain planner leans on the mask-row indirection: every digit
 * plane of every epoch writes its (constantly changing) mask into
 * ONE dedicated reserved row per shard, so all plane increments of a
 * physical group share the D x (R-1) keys of that single row index.
 * After the first epoch warms those entries, planned drains replay
 * entirely from the cache — the ~99% batch-path hit rate survives
 * column-parallel execution instead of being diluted by per-plane
 * mask rows.
 *
 * The hierarchical drain's gang issue preserves this: a merged plan
 * slices each union (digit, k) plane across shards, but every slice
 * targets the same row indices in its own shard (shards differ only
 * in column count), so leader and follower executions alike replay
 * the shard-local cached program — merging plans across shards never
 * introduces new keys.
 */

#include <cstdint>
#include <unordered_map>
#include <utility>

namespace c2m {
namespace uprog {

struct ProgramKey
{
    enum class Op : uint8_t
    {
        Increment,
        Decrement,
        CarryRipple,
        BorrowRipple,
    };

    Op op = Op::Increment;
    uint32_t phys = 0;    ///< physical counter group
    uint16_t digit = 0;
    uint16_t k = 0;       ///< step (0 for ripples)
    uint32_t maskRow = 0; ///< raw row index (0 for ripples)

    bool operator==(const ProgramKey &o) const
    {
        return op == o.op && phys == o.phys && digit == o.digit &&
               k == o.k && maskRow == o.maskRow;
    }
};

struct ProgramKeyHash
{
    size_t operator()(const ProgramKey &key) const
    {
        // splitmix64 finalizer over the packed key fields.
        uint64_t x = (static_cast<uint64_t>(key.op) << 56) ^
                     (static_cast<uint64_t>(key.phys) << 36) ^
                     (static_cast<uint64_t>(key.digit) << 24) ^
                     (static_cast<uint64_t>(key.k) << 32) ^
                     static_cast<uint64_t>(key.maskRow);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<size_t>(x);
    }
};

/**
 * Cache of generated programs keyed by ProgramKey. @p hits/@p misses
 * reference the owning engine's EngineStats counters so shard merges
 * see cache effectiveness without extra plumbing. When disabled the
 * builder runs on every lookup (the pre-cache behavior), which the
 * equivalence tests use to pin replay == regeneration.
 */
template <typename Program> class ProgramCache
{
  public:
    ProgramCache(bool enabled, uint64_t &hits, uint64_t &misses)
        : enabled_(enabled), hits_(hits), misses_(misses)
    {
    }

    template <typename Build>
    const Program &get(const ProgramKey &key, Build &&build)
    {
        if (!enabled_) {
            scratch_ = build();
            return scratch_;
        }
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
        return map_.emplace(key, build()).first->second;
    }

    bool enabled() const { return enabled_; }
    size_t size() const { return map_.size(); }

    /**
     * Drop every cached program (e.g. after the generator's options
     * changed); later lookups regenerate and count as misses.
     */
    void clear() { map_.clear(); }

  private:
    bool enabled_;
    uint64_t &hits_;
    uint64_t &misses_;
    Program scratch_; ///< holds the rebuilt program when disabled
    std::unordered_map<ProgramKey, Program, ProgramKeyHash> map_;
};

} // namespace uprog
} // namespace c2m

#endif // C2M_UPROG_PROGCACHE_HPP
