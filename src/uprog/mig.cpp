#include "uprog/mig.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace c2m {
namespace uprog {

Mig::Mig()
{
    nodes_.push_back(Node{Node::Kind::Const0, 0, {}});
}

MigEdge
Mig::addInput(const std::string &name)
{
    Node n;
    n.kind = Node::Kind::Input;
    n.inputIndex = static_cast<uint32_t>(inputs_.size());
    inputs_.push_back(name);
    nodes_.push_back(n);
    return {static_cast<uint32_t>(nodes_.size() - 1), false};
}

MigEdge
Mig::canonicalize(MigEdge a, MigEdge b, MigEdge c)
{
    // Sort children for structural hashing (node id, then polarity).
    MigEdge e[3] = {a, b, c};
    std::sort(e, e + 3, [](const MigEdge &x, const MigEdge &y) {
        return x.node != y.node ? x.node < y.node : x.neg < y.neg;
    });

    // Reuse an existing node with identical children.
    for (uint32_t id = 0; id < nodes_.size(); ++id) {
        const Node &n = nodes_[id];
        if (n.kind != Node::Kind::Maj)
            continue;
        if (n.child[0] == e[0] && n.child[1] == e[1] &&
            n.child[2] == e[2])
            return {id, false};
    }

    Node n;
    n.kind = Node::Kind::Maj;
    n.child[0] = e[0];
    n.child[1] = e[1];
    n.child[2] = e[2];
    nodes_.push_back(n);
    return {static_cast<uint32_t>(nodes_.size() - 1), false};
}

MigEdge
Mig::makeMaj(MigEdge a, MigEdge b, MigEdge c)
{
    auto is_const = [](const MigEdge &e) { return e.node == 0; };
    auto const_val = [](const MigEdge &e) { return e.neg; };

    // Omega.M: M(x, x, y) = x; Omega.C: M(x, !x, y) = y.
    if (a == b)
        return a;
    if (a == c)
        return a;
    if (b == c)
        return b;
    if (a.node == b.node && a.neg != b.neg)
        return c;
    if (a.node == c.node && a.neg != c.neg)
        return b;
    if (b.node == c.node && b.neg != c.neg)
        return a;

    // Two constant inputs fold.
    const int consts = int(is_const(a)) + int(is_const(b)) +
                       int(is_const(c));
    if (consts >= 2) {
        // With a==b etc. handled above, two constants must differ,
        // so the result is the remaining operand.
        if (is_const(a) && is_const(b))
            return const_val(a) == const_val(b)
                       ? (const_val(a) ? MigEdge{0, true}
                                       : MigEdge{0, false})
                       : c;
        if (is_const(a) && is_const(c))
            return const_val(a) == const_val(c)
                       ? (const_val(a) ? MigEdge{0, true}
                                       : MigEdge{0, false})
                       : b;
        return const_val(b) == const_val(c)
                   ? (const_val(b) ? MigEdge{0, true}
                                   : MigEdge{0, false})
                   : a;
    }

    return canonicalize(a, b, c);
}

MigEdge
Mig::makeAnd(MigEdge a, MigEdge b)
{
    return makeMaj(a, b, constZero());
}

MigEdge
Mig::makeOr(MigEdge a, MigEdge b)
{
    return makeMaj(a, b, constOne());
}

MigEdge
Mig::makeXor(MigEdge a, MigEdge b)
{
    // Fig. 12a: XOR = (a OR b) AND NOT(a AND b).
    MigEdge ir1 = makeOr(a, b);
    MigEdge ir2 = makeAnd(a, b);
    return makeAnd(ir1, invert(ir2));
}

size_t
Mig::numMajNodes() const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        if (node.kind == Node::Kind::Maj)
            ++n;
    return n;
}

bool
Mig::evaluate(MigEdge root, const std::vector<bool> &inputs) const
{
    C2M_ASSERT(inputs.size() == inputs_.size(),
               "input vector size mismatch");
    // Iterative evaluation over the DAG with memoization.
    std::vector<int8_t> memo(nodes_.size(), -1);
    // Nodes are created in topological order (children before
    // parents), so a single forward pass suffices.
    for (uint32_t id = 0; id < nodes_.size(); ++id) {
        const Node &n = nodes_[id];
        switch (n.kind) {
          case Node::Kind::Const0:
            memo[id] = 0;
            break;
          case Node::Kind::Input:
            memo[id] = inputs[n.inputIndex] ? 1 : 0;
            break;
          case Node::Kind::Maj: {
            int votes = 0;
            for (const auto &e : n.child) {
                bool v = memo[e.node] != 0;
                if (e.neg)
                    v = !v;
                votes += v ? 1 : 0;
            }
            memo[id] = votes >= 2 ? 1 : 0;
            break;
          }
        }
    }
    bool v = memo[root.node] != 0;
    return root.neg ? !v : v;
}

std::vector<bool>
Mig::truthTable(MigEdge root) const
{
    C2M_ASSERT(inputs_.size() <= 20, "too many inputs for truth table");
    const size_t rows = size_t{1} << inputs_.size();
    std::vector<bool> table(rows);
    std::vector<bool> assignment(inputs_.size());
    for (size_t r = 0; r < rows; ++r) {
        for (size_t i = 0; i < inputs_.size(); ++i)
            assignment[i] = (r >> i) & 1;
        table[r] = evaluate(root, assignment);
    }
    return table;
}

} // namespace uprog
} // namespace c2m
