#ifndef C2M_UPROG_CODEGEN_RCA_HPP
#define C2M_UPROG_CODEGEN_RCA_HPP

/**
 * @file
 * Bit-serial ripple-carry adder muPrograms (the SIMDRAM-style
 * baseline, Sec. 3 / Sec. 7.1).
 *
 * The accumulator is stored vertically (bit b of element j in row
 * base+b, column j). A masked accumulation adds a broadcast constant
 * x to every element whose mask bit is 1 by rippling a MAJ3-based
 * full adder through all W bit positions:
 *
 *   c_out = MAJ(a, x_b, c_in)
 *   sum   = MAJ(NOT c_out, c_in, MAJ(a, x_b, NOT c_in))
 *
 * where the addend row for bit b is the mask row itself when bit b of
 * x is 1 and the constant-zero row otherwise (masking for free).
 * This is the paper's point of comparison: the cost is proportional
 * to the full accumulator width W regardless of how small x is.
 */

#include <cstdint>

#include "cim/rowaddr.hpp"
#include "uprog/microop.hpp"

namespace c2m {
namespace uprog {

/** Row layout of one vertical W-bit accumulator group. */
struct RcaLayout
{
    unsigned width = 32;   ///< accumulator bits W
    unsigned baseRow = 0;

    unsigned bitRow(unsigned b) const { return baseRow + b; }
    unsigned carryRow(unsigned parity) const
    {
        return baseRow + width + (parity & 1);
    }
    /** Scratch rows for the protected (duplicate-compute) variant. */
    unsigned carry2Row() const { return baseRow + width + 2; }
    unsigned tRow() const { return baseRow + width + 3; }
    unsigned t2Row() const { return baseRow + width + 4; }
    unsigned sum1Row() const { return baseRow + width + 5; }
    unsigned sum2Row() const { return baseRow + width + 6; }

    unsigned totalRows() const { return width + 7; }
    unsigned endRow() const { return baseRow + totalRows(); }
};

class RcaCodegen
{
  public:
    struct Options
    {
        /** Duplicate-compute-and-compare protection per MAJ3 step. */
        bool protect = false;
    };

    explicit RcaCodegen(RcaLayout layout)
        : RcaCodegen(layout, Options())
    {
    }

    RcaCodegen(RcaLayout layout, Options opts);

    const RcaLayout &layout() const { return layout_; }

    /**
     * acc[j] += addend for every column j with mask bit 1 (modulo
     * 2^width). Ripples through all width bits.
     */
    CheckedProgram maskedAccumulate(uint64_t addend,
                                    unsigned mask_row) const;

    /** Zero the accumulator and carry rows. */
    cim::AmbitProgram clearAccumulators() const;

    /** Unprotected AAP cost of one full-adder bit slice. */
    static constexpr uint64_t kOpsPerBit = 11;

  private:
    void emitFullAdder(CheckedProgram &cp, unsigned bit,
                       bool addend_bit, unsigned mask_row,
                       unsigned carry_parity) const;

    RcaLayout layout_;
    Options opts_;
};

} // namespace uprog
} // namespace c2m

#endif // C2M_UPROG_CODEGEN_RCA_HPP
