#include "uprog/microop.hpp"

namespace c2m {
namespace uprog {

void
CheckedProgram::appendUnchecked(const cim::AmbitProgram &prog)
{
    if (prog.empty())
        return;
    if (!blocks.empty() && blocks.back().checks.empty()) {
        blocks.back().prog.append(prog);
        return;
    }
    blocks.push_back(Block{prog, {}});
}

void
CheckedProgram::appendBlock(Block block)
{
    blocks.push_back(std::move(block));
}

void
CheckedProgram::append(const CheckedProgram &other)
{
    for (const auto &b : other.blocks) {
        if (b.checks.empty())
            appendUnchecked(b.prog);
        else
            blocks.push_back(b);
    }
}

size_t
CheckedProgram::totalOps() const
{
    size_t n = 0;
    for (const auto &b : blocks)
        n += b.prog.size();
    return n;
}

size_t
CheckedProgram::totalChecks() const
{
    size_t n = 0;
    for (const auto &b : blocks)
        n += b.checks.size();
    return n;
}

} // namespace uprog
} // namespace c2m
