#include "uprog/codegen_ambit.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace uprog {

using cim::AmbitProgram;
using cim::RowRef;
using cim::RowSet;

namespace {

RowRef
d(unsigned row)
{
    return RowRef::data(row);
}

} // namespace

AmbitCodegen::AmbitCodegen(jc::CounterLayout layout, CodegenOptions opts)
    : layout_(layout), opts_(opts)
{
    C2M_ASSERT(opts_.frChecks >= 1 && opts_.frChecks <= 3,
               "frChecks must be 1..3");
}

// ---------------------------------------------------------------------
// Generic row logic
// ---------------------------------------------------------------------

void
AmbitCodegen::emitCopy(AmbitProgram &p, unsigned src, unsigned dst)
{
    p.aap(d(src), d(dst));
}

void
AmbitCodegen::emitNot(AmbitProgram &p, unsigned src, unsigned dst)
{
    p.aap(d(src), RowRef::dccNeg(0)); // cell0 <- ~src
    p.aap(RowRef::dcc(0), d(dst));    // dst  <- cell0
}

void
AmbitCodegen::emitOr(AmbitProgram &p, unsigned a, unsigned b,
                     unsigned dst)
{
    p.aap(d(a), RowRef::t(0));
    p.aap(d(b), RowRef::t(2));
    p.aap(RowRef::c1(), RowRef::t(1));
    p.aap(RowSet::b12(), d(dst));
}

void
AmbitCodegen::emitAnd(AmbitProgram &p, unsigned a, unsigned b,
                      unsigned dst)
{
    p.aap(d(a), RowRef::t(0));
    p.aap(d(b), RowRef::t(2));
    p.aap(RowRef::c0(), RowRef::t(1));
    p.aap(RowSet::b12(), d(dst));
}

void
AmbitCodegen::emitAndNot(AmbitProgram &p, unsigned a, unsigned b,
                         unsigned dst)
{
    p.aap(d(b), RowRef::dccNeg(0)); // cell0 <- ~b
    p.aap(d(a), RowRef::t(2));
    p.aap(RowRef::c0(), RowRef::t(1));
    p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)}, d(dst));
}

// ---------------------------------------------------------------------
// Masked bit-row updates
// ---------------------------------------------------------------------

void
AmbitCodegen::emitMaskedUpdatePlain(AmbitProgram &p, unsigned dst_row,
                                    unsigned src_row,
                                    unsigned mask_row) const
{
    // dst = (src AND m) OR (dst AND ~m), Fig. 6b style, 8 commands.
    p.aap(d(mask_row), RowSet::b8());       // T0=m, cell0=~m
    p.aap(RowRef::c0(), RowSet::b9());      // T1=0, cell1=1
    p.aap(d(src_row), RowRef::t(2));        // T2=src
    p.ap(RowSet::b12());                    // r1 = m AND src
    p.aap(d(dst_row), RowRef::t(2));        // T2=dst
    p.aap(RowSet::b14(), RowRef::t(1));     // r2 = dst AND ~m -> T1
    p.aap(RowRef::c1(), RowRef::t(2));      // T2=1
    p.aap(RowSet::b12(), d(dst_row));       // dst = r1 OR r2
}

void
AmbitCodegen::emitMaskedUpdateNegated(AmbitProgram &p,
                                      unsigned dst_row,
                                      unsigned src_row,
                                      unsigned mask_row) const
{
    // dst = (~src AND m) OR (dst AND ~m), 10 commands.
    p.aap(d(src_row), RowRef::dccNeg(0));   // cell0=~src
    p.aap(d(mask_row), RowRef::t(2));       // T2=m
    p.aap(RowRef::c0(), RowSet::b9());      // T1=0, cell1=1
    p.ap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)});
                                            // r1 = m AND ~src
    p.aap(RowRef::t(2), RowRef::t(0));      // T0=r1
    p.aap(d(mask_row), RowRef::dccNeg(0));  // cell0=~m
    p.aap(d(dst_row), RowRef::t(2));        // T2=dst
    p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::dccNeg(1)},
          RowRef::t(1));                    // r2 = dst AND ~m -> T1
    p.aap(RowRef::c1(), RowRef::t(2));      // T2=1
    p.aap(RowSet::b12(), d(dst_row));       // dst = r1 OR r2
}

void
AmbitCodegen::emitProtectedMaskedUpdate(CheckedProgram &cp,
                                        unsigned dst_row,
                                        unsigned src_row, bool src_neg,
                                        unsigned mask_row) const
{
    const unsigned t2r = layout_.t2Row();
    const unsigned ir1r = layout_.ir1Row();
    const unsigned ir2r = layout_.ir2Row();
    const unsigned fr_rows[3] = {layout_.frRow(), layout_.scratchRow(0),
                                 layout_.scratchRow(1)};

    // Emit c FR syntheses FR_j = ir1 AND NOT ir2 from stored IR rows.
    auto emit_frs = [&](AmbitProgram &p, unsigned ir2_row) {
        for (unsigned j = 0; j < opts_.frChecks; ++j) {
            p.aap(d(ir2_row), RowRef::dccNeg(0)); // cell0=~ir2
            p.aap(d(ir1r), RowRef::t(2));         // T2=ir1
            p.aap(RowRef::c0(), RowRef::t(1));    // T1=0
            p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)},
                  d(fr_rows[j]));                 // FR_j
        }
    };

    auto add_checks = [&](Block &blk, unsigned row_a, bool a_neg,
                          unsigned row_b, bool b_neg) {
        for (unsigned j = 0; j < opts_.frChecks; ++j)
            blk.checks.push_back(FrCheck::xorOf(fr_rows[j], row_a,
                                                a_neg, row_b, b_neg));
    };

    // ---- Block A: ir2a = (src or ~src) AND m -> t2 row, checked ----
    {
        Block blk;
        AmbitProgram &p = blk.prog;
        if (!src_neg) {
            p.aap(d(mask_row), RowSet::b8());    // T0=m
            p.aap(RowRef::c0(), RowRef::t(1));   // T1=0
            p.aap(d(src_row), RowRef::t(2));     // T2=src
            p.aap(RowSet::b12(), d(t2r));        // ir2a = m AND src
            p.aap(d(mask_row), RowRef::t(0));    // T0=m
            p.aap(d(src_row), RowRef::t(2));     // T2=src
            p.aap(RowRef::c1(), RowRef::t(1));   // T1=1
            p.aap(RowSet::b12(), d(ir1r));       // ir1a = m OR src
        } else {
            p.aap(d(src_row), RowRef::dccNeg(0)); // cell0=~src
            p.aap(d(mask_row), RowRef::t(2));     // T2=m
            p.aap(RowRef::c0(), RowRef::t(1));    // T1=0
            p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)},
                  d(t2r));                        // ir2a = m AND ~src
            p.aap(d(src_row), RowRef::dccNeg(0)); // cell0=~src again
            p.aap(d(mask_row), RowRef::t(2));     // T2=m
            p.aap(RowRef::c1(), RowRef::t(1));    // T1=1
            p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)},
                  d(ir1r));                       // ir1a = m OR ~src
        }
        emit_frs(p, t2r);
        add_checks(blk, src_row, src_neg, mask_row, false);
        cp.appendBlock(std::move(blk));
    }

    // ---- Block B: ir2b = dst AND ~m -> ir2 row, checked ----
    {
        Block blk;
        AmbitProgram &p = blk.prog;
        p.aap(d(mask_row), RowRef::dccNeg(0));   // cell0=~m
        p.aap(d(dst_row), RowRef::t(2));         // T2=dst
        p.aap(RowRef::c0(), RowRef::t(1));       // T1=0
        p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)},
              d(ir2r));                          // ir2b = dst AND ~m
        p.aap(d(mask_row), RowRef::dccNeg(0));   // cell0=~m again
        p.aap(d(dst_row), RowRef::t(2));         // T2=dst
        p.aap(RowRef::c1(), RowRef::t(1));       // T1=1
        p.aap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)},
              d(ir1r));                          // ir1b = dst OR ~m
        emit_frs(p, ir2r);
        add_checks(blk, dst_row, false, mask_row, true);
        cp.appendBlock(std::move(blk));
    }

    // ---- Commit: dst = t2 OR ir2 (mutually exclusive => XOR) ----
    if (opts_.frChecks >= 2) {
        // Higher-protection configurations also guard the committing
        // OR by duplicate computation; the retry re-reads t2/ir2,
        // which the commit never overwrites.
        Block blk;
        emitOr(blk.prog, t2r, ir2r, dst_row);
        emitOr(blk.prog, t2r, ir2r, fr_rows[0]);
        blk.checks.push_back(FrCheck::equalRows(dst_row, fr_rows[0]));
        cp.appendBlock(std::move(blk));
    } else {
        AmbitProgram p;
        emitOr(p, t2r, ir2r, dst_row);
        cp.appendUnchecked(p);
    }
}

void
AmbitCodegen::emitMaskedUpdate(CheckedProgram &cp, unsigned dst_row,
                               unsigned src_row, bool src_neg,
                               unsigned mask_row) const
{
    if (opts_.protect) {
        emitProtectedMaskedUpdate(cp, dst_row, src_row, src_neg,
                                  mask_row);
        return;
    }
    AmbitProgram p;
    if (src_neg)
        emitMaskedUpdateNegated(p, dst_row, src_row, mask_row);
    else
        emitMaskedUpdatePlain(p, dst_row, src_row, mask_row);
    cp.appendUnchecked(p);
}

// ---------------------------------------------------------------------
// Overflow / underflow detection
// ---------------------------------------------------------------------

void
AmbitCodegen::emitWrapDetect(AmbitProgram &p, unsigned old_msb_row,
                             unsigned new_msb_row, unsigned onext_row,
                             unsigned mask_row, bool or_form) const
{
    if (!or_form) {
        // w = old AND NOT new; identically 0 for masked-out counters.
        p.aap(d(new_msb_row), RowRef::dccNeg(0)); // cell0=~new
        p.aap(d(old_msb_row), RowRef::t(2));      // T2=old
        p.aap(RowRef::c0(), RowRef::t(1));        // T1=0
        p.ap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)});
                                                  // w -> T2
        p.aap(d(onext_row), RowRef::t(0));        // T0=Onext
        p.aap(RowRef::c1(), RowRef::t(1));        // T1=1
        p.aap(RowSet::b12(), d(onext_row));       // Onext OR w
        return;
    }

    // w = (old OR NOT new) AND mask.
    p.aap(d(new_msb_row), RowRef::dccNeg(0));     // cell0=~new
    p.aap(d(old_msb_row), RowRef::t(2));          // T2=old
    p.aap(RowRef::c1(), RowRef::t(1));            // T1=1
    p.ap(RowSet{RowRef::t(2), RowRef::dcc(0), RowRef::t(1)});
                                                  // w1 -> T2
    p.aap(d(mask_row), RowRef::t(0));             // T0=m
    p.aap(RowRef::c0(), RowRef::t(1));            // T1=0
    p.ap(RowSet::b12());                          // w = m AND w1
    p.aap(d(onext_row), RowRef::t(3));            // T3=Onext
    p.aap(RowRef::c1(), RowRef::t(1));            // T1=1
    p.aap(RowSet{RowRef::t(1), RowRef::t(2), RowRef::t(3)},
          d(onext_row));                          // Onext OR w
}

// ---------------------------------------------------------------------
// k-ary increment / decrement bodies
// ---------------------------------------------------------------------

CheckedProgram
AmbitCodegen::shiftedUpdate(unsigned digit, unsigned eff_k,
                            unsigned mask_row) const
{
    const unsigned n = layout_.bitsPerDigit();
    C2M_ASSERT(digit < layout_.numDigits(), "digit out of range");
    C2M_ASSERT(eff_k >= 1 && eff_k < 2 * n, "shift amount out of range");

    CheckedProgram cp;
    AmbitProgram saves;

    if (eff_k == n) {
        // Complement every bit under the mask; save the MSB for the
        // wrap detector.
        emitCopy(saves, layout_.bitRow(digit, n - 1),
                 layout_.thetaRow(0));
        cp.appendUnchecked(saves);
        for (unsigned i = 0; i < n; ++i)
            emitMaskedUpdate(cp, layout_.bitRow(digit, i),
                             layout_.bitRow(digit, i), true, mask_row);
        return cp;
    }

    const bool over = eff_k > n;
    const unsigned kk = over ? eff_k - n : eff_k;

    // Save the feedback sources b[n-kk .. n-1] into theta rows; the
    // MSB is always theta[kk-1].
    for (unsigned j = 0; j < kk; ++j)
        emitCopy(saves, layout_.bitRow(digit, n - kk + j),
                 layout_.thetaRow(j));
    cp.appendUnchecked(saves);

    // Phase 1: shift toward the MSB, descending so sources are read
    // before they are overwritten. For eff_k <= n the shifted value is
    // plain; for eff_k > n everything is complemented (adding n flips
    // all bits).
    for (unsigned i = n; i-- > kk;)
        emitMaskedUpdate(cp, layout_.bitRow(digit, i),
                         layout_.bitRow(digit, i - kk), over, mask_row);

    // Phase 2: feedback into the low kk bits from the saved thetas,
    // inverted for eff_k <= n and plain for eff_k > n.
    for (unsigned i = 0; i < kk; ++i)
        emitMaskedUpdate(cp, layout_.bitRow(digit, i),
                         layout_.thetaRow(i), !over, mask_row);

    return cp;
}

CheckedProgram
AmbitCodegen::karyIncrement(unsigned digit, unsigned k,
                            unsigned mask_row) const
{
    const unsigned n = layout_.bitsPerDigit();
    C2M_ASSERT(k >= 1 && k < 2 * n, "increment step ", k,
               " out of range for radix ", 2 * n);

    CheckedProgram cp = shiftedUpdate(digit, k, mask_row);

    // Overflow (Alg. 1): the old MSB lives in theta[kk-1] (theta[0]
    // when k == n).
    const unsigned kk = k == n ? 1 : (k > n ? k - n : k);
    const unsigned old_msb = layout_.thetaRow(k == n ? 0 : kk - 1);
    const unsigned new_msb = layout_.bitRow(digit, n - 1);

    AmbitProgram wrap;
    emitWrapDetect(wrap, old_msb, new_msb, layout_.onextRow(digit),
                   mask_row, /*or_form=*/k > n);
    cp.appendUnchecked(wrap);
    return cp;
}

CheckedProgram
AmbitCodegen::karyDecrement(unsigned digit, unsigned k,
                            unsigned mask_row) const
{
    const unsigned n = layout_.bitsPerDigit();
    C2M_ASSERT(k >= 1 && k < 2 * n, "decrement step ", k,
               " out of range for radix ", 2 * n);

    // Decrement by k is the state shift of an increment by 2n-k.
    const unsigned eff_k = 2 * n - k;
    CheckedProgram cp = shiftedUpdate(digit, eff_k, mask_row);

    const unsigned kk = eff_k == n ? 1 : (eff_k > n ? eff_k - n : eff_k);
    const unsigned old_msb = layout_.thetaRow(eff_k == n ? 0 : kk - 1);
    const unsigned new_msb = layout_.bitRow(digit, n - 1);

    // Borrow = NOT wrap(eff_k):
    //   eff_k <= n: borrow = ~old OR new  -> or-form with args swapped
    //   eff_k >  n: borrow = ~old AND new -> and-form with args swapped
    AmbitProgram wrap;
    emitWrapDetect(wrap, new_msb, old_msb, layout_.onextRow(digit),
                   mask_row, /*or_form=*/eff_k <= n);
    cp.appendUnchecked(wrap);
    return cp;
}

CheckedProgram
AmbitCodegen::carryRipple(unsigned digit) const
{
    C2M_ASSERT(digit + 1 < layout_.numDigits(),
               "carry ripple out of the top digit");
    CheckedProgram cp =
        karyIncrement(digit + 1, 1, layout_.onextRow(digit));
    AmbitProgram clear;
    clear.aap(RowRef::c0(), d(layout_.onextRow(digit)));
    cp.appendUnchecked(clear);
    return cp;
}

CheckedProgram
AmbitCodegen::borrowRipple(unsigned digit) const
{
    C2M_ASSERT(digit + 1 < layout_.numDigits(),
               "borrow ripple out of the top digit");
    CheckedProgram cp =
        karyDecrement(digit + 1, 1, layout_.onextRow(digit));
    AmbitProgram clear;
    clear.aap(RowRef::c0(), d(layout_.onextRow(digit)));
    cp.appendUnchecked(clear);
    return cp;
}

cim::AmbitProgram
AmbitCodegen::clearCounters() const
{
    AmbitProgram p;
    for (unsigned dd = 0; dd < layout_.numDigits(); ++dd) {
        for (unsigned i = 0; i < layout_.bitsPerDigit(); ++i)
            p.aap(RowRef::c0(), d(layout_.bitRow(dd, i)));
        p.aap(RowRef::c0(), d(layout_.onextRow(dd)));
    }
    p.aap(RowRef::c0(), d(layout_.osignRow()));
    return p;
}

} // namespace uprog
} // namespace c2m
