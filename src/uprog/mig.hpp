#ifndef C2M_UPROG_MIG_HPP
#define C2M_UPROG_MIG_HPP

/**
 * @file
 * Majority-inverter graphs (Sec. 4.2, Fig. 6a / Fig. 12a).
 *
 * The in-memory circuits of Count2Multiply are synthesized as MIGs:
 * DAGs whose only gate is the three-input majority with optional
 * complemented edges. This module provides construction, evaluation,
 * structural hashing, and the classic Omega-rule simplifications
 * (majority, complementary-majority, and constant folding) used to
 * minimize the number of TRA operations; tests verify that the
 * muProgram generators implement exactly the functions of the Fig. 6a
 * forward-shift / inverted-feedback / overflow MIGs.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace c2m {
namespace uprog {

/** Edge into a MIG node: target node id plus complement flag. */
struct MigEdge
{
    uint32_t node = 0;
    bool neg = false;

    bool operator==(const MigEdge &o) const
    {
        return node == o.node && neg == o.neg;
    }
};

class Mig
{
  public:
    Mig();

    /** The constant-zero node (id 0). Use negation for one. */
    MigEdge constZero() const { return {0, false}; }
    MigEdge constOne() const { return {0, true}; }

    /** Create a primary input; returns its edge. */
    MigEdge addInput(const std::string &name);

    /**
     * Create (or reuse, via structural hashing) a majority node after
     * applying the Omega simplification rules:
     *   M(x, x, y) = x           (majority)
     *   M(x, !x, y) = y          (complementary)
     *   M(0, x, y) = x AND y, M(1, x, y) = x OR y are kept as nodes
     *   (they are the gates Ambit executes) but constants propagate
     *   when two inputs are constant.
     */
    MigEdge makeMaj(MigEdge a, MigEdge b, MigEdge c);

    /** Convenience gates built on makeMaj. */
    MigEdge makeAnd(MigEdge a, MigEdge b);
    MigEdge makeOr(MigEdge a, MigEdge b);
    MigEdge makeXor(MigEdge a, MigEdge b);
    static MigEdge invert(MigEdge e) { return {e.node, !e.neg}; }

    /** Number of majority nodes (TRA cost proxy). */
    size_t numMajNodes() const;

    size_t numInputs() const { return inputs_.size(); }

    /** Evaluate @p root for one assignment of input values. */
    bool evaluate(MigEdge root, const std::vector<bool> &inputs) const;

    /**
     * Truth table of @p root over all input assignments (inputs
     * ordered by creation; at most 20 inputs).
     */
    std::vector<bool> truthTable(MigEdge root) const;

  private:
    struct Node
    {
        enum class Kind : uint8_t { Const0, Input, Maj };
        Kind kind;
        uint32_t inputIndex = 0; ///< for Input
        MigEdge child[3];        ///< for Maj
    };

    MigEdge canonicalize(MigEdge a, MigEdge b, MigEdge c);

    std::vector<Node> nodes_;
    std::vector<std::string> inputs_;
};

} // namespace uprog
} // namespace c2m

#endif // C2M_UPROG_MIG_HPP
