#ifndef C2M_UPROG_MICROOP_HPP
#define C2M_UPROG_MICROOP_HPP

/**
 * @file
 * Checked muProgram container (Sec. 5.1, Sec. 6).
 *
 * A muProgram is a straight-line AAP/AP sequence; in protected mode it
 * is split into blocks, each optionally followed by FR checks: the
 * block synthesizes FR = a XOR b in a data row whose correctness the
 * ECC hardware verifies (Fig. 12/13). A block with a failing check is
 * re-executed; blocks are arranged so they never overwrite their own
 * inputs before their checks pass (the committing write is always the
 * last block).
 */

#include <cstdint>
#include <vector>

#include "cim/rowaddr.hpp"

namespace c2m {
namespace uprog {

/**
 * One FR verification point: after the owning block runs,
 *
 *  - XorOfRows: row @p frRow must equal rowA ^ rowB (operands
 *    optionally complemented) -- the Fig. 12 scheme, where the engine
 *    evaluates the check with the row values observed at block entry
 *    (the ECC-hardware idealization the paper itself uses when it
 *    compares FR against "the actual XOR result", Fig. 12b);
 *  - EqualRows: rows @p frRow and @p rowA must be identical -- the
 *    duplicate-compute adaptation used to protect the MAJ3 full-adder
 *    steps of the RCA baseline (Sec. 7.3.1).
 */
struct FrCheck
{
    enum class Mode : uint8_t { XorOfRows, EqualRows };

    Mode mode = Mode::XorOfRows;
    unsigned frRow = 0;
    unsigned rowA = 0;
    bool aNeg = false;
    unsigned rowB = 0;
    bool bNeg = false;

    static FrCheck
    xorOf(unsigned fr, unsigned a, bool a_neg, unsigned b, bool b_neg)
    {
        return {Mode::XorOfRows, fr, a, a_neg, b, b_neg};
    }

    static FrCheck
    equalRows(unsigned fr, unsigned other)
    {
        return {Mode::EqualRows, fr, other, false, 0, false};
    }
};

struct Block
{
    cim::AmbitProgram prog;
    std::vector<FrCheck> checks;
};

struct CheckedProgram
{
    std::vector<Block> blocks;

    /** Append a block with no checks (merging into the tail block). */
    void appendUnchecked(const cim::AmbitProgram &prog);

    /** Append a checked block. */
    void appendBlock(Block block);

    void append(const CheckedProgram &other);

    size_t totalOps() const;
    size_t totalChecks() const;
    bool empty() const { return blocks.empty(); }
};

} // namespace uprog
} // namespace c2m

#endif // C2M_UPROG_MICROOP_HPP
