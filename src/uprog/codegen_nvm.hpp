#ifndef C2M_UPROG_CODEGEN_NVM_HPP
#define C2M_UPROG_CODEGEN_NVM_HPP

/**
 * @file
 * Counting muPrograms for NVM bulk-bitwise backends (Sec. 4.6,
 * Fig. 10).
 *
 * Pinatubo-style non-stateful logic computes AND/OR/NOT of sensed
 * rows (with free operand negation) and writes the result back:
 * a masked bit update costs 3 ops, so an n-bit increment costs about
 * 3n+4 including the theta save and overflow check. MAGIC has only
 * NOR: caching ~m once per increment gives 6 NORs per bit, about
 * 6n+4 per increment, matching the paper's figures.
 */

#include "cim/nvm.hpp"
#include "jc/layout.hpp"

namespace c2m {
namespace uprog {

class NvmCodegen
{
  public:
    NvmCodegen(jc::CounterLayout layout, cim::NvmTech tech);

    const jc::CounterLayout &layout() const { return layout_; }
    cim::NvmTech tech() const { return tech_; }

    /** Masked k-ary increment of a digit, overflow into Onext. */
    cim::NvmProgram karyIncrement(unsigned digit, unsigned k,
                                  unsigned mask_row) const;

    /** Masked k-ary decrement; borrows are OR-ed into Onext. */
    cim::NvmProgram karyDecrement(unsigned digit, unsigned k,
                                  unsigned mask_row) const;

    /** Carry ripple: unit-increment digit+1 masked by Onext(digit). */
    cim::NvmProgram carryRipple(unsigned digit) const;

    /** Borrow ripple: unit-decrement digit+1 masked by Onext(digit). */
    cim::NvmProgram borrowRipple(unsigned digit) const;

    /** Zero every counter row (bits, Onext, Osign). */
    cim::NvmProgram clearCounters() const;

    /** Osign ^= Onext(top); Onext(top) <- 0 (signed-mode fold). */
    cim::NvmProgram foldTopBorrowIntoSign() const;

  private:
    /** JC state shift by @p eff_k under the mask (incr/decr body). */
    void emitShiftedUpdate(cim::NvmProgram &p, unsigned digit,
                           unsigned eff_k, unsigned mask_row,
                           unsigned not_m_row) const;

    /** row <- 0 within the available op set of the technology. */
    void emitClearRow(cim::NvmProgram &p, unsigned row) const;
    /**
     * dst = ((src ^ src_neg) AND m) OR (dst AND ~m).
     * @p not_m_row: row caching ~m (MAGIC only; pass any row for
     * Pinatubo, unused).
     */
    void emitMaskedUpdate(cim::NvmProgram &p, unsigned dst,
                          unsigned src, bool src_neg, unsigned mask,
                          unsigned not_m_row) const;

    void emitWrapDetect(cim::NvmProgram &p, unsigned old_msb,
                        unsigned new_msb, unsigned onext,
                        unsigned mask, bool or_form) const;

    void emitCopy(cim::NvmProgram &p, unsigned src,
                  unsigned dst) const;

    jc::CounterLayout layout_;
    cim::NvmTech tech_;
};

} // namespace uprog
} // namespace c2m

#endif // C2M_UPROG_CODEGEN_NVM_HPP
