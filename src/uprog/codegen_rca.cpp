#include "uprog/codegen_rca.hpp"

#include "common/logging.hpp"

namespace c2m {
namespace uprog {

using cim::AmbitProgram;
using cim::RowRef;
using cim::RowSet;

namespace {

RowRef
d(unsigned row)
{
    return RowRef::data(row);
}

} // namespace

RcaCodegen::RcaCodegen(RcaLayout layout, Options opts)
    : layout_(layout), opts_(opts)
{
    C2M_ASSERT(layout_.width >= 1 && layout_.width <= 64,
               "accumulator width out of range");
}

void
RcaCodegen::emitFullAdder(CheckedProgram &cp, unsigned bit,
                          bool addend_bit, unsigned mask_row,
                          unsigned carry_parity) const
{
    const unsigned a_row = layout_.bitRow(bit);
    const unsigned cin = layout_.carryRow(carry_parity);
    const unsigned cout = layout_.carryRow(carry_parity + 1);

    // The addend row: the mask itself when bit b of x is 1 (adding m
    // adds 1 exactly where the mask is set), constant zero otherwise.
    auto addend = [&]() -> RowRef {
        return addend_bit ? d(mask_row) : RowRef::c0();
    };

    if (!opts_.protect) {
        AmbitProgram p;
        // c_out = MAJ(a, x_b, c_in)
        p.aap(d(a_row), RowRef::t(0));
        p.aap(addend(), RowRef::t(1));
        p.aap(d(cin), RowRef::t(2));
        p.aap(RowSet::b12(), d(cout));
        // t = MAJ(a, x_b, ~c_in)
        p.aap(d(a_row), RowRef::t(0));
        p.aap(addend(), RowRef::t(1));
        p.aap(d(cin), RowRef::dccNeg(0));       // cell0 = ~c_in
        p.aap(RowSet::b11(), RowRef::t(2));     // t -> T2
        // s = MAJ(~c_out, c_in, t)
        p.aap(d(cout), RowRef::dccNeg(0));      // cell0 = ~c_out
        p.aap(d(cin), RowRef::t(1));
        p.aap(RowSet{RowRef::t(1), RowRef::t(2), RowRef::dcc(0)},
              d(a_row));
        cp.appendUnchecked(p);
        return;
    }

    // Protected: compute carry, t and sum twice each into distinct
    // rows; the ECC check compares the duplicates, and the commit
    // (writing the accumulator bit) happens only after they agree.
    Block blk;
    AmbitProgram &p = blk.prog;
    auto emit_carry = [&](unsigned dst) {
        p.aap(d(a_row), RowRef::t(0));
        p.aap(addend(), RowRef::t(1));
        p.aap(d(cin), RowRef::t(2));
        p.aap(RowSet::b12(), d(dst));
    };
    auto emit_t = [&](unsigned dst) {
        p.aap(d(a_row), RowRef::t(0));
        p.aap(addend(), RowRef::t(1));
        p.aap(d(cin), RowRef::dccNeg(0));
        p.aap(RowSet::b11(), d(dst));
    };
    auto emit_sum = [&](unsigned carry_src, unsigned t_src,
                        unsigned dst) {
        p.aap(d(carry_src), RowRef::dccNeg(0)); // cell0 = ~c_out
        p.aap(d(cin), RowRef::t(1));
        p.aap(d(t_src), RowRef::t(2));
        p.aap(RowSet{RowRef::t(1), RowRef::t(2), RowRef::dcc(0)},
              d(dst));
    };

    emit_carry(cout);
    emit_carry(layout_.carry2Row());
    emit_t(layout_.tRow());
    emit_t(layout_.t2Row());
    emit_sum(cout, layout_.tRow(), layout_.sum1Row());
    emit_sum(layout_.carry2Row(), layout_.t2Row(), layout_.sum2Row());

    blk.checks.push_back(
        FrCheck::equalRows(cout, layout_.carry2Row()));
    blk.checks.push_back(
        FrCheck::equalRows(layout_.tRow(), layout_.t2Row()));
    blk.checks.push_back(
        FrCheck::equalRows(layout_.sum1Row(), layout_.sum2Row()));
    cp.appendBlock(std::move(blk));

    AmbitProgram commit;
    commit.aap(d(layout_.sum1Row()), d(a_row));
    cp.appendUnchecked(commit);
}

CheckedProgram
RcaCodegen::maskedAccumulate(uint64_t addend, unsigned mask_row) const
{
    if (layout_.width < 64)
        C2M_ASSERT(addend < (1ULL << layout_.width),
                   "addend does not fit the accumulator");

    CheckedProgram cp;
    AmbitProgram init;
    init.aap(RowRef::c0(), d(layout_.carryRow(0)));
    cp.appendUnchecked(init);

    for (unsigned b = 0; b < layout_.width; ++b)
        emitFullAdder(cp, b, (addend >> b) & 1, mask_row, b);
    return cp;
}

cim::AmbitProgram
RcaCodegen::clearAccumulators() const
{
    AmbitProgram p;
    for (unsigned b = 0; b < layout_.width; ++b)
        p.aap(RowRef::c0(), d(layout_.bitRow(b)));
    p.aap(RowRef::c0(), d(layout_.carryRow(0)));
    p.aap(RowRef::c0(), d(layout_.carryRow(1)));
    return p;
}

} // namespace uprog
} // namespace c2m
