/**
 * @file
 * Fig. 16: latency (GPU includes host-device transfer) and
 * throughput vs input sparsity for GPU, SIMDRAM and C2M on the V0
 * vector-matrix and M0 matrix-matrix workloads. C2M skips zero
 * inputs and zero digits; dense baselines cannot.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/gpu_model.hpp"
#include "core/perf.hpp"

using namespace c2m;
using namespace c2m::core;

namespace {

void
sweep(const char *name, size_t M, size_t N, size_t K)
{
    std::printf("== Fig. 16 (%s: M=%zu N=%zu K=%zu) ==\n", name, M,
                N, K);
    DramPerfModel model;
    const auto gpu = GpuModel::rtx3090ti().run(M, N, K);

    TextTable t({"sparsity%", "GPU ms(total)", "SIMDRAM ms",
                 "C2M ms", "GPU gops", "SIMDRAM gops", "C2M gops"});
    for (double sp : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 0.996,
                      0.999}) {
        TensorWorkload w;
        w.M = M;
        w.N = N;
        w.K = K;
        w.sparsity = sp;
        C2mDesign cd;
        cd.banks = 16;
        SimdramDesign sd;
        sd.banks = 16;
        const auto c = c2mWorkloadPerf(w, cd, model);
        const auto s = simdramWorkloadPerf(w, sd, model);
        t.addRow({TextTable::fmt(sp * 100.0, 1),
                  TextTable::sci(gpu.totalMs, 2),
                  TextTable::sci(s.timeMs, 2),
                  TextTable::sci(c.timeMs, 2),
                  TextTable::fmt(gpu.gopsWithTransfer, 1),
                  TextTable::fmt(s.gops, 1),
                  TextTable::fmt(c.gops, 1)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main()
{
    sweep("V0 vector-matrix", 1, 22016, 8192);
    sweep("M0 matrix-matrix", 8192, 22016, 8192);
    std::printf(
        "Shape checks: C2M beats SIMDRAM by orders of magnitude at "
        "every sparsity; against the GPU\n"
        "(with transfer) C2M crosses over at moderate sparsity in "
        "GEMV and only at extreme sparsity\n"
        "in GEMM, and its throughput grows with sparsity while the "
        "dense baselines stay flat.\n");
    return 0;
}
