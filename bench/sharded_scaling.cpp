/**
 * @file
 * Sharded batch engine scaling: ops/s of the point-update batch path
 * at 1/2/4/8 shards over a fixed logical counter space.
 *
 * Sharding narrows each shard's simulated subarray to 1/N of the
 * columns, so a routed point update expands into row operations that
 * touch 1/N of the bits; shards additionally run concurrently on the
 * thread pool. Both effects compound, so throughput should scale
 * superlinearly on multi-core hosts and still clearly beat the
 * single-shard baseline on one core.
 */

#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sharded.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main()
{
    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = 32768;
    cfg.maxMaskRows = 1;

    const size_t num_ops = 2000;
    Rng rng(99);
    std::vector<core::BatchOp> ops;
    ops.reserve(num_ops);
    for (size_t i = 0; i < num_ops; ++i)
        ops.push_back({rng.nextBounded(cfg.numCounters),
                       static_cast<int64_t>(1 + rng.nextBounded(15)),
                       0});

    std::printf("sharded batch scaling: %zu point updates over %zu "
                "logical counters\n",
                num_ops, cfg.numCounters);
    TextTable t({"shards", "time_s", "ops/s", "speedup",
                 "cache_hit%"});
    struct Row
    {
        unsigned shards;
        double timeS;
        double opsPerS;
        double speedup;
        double cacheHitFrac;
    };
    std::vector<Row> rows;
    double base_ops_per_s = 0.0;
    bool four_shard_ok = false;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        core::ShardedEngine eng(cfg, shards);
        // Warm-up: touch every shard once so first-op setup (point
        // mask allocation, page faults) is off the clock.
        std::vector<core::BatchOp> warm;
        for (unsigned s = 0; s < shards; ++s)
            warm.push_back({eng.shardStart(s), 1, 0});
        eng.accumulateBatch(warm);

        const auto t0 = Clock::now();
        eng.accumulateBatch(ops);
        const double dt = secondsSince(t0);
        const double rate = static_cast<double>(num_ops) / dt;
        if (shards == 1)
            base_ops_per_s = rate;
        const double speedup = rate / base_ops_per_s;
        if (shards == 4 && speedup > 2.0)
            four_shard_ok = true;
        const auto st = eng.stats();
        const uint64_t lookups =
            st.programCacheHits + st.programCacheMisses;
        const double hit_frac =
            lookups ? static_cast<double>(st.programCacheHits) /
                          static_cast<double>(lookups)
                    : 0.0;
        rows.push_back({shards, dt, rate, speedup, hit_frac});
        t.addRow({std::to_string(shards), TextTable::fmt(dt, 3),
                  TextTable::fmt(rate, 0), TextTable::fmt(speedup, 2),
                  TextTable::fmt(100.0 * hit_frac, 1)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("4-shard speedup > 2x: %s\n",
                four_shard_ok ? "yes" : "NO");

    // Machine-readable trail for the perf trajectory (BENCH_sharded
    // .json next to the working directory the bench runs in).
    if (std::FILE *f = std::fopen("BENCH_sharded.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"sharded_scaling\",\n"
                     "  \"backend\": \"%s\",\n"
                     "  \"num_ops\": %zu,\n"
                     "  \"num_counters\": %zu,\n  \"results\": [\n",
                     core::backendName(cfg.backend), num_ops,
                     cfg.numCounters);
        for (size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                         "    {\"shards\": %u, \"time_s\": %.6f, "
                         "\"ops_per_s\": %.1f, \"speedup\": %.3f, "
                         "\"program_cache_hit_rate\": %.4f}%s\n",
                         rows[i].shards, rows[i].timeS,
                         rows[i].opsPerS, rows[i].speedup,
                         rows[i].cacheHitFrac,
                         i + 1 < rows.size() ? "," : "");
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_sharded.json\n");
    }
    return four_shard_ok ? 0 : 1;
}
