/**
 * @file
 * Sharded batch engine scaling: ops/s of the point-update batch path
 * at 1/2/4/8 shards over a fixed logical counter space, with the
 * digit-plane drain planner off and on.
 *
 * Sharding narrows each shard's simulated subarray to 1/N of the
 * columns, so a routed point update expands into row operations that
 * touch 1/N of the bits; shards additionally run concurrently on the
 * thread pool. The planner compounds a third effect: a shard's whole
 * bucket collapses into at most D*(R-1) masked column-parallel
 * programs per group, so fabric programs stop scaling with the op
 * count at all. Both planner settings must stay bit-identical to the
 * serial replay baseline.
 *
 * Every row also reports the modeled fabric cost (EngineStats fabric
 * ns/nj plus the tFAW/tRRD-floored critical path, docs/perf.md), and
 * the JSON carries an analytical GPU baseline (GpuModel::countingRun)
 * costed on the same axis for the Fig. 14-style comparison.
 *
 * `--trace FILE` installs an obs::TraceRecorder for the run and
 * writes a Chrome/Perfetto trace (per-shard drain spans, plan
 * commit/fallback instants); `--metrics FILE` appends one metrics
 * JSON line per row (docs/observability.md).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/gpu_model.hpp"
#include "core/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    const char *metrics_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc)
            metrics_path = argv[++i];
        else {
            std::printf(
                "usage: %s [--trace FILE] [--metrics FILE]\n",
                argv[0]);
            return 2;
        }
    }
    obs::TraceRecorder recorder;
    if (trace_path)
        recorder.install();
    obs::MetricsRegistry registry;
    CounterMap row_report;
    std::FILE *metrics_file = nullptr;
    if (metrics_path) {
        metrics_file = std::fopen(metrics_path, "w");
        if (!metrics_file) {
            std::printf("cannot open %s\n", metrics_path);
            return 2;
        }
        registry.addCounterSource("row",
                                  [&] { return row_report; });
    }

    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = 32768;
    cfg.maxMaskRows = 1;

    const size_t num_ops = 32768;
    Rng rng(99);
    std::vector<core::BatchOp> ops;
    ops.reserve(num_ops);
    for (size_t i = 0; i < num_ops; ++i)
        ops.push_back({rng.nextBounded(cfg.numCounters),
                       static_cast<int64_t>(1 + rng.nextBounded(15)),
                       0});

    std::printf("sharded batch scaling: %zu point updates over %zu "
                "logical counters\n",
                num_ops, cfg.numCounters);
    TextTable t({"planner", "shards", "time_s", "ops/s", "speedup",
                 "programs", "plan_progs", "cache_hit%",
                 "fabric_us", "crit_us", "skew", "eff"});
    struct Row
    {
        bool planner;
        unsigned shards;
        double timeS;
        double opsPerS;
        double speedup;
        uint64_t increments;
        uint64_t planPrograms;
        uint64_t planFallbackOps;
        double cacheHitFrac;
        double fabricNs;
        double fabricNj;
        double fabricCriticalNs;
        double attrNs[cim::kFabricCatCount];
        double fabricSkew;       ///< straggler / mean shard fabric ns
        unsigned criticalShard;  ///< shard with the largest fabric ns
        double parallelEff;      ///< (total/shards) / critical path
        bool ledgerExact;        ///< attribution rows sum to fabric_ns
        uint64_t traceEvents;
        uint64_t rssKb;
        bool match;
    };
    std::vector<Row> rows;
    const auto reference = core::replaySerial(cfg, ops);
    bool four_shard_ok = false;
    bool all_match = true;
    for (const bool planner : {false, true}) {
        double base_ops_per_s = 0.0;
        for (unsigned shards : {1u, 2u, 4u, 8u}) {
            auto pcfg = cfg;
            pcfg.drainPlanner = planner;
            core::ShardedEngine eng(pcfg, shards);
            // Warm-up: touch every shard once so first-op setup
            // (point mask allocation, page faults) is off the clock.
            std::vector<core::BatchOp> warm;
            for (unsigned s = 0; s < shards; ++s)
                warm.push_back({eng.shardStart(s), 1, 0});
            eng.accumulateBatch(warm);
            eng.clear();
            // Wall time is best-of-5: planner-on cells drain in a
            // few milliseconds, where one sample is at the mercy of
            // thread wake-up jitter and the speedup gate below would
            // flap. Four throwaway reps race the clock first,
            // cleared between runs.
            double best = std::numeric_limits<double>::infinity();
            for (int rep = 0; rep < 4; ++rep) {
                const auto tr0 = Clock::now();
                eng.accumulateBatch(ops);
                best = std::min(best, secondsSince(tr0));
                eng.clear();
            }
            // Stats baseline after warm-up and timing reps: the
            // reported numbers must attribute only the measured
            // batch, not the per-op fallback activity before it.
            const auto st0 = eng.stats();
            std::vector<double> shard_fab0(shards);
            for (unsigned s = 0; s < shards; ++s)
                shard_fab0[s] = eng.shard(s).stats().fabric.fabricNs;
            obs::TraceRecorder *tr = obs::tracer();
            const uint64_t ev0 = tr ? tr->eventCount() : 0;

            const auto t0 = Clock::now();
            eng.accumulateBatch(ops);
            const double dt = std::min(best, secondsSince(t0));
            const double rate = static_cast<double>(num_ops) / dt;
            const bool match = eng.readAllCounters() == reference;
            all_match = all_match && match;
            if (shards == 1)
                base_ops_per_s = rate;
            const double speedup = rate / base_ops_per_s;
            if (!planner && shards == 4 && speedup > 2.0)
                four_shard_ok = true;
            const auto st = eng.stats();
            const uint64_t hits =
                st.programCacheHits - st0.programCacheHits;
            const uint64_t lookups =
                hits + st.programCacheMisses - st0.programCacheMisses;
            const double hit_frac =
                lookups ? static_cast<double>(hits) /
                              static_cast<double>(lookups)
                        : 0.0;
            // Per-shard modeled fabric time locates the straggler and
            // quantifies skew without needing a host trace; the ledger
            // gate checks the cumulative attribution rows still sum
            // bit-exactly to the merged fabric_ns total.
            double fab_max = 0.0, fab_sum = 0.0;
            unsigned crit_shard = 0;
            for (unsigned s = 0; s < shards; ++s) {
                const double d =
                    eng.shard(s).stats().fabric.fabricNs -
                    shard_fab0[s];
                fab_sum += d;
                if (d > fab_max) {
                    fab_max = d;
                    crit_shard = s;
                }
            }
            const double fab_mean =
                fab_sum / static_cast<double>(shards);
            const double skew =
                fab_mean > 0.0 ? fab_max / fab_mean : 0.0;
            const double eff = st.fabricCriticalNs > 0.0
                                   ? fab_mean / st.fabricCriticalNs
                                   : 0.0;
            const auto ledger = obs::FabricLedger::fromStats(st);
            Row row_v{planner, shards, dt, rate, speedup,
                      st.increments - st0.increments,
                      st.planPrograms - st0.planPrograms,
                      st.planFallbackOps - st0.planFallbackOps,
                      hit_frac,
                      st.fabric.fabricNs - st0.fabric.fabricNs,
                      st.fabric.fabricNj - st0.fabric.fabricNj,
                      st.fabricCriticalNs,
                      {},
                      skew,
                      crit_shard,
                      eff,
                      ledger.exact(),
                      tr ? tr->eventCount() - ev0 : 0,
                      obs::hostRssKb(), match};
            for (unsigned c = 0; c < cim::kFabricCatCount; ++c)
                row_v.attrNs[c] =
                    st.fabric.attrNs[c] - st0.fabric.attrNs[c];
            rows.push_back(row_v);
            const auto &row = rows.back();
            if (metrics_file) {
                registry.histogram("row_time_us")
                    .record(static_cast<uint64_t>(dt * 1e6));
                row_report = st.toCounters();
                const std::string line = registry.renderJsonLine(
                    registry.snapshot());
                std::fwrite(line.data(), 1, line.size(),
                            metrics_file);
            }
            t.addRow({planner ? "on" : "off", std::to_string(shards),
                      TextTable::fmt(dt, 3), TextTable::fmt(rate, 0),
                      TextTable::fmt(speedup, 2),
                      std::to_string(row.increments),
                      std::to_string(row.planPrograms),
                      TextTable::fmt(100.0 * hit_frac, 1),
                      TextTable::fmt(row.fabricNs / 1e3, 1),
                      TextTable::fmt(row.fabricCriticalNs / 1e3, 1),
                      TextTable::fmt(row.fabricSkew, 3),
                      TextTable::fmt(row.parallelEff, 3)});
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("4-shard speedup > 2x (planner off): %s\n",
                four_shard_ok ? "yes" : "NO");
    std::printf("all cells bit-identical to serial replay: %s\n",
                all_match ? "yes" : "NO");

    bool all_fabric = true;
    for (const auto &r : rows)
        all_fabric = all_fabric && r.fabricNs > 0.0 &&
                     r.fabricNj > 0.0 && r.fabricCriticalNs > 0.0;
    std::printf("every row reports nonzero fabric ns/nj: %s\n",
                all_fabric ? "yes" : "NO");

    bool all_ledger = true;
    for (const auto &r : rows)
        all_ledger = all_ledger && r.ledgerExact;
    std::printf("fabric ledger bit-exact in every cell: %s\n",
                all_ledger ? "yes" : "NO");

    // Tentpole gates: the hierarchical drain plans once per group
    // and gang-issues the slices, so plan attribution must stop
    // scaling with the shard count (it was exactly Nx under the old
    // per-shard replication) and the planner must no longer invert
    // the 8-shard scaling curve.
    double plan_attr_1 = 0.0, plan_attr_8 = 0.0;
    double planner_speedup_8 = 0.0;
    for (const auto &r : rows) {
        if (!r.planner)
            continue;
        const double plan =
            r.attrNs[static_cast<unsigned>(cim::FabricCat::Plan)];
        if (r.shards == 1)
            plan_attr_1 = plan;
        if (r.shards == 8) {
            plan_attr_8 = plan;
            planner_speedup_8 = r.speedup;
        }
    }
    const double plan_attr_ratio =
        plan_attr_1 > 0.0 ? plan_attr_8 / plan_attr_1 : 0.0;
    const bool plan_sublinear =
        plan_attr_ratio > 0.0 && plan_attr_ratio < 4.0;
    const bool planner_scales = planner_speedup_8 >= 1.0;
    std::printf("8-shard plan attribution vs 1 shard: %.2fx "
                "(need < 4x): %s\n",
                plan_attr_ratio, plan_sublinear ? "yes" : "NO");
    std::printf("8-shard planner-on speedup vs 1 shard: %.2fx "
                "(need >= 1x): %s\n",
                planner_speedup_8, planner_scales ? "yes" : "NO");

    // Analytical GPU baseline on the same cost axis (Fig. 14): a
    // bandwidth-bound scatter-add histogram of the same op stream.
    const auto gpu = core::GpuModel::rtx3090ti().countingRun(
        num_ops, cfg.numCounters);
    std::printf("gpu model (rtx3090ti) same counting run: %.1f us, "
                "%.1f uJ\n",
                gpu.ns / 1e3, gpu.nj / 1e3);

    // Machine-readable trail for the perf trajectory (BENCH_sharded
    // .json next to the working directory the bench runs in).
    if (std::FILE *f = std::fopen("BENCH_sharded.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"sharded_scaling\",\n"
                     "  \"backend\": \"%s\",\n"
                     "  \"num_ops\": %zu,\n"
                     "  \"num_counters\": %zu,\n"
                     "  \"all_match_serial_replay\": %s,\n"
                     "  \"plan_attr_ratio_8v1\": %.3f,\n"
                     "  \"planner_speedup_8\": %.3f,\n"
                     "  \"gpu_model\": {\"name\": \"rtx3090ti\", "
                     "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f},\n"
                     "  \"results\": [\n",
                     core::backendName(cfg.backend), num_ops,
                     cfg.numCounters, all_match ? "true" : "false",
                     plan_attr_ratio, planner_speedup_8,
                     gpu.ns, gpu.nj);
        for (size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(
                f,
                "    {\"planner\": %s, \"shards\": %u, "
                "\"time_s\": %.6f, "
                "\"ops_per_s\": %.1f, \"speedup\": %.3f, "
                "\"fabric_programs\": %llu, "
                "\"plan_programs\": %llu, "
                "\"plan_fallback_ops\": %llu, "
                "\"program_cache_hit_rate\": %.4f, "
                "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f, "
                "\"fabric_critical_ns\": %.1f, "
                "\"fabric_skew\": %.4f, \"critical_shard\": %u, "
                "\"parallel_efficiency\": %.4f, "
                "\"ledger_exact\": %s, \"fabric_attr\": {",
                rows[i].planner ? "true" : "false", rows[i].shards,
                rows[i].timeS, rows[i].opsPerS, rows[i].speedup,
                static_cast<unsigned long long>(rows[i].increments),
                static_cast<unsigned long long>(
                    rows[i].planPrograms),
                static_cast<unsigned long long>(
                    rows[i].planFallbackOps),
                rows[i].cacheHitFrac, rows[i].fabricNs,
                rows[i].fabricNj, rows[i].fabricCriticalNs,
                rows[i].fabricSkew, rows[i].criticalShard,
                rows[i].parallelEff,
                rows[i].ledgerExact ? "true" : "false");
            for (unsigned c = 0; c < cim::kFabricCatCount; ++c)
                std::fprintf(
                    f, "\"%s\": %.1f%s",
                    cim::fabricCatName(
                        static_cast<cim::FabricCat>(c)),
                    rows[i].attrNs[c],
                    c + 1 < cim::kFabricCatCount ? ", " : "");
            std::fprintf(
                f,
                "}, "
                "\"trace_events\": %llu, \"rss_kb\": %llu}%s\n",
                static_cast<unsigned long long>(
                    rows[i].traceEvents),
                static_cast<unsigned long long>(rows[i].rssKb),
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_sharded.json\n");
    }

    if (metrics_file) {
        std::fclose(metrics_file);
        std::printf("wrote %s (%llu snapshots)\n", metrics_path,
                    static_cast<unsigned long long>(
                        registry.snapshotCount()));
    }
    if (trace_path) {
        recorder.uninstall();
        if (obs::writeChromeTrace(recorder, trace_path))
            std::printf(
                "wrote %s (%llu events, %llu dropped)\n", trace_path,
                static_cast<unsigned long long>(
                    recorder.eventCount()),
                static_cast<unsigned long long>(
                    recorder.droppedEvents()));
        else
            std::printf("FAILED to write %s\n", trace_path);
        // Critical-path report straight from the quiesced recorder —
        // the same analysis tools/trace_analyze runs offline.
        const auto prof = obs::profileFromRecorder(recorder);
        std::printf("epoch critical-path profile:\n%s",
                    obs::renderEpochProfiles(
                        obs::buildEpochProfiles(prof))
                        .c_str());
    }
    return (four_shard_ok && all_match && all_fabric && all_ledger &&
            plan_sublinear && planner_scales)
               ? 0
               : 1;
}
