/**
 * @file
 * Tab. 1: error/detection rates of the XOR-embedded protection
 * scheme for 2/4/6 FR checks at CIM fault rates 1e-1/1e-2/1e-4 --
 * analytical model, mechanistic Monte-Carlo cross-check, and the
 * per-increment op-count row (paper formula vs our generators).
 */

#include <cstdio>

#include "common/table.hpp"
#include "ecc/analysis.hpp"
#include "jc/layout.hpp"
#include "uprog/codegen_ambit.hpp"

using namespace c2m;
using ecc::ProtectionModel;

int
main()
{
    const std::vector<unsigned> checks = {2, 4, 6};
    const std::vector<double> rates = {1e-1, 1e-2, 1e-4};

    std::printf("== Tab. 1: protection scheme rates (per bit, per "
                "masking step) ==\n");
    TextTable t({"FR checks", "fault_p", "error_rate(model)",
                 "error_rate(MC)", "detect_rate(model)",
                 "detect_rate(MC)"});
    for (unsigned c : checks) {
        for (double p : rates) {
            const auto mc = ProtectionModel::monteCarlo(
                p, c, p >= 1e-2 ? 4'000'000 : 1'000'000, 12345);
            t.addRow({TextTable::fmt(static_cast<uint64_t>(c)),
                      TextTable::sci(p, 0),
                      TextTable::sci(
                          ProtectionModel::undetectedErrorRate(p, c),
                          1),
                      TextTable::sci(mc.errorRate, 1),
                      TextTable::sci(ProtectionModel::detectRate(p, c),
                                     1),
                      TextTable::sci(mc.detectRate, 1)});
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("(MC error rates below ~1e-6 need more trials than "
                "budgeted and print as 0.)\n\n");

    std::printf("== Tab. 1 (bottom): Ambit op counts per protected "
                "increment ==\n");
    TextTable ops({"n (bits/digit)", "paper 13n+16 (FR=2)",
                   "ours (FR=2)", "paper 23n+26 (FR=4)",
                   "ours (FR=4)", "paper 33n+36 (FR=6)",
                   "ours (FR=6)"});
    for (unsigned n : {2u, 5u, 8u}) {
        std::vector<std::string> row = {
            TextTable::fmt(static_cast<uint64_t>(n))};
        for (unsigned c : checks) {
            row.push_back(TextTable::fmt(
                uprog::AmbitCodegen::paperProtectedOps(n, c)));
            jc::CounterLayout layout(2 * n, 32, 0);
            uprog::CodegenOptions o;
            o.protect = true;
            o.frChecks = c / 2;
            uprog::AmbitCodegen gen(layout, o);
            row.push_back(TextTable::fmt(static_cast<uint64_t>(
                gen.karyIncrement(0, 1, layout.endRow())
                    .totalOps())));
            // Interleave paper/ours per FR setting.
            if (c != 6) {
                // keep order: paper, ours pairs are appended in the
                // loop; nothing else to do
            }
        }
        ops.addRow(row);
    }
    std::printf("%s", ops.render().c_str());
    std::printf("\nOur strict-destructive interpreter needs extra "
                "constant re-initializations per masking\n"
                "step (DESIGN.md); the scaling in n and in FR checks "
                "matches the paper's formulas.\n");
    return 0;
}
