/**
 * @file
 * Fig. 14 (and Tab. 3): throughput, throughput/Watt and
 * throughput/mm^2 of SIMDRAM:16 and C2M:16 on the LLaMA ternary
 * GEMV/GEMM shapes, normalized to the GPU baseline.
 */

#include <algorithm>
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/gpu_model.hpp"
#include "core/perf.hpp"
#include "workloads/llama.hpp"

using namespace c2m;
using namespace c2m::core;

int
main()
{
    std::printf("== Tab. 3: GEMV and GEMM dimensions ==\n");
    TextTable shapes({"ID", "model", "M", "N", "K"});
    for (const auto &s : workloads::llamaAllShapes())
        shapes.addRow({s.id, s.model,
                       TextTable::fmt(static_cast<uint64_t>(s.M)),
                       TextTable::fmt(static_cast<uint64_t>(s.N)),
                       TextTable::fmt(static_cast<uint64_t>(s.K))});
    std::printf("%s\n", shapes.render().c_str());

    std::printf("== Fig. 14: SIMDRAM:16 and C2M:16 vs GPU "
                "(normalized to GPU = 1; GPU includes PCIe "
                "transfer) ==\n");
    DramPerfModel model;
    const auto gpu = GpuModel::rtx3090ti();

    TextTable t({"ID", "SIMDRAM gops", "C2M gops", "SIMDRAM gops/W",
                 "C2M gops/W", "SIMDRAM gops/mm2", "C2M gops/mm2"});
    std::vector<double> speedups, eff_ratios, area_ratios;
    for (const auto &s : workloads::llamaAllShapes()) {
        TensorWorkload w;
        w.M = s.M;
        w.N = s.N;
        w.K = s.K;
        C2mDesign cd;
        cd.banks = 16;
        SimdramDesign sd;
        sd.banks = 16;
        const auto c = c2mWorkloadPerf(w, cd, model);
        const auto r = simdramWorkloadPerf(w, sd, model);
        const auto g = gpu.run(s.M, s.N, s.K);

        const double g_gops = g.gopsWithTransfer;
        const double g_gpw = g.gopsWithTransfer /
                             (g.kernelMs >= g.transferMs ? 420.0
                                                         : 280.0);
        const double g_gpa = g.gopsWithTransfer / gpu.areaMm2;
        t.addRow({s.id, TextTable::fmt(r.gops / g_gops, 3),
                  TextTable::fmt(c.gops / g_gops, 3),
                  TextTable::fmt(r.gopsPerWatt / g_gpw, 3),
                  TextTable::fmt(c.gopsPerWatt / g_gpw, 3),
                  TextTable::fmt(r.gopsPerMm2 / g_gpa, 3),
                  TextTable::fmt(c.gopsPerMm2 / g_gpa, 3)});

        speedups.push_back(r.timeMs / c.timeMs);
        eff_ratios.push_back(c.gopsPerWatt / r.gopsPerWatt);
        area_ratios.push_back(c.gopsPerMm2 / r.gopsPerMm2);
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("Headline ratios C2M vs SIMDRAM (paper: up to 10x "
                "speedup, 8x GOPS/W, 9.5x GOPS/mm2):\n");
    std::printf("  speedup     geomean %.2fx  max %.2fx\n",
                geomean(speedups),
                *std::max_element(speedups.begin(), speedups.end()));
    std::printf("  GOPS/W      geomean %.2fx\n", geomean(eff_ratios));
    std::printf("  GOPS/mm2    geomean %.2fx\n",
                geomean(area_ratios));
    return 0;
}
