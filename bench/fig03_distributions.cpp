/**
 * @file
 * Fig. 3: input value distributions motivating narrow-range
 * accumulation -- (a) DNA short-read token repetition counts,
 * (b) 8-bit BERT-like input embeddings.
 */

#include <cstdio>

#include "common/table.hpp"
#include "workloads/bertproxy.hpp"
#include "workloads/dna.hpp"

using namespace c2m;

int
main()
{
    std::printf("== Fig. 3a: short-read token repetition "
                "(log-scale frequencies) ==\n");
    workloads::DnaConfig dcfg;
    dcfg.numReads = 128;
    workloads::DnaWorkload dna(dcfg);
    const auto h = dna.repetitionHistogram();
    std::printf("value\tfreq\n%s", h.render(true).c_str());
    std::printf("mean repetition: %.2f (values fit in 4-8 bits)\n\n",
                h.valueMean());

    std::printf("== Fig. 3b: 8-bit input embeddings ==\n");
    workloads::BertProxyConfig bcfg;
    bcfg.samples = 512;
    workloads::BertProxy bert(bcfg);
    const auto e = bert.embeddingHistogram();
    // Bucket into 16-wide bins for a readable table.
    TextTable t({"bin", "freq"});
    for (int lo = -128; lo < 128; lo += 16) {
        uint64_t c = 0;
        for (int v = lo; v < lo + 16; ++v)
            c += e.binCount(v);
        // Append-style build; gcc 12 -Wrestrict misfires on chained
        // rvalue string operator+ (GCC PR105329).
        std::string bin = "[";
        bin += std::to_string(lo);
        bin += ",";
        bin += std::to_string(lo + 16);
        bin += ")";
        t.addRow({bin, TextTable::fmt(static_cast<uint64_t>(c))});
    }
    std::printf("%s", t.render().c_str());
    std::printf("mean: %.2f (centered, small magnitudes)\n",
                e.valueMean());
    return 0;
}
