/**
 * @file
 * Fig. 8: masked-addition cost vs counter radix -- (a) unit counting
 * vs RCA for 16/32/64-bit capacities, (b) k-ary counting with full
 * rippling vs IARM. Values are the exact AAP/AP command counts our
 * generators emit, averaged over uniform 8-bit inputs.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/costmodel.hpp"

using namespace c2m;
using namespace c2m::core;

int
main()
{
    const std::vector<unsigned> radices = {2,  4,  6,  8,  10,
                                           12, 14, 16, 18, 20};
    const std::vector<unsigned> caps = {16, 32, 64};

    std::printf("== Fig. 8a: average AAP ops per accumulated 8-bit "
                "input, unit counting vs RCA ==\n");
    {
        TextTable t({"radix", "unit_i16", "unit_i32", "unit_i64",
                     "RCA_i16", "RCA_i32", "RCA_i64"});
        for (unsigned r : radices) {
            std::vector<std::string> row = {
                TextTable::fmt(static_cast<uint64_t>(r))};
            for (unsigned cap : caps) {
                C2mCostModel unit(r, cap, false, 1, CountMode::Unit,
                                  RippleMode::FullRipple);
                row.push_back(
                    TextTable::fmt(unit.avgOpsPerInput(8), 1));
            }
            for (unsigned cap : caps) {
                RcaCostModel rca(cap);
                row.push_back(TextTable::fmt(
                    static_cast<uint64_t>(rca.accumulateOps())));
            }
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("== Fig. 8b: k-ary counting (full rippling) vs IARM "
                "==\n");
    {
        TextTable t({"radix", "k-ary_i16", "k-ary_i32", "k-ary_i64",
                     "IARM"});
        for (unsigned r : radices) {
            std::vector<std::string> row = {
                TextTable::fmt(static_cast<uint64_t>(r))};
            for (unsigned cap : caps) {
                C2mCostModel kary(r, cap, false, 1, CountMode::Kary,
                                  RippleMode::FullRipple);
                row.push_back(
                    TextTable::fmt(kary.avgOpsPerInput(8), 1));
            }
            C2mCostModel iarm(r, 64);
            row.push_back(TextTable::fmt(iarm.avgOpsPerInput(8), 1));
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("Shape checks (paper Sec. 4.5): k-ary cuts unit "
                "counting by 2-6x; IARM is the cheapest\n"
                "and capacity-invariant (single curve); RCA is flat "
                "in radix and proportional to width;\n"
                "IARM wins most at radices 4-8.\n");
    return 0;
}
