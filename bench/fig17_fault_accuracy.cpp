/**
 * @file
 * Fig. 17: application accuracy under CIM faults -- (a) DNA
 * filtering F1 and (b) BERT-proxy classification accuracy for the
 * JC (C2M) and RCA (SIMDRAM) substrates with None/TMR/ECC
 * protection, plus the fault-free SW line.
 */

#include <cstdio>

#include "common/table.hpp"
#include "fault_lab.hpp"

using namespace c2m;
using namespace c2m::bench;

int
main()
{
    const std::vector<double> rates = {1e-6, 1e-5, 1e-4, 1e-3,
                                       1e-2, 1e-1};
    const std::vector<Scheme> schemes = {
        Scheme::Jc,  Scheme::JcTmr,  Scheme::JcEcc,
        Scheme::Rca, Scheme::RcaTmr, Scheme::RcaEcc};

    std::printf("== Fig. 17a: DNA filtering F1 vs CIM fault rate "
                "==\n");
    {
        workloads::DnaConfig dcfg;
        dcfg.genomeLen = 16384;
        dcfg.binSize = 512;
        dcfg.numReads = 24;
        workloads::DnaWorkload dna(dcfg);

        std::vector<std::string> head = {"fault_p"};
        for (auto s : schemes)
            head.push_back(schemeName(s));
        TextTable t(head);
        for (double p : rates) {
            std::vector<std::string> row = {TextTable::sci(p, 0)};
            for (auto s : schemes)
                row.push_back(
                    TextTable::fmt(dnaFilterF1(s, p, dna, 3), 3));
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("== Fig. 17b: BERT-proxy accuracy (%%) vs CIM fault "
                "rate ==\n");
    {
        workloads::BertProxyConfig bcfg;
        bcfg.samples = 48;
        workloads::BertProxy proxy(bcfg);
        std::printf("SW (fault-free) accuracy: %.1f%%\n",
                    100.0 * proxy.cleanAccuracy());

        std::vector<std::string> head = {"fault_p"};
        for (auto s : schemes)
            head.push_back(schemeName(s));
        TextTable t(head);
        for (double p : rates) {
            std::vector<std::string> row = {TextTable::sci(p, 0)};
            for (auto s : schemes)
                row.push_back(TextTable::fmt(
                    100.0 * bertAccuracy(s, p, proxy, 11), 1));
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf(
        "Shape checks (Sec. 7.3.1): JC tolerates ~10x higher fault "
        "rates than RCA at equal protection;\n"
        "ECC beats TMR for both substrates; BERT degrades more "
        "sharply than DNA filtering because\n"
        "errors compound across layers.\n");
    return 0;
}
