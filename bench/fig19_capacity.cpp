/**
 * @file
 * Fig. 19: storage bits required by Johnson counters of different
 * radices vs required accumulation capacity, with the real-task
 * anchors (DNA filter 100, BERT projection 64, BERT attention 792).
 */

#include <cstdio>

#include "common/table.hpp"
#include "jc/digits.hpp"
#include "workloads/bertproxy.hpp"

using namespace c2m;

int
main()
{
    std::printf("== Fig. 19: counter bits vs capacity ==\n");
    TextTable t({"capacity", "binary", "radix4", "radix6", "radix8",
                 "radix10"});
    for (unsigned e = 4; e <= 32; e += 4) {
        const uint64_t cap = 1ULL << e;
        t.addRow({"2^" + std::to_string(e),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::binaryBitsForCapacity(cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(4, cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(6, cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(8, cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(10, cap)))});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("== Real-task capacity anchors ==\n");
    TextTable a({"task", "capacity", "binary bits", "radix10 bits",
                 "radix4 bits"});
    struct Anchor
    {
        const char *name;
        uint64_t cap;
    };
    const Anchor anchors[] = {
        {"DNA filter", 100},
        {"BERT-Proj", workloads::BertProxy::projectionCapacity()},
        {"BERT-Attn", workloads::BertProxy::attentionCapacity()},
    };
    for (const auto &an : anchors) {
        a.addRow({an.name, TextTable::fmt(an.cap),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::binaryBitsForCapacity(an.cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(10, an.cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(4, an.cap)))});
    }
    std::printf("%s\n", a.render().c_str());
    std::printf("Shape checks (Sec. 7.3.3): DNA's capacity-100 needs "
                "10 bits at radix 10 vs 7 binary;\n"
                "radix-4 counters match binary density at "
                "power-of-four capacities.\n");
    return 0;
}
