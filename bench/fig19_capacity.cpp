/**
 * @file
 * Fig. 19: storage bits required by Johnson counters of different
 * radices vs required accumulation capacity, with the real-task
 * anchors (DNA filter 100, BERT projection 64, BERT attention 792),
 * plus the virtualized key capacity those same fabric sizes reach
 * when fronted by a virt::VirtualCounterSpace (exact heavy hitters
 * in-fabric, the tail on the count-min sketch).
 */

#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sharded.hpp"
#include "jc/digits.hpp"
#include "virt/virtspace.hpp"
#include "workloads/bertproxy.hpp"

using namespace c2m;

namespace {

/**
 * One virtualized capacity cell: a Zipf(1.1) stream over @p keys
 * distinct keys against @p counters physical counters. Returns the
 * space's final stats — keys served vs counters owned is the
 * capacity multiplier the virtualization layer buys.
 */
virt::VirtStats
virtualizedCell(size_t counters, size_t keys, size_t ops)
{
    core::EngineConfig cfg;
    cfg.numCounters = counters;
    cfg.capacityBits = 20;
    cfg.seed = 0xf19ULL;
    core::ShardedEngine engine(cfg, 4);
    virt::VirtConfig vcfg;
    vcfg.groupSize = 32;
    vcfg.promoteThreshold = 32;
    virt::VirtualCounterSpace space(engine, vcfg);

    ZipfRng zipf(keys, 1.1, 42);
    for (size_t id = 0; id < keys; ++id) {
        uint64_t s = id;
        space.add(splitMix64(s), 1);
    }
    for (size_t i = 0; i < ops; ++i) {
        uint64_t s = zipf.next();
        space.add(splitMix64(s), 1);
    }
    space.flush();
    return space.stats();
}

} // namespace

int
main()
{
    std::printf("== Fig. 19: counter bits vs capacity ==\n");
    TextTable t({"capacity", "binary", "radix4", "radix6", "radix8",
                 "radix10"});
    for (unsigned e = 4; e <= 32; e += 4) {
        const uint64_t cap = 1ULL << e;
        t.addRow({"2^" + std::to_string(e),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::binaryBitsForCapacity(cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(4, cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(6, cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(8, cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(10, cap)))});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("== Real-task capacity anchors ==\n");
    TextTable a({"task", "capacity", "binary bits", "radix10 bits",
                 "radix4 bits"});
    struct Anchor
    {
        const char *name;
        uint64_t cap;
    };
    const Anchor anchors[] = {
        {"DNA filter", 100},
        {"BERT-Proj", workloads::BertProxy::projectionCapacity()},
        {"BERT-Attn", workloads::BertProxy::attentionCapacity()},
    };
    for (const auto &an : anchors) {
        a.addRow({an.name, TextTable::fmt(an.cap),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::binaryBitsForCapacity(an.cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(10, an.cap))),
                  TextTable::fmt(static_cast<uint64_t>(
                      jc::bitsForCapacity(4, an.cap)))});
    }
    std::printf("%s\n", a.render().c_str());
    std::printf("Shape checks (Sec. 7.3.3): DNA's capacity-100 needs "
                "10 bits at radix 10 vs 7 binary;\n"
                "radix-4 counters match binary density at "
                "power-of-four capacities.\n\n");

    std::printf("== Virtualized key capacity (Zipf 1.1, 1e5 keys, "
                "docs/virt.md) ==\n");
    TextTable v({"counters", "keys served", "exact keys", "spills",
                 "keys/counter"});
    bool virt_ok = true;
    for (const size_t counters : {256u, 1024u, 4096u}) {
        const auto st = virtualizedCell(counters, 100000, 100000);
        v.addRow({TextTable::fmt(uint64_t(counters)),
                  TextTable::fmt(st.sketchKeys),
                  TextTable::fmt(st.keysExact),
                  TextTable::fmt(st.spills),
                  TextTable::fmt(double(st.sketchKeys) /
                                     double(counters),
                                 1)});
        // Every budget must serve the full key space (linear-counter
        // estimate within 10%) with a nonzero exact tier.
        virt_ok = virt_ok && st.sketchKeys > 90000 &&
                  st.sketchKeys < 110000 && st.keysExact > 0;
    }
    std::printf("%s\n", v.render().c_str());
    std::printf("every physical budget serves the full 1e5-key "
                "space: %s\n",
                virt_ok ? "yes" : "NO");
    return virt_ok ? 0 : 1;
}
