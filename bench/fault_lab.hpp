#ifndef C2M_BENCH_FAULT_LAB_HPP
#define C2M_BENCH_FAULT_LAB_HPP

/**
 * @file
 * Shared harness for the fault-accuracy experiments (Fig. 4 and
 * Fig. 17): runs masked accumulation streams, the DNA pre-alignment
 * filter, and the BERT-proxy classifier on the functional JC (C2M)
 * and RCA (SIMDRAM) engines under None/TMR/ECC protection at a given
 * CIM fault rate.
 */

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/engine.hpp"
#include "core/kernels.hpp"
#include "core/simdram.hpp"
#include "workloads/bertproxy.hpp"
#include "workloads/dna.hpp"

namespace c2m {
namespace bench {

enum class Scheme
{
    Jc,
    JcTmr,
    JcEcc,
    Rca,
    RcaTmr,
    RcaEcc,
};

inline const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Jc:
        return "JC";
      case Scheme::JcTmr:
        return "JC+TMR";
      case Scheme::JcEcc:
        return "JC+ECC";
      case Scheme::Rca:
        return "RCA";
      case Scheme::RcaTmr:
        return "RCA+TMR";
      case Scheme::RcaEcc:
        return "RCA+ECC";
    }
    return "?";
}

inline bool
isJc(Scheme s)
{
    return s == Scheme::Jc || s == Scheme::JcTmr ||
           s == Scheme::JcEcc;
}

inline core::EngineConfig
jcConfig(Scheme s, double fault_rate, size_t counters,
         unsigned mask_rows, uint64_t seed, unsigned groups = 1)
{
    core::EngineConfig cfg;
    cfg.radix = 10;
    cfg.capacityBits = 24;
    cfg.numCounters = counters;
    cfg.maxMaskRows = mask_rows;
    cfg.numGroups = groups;
    cfg.faultRate = fault_rate;
    cfg.seed = seed;
    if (s == Scheme::JcTmr)
        cfg.protection = core::Protection::Tmr;
    if (s == Scheme::JcEcc) {
        cfg.protection = core::Protection::Ecc;
        cfg.frChecks = 2; // Tab. 1's "4 FR checks" column + commit
        cfg.maxRetries = 6;
    }
    return cfg;
}

inline core::SimdramConfig
rcaConfig(Scheme s, double fault_rate, size_t elements,
          unsigned mask_rows, uint64_t seed)
{
    core::SimdramConfig cfg;
    cfg.accBits = 24;
    cfg.numElements = elements;
    cfg.maxMaskRows = mask_rows;
    cfg.faultRate = fault_rate;
    cfg.seed = seed;
    if (s == Scheme::RcaTmr)
        cfg.protection = core::RcaProtection::Tmr;
    if (s == Scheme::RcaEcc) {
        cfg.protection = core::RcaProtection::Ecc;
        cfg.maxRetries = 6;
    }
    return cfg;
}

/**
 * Fig. 4a: RMSE of a masked accumulation stream of small values
 * against exact arithmetic.
 */
inline double
accumulationRmse(Scheme scheme, double fault_rate, size_t counters,
                 int num_inputs, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> mask(counters);
    for (auto &b : mask)
        b = rng.nextBool(0.5);

    std::vector<uint64_t> inputs(num_inputs);
    for (auto &v : inputs)
        v = 1 + rng.nextBounded(255); // circa 4-8 bit values (Fig. 3)
    int64_t expected_on = 0;
    for (auto v : inputs)
        expected_on += static_cast<int64_t>(v);

    std::vector<int64_t> expected(counters, 0), measured;
    for (size_t j = 0; j < counters; ++j)
        if (mask[j])
            expected[j] = expected_on;

    if (isJc(scheme)) {
        core::C2MEngine eng(
            jcConfig(scheme, fault_rate, counters, 2, seed));
        const unsigned h = eng.addMask(mask);
        for (auto v : inputs)
            eng.accumulate(v, h);
        measured = eng.readCounters();
    } else {
        core::SimdramEngine eng(
            rcaConfig(scheme, fault_rate, counters, 2, seed));
        const unsigned h = eng.addMask(mask);
        for (auto v : inputs)
            eng.accumulate(v, h);
        measured = eng.readSigned();
    }
    return rmse(measured, expected);
}

/** Fig. 4b / Fig. 17a: DNA pre-alignment filtering F1. */
inline double
dnaFilterF1(Scheme scheme, double fault_rate,
            const workloads::DnaWorkload &dna, uint64_t seed)
{
    std::vector<std::vector<int64_t>> scores;
    const auto tokens = static_cast<unsigned>(dna.numTokens());

    if (isJc(scheme)) {
        core::C2MEngine eng(jcConfig(scheme, fault_rate,
                                     dna.numBins(), tokens, seed));
        std::vector<unsigned> handles;
        for (unsigned t = 0; t < tokens; ++t)
            handles.push_back(eng.addMask(dna.tokenMask(t)));
        for (const auto &read : dna.reads()) {
            eng.clear();
            for (const auto &[tok, cnt] : dna.readTokens(read))
                eng.accumulate(cnt, handles[tok]);
            scores.push_back(eng.readCounters());
        }
    } else {
        core::SimdramEngine eng(rcaConfig(scheme, fault_rate,
                                          dna.numBins(), tokens,
                                          seed));
        std::vector<unsigned> handles;
        for (unsigned t = 0; t < tokens; ++t)
            handles.push_back(eng.addMask(dna.tokenMask(t)));
        for (const auto &read : dna.reads()) {
            eng.clear();
            for (const auto &[tok, cnt] : dna.readTokens(read))
                eng.accumulate(cnt, handles[tok]);
            scores.push_back(eng.readSigned());
        }
    }
    return dna.evaluate(scores).f1();
}

/** Fig. 17b: BERT-proxy classification accuracy. */
inline double
bertAccuracy(Scheme scheme, double fault_rate,
             const workloads::BertProxy &proxy, uint64_t seed)
{
    uint64_t invocation = 0;
    auto gemv = [&](const std::vector<int64_t> &x,
                    const std::vector<std::vector<int8_t>> &W)
        -> std::vector<int64_t> {
        const size_t N = W[0].size();
        const unsigned K = static_cast<unsigned>(W.size());
        const uint64_t sd = seed + 7919 * ++invocation;
        if (isJc(scheme)) {
            auto cfg = jcConfig(scheme, fault_rate, N, 2 * K, sd, 2);
            cfg.capacityBits = 20;
            core::C2MEngine eng(cfg);
            return core::gemvIntTernary(eng, x, W);
        }
        auto cfg = rcaConfig(scheme, fault_rate, N, 2 * K, sd);
        cfg.accBits = 20;
        core::SimdramEngine eng(cfg);
        return core::simdramGemvTernary(eng, x, W);
    };
    return proxy.accuracy(gemv);
}

} // namespace bench
} // namespace c2m

#endif // C2M_BENCH_FAULT_LAB_HPP
