/**
 * @file
 * Async ingest throughput: producers x shards x coalescing x drain
 * planner over uniform and Zipf(1.0)-skewed key streams.
 *
 * Each cell pushes the same op stream through an IngestService
 * configured with a one-epoch coalescing window (minDrainOps =
 * stream length), so duplicate (counter, group) deltas merge before
 * touching the fabric and the drain planner sees the whole stream as
 * one bucket per shard. The headline numbers:
 *
 *  - fabric inputs (EngineStats::inputsAccumulated): accumulate
 *    calls that actually reached the fabric. Coalescing on a skewed
 *    stream must cut this >= 2x vs. uncoalesced ingest — the
 *    write-combining win the batch substrate rewards.
 *  - fabric programs (EngineStats::increments): row-level k-ary
 *    increment programs executed. The digit-plane planner must cut
 *    this >= 5x on the coalesced Zipf 4p/4s cell — the
 *    column-parallel win (Fig. 15): one masked program per populated
 *    (digit, k) plane instead of one program chain per counter.
 *  - bit-identity: every cell's final counters are compared against
 *    one blocking C2MEngine replaying the same stream serially.
 *  - fabric cost (EngineStats fabric ns/nj, docs/perf.md): every
 *    cell reports the modeled fabric time and energy of its stream.
 *  - plan-path program caching: an extra Zipf cell drains the same
 *    stream over a 16-epoch window; because digit planes live in
 *    persistent reserved mask rows, plan programs generated in the
 *    first epochs replay from the ProgramCache afterwards — the
 *    cell's hit rate must exceed 90%.
 *
 * Exit status: 0 iff the 4-producer / 4-shard Zipf cell coalesces
 * >= 2x, the planner cuts its fabric programs >= 5x, the multi-epoch
 * cell's cache hit rate is > 0.9, every cell reports nonzero fabric
 * ns and nj, and every cell matches the serial replay.
 *
 * Observability (docs/observability.md): `--trace FILE` installs an
 * obs::TraceRecorder for the whole run and writes a Chrome/Perfetto
 * trace at exit; `--metrics FILE` appends one JSON line per cell
 * from an obs::MetricsRegistry snapshot of the cell's merged
 * service/engine counters. A final showcase cell drives a
 * VirtualCounterSpace with an attached Scrubber through an
 * IngestService so the trace also carries scrub.sweep spans and
 * virt.spill / virt.restore events.
 *
 * Usage: ingest_throughput [--trace FILE] [--metrics FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/gpu_model.hpp"
#include "core/sharded.hpp"
#include "obs/analyze.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "reliability/scrubber.hpp"
#include "service/ingest.hpp"
#include "virt/virtspace.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kNumCounters = 4096;
constexpr size_t kNumOps = 4096;

// --metrics plumbing: one registry for the run, one counter source
// reading whatever the cell that just finished reported. The bench is
// single-threaded between cells, so a plain global map suffices.
obs::MetricsRegistry *g_metrics = nullptr;
std::FILE *g_metricsFile = nullptr;
CounterMap g_cellReport;
// Anomaly watchdog over the per-cell snapshots (always runs; the
// registry is snapshotted per cell even without --metrics).
obs::Watchdog g_watchdog;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

core::EngineConfig
engineConfig(bool planner = true)
{
    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = kNumCounters;
    cfg.maxMaskRows = 1;
    cfg.drainPlanner = planner;
    return cfg;
}

/** Inner members of a "fabric_attr" JSON object for one cell. */
std::string
attrJson(const double (&attr)[cim::kFabricCatCount])
{
    std::string out;
    char buf[64];
    for (unsigned c = 0; c < cim::kFabricCatCount; ++c) {
        std::snprintf(
            buf, sizeof(buf), "\"%s\": %.1f%s",
            cim::fabricCatName(static_cast<cim::FabricCat>(c)),
            attr[c], c + 1 < cim::kFabricCatCount ? ", " : "");
        out += buf;
    }
    return out;
}

std::vector<core::BatchOp>
makeStream(bool zipf)
{
    std::vector<core::BatchOp> ops;
    ops.reserve(kNumOps);
    Rng val_rng(7);
    if (zipf) {
        ZipfRng keys(kNumCounters, 1.0, 42);
        for (size_t i = 0; i < kNumOps; ++i)
            ops.push_back(
                {keys.next(),
                 static_cast<int64_t>(1 + val_rng.nextBounded(7)),
                 0});
    } else {
        Rng keys(42);
        for (size_t i = 0; i < kNumOps; ++i)
            ops.push_back(
                {keys.nextBounded(kNumCounters),
                 static_cast<int64_t>(1 + val_rng.nextBounded(7)),
                 0});
    }
    return ops;
}

/** Blocking baseline: one engine, one point mask, op after op. */
std::vector<int64_t>
serialReplay(const std::vector<core::BatchOp> &ops, double *time_s)
{
    const auto t0 = Clock::now();
    auto counters = core::replaySerial(engineConfig(), ops);
    *time_s = secondsSince(t0);
    return counters;
}

struct Cell
{
    const char *dist;
    unsigned shards;
    unsigned producers;
    bool coalesce;
    bool planner;
    double timeS = 0.0;
    double opsPerS = 0.0;
    uint64_t fabricInputs = 0;
    uint64_t fabricIncrements = 0;
    uint64_t coalesced = 0;
    uint64_t epochs = 0;
    uint64_t steals = 0;
    uint64_t stalls = 0;
    uint64_t plans = 0;
    uint64_t planPrograms = 0;
    uint64_t plannedOps = 0;
    uint64_t planFallbackOps = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    double fabricNs = 0.0;
    double fabricNj = 0.0;
    double fabricCriticalNs = 0.0;
    double attrNs[cim::kFabricCatCount] = {};
    bool ledgerExact = false;
    size_t minDrainOps = kNumOps;
    uint64_t traceEvents = 0;
    uint64_t rssKb = 0;
    bool match = false;
};

Cell
runCell(const char *dist, const std::vector<core::BatchOp> &ops,
        const std::vector<int64_t> &reference, unsigned shards,
        unsigned producers, bool coalesce, bool planner,
        size_t min_drain_ops = kNumOps, size_t chunks = 1)
{
    Cell cell{dist, shards, producers, coalesce, planner};
    cell.minDrainOps = min_drain_ops;
    obs::TraceRecorder *tr = obs::tracer();
    const uint64_t ev0 = tr ? tr->eventCount() : 0;
    core::ShardedEngine engine(engineConfig(planner), shards);
    service::IngestConfig icfg;
    icfg.coalesce = coalesce;
    // Default: one-epoch coalescing window — drain only once the
    // whole stream is queued (flush/stop still override), maximizing
    // merges. Smaller windows split the stream into multiple epochs.
    icfg.minDrainOps = min_drain_ops;
    icfg.queueCapacity = 2 * kNumOps;
    service::IngestService svc(engine, icfg);

    const auto t0 = Clock::now();
    if (chunks <= 1) {
        service::submitConcurrent(svc, ops, producers);
    } else {
        // Deterministic multi-epoch drive: flush after each slice so
        // every slice is its own epoch (a bare window would race the
        // producers and drain everything at once).
        const size_t per = (ops.size() + chunks - 1) / chunks;
        for (size_t lo = 0; lo < ops.size(); lo += per) {
            const size_t hi = std::min(ops.size(), lo + per);
            service::submitConcurrent(
                svc,
                std::span<const core::BatchOp>(ops).subspan(
                    lo, hi - lo),
                producers);
            svc.flushAndWait();
        }
    }
    const auto counters = svc.readCounters();
    cell.timeS = secondsSince(t0);
    cell.opsPerS = static_cast<double>(kNumOps) / cell.timeS;
    cell.match = counters == reference;

    const auto sst = svc.serviceStats();
    const auto est = svc.engineStats();
    cell.fabricInputs = est.inputsAccumulated;
    cell.fabricIncrements = est.increments;
    cell.coalesced = sst.coalesced;
    cell.epochs = sst.epochs;
    cell.steals = sst.steals;
    cell.stalls = sst.stalls;
    cell.plans = sst.plans;
    cell.planPrograms = sst.planPrograms;
    cell.plannedOps = sst.plannedOps;
    cell.planFallbackOps = sst.planFallbackOps;
    cell.cacheHits = est.programCacheHits;
    cell.cacheMisses = est.programCacheMisses;
    cell.fabricNs = est.fabric.fabricNs;
    cell.fabricNj = est.fabric.fabricNj;
    cell.fabricCriticalNs = est.fabricCriticalNs;
    for (unsigned c = 0; c < cim::kFabricCatCount; ++c)
        cell.attrNs[c] = est.fabric.attrNs[c];
    cell.ledgerExact = obs::FabricLedger::fromStats(est).exact();
    cell.traceEvents = tr ? tr->eventCount() - ev0 : 0;
    cell.rssKb = obs::hostRssKb();

    if (g_metrics) {
        g_metrics->histogram("cell_time_us")
            .record(static_cast<uint64_t>(cell.timeS * 1e6));
        g_cellReport = svc.report();
        const auto snap = g_metrics->snapshot();
        g_watchdog.evaluate(snap);
        if (g_metricsFile) {
            const std::string line = g_metrics->renderJsonLine(snap);
            std::fwrite(line.data(), 1, line.size(), g_metricsFile);
        }
    }
    return cell;
}

/** Summary of the virt + scrub observability showcase cell. */
struct Showcase
{
    uint64_t promotions = 0;
    uint64_t spills = 0;
    uint64_t restores = 0;
    uint64_t sweeps = 0;
    uint64_t traceEvents = 0;
};

/**
 * Observability showcase: a VirtualCounterSpace (service mode) with
 * an attached Scrubber under ECC + CIM fault injection, driven with
 * a skewed key stream over a tiny fabric so frame pressure forces
 * promotions, spills and restores while the scrubber sweeps at
 * epoch boundaries. Exists so a `--trace` run captures virt.spill /
 * virt.restore spans and scrub.sweep spans alongside the ingest
 * epochs — it contributes nothing to the exit gates.
 */
Showcase
runObservabilityShowcase()
{
    obs::TraceRecorder *tr = obs::tracer();
    const uint64_t ev0 = tr ? tr->eventCount() : 0;

    core::EngineConfig cfg = engineConfig();
    cfg.numCounters = 128;
    cfg.protection = core::Protection::Ecc;
    cfg.faultRate = 1e-3;
    core::ShardedEngine engine(cfg, 4);
    service::IngestService svc(engine);
    reliability::Scrubber scrub(engine);
    virt::VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 2;
    vcfg.restoreOpThreshold = 4;
    virt::VirtualCounterSpace space(svc, vcfg);
    space.attachScrubber(&scrub);

    // Three phased hot windows (A, B, A): while one window is hot
    // the other's groups fall quiet and become spill victims; when
    // the first window re-heats, its journaled deltas cross the
    // restore threshold and its images swap back in — so the trace
    // carries virt.spill AND virt.restore spans.
    Rng rng(61);
    for (int phase = 0; phase < 3; ++phase) {
        const uint64_t base = (phase % 2) ? 150 : 0;
        for (size_t i = 0; i < 8000; ++i) {
            uint64_t id = base + rng.nextBounded(150);
            space.add(splitMix64(id),
                      static_cast<int64_t>(1 + rng.nextBounded(3)));
        }
        space.flush();
    }
    svc.stop();

    // One single-op batch per shard: a one-op group prices the plan
    // at >= the per-op replay (one mask write + one increment each
    // way), so the planner declines and the trace also carries
    // plan.fallback instants.
    core::ShardedEngine tiny(engineConfig(), 4);
    for (unsigned s = 0; s < 4; ++s) {
        const std::vector<core::BatchOp> one = {
            {tiny.shardStart(s), 1, 0}};
        tiny.accumulateBatch(one);
    }

    Showcase sc;
    const auto st = space.stats();
    sc.promotions = st.promotions;
    sc.spills = st.spills;
    sc.restores = st.restores;
    sc.sweeps = scrub.stats().sweeps;
    sc.traceEvents = tr ? tr->eventCount() - ev0 : 0;

    if (g_metrics) {
        g_cellReport = space.report();
        const auto snap = g_metrics->snapshot();
        g_watchdog.evaluate(snap);
        if (g_metricsFile) {
            const std::string line = g_metrics->renderJsonLine(snap);
            std::fwrite(line.data(), 1, line.size(), g_metricsFile);
        }
    }
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *trace_path = nullptr;
    const char *metrics_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc)
            metrics_path = argv[++i];
        else {
            std::printf(
                "usage: %s [--trace FILE] [--metrics FILE]\n",
                argv[0]);
            return 2;
        }
    }

    obs::TraceRecorder recorder;
    if (trace_path)
        recorder.install();
    obs::MetricsRegistry registry;
    g_metrics = &registry;
    registry.addCounterSource("cell", [] { return g_cellReport; });
    // The watchdog's own alert totals fold into the stream it
    // watches, one snapshot behind.
    registry.addCounterSource("watchdog",
                              [] { return g_watchdog.counters(); });
    if (metrics_path) {
        g_metricsFile = std::fopen(metrics_path, "w");
        if (!g_metricsFile) {
            std::printf("cannot open %s\n", metrics_path);
            return 2;
        }
    }

    std::printf("async ingest throughput: %zu ops over %zu "
                "counters, one-epoch coalescing window\n",
                kNumOps, kNumCounters);

    std::vector<Cell> cells;
    bool all_match = true;
    double zipf_on = 0.0, zipf_off = 0.0;
    double zipf_prog_plan = 0.0, zipf_prog_noplan = 0.0;
    double cache_hit_rate = 0.0;
    for (const bool zipf : {false, true}) {
        const char *dist = zipf ? "zipf1.0" : "uniform";
        const auto ops = makeStream(zipf);
        double replay_s = 0.0;
        const auto reference = serialReplay(ops, &replay_s);
        std::printf("%s: serial blocking replay %.3fs (%.0f ops/s)\n",
                    dist, replay_s,
                    static_cast<double>(kNumOps) / replay_s);
        for (const unsigned shards : {1u, 4u}) {
            for (const unsigned producers : {1u, 4u}) {
                for (const bool coalesce : {false, true}) {
                    for (const bool planner : {false, true}) {
                        const auto cell =
                            runCell(dist, ops, reference, shards,
                                    producers, coalesce, planner);
                        all_match = all_match && cell.match;
                        if (zipf && shards == 4 && producers == 4 &&
                            !planner) {
                            // Coalescing reduction, planner held off.
                            (coalesce ? zipf_on : zipf_off) =
                                static_cast<double>(
                                    cell.fabricInputs);
                        }
                        if (zipf && shards == 4 && producers == 4 &&
                            coalesce) {
                            // Planner reduction on the coalesced
                            // cell: row-level programs executed.
                            (planner ? zipf_prog_plan
                                     : zipf_prog_noplan) =
                                static_cast<double>(
                                    cell.fabricIncrements);
                        }
                        cells.push_back(cell);
                    }
                }
            }
        }
        if (zipf) {
            // Multi-epoch planner-cache cell: drain the same stream
            // over a ~16-epoch window. Digit planes live in
            // persistent reserved mask rows, so the plan programs
            // generated in the first epochs replay from the
            // ProgramCache in every later one.
            auto cell = runCell("zipf-16ep", ops, reference, 4, 4,
                                true, true, kNumOps / 16, 16);
            all_match = all_match && cell.match;
            const uint64_t lookups =
                cell.cacheHits + cell.cacheMisses;
            cache_hit_rate =
                lookups ? static_cast<double>(cell.cacheHits) /
                              static_cast<double>(lookups)
                        : 0.0;
            cells.push_back(cell);

            // Heaviest contention cell: 16 producers racing into an
            // 8-shard engine with coalescing and the hierarchical
            // gang-issue drain both on — the configuration the
            // merged planner exists for.
            auto hot = runCell(dist, ops, reference, 8, 16, true,
                               true);
            all_match = all_match && hot.match;
            cells.push_back(hot);
        }
    }

    // Showcase cell after the gated grid: scrub sweeps and virt
    // spill/restore activity on the same recorder, so a --trace run
    // shows every event family the tracer knows about.
    const Showcase showcase = runObservabilityShowcase();
    std::printf("showcase (virt+scrub over ingest): %llu promotions, "
                "%llu spills, %llu restores, %llu sweeps\n",
                static_cast<unsigned long long>(showcase.promotions),
                static_cast<unsigned long long>(showcase.spills),
                static_cast<unsigned long long>(showcase.restores),
                static_cast<unsigned long long>(showcase.sweeps));

    TextTable t({"dist", "shards", "prod", "coalesce", "plan",
                 "time_s", "ops/s", "fabric_in", "programs",
                 "plan_progs", "fabric_us", "match"});
    for (const auto &c : cells)
        t.addRow({c.dist, std::to_string(c.shards),
                  std::to_string(c.producers),
                  c.coalesce ? "on" : "off",
                  c.planner ? "on" : "off", TextTable::fmt(c.timeS, 3),
                  TextTable::fmt(c.opsPerS, 0),
                  std::to_string(c.fabricInputs),
                  std::to_string(c.fabricIncrements),
                  std::to_string(c.planPrograms),
                  TextTable::fmt(c.fabricNs / 1e3, 1),
                  c.match ? "yes" : "NO"});
    std::printf("%s", t.render().c_str());

    bool all_fabric = true;
    for (const auto &c : cells)
        all_fabric = all_fabric && c.fabricNs > 0.0 &&
                     c.fabricNj > 0.0 && c.fabricCriticalNs > 0.0;
    bool all_ledger = true;
    for (const auto &c : cells)
        all_ledger = all_ledger && c.ledgerExact;

    const double reduction = zipf_on > 0.0 ? zipf_off / zipf_on : 0.0;
    const double plan_reduction =
        zipf_prog_plan > 0.0 ? zipf_prog_noplan / zipf_prog_plan
                             : 0.0;
    std::printf("zipf 4x4 fabric-op reduction from coalescing: "
                "%.2fx (need >= 2x)\n",
                reduction);
    std::printf("zipf 4x4 fabric-program reduction from the drain "
                "planner: %.2fx (need >= 5x)\n",
                plan_reduction);
    std::printf("multi-epoch plan-path cache hit rate: %.1f%% "
                "(need > 90%%)\n",
                100.0 * cache_hit_rate);
    std::printf("every cell reports nonzero fabric ns/nj: %s\n",
                all_fabric ? "yes" : "NO");
    std::printf("fabric ledger bit-exact in every cell: %s\n",
                all_ledger ? "yes" : "NO");
    std::printf("all cells bit-identical to serial replay: %s\n",
                all_match ? "yes" : "NO");
    const CounterMap wd = g_watchdog.counters();
    std::printf("watchdog: %llu evaluations, %llu alerts\n",
                static_cast<unsigned long long>(
                    wd.at("evaluations")),
                static_cast<unsigned long long>(wd.at("alerts")));

    // Analytical GPU baseline on the same cost axis (Fig. 14): a
    // bandwidth-bound scatter-add histogram of the same op stream,
    // for eyeballing the fabric_ns columns against silicon.
    const auto gpu = core::GpuModel::rtx3090ti().countingRun(
        kNumOps, kNumCounters);
    std::printf("gpu model (rtx3090ti) same counting run: %.1f us, "
                "%.1f uJ\n",
                gpu.ns / 1e3, gpu.nj / 1e3);

    if (std::FILE *f = std::fopen("BENCH_ingest.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"ingest_throughput\",\n"
                     "  \"num_ops\": %zu,\n"
                     "  \"num_counters\": %zu,\n"
                     "  \"zipf_4x4_fabric_reduction\": %.3f,\n"
                     "  \"plan_reduction\": %.3f,\n"
                     "  \"plan_cache_hit_rate\": %.4f,\n"
                     "  \"all_match_serial_replay\": %s,\n"
                     "  \"all_ledger_exact\": %s,\n"
                     "  \"gpu_model\": {\"name\": \"rtx3090ti\", "
                     "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f},\n"
                     "  \"watchdog_evaluations\": %llu,\n"
                     "  \"watchdog_alerts\": %llu,\n"
                     "  \"showcase\": {\"promotions\": %llu, "
                     "\"spills\": %llu, \"restores\": %llu, "
                     "\"sweeps\": %llu, \"trace_events\": %llu},\n"
                     "  \"cells\": [\n",
                     kNumOps, kNumCounters, reduction, plan_reduction,
                     cache_hit_rate, all_match ? "true" : "false",
                     all_ledger ? "true" : "false",
                     gpu.ns, gpu.nj,
                     static_cast<unsigned long long>(
                         wd.at("evaluations")),
                     static_cast<unsigned long long>(wd.at("alerts")),
                     static_cast<unsigned long long>(
                         showcase.promotions),
                     static_cast<unsigned long long>(showcase.spills),
                     static_cast<unsigned long long>(
                         showcase.restores),
                     static_cast<unsigned long long>(showcase.sweeps),
                     static_cast<unsigned long long>(
                         showcase.traceEvents));
        for (size_t i = 0; i < cells.size(); ++i) {
            const auto &c = cells[i];
            std::fprintf(
                f,
                "    {\"dist\": \"%s\", \"shards\": %u, "
                "\"producers\": %u, \"coalesce\": %s, "
                "\"planner\": %s, "
                "\"time_s\": %.6f, \"ops_per_s\": %.1f, "
                "\"fabric_inputs\": %llu, "
                "\"fabric_increments\": %llu, "
                "\"coalesced\": %llu, \"epochs\": %llu, "
                "\"steals\": %llu, \"stalls\": %llu, "
                "\"plans\": %llu, \"plan_programs\": %llu, "
                "\"planned_ops\": %llu, "
                "\"plan_fallback_ops\": %llu, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"min_drain_ops\": %zu, "
                "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f, "
                "\"fabric_critical_ns\": %.1f, "
                "\"ledger_exact\": %s, \"fabric_attr\": {%s}, "
                "\"trace_events\": %llu, \"rss_kb\": %llu, "
                "\"match_reference\": %s}%s\n",
                c.dist, c.shards, c.producers,
                c.coalesce ? "true" : "false",
                c.planner ? "true" : "false", c.timeS, c.opsPerS,
                static_cast<unsigned long long>(c.fabricInputs),
                static_cast<unsigned long long>(c.fabricIncrements),
                static_cast<unsigned long long>(c.coalesced),
                static_cast<unsigned long long>(c.epochs),
                static_cast<unsigned long long>(c.steals),
                static_cast<unsigned long long>(c.stalls),
                static_cast<unsigned long long>(c.plans),
                static_cast<unsigned long long>(c.planPrograms),
                static_cast<unsigned long long>(c.plannedOps),
                static_cast<unsigned long long>(c.planFallbackOps),
                static_cast<unsigned long long>(c.cacheHits),
                static_cast<unsigned long long>(c.cacheMisses),
                c.minDrainOps, c.fabricNs, c.fabricNj,
                c.fabricCriticalNs, c.ledgerExact ? "true" : "false",
                attrJson(c.attrNs).c_str(),
                static_cast<unsigned long long>(c.traceEvents),
                static_cast<unsigned long long>(c.rssKb),
                c.match ? "true" : "false",
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_ingest.json\n");
    }

    if (g_metricsFile) {
        std::fclose(g_metricsFile);
        g_metricsFile = nullptr;
        g_metrics = nullptr;
        std::printf("wrote %s (%llu snapshots)\n", metrics_path,
                    static_cast<unsigned long long>(
                        registry.snapshotCount()));
    }
    if (trace_path) {
        recorder.uninstall();
        if (obs::writeChromeTrace(recorder, trace_path))
            std::printf(
                "wrote %s (%llu events, %llu dropped)\n", trace_path,
                static_cast<unsigned long long>(
                    recorder.eventCount()),
                static_cast<unsigned long long>(
                    recorder.droppedEvents()));
        else
            std::printf("FAILED to write %s\n", trace_path);
        // Per-epoch critical-path profile of the whole run — the
        // same analysis tools/trace_analyze performs offline.
        const auto prof = obs::profileFromRecorder(recorder);
        std::printf("epoch critical-path profile:\n%s",
                    obs::renderEpochProfiles(
                        obs::buildEpochProfiles(prof))
                        .c_str());
    }

    return (reduction >= 2.0 && plan_reduction >= 5.0 &&
            cache_hit_rate > 0.9 && all_fabric && all_match &&
            all_ledger)
               ? 0
               : 1;
}
