/**
 * @file
 * Async ingest throughput: producers x shards x coalescing over
 * uniform and Zipf(1.0)-skewed key streams.
 *
 * Each cell pushes the same op stream through an IngestService
 * configured with a one-epoch coalescing window (minDrainOps =
 * stream length), so duplicate (counter, group) deltas merge before
 * touching the fabric. The headline numbers:
 *
 *  - fabric inputs (EngineStats::inputsAccumulated): accumulate
 *    calls that actually reached the fabric. Coalescing on a skewed
 *    stream must cut this >= 2x vs. uncoalesced ingest — the
 *    write-combining win the batch substrate rewards.
 *  - bit-identity: every cell's final counters are compared against
 *    one blocking C2MEngine replaying the same stream serially.
 *
 * Exit status: 0 iff the 4-producer / 4-shard Zipf cell coalesces
 * >= 2x and every cell matches the serial replay.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sharded.hpp"
#include "service/ingest.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kNumCounters = 4096;
constexpr size_t kNumOps = 4096;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

core::EngineConfig
engineConfig()
{
    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = kNumCounters;
    cfg.maxMaskRows = 1;
    return cfg;
}

std::vector<core::BatchOp>
makeStream(bool zipf)
{
    std::vector<core::BatchOp> ops;
    ops.reserve(kNumOps);
    Rng val_rng(7);
    if (zipf) {
        ZipfRng keys(kNumCounters, 1.0, 42);
        for (size_t i = 0; i < kNumOps; ++i)
            ops.push_back(
                {keys.next(),
                 static_cast<int64_t>(1 + val_rng.nextBounded(7)),
                 0});
    } else {
        Rng keys(42);
        for (size_t i = 0; i < kNumOps; ++i)
            ops.push_back(
                {keys.nextBounded(kNumCounters),
                 static_cast<int64_t>(1 + val_rng.nextBounded(7)),
                 0});
    }
    return ops;
}

/** Blocking baseline: one engine, one point mask, op after op. */
std::vector<int64_t>
serialReplay(const std::vector<core::BatchOp> &ops, double *time_s)
{
    const auto t0 = Clock::now();
    auto counters = core::replaySerial(engineConfig(), ops);
    *time_s = secondsSince(t0);
    return counters;
}

struct Cell
{
    const char *dist;
    unsigned shards;
    unsigned producers;
    bool coalesce;
    double timeS = 0.0;
    double opsPerS = 0.0;
    uint64_t fabricInputs = 0;
    uint64_t fabricIncrements = 0;
    uint64_t coalesced = 0;
    uint64_t epochs = 0;
    uint64_t steals = 0;
    uint64_t stalls = 0;
    bool match = false;
};

Cell
runCell(const char *dist, const std::vector<core::BatchOp> &ops,
        const std::vector<int64_t> &reference, unsigned shards,
        unsigned producers, bool coalesce)
{
    Cell cell{dist, shards, producers, coalesce};
    core::ShardedEngine engine(engineConfig(), shards);
    service::IngestConfig icfg;
    icfg.coalesce = coalesce;
    // One-epoch coalescing window: drain only once the whole stream
    // is queued (flush/stop still override), maximizing merges.
    icfg.minDrainOps = kNumOps;
    icfg.queueCapacity = 2 * kNumOps;
    service::IngestService svc(engine, icfg);

    const auto t0 = Clock::now();
    service::submitConcurrent(svc, ops, producers);
    const auto counters = svc.readCounters();
    cell.timeS = secondsSince(t0);
    cell.opsPerS = static_cast<double>(kNumOps) / cell.timeS;
    cell.match = counters == reference;

    const auto sst = svc.serviceStats();
    const auto est = svc.engineStats();
    cell.fabricInputs = est.inputsAccumulated;
    cell.fabricIncrements = est.increments;
    cell.coalesced = sst.coalesced;
    cell.epochs = sst.epochs;
    cell.steals = sst.steals;
    cell.stalls = sst.stalls;
    return cell;
}

} // namespace

int
main()
{
    std::printf("async ingest throughput: %zu ops over %zu "
                "counters, one-epoch coalescing window\n",
                kNumOps, kNumCounters);

    std::vector<Cell> cells;
    bool all_match = true;
    double zipf_on = 0.0, zipf_off = 0.0;
    for (const bool zipf : {false, true}) {
        const char *dist = zipf ? "zipf1.0" : "uniform";
        const auto ops = makeStream(zipf);
        double replay_s = 0.0;
        const auto reference = serialReplay(ops, &replay_s);
        std::printf("%s: serial blocking replay %.3fs (%.0f ops/s)\n",
                    dist, replay_s,
                    static_cast<double>(kNumOps) / replay_s);
        for (const unsigned shards : {1u, 4u}) {
            for (const unsigned producers : {1u, 4u}) {
                for (const bool coalesce : {false, true}) {
                    const auto cell = runCell(dist, ops, reference,
                                              shards, producers,
                                              coalesce);
                    all_match = all_match && cell.match;
                    if (zipf && shards == 4 && producers == 4) {
                        (coalesce ? zipf_on : zipf_off) =
                            static_cast<double>(cell.fabricInputs);
                    }
                    cells.push_back(cell);
                }
            }
        }
    }

    TextTable t({"dist", "shards", "prod", "coalesce", "time_s",
                 "ops/s", "fabric_in", "merged", "steals", "match"});
    for (const auto &c : cells)
        t.addRow({c.dist, std::to_string(c.shards),
                  std::to_string(c.producers), c.coalesce ? "on" : "off",
                  TextTable::fmt(c.timeS, 3),
                  TextTable::fmt(c.opsPerS, 0),
                  std::to_string(c.fabricInputs),
                  std::to_string(c.coalesced),
                  std::to_string(c.steals), c.match ? "yes" : "NO"});
    std::printf("%s", t.render().c_str());

    const double reduction = zipf_on > 0.0 ? zipf_off / zipf_on : 0.0;
    std::printf("zipf 4x4 fabric-op reduction from coalescing: "
                "%.2fx (need >= 2x)\n",
                reduction);
    std::printf("all cells bit-identical to serial replay: %s\n",
                all_match ? "yes" : "NO");

    if (std::FILE *f = std::fopen("BENCH_ingest.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"ingest_throughput\",\n"
                     "  \"num_ops\": %zu,\n"
                     "  \"num_counters\": %zu,\n"
                     "  \"zipf_4x4_fabric_reduction\": %.3f,\n"
                     "  \"all_match_serial_replay\": %s,\n"
                     "  \"cells\": [\n",
                     kNumOps, kNumCounters, reduction,
                     all_match ? "true" : "false");
        for (size_t i = 0; i < cells.size(); ++i) {
            const auto &c = cells[i];
            std::fprintf(
                f,
                "    {\"dist\": \"%s\", \"shards\": %u, "
                "\"producers\": %u, \"coalesce\": %s, "
                "\"time_s\": %.6f, \"ops_per_s\": %.1f, "
                "\"fabric_inputs\": %llu, "
                "\"fabric_increments\": %llu, "
                "\"coalesced\": %llu, \"epochs\": %llu, "
                "\"steals\": %llu, \"stalls\": %llu, "
                "\"match_reference\": %s}%s\n",
                c.dist, c.shards, c.producers,
                c.coalesce ? "true" : "false", c.timeS, c.opsPerS,
                static_cast<unsigned long long>(c.fabricInputs),
                static_cast<unsigned long long>(c.fabricIncrements),
                static_cast<unsigned long long>(c.coalesced),
                static_cast<unsigned long long>(c.epochs),
                static_cast<unsigned long long>(c.steals),
                static_cast<unsigned long long>(c.stalls),
                c.match ? "true" : "false",
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_ingest.json\n");
    }
    return (reduction >= 2.0 && all_match) ? 0 : 1;
}
