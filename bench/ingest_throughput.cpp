/**
 * @file
 * Async ingest throughput: producers x shards x coalescing x drain
 * planner over uniform and Zipf(1.0)-skewed key streams.
 *
 * Each cell pushes the same op stream through an IngestService
 * configured with a one-epoch coalescing window (minDrainOps =
 * stream length), so duplicate (counter, group) deltas merge before
 * touching the fabric and the drain planner sees the whole stream as
 * one bucket per shard. The headline numbers:
 *
 *  - fabric inputs (EngineStats::inputsAccumulated): accumulate
 *    calls that actually reached the fabric. Coalescing on a skewed
 *    stream must cut this >= 2x vs. uncoalesced ingest — the
 *    write-combining win the batch substrate rewards.
 *  - fabric programs (EngineStats::increments): row-level k-ary
 *    increment programs executed. The digit-plane planner must cut
 *    this >= 5x on the coalesced Zipf 4p/4s cell — the
 *    column-parallel win (Fig. 15): one masked program per populated
 *    (digit, k) plane instead of one program chain per counter.
 *  - bit-identity: every cell's final counters are compared against
 *    one blocking C2MEngine replaying the same stream serially.
 *  - fabric cost (EngineStats fabric ns/nj, docs/perf.md): every
 *    cell reports the modeled fabric time and energy of its stream.
 *  - plan-path program caching: an extra Zipf cell drains the same
 *    stream over a 16-epoch window; because digit planes live in
 *    persistent reserved mask rows, plan programs generated in the
 *    first epochs replay from the ProgramCache afterwards — the
 *    cell's hit rate must exceed 90%.
 *
 * Exit status: 0 iff the 4-producer / 4-shard Zipf cell coalesces
 * >= 2x, the planner cuts its fabric programs >= 5x, the multi-epoch
 * cell's cache hit rate is > 0.9, every cell reports nonzero fabric
 * ns and nj, and every cell matches the serial replay.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sharded.hpp"
#include "service/ingest.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kNumCounters = 4096;
constexpr size_t kNumOps = 4096;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

core::EngineConfig
engineConfig(bool planner = true)
{
    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = kNumCounters;
    cfg.maxMaskRows = 1;
    cfg.drainPlanner = planner;
    return cfg;
}

std::vector<core::BatchOp>
makeStream(bool zipf)
{
    std::vector<core::BatchOp> ops;
    ops.reserve(kNumOps);
    Rng val_rng(7);
    if (zipf) {
        ZipfRng keys(kNumCounters, 1.0, 42);
        for (size_t i = 0; i < kNumOps; ++i)
            ops.push_back(
                {keys.next(),
                 static_cast<int64_t>(1 + val_rng.nextBounded(7)),
                 0});
    } else {
        Rng keys(42);
        for (size_t i = 0; i < kNumOps; ++i)
            ops.push_back(
                {keys.nextBounded(kNumCounters),
                 static_cast<int64_t>(1 + val_rng.nextBounded(7)),
                 0});
    }
    return ops;
}

/** Blocking baseline: one engine, one point mask, op after op. */
std::vector<int64_t>
serialReplay(const std::vector<core::BatchOp> &ops, double *time_s)
{
    const auto t0 = Clock::now();
    auto counters = core::replaySerial(engineConfig(), ops);
    *time_s = secondsSince(t0);
    return counters;
}

struct Cell
{
    const char *dist;
    unsigned shards;
    unsigned producers;
    bool coalesce;
    bool planner;
    double timeS = 0.0;
    double opsPerS = 0.0;
    uint64_t fabricInputs = 0;
    uint64_t fabricIncrements = 0;
    uint64_t coalesced = 0;
    uint64_t epochs = 0;
    uint64_t steals = 0;
    uint64_t stalls = 0;
    uint64_t plans = 0;
    uint64_t planPrograms = 0;
    uint64_t plannedOps = 0;
    uint64_t planFallbackOps = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    double fabricNs = 0.0;
    double fabricNj = 0.0;
    double fabricCriticalNs = 0.0;
    size_t minDrainOps = kNumOps;
    bool match = false;
};

Cell
runCell(const char *dist, const std::vector<core::BatchOp> &ops,
        const std::vector<int64_t> &reference, unsigned shards,
        unsigned producers, bool coalesce, bool planner,
        size_t min_drain_ops = kNumOps, size_t chunks = 1)
{
    Cell cell{dist, shards, producers, coalesce, planner};
    cell.minDrainOps = min_drain_ops;
    core::ShardedEngine engine(engineConfig(planner), shards);
    service::IngestConfig icfg;
    icfg.coalesce = coalesce;
    // Default: one-epoch coalescing window — drain only once the
    // whole stream is queued (flush/stop still override), maximizing
    // merges. Smaller windows split the stream into multiple epochs.
    icfg.minDrainOps = min_drain_ops;
    icfg.queueCapacity = 2 * kNumOps;
    service::IngestService svc(engine, icfg);

    const auto t0 = Clock::now();
    if (chunks <= 1) {
        service::submitConcurrent(svc, ops, producers);
    } else {
        // Deterministic multi-epoch drive: flush after each slice so
        // every slice is its own epoch (a bare window would race the
        // producers and drain everything at once).
        const size_t per = (ops.size() + chunks - 1) / chunks;
        for (size_t lo = 0; lo < ops.size(); lo += per) {
            const size_t hi = std::min(ops.size(), lo + per);
            service::submitConcurrent(
                svc,
                std::span<const core::BatchOp>(ops).subspan(
                    lo, hi - lo),
                producers);
            svc.flushAndWait();
        }
    }
    const auto counters = svc.readCounters();
    cell.timeS = secondsSince(t0);
    cell.opsPerS = static_cast<double>(kNumOps) / cell.timeS;
    cell.match = counters == reference;

    const auto sst = svc.serviceStats();
    const auto est = svc.engineStats();
    cell.fabricInputs = est.inputsAccumulated;
    cell.fabricIncrements = est.increments;
    cell.coalesced = sst.coalesced;
    cell.epochs = sst.epochs;
    cell.steals = sst.steals;
    cell.stalls = sst.stalls;
    cell.plans = sst.plans;
    cell.planPrograms = sst.planPrograms;
    cell.plannedOps = sst.plannedOps;
    cell.planFallbackOps = sst.planFallbackOps;
    cell.cacheHits = est.programCacheHits;
    cell.cacheMisses = est.programCacheMisses;
    cell.fabricNs = est.fabric.fabricNs;
    cell.fabricNj = est.fabric.fabricNj;
    cell.fabricCriticalNs = est.fabricCriticalNs;
    return cell;
}

} // namespace

int
main()
{
    std::printf("async ingest throughput: %zu ops over %zu "
                "counters, one-epoch coalescing window\n",
                kNumOps, kNumCounters);

    std::vector<Cell> cells;
    bool all_match = true;
    double zipf_on = 0.0, zipf_off = 0.0;
    double zipf_prog_plan = 0.0, zipf_prog_noplan = 0.0;
    double cache_hit_rate = 0.0;
    for (const bool zipf : {false, true}) {
        const char *dist = zipf ? "zipf1.0" : "uniform";
        const auto ops = makeStream(zipf);
        double replay_s = 0.0;
        const auto reference = serialReplay(ops, &replay_s);
        std::printf("%s: serial blocking replay %.3fs (%.0f ops/s)\n",
                    dist, replay_s,
                    static_cast<double>(kNumOps) / replay_s);
        for (const unsigned shards : {1u, 4u}) {
            for (const unsigned producers : {1u, 4u}) {
                for (const bool coalesce : {false, true}) {
                    for (const bool planner : {false, true}) {
                        const auto cell =
                            runCell(dist, ops, reference, shards,
                                    producers, coalesce, planner);
                        all_match = all_match && cell.match;
                        if (zipf && shards == 4 && producers == 4 &&
                            !planner) {
                            // Coalescing reduction, planner held off.
                            (coalesce ? zipf_on : zipf_off) =
                                static_cast<double>(
                                    cell.fabricInputs);
                        }
                        if (zipf && shards == 4 && producers == 4 &&
                            coalesce) {
                            // Planner reduction on the coalesced
                            // cell: row-level programs executed.
                            (planner ? zipf_prog_plan
                                     : zipf_prog_noplan) =
                                static_cast<double>(
                                    cell.fabricIncrements);
                        }
                        cells.push_back(cell);
                    }
                }
            }
        }
        if (zipf) {
            // Multi-epoch planner-cache cell: drain the same stream
            // over a ~16-epoch window. Digit planes live in
            // persistent reserved mask rows, so the plan programs
            // generated in the first epochs replay from the
            // ProgramCache in every later one.
            auto cell = runCell("zipf-16ep", ops, reference, 4, 4,
                                true, true, kNumOps / 16, 16);
            all_match = all_match && cell.match;
            const uint64_t lookups =
                cell.cacheHits + cell.cacheMisses;
            cache_hit_rate =
                lookups ? static_cast<double>(cell.cacheHits) /
                              static_cast<double>(lookups)
                        : 0.0;
            cells.push_back(cell);
        }
    }

    TextTable t({"dist", "shards", "prod", "coalesce", "plan",
                 "time_s", "ops/s", "fabric_in", "programs",
                 "plan_progs", "fabric_us", "match"});
    for (const auto &c : cells)
        t.addRow({c.dist, std::to_string(c.shards),
                  std::to_string(c.producers),
                  c.coalesce ? "on" : "off",
                  c.planner ? "on" : "off", TextTable::fmt(c.timeS, 3),
                  TextTable::fmt(c.opsPerS, 0),
                  std::to_string(c.fabricInputs),
                  std::to_string(c.fabricIncrements),
                  std::to_string(c.planPrograms),
                  TextTable::fmt(c.fabricNs / 1e3, 1),
                  c.match ? "yes" : "NO"});
    std::printf("%s", t.render().c_str());

    bool all_fabric = true;
    for (const auto &c : cells)
        all_fabric = all_fabric && c.fabricNs > 0.0 &&
                     c.fabricNj > 0.0 && c.fabricCriticalNs > 0.0;

    const double reduction = zipf_on > 0.0 ? zipf_off / zipf_on : 0.0;
    const double plan_reduction =
        zipf_prog_plan > 0.0 ? zipf_prog_noplan / zipf_prog_plan
                             : 0.0;
    std::printf("zipf 4x4 fabric-op reduction from coalescing: "
                "%.2fx (need >= 2x)\n",
                reduction);
    std::printf("zipf 4x4 fabric-program reduction from the drain "
                "planner: %.2fx (need >= 5x)\n",
                plan_reduction);
    std::printf("multi-epoch plan-path cache hit rate: %.1f%% "
                "(need > 90%%)\n",
                100.0 * cache_hit_rate);
    std::printf("every cell reports nonzero fabric ns/nj: %s\n",
                all_fabric ? "yes" : "NO");
    std::printf("all cells bit-identical to serial replay: %s\n",
                all_match ? "yes" : "NO");

    if (std::FILE *f = std::fopen("BENCH_ingest.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"ingest_throughput\",\n"
                     "  \"num_ops\": %zu,\n"
                     "  \"num_counters\": %zu,\n"
                     "  \"zipf_4x4_fabric_reduction\": %.3f,\n"
                     "  \"plan_reduction\": %.3f,\n"
                     "  \"plan_cache_hit_rate\": %.4f,\n"
                     "  \"all_match_serial_replay\": %s,\n"
                     "  \"cells\": [\n",
                     kNumOps, kNumCounters, reduction, plan_reduction,
                     cache_hit_rate, all_match ? "true" : "false");
        for (size_t i = 0; i < cells.size(); ++i) {
            const auto &c = cells[i];
            std::fprintf(
                f,
                "    {\"dist\": \"%s\", \"shards\": %u, "
                "\"producers\": %u, \"coalesce\": %s, "
                "\"planner\": %s, "
                "\"time_s\": %.6f, \"ops_per_s\": %.1f, "
                "\"fabric_inputs\": %llu, "
                "\"fabric_increments\": %llu, "
                "\"coalesced\": %llu, \"epochs\": %llu, "
                "\"steals\": %llu, \"stalls\": %llu, "
                "\"plans\": %llu, \"plan_programs\": %llu, "
                "\"planned_ops\": %llu, "
                "\"plan_fallback_ops\": %llu, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"min_drain_ops\": %zu, "
                "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f, "
                "\"fabric_critical_ns\": %.1f, "
                "\"match_reference\": %s}%s\n",
                c.dist, c.shards, c.producers,
                c.coalesce ? "true" : "false",
                c.planner ? "true" : "false", c.timeS, c.opsPerS,
                static_cast<unsigned long long>(c.fabricInputs),
                static_cast<unsigned long long>(c.fabricIncrements),
                static_cast<unsigned long long>(c.coalesced),
                static_cast<unsigned long long>(c.epochs),
                static_cast<unsigned long long>(c.steals),
                static_cast<unsigned long long>(c.stalls),
                static_cast<unsigned long long>(c.plans),
                static_cast<unsigned long long>(c.planPrograms),
                static_cast<unsigned long long>(c.plannedOps),
                static_cast<unsigned long long>(c.planFallbackOps),
                static_cast<unsigned long long>(c.cacheHits),
                static_cast<unsigned long long>(c.cacheMisses),
                c.minDrainOps, c.fabricNs, c.fabricNj,
                c.fabricCriticalNs, c.match ? "true" : "false",
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_ingest.json\n");
    }
    return (reduction >= 2.0 && plan_reduction >= 5.0 &&
            cache_hit_rate > 0.9 && all_fabric && all_match)
               ? 0
               : 1;
}
