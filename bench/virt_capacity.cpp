/**
 * @file
 * Virtualized counter capacity: millions of Zipf(1.1) keys over a
 * few-thousand-counter fabric through virt::VirtualCounterSpace.
 *
 * Each cell drives one key stream — an admission sweep touching
 * every distinct key once, then a Zipf(1.1)-skewed delta stream —
 * into a 4-shard fleet fronted by a VirtualCounterSpace. The sketch
 * tier admits every key immediately; heavy hitters cross
 * promoteThreshold and are promoted into exact in-fabric counter
 * groups; frame pressure forces cold groups to spill into
 * ECC-encoded RowMirror images and restore on demand. The headline
 * numbers:
 *
 *  - capacity: the 1e6-key cell serves 1e6 distinct keys over 1024
 *    physical counters (16 frames of 64), promoting the top ~2k keys
 *    while the rest ride the count-min front sketch.
 *  - exactness: every promoted key's final value must equal a serial
 *    replay of its deltas (sketch seed at promotion + every later
 *    delta). The no-spill cell additionally replays its recorded
 *    physical op stream through a blocking engine and demands
 *    bit-identical fabric state.
 *  - accuracy: for sampled never-promoted tail keys, the sketch
 *    estimate must sit within the analytic count-min point bound
 *    ((e/w)*N, plus 3-sigma Morris noise for Morris cells) for
 *    >= 99% of the sample.
 *  - cost: modeled fabric ns/nj (docs/perf.md) plus the spill/restore
 *    maintenance fabric time must be nonzero wherever spills happen.
 *
 * Exit status: 0 iff every cell is shadow-exact, the no-spill cell
 * is bit-identical to physical-op replay, the 1e6-key cell spills,
 * restores and promotes (> 1000 promotions), every checked cell has
 * >= 99% of tail samples within the bound, and every cell reports
 * nonzero fabric ns/nj. A fifth 1e7-key cell runs behind --big.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "virt/virtspace.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Inner members of a "fabric_attr" JSON object for one cell. */
std::string
attrJson(const double (&attr)[cim::kFabricCatCount])
{
    std::string out;
    char buf[64];
    for (unsigned c = 0; c < cim::kFabricCatCount; ++c) {
        std::snprintf(
            buf, sizeof(buf), "\"%s\": %.1f%s",
            cim::fabricCatName(static_cast<cim::FabricCat>(c)),
            attr[c], c + 1 < cim::kFabricCatCount ? ", " : "");
        out += buf;
    }
    return out;
}

uint64_t
hashKey(uint64_t v)
{
    return splitMix64(v); // pure: v is a by-value copy of the state
}

struct CellSpec
{
    const char *name;
    size_t distinctKeys;
    size_t zipfOps;       ///< skewed deltas after the admission sweep
    size_t physCounters;  ///< fabric size (all shards)
    unsigned shards;
    unsigned capacityBits;
    /**
     * Count-min width. Must keep the collision noise floor (e/w)*N
     * below promoteThreshold, or the inflated estimates promote the
     * whole key space instead of the heavy hitters.
     */
    size_t sketchWidth;
    uint64_t promoteThreshold;
    bool morrisCells;
    bool checkReplay;     ///< physical-op replay (needs no spills)
};

struct Cell
{
    CellSpec spec;
    double timeS = 0.0;
    double opsPerS = 0.0;
    size_t numOps = 0;
    uint64_t keysExact = 0;
    uint64_t residentGroups = 0;
    uint64_t spilledGroups = 0;
    uint64_t sketchKeys = 0;
    uint64_t promotions = 0;
    uint64_t spills = 0;
    uint64_t restores = 0;
    uint64_t materializations = 0;
    uint64_t sketchUpdates = 0;
    double maintNs = 0.0;
    double fabricNs = 0.0;
    double fabricNj = 0.0;
    double attrNs[cim::kFabricCatCount] = {};
    bool ledgerExact = false;
    double errBound = 0.0;
    size_t tailSampled = 0;
    double tailWithinFrac = 0.0;
    uint64_t traceEvents = 0;
    uint64_t rssKb = 0;
    bool shadowMatch = false;
    bool replayMatch = true; ///< only meaningful when checkReplay
};

/**
 * Serial-replay reference for the exact tier: a promoted key's value
 * is its sketch seed at promotion plus every later delta, replayed
 * in stream order.
 */
struct Shadow
{
    std::map<uint64_t, int64_t> expect;

    void apply(uint64_t key, int64_t value,
               const virt::AddResult &r)
    {
        switch (r.route) {
        case virt::Route::Promoted:
            expect[key] = static_cast<int64_t>(r.seed);
            break;
        case virt::Route::Exact:
        case virt::Route::Journaled:
            expect[key] += value;
            break;
        case virt::Route::Sketch:
            break;
        }
    }
};

Cell
runCell(const CellSpec &spec)
{
    Cell cell{spec};
    obs::TraceRecorder *tr = obs::tracer();
    const uint64_t ev0 = tr ? tr->eventCount() : 0;
    core::EngineConfig cfg;
    cfg.numCounters = spec.physCounters;
    cfg.capacityBits = spec.capacityBits;
    cfg.seed = 0xbe9cULL;
    core::ShardedEngine engine(cfg, spec.shards);

    virt::VirtConfig vcfg;
    vcfg.groupSize = 64;
    vcfg.promoteThreshold = spec.promoteThreshold;
    vcfg.restoreOpThreshold = 16;
    vcfg.sketch.width = spec.sketchWidth;
    vcfg.recordPhysicalOps = spec.checkReplay;
    if (spec.morrisCells)
        vcfg.sketch.cells = virt::SketchCells::Morris;
    virt::VirtualCounterSpace space(engine, vcfg);

    // Truth is tracked for a rank-uniform sample of the key space
    // (every sampleEvery-th Zipf rank), keeping memory flat while
    // covering the never-promoted tail the accuracy gate audits.
    const size_t sampleEvery =
        std::max<size_t>(1, spec.distinctKeys / 4096);
    std::unordered_map<uint64_t, uint64_t> truth;

    ZipfRng zipf(spec.distinctKeys, 1.1, 42);
    Shadow shadow;
    const auto t0 = Clock::now();
    // Admission sweep: every distinct key enters the space once —
    // the sketch tier absorbs all of them immediately.
    for (size_t id = 0; id < spec.distinctKeys; ++id) {
        shadow.apply(hashKey(id), 1, space.add(hashKey(id), 1));
        if (id % sampleEvery == 0)
            ++truth[id];
    }
    // Skewed delta stream: heavy ranks cross promoteThreshold.
    for (size_t i = 0; i < spec.zipfOps; ++i) {
        const uint64_t id = zipf.next();
        shadow.apply(hashKey(id), 1, space.add(hashKey(id), 1));
        if (id % sampleEvery == 0)
            ++truth[id];
    }
    space.flush();
    cell.timeS = secondsSince(t0);
    cell.numOps = spec.distinctKeys + spec.zipfOps;
    cell.opsPerS = static_cast<double>(cell.numOps) / cell.timeS;

    const auto st = space.stats();
    cell.keysExact = st.keysExact;
    cell.residentGroups = st.residentGroups;
    cell.spilledGroups = st.spilledGroups;
    cell.sketchKeys = st.sketchKeys;
    cell.promotions = st.promotions;
    cell.spills = st.spills;
    cell.restores = st.restores;
    cell.materializations = st.materializations;
    cell.sketchUpdates = st.sketchUpdates;
    cell.maintNs = st.maintenanceFabricNs;
    cell.errBound = st.estErrorBound;
    const auto est = engine.stats();
    cell.fabricNs = est.fabric.fabricNs;
    cell.fabricNj = est.fabric.fabricNj;
    for (unsigned a = 0; a < cim::kFabricCatCount; ++a)
        cell.attrNs[a] = est.fabric.attrNs[a];
    cell.ledgerExact = obs::FabricLedger::fromStats(est).exact();
    cell.traceEvents = tr ? tr->eventCount() - ev0 : 0;
    cell.rssKb = obs::hostRssKb();

    // Exactness: every promoted key bit-identical to the serial
    // replay of its deltas.
    const auto entries = space.exactEntries();
    cell.shadowMatch = entries.size() == shadow.expect.size();
    for (const auto &e : entries) {
        const auto it = shadow.expect.find(e.key);
        cell.shadowMatch = cell.shadowMatch &&
                           it != shadow.expect.end() &&
                           it->second == e.value;
    }

    // Accuracy: sampled tail keys within the analytic point bound.
    size_t within = 0, sampled = 0;
    for (const auto &[id, count] : truth) {
        const uint64_t key = hashKey(id);
        if (space.isExact(key))
            continue;
        ++sampled;
        const double err =
            std::abs(double(space.approxEstimate(key)) -
                     double(count));
        if (err <= space.errorBound(key))
            ++within;
    }
    cell.tailSampled = sampled;
    cell.tailWithinFrac =
        sampled ? double(within) / double(sampled) : 1.0;

    if (spec.checkReplay) {
        // With no spills the recorded physical op stream fully
        // determines the fabric: blocking serial replay must land on
        // bit-identical counter state.
        const auto replayed =
            core::replaySerial(cfg, space.physicalLog());
        cell.replayMatch = st.spills == 0 &&
                           engine.readAllCounters(0) == replayed;
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bool big = false;
    const char *trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--big"))
            big = true;
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else {
            std::printf("usage: %s [--big] [--trace FILE]\n",
                        argv[0]);
            return 2;
        }
    }
    obs::TraceRecorder recorder;
    if (trace_path)
        recorder.install();

    std::printf("virtualized counter capacity: Zipf(1.1) key spaces "
                "over a 4-shard fleet\n");

    std::vector<CellSpec> specs = {
        // No-spill cell: 64 frames, ~500 promoted keys -> every
        // group stays resident and the physical op log replays.
        {"zipf1.1-1e5", 100000, 100000, 4096, 4, 16, 1 << 14, 32,
         false, true},
        // Headline: 1e6 distinct keys over 1024 physical counters
        // (16 frames of 64); ~2k promotions force frame pressure.
        {"zipf1.1-1e6", 1000000, 1000000, 1024, 4, 20, 1 << 18, 32,
         false, false},
        // Morris-cell sketch tier: same fabric, wider error bound.
        {"zipf1.1-1e5-morris", 100000, 100000, 1024, 4, 16, 1 << 14,
         32, true, false},
    };
    if (big)
        specs.push_back({"zipf1.1-1e7", 10000000, 2000000, 16384, 4,
                         20, 1 << 20, 64, false, false});

    std::vector<Cell> cells;
    for (const auto &s : specs) {
        std::printf("%s: %zu keys over %zu counters...\n", s.name,
                    s.distinctKeys, s.physCounters);
        cells.push_back(runCell(s));
    }

    TextTable t({"cell", "keys", "counters", "ops/s", "exact",
                 "promos", "spills", "restores", "tail_ok",
                 "fabric_us", "shadow"});
    for (const auto &c : cells)
        t.addRow({c.spec.name, std::to_string(c.spec.distinctKeys),
                  std::to_string(c.spec.physCounters),
                  TextTable::fmt(c.opsPerS, 0),
                  std::to_string(c.keysExact),
                  std::to_string(c.promotions),
                  std::to_string(c.spills),
                  std::to_string(c.restores),
                  TextTable::fmt(100.0 * c.tailWithinFrac, 1),
                  TextTable::fmt((c.fabricNs + c.maintNs) / 1e3, 1),
                  c.shadowMatch ? "yes" : "NO"});
    std::printf("%s", t.render().c_str());

    bool all_shadow = true, all_fabric = true, all_tail = true;
    bool replay_ok = true;
    for (const auto &c : cells) {
        all_shadow = all_shadow && c.shadowMatch;
        all_fabric =
            all_fabric && c.fabricNs > 0.0 && c.fabricNj > 0.0;
        all_tail = all_tail && c.tailWithinFrac >= 0.99;
        replay_ok = replay_ok && c.replayMatch;
    }
    bool all_ledger = true;
    for (const auto &c : cells)
        all_ledger = all_ledger && c.ledgerExact;
    const Cell &headline = cells[1];
    const bool pressure = headline.spills > 0 &&
                          headline.restores > 0 &&
                          headline.promotions > 1000 &&
                          headline.maintNs > 0.0;

    std::printf("all cells shadow-exact for promoted keys: %s\n",
                all_shadow ? "yes" : "NO");
    std::printf("no-spill cell bit-identical to physical replay: "
                "%s\n",
                replay_ok ? "yes" : "NO");
    std::printf("1e6-key cell spills/restores/promotes under frame "
                "pressure: %s (%llu/%llu/%llu)\n",
                pressure ? "yes" : "NO",
                static_cast<unsigned long long>(headline.spills),
                static_cast<unsigned long long>(headline.restores),
                static_cast<unsigned long long>(
                    headline.promotions));
    std::printf(">= 99%% of sampled tail keys within the count-min "
                "bound: %s\n",
                all_tail ? "yes" : "NO");
    std::printf("every cell reports nonzero fabric ns/nj: %s\n",
                all_fabric ? "yes" : "NO");
    std::printf("fabric ledger bit-exact in every cell: %s\n",
                all_ledger ? "yes" : "NO");

    if (std::FILE *f = std::fopen("BENCH_virt.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"virt_capacity\",\n"
                     "  \"all_shadow_exact\": %s,\n"
                     "  \"replay_match\": %s,\n"
                     "  \"headline_pressure\": %s,\n"
                     "  \"all_tail_within_bound\": %s,\n"
                     "  \"cells\": [\n",
                     all_shadow ? "true" : "false",
                     replay_ok ? "true" : "false",
                     pressure ? "true" : "false",
                     all_tail ? "true" : "false");
        for (size_t i = 0; i < cells.size(); ++i) {
            const auto &c = cells[i];
            std::fprintf(
                f,
                "    {\"cell\": \"%s\", \"distinct_keys\": %zu, "
                "\"num_ops\": %zu, \"phys_counters\": %zu, "
                "\"shards\": %u, \"morris\": %s, "
                "\"time_s\": %.6f, \"ops_per_s\": %.1f, "
                "\"keys_exact\": %llu, \"resident_groups\": %llu, "
                "\"spilled_groups\": %llu, \"sketch_keys\": %llu, "
                "\"promotions\": %llu, \"spills\": %llu, "
                "\"restores\": %llu, \"materializations\": %llu, "
                "\"sketch_updates\": %llu, "
                "\"maintenance_fabric_ns\": %.1f, "
                "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f, "
                "\"ledger_exact\": %s, \"fabric_attr\": {%s}, "
                "\"est_error_bound\": %.3f, "
                "\"tail_sampled\": %zu, "
                "\"tail_within_bound_frac\": %.4f, "
                "\"trace_events\": %llu, \"rss_kb\": %llu, "
                "\"shadow_match\": %s, \"replay_match\": %s}%s\n",
                c.spec.name, c.spec.distinctKeys, c.numOps,
                c.spec.physCounters, c.spec.shards,
                c.spec.morrisCells ? "true" : "false", c.timeS,
                c.opsPerS,
                static_cast<unsigned long long>(c.keysExact),
                static_cast<unsigned long long>(c.residentGroups),
                static_cast<unsigned long long>(c.spilledGroups),
                static_cast<unsigned long long>(c.sketchKeys),
                static_cast<unsigned long long>(c.promotions),
                static_cast<unsigned long long>(c.spills),
                static_cast<unsigned long long>(c.restores),
                static_cast<unsigned long long>(
                    c.materializations),
                static_cast<unsigned long long>(c.sketchUpdates),
                c.maintNs, c.fabricNs, c.fabricNj,
                c.ledgerExact ? "true" : "false",
                attrJson(c.attrNs).c_str(), c.errBound,
                c.tailSampled, c.tailWithinFrac,
                static_cast<unsigned long long>(c.traceEvents),
                static_cast<unsigned long long>(c.rssKb),
                c.shadowMatch ? "true" : "false",
                c.replayMatch ? "true" : "false",
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_virt.json\n");
    }

    if (trace_path) {
        recorder.uninstall();
        if (obs::writeChromeTrace(recorder, trace_path))
            std::printf(
                "wrote %s (%llu events, %llu dropped)\n", trace_path,
                static_cast<unsigned long long>(
                    recorder.eventCount()),
                static_cast<unsigned long long>(
                    recorder.droppedEvents()));
        else
            std::printf("FAILED to write %s\n", trace_path);
    }
    return (all_shadow && replay_ok && pressure && all_tail &&
            all_fabric && all_ledger)
               ? 0
               : 1;
}
