/**
 * @file
 * Google-benchmark microbenchmarks backing the Sec. 5.1 claim that
 * host-side muProgram generation is far faster than the DRAM module
 * can consume commands, plus the functional-simulation primitives.
 */

#include <benchmark/benchmark.h>

#include "cim/ambit.hpp"
#include "core/costmodel.hpp"
#include "dram/scheduler.hpp"
#include "jc/layout.hpp"
#include "uprog/codegen_ambit.hpp"

using namespace c2m;

static void
BM_MuProgramGeneration(benchmark::State &state)
{
    const unsigned radix = static_cast<unsigned>(state.range(0));
    jc::CounterLayout layout(radix, 64, 0);
    uprog::AmbitCodegen gen(layout, {});
    unsigned k = 1;
    size_t ops = 0;
    for (auto _ : state) {
        auto prog = gen.karyIncrement(0, k, layout.endRow());
        ops += prog.totalOps();
        benchmark::DoNotOptimize(prog);
        k = k % (radix - 1) + 1;
    }
    // Commands generated per second vs the DRAM consumption rate of
    // ~275 Mcmd/s (one AAP per 3.64 ns): the generation rate must be
    // orders of magnitude higher.
    state.counters["cmds/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MuProgramGeneration)->Arg(4)->Arg(10)->Arg(20);

static void
BM_FunctionalTra(benchmark::State &state)
{
    const size_t cols = static_cast<size_t>(state.range(0));
    cim::AmbitSubarray sub(4, cols);
    BitVector a(cols), b(cols);
    Rng rng(1);
    a.randomize(rng);
    b.randomize(rng);
    sub.pokeT(0, a);
    sub.pokeT(1, b);
    for (auto _ : state) {
        sub.execute(
            cim::AmbitOp::ap(cim::RowSet::b12()));
        benchmark::DoNotOptimize(sub.peekT(0));
    }
    state.counters["bits/s"] = benchmark::Counter(
        static_cast<double>(cols), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalTra)->Arg(512)->Arg(8192)->Arg(65536);

static void
BM_IarmStreamCost(benchmark::State &state)
{
    core::C2mCostModel model(4, 64);
    Rng rng(2);
    std::vector<uint64_t> values(1024);
    for (auto &v : values)
        v = rng.nextBounded(256);
    for (auto _ : state) {
        auto cost = model.accumulateStream(values);
        benchmark::DoNotOptimize(cost);
    }
    state.counters["inputs/s"] = benchmark::Counter(
        1024.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IarmStreamCost);

static void
BM_SchedulerEventDriven(benchmark::State &state)
{
    const auto t = dram::DramTimings::ddr5_4400();
    for (auto _ : state) {
        dram::AapScheduler s(t, 16);
        s.issueRoundRobin(10000);
        benchmark::DoNotOptimize(s.finishNs());
    }
    state.counters["cmds/s"] = benchmark::Counter(
        10000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchedulerEventDriven);

BENCHMARK_MAIN();
