/**
 * @file
 * Google-benchmark microbenchmarks backing the Sec. 5.1 claim that
 * host-side muProgram generation is far faster than the DRAM module
 * can consume commands, plus the functional-simulation primitives.
 *
 * Fabric hot path section: AAP/TRA throughput of the AmbitSubarray
 * interpreter and a global-new counting probe that verifies the
 * steady-state hot path performs ZERO heap allocations per micro-op
 * (copies, triple activations, MAJ3 fault injection, cached checked
 * programs). The probe is also the process exit gate: if the fabric
 * hot path ever regresses into allocating, this binary fails.
 *
 * Tracing overhead section: probeTracingOverhead() bounds the cost
 * of obs/ instrumentation when tracing is compiled in but no
 * recorder is installed (the default). It is the second exit gate:
 * disabled tracing must cost <= 2% of the drained-batch hot path
 * (docs/observability.md).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "cim/ambit.hpp"
#include "core/backend_ambit.hpp"
#include "core/costmodel.hpp"
#include "core/sharded.hpp"
#include "dram/scheduler.hpp"
#include "jc/layout.hpp"
#include "obs/trace.hpp"
#include "uprog/codegen_ambit.hpp"

using namespace c2m;

// ---- Allocation-counting probe -------------------------------------
//
// Global operator new/delete overrides counting every heap
// allocation in the process. The fabric micro-op hot path must not
// appear here in steady state; benchmarks report allocs/op and
// probeFabricAllocFree() gates the exit code on zero.

namespace {
std::atomic<uint64_t> g_allocs{0};
} // namespace

// Every replacement operator allocates via the malloc family, and
// free() is specified to release both malloc and aligned_alloc
// memory. gcc's -Wmismatched-new-delete pairs inlined new/free
// bodies across functions and warns spuriously on replaced global
// operators; keeping the replacements out-of-line avoids that.
#if defined(__GNUC__)
#define C2M_NOINLINE __attribute__((noinline))
#else
#define C2M_NOINLINE
#endif

C2M_NOINLINE void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

C2M_NOINLINE void *
operator new[](std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

C2M_NOINLINE void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(al);
    const std::size_t sz = ((n ? n : 1) + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, sz))
        return p;
    throw std::bad_alloc();
}

C2M_NOINLINE void *
operator new[](std::size_t n, std::align_val_t al)
{
    return operator new(n, al);
}

C2M_NOINLINE void
operator delete(void *p) noexcept
{
    std::free(p);
}

C2M_NOINLINE void
operator delete[](void *p) noexcept
{
    std::free(p);
}

C2M_NOINLINE void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

C2M_NOINLINE void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

C2M_NOINLINE void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

C2M_NOINLINE void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}


C2M_NOINLINE void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

C2M_NOINLINE void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

/**
 * Steady-state probe over the three fabric micro-op shapes: row copy
 * (AAP single source), triple activation (AP), and TRA under MAJ3
 * fault injection. Returns true iff none of them touch the heap.
 */
bool
probeFabricAllocFree()
{
    bool ok = true;
    const size_t cols = 8192;
    const auto probe_one = [&](const char *name, double p_maj) {
        cim::FaultModel fm = cim::FaultModel::reliable();
        fm.pMaj = p_maj;
        cim::AmbitSubarray sub(8, cols, fm, 11);
        Rng rng(3);
        for (size_t r = 0; r < 8; ++r)
            sub.rawRow(r).randomize(rng);
        cim::AmbitProgram prog;
        prog.aap(cim::RowRef::data(0), cim::RowRef::t(0));
        prog.aap(cim::RowRef::data(1), cim::RowRef::t(1));
        prog.aap(cim::RowRef::data(2), cim::RowRef::t(2));
        prog.ap(cim::RowSet::b12());
        prog.aap(cim::RowSet::b12(), cim::RowRef::data(3));
        // Warm-up covers any lazy first-use setup, then measure.
        for (int i = 0; i < 4; ++i)
            sub.run(prog);
        const uint64_t ops = 1000;
        const uint64_t before = allocCount();
        for (uint64_t i = 0; i < ops; ++i)
            sub.run(prog);
        const uint64_t delta = allocCount() - before;
        std::printf("fabric alloc probe [%s]: %llu allocations / "
                    "%llu micro-ops (%s)\n",
                    name, static_cast<unsigned long long>(delta),
                    static_cast<unsigned long long>(ops * prog.size()),
                    delta == 0 ? "ok" : "FAIL");
        ok = ok && delta == 0;
    };
    probe_one("fault-free", 0.0);
    probe_one("maj3-faults", 1e-3);
    return ok;
}

/**
 * Bound the cost of compiled-in-but-disabled tracing on the drained
 * batch path. With no recorder installed every instrumentation site
 * is one relaxed atomic load plus a never-taken branch, so the
 * disabled overhead is (sites hit per batch) x (cost per check).
 * Both factors are measured, not assumed: the site count comes from
 * installing a recorder once and counting emitted events (an
 * overestimate — a span is a single tracer() check but two events),
 * and the per-check cost from timing the check itself amplified over
 * millions of iterations. The gate holds the product under 2% of the
 * best-of-K batch time with tracing disabled.
 */
bool
probeTracingOverhead()
{
    using Clock = std::chrono::steady_clock;
    const auto seconds = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };

    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = 8192;
    cfg.maxMaskRows = 1;
    cfg.drainPlanner = true;
    core::ShardedEngine eng(cfg, 2);
    Rng rng(23);
    std::vector<core::BatchOp> ops;
    ops.reserve(2000);
    for (size_t i = 0; i < 2000; ++i)
        ops.push_back({rng.nextBounded(cfg.numCounters),
                       static_cast<int64_t>(1 + rng.nextBounded(7)),
                       0});
    eng.accumulateBatch(ops); // warm: masks, program cache, pool

    obs::TraceRecorder rec;
    rec.install();
    const uint64_t ev0 = rec.eventCount();
    eng.accumulateBatch(ops);
    const uint64_t events = rec.eventCount() - ev0;
    rec.uninstall();

    double batch_s = 1e300;
    for (int k = 0; k < 5; ++k) {
        const auto t0 = Clock::now();
        eng.accumulateBatch(ops);
        batch_s = std::min(batch_s, seconds(t0));
    }

    const uint64_t checks = uint64_t{1} << 22;
    double check_s = 1e300;
    for (int k = 0; k < 5; ++k) {
        const auto t0 = Clock::now();
        uint64_t live = 0;
        for (uint64_t i = 0; i < checks; ++i) {
            obs::TraceRecorder *tr = obs::tracer();
            if (tr)
                ++live;
        }
        benchmark::DoNotOptimize(live);
        check_s = std::min(check_s, seconds(t0));
    }

    const double per_check_ns =
        check_s * 1e9 / static_cast<double>(checks);
    const double overhead =
        static_cast<double>(events) * per_check_ns /
        (batch_s * 1e9);
    std::printf("tracing-disabled overhead probe: %llu sites/batch x "
                "%.3f ns/check = %.4f%% of %.0f us batch (%s)\n",
                static_cast<unsigned long long>(events),
                per_check_ns, 100.0 * overhead, batch_s * 1e6,
                overhead <= 0.02 ? "ok" : "FAIL");
    return overhead <= 0.02;
}

} // namespace

static void
BM_MuProgramGeneration(benchmark::State &state)
{
    const unsigned radix = static_cast<unsigned>(state.range(0));
    jc::CounterLayout layout(radix, 64, 0);
    uprog::AmbitCodegen gen(layout, {});
    unsigned k = 1;
    size_t ops = 0;
    for (auto _ : state) {
        auto prog = gen.karyIncrement(0, k, layout.endRow());
        ops += prog.totalOps();
        benchmark::DoNotOptimize(prog);
        k = k % (radix - 1) + 1;
    }
    // Commands generated per second vs the DRAM consumption rate of
    // ~275 Mcmd/s (one AAP per 3.64 ns): the generation rate must be
    // orders of magnitude higher.
    state.counters["cmds/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MuProgramGeneration)->Arg(4)->Arg(10)->Arg(20);

static void
BM_FunctionalTra(benchmark::State &state)
{
    const size_t cols = static_cast<size_t>(state.range(0));
    cim::AmbitSubarray sub(4, cols);
    BitVector a(cols), b(cols);
    Rng rng(1);
    a.randomize(rng);
    b.randomize(rng);
    sub.pokeT(0, a);
    sub.pokeT(1, b);
    for (auto _ : state) {
        sub.execute(
            cim::AmbitOp::ap(cim::RowSet::b12()));
        benchmark::DoNotOptimize(sub.peekT(0));
    }
    state.counters["bits/s"] = benchmark::Counter(
        static_cast<double>(cols), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalTra)->Arg(512)->Arg(8192)->Arg(65536);

/**
 * Fabric hot path: AAP (copy) throughput plus observed heap
 * allocations per micro-op — must report allocs/op == 0.
 */
static void
BM_FabricAapCopy(benchmark::State &state)
{
    const size_t cols = static_cast<size_t>(state.range(0));
    cim::AmbitSubarray sub(4, cols);
    Rng rng(5);
    sub.rawRow(0).randomize(rng);
    const cim::AmbitOp op =
        cim::AmbitOp::aap(cim::RowRef::data(0), cim::RowRef::t(2));
    sub.execute(op); // warm
    const uint64_t before = allocCount();
    uint64_t ops = 0;
    for (auto _ : state) {
        sub.execute(op);
        ++ops;
        benchmark::DoNotOptimize(sub.peekT(2));
    }
    state.counters["cmds/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
    state.counters["allocs/op"] =
        ops ? static_cast<double>(allocCount() - before) /
                  static_cast<double>(ops)
            : 0.0;
}
BENCHMARK(BM_FabricAapCopy)->Arg(512)->Arg(8192)->Arg(65536);

/**
 * Fabric hot path: TRA with MAJ3 charge-sharing fault injection
 * active — the costliest micro-op shape; still zero allocs/op.
 */
static void
BM_FabricTraFaulty(benchmark::State &state)
{
    const size_t cols = static_cast<size_t>(state.range(0));
    cim::FaultModel fm = cim::FaultModel::reliable();
    fm.pMaj = 1e-3;
    cim::AmbitSubarray sub(4, cols, fm, 17);
    Rng rng(7);
    for (unsigned t = 0; t < 3; ++t) {
        BitVector v(cols);
        v.randomize(rng);
        sub.pokeT(t, v);
    }
    const cim::AmbitOp op = cim::AmbitOp::ap(cim::RowSet::b12());
    sub.execute(op); // warm
    const uint64_t before = allocCount();
    uint64_t ops = 0;
    for (auto _ : state) {
        sub.execute(op);
        ++ops;
        benchmark::DoNotOptimize(sub.peekT(0));
    }
    state.counters["cmds/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
    state.counters["allocs/op"] =
        ops ? static_cast<double>(allocCount() - before) /
                  static_cast<double>(ops)
            : 0.0;
}
BENCHMARK(BM_FabricTraFaulty)->Arg(512)->Arg(8192)->Arg(65536);

/**
 * Cached checked-program replay through the Ambit backend: the unit
 * of work the drain planner issues per digit plane. After the first
 * (generating) call the replay path is cache hits only.
 */
static void
BM_BackendKaryIncrementReplay(benchmark::State &state)
{
    core::EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = static_cast<size_t>(state.range(0));
    cfg.maxMaskRows = 1;
    core::EngineStats stats;
    core::AmbitBackend backend(cfg, 1, stats);
    BitVector mask(cfg.numCounters);
    mask.fill(true);
    backend.writeMask(0, mask);
    backend.clearCounters();
    backend.karyIncrement(0, 0, 1, backend.maskRow(0)); // warm cache
    uint64_t ops = 0;
    for (auto _ : state) {
        backend.karyIncrement(0, 0, 1, backend.maskRow(0));
        backend.carryRipple(0, 0);
        ops += 2;
    }
    state.counters["progs/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BackendKaryIncrementReplay)->Arg(512)->Arg(8192);

static void
BM_IarmStreamCost(benchmark::State &state)
{
    core::C2mCostModel model(4, 64);
    Rng rng(2);
    std::vector<uint64_t> values(1024);
    for (auto &v : values)
        v = rng.nextBounded(256);
    for (auto _ : state) {
        auto cost = model.accumulateStream(values);
        benchmark::DoNotOptimize(cost);
    }
    state.counters["inputs/s"] = benchmark::Counter(
        1024.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IarmStreamCost);

static void
BM_SchedulerEventDriven(benchmark::State &state)
{
    const auto t = dram::DramTimings::ddr5_4400();
    for (auto _ : state) {
        dram::AapScheduler s(t, 16);
        s.issueRoundRobin(10000);
        benchmark::DoNotOptimize(s.finishNs());
    }
    state.counters["cmds/s"] = benchmark::Counter(
        10000.0, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchedulerEventDriven);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const bool alloc_free = probeFabricAllocFree();
    const bool trace_cheap = probeTracingOverhead();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::printf("fabric hot path allocation-free: %s\n",
                alloc_free ? "yes" : "NO");
    std::printf("tracing-disabled overhead <= 2%%: %s\n",
                trace_cheap ? "yes" : "NO");
    return (alloc_free && trace_cheap) ? 0 : 1;
}
