/**
 * @file
 * Fig. 18: full-application comparison -- execution time,
 * throughput/Watt and throughput/mm^2 for SIMDRAM, C2M, and C2M
 * with the ECC protection scheme (including its detected-fault
 * correction overhead at fault rate 1e-4) on LeNet, VGG-13, VGG-16,
 * BERT attention, DNA filtering, GCN, and the V0/M0 GEMV/GEMM.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/perf.hpp"
#include "workloads/bertproxy.hpp"
#include "workloads/cnn.hpp"
#include "workloads/dna.hpp"
#include "workloads/gcn.hpp"

using namespace c2m;
using namespace c2m::core;

namespace {

struct App
{
    std::string name;
    std::vector<TensorWorkload> stages;
};

PerfResult
sum(const std::vector<PerfResult> &parts)
{
    PerfResult total;
    double ops = 0;
    for (const auto &p : parts) {
        total.timeMs += p.timeMs;
        total.energyMj += p.energyMj;
        total.aaps += p.aaps;
        ops += p.gops * p.timeMs; // gops * ms = M-ops
    }
    total.gops = ops / total.timeMs;
    total.avgPowerW = total.energyMj / total.timeMs;
    total.gopsPerWatt = total.gops / total.avgPowerW;
    return total;
}

} // namespace

int
main()
{
    DramPerfModel model;
    const double area = model.energy().rankAreaMm2();

    std::vector<App> apps;
    auto add_cnn = [&](const char *name, const auto &layers) {
        App app{name, {}};
        for (const auto &l : layers)
            app.stages.push_back(
                workloads::layerWorkload(l, /*sparsity=*/0.3));
        apps.push_back(app);
    };
    add_cnn("LeNET", workloads::lenetLayers());
    add_cnn("VGG13", workloads::vgg13Layers());
    add_cnn("VGG16", workloads::vgg16Layers());

    apps.push_back(
        App{"BERT", workloads::BertProxy::attentionWorkloads()});

    {
        // DNA filtering: 1000 reads of ~95 tokens against 4096-token
        // presence masks over 65536 bins (counters).
        TensorWorkload w;
        w.M = 1000;
        w.N = 65536;
        w.K = 95;
        w.xBits = 4;
        w.ternary = false;
        apps.push_back(App{"DNA filt", {w}});
    }
    apps.push_back(App{"GCN", workloads::gcnWorkloads()});
    {
        TensorWorkload v0;
        v0.M = 1;
        v0.N = 22016;
        v0.K = 8192;
        apps.push_back(App{"GEMV", {v0}});
        TensorWorkload m0 = v0;
        m0.M = 8192;
        apps.push_back(App{"GEMM", {m0}});
    }

    TextTable time({"app", "SIMDRAM ms", "C2M ms", "C2M+prot ms",
                    "prot overhead"});
    TextTable eff({"app", "SIMDRAM gops/W", "C2M gops/W",
                   "C2M+prot gops/W"});
    TextTable dens({"app", "SIMDRAM gops/mm2", "C2M gops/mm2",
                    "C2M+prot gops/mm2"});

    for (const auto &app : apps) {
        std::vector<PerfResult> s_parts, c_parts, p_parts;
        for (const auto &w : app.stages) {
            SimdramDesign sd;
            sd.banks = 16;
            s_parts.push_back(simdramWorkloadPerf(w, sd, model));
            C2mDesign cd;
            cd.banks = 16;
            c_parts.push_back(c2mWorkloadPerf(w, cd, model));
            C2mDesign pd = cd;
            pd.protect = true;
            pd.frChecks = 1;
            pd.faultRate = 1e-4;
            p_parts.push_back(c2mWorkloadPerf(w, pd, model));
        }
        const auto s = sum(s_parts);
        const auto c = sum(c_parts);
        const auto p = sum(p_parts);
        time.addRow({app.name, TextTable::sci(s.timeMs, 2),
                     TextTable::sci(c.timeMs, 2),
                     TextTable::sci(p.timeMs, 2),
                     TextTable::fmt(p.timeMs / c.timeMs, 2) + "x"});
        eff.addRow({app.name, TextTable::fmt(s.gopsPerWatt, 2),
                    TextTable::fmt(c.gopsPerWatt, 2),
                    TextTable::fmt(p.gopsPerWatt, 2)});
        dens.addRow({app.name, TextTable::fmt(s.gops / area, 3),
                     TextTable::fmt(c.gops / area, 3),
                     TextTable::fmt(p.gops / area, 3)});
    }

    std::printf("== Fig. 18: execution time ==\n%s\n",
                time.render().c_str());
    std::printf("== Fig. 18: throughput per Watt ==\n%s\n",
                eff.render().c_str());
    std::printf("== Fig. 18: throughput per mm^2 ==\n%s\n",
                dens.render().c_str());
    std::printf(
        "Shape checks: C2M beats SIMDRAM on every workload; the "
        "protection scheme costs the extra\n"
        "FR ops plus ~20%% correction at fault 1e-4 (Sec. 7.3.2), "
        "well below TMR's ~4x.\n");
    return 0;
}
