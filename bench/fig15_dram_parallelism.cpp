/**
 * @file
 * Fig. 15 (and Tab. 2): impact of DRAM bank-level parallelism --
 * latency and throughput of SIMDRAM:{1,4,16} and C2M:{1,4,16} on
 * the LLaMA ternary GEMV/GEMM shapes.
 */

#include <cstdio>

#include "common/table.hpp"
#include "core/perf.hpp"
#include "dram/geometry.hpp"
#include "dram/timing.hpp"
#include "workloads/llama.hpp"

using namespace c2m;
using namespace c2m::core;

int
main()
{
    std::printf("== Tab. 2: memory organization and architectural "
                "parameters ==\n");
    std::printf("DRAM: %s\n",
                dram::DramGeometry::ddr5_4gb().describe().c_str());
    std::printf("Timing (DDR5_4400): %s\n\n",
                dram::DramTimings::ddr5_4400().describe().c_str());

    DramPerfModel model;
    const std::vector<unsigned> banks = {1, 4, 16};

    std::printf("== Fig. 15a: execution time (ms) ==\n");
    TextTable lat({"ID", "SIMDRAM:1", "SIMDRAM:4", "SIMDRAM:16",
                   "C2M:1", "C2M:4", "C2M:16"});
    std::printf("== computing... ==\n");
    TextTable thr({"ID", "SIMDRAM:1", "SIMDRAM:4", "SIMDRAM:16",
                   "C2M:1", "C2M:4", "C2M:16"});
    TextTable tpw({"ID", "SIMDRAM:16", "C2M:16"});

    for (const auto &s : workloads::llamaAllShapes()) {
        TensorWorkload w;
        w.M = s.M;
        w.N = s.N;
        w.K = s.K;

        std::vector<std::string> lrow = {s.id}, trow = {s.id};
        std::vector<PerfResult> sim16, c16;
        for (unsigned b : banks) {
            SimdramDesign sd;
            sd.banks = b;
            const auto r = simdramWorkloadPerf(w, sd, model);
            lrow.push_back(TextTable::sci(r.timeMs, 2));
            trow.push_back(TextTable::fmt(r.gops, 1));
            if (b == 16)
                sim16.push_back(r);
        }
        for (unsigned b : banks) {
            C2mDesign cd;
            cd.banks = b;
            const auto r = c2mWorkloadPerf(w, cd, model);
            lrow.push_back(TextTable::sci(r.timeMs, 2));
            trow.push_back(TextTable::fmt(r.gops, 1));
            if (b == 16)
                c16.push_back(r);
        }
        lat.addRow(lrow);
        thr.addRow(trow);
        tpw.addRow({s.id,
                    TextTable::fmt(sim16[0].gopsPerWatt, 2),
                    TextTable::fmt(c16[0].gopsPerWatt, 2)});
    }
    std::printf("%s\n", lat.render().c_str());
    std::printf("== Fig. 15b: throughput (GOPS) ==\n%s\n",
                thr.render().c_str());
    std::printf("== Fig. 15: throughput per Watt at 16 banks ==\n%s\n",
                tpw.render().c_str());
    std::printf("Shape checks: 1->4 banks scales ~4x (tRRD-spaced "
                "overlap); 16 banks saturate at the\n"
                "tFAW/tRRD bound (Sec. 7.2.1); C2M outperforms "
                "SIMDRAM on every shape and configuration.\n");
    return 0;
}
