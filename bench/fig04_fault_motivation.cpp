/**
 * @file
 * Fig. 4: fault-rate impact motivating high-radix counting --
 * (a) RMSE of accumulated adds for JC vs RCA with and without
 * TMR/ECC, (b) DNA pre-alignment filtering F1 for the JC- and
 * RCA-based filters.
 */

#include <cstdio>

#include "common/table.hpp"
#include "fault_lab.hpp"

using namespace c2m;
using namespace c2m::bench;

int
main()
{
    const std::vector<double> rates = {1e-6, 1e-5, 1e-4, 1e-3,
                                       1e-2, 1e-1};
    const std::vector<Scheme> schemes = {
        Scheme::Jc,  Scheme::JcTmr,  Scheme::JcEcc,
        Scheme::Rca, Scheme::RcaTmr, Scheme::RcaEcc};

    std::printf("== Fig. 4a: RMSE of accumulated adds vs CIM fault "
                "probability ==\n");
    std::printf("(radix-10 JC vs 24-bit RCA; 128 counters, 100 "
                "inputs of 1..255)\n");
    {
        std::vector<std::string> head = {"fault_p"};
        for (auto s : schemes)
            head.push_back(schemeName(s));
        TextTable t(head);
        for (double p : rates) {
            std::vector<std::string> row = {TextTable::sci(p, 0)};
            for (auto s : schemes) {
                double sum = 0;
                const int trials = 3;
                for (int tr = 0; tr < trials; ++tr)
                    sum += accumulationRmse(s, p, 128, 100,
                                            1000 + 17 * tr);
                row.push_back(TextTable::fmt(sum / trials, 3));
            }
            t.addRow(row);
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf("== Fig. 4b: DNA filtering F1 vs CIM fault "
                "probability ==\n");
    {
        workloads::DnaConfig dcfg;
        dcfg.genomeLen = 16384;
        dcfg.binSize = 512;
        dcfg.numReads = 24;
        workloads::DnaWorkload dna(dcfg);

        TextTable t({"fault_p", "JC filter", "RCA filter"});
        for (double p : rates) {
            t.addRow({TextTable::sci(p, 0),
                      TextTable::fmt(
                          dnaFilterF1(Scheme::Jc, p, dna, 5), 3),
                      TextTable::fmt(
                          dnaFilterF1(Scheme::Rca, p, dna, 5), 3)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("\nShape check: the JC filter sustains usable F1 "
                    "into ~10x higher fault rates than RCA\n"
                    "(fewer CIM ops per accumulation => fewer fault "
                    "opportunities, Sec. 3).\n");
    }
    return 0;
}
