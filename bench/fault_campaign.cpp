/**
 * @file
 * Reliability fault campaign: Monte-Carlo sweep of CIM fault rate x
 * backend (Ambit / NVM / RCA) x protection level (None / ECC / TMR,
 * each with and without online scrubbing where the substrate
 * supports it) under live async ingest.
 *
 * Every cell streams the same op mix through an IngestService with
 * concurrent producers; an attached reliability::Scrubber sweeps
 * counter state at each epoch boundary when enabled. The final
 * snapshot is compared counter-by-counter against the exact host
 * sums (bit-identical to a fault-free core::replaySerial by the
 * sharded-engine invariants), giving:
 *
 *  - silent errors: counters ending with the wrong value;
 *  - corrected/recovered: flips healed by the scrubber's SEC-DED
 *    lanes vs. its mirror fallback;
 *  - throughput overhead: wall time and fabric commands relative to
 *    the same backend's unprotected fault-free cell;
 *  - the HealthMonitor's blind fault-rate estimate next to the
 *    injected truth.
 *
 * Emits BENCH_reliability.json. Exit status is the CI gate: 0 iff
 * every scrub-enabled cell at the paper's protected operating
 * points (fault rate <= 1e-3) ends with zero silent errors.
 *
 * Usage: fault_campaign [--trials=small|full] [--seed=N]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "reliability/scrubber.hpp"
#include "service/ingest.hpp"

using namespace c2m;
using Clock = std::chrono::steady_clock;

namespace {

/** Inner members of a "fabric_attr" JSON object for one cell. */
std::string
attrJson(const double (&attr)[cim::kFabricCatCount])
{
    std::string out;
    char buf[64];
    for (unsigned c = 0; c < cim::kFabricCatCount; ++c) {
        std::snprintf(
            buf, sizeof(buf), "\"%s\": %.1f%s",
            cim::fabricCatName(static_cast<cim::FabricCat>(c)),
            attr[c], c + 1 < cim::kFabricCatCount ? ", " : "");
        out += buf;
    }
    return out;
}

struct CampaignScale
{
    size_t counters;
    size_t ops;
    unsigned shards;
    unsigned producers;
    std::vector<double> rates;
};

struct Cell
{
    const char *backend;
    const char *protection;
    bool scrub;
    double rate;

    size_t silentErrors = 0;
    int64_t maxAbsErr = 0;
    double wallS = 0.0;
    double fabricNs = 0.0;
    double fabricNj = 0.0;
    double attrNs[cim::kFabricCatCount] = {};
    bool ledgerExact = false;
    double sweepFabricNs = 0.0;
    uint64_t fabricCommands = 0;
    uint64_t retries = 0;
    uint64_t uncorrectedBlocks = 0;
    uint64_t sweeps = 0;
    uint64_t faultyBits = 0;
    uint64_t bitsCorrected = 0;
    uint64_t wordsRecovered = 0;
    uint64_t faultsInjected = 0;
    double estRate = 0.0;
    uint64_t traceEvents = 0;
    uint64_t rssKb = 0;
    double overhead = 1.0; ///< wall time vs backend's clean baseline
};

struct Scheme
{
    const char *name;
    core::Protection protection;
    bool scrub;
};

core::EngineConfig
cellConfig(core::BackendKind backend, const Scheme &scheme,
           double rate, size_t counters, uint64_t seed)
{
    core::EngineConfig cfg;
    cfg.numCounters = counters;
    cfg.capacityBits = 24;
    cfg.faultRate = rate;
    cfg.seed = seed;
    cfg.backend = backend;
    cfg.protection = scheme.protection;
    if (scheme.protection == core::Protection::Ecc) {
        cfg.frChecks = 2;
        cfg.maxRetries = 6;
    }
    return cfg;
}

std::vector<core::BatchOp>
makeStream(const CampaignScale &scale, uint64_t seed)
{
    // Half uniform, half Zipf-skewed keys; ~30% negative deltas so
    // the signed path is under test too.
    Rng rng(seed);
    ZipfRng zipf(scale.counters, 1.0, seed ^ 0xabcdefULL);
    std::vector<core::BatchOp> ops;
    ops.reserve(scale.ops);
    for (size_t i = 0; i < scale.ops; ++i) {
        const uint64_t c = (i % 2) ? zipf.next()
                                   : rng.nextBounded(scale.counters);
        int64_t v = 1 + static_cast<int64_t>(rng.nextBounded(40));
        if (rng.nextBool(0.3))
            v = -v;
        ops.push_back({c, v, 0});
    }
    return ops;
}

Cell
runCell(core::BackendKind backend, const Scheme &scheme, double rate,
        const CampaignScale &scale,
        const std::vector<core::BatchOp> &ops,
        const std::vector<int64_t> &expected, uint64_t seed)
{
    Cell cell{core::backendName(backend), scheme.name, scheme.scrub,
              rate};
    obs::TraceRecorder *tr = obs::tracer();
    const uint64_t ev0 = tr ? tr->eventCount() : 0;

    const auto cfg =
        cellConfig(backend, scheme, rate, scale.counters, seed);
    core::ShardedEngine eng(cfg, scale.shards);
    // Observer before service: it must outlive the service's stop().
    std::unique_ptr<reliability::Scrubber> scrub;
    if (scheme.scrub)
        scrub = std::make_unique<reliability::Scrubber>(
            eng, reliability::ScrubConfig{});
    service::IngestService svc(eng, {});
    if (scrub)
        svc.attachObserver(scrub.get());

    const auto t0 = Clock::now();
    service::submitConcurrent(svc, ops, scale.producers);
    const auto snap = svc.snapshot();
    svc.stop();
    cell.wallS =
        std::chrono::duration<double>(Clock::now() - t0).count();

    for (size_t i = 0; i < expected.size(); ++i) {
        const int64_t err = snap.counters[i] - expected[i];
        if (err != 0) {
            ++cell.silentErrors;
            cell.maxAbsErr =
                std::max<int64_t>(cell.maxAbsErr, std::abs(err));
        }
    }
    const auto es = eng.stats();
    cell.fabricCommands = es.fabric.commands();
    cell.fabricNs = es.fabric.fabricNs;
    cell.fabricNj = es.fabric.fabricNj;
    for (unsigned a = 0; a < cim::kFabricCatCount; ++a)
        cell.attrNs[a] = es.fabric.attrNs[a];
    cell.ledgerExact = obs::FabricLedger::fromStats(es).exact();
    cell.faultsInjected = es.fabric.faultsInjected;
    cell.retries = es.retries;
    cell.uncorrectedBlocks = es.uncorrectedBlocks;
    if (scrub) {
        const auto ss = scrub->stats();
        cell.sweeps = ss.sweeps;
        cell.faultyBits = ss.faultyBits;
        cell.bitsCorrected = ss.bitsCorrected;
        cell.wordsRecovered = ss.wordsRecovered;
        cell.sweepFabricNs = ss.sweepFabricNs;
        cell.estRate = scrub->health().estimatedFaultRate();
    }
    cell.traceEvents = tr ? tr->eventCount() - ev0 : 0;
    cell.rssKb = obs::hostRssKb();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bool small = false;
    uint64_t seed = 12345;
    const char *trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trials=small"))
            small = true;
        else if (!std::strcmp(argv[i], "--trials=full"))
            small = false;
        else if (!std::strncmp(argv[i], "--seed=", 7))
            seed = std::strtoull(argv[i] + 7, nullptr, 10);
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else {
            std::printf("usage: %s [--trials=small|full] [--seed=N] "
                        "[--trace FILE]\n",
                        argv[0]);
            return 2;
        }
    }
    obs::TraceRecorder recorder;
    if (trace_path)
        recorder.install();

    const CampaignScale scale =
        small ? CampaignScale{96, 2000, 4, 2, {1e-4, 1e-3, 1e-2}}
              : CampaignScale{256, 8000, 4, 4,
                              {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}};

    const auto ops = makeStream(scale, seed);
    std::vector<int64_t> expected(scale.counters, 0);
    for (const auto &op : ops)
        expected[op.counter] += op.value;

    // Protection levels per backend: scrubbing needs rowScrub
    // (Ambit, NVM); RCA runs its duplicate-compute ECC only.
    const std::vector<Scheme> ambitSchemes = {
        {"none", core::Protection::None, false},
        {"none+scrub", core::Protection::None, true},
        {"ecc", core::Protection::Ecc, false},
        {"ecc+scrub", core::Protection::Ecc, true},
        {"tmr", core::Protection::Tmr, false},
    };
    const std::vector<Scheme> nvmSchemes = {
        {"none", core::Protection::None, false},
        {"none+scrub", core::Protection::None, true},
    };
    const std::vector<Scheme> rcaSchemes = {
        {"none", core::Protection::None, false},
        {"ecc", core::Protection::Ecc, false},
    };
    const std::vector<
        std::pair<core::BackendKind, const std::vector<Scheme> *>>
        backends = {
            {core::BackendKind::Ambit, &ambitSchemes},
            {core::BackendKind::NvmPinatubo, &nvmSchemes},
            {core::BackendKind::Rca, &rcaSchemes},
        };

    std::vector<Cell> cells;
    for (const auto &[backend, schemes] : backends) {
        // Clean unprotected baseline for the overhead column.
        const Scheme base{"none", core::Protection::None, false};
        const double base_wall =
            runCell(backend, base, 0.0, scale, ops, expected, seed)
                .wallS;
        for (double rate : scale.rates)
            for (const auto &scheme : *schemes) {
                cells.push_back(runCell(backend, scheme, rate, scale,
                                        ops, expected, seed));
                if (base_wall > 0.0)
                    cells.back().overhead =
                        cells.back().wallS / base_wall;
            }
    }

    TextTable t({"backend", "protection", "rate", "silent", "maxerr",
                 "sweeps", "sec-fix", "mirror-fix", "est-rate",
                 "overhead"});
    for (const auto &c : cells)
        t.addRow({c.backend, c.protection, TextTable::fmt(c.rate, 6),
                  std::to_string(c.silentErrors),
                  std::to_string(c.maxAbsErr),
                  std::to_string(c.sweeps),
                  std::to_string(c.bitsCorrected),
                  std::to_string(c.wordsRecovered),
                  TextTable::fmt(c.estRate, 6),
                  TextTable::fmt(c.overhead, 2)});
    std::printf("%s", t.render().c_str());

    // CI gate: at the paper's protected operating points (rate <=
    // 1e-3) a scrub-enabled run must end with zero silent errors.
    size_t gate_checked = 0, gate_violations = 0;
    for (const auto &c : cells) {
        if (!c.scrub || c.rate > 1e-3)
            continue;
        ++gate_checked;
        if (c.silentErrors != 0) {
            ++gate_violations;
            std::printf("GATE VIOLATION: %s/%s at %.0e: %zu silent "
                        "errors\n",
                        c.backend, c.protection, c.rate,
                        c.silentErrors);
        }
    }
    std::printf("gate: %zu scrub cells at protected operating "
                "points, %zu violations\n",
                gate_checked, gate_violations);

    bool all_fabric = true;
    for (const auto &c : cells)
        all_fabric =
            all_fabric && c.fabricNs > 0.0 && c.fabricNj > 0.0;
    std::printf("every cell reports nonzero fabric ns/nj: %s\n",
                all_fabric ? "yes" : "NO");
    bool all_ledger = true;
    for (const auto &c : cells)
        all_ledger = all_ledger && c.ledgerExact;
    std::printf("fabric ledger bit-exact in every cell: %s\n",
                all_ledger ? "yes" : "NO");

    if (std::FILE *f = std::fopen("BENCH_reliability.json", "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"fault_campaign\",\n"
                     "  \"trials\": \"%s\",\n  \"seed\": %llu,\n"
                     "  \"counters\": %zu,\n  \"ops\": %zu,\n"
                     "  \"shards\": %u,\n  \"producers\": %u,\n"
                     "  \"gate_checked\": %zu,\n"
                     "  \"gate_violations\": %zu,\n"
                     "  \"cells\": [\n",
                     small ? "small" : "full",
                     static_cast<unsigned long long>(seed),
                     scale.counters, scale.ops, scale.shards,
                     scale.producers, gate_checked, gate_violations);
        for (size_t i = 0; i < cells.size(); ++i) {
            const auto &c = cells[i];
            std::fprintf(
                f,
                "    {\"backend\": \"%s\", \"protection\": \"%s\", "
                "\"scrub\": %s, \"fault_rate\": %.1e, "
                "\"silent_errors\": %zu, \"max_abs_err\": %lld, "
                "\"wall_s\": %.4f, \"overhead\": %.3f, "
                "\"fabric_ns\": %.1f, \"fabric_nj\": %.1f, "
                "\"ledger_exact\": %s, \"fabric_attr\": {%s}, "
                "\"sweep_fabric_ns\": %.1f, "
                "\"fabric_commands\": %llu, \"retries\": %llu, "
                "\"uncorrected_blocks\": %llu, "
                "\"faults_injected\": %llu, \"sweeps\": %llu, "
                "\"faulty_bits\": %llu, \"bits_corrected\": %llu, "
                "\"words_recovered\": %llu, "
                "\"trace_events\": %llu, \"rss_kb\": %llu, "
                "\"est_fault_rate\": %.3e}%s\n",
                c.backend, c.protection, c.scrub ? "true" : "false",
                c.rate, c.silentErrors,
                static_cast<long long>(c.maxAbsErr), c.wallS,
                c.overhead, c.fabricNs, c.fabricNj,
                c.ledgerExact ? "true" : "false",
                attrJson(c.attrNs).c_str(), c.sweepFabricNs,
                static_cast<unsigned long long>(c.fabricCommands),
                static_cast<unsigned long long>(c.retries),
                static_cast<unsigned long long>(c.uncorrectedBlocks),
                static_cast<unsigned long long>(c.faultsInjected),
                static_cast<unsigned long long>(c.sweeps),
                static_cast<unsigned long long>(c.faultyBits),
                static_cast<unsigned long long>(c.bitsCorrected),
                static_cast<unsigned long long>(c.wordsRecovered),
                static_cast<unsigned long long>(c.traceEvents),
                static_cast<unsigned long long>(c.rssKb),
                c.estRate, i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_reliability.json\n");
    }

    if (trace_path) {
        recorder.uninstall();
        if (obs::writeChromeTrace(recorder, trace_path))
            std::printf(
                "wrote %s (%llu events, %llu dropped)\n", trace_path,
                static_cast<unsigned long long>(
                    recorder.eventCount()),
                static_cast<unsigned long long>(
                    recorder.droppedEvents()));
        else
            std::printf("FAILED to write %s\n", trace_path);
    }
    return (gate_violations == 0 && all_fabric && all_ledger)
               ? 0
               : 1;
}
