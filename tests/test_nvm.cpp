/**
 * @file
 * NVM backend tests (Sec. 4.6): Pinatubo and MAGIC machines execute
 * the counting muPrograms with results identical to the golden model,
 * and the op counts match the paper's 3n+O(1) / 6n+O(1) figures.
 */

#include <gtest/gtest.h>

#include "cim/nvm.hpp"
#include "jc/johnson.hpp"
#include "jc/layout.hpp"
#include "uprog/codegen_nvm.hpp"

using namespace c2m;

namespace {

struct NvmHarness
{
    jc::CounterLayout layout;
    unsigned maskRow;
    cim::NvmMachine mach;
    uprog::NvmCodegen gen;

    NvmHarness(unsigned radix, cim::NvmTech tech, size_t cols)
        : layout(radix, 16, 0),
          maskRow(layout.endRow()),
          mach(layout.endRow() + 2, cols, tech),
          gen(layout, tech)
    {
    }

    unsigned n() const { return layout.bitsPerDigit(); }

    void
    setDigit(unsigned digit, size_t col, unsigned value)
    {
        const uint64_t bits = jc::encode(n(), value);
        for (unsigned i = 0; i < n(); ++i) {
            BitVector row = mach.row(layout.bitRow(digit, i));
            row.set(col, (bits >> i) & 1);
            mach.writeRow(layout.bitRow(digit, i), row);
        }
    }

    int
    getDigit(unsigned digit, size_t col)
    {
        uint64_t bits = 0;
        for (unsigned i = 0; i < n(); ++i)
            if (mach.row(layout.bitRow(digit, i)).get(col))
                bits |= 1ULL << i;
        return jc::decode(n(), bits);
    }

    void
    setMask(size_t col, bool v)
    {
        BitVector row = mach.row(maskRow);
        row.set(col, v);
        mach.writeRow(maskRow, row);
    }

    bool
    onext(unsigned digit, size_t col)
    {
        return mach.row(layout.onextRow(digit)).get(col);
    }
};

} // namespace

TEST(NvmMachine, PinatuboLogicOps)
{
    cim::NvmMachine m(4, 8, cim::NvmTech::Pinatubo);
    m.writeRow(0, BitVector::fromString("11001010"));
    m.writeRow(1, BitVector::fromString("10100110"));
    cim::NvmProgram p;
    p.and_(2, cim::NvmRef::of(0), cim::NvmRef::of(1));
    p.or_(3, cim::NvmRef::of(0), cim::NvmRef::inv(1));
    m.run(p);
    EXPECT_EQ(m.row(2).toString(), "10000010");
    EXPECT_EQ(m.row(3).toString(), "11011011");
}

TEST(NvmMachine, MagicNorOnly)
{
    cim::NvmMachine m(3, 4, cim::NvmTech::Magic);
    m.writeRow(0, BitVector::fromString("1100"));
    m.writeRow(1, BitVector::fromString("1010"));
    cim::NvmProgram p;
    p.nor(2, cim::NvmRef::of(0), cim::NvmRef::of(1));
    m.run(p);
    EXPECT_EQ(m.row(2).toString(), "0001");
}

class NvmTechRadix
    : public ::testing::TestWithParam<std::tuple<cim::NvmTech,
                                                 unsigned>>
{
};

TEST_P(NvmTechRadix, KaryIncrementMatchesGolden)
{
    const auto tech = std::get<0>(GetParam());
    const unsigned radix = std::get<1>(GetParam());
    const unsigned n = radix / 2;

    for (unsigned k = 1; k < radix; ++k) {
        NvmHarness h(radix, tech, 2 * radix);
        for (unsigned v = 0; v < radix; ++v) {
            h.setDigit(0, 2 * v, v);
            h.setMask(2 * v, true);
            h.setDigit(0, 2 * v + 1, v);
            h.setMask(2 * v + 1, false);
        }
        h.mach.run(h.gen.karyIncrement(0, k, h.maskRow));
        for (unsigned v = 0; v < radix; ++v) {
            EXPECT_EQ(h.getDigit(0, 2 * v),
                      static_cast<int>(jc::add(n, v, k)))
                << "tech=" << int(tech) << " radix=" << radix
                << " k=" << k << " v=" << v;
            EXPECT_EQ(h.onext(0, 2 * v), jc::wraps(n, v, k));
            EXPECT_EQ(h.getDigit(0, 2 * v + 1), static_cast<int>(v));
        }
    }
}

TEST_P(NvmTechRadix, CarryRippleWorks)
{
    const auto tech = std::get<0>(GetParam());
    const unsigned radix = std::get<1>(GetParam());
    NvmHarness h(radix, tech, 2);
    BitVector on = h.mach.row(h.layout.onextRow(0));
    on.set(0, true);
    h.mach.writeRow(h.layout.onextRow(0), on);
    const unsigned start = radix > 2 ? 1 : 0;
    h.setDigit(1, 0, start);
    h.mach.run(h.gen.carryRipple(0));
    EXPECT_EQ(h.getDigit(1, 0), static_cast<int>(start + 1));
    EXPECT_FALSE(h.onext(0, 0));
}

INSTANTIATE_TEST_SUITE_P(
    TechByRadix, NvmTechRadix,
    ::testing::Combine(::testing::Values(cim::NvmTech::Pinatubo,
                                         cim::NvmTech::Magic),
                       ::testing::Values(2u, 4u, 6u, 10u, 16u)));

TEST(NvmCost, PinatuboUnitIncrementIs3nPlusConstant)
{
    // Fig. 10a: counting costs 3n+4 ops, overflow +3.
    for (unsigned radix : {4u, 10u, 16u, 20u}) {
        const unsigned n = radix / 2;
        jc::CounterLayout layout(radix, 16, 0);
        uprog::NvmCodegen gen(layout, cim::NvmTech::Pinatubo);
        const size_t ops =
            gen.karyIncrement(0, 1, layout.endRow()).size();
        EXPECT_GE(ops, 3u * n + 2) << "radix=" << radix;
        EXPECT_LE(ops, 3u * n + 7) << "radix=" << radix;
    }
}

TEST(NvmCost, MagicUnitIncrementIs6nPlusConstant)
{
    // Fig. 10b: MAGIC needs ~6n+4 NOR operations.
    for (unsigned radix : {4u, 10u, 16u, 20u}) {
        const unsigned n = radix / 2;
        jc::CounterLayout layout(radix, 16, 0);
        uprog::NvmCodegen gen(layout, cim::NvmTech::Magic);
        const size_t ops =
            gen.karyIncrement(0, 1, layout.endRow()).size();
        EXPECT_GE(ops, 6u * n - n) << "radix=" << radix;
        EXPECT_LE(ops, 6u * n + 10) << "radix=" << radix;
    }
}

TEST(NvmCost, MagicCostsMoreThanPinatubo)
{
    jc::CounterLayout layout(10, 16, 0);
    uprog::NvmCodegen pin(layout, cim::NvmTech::Pinatubo);
    uprog::NvmCodegen mag(layout, cim::NvmTech::Magic);
    EXPECT_LT(pin.karyIncrement(0, 3, layout.endRow()).size(),
              mag.karyIncrement(0, 3, layout.endRow()).size());
}

TEST(NvmMachine, MagicRejectsAndOps)
{
    cim::NvmMachine m(2, 4, cim::NvmTech::Magic);
    cim::NvmProgram p;
    p.and_(1, cim::NvmRef::of(0), cim::NvmRef::of(0));
    EXPECT_DEATH(m.run(p), "MAGIC");
}

TEST(NvmMachine, FaultInjectionOnLogicOps)
{
    cim::FaultModel fm;
    fm.pMaj = 1.0;
    cim::NvmMachine m(3, 32, cim::NvmTech::Pinatubo, fm, 3);
    m.writeRow(0, BitVector(32));
    cim::NvmProgram p;
    p.or_(2, cim::NvmRef::of(0), cim::NvmRef::of(0)); // 0 -> all flip
    m.run(p);
    EXPECT_EQ(m.row(2).popcount(), 32u);
    EXPECT_EQ(m.stats().faultsInjected, 32u);
}
