/**
 * @file
 * Fabric-cost accounting tests: DramTimings/EnergyModel algebra
 * (incl. the tFAW/tRRD rank window vs per-bank period), FabricCost
 * merge semantics, cross-backend cost invariants (command counts
 * invariant under program caching and under a fallback-forced
 * planner; strictly monotone fabric time; nonzero cost for nonzero
 * op streams), cost-model-vs-simulator agreement on the fabric-time
 * axis, and no-double-count checks across the shard merge and the
 * service attribution.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/costmodel.hpp"
#include "core/fabriccost.hpp"
#include "core/sharded.hpp"
#include "dram/scheduler.hpp"
#include "service/ingest.hpp"

using namespace c2m;
using core::BatchOp;
using core::EngineConfig;
using core::FabricCost;
using core::ShardedEngine;

namespace {

EngineConfig
baseConfig(core::BackendKind backend = core::BackendKind::Ambit)
{
    EngineConfig cfg;
    cfg.radix = 4;
    cfg.capacityBits = 16;
    cfg.numCounters = 64;
    cfg.maxMaskRows = 4;
    cfg.backend = backend;
    return cfg;
}

std::vector<BatchOp>
randomOps(size_t n, size_t counters, uint64_t seed)
{
    Rng rng(seed);
    std::vector<BatchOp> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i)
        ops.push_back({rng.nextBounded(counters),
                       static_cast<int64_t>(1 + rng.nextBounded(30)),
                       0});
    return ops;
}

} // namespace

TEST(DramTimings, CommandAlgebra)
{
    const auto t = dram::DramTimings::ddr5_4400();
    EXPECT_DOUBLE_EQ(t.tAapNs(), t.tRasNs + t.tRpNs);
    EXPECT_DOUBLE_EQ(t.bankPeriodNs(), t.tAapNs() + t.tRrdNs);
    // A row access pays tRCD + burst + tRP; burst scales per 64 B.
    EXPECT_DOUBLE_EQ(t.rowAccessNs(64),
                     t.tRcdNs + t.tBurstNs + t.tRpNs);
    EXPECT_DOUBLE_EQ(t.rowAccessNs(128),
                     t.tRcdNs + 2.0 * t.tBurstNs + t.tRpNs);
}

TEST(DramTimings, IssueIntervalMatchesSchedulerSteadyPeriod)
{
    const auto t = dram::DramTimings::ddr5_4400();
    for (unsigned banks : {1u, 2u, 4u, 8u, 16u, 64u})
        EXPECT_DOUBLE_EQ(t.issueIntervalNs(banks),
                         dram::AapScheduler::steadyPeriodNs(t, banks))
            << "banks=" << banks;
}

TEST(DramTimings, FawWindowFloorsTheIssueInterval)
{
    auto t = dram::DramTimings::ddr5_4400();
    // One bank: the per-bank period dominates.
    EXPECT_DOUBLE_EQ(t.issueIntervalNs(1), t.bankPeriodNs());
    // Many banks: the rank-level window (max of tRRD and tFAW/4)
    // floors the interval — more banks stop helping.
    const double rank_floor = std::max(t.tRrdNs, t.tFawNs / 4.0);
    EXPECT_DOUBLE_EQ(t.issueIntervalNs(1024), rank_floor);
    // A wide tFAW makes the four-activate window the binding floor.
    t.tFawNs = 40.0;
    EXPECT_DOUBLE_EQ(t.issueIntervalNs(1024), t.tFawNs / 4.0);
    EXPECT_DOUBLE_EQ(t.issueIntervalNs(1024),
                     dram::AapScheduler::steadyPeriodNs(t, 1024));
}

TEST(EnergyModel, PerCommandEnergies)
{
    const auto e = dram::EnergyModel::ddr5();
    // AAP: two activates + one precharge on every chip of the rank.
    EXPECT_DOUBLE_EQ(e.aapEnergyNj(),
                     e.chipsPerRank *
                         (2.0 * e.eActPerChipNj + e.ePrePerChipNj));
    EXPECT_DOUBLE_EQ(e.apEnergyNj(),
                     e.chipsPerRank *
                         (e.eActPerChipNj + e.ePrePerChipNj));
    EXPECT_GT(e.rowAccessEnergyNj(128), e.rowAccessEnergyNj(64));
}

TEST(FabricCost, MergeSumsExceptCriticalPath)
{
    FabricCost a{100.0, 100.0, 50.0, 10, 5, 3, 2};
    const FabricCost b{40.0, 40.0, 20.0, 4, 2, 1, 1};
    a += b;
    EXPECT_DOUBLE_EQ(a.ns, 140.0);
    EXPECT_DOUBLE_EQ(a.nj, 70.0);
    EXPECT_EQ(a.aap, 14u);
    EXPECT_EQ(a.ap, 7u);
    EXPECT_EQ(a.tra, 4u);
    EXPECT_EQ(a.rowAccesses, 3u);
    EXPECT_EQ(a.commands(), 21u);
    // Parallel contributors: the slower one bounds the critical path.
    EXPECT_DOUBLE_EQ(a.criticalNs, 100.0);
}

TEST(FabricCost, FromOpStatsCarriesEveryAxis)
{
    cim::OpStats s;
    s.aap = 7;
    s.ap = 3;
    s.tra = 5;
    s.rowReads = 2;
    s.rowWrites = 4;
    s.fabricNs = 123.0;
    s.fabricNj = 456.0;
    const auto c = FabricCost::fromOpStats(s);
    EXPECT_EQ(c.aap, 7u);
    EXPECT_EQ(c.ap, 3u);
    EXPECT_EQ(c.tra, 5u);
    EXPECT_EQ(c.rowAccesses, 6u);
    EXPECT_DOUBLE_EQ(c.ns, 123.0);
    EXPECT_DOUBLE_EQ(c.criticalNs, 123.0);
    EXPECT_DOUBLE_EQ(c.nj, 456.0);
}

class CostBackends
    : public ::testing::TestWithParam<core::BackendKind>
{
};

TEST_P(CostBackends, NonzeroOpStreamHasNonzeroCost)
{
    const auto cfg = baseConfig(GetParam());
    ShardedEngine eng(cfg, 2);
    eng.accumulateBatch(randomOps(40, cfg.numCounters, 5));
    const auto st = eng.stats();
    EXPECT_GT(st.fabric.commands(), 0u);
    EXPECT_GT(st.fabric.fabricNs, 0.0);
    EXPECT_GT(st.fabric.fabricNj, 0.0);
    EXPECT_GT(st.fabricCriticalNs, 0.0);
    // The critical path is a lower bound on the serial total, and
    // with the rank window floor it cannot be cheaper than issuing
    // every command back to back at the steady interval.
    EXPECT_LE(st.fabricCriticalNs, st.fabric.fabricNs);
}

TEST_P(CostBackends, CommandCountsInvariantUnderProgramCache)
{
    auto cfg = baseConfig(GetParam());
    const auto ops = randomOps(60, cfg.numCounters, 9);

    cfg.programCache = true;
    ShardedEngine cached(cfg, 2);
    cached.accumulateBatch(ops);
    cfg.programCache = false;
    ShardedEngine fresh(cfg, 2);
    fresh.accumulateBatch(ops);

    const auto a = cached.stats().fabric;
    const auto b = fresh.stats().fabric;
    EXPECT_EQ(a.aap, b.aap);
    EXPECT_EQ(a.ap, b.ap);
    EXPECT_EQ(a.tra, b.tra);
    EXPECT_DOUBLE_EQ(a.fabricNs, b.fabricNs);
    EXPECT_DOUBLE_EQ(a.fabricNj, b.fabricNj);
    EXPECT_EQ(cached.readAllCounters(), fresh.readAllCounters());
}

TEST_P(CostBackends, ForcedFallbackMatchesPlannerOffExactly)
{
    // Two counters whose deltas populate four distinct (digit, k)
    // planes: a plan would rewrite four plane rows to save two point
    // mask switches, so the cost model must pick per-op replay — and
    // then the planner-on engine must issue exactly the commands the
    // planner-off engine does.
    auto cfg = baseConfig(GetParam());
    const std::vector<BatchOp> ops = {{0, 5, 0}, {1, 10, 0}};

    // Deltas from the post-construction baseline: the planner
    // registers its persistent plane rows up front, which is setup
    // cost, not stream cost.
    cfg.drainPlanner = true;
    ShardedEngine on(cfg, 1);
    const auto on0 = on.stats().fabric;
    on.accumulateBatch(ops);
    cfg.drainPlanner = false;
    ShardedEngine off(cfg, 1);
    const auto off0 = off.stats().fabric;
    off.accumulateBatch(ops);

    EXPECT_EQ(on.stats().plansExecuted, 0u);
    EXPECT_EQ(on.stats().planFallbackOps, ops.size());
    const auto a = on.stats().fabric;
    const auto b = off.stats().fabric;
    EXPECT_EQ(a.aap - on0.aap, b.aap - off0.aap);
    EXPECT_EQ(a.ap - on0.ap, b.ap - off0.ap);
    EXPECT_EQ(a.tra - on0.tra, b.tra - off0.tra);
    EXPECT_EQ(a.rowWrites - on0.rowWrites,
              b.rowWrites - off0.rowWrites);
    // NEAR, not exact: the planner engine's larger construction
    // baseline makes the subtraction round differently.
    EXPECT_NEAR(a.fabricNs - on0.fabricNs,
                b.fabricNs - off0.fabricNs, 1e-6);
    EXPECT_NEAR(a.fabricNj - on0.fabricNj,
                b.fabricNj - off0.fabricNj, 1e-6);
    EXPECT_EQ(on.readAllCounters(), off.readAllCounters());
}

TEST_P(CostBackends, FabricTimeIsStrictlyMonotone)
{
    const auto cfg = baseConfig(GetParam());
    ShardedEngine eng(cfg, 1);
    const auto ops = randomOps(10, cfg.numCounters, 21);
    double prev = eng.stats().fabric.fabricNs;
    for (const auto &op : ops) {
        eng.accumulateBatch(std::span<const BatchOp>(&op, 1));
        const double now = eng.stats().fabric.fabricNs;
        EXPECT_GT(now, prev);
        prev = now;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CostBackends,
    ::testing::Values(core::BackendKind::Ambit,
                      core::BackendKind::NvmPinatubo,
                      core::BackendKind::NvmMagic,
                      core::BackendKind::Rca),
    [](const ::testing::TestParamInfo<core::BackendKind> &info) {
        switch (info.param) {
          case core::BackendKind::Ambit:
            return "ambit";
          case core::BackendKind::NvmPinatubo:
            return "nvm_pinatubo";
          case core::BackendKind::NvmMagic:
            return "nvm_magic";
          default:
            return "rca";
        }
    });

TEST(CostModelAgreement, StreamAapCountMatchesAmbitSimulation)
{
    // The analytic model and the bit-accurate simulator must agree
    // on the command count — and therefore on modeled fabric time:
    // every AAP/AP occupies its bank for one bankPeriodNs.
    const unsigned radix = 4;
    EngineConfig cfg = baseConfig();
    cfg.radix = radix;
    cfg.numCounters = 8;
    core::C2MEngine eng(cfg);
    const unsigned h = eng.addMask(std::vector<uint8_t>(8, 1));
    const auto before = eng.backend().opStats();

    const std::vector<uint64_t> values = {1, 3, 4, 15, 16, 255, 7};
    for (uint64_t v : values)
        eng.accumulate(v, h);

    const core::C2mCostModel model(radix, cfg.capacityBits);
    const auto cost = model.accumulateStream(values);
    const auto after = eng.backend().opStats();
    EXPECT_EQ(cost.aaps, after.commands() - before.commands());
    const double expected_ns = static_cast<double>(cost.aaps) *
                               cfg.dramTimings.bankPeriodNs();
    EXPECT_NEAR(after.fabricNs - before.fabricNs, expected_ns,
                1e-9 * expected_ns);
}

TEST(CostAttribution, ShardMergeCountsEveryShardOnce)
{
    const auto cfg = baseConfig();
    ShardedEngine eng(cfg, 4);
    eng.accumulateBatch(randomOps(80, cfg.numCounters, 13));
    double sum_ns = 0.0, sum_nj = 0.0, max_ns = 0.0;
    for (unsigned s = 0; s < eng.numShards(); ++s) {
        const auto st = eng.shard(s).stats();
        sum_ns += st.fabric.fabricNs;
        sum_nj += st.fabric.fabricNj;
        max_ns = std::max(max_ns, st.fabric.fabricNs);
    }
    const auto merged = eng.stats();
    EXPECT_DOUBLE_EQ(merged.fabric.fabricNs, sum_ns);
    EXPECT_DOUBLE_EQ(merged.fabric.fabricNj, sum_nj);
    // Critical path: at least the slowest shard, at least the rank
    // window floor, never more than the serial sum.
    EXPECT_GE(merged.fabricCriticalNs, max_ns);
    const double rank_floor =
        static_cast<double>(merged.fabric.commands()) *
        cfg.dramTimings.issueIntervalNs(eng.numShards());
    EXPECT_GE(merged.fabricCriticalNs, rank_floor);
    EXPECT_LE(merged.fabricCriticalNs, merged.fabric.fabricNs);
}

TEST(CostAttribution, ServiceAttributesEngineFabricExactlyOnce)
{
    const auto cfg = baseConfig();
    ShardedEngine eng(cfg, 2);
    // Construction (counter clearing, reserved mask rows) is engine
    // cost the service never drove; attribution starts here.
    const auto base = eng.stats().fabric;
    service::IngestService svc(eng);
    const auto ops = randomOps(50, cfg.numCounters, 17);
    svc.submit(std::span<const BatchOp>(ops));
    svc.flushAndWait();
    svc.stop();
    // The service was the engine's only driver after construction,
    // so the per-epoch deltas it sampled must sum to exactly the
    // engine-total delta — no double count across the shard merge
    // and the service report.
    EXPECT_DOUBLE_EQ(svc.serviceStats().fabricNs,
                     svc.engineStats().fabric.fabricNs -
                         base.fabricNs);
    EXPECT_DOUBLE_EQ(svc.serviceStats().fabricNj,
                     svc.engineStats().fabric.fabricNj -
                         base.fabricNj);
}

TEST(CostAttribution, FabricEpochSizingAdaptsTheWindow)
{
    const auto cfg = baseConfig();
    ShardedEngine eng(cfg, 2);
    service::IngestConfig icfg;
    icfg.minDrainOps = 1;
    // Target roughly the fabric time of a handful of ops: after the
    // first epoch's cost sample the window must move off its seed.
    icfg.targetEpochFabricNs = 1e6;
    service::IngestService svc(eng, icfg);
    EXPECT_EQ(svc.effectiveMinDrainOps(), 1u);
    const auto ops = randomOps(60, cfg.numCounters, 19);
    svc.submit(std::span<const BatchOp>(ops));
    svc.flushAndWait();
    EXPECT_GT(svc.effectiveMinDrainOps(), 1u);
    svc.stop();
}
