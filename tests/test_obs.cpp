/**
 * @file
 * Observability subsystem tests: log-bucketed histogram edge cases
 * (empty, single sample, top-octave saturation, concurrent writers,
 * percentile agreement with exact order statistics), trace recorder
 * ring semantics, Chrome-trace export sanitization and clock-domain
 * tracks, pluggable log sink capture + warning rate limiting, metrics
 * registry snapshot diffing / exporters, and counter-render
 * determinism. Suites are named Obs* so the TSan CI job picks them up.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/sharded.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/ingest.hpp"

using namespace c2m;
using core::EngineConfig;
using obs::EventKind;
using obs::LogHistogram;
using obs::MetricsRegistry;
using obs::TraceConfig;
using obs::TraceEvent;
using obs::TraceRecorder;

namespace {

size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

struct CapturedLog
{
    std::vector<std::pair<LogLevel, std::string>> lines;
};

void
captureSink(void *ctx, LogLevel lvl, const char *msg)
{
    static_cast<CapturedLog *>(ctx)->lines.emplace_back(lvl, msg);
}

} // namespace

// ---------------------------------------------------------------------
// LogHistogram

TEST(ObsHistogram, EmptyHistogramReportsZeros)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.meanValue(), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(ObsHistogram, SingleSampleIsExact)
{
    LogHistogram h;
    h.record(37);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 37u);
    EXPECT_EQ(h.max(), 37u);
    EXPECT_EQ(h.min(), 37u);
    // Every quantile of a one-sample distribution is that sample: the
    // in-bucket interpolation is clamped to the tracked [min, max].
    EXPECT_EQ(h.percentile(0.0), 37u);
    EXPECT_EQ(h.percentile(0.5), 37u);
    EXPECT_EQ(h.percentile(0.99), 37u);
    EXPECT_EQ(h.percentile(1.0), 37u);
}

TEST(ObsHistogram, SmallValuesAreExact)
{
    LogHistogram h;
    for (uint64_t v = 0; v < 4; ++v) {
        EXPECT_EQ(LogHistogram::bucketIndex(v), v);
        EXPECT_EQ(LogHistogram::bucketLo(static_cast<uint32_t>(v)), v);
        EXPECT_EQ(LogHistogram::bucketHi(static_cast<uint32_t>(v)),
                  v + 1);
    }
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(3);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(1.0), 3u);
}

TEST(ObsHistogram, BucketEdgesPartitionTheValueSpace)
{
    // Buckets tile [0, 2^64) without gaps or overlap: every bucket's
    // lo maps back to it, its hi-1 maps back to it, and hi is the
    // next bucket's lo.
    for (uint32_t i = 0; i < LogHistogram::kBucketCount; ++i) {
        const uint64_t lo = LogHistogram::bucketLo(i);
        const uint64_t hi = LogHistogram::bucketHi(i);
        ASSERT_LT(lo, hi) << "bucket " << i;
        EXPECT_EQ(LogHistogram::bucketIndex(lo), i);
        EXPECT_EQ(LogHistogram::bucketIndex(hi - 1), i);
        if (i + 1 < LogHistogram::kBucketCount) {
            EXPECT_EQ(LogHistogram::bucketHi(i),
                      LogHistogram::bucketLo(i + 1));
        }
    }
    // Width never exceeds 1/4 of the bucket's lower bound (above the
    // exact range), which is the quantile error bound we advertise.
    for (uint32_t i = 4; i < LogHistogram::kBucketCount; ++i) {
        const uint64_t lo = LogHistogram::bucketLo(i);
        const uint64_t hi = LogHistogram::bucketHi(i);
        if (hi != UINT64_MAX) {
            EXPECT_LE(hi - lo, lo / 4) << "bucket " << i;
        }
    }
}

TEST(ObsHistogram, TopOctaveSaturatesWithoutOverflow)
{
    LogHistogram h;
    h.record(UINT64_MAX);
    h.record(uint64_t{1} << 63);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), UINT64_MAX);
    EXPECT_EQ(LogHistogram::bucketIndex(UINT64_MAX),
              LogHistogram::kBucketCount - 1);
    EXPECT_EQ(LogHistogram::bucketHi(LogHistogram::kBucketCount - 1),
              UINT64_MAX);
    EXPECT_EQ(h.percentile(1.0), UINT64_MAX);
}

TEST(ObsHistogram, PercentileAgreesWithExactWithinOneBucket)
{
    LogHistogram h;
    Rng rng(0xC0FFEE);
    std::vector<uint64_t> exact;
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform spread so every octave gets traffic.
        const uint64_t v =
            rng.next() >> (rng.next() % 56);
        exact.push_back(v);
        h.record(v);
    }
    std::sort(exact.begin(), exact.end());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        const size_t rank = static_cast<size_t>(
            q * static_cast<double>(exact.size() - 1) + 0.5);
        const uint64_t truth = exact[std::min(rank, exact.size() - 1)];
        const uint64_t est = h.percentile(q);
        const uint32_t b = LogHistogram::bucketIndex(truth);
        const uint64_t width =
            LogHistogram::bucketHi(b) - LogHistogram::bucketLo(b);
        // Interpolation estimates within the truth's bucket, so the
        // error is two-sided and strictly under one bucket width (the
        // old upper-edge return was biased a full octave high at
        // sub-bucket boundaries).
        const uint64_t err = est > truth ? est - truth : truth - est;
        EXPECT_LT(err, width) << "q=" << q;
        EXPECT_GE(est, h.min()) << "q=" << q;
        EXPECT_LE(est, h.max()) << "q=" << q;
    }
}

TEST(ObsHistogram, QuantilesAreMonotoneAndBoundedByMax)
{
    LogHistogram h;
    Rng rng(42);
    for (int i = 0; i < 5000; ++i)
        h.record(rng.next() % 1000000);
    uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const uint64_t v = h.percentile(q);
        EXPECT_GE(v, prev);
        EXPECT_LE(v, h.max());
        prev = v;
    }
}

TEST(ObsHistogram, ConcurrentLaneWritersSumExactly)
{
    // Run under TSan in CI: lock-free recording from many threads.
    LogHistogram h;
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h.record(static_cast<uint64_t>(t) * kPerThread + i);
        });
    for (auto &w : writers)
        w.join();
    const uint64_t n = kThreads * kPerThread;
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), n * (n - 1) / 2);
    EXPECT_EQ(h.max(), n - 1);
}

TEST(ObsHistogram, ClearResetsEverything)
{
    LogHistogram h;
    h.record(100);
    h.record(10000);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

// ---------------------------------------------------------------------
// TraceRecorder

TEST(ObsTraceRecorder, DisabledByDefaultAndToggles)
{
    EXPECT_EQ(obs::tracer(), nullptr);
    {
        TraceRecorder rec;
        EXPECT_EQ(obs::tracer(), nullptr); // construction != install
        rec.install();
        EXPECT_EQ(obs::tracer(), &rec);
        rec.uninstall();
        EXPECT_EQ(obs::tracer(), nullptr);
        rec.install();
    } // destructor uninstalls
    EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(ObsTraceRecorder, RecordsEventsInOrder)
{
    TraceRecorder rec(TraceConfig{1, 64});
    rec.install();
    rec.spanBegin("work", 0, 10.0);
    rec.instant("mark", 0, 7, 9);
    rec.counter("gauge", 0, 123);
    rec.spanEnd("work", 0, 20.0);
    rec.uninstall();

    EXPECT_EQ(rec.eventCount(), 4u);
    EXPECT_EQ(rec.droppedEvents(), 0u);
    const auto evs = rec.laneSnapshot(0);
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(std::string(evs[0].name), "work");
    EXPECT_EQ(evs[0].kind, EventKind::SpanBegin);
    EXPECT_DOUBLE_EQ(evs[0].fabricNs, 10.0);
    EXPECT_EQ(evs[1].kind, EventKind::Instant);
    EXPECT_EQ(evs[1].arg, 7u);
    EXPECT_EQ(evs[1].arg2, 9u);
    EXPECT_EQ(evs[2].kind, EventKind::Counter);
    EXPECT_EQ(evs[2].arg, 123u);
    EXPECT_EQ(evs[3].kind, EventKind::SpanEnd);
    // Host stamps are monotone within a lane.
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_GE(evs[i].hostNs, evs[i - 1].hostNs);
}

TEST(ObsTraceRecorder, RingOverwritesOldestAndCountsDrops)
{
    CapturedLog cap;
    resetLogRateLimiter();
    setLogSink(&captureSink, &cap); // keep test output clean
    TraceRecorder rec(TraceConfig{1, 8});
    rec.install();
    for (uint64_t i = 0; i < 20; ++i)
        rec.instant("tick", 0, i);
    rec.uninstall();
    setLogSink(nullptr, nullptr);

    // The first wrap fires a one-shot warning, which the log hook
    // records as a 21st event (a log.warn instant) — truncation is
    // never silent.
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_NE(cap.lines[0].second.find("trace ring wrapped"),
              std::string::npos);
    EXPECT_EQ(rec.eventCount(), 21u);
    EXPECT_EQ(rec.droppedEvents(), 13u);
    const auto evs = rec.laneSnapshot(0);
    ASSERT_EQ(evs.size(), 8u);
    // Oldest-first snapshot of the retained tail: args 12..19 (the
    // log.warn instant slotted in mid-stream and was itself
    // overwritten by later ticks).
    for (size_t i = 0; i < evs.size(); ++i)
        EXPECT_EQ(evs[i].arg, 12 + i);
    resetLogRateLimiter();
}

TEST(ObsTraceRecorder, ScopedSpanNoopsWhenDisabled)
{
    {
        obs::ScopedSpan span("nothing", 3);
        EXPECT_FALSE(span.active());
    }
    TraceRecorder rec(TraceConfig{1, 16});
    rec.install();
    {
        obs::ScopedSpan span("something", 3, 5.0);
        EXPECT_TRUE(span.active());
        span.setFabricEnd(9.0);
    }
    rec.uninstall();
    const auto evs = rec.laneSnapshot(0);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].kind, EventKind::SpanBegin);
    EXPECT_EQ(evs[1].kind, EventKind::SpanEnd);
    EXPECT_DOUBLE_EQ(evs[1].fabricNs, 9.0);
}

// ---------------------------------------------------------------------
// Chrome-trace export

TEST(ObsChromeExport, EmitsBothClockDomainsAndBalancedSpans)
{
    TraceRecorder rec(TraceConfig{1, 256});
    rec.install();
    rec.spanBegin("shard.drain", 0, 100.0);
    rec.instant("plan.commit", 0, 50, 90, 150.0);
    rec.spanEnd("shard.drain", 0, 200.0);
    rec.counter("service.queued", obs::kServiceTrack, 17);
    rec.uninstall();

    const std::string json = obs::exportChromeTrace(rec);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Host-clock track for shard 0 is pid 1; its fabric clone is
    // pid 1001; the service counter lands on pid 0.
    EXPECT_NE(json.find("\"pid\":1,"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1001,"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":0,"), std::string::npos);
    // One host B/E pair and one fabric B/E pair.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), 2u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"E\""), 2u);
    // The priced instant keeps both prices in args.
    EXPECT_NE(json.find("\"arg\":50,\"arg2\":90"), std::string::npos);
    // Track names label the clock domains.
    EXPECT_NE(json.find("shard 0 (host clock)"), std::string::npos);
    EXPECT_NE(json.find("shard 0 (fabric clock)"), std::string::npos);
    EXPECT_NE(json.find("service (host clock)"), std::string::npos);
}

TEST(ObsChromeExport, SanitizesUnbalancedSpans)
{
    TraceRecorder rec(TraceConfig{1, 64});
    rec.install();
    rec.spanEnd("orphan", 2);    // begin lost to (simulated) ring wrap
    rec.spanBegin("unclosed", 2); // recorder stopped mid-span
    rec.instant("last", 2);
    rec.uninstall();

    const std::string json = obs::exportChromeTrace(rec);
    // The orphan end is dropped; the unclosed begin gets a synthetic
    // end — output stays balanced.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"E\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"name\":\"orphan\""), 0u);
    EXPECT_EQ(countOccurrences(json, "\"name\":\"unclosed\""), 2u);
}

// ---------------------------------------------------------------------
// Instrumented stack: spans flow from a live service into the export

TEST(ObsServiceTrace, IngestEpochsEmitDrainSpans)
{
    TraceRecorder rec(TraceConfig{8, 4096});
    rec.install();
    {
        EngineConfig cfg;
        cfg.numCounters = 256;
        core::ShardedEngine engine(cfg, 2);
        service::IngestService svc(engine);
        std::vector<core::BatchOp> ops;
        for (uint64_t i = 0; i < 512; ++i)
            ops.push_back({i % 256, 1, 0});
        svc.submit(ops);
        svc.flushAndWait();
        svc.stop();
    }
    rec.uninstall();

    const std::string json = obs::exportChromeTrace(rec);
    EXPECT_GT(rec.eventCount(), 0u);
    // The epoch lifecycle and per-shard drains both made it out.
    EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"epoch.execute\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"shard.drain\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"service.queued\""),
              std::string::npos);
    // Fabric-clock clones exist for the drain spans.
    EXPECT_NE(json.find("\"pid\":1001,"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pluggable log sink + rate limiting

TEST(ObsLogSink, CapturesAndRestores)
{
    CapturedLog cap;
    resetLogRateLimiter();
    setLogSink(&captureSink, &cap);
    C2M_WARN("sink capture check ", 42);
    C2M_INFORM("inform capture check");
    setLogSink(nullptr, nullptr);
    C2M_INFORM("goes to stderr, not the vector");

    ASSERT_EQ(cap.lines.size(), 2u);
    EXPECT_EQ(cap.lines[0].first, LogLevel::Warn);
    EXPECT_EQ(cap.lines[0].second, "sink capture check 42");
    EXPECT_EQ(cap.lines[1].first, LogLevel::Inform);
}

TEST(ObsLogSink, RepeatedWarningsAreRateLimited)
{
    CapturedLog cap;
    resetLogRateLimiter();
    setLogSink(&captureSink, &cap);
    for (int i = 0; i < 300; ++i)
        C2M_WARN("hot warning");
    for (int i = 0; i < 300; ++i)
        C2M_INFORM("hot inform");
    setLogSink(nullptr, nullptr);

    size_t warns = 0, informs = 0;
    for (const auto &[lvl, msg] : cap.lines)
        (lvl == LogLevel::Warn ? warns : informs) += 1;
    // First kLogRepeatHead pass, then every kLogRepeatStride-th:
    // 8 + |{128, 256}| = 10 of 300.
    EXPECT_EQ(warns, kLogRepeatHead + 300 / kLogRepeatStride);
    EXPECT_EQ(informs, 300u); // informs are never limited
    // Passed repeats are annotated with the occurrence count.
    bool annotated = false;
    for (const auto &[lvl, msg] : cap.lines)
        if (msg.find("(repeated 128 times)") != std::string::npos)
            annotated = true;
    EXPECT_TRUE(annotated);
    resetLogRateLimiter();
}

TEST(ObsLogSink, WarningsBecomeTraceInstants)
{
    CapturedLog cap;
    resetLogRateLimiter();
    setLogSink(&captureSink, &cap); // keep test output clean
    TraceRecorder rec(TraceConfig{1, 64});
    rec.install();
    C2M_WARN("timeline-visible warning");
    C2M_INFORM("timeline-visible inform");
    rec.uninstall();
    C2M_WARN("not recorded after uninstall");
    setLogSink(nullptr, nullptr);

    const auto evs = rec.laneSnapshot(0);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(std::string(evs[0].name), "log.warn");
    EXPECT_EQ(std::string(evs[1].name), "log.inform");
    EXPECT_EQ(evs[0].kind, EventKind::Instant);
    resetLogRateLimiter();
}

// ---------------------------------------------------------------------
// MetricsRegistry

TEST(ObsMetricsRegistry, SnapshotDiffsCountersAcrossPulls)
{
    MetricsRegistry reg;
    uint64_t epochs = 5;
    reg.addCounterSource("", [&] {
        return CounterMap{{"service.epochs", epochs},
                          {"service.flushed_ops", epochs * 100}};
    });
    auto s0 = reg.snapshot();
    EXPECT_EQ(s0.seq, 0u);
    EXPECT_EQ(s0.total.at("service.epochs"), 5u);
    EXPECT_EQ(s0.delta.at("service.epochs"), 5u);

    epochs = 12;
    auto s1 = reg.snapshot();
    EXPECT_EQ(s1.seq, 1u);
    EXPECT_EQ(s1.total.at("service.epochs"), 12u);
    EXPECT_EQ(s1.delta.at("service.epochs"), 7u);
    EXPECT_EQ(s1.delta.at("service.flushed_ops"), 700u);
    EXPECT_EQ(reg.snapshotCount(), 2u);
}

TEST(ObsMetricsRegistry, NamedSourcesArePrefixed)
{
    MetricsRegistry reg;
    reg.addCounterSource("svcA",
                         [] { return CounterMap{{"epochs", 3}}; });
    reg.addCounterSource("svcB",
                         [] { return CounterMap{{"epochs", 4}}; });
    auto s = reg.snapshot();
    EXPECT_EQ(s.total.at("svcA.epochs"), 3u);
    EXPECT_EQ(s.total.at("svcB.epochs"), 4u);
}

TEST(ObsMetricsRegistry, JsonLineIsParseableShape)
{
    MetricsRegistry reg;
    reg.addCounterSource(
        "", [] { return CounterMap{{"x.count", 9}}; });
    reg.histogram("drain_us").record(50);
    reg.histogram("drain_us").record(5000);
    const auto line = reg.renderJsonLine(reg.snapshot());

    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(countOccurrences(line, "\n"), 1u); // single line
    EXPECT_NE(line.find("\"seq\":0"), std::string::npos);
    EXPECT_NE(line.find("\"x.count\":9"), std::string::npos);
    EXPECT_NE(line.find("\"drain_us\""), std::string::npos);
    EXPECT_NE(line.find("\"count\":2"), std::string::npos);
    EXPECT_NE(line.find("\"max\":5000"), std::string::npos);
}

TEST(ObsMetricsRegistry, PrometheusExportShape)
{
    MetricsRegistry reg;
    reg.addCounterSource(
        "", [] { return CounterMap{{"service.drain p99", 7}}; });
    auto &h = reg.histogram("drain-us");
    h.record(10);
    h.record(20);
    const auto text = reg.renderPrometheus(reg.snapshot());

    // Names sanitized to [a-zA-Z0-9_:]; counters carry the
    // OpenMetrics _total suffix.
    EXPECT_NE(text.find("# TYPE service_drain_p99_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("service_drain_p99_total 7"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE drain_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("drain_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("drain_us_sum 30"), std::string::npos);
    EXPECT_NE(text.find("drain_us_count 2"), std::string::npos);
    // Quantile estimates ride along as a labeled gauge family.
    EXPECT_NE(text.find("# TYPE drain_us_quantile gauge"),
              std::string::npos);
    EXPECT_NE(text.find("drain_us_quantile{quantile=\"0.99\"} "),
              std::string::npos);
    // Each family appears under exactly one # TYPE header.
    EXPECT_EQ(countOccurrences(text, "# TYPE drain_us "), 1u);
}

TEST(ObsMetricsRegistry, PrometheusCollidingNamesAggregate)
{
    // Distinct dotted names that sanitize to one metric name must not
    // produce duplicate # TYPE headers (promtool rejects that).
    MetricsRegistry reg;
    reg.addCounterSource("", [] {
        return CounterMap{{"svc.drain.ns", 3}, {"svc.drain_ns", 4}};
    });
    const auto text = reg.renderPrometheus(reg.snapshot());
    EXPECT_EQ(countOccurrences(text, "# TYPE svc_drain_ns_total"), 1u);
    EXPECT_NE(text.find("svc_drain_ns_total 7"), std::string::npos);
}

// ---------------------------------------------------------------------
// Drain-latency histogram inside the service (replacement parity)

TEST(ObsServiceDrainHistogram, ExposesHistogramMatchingDrainLatency)
{
    EngineConfig cfg;
    cfg.numCounters = 64;
    core::ShardedEngine engine(cfg, 1);
    service::IngestService svc(engine);
    for (int e = 0; e < 10; ++e) {
        svc.submit({core::BatchOp{static_cast<uint64_t>(e % 64), 1, 0}});
        svc.flushAndWait();
    }
    svc.stop();
    const auto lat = svc.drainLatency();
    const auto &h = svc.drainHistogram();
    EXPECT_EQ(lat.samples, h.count());
    EXPECT_EQ(lat.max, h.max());
    EXPECT_EQ(lat.p50, h.percentile(0.50));
    EXPECT_LE(lat.p50, lat.p95);
    EXPECT_LE(lat.p95, lat.p99);
    EXPECT_LE(lat.p99, lat.max);
}

// ---------------------------------------------------------------------
// Render determinism

TEST(ObsRenderDeterminism, CounterMapsRenderIdenticallyRegardlessOfInsertionOrder)
{
    CounterMap a;
    a["zeta"] = 3;
    a["alpha"] = 1;
    a["mid"] = 2;
    CounterMap b;
    b["mid"] = 2;
    b["zeta"] = 3;
    b["alpha"] = 1;
    EXPECT_EQ(renderCounters(a), renderCounters(b));
    // Exact layout is pinned: lexicographic order, aligned columns.
    EXPECT_EQ(renderCounters(a, 0), "alpha  1\nmid    2\nzeta   3\n");
}

TEST(ObsRenderDeterminism, MergedReportsAreStableAcrossRuns)
{
    const auto run = [] {
        EngineConfig cfg;
        cfg.numCounters = 64;
        core::ShardedEngine engine(cfg, 1);
        service::IngestService svc(engine);
        std::vector<core::BatchOp> ops;
        for (uint64_t i = 0; i < 200; ++i)
            ops.push_back({i % 64, 1, 0});
        svc.submit(ops);
        svc.flushAndWait();
        svc.stop();
        // Drop timing-dependent values, keep the key structure.
        std::string keys;
        for (const auto &[k, v] : svc.report())
            keys += k + "\n";
        return keys;
    };
    EXPECT_EQ(run(), run());
}
