/**
 * @file
 * Majority-inverter graph tests: Omega simplification rules,
 * structural hashing, and equivalence of the Fig. 6a / Fig. 12a
 * circuits with the functions the muProgram generators implement.
 */

#include <gtest/gtest.h>

#include "uprog/mig.hpp"

using namespace c2m;
using uprog::Mig;
using uprog::MigEdge;

TEST(Mig, ConstantsEvaluate)
{
    Mig g;
    EXPECT_FALSE(g.evaluate(g.constZero(), {}));
    EXPECT_TRUE(g.evaluate(g.constOne(), {}));
}

TEST(Mig, MajorityRuleCollapses)
{
    Mig g;
    auto x = g.addInput("x");
    auto y = g.addInput("y");
    EXPECT_EQ(g.makeMaj(x, x, y).node, x.node); // M(x,x,y) = x
    EXPECT_EQ(g.numMajNodes(), 0u);
}

TEST(Mig, ComplementaryRuleCollapses)
{
    Mig g;
    auto x = g.addInput("x");
    auto y = g.addInput("y");
    const auto r = g.makeMaj(x, Mig::invert(x), y); // M(x,!x,y) = y
    EXPECT_EQ(r.node, y.node);
    EXPECT_EQ(r.neg, y.neg);
    EXPECT_EQ(g.numMajNodes(), 0u);
}

TEST(Mig, StructuralHashingReusesNodes)
{
    Mig g;
    auto a = g.addInput("a");
    auto b = g.addInput("b");
    auto c = g.addInput("c");
    const auto m1 = g.makeMaj(a, b, c);
    const auto m2 = g.makeMaj(c, a, b); // same children, permuted
    EXPECT_EQ(m1.node, m2.node);
    EXPECT_EQ(g.numMajNodes(), 1u);
}

TEST(Mig, AndOrTruthTables)
{
    Mig g;
    auto a = g.addInput("a");
    auto b = g.addInput("b");
    const auto and_ = g.makeAnd(a, b);
    const auto or_ = g.makeOr(a, b);
    const auto tt_and = g.truthTable(and_);
    const auto tt_or = g.truthTable(or_);
    // Input order: a = bit0, b = bit1.
    EXPECT_EQ(tt_and, (std::vector<bool>{false, false, false, true}));
    EXPECT_EQ(tt_or, (std::vector<bool>{false, true, true, true}));
}

TEST(Mig, XorSynthesisMatchesFig12a)
{
    Mig g;
    auto a = g.addInput("a");
    auto b = g.addInput("b");
    const auto x = g.makeXor(a, b);
    EXPECT_EQ(g.truthTable(x),
              (std::vector<bool>{false, true, true, false}));
    // IR1 (OR), IR2 (AND) and FR: three majority gates.
    EXPECT_EQ(g.numMajNodes(), 3u);
}

TEST(Mig, ForwardShiftCircuitOfFig6a)
{
    // b_i' = (m AND b_{i-1}) OR (NOT m AND b_i).
    Mig g;
    auto m = g.addInput("m");
    auto prev = g.addInput("b_prev");
    auto cur = g.addInput("b_cur");
    const auto out = g.makeOr(g.makeAnd(m, prev),
                              g.makeAnd(Mig::invert(m), cur));
    const auto tt = g.truthTable(out);
    for (unsigned r = 0; r < 8; ++r) {
        const bool mv = r & 1, pv = (r >> 1) & 1, cv = (r >> 2) & 1;
        EXPECT_EQ(tt[r], mv ? pv : cv) << "row " << r;
    }
    // Three majority gates, as in the unoptimized Fig. 6a MIG.
    EXPECT_EQ(g.numMajNodes(), 3u);
}

TEST(Mig, InvertedFeedbackCircuit)
{
    // b_1' = (m AND NOT msb) OR (NOT m AND b_1).
    Mig g;
    auto m = g.addInput("m");
    auto msb = g.addInput("msb");
    auto b1 = g.addInput("b1");
    const auto out = g.makeOr(g.makeAnd(m, Mig::invert(msb)),
                              g.makeAnd(Mig::invert(m), b1));
    const auto tt = g.truthTable(out);
    for (unsigned r = 0; r < 8; ++r) {
        const bool mv = r & 1, sv = (r >> 1) & 1, bv = (r >> 2) & 1;
        EXPECT_EQ(tt[r], mv ? !sv : bv);
    }
}

TEST(Mig, OverflowCircuitOfFig6a)
{
    // Onext' = Onext OR (theta0 AND NOT msb').
    Mig g;
    auto onext = g.addInput("onext");
    auto theta = g.addInput("theta");
    auto msb = g.addInput("msb_new");
    const auto out =
        g.makeOr(onext, g.makeAnd(theta, Mig::invert(msb)));
    const auto tt = g.truthTable(out);
    for (unsigned r = 0; r < 8; ++r) {
        const bool ov = r & 1, th = (r >> 1) & 1, mb = (r >> 2) & 1;
        EXPECT_EQ(tt[r], ov || (th && !mb));
    }
}

TEST(Mig, FullAdderIdentityUsedByRcaCodegen)
{
    // sum = MAJ(!cout, cin, MAJ(a, b, !cin)) with cout = MAJ(a,b,cin).
    Mig g;
    auto a = g.addInput("a");
    auto b = g.addInput("b");
    auto cin = g.addInput("cin");
    const auto cout = g.makeMaj(a, b, cin);
    const auto t = g.makeMaj(a, b, Mig::invert(cin));
    const auto sum = g.makeMaj(Mig::invert(cout), cin, t);
    const auto tt_sum = g.truthTable(sum);
    const auto tt_cout = g.truthTable(cout);
    for (unsigned r = 0; r < 8; ++r) {
        const int av = r & 1, bv = (r >> 1) & 1, cv = (r >> 2) & 1;
        EXPECT_EQ(tt_sum[r], ((av + bv + cv) & 1) != 0);
        EXPECT_EQ(tt_cout[r], (av + bv + cv) >= 2);
    }
}

TEST(Mig, ConstantFolding)
{
    Mig g;
    auto a = g.addInput("a");
    // M(0, 1, a) = a.
    const auto r = g.makeMaj(g.constZero(), g.constOne(), a);
    EXPECT_EQ(r.node, a.node);
    // AND with zero is zero: M(0, 0, a) handled by the x,x,y rule.
    const auto z = g.makeMaj(g.constZero(), g.constZero(), a);
    EXPECT_EQ(z.node, 0u);
    EXPECT_FALSE(z.neg);
}

TEST(Mig, DeepCompositionEvaluates)
{
    // Chain of XORs == parity of 6 inputs.
    Mig g;
    std::vector<MigEdge> in;
    for (int i = 0; i < 6; ++i) {
        // Append-style build; gcc 12 -Wrestrict misfires on rvalue
        // string operator+ (GCC PR105329).
        std::string name = "x";
        name += std::to_string(i);
        in.push_back(g.addInput(name));
    }
    MigEdge acc = in[0];
    for (int i = 1; i < 6; ++i)
        acc = g.makeXor(acc, in[i]);
    const auto tt = g.truthTable(acc);
    for (unsigned r = 0; r < 64; ++r)
        EXPECT_EQ(tt[r], (__builtin_popcount(r) & 1) != 0);
}
