/**
 * @file
 * Bit-exact equivalence of the generated Ambit muPrograms against the
 * golden Johnson-counter model: masked k-ary increments/decrements
 * with overflow/underflow detection (Alg. 1, Fig. 6b), carry/borrow
 * rippling, and the generic row-logic emitters -- swept over the
 * paper's radix range and every k.
 */

#include <gtest/gtest.h>

#include "cim/ambit.hpp"
#include "jc/johnson.hpp"
#include "jc/layout.hpp"
#include "uprog/codegen_ambit.hpp"

using namespace c2m;

namespace {

struct Harness
{
    jc::CounterLayout layout;
    unsigned maskRow;
    cim::AmbitSubarray sub;
    uprog::AmbitCodegen gen;

    Harness(unsigned radix, unsigned capacity_bits, size_t cols,
            uprog::CodegenOptions opts = {})
        : layout(radix, capacity_bits, 0),
          maskRow(layout.endRow()),
          sub(layout.endRow() + 4, cols),
          gen(layout, opts)
    {
    }

    unsigned n() const { return layout.bitsPerDigit(); }

    void
    setDigit(unsigned digit, size_t col, unsigned value)
    {
        const uint64_t bits = jc::encode(n(), value);
        for (unsigned i = 0; i < n(); ++i)
            sub.rawRow(layout.bitRow(digit, i))
                .set(col, (bits >> i) & 1);
    }

    int
    getDigit(unsigned digit, size_t col)
    {
        uint64_t bits = 0;
        for (unsigned i = 0; i < n(); ++i)
            if (sub.peekRow(layout.bitRow(digit, i)).get(col))
                bits |= 1ULL << i;
        return jc::decode(n(), bits);
    }

    void
    setMask(size_t col, bool v)
    {
        sub.rawRow(maskRow).set(col, v);
    }

    bool
    onext(unsigned digit, size_t col)
    {
        return sub.peekRow(layout.onextRow(digit)).get(col);
    }

    void
    run(const uprog::CheckedProgram &prog)
    {
        for (const auto &b : prog.blocks)
            sub.run(b.prog);
    }
};

} // namespace

// ---------------------------------------------------------------------
// Generic row logic
// ---------------------------------------------------------------------

TEST(RowLogic, CopyNotAndOrAndNot)
{
    cim::AmbitSubarray sub(6, 8);
    sub.rawRow(0) = BitVector::fromString("11001010");
    sub.rawRow(1) = BitVector::fromString("10100110");

    cim::AmbitProgram p;
    uprog::AmbitCodegen::emitCopy(p, 0, 2);
    uprog::AmbitCodegen::emitNot(p, 0, 3);
    uprog::AmbitCodegen::emitOr(p, 0, 1, 4);
    uprog::AmbitCodegen::emitAnd(p, 0, 1, 5);
    sub.run(p);

    EXPECT_EQ(sub.peekRow(2).toString(), "11001010");
    EXPECT_EQ(sub.peekRow(3).toString(), "00110101");
    EXPECT_EQ(sub.peekRow(4).toString(), "11101110");
    EXPECT_EQ(sub.peekRow(5).toString(), "10000010");

    cim::AmbitProgram q;
    uprog::AmbitCodegen::emitAndNot(q, 0, 1, 2);
    sub.run(q);
    EXPECT_EQ(sub.peekRow(2).toString(), "01001000");
}

// ---------------------------------------------------------------------
// Parameterized sweep: (radix, k) for increments
// ---------------------------------------------------------------------

class KaryIncrement
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(KaryIncrement, MatchesGoldenModelUnderMask)
{
    const unsigned radix = std::get<0>(GetParam());
    const unsigned k = std::get<1>(GetParam());
    const unsigned n = radix / 2;
    if (k >= radix)
        GTEST_SKIP() << "k out of range for this radix";

    // Columns: one per (value, masked) combination.
    const size_t cols = 2 * radix;
    Harness h(radix, 16, cols);
    for (unsigned v = 0; v < radix; ++v) {
        h.setDigit(0, 2 * v, v);
        h.setMask(2 * v, true);
        h.setDigit(0, 2 * v + 1, v);
        h.setMask(2 * v + 1, false);
    }

    h.run(h.gen.karyIncrement(0, k, h.maskRow));

    for (unsigned v = 0; v < radix; ++v) {
        // Masked-in column: incremented, wrap recorded in Onext.
        EXPECT_EQ(h.getDigit(0, 2 * v),
                  static_cast<int>(jc::add(n, v, k)))
            << "radix=" << radix << " k=" << k << " v=" << v;
        EXPECT_EQ(h.onext(0, 2 * v), jc::wraps(n, v, k))
            << "radix=" << radix << " k=" << k << " v=" << v;
        // Masked-out column: untouched.
        EXPECT_EQ(h.getDigit(0, 2 * v + 1), static_cast<int>(v))
            << "radix=" << radix << " k=" << k << " v=" << v;
        EXPECT_FALSE(h.onext(0, 2 * v + 1))
            << "radix=" << radix << " k=" << k << " v=" << v;
    }
}

TEST_P(KaryIncrement, DecrementMatchesGoldenModelUnderMask)
{
    const unsigned radix = std::get<0>(GetParam());
    const unsigned k = std::get<1>(GetParam());
    const unsigned n = radix / 2;
    if (k >= radix)
        GTEST_SKIP() << "k out of range for this radix";

    const size_t cols = 2 * radix;
    Harness h(radix, 16, cols);
    for (unsigned v = 0; v < radix; ++v) {
        h.setDigit(0, 2 * v, v);
        h.setMask(2 * v, true);
        h.setDigit(0, 2 * v + 1, v);
        h.setMask(2 * v + 1, false);
    }

    h.run(h.gen.karyDecrement(0, k, h.maskRow));

    for (unsigned v = 0; v < radix; ++v) {
        const unsigned want = (v + radix - k) % radix;
        EXPECT_EQ(h.getDigit(0, 2 * v), static_cast<int>(want))
            << "radix=" << radix << " k=" << k << " v=" << v;
        EXPECT_EQ(h.onext(0, 2 * v), jc::borrows(n, v, k))
            << "radix=" << radix << " k=" << k << " v=" << v;
        EXPECT_EQ(h.getDigit(0, 2 * v + 1), static_cast<int>(v));
        EXPECT_FALSE(h.onext(0, 2 * v + 1));
    }
}

TEST_P(KaryIncrement, OnextAccumulatesAcrossIncrements)
{
    const unsigned radix = std::get<0>(GetParam());
    const unsigned k = std::get<1>(GetParam());
    const unsigned n = radix / 2;
    if (k >= radix)
        GTEST_SKIP();

    Harness h(radix, 16, 4);
    h.setDigit(0, 0, radix - 1); // will wrap on first increment
    h.setMask(0, true);
    h.run(h.gen.karyIncrement(0, k, h.maskRow));
    ASSERT_TRUE(h.onext(0, 0));
    // A second increment that does not wrap must keep Onext set.
    const unsigned v1 = jc::add(n, radix - 1, k);
    if (!jc::wraps(n, v1, k)) {
        h.run(h.gen.karyIncrement(0, k, h.maskRow));
        EXPECT_TRUE(h.onext(0, 0));
        EXPECT_EQ(h.getDigit(0, 0),
                  static_cast<int>(jc::add(n, v1, k)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    RadixByK, KaryIncrement,
    ::testing::Combine(::testing::Values(2u, 4u, 6u, 8u, 10u, 16u,
                                         20u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                         9u, 11u, 15u, 19u)));

// ---------------------------------------------------------------------
// Carry rippling
// ---------------------------------------------------------------------

TEST(CarryRipple, MovesPendingOverflowUp)
{
    Harness h(10, 16, 4);
    // Column 0: digit0 pending (Onext set), digit1 = 3.
    h.setDigit(0, 0, 7);
    h.sub.rawRow(h.layout.onextRow(0)).set(0, true);
    h.setDigit(1, 0, 3);
    // Column 1: nothing pending.
    h.setDigit(0, 1, 5);
    h.setDigit(1, 1, 2);

    h.run(h.gen.carryRipple(0));

    EXPECT_EQ(h.getDigit(1, 0), 4);     // received the carry
    EXPECT_FALSE(h.onext(0, 0));        // consumed
    EXPECT_EQ(h.getDigit(0, 0), 7);     // LSD unchanged
    EXPECT_EQ(h.getDigit(1, 1), 2);     // column 1 untouched
    EXPECT_FALSE(h.onext(0, 1));
}

TEST(CarryRipple, CarryIntoFullDigitSetsItsOnext)
{
    Harness h(4, 16, 2);
    h.sub.rawRow(h.layout.onextRow(0)).set(0, true);
    h.setDigit(1, 0, 3); // will wrap to 0 with Onext(1) set
    h.run(h.gen.carryRipple(0));
    EXPECT_EQ(h.getDigit(1, 0), 0);
    EXPECT_TRUE(h.onext(1, 0));
    EXPECT_FALSE(h.onext(0, 0));
}

TEST(BorrowRipple, MovesPendingBorrowUp)
{
    Harness h(10, 16, 2);
    h.sub.rawRow(h.layout.onextRow(0)).set(0, true); // pending borrow
    h.setDigit(1, 0, 3);
    h.run(h.gen.borrowRipple(0));
    EXPECT_EQ(h.getDigit(1, 0), 2);
    EXPECT_FALSE(h.onext(0, 0));
    EXPECT_FALSE(h.onext(1, 0));
}

// ---------------------------------------------------------------------
// Multi-digit end-to-end accumulation at muProgram level
// ---------------------------------------------------------------------

class RadixOnly : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RadixOnly, MultiDigitAccumulationMatchesArithmetic)
{
    const unsigned radix = GetParam();
    Harness h(radix, 16, 8);
    for (size_t col = 0; col < 8; ++col)
        h.setMask(col, col % 2 == 0);

    // Accumulate a few values digit-wise with full rippling.
    const std::vector<uint64_t> values = {1, radix - 1, radix + 3,
                                          2 * radix + 1, 17, 255};
    uint64_t expected = 0;
    for (uint64_t v : values) {
        uint64_t rest = v;
        unsigned pos = 0;
        while (rest != 0) {
            const unsigned k = static_cast<unsigned>(rest % radix);
            if (k != 0)
                h.run(h.gen.karyIncrement(pos, k, h.maskRow));
            rest /= radix;
            ++pos;
        }
        // Full ripple pass.
        for (unsigned d = 0; d + 1 < h.layout.numDigits(); ++d)
            h.run(h.gen.carryRipple(d));
        expected += v;
    }

    for (size_t col = 0; col < 8; ++col) {
        uint64_t got = 0;
        for (unsigned dd = h.layout.numDigits(); dd-- > 0;) {
            const int dv = h.getDigit(dd, col);
            ASSERT_GE(dv, 0) << "invalid JC state";
            got = got * radix + static_cast<unsigned>(dv);
            EXPECT_FALSE(h.onext(dd, col)) << "unresolved overflow";
        }
        EXPECT_EQ(got, col % 2 == 0 ? expected : 0)
            << "radix=" << radix << " col=" << col;
    }
}

TEST_P(RadixOnly, IncrementOpCountNearlyConstantInK)
{
    // Sec. 4.5.1 claims increment-by-k has the same latency as
    // increment-by-one; our strict-destructive codegen adds only the
    // k feedback saves and negated-update deltas.
    const unsigned radix = GetParam();
    const unsigned n = radix / 2;
    jc::CounterLayout layout(radix, 16, 0);
    uprog::AmbitCodegen gen(layout, {});
    const uint64_t base = gen.karyIncrement(0, 1, 99).totalOps();
    for (unsigned k = 2; k < radix; ++k) {
        const uint64_t ops = gen.karyIncrement(0, k, 99).totalOps();
        EXPECT_LE(ops, base + 4 * n) << "k=" << k;
        EXPECT_GE(ops + 4 * n, base) << "k=" << k;
    }
}

TEST_P(RadixOnly, ClearCountersZeroesEverything)
{
    const unsigned radix = GetParam();
    Harness h(radix, 16, 4);
    h.setDigit(0, 1, radix - 1);
    h.sub.rawRow(h.layout.onextRow(0)).set(1, true);
    h.sub.run(h.gen.clearCounters());
    EXPECT_EQ(h.getDigit(0, 1), 0);
    EXPECT_FALSE(h.onext(0, 1));
}

INSTANTIATE_TEST_SUITE_P(Radices, RadixOnly,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 16u,
                                           20u));

// ---------------------------------------------------------------------
// Cost formulas
// ---------------------------------------------------------------------

TEST(CostFormulas, PaperConstants)
{
    EXPECT_EQ(uprog::AmbitCodegen::paperIncrementOps(5), 42u);
    EXPECT_EQ(uprog::AmbitCodegen::paperProtectedOps(5, 2), 81u);
    EXPECT_EQ(uprog::AmbitCodegen::paperProtectedOps(5, 4), 141u);
    EXPECT_EQ(uprog::AmbitCodegen::paperProtectedOps(5, 6), 201u);
}

TEST(CostFormulas, GeneratedCountsTrackPaperScaling)
{
    // Our per-bit cost is 8-10 AAPs vs the paper's 7; the ratio of
    // generated to paper counts must stay bounded and roughly flat
    // across radices (same asymptotics in n).
    for (unsigned radix : {4u, 8u, 10u, 16u, 20u}) {
        jc::CounterLayout layout(radix, 16, 0);
        uprog::AmbitCodegen gen(layout, {});
        const double ours = static_cast<double>(
            gen.karyIncrement(0, 1, 99).totalOps());
        const double paper = static_cast<double>(
            uprog::AmbitCodegen::paperIncrementOps(radix / 2));
        EXPECT_GT(ours / paper, 0.9) << "radix=" << radix;
        EXPECT_LT(ours / paper, 1.8) << "radix=" << radix;
    }
}
