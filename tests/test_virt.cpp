/**
 * @file
 * Counter-virtualization tests: sketch-tier error bounds (count-min
 * collision bound, Morris 3-sigma, linear distinct counting),
 * directory collision handling, resident exactness across backends
 * (vs serial replay of the recorded physical ops), bit-exact
 * spill/restore under frame pressure, promotion invariants, service
 * mode vs direct mode, concurrent producers, and scrubbed
 * virtualized ingest under CIM fault injection ending bit-identical
 * for every exact-tier key.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/sharded.hpp"
#include "reliability/scrubber.hpp"
#include "service/ingest.hpp"
#include "virt/directory.hpp"
#include "virt/sketch.hpp"
#include "virt/virtspace.hpp"

using namespace c2m;
using namespace c2m::core;
using c2m::virt::AddResult;
using c2m::virt::CountMinSketch;
using c2m::virt::KeyDirectory;
using c2m::virt::LinearCounter;
using c2m::virt::MorrisCounter;
using c2m::virt::Route;
using c2m::virt::SketchCells;
using c2m::virt::SketchConfig;
using c2m::virt::VirtConfig;
using c2m::virt::VirtOp;
using c2m::virt::VirtualCounterSpace;

namespace {

EngineConfig
smallConfig(size_t counters, BackendKind backend = BackendKind::Ambit)
{
    EngineConfig cfg;
    cfg.numCounters = counters;
    cfg.capacityBits = 16;
    cfg.backend = backend;
    cfg.seed = 0xfeedULL;
    return cfg;
}

/**
 * Shadow reference for the exact tier: seed at promotion, then every
 * later delta. A key's fabric value must equal its shadow exactly.
 */
struct Shadow
{
    std::map<uint64_t, int64_t> expect;

    void apply(uint64_t key, int64_t value, const AddResult &r)
    {
        switch (r.route) {
        case Route::Promoted:
            expect[key] = static_cast<int64_t>(r.seed);
            break;
        case Route::Exact:
        case Route::Journaled:
            expect[key] += value;
            break;
        case Route::Sketch:
            break;
        }
    }
};

void
expectExactMatchesShadow(VirtualCounterSpace &space,
                         const Shadow &shadow)
{
    const auto entries = space.exactEntries();
    ASSERT_EQ(entries.size(), shadow.expect.size());
    for (const auto &e : entries) {
        const auto it = shadow.expect.find(e.key);
        ASSERT_NE(it, shadow.expect.end()) << "key " << e.key;
        EXPECT_EQ(e.value, it->second) << "key " << e.key;
    }
}

uint64_t
hashKey(uint64_t v)
{
    return splitMix64(v); // pure: v is a by-value copy of the state
}

} // namespace

// ---------------------------------------------------------------------
// Sketch tier
// ---------------------------------------------------------------------

TEST(VirtSketch, MorrisUnbiasedWithin3Sigma)
{
    const double a = 1.0 / 16.0;
    const uint64_t n = 1000;
    const size_t trials = 300;
    Rng rng(0x5eedULL);
    const double sigma = MorrisCounter::sigma(a, double(n));
    double sum = 0.0;
    size_t within = 0;
    for (size_t t = 0; t < trials; ++t) {
        MorrisCounter mc(a);
        mc.add(n, rng);
        const double est = double(mc.estimate());
        sum += est;
        if (std::abs(est - double(n)) <= 3.0 * sigma)
            ++within;
    }
    const double mean = sum / double(trials);
    // Unbiased: the mean of 300 trials is within 5 standard errors.
    EXPECT_NEAR(mean, double(n), 5.0 * sigma / std::sqrt(trials));
    // Near-Gaussian: virtually all trials inside the 3-sigma band.
    EXPECT_GE(double(within) / double(trials), 0.95);
}

TEST(VirtSketch, CountMinExactNeverUnderestimates)
{
    SketchConfig cfg;
    cfg.width = 1 << 10; // small width: force collisions
    cfg.depth = 4;
    CountMinSketch sketch(cfg);
    Rng rng(7);
    std::map<uint64_t, uint64_t> truth;
    for (size_t i = 0; i < 20000; ++i) {
        const uint64_t key = rng.nextBounded(3000);
        const uint64_t delta = 1 + rng.nextBounded(5);
        truth[key] += delta;
        sketch.update(key, delta);
    }
    size_t within = 0;
    for (const auto &[key, count] : truth) {
        const uint64_t est = sketch.estimate(key);
        ASSERT_GE(est, count) << "count-min underestimated";
        if (double(est - count) <= sketch.pointErrorBound(est))
            ++within;
    }
    // (e/w)*N holds per query with prob >= 1 - e^-depth ~ 0.98.
    EXPECT_GE(double(within) / double(truth.size()), 0.98);
}

TEST(VirtSketch, CountMinMorrisWithinAnalyticBound)
{
    SketchConfig cfg;
    cfg.width = 1 << 12;
    cfg.depth = 4;
    cfg.cells = SketchCells::Morris;
    cfg.morrisA = 1.0 / 16.0;
    CountMinSketch sketch(cfg);
    Rng rng(11);
    std::map<uint64_t, uint64_t> truth;
    for (size_t i = 0; i < 30000; ++i) {
        const uint64_t key = rng.nextBounded(2000);
        truth[key] += 1;
        sketch.update(key, 1);
    }
    size_t within = 0;
    for (const auto &[key, count] : truth) {
        const uint64_t est = sketch.estimate(key);
        const double err =
            std::abs(double(est) - double(count));
        if (err <= sketch.pointErrorBound(est))
            ++within;
    }
    // Collision bound + 3-sigma Morris noise covers >= 97%.
    EXPECT_GE(double(within) / double(truth.size()), 0.97);
}

TEST(VirtSketch, LinearCounterTracksDistinctKeys)
{
    LinearCounter lc(1 << 16, 42);
    Rng rng(13);
    std::vector<uint64_t> keys;
    for (size_t i = 0; i < 20000; ++i)
        keys.push_back(hashKey(i));
    for (int rep = 0; rep < 3; ++rep) // duplicates must not count
        for (const uint64_t k : keys)
            lc.mark(k);
    const double est = double(lc.estimate());
    EXPECT_NEAR(est, double(keys.size()), 0.05 * double(keys.size()));
}

// ---------------------------------------------------------------------
// Key directory
// ---------------------------------------------------------------------

TEST(VirtDirectory, CollidingKeysKeepDistinctSlots)
{
    KeyDirectory dir(0x5eedULL, 1); // min capacity: dense collisions
    // Find keys sharing one home bucket at the initial capacity.
    const size_t home = dir.homeBucket(1);
    std::vector<uint64_t> colliders{1};
    for (uint64_t k = 2; colliders.size() < 5; ++k)
        if (dir.homeBucket(k) == home)
            colliders.push_back(k);
    for (uint32_t i = 0; i < colliders.size(); ++i)
        dir.insert(colliders[i], 100 + i);
    for (uint32_t i = 0; i < colliders.size(); ++i)
        EXPECT_EQ(dir.find(colliders[i]), 100 + i);
    EXPECT_GT(dir.probes(), 0u);
}

TEST(VirtDirectory, GrowsAndFindsEverything)
{
    KeyDirectory dir(99, 16);
    const size_t n = 5000;
    for (uint32_t i = 0; i < n; ++i)
        dir.insert(hashKey(i) | 1, i);
    EXPECT_GT(dir.capacity(), n); // grew past the initial 16
    EXPECT_EQ(dir.size(), n);
    for (uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(dir.find(hashKey(i) | 1), i);
    EXPECT_EQ(dir.find(0xdead0000beefULL << 2),
              KeyDirectory::kNotFound);
}

// ---------------------------------------------------------------------
// Resident exact tier, all backends
// ---------------------------------------------------------------------

class VirtResident : public ::testing::TestWithParam<BackendKind>
{
};

TEST_P(VirtResident, ValuesMatchShadowAndSerialReplay)
{
    const EngineConfig cfg = smallConfig(128, GetParam());
    ShardedEngine engine(cfg, 2);
    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 1; // promote every key on first sight
    vcfg.recordPhysicalOps = true;
    VirtualCounterSpace space(engine, vcfg);

    Rng rng(21);
    Shadow shadow;
    std::vector<uint64_t> keys;
    for (size_t i = 0; i < 40; ++i)
        keys.push_back(hashKey(i + 1));
    for (size_t i = 0; i < 4000; ++i) {
        const uint64_t key = keys[rng.nextBounded(keys.size())];
        const int64_t v = 1 + int64_t(rng.nextBounded(4));
        shadow.apply(key, v, space.add(key, v));
    }
    space.flush();

    ASSERT_EQ(space.stats().promotions, keys.size());
    EXPECT_EQ(space.stats().spills, 0u); // fits: 8 frames, 3 groups
    expectExactMatchesShadow(space, shadow);

    // With no spills, the recorded physical op stream fully
    // determines the fabric state: serial replay is bit-identical.
    const auto replayed = replaySerial(cfg, space.physicalLog());
    EXPECT_EQ(engine.readAllCounters(0), replayed);
}

INSTANTIATE_TEST_SUITE_P(Backends, VirtResident,
                         ::testing::Values(BackendKind::Ambit,
                                           BackendKind::NvmPinatubo,
                                           BackendKind::NvmMagic,
                                           BackendKind::Rca));

// ---------------------------------------------------------------------
// Spill / restore
// ---------------------------------------------------------------------

TEST(VirtSpill, RoundTripsAreBitExactUnderFramePressure)
{
    ShardedEngine engine(smallConfig(128), 2);
    VirtConfig vcfg;
    vcfg.groupSize = 16; // 8 frames
    vcfg.promoteThreshold = 2;
    vcfg.restoreOpThreshold = 4;
    vcfg.directBatchOps = 64; // frequent maintenance
    VirtualCounterSpace space(engine, vcfg);

    Rng rng(31);
    Shadow shadow;
    const size_t distinct = 400; // ~25 groups over 8 frames
    for (size_t i = 0; i < 30000; ++i) {
        const uint64_t key = hashKey(rng.nextBounded(distinct));
        const int64_t v = 1 + int64_t(rng.nextBounded(3));
        shadow.apply(key, v, space.add(key, v));
    }
    space.flush();

    const auto st = space.stats();
    EXPECT_GT(st.promotions, 8u * 16u); // more keys than the fabric
    EXPECT_GT(st.spills, 0u);
    EXPECT_GT(st.restores, 0u);
    EXPECT_GT(st.maintenanceFabricNs, 0.0);
    expectExactMatchesShadow(space, shadow);
}

TEST(VirtSpill, NonScrubBackendStaysJournaledButExact)
{
    // RCA has no row-scrub seam: groups beyond the fabric can never
    // spill a victim, so they stay journaled host-side — still exact.
    ShardedEngine engine(smallConfig(64, BackendKind::Rca), 2);
    VirtConfig vcfg;
    vcfg.groupSize = 16; // 4 frames
    vcfg.promoteThreshold = 1;
    VirtualCounterSpace space(engine, vcfg);
    ASSERT_FALSE(VirtualCounterSpace::supportsSpill(engine));

    Rng rng(41);
    Shadow shadow;
    for (size_t i = 0; i < 5000; ++i) {
        const uint64_t key = hashKey(rng.nextBounded(150));
        shadow.apply(key, 1, space.add(key, 1));
    }
    space.flush();

    const auto st = space.stats();
    EXPECT_EQ(st.spills, 0u);
    EXPECT_EQ(st.residentGroups, 4u); // every frame in use
    EXPECT_GT(st.spilledGroups, 0u);  // the overflow stays host-side
    expectExactMatchesShadow(space, shadow);
}

// ---------------------------------------------------------------------
// Promotion invariants
// ---------------------------------------------------------------------

TEST(VirtPromotion, SeedEqualsEstimateAndValueTracksDeltas)
{
    ShardedEngine engine(smallConfig(64), 1);
    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 10;
    VirtualCounterSpace space(engine, vcfg);

    const uint64_t key = 0xabcdef0123ULL;
    for (int i = 0; i < 9; ++i) {
        const AddResult r = space.add(key, 1);
        EXPECT_EQ(r.route, Route::Sketch);
        EXPECT_FALSE(space.isExact(key));
    }
    // With one key there are no sketch collisions: the estimate at
    // promotion is the true count, carried verbatim as the seed.
    EXPECT_EQ(space.approxEstimate(key), 9u);
    const AddResult promo = space.add(key, 1);
    EXPECT_EQ(promo.route, Route::Promoted);
    EXPECT_EQ(promo.seed, 10u);
    EXPECT_TRUE(space.isExact(key));
    EXPECT_GE(space.errorBound(key), 0.0);

    for (int i = 0; i < 7; ++i)
        space.add(key, 3);
    space.flush();
    EXPECT_EQ(space.read(key), 10 + 7 * 3);

    const auto top = space.topK(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].key, key);
    EXPECT_EQ(top[0].seed, 10u);
    EXPECT_EQ(top[0].value, 31);
}

// ---------------------------------------------------------------------
// Service mode
// ---------------------------------------------------------------------

TEST(VirtService, MatchesDirectModeOnTheSameStream)
{
    Rng rng(51);
    std::vector<VirtOp> ops;
    for (size_t i = 0; i < 20000; ++i)
        ops.push_back(VirtOp{hashKey(rng.nextBounded(300)),
                             1 + int64_t(rng.nextBounded(3))});

    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 4;
    vcfg.restoreOpThreshold = 8;

    ShardedEngine direct_engine(smallConfig(128), 2);
    VirtualCounterSpace direct(direct_engine, vcfg);
    direct.addBatch(ops);
    direct.flush();

    ShardedEngine svc_engine(smallConfig(128), 2);
    service::IngestService svc(svc_engine);
    VirtualCounterSpace viaService(svc, vcfg);
    viaService.addBatch(ops);
    viaService.flush();
    svc.stop();

    auto a = direct.exactEntries();
    auto b = viaService.exactEntries();
    const auto byKey = [](const auto &x, const auto &y) {
        return x.key < y.key;
    };
    std::sort(a.begin(), a.end(), byKey);
    std::sort(b.begin(), b.end(), byKey);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(VirtService, ColdStartFlushMaterializesJournaledGroups)
{
    // Before any group is resident every delta journals host-side,
    // so the service never sees an op and never cuts an epoch on its
    // own. flush() must force boundaries (IngestService::forceEpoch)
    // so maintenance can hand out frames anyway — without it the
    // space stays fully journaled until stop().
    ShardedEngine engine(smallConfig(128), 2);
    service::IngestService svc(engine);
    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 2;
    VirtualCounterSpace space(svc, vcfg);

    Shadow shadow;
    Rng rng(17);
    for (size_t i = 0; i < 2000; ++i) {
        const uint64_t key = hashKey(rng.nextBounded(64));
        shadow.apply(key, 1, space.add(key, 1));
    }
    space.flush();

    const auto st = space.stats();
    EXPECT_GT(st.keysExact, 0u);
    EXPECT_GT(st.residentGroups, 0u);
    EXPECT_EQ(st.pendingRestores, 0u);
    expectExactMatchesShadow(space, shadow);
    svc.stop();
}

TEST(VirtService, ConcurrentProducersStayShadowExact)
{
    ShardedEngine engine(smallConfig(256), 4);
    service::IngestService svc(engine);
    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 3;
    VirtualCounterSpace space(svc, vcfg);

    const unsigned producers = 4;
    std::vector<Shadow> shadows(producers);
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            Rng rng(100 + p);
            for (size_t i = 0; i < 5000; ++i) {
                // Disjoint key ranges: each producer owns its keys,
                // so per-producer shadows are exact references.
                const uint64_t key =
                    hashKey((uint64_t(p) << 32) |
                               rng.nextBounded(200));
                const int64_t v = 1 + int64_t(rng.nextBounded(2));
                shadows[p].apply(key, v, space.add(key, v));
            }
        });
    for (auto &t : threads)
        t.join();
    space.flush();
    svc.stop();

    Shadow merged;
    for (const auto &s : shadows)
        for (const auto &[k, v] : s.expect)
            merged.expect[k] = v;
    expectExactMatchesShadow(space, merged);
}

// ---------------------------------------------------------------------
// Scrubbed virtualized ingest under fault injection
// ---------------------------------------------------------------------

TEST(VirtScrubbed, FaultyIngestEndsBitIdenticalForExactKeys)
{
    EngineConfig cfg = smallConfig(128);
    cfg.protection = Protection::Ecc;
    cfg.faultRate = 1e-3;
    ShardedEngine engine(cfg, 2);
    service::IngestService svc(engine);
    reliability::Scrubber scrub(engine);
    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 2;
    vcfg.restoreOpThreshold = 8;
    VirtualCounterSpace space(svc, vcfg);
    space.attachScrubber(&scrub);

    Rng rng(61);
    Shadow shadow;
    for (size_t i = 0; i < 20000; ++i) {
        const uint64_t key = hashKey(rng.nextBounded(300));
        const int64_t v = 1 + int64_t(rng.nextBounded(3));
        shadow.apply(key, v, space.add(key, v));
    }
    space.flush();
    svc.stop(); // final sweep reconciles every shard

    const auto st = space.stats();
    EXPECT_GT(st.spills, 0u);
    EXPECT_GT(scrub.stats().sweeps, 0u);
    expectExactMatchesShadow(space, shadow);
}

// ---------------------------------------------------------------------
// Report spine
// ---------------------------------------------------------------------

TEST(VirtStatsReport, CountersCarryTheVirtKeys)
{
    ShardedEngine engine(smallConfig(64), 1);
    VirtConfig vcfg;
    vcfg.groupSize = 16;
    vcfg.promoteThreshold = 2;
    VirtualCounterSpace space(engine, vcfg);
    Rng rng(71);
    for (size_t i = 0; i < 3000; ++i)
        space.add(hashKey(rng.nextBounded(500)), 1);
    space.flush();

    const CounterMap report = space.report();
    for (const char *key :
         {"virt.resident_groups", "virt.spills", "virt.restores",
          "virt.promotions", "virt.sketch_keys",
          "virt.est_error_bound", "virt.est_error_seed_max",
          "virt.keys_exact", "virt.journaled_ops",
          "virt.dir_probes", "virt.sketch_updates"})
        EXPECT_TRUE(report.count(key)) << key;
    EXPECT_GT(report.at("virt.promotions"), 0u);
    EXPECT_GT(report.at("virt.sketch_keys"), 0u);
    EXPECT_GT(report.at("virt.sketch_updates"), 0u);
}
