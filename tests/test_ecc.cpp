/**
 * @file
 * ECC substrate tests: Hamming(72,64) SEC-DED, GF(2^m), BCH encode/
 * decode with random error injection, the row codec's parity lanes,
 * XOR homomorphism (the property Sec. 6 builds on), and the Tab.-1
 * protection model.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/analysis.hpp"
#include "ecc/bch.hpp"
#include "ecc/gf2m.hpp"
#include "ecc/hamming.hpp"
#include "ecc/rowcodec.hpp"

using namespace c2m;

// ---------------------------------------------------------------------
// Hamming (72,64)
// ---------------------------------------------------------------------

TEST(Hamming, CleanRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const uint64_t d = rng.next();
        const uint8_t p = ecc::Hamming72::encode(d);
        const auto dec = ecc::Hamming72::decode(d, p);
        EXPECT_EQ(dec.result, ecc::Hamming72::Result::Clean);
        EXPECT_EQ(dec.data, d);
    }
}

TEST(Hamming, CorrectsEverySingleDataBitError)
{
    Rng rng(2);
    const uint64_t d = rng.next();
    const uint8_t p = ecc::Hamming72::encode(d);
    for (unsigned bit = 0; bit < 64; ++bit) {
        const auto dec =
            ecc::Hamming72::decode(d ^ (1ULL << bit), p);
        EXPECT_EQ(dec.result, ecc::Hamming72::Result::Corrected)
            << "bit " << bit;
        EXPECT_EQ(dec.data, d) << "bit " << bit;
    }
}

TEST(Hamming, CorrectsEverySingleParityBitError)
{
    const uint64_t d = 0xdeadbeefcafef00dULL;
    const uint8_t p = ecc::Hamming72::encode(d);
    for (unsigned bit = 0; bit < 8; ++bit) {
        const auto dec =
            ecc::Hamming72::decode(d, p ^ uint8_t(1u << bit));
        EXPECT_EQ(dec.result, ecc::Hamming72::Result::Corrected)
            << "parity bit " << bit;
        EXPECT_EQ(dec.data, d) << "parity bit " << bit;
    }
}

TEST(Hamming, DetectsDoubleErrors)
{
    Rng rng(3);
    int detected = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i) {
        const uint64_t d = rng.next();
        const uint8_t p = ecc::Hamming72::encode(d);
        const unsigned b1 = rng.nextBounded(64);
        unsigned b2 = rng.nextBounded(64);
        while (b2 == b1)
            b2 = rng.nextBounded(64);
        const auto dec = ecc::Hamming72::decode(
            d ^ (1ULL << b1) ^ (1ULL << b2), p);
        if (dec.result == ecc::Hamming72::Result::DoubleError)
            ++detected;
    }
    EXPECT_EQ(detected, trials);
}

TEST(Hamming, XorHomomorphism)
{
    // parity(a ^ b) == parity(a) ^ parity(b): the property that lets
    // row ECC check CIM-produced XOR rows (Sec. 6.1).
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        const uint64_t a = rng.next();
        const uint64_t b = rng.next();
        EXPECT_EQ(ecc::Hamming72::encode(a ^ b),
                  ecc::Hamming72::encode(a) ^
                      ecc::Hamming72::encode(b));
    }
}

// ---------------------------------------------------------------------
// GF(2^m) and BCH
// ---------------------------------------------------------------------

TEST(GF2m, FieldAxiomsGF16)
{
    ecc::GF2m f(4);
    for (uint32_t a = 1; a <= f.order(); ++a) {
        EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
        for (uint32_t b = 1; b <= f.order(); ++b) {
            EXPECT_EQ(f.mul(a, b), f.mul(b, a));
            EXPECT_EQ(f.div(f.mul(a, b), b), a);
        }
    }
}

TEST(GF2m, AlphaPowWraps)
{
    ecc::GF2m f(5);
    EXPECT_EQ(f.alphaPow(0), 1u);
    EXPECT_EQ(f.alphaPow(f.order()), 1u);
    EXPECT_EQ(f.alphaPow(-1), f.inv(f.alphaPow(1)));
}

TEST(GF2m, DistributivitySampled)
{
    ecc::GF2m f(7);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const uint32_t a = 1 + rng.nextBounded(f.order());
        const uint32_t b = 1 + rng.nextBounded(f.order());
        const uint32_t c = 1 + rng.nextBounded(f.order());
        EXPECT_EQ(f.mul(a, f.add(b, c)),
                  f.add(f.mul(a, b), f.mul(a, c)));
    }
}

class BchParam
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(BchParam, CorrectsUpToTErrors)
{
    const unsigned m = std::get<0>(GetParam());
    const unsigned t = std::get<1>(GetParam());
    ecc::BchCode code(m, t);
    EXPECT_EQ(code.n(), (1u << m) - 1);
    EXPECT_GT(code.k(), 0u);

    Rng rng(100 * m + t);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<uint8_t> data(code.k());
        for (auto &b : data)
            b = rng.nextBool(0.5);
        auto cw = code.encode(data);
        EXPECT_TRUE(code.check(cw));

        const unsigned errs = 1 + rng.nextBounded(t);
        std::vector<uint8_t> corrupted = cw;
        std::vector<unsigned> pos;
        while (pos.size() < errs) {
            const unsigned p = rng.nextBounded(code.n());
            bool dup = false;
            for (unsigned q : pos)
                dup |= q == p;
            if (!dup) {
                pos.push_back(p);
                corrupted[p] ^= 1;
            }
        }
        const auto res = code.decode(corrupted);
        EXPECT_TRUE(res.ok) << "m=" << m << " t=" << t;
        EXPECT_EQ(res.corrected, errs);
        EXPECT_EQ(corrupted, cw);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchParam,
    ::testing::Values(std::make_tuple(5u, 1u), std::make_tuple(5u, 2u),
                      std::make_tuple(6u, 2u), std::make_tuple(7u, 2u),
                      std::make_tuple(7u, 3u)));

TEST(Bch, LinearityGivesXorHomomorphism)
{
    ecc::BchCode code(6, 2);
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        std::vector<uint8_t> a(code.k()), b(code.k()), x(code.k());
        for (size_t j = 0; j < a.size(); ++j) {
            a[j] = rng.nextBool(0.5);
            b[j] = rng.nextBool(0.5);
            x[j] = a[j] ^ b[j];
        }
        const auto pa = code.encodeParity(a);
        const auto pb = code.encodeParity(b);
        const auto px = code.encodeParity(x);
        for (size_t j = 0; j < px.size(); ++j)
            EXPECT_EQ(px[j], pa[j] ^ pb[j]);
    }
}

// ---------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------

TEST(RowCodec, EncodeCheckRoundTrip)
{
    ecc::RowCodec codec(256);
    EXPECT_EQ(codec.parityBits(), 32u);
    Rng rng(7);
    BitVector row(codec.totalBits());
    for (size_t i = 0; i < 256; ++i)
        row.set(i, rng.nextBool(0.5));
    codec.encodeRow(row);
    EXPECT_TRUE(codec.checkRow(row));
}

TEST(RowCodec, DetectsAndCorrectsSingleFlips)
{
    ecc::RowCodec codec(128);
    Rng rng(8);
    BitVector row(codec.totalBits());
    for (size_t i = 0; i < 128; ++i)
        row.set(i, rng.nextBool(0.5));
    codec.encodeRow(row);
    BitVector clean = row;

    row.set(77, !row.get(77));
    EXPECT_FALSE(codec.checkRow(row));
    const auto res = codec.correctRow(row);
    EXPECT_EQ(res.corrected, 1u);
    EXPECT_EQ(res.uncorrectable, 0u);
    EXPECT_EQ(row, clean);
}

TEST(RowCodec, FlagsDoubleErrorsPerWord)
{
    ecc::RowCodec codec(64);
    BitVector row(codec.totalBits());
    row.set(3, true);
    codec.encodeRow(row);
    row.set(10, true);
    row.set(20, true);
    const auto res = codec.correctRow(row);
    EXPECT_EQ(res.uncorrectable, 1u);
}

TEST(RowCodec, LanesFollowXorHomomorphism)
{
    // Encoding a, b and XORing full rows (data + lanes) yields a
    // validly coded row of a^b -- the in-array check mechanism.
    ecc::RowCodec codec(192);
    Rng rng(9);
    BitVector a(codec.totalBits()), b(codec.totalBits());
    for (size_t i = 0; i < 192; ++i) {
        a.set(i, rng.nextBool(0.5));
        b.set(i, rng.nextBool(0.5));
    }
    codec.encodeRow(a);
    codec.encodeRow(b);
    BitVector x(codec.totalBits());
    x.assignXor(a, b);
    EXPECT_TRUE(codec.checkRow(x));
}

// ---------------------------------------------------------------------
// Tab. 1 protection model
// ---------------------------------------------------------------------

TEST(ProtectionModel, Table1ErrorRates)
{
    using PM = ecc::ProtectionModel;
    EXPECT_NEAR(PM::undetectedErrorRate(1e-1, 2), 1.4e-3, 3e-4);
    EXPECT_NEAR(PM::undetectedErrorRate(1e-2, 2), 1.5e-6, 3e-7);
    EXPECT_NEAR(PM::undetectedErrorRate(1e-4, 2), 1.5e-12, 3e-13);
    EXPECT_NEAR(PM::undetectedErrorRate(1e-1, 4), 1.4e-5, 3e-6);
    EXPECT_NEAR(PM::undetectedErrorRate(1e-2, 4), 1.5e-10, 3e-11);
    EXPECT_NEAR(PM::undetectedErrorRate(1e-1, 6), 1.4e-7, 3e-8);
    // Floored at the DRAM read-error rate.
    EXPECT_DOUBLE_EQ(PM::undetectedErrorRate(1e-4, 6), 1e-20);
    EXPECT_DOUBLE_EQ(PM::undetectedErrorRate(1e-4, 4), 1e-20);
}

TEST(ProtectionModel, Table1DetectRates)
{
    using PM = ecc::ProtectionModel;
    EXPECT_NEAR(PM::detectRate(1e-1, 2), 3.1e-1, 3e-2);
    EXPECT_NEAR(PM::detectRate(1e-2, 2), 3.5e-2, 4e-3);
    EXPECT_NEAR(PM::detectRate(1e-4, 2), 3.5e-4, 4e-5);
    EXPECT_NEAR(PM::detectRate(1e-1, 4), 4.4e-1, 4e-2);
    EXPECT_NEAR(PM::detectRate(1e-2, 6), 7.3e-2, 8e-3);
}

TEST(ProtectionModel, RetryOverheadMatchesSec732)
{
    // Sec. 7.3.2: fault rate 1e-4 with one FR round => 0.16 detected
    // faults per 512-bit row => ~19.6% correction overhead.
    const double retries =
        ecc::ProtectionModel::expectedRetriesPerRow(1e-4, 2, 512);
    EXPECT_NEAR(retries, 1.196, 0.03);
}

TEST(ProtectionModel, MonteCarloMatchesAnalyticExponent)
{
    using PM = ecc::ProtectionModel;
    // At p = 0.1 with 2 FR checks the undetected rate is ~p^3.
    const auto mc = PM::monteCarlo(0.1, 2, 2'000'000, 3);
    EXPECT_GT(mc.errorRate, 1e-4);
    EXPECT_LT(mc.errorRate, 1e-2);
    // Detection grows with the number of FR checks.
    const auto mc1 = PM::monteCarlo(0.1, 1, 500'000, 4);
    const auto mc3 = PM::monteCarlo(0.1, 3, 500'000, 5);
    EXPECT_GT(mc3.detectRate, mc1.detectRate);
    EXPECT_GT(mc1.errorRate, mc3.errorRate);
}
