/**
 * @file
 * Workload tests: Tab.-3 shapes, DNA filtering pipeline (fault-free
 * F1 near 1, Fig. 3a distribution), BERT proxy calibration, CNN/GCN
 * shape tables, and sparsity generators.
 */

#include <gtest/gtest.h>

#include "core/kernels.hpp"
#include "workloads/bertproxy.hpp"
#include "workloads/cnn.hpp"
#include "workloads/dna.hpp"
#include "workloads/gcn.hpp"
#include "workloads/llama.hpp"
#include "workloads/sparsity.hpp"

using namespace c2m;
using namespace c2m::workloads;

TEST(Llama, Table3Shapes)
{
    const auto v = llamaGemvShapes();
    ASSERT_EQ(v.size(), 5u);
    EXPECT_EQ(v[0].id, "V0");
    EXPECT_EQ(v[0].N, 22016u);
    EXPECT_EQ(v[0].K, 8192u);
    EXPECT_EQ(v[0].M, 1u);
    const auto m = llamaGemmShapes();
    EXPECT_EQ(m[3].id, "M3");
    EXPECT_EQ(m[3].N, 28672u);
    EXPECT_EQ(m[3].M, 8192u);
    EXPECT_EQ(llamaAllShapes().size(), 10u);
}

TEST(Dna, DeterministicConstruction)
{
    DnaConfig cfg;
    cfg.genomeLen = 8192;
    cfg.binSize = 256;
    cfg.numReads = 8;
    DnaWorkload a(cfg), b(cfg);
    EXPECT_EQ(a.reads()[0].seq, b.reads()[0].seq);
    EXPECT_EQ(a.numBins(), 32u);
    EXPECT_EQ(a.numTokens(), 4096u); // 4^6 six-mers
}

TEST(Dna, FaultFreeFilterHasHighF1)
{
    DnaConfig cfg;
    cfg.genomeLen = 16384;
    cfg.binSize = 512;
    cfg.numReads = 32;
    DnaWorkload dna(cfg);

    std::vector<std::vector<int64_t>> scores;
    for (const auto &read : dna.reads())
        scores.push_back(dna.refScores(read));
    const auto bs = dna.evaluate(scores);
    EXPECT_GT(bs.f1(), 0.9);
    EXPECT_GT(bs.recall(), 0.95);
}

TEST(Dna, TokenCountsMatchReadLength)
{
    DnaConfig cfg;
    cfg.genomeLen = 4096;
    cfg.binSize = 256;
    cfg.numReads = 4;
    DnaWorkload dna(cfg);
    for (const auto &read : dna.reads()) {
        uint64_t total = 0;
        for (const auto &[tok, cnt] : dna.readTokens(read))
            total += cnt;
        EXPECT_EQ(total, read.seq.size() - cfg.kmer + 1);
    }
}

TEST(Dna, RepetitionHistogramIsSmallValued)
{
    // Fig. 3a: token repetitions concentrate at small values.
    DnaConfig cfg;
    cfg.genomeLen = 16384;
    cfg.binSize = 512;
    cfg.numReads = 32;
    DnaWorkload dna(cfg);
    const auto h = dna.repetitionHistogram();
    EXPECT_GT(h.total(), 0u);
    EXPECT_LT(h.valueMean(), 4.0);
    EXPECT_GT(h.binCount(1), h.binCount(5));
}

TEST(Dna, CimFilterMatchesReferenceFaultFree)
{
    DnaConfig cfg;
    cfg.genomeLen = 8192;
    cfg.binSize = 256; // 32 bins
    cfg.numReads = 4;
    DnaWorkload dna(cfg);

    core::EngineConfig ecfg;
    ecfg.radix = 10;
    ecfg.capacityBits = 8;
    ecfg.numCounters = dna.numBins();
    ecfg.maxMaskRows = static_cast<unsigned>(dna.numTokens());
    core::C2MEngine eng(ecfg);

    std::vector<unsigned> handles;
    for (unsigned t = 0; t < dna.numTokens(); ++t)
        handles.push_back(eng.addMask(dna.tokenMask(t)));

    for (const auto &read : dna.reads()) {
        eng.clear();
        for (const auto &[tok, cnt] : dna.readTokens(read))
            eng.accumulate(cnt, handles[tok]);
        EXPECT_EQ(eng.readCounters(), dna.refScores(read));
    }
}

TEST(BertProxy, CleanAccuracyNearTarget)
{
    BertProxyConfig cfg;
    BertProxy proxy(cfg);
    const double acc = proxy.cleanAccuracy();
    EXPECT_NEAR(acc, cfg.cleanAccuracy, 0.08);
}

TEST(BertProxy, EmbeddingsAreEightBitBellShaped)
{
    BertProxy proxy({});
    const auto h = proxy.embeddingHistogram();
    // Fig. 3b: centered near zero, bounded by int8.
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_NEAR(h.valueMean(), 0.0, 6.0);
    EXPECT_GT(h.binCount(0) + h.binCount(1) + h.binCount(-1),
              h.binCount(100) + h.binCount(-100));
}

TEST(BertProxy, RandomGemvDestroysAccuracy)
{
    BertProxyConfig cfg;
    cfg.samples = 48;
    BertProxy proxy(cfg);
    Rng rng(5);
    const double broken = proxy.accuracy(
        [&](const std::vector<int64_t> &x,
            const std::vector<std::vector<int8_t>> &W) {
            std::vector<int64_t> y(W[0].size());
            for (auto &v : y)
                v = rng.nextRange(-1000, 1000);
            (void)x;
            return y;
        });
    EXPECT_LT(broken, 0.6);
    EXPECT_GT(proxy.cleanAccuracy(), broken);
}

TEST(BertProxy, AttentionShapesAndCapacities)
{
    const auto shapes = BertProxy::attentionWorkloads();
    EXPECT_EQ(shapes.size(), 6u);
    EXPECT_EQ(shapes[0].K, 768u);
    EXPECT_EQ(BertProxy::projectionCapacity(), 64u);
    EXPECT_EQ(BertProxy::attentionCapacity(), 792u);
}

TEST(Cnn, LayerTables)
{
    EXPECT_EQ(lenetLayers().size(), 5u);
    EXPECT_EQ(vgg13Layers().size(), 13u);
    EXPECT_EQ(vgg16Layers().size(), 16u);
    // VGG-16 is ~15.5 GFLOP per image (conv+fc, multiply-accumulate
    // counted as 2 ops => ~30.9 G ops).
    EXPECT_NEAR(networkOps(vgg16Layers()) / 1e9, 30.9, 1.5);
}

TEST(Cnn, LayerWorkloadConversion)
{
    const auto layers = lenetLayers();
    const auto w = layerWorkload(layers[0], 0.25);
    EXPECT_EQ(w.M, 784u);
    EXPECT_EQ(w.N, 6u);
    EXPECT_EQ(w.K, 25u);
    EXPECT_DOUBLE_EQ(w.sparsity, 0.25);
    EXPECT_TRUE(w.ternary);
}

TEST(Gcn, PubMedWorkloads)
{
    const auto ws = gcnWorkloads();
    ASSERT_EQ(ws.size(), 4u);
    EXPECT_EQ(ws[0].M, 19717u);
    EXPECT_EQ(ws[0].K, 500u);
    // Aggregation stages carry the graph's extreme sparsity.
    EXPECT_GT(ws[1].sparsity, 0.999);
    EXPECT_GT(gcnOps(), 0.0);
}

TEST(Gcn, SyntheticGraphDegree)
{
    const auto adj = makeSyntheticGraph(1000, 4.5, 3);
    double total = 0;
    for (const auto &nbrs : adj)
        total += static_cast<double>(nbrs.size());
    EXPECT_NEAR(total / 1000.0, 4.5, 0.5);
}

TEST(Sparsity, VectorsHonorSparsity)
{
    const auto v = sparseSignedVector(10000, 8, 0.75, 5);
    size_t zeros = 0;
    for (auto x : v) {
        if (x == 0)
            ++zeros;
        EXPECT_GE(x, -128);
        EXPECT_LE(x, 127);
    }
    EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.75, 0.03);
}

TEST(Sparsity, TernaryMatrixDensity)
{
    const auto m = randomTernaryMatrix(100, 100, 0.3, 6);
    size_t nonzero = 0;
    for (const auto &row : m)
        for (auto v : row)
            if (v != 0)
                ++nonzero;
    EXPECT_NEAR(static_cast<double>(nonzero) / 10000.0, 0.3, 0.03);
}

TEST(Sparsity, UnsignedVectorNonzeroRange)
{
    const auto v = sparseUnsignedVector(1000, 4, 0.0, 7);
    for (auto x : v) {
        EXPECT_GE(x, 1u);
        EXPECT_LT(x, 16u);
    }
}
