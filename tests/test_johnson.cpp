/**
 * @file
 * Golden Johnson-counter model tests: encoding, decoding, the k-ary
 * shift rules of Alg. 1, and the MSB-based overflow predicates --
 * exhaustively over the paper's radix range (2..20, i.e. n = 1..10).
 */

#include <gtest/gtest.h>

#include "jc/johnson.hpp"

using namespace c2m;

TEST(Johnson, PaperExampleStates)
{
    // Sec. 2.4: 5-bit JC (LSB first): 1 -> 10000, 2 -> 11000,
    // 5 -> 11111, 6 -> 01111, 9 -> 00001, 0 -> 00000.
    EXPECT_EQ(jc::encode(5, 0), 0b00000u);
    EXPECT_EQ(jc::encode(5, 1), 0b00001u);
    EXPECT_EQ(jc::encode(5, 2), 0b00011u);
    EXPECT_EQ(jc::encode(5, 5), 0b11111u);
    EXPECT_EQ(jc::encode(5, 6), 0b11110u);
    EXPECT_EQ(jc::encode(5, 9), 0b10000u);
}

TEST(Johnson, PaperKaryExamples)
{
    // Sec. 4.5.1: with k = 6, 10000(1) -> 00111(7) and
    // 00111(7) -> 11100(3). Patterns are written LSB..MSB there, so
    // state(1) = bit0, state(7) = bits 2,3,4 in our packing.
    EXPECT_EQ(jc::shiftAdd(5, jc::encode(5, 1), 6), jc::encode(5, 7));
    EXPECT_EQ(jc::shiftAdd(5, jc::encode(5, 7), 6), jc::encode(5, 3));
}

TEST(Johnson, BitsForRadix)
{
    EXPECT_EQ(jc::bitsForRadix(2), 1u);
    EXPECT_EQ(jc::bitsForRadix(10), 5u);
    EXPECT_EQ(jc::bitsForRadix(20), 10u);
}

TEST(Johnson, InvalidStateDecodesToMinusOne)
{
    // 10100 pattern (bits 0 and 2) is not a Johnson state for n=5.
    EXPECT_EQ(jc::decode(5, 0b00101), -1);
    EXPECT_TRUE(jc::isValidState(5, jc::encode(5, 4)));
    EXPECT_FALSE(jc::isValidState(5, 0b00101));
}

TEST(Johnson, DecodeNearestPrefersCloseState)
{
    // One bit flipped from encode(5,3)=00111 should decode near 3.
    const uint64_t faulty = jc::encode(5, 3) ^ 0b00100;
    const unsigned v = jc::decodeNearest(5, faulty);
    // The nearest valid states are 2 (00011) and 4 (01111), both at
    // distance 1; 3 itself is at distance 1 too.
    EXPECT_TRUE(v == 2 || v == 3 || v == 4);
}

class JohnsonWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(JohnsonWidth, EncodeDecodeRoundTrip)
{
    const unsigned n = GetParam();
    for (unsigned v = 0; v < 2 * n; ++v) {
        const uint64_t bits = jc::encode(n, v);
        EXPECT_EQ(jc::decode(n, bits), static_cast<int>(v))
            << "n=" << n << " v=" << v;
        EXPECT_TRUE(jc::isValidState(n, bits));
    }
}

TEST_P(JohnsonWidth, ExactlyTwoNValidStates)
{
    const unsigned n = GetParam();
    if (n > 16)
        GTEST_SKIP() << "exhaustive scan too wide";
    unsigned valid = 0;
    for (uint64_t bits = 0; bits < (1ULL << n); ++bits)
        if (jc::isValidState(n, bits))
            ++valid;
    EXPECT_EQ(valid, 2 * n);
}

TEST_P(JohnsonWidth, ShiftAddMatchesArithmetic)
{
    const unsigned n = GetParam();
    for (unsigned v = 0; v < 2 * n; ++v) {
        for (unsigned k = 1; k < 2 * n; ++k) {
            const uint64_t got = jc::shiftAdd(n, jc::encode(n, v), k);
            const uint64_t want = jc::encode(n, jc::add(n, v, k));
            EXPECT_EQ(got, want)
                << "n=" << n << " v=" << v << " k=" << k;
        }
    }
}

TEST_P(JohnsonWidth, ShiftSubInvertsShiftAdd)
{
    const unsigned n = GetParam();
    for (unsigned v = 0; v < 2 * n; ++v) {
        for (unsigned k = 1; k < 2 * n; ++k) {
            const uint64_t bits = jc::encode(n, v);
            EXPECT_EQ(jc::shiftSub(n, jc::shiftAdd(n, bits, k), k),
                      bits)
                << "n=" << n << " v=" << v << " k=" << k;
        }
    }
}

TEST_P(JohnsonWidth, UnitIncrementIsSingleBitTransition)
{
    // The defining JC property: consecutive states differ in one bit.
    const unsigned n = GetParam();
    for (unsigned v = 0; v < 2 * n; ++v) {
        const uint64_t a = jc::encode(n, v);
        const uint64_t b = jc::encode(n, jc::add(n, v, 1));
        EXPECT_EQ(__builtin_popcountll(a ^ b), 1)
            << "n=" << n << " v=" << v;
    }
}

TEST_P(JohnsonWidth, AddingNFlipsAllBits)
{
    const unsigned n = GetParam();
    const uint64_t mask = (n == 64) ? ~0ULL : (1ULL << n) - 1;
    for (unsigned v = 0; v < 2 * n; ++v) {
        const uint64_t a = jc::encode(n, v);
        const uint64_t b = jc::encode(n, jc::add(n, v, n));
        EXPECT_EQ(a ^ b, mask) << "n=" << n << " v=" << v;
    }
}

TEST_P(JohnsonWidth, WrapPredicateMatchesArithmetic)
{
    const unsigned n = GetParam();
    for (unsigned v = 0; v < 2 * n; ++v) {
        for (unsigned k = 1; k < 2 * n; ++k) {
            const bool msb_old = (jc::encode(n, v) >> (n - 1)) & 1;
            const bool msb_new =
                (jc::encode(n, jc::add(n, v, k)) >> (n - 1)) & 1;
            EXPECT_EQ(jc::wrapFromMsb(n, k, msb_old, msb_new),
                      jc::wraps(n, v, k))
                << "n=" << n << " v=" << v << " k=" << k;
        }
    }
}

TEST_P(JohnsonWidth, BorrowPredicateMatchesArithmetic)
{
    const unsigned n = GetParam();
    for (unsigned v = 0; v < 2 * n; ++v) {
        for (unsigned k = 1; k < 2 * n; ++k) {
            const unsigned v_new = (v + 2 * n - k) % (2 * n);
            const bool msb_old = (jc::encode(n, v) >> (n - 1)) & 1;
            const bool msb_new =
                (jc::encode(n, v_new) >> (n - 1)) & 1;
            EXPECT_EQ(jc::borrowFromMsb(n, k, msb_old, msb_new),
                      jc::borrows(n, v, k))
                << "n=" << n << " v=" << v << " k=" << k;
        }
    }
}

TEST_P(JohnsonWidth, ShiftAddOnInvalidPatternsIsBijective)
{
    // The shift rules permute the full pattern space, so faulty
    // (invalid) patterns never collide -- no information is lost.
    const unsigned n = GetParam();
    if (n > 12)
        GTEST_SKIP() << "exhaustive scan too wide";
    for (unsigned k = 1; k < 2 * n; k += (n > 6 ? 3 : 1)) {
        std::vector<bool> seen(1ULL << n, false);
        for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
            const uint64_t out = jc::shiftAdd(n, bits, k);
            ASSERT_LT(out, 1ULL << n);
            EXPECT_FALSE(seen[out]) << "collision n=" << n
                                    << " k=" << k;
            seen[out] = true;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, JohnsonWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u,
                                           7u, 8u, 9u, 10u, 16u));
